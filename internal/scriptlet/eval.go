package scriptlet

import (
	"errors"
	"fmt"
)

// ErrBudget is returned when a script exceeds its evaluation-step budget —
// the interpreter's defence against runaway loops, which matters because
// anti-phishing bots execute attacker-supplied scripts.
var ErrBudget = errors.New("scriptlet: step budget exhausted")

// RuntimeError is a script execution failure.
type RuntimeError struct{ Msg string }

func (e *RuntimeError) Error() string { return "scriptlet: " + e.Msg }

func rerrf(format string, args ...any) error {
	return &RuntimeError{Msg: fmt.Sprintf(format, args...)}
}

// DefaultBudget bounds evaluation steps per Run/Call.
const DefaultBudget = 1_000_000

// Interp executes parsed scripts against a global scope populated by host
// bindings (the browser's DOM, confirm/alert, timers, ...).
type Interp struct {
	Globals *Env
	Budget  int
	steps   int
}

// NewInterp returns an interpreter with an empty global scope and the
// default step budget.
func NewInterp() *Interp {
	return &Interp{Globals: NewEnv(nil), Budget: DefaultBudget}
}

// returnSignal unwinds a function body on return.
type returnSignal struct{ val Value }

func (returnSignal) Error() string { return "return outside function" }

// breakSignal and continueSignal unwind loop bodies.
type breakSignal struct{}

func (breakSignal) Error() string { return "break outside loop" }

type continueSignal struct{}

func (continueSignal) Error() string { return "continue outside loop" }

// Run parses and executes src in the global scope. The step counter is reset
// per call.
func (in *Interp) Run(src string) error {
	prog, err := Compile(src)
	if err != nil {
		return err
	}
	return in.RunProgram(prog)
}

// RunProgram executes a pre-compiled program in the global scope. The AST is
// never mutated by execution, so one Program may be run many times (and by
// many interpreters) — this is what makes compiled-script caching safe.
func (in *Interp) RunProgram(p *Program) error {
	in.steps = 0
	if err := in.execBlock(p.stmts, in.Globals); err != nil {
		if _, isReturn := err.(returnSignal); isReturn {
			return nil // top-level return: tolerated
		}
		return err
	}
	return nil
}

// CallValue invokes a function value (closure or native) from host code,
// e.g. firing window.onload or a timer callback.
func (in *Interp) CallValue(fn Value, this Value, args []Value) (Value, error) {
	in.steps = 0
	return in.call(fn, this, args)
}

func (in *Interp) step() error {
	in.steps++
	if in.Budget > 0 && in.steps > in.Budget {
		return ErrBudget
	}
	return nil
}

func (in *Interp) execBlock(stmts []Stmt, env *Env) error {
	// Hoist function declarations, as JS does.
	for _, s := range stmts {
		if fd, ok := s.(*FuncDecl); ok {
			env.Define(fd.Name, &Closure{Fn: fd.Fn, Env: env})
		}
	}
	for _, s := range stmts {
		if err := in.exec(s, env); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) exec(s Stmt, env *Env) error {
	if err := in.step(); err != nil {
		return err
	}
	switch st := s.(type) {
	case *VarStmt:
		var v Value
		if st.Init != nil {
			var err error
			v, err = in.eval(st.Init, env)
			if err != nil {
				return err
			}
		}
		env.Define(st.Name, v)
		return nil
	case *ExprStmt:
		_, err := in.eval(st.E, env)
		return err
	case *IfStmt:
		cond, err := in.eval(st.Cond, env)
		if err != nil {
			return err
		}
		if Truthy(cond) {
			return in.execBlock(st.Then, NewEnv(env))
		}
		return in.execBlock(st.Else, NewEnv(env))
	case *WhileStmt:
		for {
			cond, err := in.eval(st.Cond, env)
			if err != nil {
				return err
			}
			if !Truthy(cond) {
				return nil
			}
			if err := in.execLoopBody(st.Body, env); err != nil {
				if _, isBreak := err.(breakSignal); isBreak {
					return nil
				}
				return err
			}
			if err := in.step(); err != nil {
				return err
			}
		}
	case *ForStmt:
		loopEnv := NewEnv(env)
		if st.Init != nil {
			if err := in.exec(st.Init, loopEnv); err != nil {
				return err
			}
		}
		for {
			if st.Cond != nil {
				cond, err := in.eval(st.Cond, loopEnv)
				if err != nil {
					return err
				}
				if !Truthy(cond) {
					return nil
				}
			}
			if err := in.execLoopBody(st.Body, loopEnv); err != nil {
				if _, isBreak := err.(breakSignal); isBreak {
					return nil
				}
				return err
			}
			if st.Post != nil {
				if _, err := in.eval(st.Post, loopEnv); err != nil {
					return err
				}
			}
			if err := in.step(); err != nil {
				return err
			}
		}
	case *BreakStmt:
		return breakSignal{}
	case *ContinueStmt:
		return continueSignal{}
	case *ReturnStmt:
		var v Value
		if st.E != nil {
			var err error
			v, err = in.eval(st.E, env)
			if err != nil {
				return err
			}
		}
		return returnSignal{val: v}
	case *FuncDecl:
		return nil // hoisted by execBlock
	default:
		return rerrf("unknown statement %T", s)
	}
}

// execLoopBody runs one loop iteration, absorbing continue signals.
func (in *Interp) execLoopBody(body []Stmt, env *Env) error {
	err := in.execBlock(body, NewEnv(env))
	if _, isContinue := err.(continueSignal); isContinue {
		return nil
	}
	return err
}

func (in *Interp) eval(e Expr, env *Env) (Value, error) {
	if err := in.step(); err != nil {
		return nil, err
	}
	switch ex := e.(type) {
	case *NumberLit:
		return ex.Val, nil
	case *StringLit:
		return ex.Val, nil
	case *BoolLit:
		return ex.Val, nil
	case *NullLit:
		return NullValue, nil
	case *UndefinedLit:
		return nil, nil
	case *Ident:
		if v, ok := env.Lookup(ex.Name); ok {
			return v, nil
		}
		return nil, rerrf("%s is not defined", ex.Name)
	case *FuncLit:
		return &Closure{Fn: ex, Env: env}, nil
	case *ObjectLit:
		obj := NewObject()
		for i, k := range ex.Keys {
			v, err := in.eval(ex.Vals[i], env)
			if err != nil {
				return nil, err
			}
			obj.Set(k, v)
		}
		return obj, nil
	case *ArrayLit:
		elems := make([]Value, len(ex.Elems))
		for i, el := range ex.Elems {
			v, err := in.eval(el, env)
			if err != nil {
				return nil, err
			}
			elems[i] = v
		}
		return NewArray(elems...), nil
	case *UpdateExpr:
		old, err := in.eval(ex.Target, env)
		if err != nil {
			return nil, err
		}
		n, _ := ToNumber(old)
		delta := 1.0
		if ex.Op == "--" {
			delta = -1
		}
		assign := &AssignExpr{Op: "=", Target: ex.Target, Value: &NumberLit{Val: n + delta}}
		if _, err := in.evalAssign(assign, env); err != nil {
			return nil, err
		}
		return n, nil // postfix yields the old value
	case *UnaryExpr:
		if ex.Op == "typeof" {
			// typeof tolerates undeclared identifiers.
			if id, ok := ex.X.(*Ident); ok {
				v, _ := env.Lookup(id.Name)
				return TypeOf(v), nil
			}
		}
		x, err := in.eval(ex.X, env)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "!":
			return !Truthy(x), nil
		case "-":
			n, _ := ToNumber(x)
			return -n, nil
		case "typeof":
			return TypeOf(x), nil
		}
		return nil, rerrf("unknown unary operator %s", ex.Op)
	case *BinaryExpr:
		return in.evalBinary(ex, env)
	case *CondExpr:
		cond, err := in.eval(ex.Cond, env)
		if err != nil {
			return nil, err
		}
		if Truthy(cond) {
			return in.eval(ex.Then, env)
		}
		return in.eval(ex.Else, env)
	case *AssignExpr:
		return in.evalAssign(ex, env)
	case *MemberExpr:
		obj, err := in.eval(ex.Obj, env)
		if err != nil {
			return nil, err
		}
		return in.getMember(obj, ex.Name)
	case *IndexExpr:
		obj, err := in.eval(ex.Obj, env)
		if err != nil {
			return nil, err
		}
		key, err := in.eval(ex.Key, env)
		if err != nil {
			return nil, err
		}
		return in.getMember(obj, ToString(key))
	case *CallExpr:
		return in.evalCall(ex, env)
	case *NewExpr:
		ctor, err := in.eval(ex.Ctor, env)
		if err != nil {
			return nil, err
		}
		args, err := in.evalArgs(ex.Args, env)
		if err != nil {
			return nil, err
		}
		return in.call(ctor, nil, args)
	default:
		return nil, rerrf("unknown expression %T", e)
	}
}

func (in *Interp) evalArgs(exprs []Expr, env *Env) ([]Value, error) {
	args := make([]Value, len(exprs))
	for i, a := range exprs {
		v, err := in.eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return args, nil
}

func (in *Interp) evalCall(ex *CallExpr, env *Env) (Value, error) {
	// Method call: evaluate receiver once, bind as `this`.
	var this Value
	var fn Value
	switch callee := ex.Fn.(type) {
	case *MemberExpr:
		obj, err := in.eval(callee.Obj, env)
		if err != nil {
			return nil, err
		}
		this = obj
		fn, err = in.getMember(obj, callee.Name)
		if err != nil {
			return nil, err
		}
		if fn == nil {
			return nil, rerrf("%s is not a function on %s", callee.Name, ToString(obj))
		}
	default:
		var err error
		fn, err = in.eval(ex.Fn, env)
		if err != nil {
			return nil, err
		}
	}
	args, err := in.evalArgs(ex.Args, env)
	if err != nil {
		return nil, err
	}
	return in.call(fn, this, args)
}

func (in *Interp) call(fn Value, this Value, args []Value) (Value, error) {
	switch f := fn.(type) {
	case NativeFunc:
		return f(this, args)
	case *Closure:
		frame := NewEnv(f.Env)
		for i, p := range f.Fn.Params {
			if i < len(args) {
				frame.Define(p, args[i])
			} else {
				frame.Define(p, nil)
			}
		}
		frame.Define("this", this)
		err := in.execBlock(f.Fn.Body, frame)
		if err != nil {
			if ret, ok := err.(returnSignal); ok {
				return ret.val, nil
			}
			return nil, err
		}
		return nil, nil
	case nil:
		return nil, rerrf("called an undefined value")
	default:
		return nil, rerrf("%s is not a function", ToString(fn))
	}
}

func (in *Interp) getMember(obj Value, name string) (Value, error) {
	switch o := obj.(type) {
	case *Object:
		if o.Class == "Array" {
			if fn, ok := arrayMethod(o, name); ok {
				return fn, nil
			}
		}
		return o.Get(name), nil
	case string:
		switch name {
		case "length":
			return float64(len(o)), nil
		case "indexOf":
			return NativeFunc(func(_ Value, args []Value) (Value, error) {
				if len(args) == 0 {
					return float64(-1), nil
				}
				return float64(indexOf(o, ToString(args[0]))), nil
			}), nil
		case "toLowerCase":
			return NativeFunc(func(_ Value, _ []Value) (Value, error) {
				return lower(o), nil
			}), nil
		}
		return nil, nil
	case nil:
		return nil, rerrf("cannot read property %q of undefined", name)
	case nullType:
		return nil, rerrf("cannot read property %q of null", name)
	default:
		return nil, nil
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

func (in *Interp) evalAssign(ex *AssignExpr, env *Env) (Value, error) {
	val, err := in.eval(ex.Value, env)
	if err != nil {
		return nil, err
	}
	apply := func(old Value) (Value, error) {
		switch ex.Op {
		case "=":
			return val, nil
		case "+=":
			return addValues(old, val), nil
		case "-=":
			a, _ := ToNumber(old)
			b, _ := ToNumber(val)
			return a - b, nil
		}
		return nil, rerrf("unknown assignment operator %s", ex.Op)
	}
	switch target := ex.Target.(type) {
	case *Ident:
		var old Value
		if ex.Op != "=" {
			old, _ = env.Lookup(target.Name)
		}
		v, err := apply(old)
		if err != nil {
			return nil, err
		}
		env.Assign(target.Name, v)
		return v, nil
	case *MemberExpr:
		obj, err := in.eval(target.Obj, env)
		if err != nil {
			return nil, err
		}
		o, ok := obj.(*Object)
		if !ok {
			return nil, rerrf("cannot set property %q on %s", target.Name, ToString(obj))
		}
		var old Value
		if ex.Op != "=" {
			old = o.Get(target.Name)
		}
		v, err := apply(old)
		if err != nil {
			return nil, err
		}
		o.Set(target.Name, v)
		return v, nil
	case *IndexExpr:
		obj, err := in.eval(target.Obj, env)
		if err != nil {
			return nil, err
		}
		key, err := in.eval(target.Key, env)
		if err != nil {
			return nil, err
		}
		o, ok := obj.(*Object)
		if !ok {
			return nil, rerrf("cannot set index on %s", ToString(obj))
		}
		var old Value
		if ex.Op != "=" {
			old = o.Get(ToString(key))
		}
		v, err := apply(old)
		if err != nil {
			return nil, err
		}
		o.Set(ToString(key), v)
		return v, nil
	default:
		return nil, rerrf("invalid assignment target %T", ex.Target)
	}
}

func (in *Interp) evalBinary(ex *BinaryExpr, env *Env) (Value, error) {
	// Short-circuit operators evaluate lazily and return operands, as JS does.
	if ex.Op == "&&" || ex.Op == "||" {
		l, err := in.eval(ex.L, env)
		if err != nil {
			return nil, err
		}
		if ex.Op == "&&" {
			if !Truthy(l) {
				return l, nil
			}
			return in.eval(ex.R, env)
		}
		if Truthy(l) {
			return l, nil
		}
		return in.eval(ex.R, env)
	}
	l, err := in.eval(ex.L, env)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(ex.R, env)
	if err != nil {
		return nil, err
	}
	switch ex.Op {
	case "+":
		return addValues(l, r), nil
	case "-", "*", "/", "%":
		a, _ := ToNumber(l)
		b, _ := ToNumber(r)
		switch ex.Op {
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0.0, nil // stand-in for Infinity/NaN; our scripts never divide by zero
			}
			return a / b, nil
		case "%":
			if b == 0 {
				return 0.0, nil
			}
			return float64(int64(a) % int64(b)), nil
		}
	case "===":
		return strictEqual(l, r), nil
	case "!==":
		return !strictEqual(l, r), nil
	case "==":
		return looseEqual(l, r), nil
	case "!=":
		return !looseEqual(l, r), nil
	case "<", "<=", ">", ">=":
		ls, lok := l.(string)
		rs, rok := r.(string)
		if lok && rok {
			switch ex.Op {
			case "<":
				return ls < rs, nil
			case "<=":
				return ls <= rs, nil
			case ">":
				return ls > rs, nil
			case ">=":
				return ls >= rs, nil
			}
		}
		a, _ := ToNumber(l)
		b, _ := ToNumber(r)
		switch ex.Op {
		case "<":
			return a < b, nil
		case "<=":
			return a <= b, nil
		case ">":
			return a > b, nil
		case ">=":
			return a >= b, nil
		}
	}
	return nil, rerrf("unknown binary operator %s", ex.Op)
}

func addValues(l, r Value) Value {
	if ls, ok := l.(string); ok {
		return ls + ToString(r)
	}
	if rs, ok := r.(string); ok {
		return ToString(l) + rs
	}
	a, _ := ToNumber(l)
	b, _ := ToNumber(r)
	return a + b
}

func strictEqual(l, r Value) bool {
	switch a := l.(type) {
	case nil:
		return r == nil
	case nullType:
		_, ok := r.(nullType)
		return ok
	case bool:
		b, ok := r.(bool)
		return ok && a == b
	case float64:
		b, ok := r.(float64)
		return ok && a == b
	case string:
		b, ok := r.(string)
		return ok && a == b
	default:
		return l == r // reference equality for objects/functions
	}
}

func looseEqual(l, r Value) bool {
	// null == undefined; otherwise coerce numbers/strings; fall back to strict.
	lNullish := l == nil || l == Value(NullValue)
	rNullish := r == nil || r == Value(NullValue)
	if lNullish || rNullish {
		return lNullish && rNullish
	}
	if ln, lok := ToNumber(l); lok {
		if rn, rok := ToNumber(r); rok {
			return ln == rn
		}
	}
	return strictEqual(l, r)
}

// arrayMethod returns a native implementation of the named Array method
// bound to o.
func arrayMethod(o *Object, name string) (Value, bool) {
	switch name {
	case "push":
		return NativeFunc(func(_ Value, args []Value) (Value, error) {
			n := ArrayLen(o)
			for _, v := range args {
				o.Props[itoa(n)] = v
				n++
			}
			o.Props["length"] = float64(n)
			return float64(n), nil
		}), true
	case "pop":
		return NativeFunc(func(_ Value, _ []Value) (Value, error) {
			n := ArrayLen(o)
			if n == 0 {
				return nil, nil
			}
			key := itoa(n - 1)
			v := o.Props[key]
			delete(o.Props, key)
			o.Props["length"] = float64(n - 1)
			return v, nil
		}), true
	case "join":
		return NativeFunc(func(_ Value, args []Value) (Value, error) {
			sep := ","
			if len(args) > 0 {
				sep = ToString(args[0])
			}
			parts := make([]string, 0, ArrayLen(o))
			for _, v := range ArrayElems(o) {
				parts = append(parts, ToString(v))
			}
			return joinStrings(parts, sep), nil
		}), true
	case "indexOf":
		return NativeFunc(func(_ Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return float64(-1), nil
			}
			for i, v := range ArrayElems(o) {
				if strictEqual(v, args[0]) {
					return float64(i), nil
				}
			}
			return float64(-1), nil
		}), true
	}
	return nil, false
}

func itoa(n int) string {
	return ToString(float64(n))
}

func joinStrings(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
