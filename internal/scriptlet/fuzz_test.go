package scriptlet

import (
	"errors"
	"testing"
)

// FuzzRun checks that arbitrary input never panics the interpreter: it
// either executes (within a small budget) or fails with a structured error.
func FuzzRun(f *testing.F) {
	seeds := []string{
		"",
		"var a = 1 + 2 * 3;",
		"function f(x) { return x ? 'y' : 'n'; } f(1);",
		"for (var i = 0; i < 3; i++) { if (i === 1) { continue; } }",
		"var a = [1,2,3]; a.push(4); a.join('-');",
		"while (true) {}",
		"var o = {a: {b: {c: 1}}}; o.a.b.c += 1;",
		"'str'.indexOf('t') + typeof x;",
		"confirm(",
		"}{",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		in := NewInterp()
		in.Budget = 20_000
		err := in.Run(src)
		if err == nil {
			return
		}
		var se *SyntaxError
		var re *RuntimeError
		if errors.As(err, &se) || errors.As(err, &re) || errors.Is(err, ErrBudget) {
			return
		}
		// Loop-control signals at top level are acceptable structured errors.
		if _, ok := err.(breakSignal); ok {
			return
		}
		if _, ok := err.(continueSignal); ok {
			return
		}
		t.Fatalf("unstructured error type %T: %v", err, err)
	})
}
