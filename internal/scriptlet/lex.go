// Package scriptlet is a small ECMAScript-subset interpreter.
//
// The evasion techniques in the paper are delivered as inline JavaScript
// (Appendix C): an alert/confirm gate, a window.onload hook with setTimeout,
// and dynamic form construction plus submission after a CAPTCHA callback.
// Whether an anti-phishing bot reaches the phishing payload depends on
// whether its browser emulation executes that script — so the simulation
// needs a real, if small, interpreter rather than pattern matching.
//
// Supported: var declarations, assignment (including member assignment),
// function declarations and expressions, calls and method calls, if/else,
// while, return, ternary, object literals, the usual arithmetic/comparison/
// logical operators, strings, numbers, booleans, null/undefined. Host code
// exposes objects and native functions through the Interp's global scope.
package scriptlet

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct
	tokKeyword
)

var keywords = map[string]bool{
	"var": true, "function": true, "if": true, "else": true, "return": true,
	"while": true, "for": true, "break": true, "continue": true,
	"true": true, "false": true, "null": true, "undefined": true,
	"typeof": true, "new": true,
}

type token struct {
	kind tokKind
	text string
	num  float64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of script"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

// SyntaxError reports a lexing or parsing failure with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("scriptlet: line %d: %s", e.Line, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	var toks []token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.kind == tokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: l.line}, nil
	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
			l.pos++
		}
		text := l.src[start:l.pos]
		var num float64
		if _, err := fmt.Sscanf(text, "%g", &num); err != nil {
			return token{}, l.errf("bad number literal %q", text)
		}
		return token{kind: tokNumber, text: text, num: num, line: l.line}, nil
	case c == '"' || c == '\'':
		return l.lexString(c)
	default:
		for _, p := range multiPuncts {
			if strings.HasPrefix(l.src[l.pos:], p) {
				l.pos += len(p)
				return token{kind: tokPunct, text: p, line: l.line}, nil
			}
		}
		if strings.ContainsRune("+-*/%=<>!&|(){}[];,.?:", rune(c)) {
			l.pos++
			return token{kind: tokPunct, text: string(c), line: l.line}, nil
		}
		return token{}, l.errf("unexpected character %q", string(c))
	}
}

// multiPuncts are matched longest-first.
var multiPuncts = []string{"===", "!==", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "++", "--"}

func (l *lexer) lexString(quote byte) (token, error) {
	line := l.line
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token{kind: tokString, text: b.String(), line: line}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated escape in string")
			}
			switch e := l.src[l.pos]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '\'', '"', '/':
				b.WriteByte(e)
			default:
				return token{}, l.errf("unsupported escape \\%c", e)
			}
			l.pos++
		case '\n':
			return token{}, l.errf("unterminated string literal")
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errf("unterminated string literal")
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case unicode.IsSpace(rune(c)):
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
