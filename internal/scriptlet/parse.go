package scriptlet

import "fmt"

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Expr is an expression node.
type Expr interface{ exprNode() }

// Statements.
type (
	// VarStmt is `var name = init;` (init may be nil).
	VarStmt struct {
		Name string
		Init Expr
	}
	// ExprStmt is a bare expression statement.
	ExprStmt struct{ E Expr }
	// IfStmt is if/else.
	IfStmt struct {
		Cond Expr
		Then []Stmt
		Else []Stmt
	}
	// WhileStmt is a while loop.
	WhileStmt struct {
		Cond Expr
		Body []Stmt
	}
	// ForStmt is a C-style for loop; Init/Cond/Post may be nil.
	ForStmt struct {
		Init Stmt
		Cond Expr
		Post Expr
		Body []Stmt
	}
	// BreakStmt exits the innermost loop.
	BreakStmt struct{}
	// ContinueStmt skips to the innermost loop's next iteration.
	ContinueStmt struct{}
	// ReturnStmt returns from the enclosing function.
	ReturnStmt struct{ E Expr } // E may be nil
	// FuncDecl is `function name(params) { body }`.
	FuncDecl struct {
		Name string
		Fn   *FuncLit
	}
)

func (*VarStmt) stmtNode()      {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*FuncDecl) stmtNode()     {}

// Expressions.
type (
	// NumberLit is a numeric literal.
	NumberLit struct{ Val float64 }
	// StringLit is a string literal.
	StringLit struct{ Val string }
	// BoolLit is true/false.
	BoolLit struct{ Val bool }
	// NullLit is null.
	NullLit struct{}
	// UndefinedLit is undefined.
	UndefinedLit struct{}
	// Ident is a variable reference.
	Ident struct{ Name string }
	// AssignExpr is target = value (also += and -=, carried in Op).
	AssignExpr struct {
		Op     string // "=", "+=", "-="
		Target Expr   // Ident, MemberExpr or IndexExpr
		Value  Expr
	}
	// BinaryExpr is a binary operation.
	BinaryExpr struct {
		Op   string
		L, R Expr
	}
	// UnaryExpr is !x, -x, or typeof x.
	UnaryExpr struct {
		Op string
		X  Expr
	}
	// CondExpr is cond ? a : b.
	CondExpr struct {
		Cond, Then, Else Expr
	}
	// CallExpr is fn(args...).
	CallExpr struct {
		Fn   Expr
		Args []Expr
	}
	// MemberExpr is obj.name.
	MemberExpr struct {
		Obj  Expr
		Name string
	}
	// IndexExpr is obj[key].
	IndexExpr struct {
		Obj, Key Expr
	}
	// FuncLit is a function expression.
	FuncLit struct {
		Name   string
		Params []string
		Body   []Stmt
	}
	// ObjectLit is {key: value, ...}.
	ObjectLit struct {
		Keys []string
		Vals []Expr
	}
	// ArrayLit is [a, b, ...].
	ArrayLit struct {
		Elems []Expr
	}
	// UpdateExpr is the postfix x++ / x-- (evaluates to the old value).
	UpdateExpr struct {
		Op     string // "++" or "--"
		Target Expr   // Ident, MemberExpr or IndexExpr
	}
	// NewExpr is `new Ctor(args...)` — evaluated like a call.
	NewExpr struct {
		Ctor Expr
		Args []Expr
	}
)

func (*NumberLit) exprNode()    {}
func (*StringLit) exprNode()    {}
func (*BoolLit) exprNode()      {}
func (*NullLit) exprNode()      {}
func (*UndefinedLit) exprNode() {}
func (*Ident) exprNode()        {}
func (*AssignExpr) exprNode()   {}
func (*BinaryExpr) exprNode()   {}
func (*UnaryExpr) exprNode()    {}
func (*CondExpr) exprNode()     {}
func (*CallExpr) exprNode()     {}
func (*MemberExpr) exprNode()   {}
func (*IndexExpr) exprNode()    {}
func (*FuncLit) exprNode()      {}
func (*ObjectLit) exprNode()    {}
func (*ArrayLit) exprNode()     {}
func (*UpdateExpr) exprNode()   {}
func (*NewExpr) exprNode()      {}

// Parse compiles source into a statement list.
func Parse(src string) ([]Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Stmt
	for !p.at(tokEOF, "") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, &SyntaxError{Line: t.line, Msg: fmt.Sprintf("expected %q, found %s", want, t)}
	}
	p.advance()
	return t, nil
}

func (p *parser) endStatement() {
	for p.accept(tokPunct, ";") {
	}
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.at(tokKeyword, "var"):
		p.advance()
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.accept(tokPunct, "=") {
			init, err = p.expression()
			if err != nil {
				return nil, err
			}
		}
		p.endStatement()
		return &VarStmt{Name: name.text, Init: init}, nil

	case p.at(tokKeyword, "function"):
		// Lookahead: `function name(` is a declaration; bare function
		// expressions as statements are not produced by our scripts.
		p.advance()
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		fn, err := p.funcRest(name.text)
		if err != nil {
			return nil, err
		}
		p.endStatement()
		return &FuncDecl{Name: name.text, Fn: fn}, nil

	case p.at(tokKeyword, "if"):
		p.advance()
		return p.ifRest()

	case p.at(tokKeyword, "for"):
		p.advance()
		return p.forRest()

	case p.accept(tokKeyword, "break"):
		p.endStatement()
		return &BreakStmt{}, nil

	case p.accept(tokKeyword, "continue"):
		p.endStatement()
		return &ContinueStmt{}, nil

	case p.at(tokKeyword, "while"):
		p.advance()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.blockOrSingle()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil

	case p.at(tokKeyword, "return"):
		p.advance()
		var e Expr
		if !p.at(tokPunct, ";") && !p.at(tokPunct, "}") && !p.at(tokEOF, "") {
			var err error
			e, err = p.expression()
			if err != nil {
				return nil, err
			}
		}
		p.endStatement()
		return &ReturnStmt{E: e}, nil

	case p.accept(tokPunct, ";"):
		return &ExprStmt{E: &UndefinedLit{}}, nil

	default:
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		p.endStatement()
		return &ExprStmt{E: e}, nil
	}
}

// forRest parses "(init; cond; post) body" after the for keyword.
func (p *parser) forRest() (Stmt, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	st := &ForStmt{}
	if !p.at(tokPunct, ";") {
		if p.at(tokKeyword, "var") {
			p.advance()
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			var init Expr
			if p.accept(tokPunct, "=") {
				init, err = p.expression()
				if err != nil {
					return nil, err
				}
			}
			st.Init = &VarStmt{Name: name.text, Init: init}
		} else {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			st.Init = &ExprStmt{E: e}
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ";") {
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ")") {
		post, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *parser) ifRest() (Stmt, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.accept(tokKeyword, "else") {
		if p.at(tokKeyword, "if") {
			p.advance()
			nested, err := p.ifRest()
			if err != nil {
				return nil, err
			}
			els = []Stmt{nested}
		} else {
			els, err = p.blockOrSingle()
			if err != nil {
				return nil, err
			}
		}
	}
	return &IfStmt{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) blockOrSingle() ([]Stmt, error) {
	if p.accept(tokPunct, "{") {
		var stmts []Stmt
		for !p.accept(tokPunct, "}") {
			if p.at(tokEOF, "") {
				return nil, &SyntaxError{Line: p.cur().line, Msg: "unterminated block"}
			}
			s, err := p.statement()
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, s)
		}
		return stmts, nil
	}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

// funcRest parses "(params) { body }" after the function keyword (and
// optional name).
func (p *parser) funcRest(name string) (*FuncLit, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var params []string
	for !p.accept(tokPunct, ")") {
		id, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		params = append(params, id.text)
		if !p.accept(tokPunct, ",") && !p.at(tokPunct, ")") {
			return nil, &SyntaxError{Line: p.cur().line, Msg: "expected , or ) in parameter list"}
		}
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var body []Stmt
	for !p.accept(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, &SyntaxError{Line: p.cur().line, Msg: "unterminated function body"}
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	return &FuncLit{Name: name, Params: params, Body: body}, nil
}

// Expression parsing: assignment > ternary > logical-or > logical-and >
// equality > relational > additive > multiplicative > unary > postfix >
// primary.

func (p *parser) expression() (Expr, error) { return p.assignment() }

func (p *parser) assignment() (Expr, error) {
	left, err := p.ternary()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-="} {
		if p.at(tokPunct, op) {
			switch left.(type) {
			case *Ident, *MemberExpr, *IndexExpr:
			default:
				return nil, &SyntaxError{Line: p.cur().line, Msg: "invalid assignment target"}
			}
			p.advance()
			val, err := p.assignment()
			if err != nil {
				return nil, err
			}
			return &AssignExpr{Op: op, Target: left, Value: val}, nil
		}
	}
	return left, nil
}

func (p *parser) ternary() (Expr, error) {
	cond, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	if !p.accept(tokPunct, "?") {
		return cond, nil
	}
	then, err := p.assignment()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return nil, err
	}
	els, err := p.assignment()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: then, Else: els}, nil
}

var binaryLevels = [][]string{
	{"||"},
	{"&&"},
	{"===", "!==", "==", "!="},
	{"<", "<=", ">", ">="},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binary(level int) (Expr, error) {
	if level >= len(binaryLevels) {
		return p.unary()
	}
	left, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range binaryLevels[level] {
			if p.at(tokPunct, op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return left, nil
		}
		p.advance()
		right, err := p.binary(level + 1)
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: matched, L: left, R: right}
	}
}

func (p *parser) unary() (Expr, error) {
	switch {
	case p.accept(tokPunct, "!"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "!", X: x}, nil
	case p.accept(tokPunct, "-"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	case p.accept(tokKeyword, "typeof"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "typeof", X: x}, nil
	case p.accept(tokKeyword, "new"):
		callee, err := p.postfix()
		if err != nil {
			return nil, err
		}
		if call, ok := callee.(*CallExpr); ok {
			return &NewExpr{Ctor: call.Fn, Args: call.Args}, nil
		}
		return &NewExpr{Ctor: callee}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokPunct, "."):
			name, err := p.memberName()
			if err != nil {
				return nil, err
			}
			e = &MemberExpr{Obj: e, Name: name}
		case p.accept(tokPunct, "["):
			key, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			e = &IndexExpr{Obj: e, Key: key}
		case p.accept(tokPunct, "("):
			var args []Expr
			for !p.accept(tokPunct, ")") {
				a, err := p.assignment()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(tokPunct, ",") && !p.at(tokPunct, ")") {
					return nil, &SyntaxError{Line: p.cur().line, Msg: "expected , or ) in call"}
				}
			}
			e = &CallExpr{Fn: e, Args: args}
		case p.at(tokPunct, "++") || p.at(tokPunct, "--"):
			op := p.cur().text
			switch e.(type) {
			case *Ident, *MemberExpr, *IndexExpr:
			default:
				return nil, &SyntaxError{Line: p.cur().line, Msg: "invalid " + op + " target"}
			}
			p.advance()
			e = &UpdateExpr{Op: op, Target: e}
		default:
			return e, nil
		}
	}
}

// memberName allows keywords as property names (x.return is legal JS).
func (p *parser) memberName() (string, error) {
	t := p.cur()
	if t.kind == tokIdent || t.kind == tokKeyword {
		p.advance()
		return t.text, nil
	}
	return "", &SyntaxError{Line: t.line, Msg: fmt.Sprintf("expected property name, found %s", t)}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		return &NumberLit{Val: t.num}, nil
	case t.kind == tokString:
		p.advance()
		return &StringLit{Val: t.text}, nil
	case t.kind == tokKeyword && t.text == "true":
		p.advance()
		return &BoolLit{Val: true}, nil
	case t.kind == tokKeyword && t.text == "false":
		p.advance()
		return &BoolLit{Val: false}, nil
	case t.kind == tokKeyword && t.text == "null":
		p.advance()
		return &NullLit{}, nil
	case t.kind == tokKeyword && t.text == "undefined":
		p.advance()
		return &UndefinedLit{}, nil
	case t.kind == tokKeyword && t.text == "function":
		p.advance()
		name := ""
		if p.at(tokIdent, "") {
			name = p.cur().text
			p.advance()
		}
		return p.funcRest(name)
	case t.kind == tokIdent:
		p.advance()
		return &Ident{Name: t.text}, nil
	case p.accept(tokPunct, "("):
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.at(tokPunct, "{"):
		return p.objectLit()
	case p.accept(tokPunct, "["):
		lit := &ArrayLit{}
		for !p.accept(tokPunct, "]") {
			el, err := p.assignment()
			if err != nil {
				return nil, err
			}
			lit.Elems = append(lit.Elems, el)
			if !p.accept(tokPunct, ",") && !p.at(tokPunct, "]") {
				return nil, &SyntaxError{Line: p.cur().line, Msg: "expected , or ] in array literal"}
			}
		}
		return lit, nil
	}
	return nil, &SyntaxError{Line: t.line, Msg: fmt.Sprintf("unexpected %s", t)}
}

func (p *parser) objectLit() (Expr, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	lit := &ObjectLit{}
	for !p.accept(tokPunct, "}") {
		t := p.cur()
		var key string
		switch t.kind {
		case tokIdent, tokKeyword, tokString:
			key = t.text
			p.advance()
		default:
			return nil, &SyntaxError{Line: t.line, Msg: fmt.Sprintf("expected object key, found %s", t)}
		}
		if _, err := p.expect(tokPunct, ":"); err != nil {
			return nil, err
		}
		val, err := p.assignment()
		if err != nil {
			return nil, err
		}
		lit.Keys = append(lit.Keys, key)
		lit.Vals = append(lit.Vals, val)
		if !p.accept(tokPunct, ",") && !p.at(tokPunct, "}") {
			return nil, &SyntaxError{Line: p.cur().line, Msg: "expected , or } in object literal"}
		}
	}
	return lit, nil
}
