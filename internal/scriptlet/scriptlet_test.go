package scriptlet

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// run evaluates src with a capture global `out(v)` and returns everything
// passed to out.
func run(t *testing.T, src string) []Value {
	t.Helper()
	in := NewInterp()
	var captured []Value
	in.Globals.Define("out", NativeFunc(func(_ Value, args []Value) (Value, error) {
		captured = append(captured, args...)
		return nil, nil
	}))
	if err := in.Run(src); err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return captured
}

func TestArithmeticAndPrecedence(t *testing.T) {
	t.Parallel()
	got := run(t, `out(1 + 2 * 3); out((1 + 2) * 3); out(10 % 3); out(7 / 2);`)
	want := []float64{7, 9, 1, 3.5}
	for i, w := range want {
		if got[i].(float64) != w {
			t.Fatalf("result %d = %v, want %v", i, got[i], w)
		}
	}
}

func TestStringsAndConcat(t *testing.T) {
	t.Parallel()
	got := run(t, `var a = 'ab' + "cd"; out(a + 1); out(a.length); out('escaped\n'.length);`)
	if got[0].(string) != "abcd1" {
		t.Fatalf("concat = %v", got[0])
	}
	if got[1].(float64) != 4 {
		t.Fatalf("length = %v", got[1])
	}
	if got[2].(float64) != 8 {
		t.Fatalf("escaped length = %v", got[2])
	}
}

func TestStringMethods(t *testing.T) {
	t.Parallel()
	got := run(t, `out('Hello'.toLowerCase()); out('hello'.indexOf('ll')); out('hello'.indexOf('x'));`)
	if got[0].(string) != "hello" || got[1].(float64) != 2 || got[2].(float64) != -1 {
		t.Fatalf("string methods = %v", got)
	}
}

func TestVarScopingAndAssignment(t *testing.T) {
	t.Parallel()
	got := run(t, `
var x = 1;
function f() { x = 2; var y = 9; return y; }
out(f());
out(x);
`)
	if got[0].(float64) != 9 || got[1].(float64) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestIfElseChains(t *testing.T) {
	t.Parallel()
	src := `
function grade(n) {
  if (n >= 90) { return 'A'; }
  else if (n >= 80) { return 'B'; }
  else { return 'C'; }
}
out(grade(95)); out(grade(85)); out(grade(50));`
	got := run(t, src)
	if got[0] != Value("A") || got[1] != Value("B") || got[2] != Value("C") {
		t.Fatalf("grades = %v", got)
	}
}

func TestWhileLoop(t *testing.T) {
	t.Parallel()
	got := run(t, `var i = 0; var sum = 0; while (i < 5) { sum += i; i += 1; } out(sum);`)
	if got[0].(float64) != 10 {
		t.Fatalf("sum = %v", got[0])
	}
}

func TestClosuresCapture(t *testing.T) {
	t.Parallel()
	got := run(t, `
function counter() {
  var n = 0;
  return function() { n += 1; return n; };
}
var c = counter();
c(); c();
out(c());`)
	if got[0].(float64) != 3 {
		t.Fatalf("closure count = %v", got[0])
	}
}

func TestFunctionHoisting(t *testing.T) {
	t.Parallel()
	got := run(t, `out(early()); function early() { return 42; }`)
	if got[0].(float64) != 42 {
		t.Fatalf("hoisted call = %v", got[0])
	}
}

func TestTernaryAndLogical(t *testing.T) {
	t.Parallel()
	got := run(t, `
out(true ? 'yes' : 'no');
out(0 || 'fallback');
out('first' && 'second');
out(false && explode());`) // short-circuit must not call undefined explode
	if got[0] != Value("yes") || got[1] != Value("fallback") || got[2] != Value("second") || got[3] != Value(false) {
		t.Fatalf("got %v", got)
	}
}

func TestEqualitySemantics(t *testing.T) {
	t.Parallel()
	got := run(t, `
out(null == undefined);
out(null === undefined);
out(1 == '1');
out(1 === '1');
out('a' != 'b');
out(2 !== 2);`)
	want := []bool{true, false, true, false, true, false}
	for i, w := range want {
		if got[i].(bool) != w {
			t.Fatalf("equality %d = %v, want %v", i, got[i], w)
		}
	}
}

func TestObjectsAndMembers(t *testing.T) {
	t.Parallel()
	got := run(t, `
var o = {name: 'form', method: 'post', 'data-x': 7};
o.action = '/login.php';
o['extra'] = o.method + '!';
out(o.name); out(o['data-x']); out(o.action); out(o.extra); out(o.missing);`)
	if got[0] != Value("form") || got[1].(float64) != 7 || got[2] != Value("/login.php") || got[3] != Value("post!") || got[4] != nil {
		t.Fatalf("got %v", got)
	}
}

func TestMethodCallBindsThis(t *testing.T) {
	t.Parallel()
	got := run(t, `
var o = {n: 5};
o.get = function() { return this.n; };
out(o.get());`)
	if got[0].(float64) != 5 {
		t.Fatalf("this binding = %v", got[0])
	}
}

func TestTypeofOperator(t *testing.T) {
	t.Parallel()
	got := run(t, `
out(typeof 1); out(typeof 'x'); out(typeof true); out(typeof undefined);
out(typeof null); out(typeof {}); out(typeof out); out(typeof not_declared);`)
	want := []string{"number", "string", "boolean", "undefined", "object", "object", "function", "undefined"}
	for i, w := range want {
		if got[i] != Value(w) {
			t.Fatalf("typeof %d = %v, want %v", i, got[i], w)
		}
	}
}

func TestUndefinedVariableIsError(t *testing.T) {
	t.Parallel()
	in := NewInterp()
	err := in.Run(`missing + 1;`)
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RuntimeError", err)
	}
}

func TestCallingNonFunctionIsError(t *testing.T) {
	t.Parallel()
	in := NewInterp()
	if err := in.Run(`var x = 5; x();`); err == nil {
		t.Fatal("calling a number should fail")
	}
}

func TestMemberOfUndefinedIsError(t *testing.T) {
	t.Parallel()
	in := NewInterp()
	if err := in.Run(`var u; u.prop;`); err == nil {
		t.Fatal("member of undefined should fail")
	}
}

func TestInfiniteLoopHitsBudget(t *testing.T) {
	t.Parallel()
	in := NewInterp()
	in.Budget = 10_000
	err := in.Run(`while (true) { var x = 1; }`)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestSyntaxErrorsReportLine(t *testing.T) {
	t.Parallel()
	_, err := Parse("var a = 1;\nvar b = @;")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want SyntaxError", err)
	}
	if se.Line != 2 {
		t.Fatalf("error line = %d, want 2", se.Line)
	}
}

func TestUnterminatedString(t *testing.T) {
	t.Parallel()
	if _, err := Parse(`var s = "open`); err == nil {
		t.Fatal("unterminated string should fail to parse")
	}
}

func TestCommentsIgnored(t *testing.T) {
	t.Parallel()
	got := run(t, `
// line comment
var a = 1; /* block
comment */ out(a);`)
	if got[0].(float64) != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestHostObjectGetterSetter(t *testing.T) {
	t.Parallel()
	in := NewInterp()
	store := map[string]Value{}
	host := &Object{
		Class:  "Host",
		Getter: func(key string) (Value, bool) { v, ok := store[key]; return v, ok },
		Setter: func(key string, v Value) bool { store[key] = v; return true },
	}
	in.Globals.Define("host", host)
	if err := in.Run(`host.title = 'Please sign in'; host.count = 2 + 3;`); err != nil {
		t.Fatal(err)
	}
	if store["title"] != Value("Please sign in") || store["count"].(float64) != 5 {
		t.Fatalf("store = %v", store)
	}
}

func TestCallValueFromHost(t *testing.T) {
	t.Parallel()
	in := NewInterp()
	if err := in.Run(`var handler = function(x) { return x * 2; };`); err != nil {
		t.Fatal(err)
	}
	fn, _ := in.Globals.Lookup("handler")
	got, err := in.CallValue(fn, nil, []Value{float64(21)})
	if err != nil {
		t.Fatal(err)
	}
	if got.(float64) != 42 {
		t.Fatalf("CallValue = %v", got)
	}
}

func TestNewExprActsLikeCall(t *testing.T) {
	t.Parallel()
	in := NewInterp()
	in.Globals.Define("Thing", NativeFunc(func(_ Value, args []Value) (Value, error) {
		o := NewObject()
		o.Set("arg", args[0])
		return o, nil
	}))
	var got Value
	in.Globals.Define("out", NativeFunc(func(_ Value, args []Value) (Value, error) {
		got = args[0]
		return nil, nil
	}))
	if err := in.Run(`var t = new Thing(9); out(t.arg);`); err != nil {
		t.Fatal(err)
	}
	if got.(float64) != 9 {
		t.Fatalf("new result = %v", got)
	}
}

func TestPaperListing2Shape(t *testing.T) {
	t.Parallel()
	// The control flow of Appendix C Listing 2, reduced to its skeleton:
	// confirm() gating a form submission.
	src := `
var first_visit = true;
var already_served = true;
var submitted = '';
function get_real_data() {
  var msg = 'Please sing in to continue...';
  var result = confirm(msg);
  if (result) {
    submitted = 'getData';
  } else {
    submitted = 'empty';
  }
}
if (first_visit && already_served) {
  get_real_data();
}
out(submitted);`
	for _, confirmResult := range []bool{true, false} {
		in := NewInterp()
		in.Globals.Define("confirm", NativeFunc(func(_ Value, _ []Value) (Value, error) {
			return confirmResult, nil
		}))
		var got Value
		in.Globals.Define("out", NativeFunc(func(_ Value, args []Value) (Value, error) {
			got = args[0]
			return nil, nil
		}))
		if err := in.Run(src); err != nil {
			t.Fatal(err)
		}
		want := "empty"
		if confirmResult {
			want = "getData"
		}
		if got != Value(want) {
			t.Fatalf("confirm=%v: submitted = %v, want %v", confirmResult, got, want)
		}
	}
}

func TestToStringRendering(t *testing.T) {
	t.Parallel()
	cases := []struct {
		v    Value
		want string
	}{
		{nil, "undefined"},
		{NullValue, "null"},
		{true, "true"},
		{false, "false"},
		{float64(3), "3"},
		{float64(3.5), "3.5"},
		{"s", "s"},
	}
	for _, c := range cases {
		if got := ToString(c.v); got != c.want {
			t.Errorf("ToString(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if got := ToString(NewObject()); !strings.Contains(got, "Object") {
		t.Errorf("ToString(object) = %q", got)
	}
}

func TestTopLevelReturnTolerated(t *testing.T) {
	t.Parallel()
	in := NewInterp()
	if err := in.Run(`return;`); err != nil {
		t.Fatalf("top-level return should be tolerated: %v", err)
	}
}

// Property: the lexer-parser never panics on arbitrary input; it either
// yields statements or a structured error.
func TestQuickParseTotal(t *testing.T) {
	t.Parallel()
	f := func(src string) bool {
		_, err := Parse(src)
		if err == nil {
			return true
		}
		var se *SyntaxError
		return errors.As(err, &se)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: arithmetic on small integers matches Go semantics.
func TestQuickArithmeticMatchesGo(t *testing.T) {
	t.Parallel()
	f := func(a, b int16) bool {
		in := NewInterp()
		var got Value
		in.Globals.Define("out", NativeFunc(func(_ Value, args []Value) (Value, error) {
			got = args[0]
			return nil, nil
		}))
		src := "out(" + ToString(float64(a)) + " + " + ToString(float64(b)) + " * 2);"
		if err := in.Run(src); err != nil {
			return false
		}
		return got.(float64) == float64(a)+float64(b)*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestForLoopWithUpdate(t *testing.T) {
	t.Parallel()
	got := run(t, `var sum = 0; for (var i = 0; i < 5; i++) { sum += i; } out(sum);`)
	if got[0].(float64) != 10 {
		t.Fatalf("for sum = %v", got[0])
	}
}

func TestForLoopBreakContinue(t *testing.T) {
	t.Parallel()
	got := run(t, `
var evens = 0;
for (var i = 0; i < 100; i++) {
  if (i % 2 === 1) { continue; }
  if (i >= 10) { break; }
  evens++;
}
out(evens);`)
	if got[0].(float64) != 5 {
		t.Fatalf("evens = %v, want 5 (0,2,4,6,8)", got[0])
	}
}

func TestWhileBreak(t *testing.T) {
	t.Parallel()
	got := run(t, `var i = 0; while (true) { i++; if (i === 7) { break; } } out(i);`)
	if got[0].(float64) != 7 {
		t.Fatalf("i = %v", got[0])
	}
}

func TestForLoopEmptyClauses(t *testing.T) {
	t.Parallel()
	got := run(t, `var i = 0; for (;;) { i++; if (i > 2) { break; } } out(i);`)
	if got[0].(float64) != 3 {
		t.Fatalf("i = %v", got[0])
	}
}

func TestPostfixUpdateYieldsOldValue(t *testing.T) {
	t.Parallel()
	got := run(t, `var i = 5; out(i++); out(i); out(i--); out(i);`)
	want := []float64{5, 6, 6, 5}
	for k, w := range want {
		if got[k].(float64) != w {
			t.Fatalf("update sequence = %v, want %v", got, want)
		}
	}
}

func TestArraysLiteralIndexLength(t *testing.T) {
	t.Parallel()
	got := run(t, `
var a = [10, 'x', true];
out(a.length); out(a[0]); out(a[1]); out(a[2]); out(a[9]);
a[1] = 'y';
out(a[1]);`)
	if got[0].(float64) != 3 || got[1].(float64) != 10 || got[2] != Value("x") || got[3] != Value(true) {
		t.Fatalf("array basics = %v", got)
	}
	if got[4] != nil {
		t.Fatalf("out-of-range read = %v, want undefined", got[4])
	}
	if got[5] != Value("y") {
		t.Fatalf("indexed write = %v", got[5])
	}
}

func TestArrayPushPop(t *testing.T) {
	t.Parallel()
	got := run(t, `
var a = [];
a.push(1); a.push(2, 3);
out(a.length);
out(a.pop());
out(a.length);
out([].pop());`)
	if got[0].(float64) != 3 || got[1].(float64) != 3 || got[2].(float64) != 2 || got[3] != nil {
		t.Fatalf("push/pop = %v", got)
	}
}

func TestArrayJoinIndexOf(t *testing.T) {
	t.Parallel()
	got := run(t, `
var a = ['a', 'b', 'c'];
out(a.join('-'));
out(a.join());
out(a.indexOf('b'));
out(a.indexOf('z'));`)
	if got[0] != Value("a-b-c") || got[1] != Value("a,b,c") || got[2].(float64) != 1 || got[3].(float64) != -1 {
		t.Fatalf("join/indexOf = %v", got)
	}
}

func TestArrayIterationWithFor(t *testing.T) {
	t.Parallel()
	got := run(t, `
var words = ['please', 'sign', 'in'];
var msg = '';
for (var i = 0; i < words.length; i++) {
  if (i > 0) { msg += ' '; }
  msg += words[i];
}
out(msg);`)
	if got[0] != Value("please sign in") {
		t.Fatalf("iteration = %v", got[0])
	}
}

func TestBreakOutsideLoopIsError(t *testing.T) {
	t.Parallel()
	in := NewInterp()
	if err := in.Run(`break;`); err == nil {
		t.Fatal("break outside a loop should error")
	}
}

func TestForInfiniteHitsBudget(t *testing.T) {
	t.Parallel()
	in := NewInterp()
	in.Budget = 5000
	if err := in.Run(`for (;;) { var x = 1; }`); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestNestedLoopsBreakInner(t *testing.T) {
	t.Parallel()
	got := run(t, `
var count = 0;
for (var i = 0; i < 3; i++) {
  for (var j = 0; j < 10; j++) {
    if (j === 2) { break; }
    count++;
  }
}
out(count);`)
	if got[0].(float64) != 6 {
		t.Fatalf("nested break count = %v, want 6", got[0])
	}
}
