package scriptlet_test

import (
	"fmt"

	"areyouhuman/internal/scriptlet"
)

// Host code exposes native functions and objects; scripts call back into
// them — exactly how the browser wires confirm() and the DOM.
func Example() {
	in := scriptlet.NewInterp()
	in.Globals.Define("confirm", scriptlet.NativeFunc(func(_ scriptlet.Value, args []scriptlet.Value) (scriptlet.Value, error) {
		fmt.Println("dialog:", scriptlet.ToString(args[0]))
		return true, nil
	}))
	var submitted string
	in.Globals.Define("submit", scriptlet.NativeFunc(func(_ scriptlet.Value, args []scriptlet.Value) (scriptlet.Value, error) {
		submitted = scriptlet.ToString(args[0])
		return nil, nil
	}))

	err := in.Run(`
		var ok = confirm('Please sign in to continue...');
		if (ok) { submit('getData'); } else { submit(''); }
	`)
	if err != nil {
		panic(err)
	}
	fmt.Println("submitted:", submitted)
	// Output:
	// dialog: Please sign in to continue...
	// submitted: getData
}
