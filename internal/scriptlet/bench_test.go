package scriptlet

import "testing"

const benchScript = `
var total = 0;
for (var i = 0; i < 50; i++) {
  total += i % 7;
}
function gate(ok) {
  var f = {method: 'post', fields: []};
  if (ok) { f.fields.push('get_data'); }
  return f.fields.length;
}
gate(total > 10);
`

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchScript); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in := NewInterp()
		if err := in.Run(benchScript); err != nil {
			b.Fatal(err)
		}
	}
}
