package scriptlet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is a runtime value: nil (undefined), Null, bool, float64, string,
// *Object, *Closure, or NativeFunc.
type Value interface{}

// Null is the JS null value (distinct from undefined, which is Go nil).
type nullType struct{}

// NullValue is the singleton null.
var NullValue = nullType{}

// Closure is a user-defined function with its captured environment.
type Closure struct {
	Fn  *FuncLit
	Env *Env
}

// NativeFunc is a host-provided function. this is the receiver for method
// calls (nil for plain calls).
type NativeFunc func(this Value, args []Value) (Value, error)

// Object is a property bag. Host code may install Getter/Setter hooks to
// back properties with native state (e.g. DOM nodes).
type Object struct {
	Props map[string]Value
	// Getter, when set, is consulted before Props.
	Getter func(key string) (Value, bool)
	// Setter, when set, observes every property write; returning true
	// suppresses the default Props store.
	Setter func(key string, v Value) bool
	// Class tags the object kind for typeof/debugging ("Object", "Element"...).
	Class string
}

// NewObject returns an empty plain object.
func NewObject() *Object {
	return &Object{Props: make(map[string]Value), Class: "Object"}
}

// NewArray returns an array object holding elems at numeric keys with a
// maintained length property.
func NewArray(elems ...Value) *Object {
	a := &Object{Props: make(map[string]Value, len(elems)+1), Class: "Array"}
	for i, v := range elems {
		a.Props[strconv.Itoa(i)] = v
	}
	a.Props["length"] = float64(len(elems))
	return a
}

// ArrayLen reports the length of an array object (0 for non-arrays).
func ArrayLen(o *Object) int {
	n, _ := ToNumber(o.Get("length"))
	return int(n)
}

// ArrayElems returns the array's elements in index order.
func ArrayElems(o *Object) []Value {
	n := ArrayLen(o)
	out := make([]Value, n)
	for i := 0; i < n; i++ {
		out[i] = o.Get(strconv.Itoa(i))
	}
	return out
}

// Get reads a property (undefined when absent).
func (o *Object) Get(key string) Value {
	if o.Getter != nil {
		if v, ok := o.Getter(key); ok {
			return v
		}
	}
	if o.Props == nil {
		return nil
	}
	return o.Props[key]
}

// Set writes a property.
func (o *Object) Set(key string, v Value) {
	if o.Setter != nil && o.Setter(key, v) {
		return
	}
	if o.Props == nil {
		o.Props = make(map[string]Value)
	}
	o.Props[key] = v
}

// Keys returns the object's own property names, sorted.
func (o *Object) Keys() []string {
	out := make([]string, 0, len(o.Props))
	for k := range o.Props {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Env is a lexical scope frame.
type Env struct {
	vars   map[string]Value
	parent *Env
}

// NewEnv returns a scope with the given parent (nil for the global frame).
// The variable map is created lazily on first Define: most frames (blocks,
// argument-less calls) never declare anything, and a nil map reads fine.
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent}
}

// Define declares a variable in this frame.
func (e *Env) Define(name string, v Value) {
	if e.vars == nil {
		e.vars = make(map[string]Value, 4)
	}
	e.vars[name] = v
}

// Lookup resolves name through the scope chain.
func (e *Env) Lookup(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Assign sets an existing variable, or defines it globally when undeclared
// (sloppy-mode JS semantics).
func (e *Env) Assign(name string, v Value) {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
		if s.parent == nil {
			s.Define(name, v)
			return
		}
	}
}

// Truthy applies JS truthiness.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case nullType:
		return false
	case bool:
		return x
	case float64:
		return x != 0
	case string:
		return x != ""
	default:
		return true
	}
}

// ToString renders a value the way JS string coercion would.
func ToString(v Value) string {
	switch x := v.(type) {
	case nil:
		return "undefined"
	case nullType:
		return "null"
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		if x == float64(int64(x)) {
			return strconv.FormatInt(int64(x), 10)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case *Object:
		return "[object " + x.Class + "]"
	case *Closure:
		name := x.Fn.Name
		if name == "" {
			name = "anonymous"
		}
		return "function " + name
	case NativeFunc:
		return "function native"
	default:
		return fmt.Sprintf("%v", x)
	}
}

// ToNumber coerces a value to a number; non-numeric strings yield NaN-like 0
// with ok=false.
func ToNumber(v Value) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		return f, err == nil
	case nil, nullType:
		return 0, x == nullType{}
	default:
		return 0, false
	}
}

// TypeOf implements the typeof operator.
func TypeOf(v Value) string {
	switch v.(type) {
	case nil:
		return "undefined"
	case nullType:
		return "object"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case string:
		return "string"
	case *Closure, NativeFunc:
		return "function"
	default:
		return "object"
	}
}
