package scriptlet

import "sync"

// Program is a compiled (parsed) script. Evaluation reads the AST but never
// writes it, so a Program is immutable after Compile and safe to share across
// interpreters and goroutines.
type Program struct {
	stmts []Stmt
}

// Compile parses src into a reusable Program.
func Compile(src string) (*Program, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{stmts: stmts}, nil
}

// ProgramCache memoises Compile by source text. The simulated pages carry a
// handful of distinct scripts that every scripted visitor re-executes, so
// caching the parse removes the dominant allocation source on the visit hot
// path. Entries are bucketed by FNV-1a hash with a full source comparison on
// lookup, so collisions can never serve the wrong program. Safe for
// concurrent use.
type ProgramCache struct {
	mu      sync.Mutex
	entries map[uint64][]programEntry
}

type programEntry struct {
	src  string
	prog *Program
	err  error
}

// maxProgramCacheEntries bounds the cache; on overflow it resets. Real worlds
// hold far fewer distinct scripts than this.
const maxProgramCacheEntries = 1024

// NewProgramCache returns an empty cache.
func NewProgramCache() *ProgramCache {
	return &ProgramCache{entries: make(map[uint64][]programEntry)}
}

// Get compiles src, memoising both successes and parse errors. A nil cache
// degrades to a plain Compile.
func (c *ProgramCache) Get(src string) (*Program, error) {
	if c == nil {
		return Compile(src)
	}
	h := fnv64aStr(src)
	c.mu.Lock()
	for _, e := range c.entries[h] {
		if e.src == src {
			c.mu.Unlock()
			return e.prog, e.err
		}
	}
	c.mu.Unlock()
	prog, err := Compile(src)
	c.mu.Lock()
	if c.total() >= maxProgramCacheEntries {
		c.entries = make(map[uint64][]programEntry)
	}
	c.entries[h] = append(c.entries[h], programEntry{src: src, prog: prog, err: err})
	c.mu.Unlock()
	return prog, err
}

func (c *ProgramCache) total() int {
	n := 0
	for _, b := range c.entries {
		n += len(b)
	}
	return n
}

func fnv64aStr(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
