package simclock

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrClosed is reported by Scheduler.Err after anything was scheduled on a
// closed scheduler.
var ErrClosed = errors.New("simclock: scheduler closed")

// Event is a unit of work scheduled on a virtual timeline.
type Event struct {
	At   time.Time
	Name string
	Run  func(now time.Time)

	seq int64
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At.Equal(h[j].At) {
		return h[i].seq < h[j].seq
	}
	return h[i].At.Before(h[j].At)
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Scheduler executes events in virtual-time order on a SimClock.
//
// The experiment harness is a discrete-event simulation: engines, crawlers,
// and monitors are event processors rather than free-running goroutines, so
// runs are fully deterministic. Events may schedule further events; Run keeps
// draining until the queue is empty or the horizon is reached.
type Scheduler struct {
	clock     *SimClock
	queue     eventHeap
	seq       int64
	ran       int
	closed    bool
	dropped   int
	err       error
	observe   EventObserver
	interrupt func() error
	intErr    error
	// free is the Event free list: executed events return here and At reuses
	// them, so a steady-state simulation allocates no Event structs. A plain
	// slice suffices — the scheduler is single-goroutine by contract.
	free []*Event
	// cur is the stamp of the event currently executing (curOK while inside
	// its Run), so sinks can ask ExecStamp on either scheduler flavour.
	cur   Stamp
	curOK bool
	// barriers are OnBarrier callbacks, fired at the end of every Run for
	// parity with the sharded barrier protocol (sinks are unbuffered on the
	// serial scheduler, so these are cheap no-op flushes).
	barriers []func()
}

// EventObserver sees every executed event: its name, virtual deadline, the
// wall-clock time its function took, and the queue depth after it ran.
// Observers are how the telemetry layer watches the scheduler without the
// scheduler depending on it.
type EventObserver func(name string, at time.Time, wall time.Duration, queueDepth int)

// Observe installs fn as the scheduler's event observer (nil disables).
// Wall-clock timing is only measured while an observer is installed, so
// unobserved runs pay nothing.
func (s *Scheduler) Observe(fn EventObserver) { s.observe = fn }

// NewScheduler returns a Scheduler driving the given clock.
func NewScheduler(clock *SimClock) *Scheduler {
	return &Scheduler{clock: clock}
}

// interruptStride is how many events Run executes between interrupt checks.
// Events are sub-millisecond, so a stride of 64 keeps cancellation latency
// far below human-perceptible while costing the hot loop nothing.
const interruptStride = 64

// SetInterrupt installs a cancellation check (typically ctx.Err) polled every
// interruptStride events during Run. The first non-nil return stops the
// current Run early, is remembered, and makes every later Run a no-op — a
// cancelled world never resumes. Pass nil to remove the check.
func (s *Scheduler) SetInterrupt(fn func() error) { s.interrupt = fn }

// InterruptErr returns the error that interrupted Run, if any.
func (s *Scheduler) InterruptErr() error { return s.intErr }

// Clock returns the clock this scheduler drives.
func (s *Scheduler) Clock() *SimClock { return s.clock }

// At schedules fn to run at the given virtual time. Times in the past run at
// the current time.
//
// Scheduling on a closed scheduler is a defined no-op error path: the event is
// dropped (never run), Dropped increments, and Err reports ErrClosed naming
// the first dropped event. This keeps late callbacks — a recheck firing into a
// world that has been torn down by the replica runner — from resurrecting a
// finished timeline.
func (s *Scheduler) At(at time.Time, name string, fn func(now time.Time)) {
	if fn == nil {
		panic("simclock: nil event func")
	}
	if s.closed {
		s.dropped++
		if s.err == nil {
			s.err = fmt.Errorf("%w: dropped event %q", ErrClosed, name)
		}
		return
	}
	if now := s.clock.Now(); at.Before(now) {
		at = now
	}
	s.seq++
	var ev *Event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = new(Event)
	}
	*ev = Event{At: at, Name: name, Run: fn, seq: s.seq}
	heap.Push(&s.queue, ev)
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, name string, fn func(now time.Time)) {
	s.At(s.clock.Now().Add(d), name, fn)
}

// Every schedules fn to run every interval until the predicate until returns
// true (checked before each run). A nil until runs forever (bounded only by
// the Run horizon).
//
// Both until and fn observe the tick's nominal deadline — start + k*interval
// — not the clock's position when the tick happens to execute. The two can
// differ when a horizon truncation ends a Run (the trailing AdvanceTo moves
// the clock to the horizon) or when the caller advances the clock directly
// before resuming; deriving the observed time from the schedule instead
// keeps the cadence and the until cutoff identical in either case.
func (s *Scheduler) Every(interval time.Duration, name string, until func(now time.Time) bool, fn func(now time.Time)) {
	scheduleEvery(s, s.clock.Now(), interval, name, until, fn)
}

// Run drains the event queue, advancing the clock to each event's deadline,
// until the queue is empty or the next event lies beyond horizon. It returns
// the number of events executed. A zero horizon means no bound.
func (s *Scheduler) Run(horizon time.Time) int {
	if s.closed || s.intErr != nil {
		return 0
	}
	ran := 0
	for len(s.queue) > 0 {
		if s.interrupt != nil && ran%interruptStride == 0 {
			if err := s.interrupt(); err != nil {
				s.intErr = err
				break
			}
		}
		next := s.queue[0]
		if !horizon.IsZero() && next.At.After(horizon) {
			break
		}
		heap.Pop(&s.queue)
		s.clock.AdvanceTo(next.At)
		s.cur, s.curOK = Stamp{At: next.At, Seq: next.seq}, true
		if s.observe != nil {
			start := time.Now()
			next.Run(s.clock.Now())
			s.observe(next.Name, next.At, time.Since(start), len(s.queue))
		} else {
			next.Run(s.clock.Now())
		}
		s.curOK = false
		ran++
		// Recycle after Run returns; nothing may hold an *Event across its
		// execution (events are internal to the scheduler).
		*next = Event{}
		s.free = append(s.free, next)
	}
	if !horizon.IsZero() && s.intErr == nil {
		s.clock.AdvanceTo(horizon)
	}
	s.ran += ran
	for _, fn := range s.barriers {
		fn()
	}
	return ran
}

// RunFor drains events for d of virtual time from now.
func (s *Scheduler) RunFor(d time.Duration) int {
	return s.Run(s.clock.Now().Add(d))
}

// Len reports the number of queued events.
func (s *Scheduler) Len() int { return len(s.queue) }

// Executed reports the total number of events run so far.
func (s *Scheduler) Executed() int { return s.ran }

// Close shuts the scheduler down: every pending event is released (so a
// retired world holds no timers or closures alive), Run becomes a no-op, and
// later At/After/Every calls take the defined ErrClosed drop path. Close is
// idempotent. Like every other Scheduler method it must be called from the
// world's single driving goroutine; the replica runner closes each world on
// the worker that ran it.
func (s *Scheduler) Close() {
	s.closed = true
	s.queue = nil
	s.free = nil
}

// Closed reports whether Close has been called.
func (s *Scheduler) Closed() bool { return s.closed }

// Dropped reports how many events were scheduled after Close (and discarded).
func (s *Scheduler) Dropped() int { return s.dropped }

// Err returns nil, or an error wrapping ErrClosed describing the first event
// scheduled after Close.
func (s *Scheduler) Err() error { return s.err }

// The sharding surface, degraded to the serial case so worlds can be wired
// against EventScheduler regardless of mode: one shard, one worker, every
// key on shard 0, and the serial execution order (At, seq) reported as
// stamps (At, 0, seq).

// Sharded reports false: this scheduler is the serial event loop.
func (s *Scheduler) Sharded() bool { return false }

// Shards returns 1.
func (s *Scheduler) Shards() int { return 1 }

// Workers returns 1.
func (s *Scheduler) Workers() int { return 1 }

// ShardFor maps every key to shard 0.
func (s *Scheduler) ShardFor(string) int { return 0 }

// OnKey returns the scheduler itself: with a single shard, affinity is moot.
func (s *Scheduler) OnKey(string) Handle { return s }

// OnShard returns the scheduler itself (shard must be 0).
func (s *Scheduler) OnShard(shard int) Handle {
	if shard != 0 {
		panic(fmt.Sprintf("simclock: shard %d out of range [0,1)", shard))
	}
	return s
}

// OnBarrier registers fn to run at the end of every Run, mirroring the
// sharded barrier so sink wiring is mode-independent.
func (s *Scheduler) OnBarrier(fn func()) { s.barriers = append(s.barriers, fn) }

// ExecStamp reports the stamp (At, 0, seq) of the event currently executing,
// or ok=false between events.
func (s *Scheduler) ExecStamp() (Stamp, bool) {
	if !s.curOK {
		return Stamp{}, false
	}
	return s.cur, true
}
