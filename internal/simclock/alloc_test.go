package simclock

import (
	"testing"
	"time"
)

// TestSchedulerAtAllocs is the allocation-regression gate for event
// scheduling: once the free list is primed and the heap has grown to its
// working size, a schedule/run cycle must reuse the event it just retired
// rather than allocate a fresh one.
func TestSchedulerAtAllocs(t *testing.T) {
	clock := New(time.Unix(0, 0))
	s := NewScheduler(clock)
	defer s.Close()

	// Prime: populate the free list and grow the heap's backing array.
	for i := 0; i < 64; i++ {
		s.At(clock.Now().Add(time.Duration(i)*time.Second), "prime", func(time.Time) {})
	}
	s.Run(clock.Now().Add(time.Minute))

	next := clock.Now()
	if got := testing.AllocsPerRun(100, func() {
		next = next.Add(time.Second)
		s.At(next, "steady", func(time.Time) {})
		s.Run(next)
	}); got != 0 {
		t.Errorf("steady-state At+Run allocates %.1f times per event, want 0", got)
	}
}
