// Package simclock provides virtual time for deterministic simulation.
//
// Every component in this repository that needs to observe or wait on time
// accepts a Clock. Production-style code would pass Real; the experiment
// harness passes a SimClock so that a two-week measurement campaign runs in
// milliseconds of wall time while keeping a minute-accurate virtual timeline.
package simclock

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts the passage of time.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall clock. It delegates to the time package.
var Real Clock = realClock{}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// SimClock is a manually advanced virtual clock.
//
// Goroutines blocked in Sleep or on an After channel are released when
// Advance (or Run) moves the clock past their deadline. The zero value is not
// usable; call New.
type SimClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     int64 // tiebreaker for waiters with equal deadlines
	// execHook, when set by a ShardedScheduler, lets Now observe the exact
	// deadline of the event running on the calling goroutine instead of the
	// window-floor clock value, so in-event timestamps match a serial run.
	// Installed before any worker starts and cleared on Close; atomic so a
	// straggling reader races cleanly with teardown.
	execHook atomic.Pointer[execHookFn]
}

// New returns a SimClock whose current time is start.
func New(start time.Time) *SimClock {
	return &SimClock{now: start}
}

// Epoch is the default start of simulated experiments: 2020-04-01 00:00 UTC,
// matching the paper's April–May 2020 measurement window.
var Epoch = time.Date(2020, time.April, 1, 0, 0, 0, 0, time.UTC)

type waiter struct {
	at  time.Time
	seq int64
	ch  chan time.Time
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h waiterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)   { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Now returns the current virtual time. While a sharded scheduler drives
// this clock, a call from inside an event returns that event's exact virtual
// deadline (the serial-equivalent reading); everywhere else it returns the
// clock's own position.
func (c *SimClock) Now() time.Time {
	if hook := c.execHook.Load(); hook != nil {
		if at, ok := (*hook)(); ok {
			return at
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// execHookFn is the in-event time hook's shape (see SimClock.execHook).
type execHookFn = func() (time.Time, bool)

// setExecHook installs (or clears, with nil) the in-event time hook.
func (c *SimClock) setExecHook(fn func() (time.Time, bool)) {
	if fn == nil {
		c.execHook.Store(nil)
		return
	}
	c.execHook.Store(&fn)
}

// Sleep blocks until the virtual clock has advanced by d. A non-positive d
// returns immediately.
func (c *SimClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-c.After(d)
}

// After returns a channel that receives the virtual time once the clock has
// advanced by d. For a non-positive d the channel is already fulfilled.
func (c *SimClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.seq++
	heap.Push(&c.waiters, &waiter{at: c.now.Add(d), seq: c.seq, ch: ch})
	return ch
}

// Advance moves the clock forward by d, releasing every waiter whose deadline
// falls inside the advanced window, in deadline order.
func (c *SimClock) Advance(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.AdvanceTo(c.Now().Add(d))
}

// AdvanceTo moves the clock forward to t. Moving backwards is a no-op.
func (c *SimClock) AdvanceTo(t time.Time) {
	for {
		c.mu.Lock()
		if len(c.waiters) == 0 || c.waiters[0].at.After(t) {
			if t.After(c.now) {
				c.now = t
			}
			c.mu.Unlock()
			return
		}
		w := heap.Pop(&c.waiters).(*waiter)
		if w.at.After(c.now) {
			c.now = w.at
		}
		c.mu.Unlock()
		w.ch <- w.at
	}
}

// NextDeadline reports the earliest pending waiter deadline, if any.
func (c *SimClock) NextDeadline() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.waiters) == 0 {
		return time.Time{}, false
	}
	return c.waiters[0].at, true
}

// Pending reports the number of goroutines currently waiting on the clock.
func (c *SimClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
