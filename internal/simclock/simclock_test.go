package simclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNewStartsAtGivenTime(t *testing.T) {
	t.Parallel()
	start := time.Date(2020, 5, 1, 12, 0, 0, 0, time.UTC)
	c := New(start)
	if got := c.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestAdvanceMovesClock(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	c.Advance(90 * time.Minute)
	want := Epoch.Add(90 * time.Minute)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceNegativeIsNoop(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	c.Advance(-time.Hour)
	if got := c.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want unchanged %v", got, Epoch)
	}
}

func TestAdvanceToBackwardsIsNoop(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	c.AdvanceTo(Epoch.Add(-time.Hour))
	if got := c.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want unchanged %v", got, Epoch)
	}
}

func TestAfterFiresAtDeadline(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	ch := c.After(10 * time.Minute)
	select {
	case <-ch:
		t.Fatal("After fired before any Advance")
	default:
	}
	c.Advance(9 * time.Minute)
	select {
	case <-ch:
		t.Fatal("After fired before its deadline")
	default:
	}
	c.Advance(time.Minute)
	select {
	case at := <-ch:
		want := Epoch.Add(10 * time.Minute)
		if !at.Equal(want) {
			t.Fatalf("After delivered %v, want %v", at, want)
		}
	default:
		t.Fatal("After did not fire at its deadline")
	}
}

func TestAfterNonPositiveFiresImmediately(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) should be immediately fulfilled")
	}
	select {
	case <-c.After(-time.Second):
	default:
		t.Fatal("After(<0) should be immediately fulfilled")
	}
}

func TestWaitersDeliveredTheirOwnDeadline(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	durations := []time.Duration{30 * time.Minute, 10 * time.Minute, 20 * time.Minute}
	chans := make([]<-chan time.Time, len(durations))
	for i, d := range durations {
		chans[i] = c.After(d)
	}
	c.Advance(time.Hour)
	for i, d := range durations {
		select {
		case at := <-chans[i]:
			if want := Epoch.Add(d); !at.Equal(want) {
				t.Fatalf("waiter %d delivered %v, want %v", i, at, want)
			}
		default:
			t.Fatalf("waiter %d not released", i)
		}
	}
}

func TestConcurrentSleepersAllRelease(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	const n = 16
	var wg sync.WaitGroup
	ready := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch := c.After(time.Duration(i+1) * time.Minute)
			ready <- struct{}{}
			<-ch
		}(i)
	}
	for i := 0; i < n; i++ {
		<-ready
	}
	c.Advance(time.Hour)
	wg.Wait() // deadlocks (and times out the test) if any sleeper is stuck
}

func TestPendingAndNextDeadline(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("NextDeadline should report none on a fresh clock")
	}
	c.After(5 * time.Minute)
	c.After(2 * time.Minute)
	if got := c.Pending(); got != 2 {
		t.Fatalf("Pending() = %d, want 2", got)
	}
	at, ok := c.NextDeadline()
	if !ok || !at.Equal(Epoch.Add(2*time.Minute)) {
		t.Fatalf("NextDeadline() = %v,%v; want %v,true", at, ok, Epoch.Add(2*time.Minute))
	}
	c.Advance(10 * time.Minute)
	if got := c.Pending(); got != 0 {
		t.Fatalf("Pending() after release = %d, want 0", got)
	}
}

func TestRealClockBasics(t *testing.T) {
	t.Parallel()
	before := time.Now()
	got := Real.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
	select {
	case <-Real.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("Real.After(1ms) did not fire within 5s")
	}
	Real.Sleep(0) // must not block
}

// Property: advancing by any sequence of non-negative durations is equivalent
// to advancing once by their sum.
func TestQuickAdvanceAdditive(t *testing.T) {
	t.Parallel()
	f := func(steps []uint16) bool {
		a := New(Epoch)
		b := New(Epoch)
		var total time.Duration
		for _, s := range steps {
			d := time.Duration(s) * time.Second
			a.Advance(d)
			total += d
		}
		b.Advance(total)
		return a.Now().Equal(b.Now())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a waiter never observes a delivery time earlier than its deadline.
func TestQuickAfterNeverEarly(t *testing.T) {
	t.Parallel()
	f := func(delays []uint8, adv uint16) bool {
		c := New(Epoch)
		type pending struct {
			deadline time.Time
			ch       <-chan time.Time
		}
		var ps []pending
		for _, d := range delays {
			dd := time.Duration(d) * time.Minute
			ps = append(ps, pending{deadline: c.Now().Add(dd), ch: c.After(dd)})
		}
		c.Advance(time.Duration(adv) * time.Minute)
		for _, p := range ps {
			select {
			case at := <-p.ch:
				if at.Before(p.deadline) {
					return false
				}
			default:
				// Not yet due: deadline must be in the future.
				if !p.deadline.After(c.Now()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
