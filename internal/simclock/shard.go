package simclock

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements deterministic intra-world parallelism: a single
// world's event queue partitioned into shards executed by a worker pool in
// lock-stepped virtual-time windows (DESIGN.md §13).
//
// The contract is byte-identity across worker counts, not across modes: a
// sharded run produces the same journal, metrics, and tables for any Workers
// value (including 1), because every source of order is derived from virtual
// time and per-shard sequence numbers, never from goroutine interleaving.
//   - Events carry a Stamp (At, Shard, Seq); shard-local execution order is
//     the heap order (At, Seq), identical regardless of which worker drains
//     the shard or when.
//   - A window [W, W+Window) is drained concurrently across shards, then all
//     workers synchronize at a barrier. Within a window, shards share nothing:
//     an event may only mutate state owned by its own shard or state behind
//     a published-at-barrier buffer (journal, blacklists, mail).
//   - Cross-shard sends go through per-shard mailboxes. Deliveries are
//     deferred to the barrier and merged in (At, source shard, source seq,
//     send index) order — a total order independent of worker scheduling —
//     before receiving fresh destination sequence numbers.
//   - The clock never moves during a window. Event functions receive their
//     exact virtual deadline as now, and SimClock.Now() observes the running
//     event's deadline through the exec hook, so timestamps match what a
//     serial scheduler would produce.

// Stamp locates one executed event in a scheduler's deterministic total
// order: its virtual deadline, owning shard, and shard-local sequence number.
// Stamps order buffered side effects (journal entries, blacklist additions,
// mail) so publication order is independent of worker count.
type Stamp struct {
	At    time.Time
	Shard int
	Seq   int64
}

// Less orders stamps by (At, Shard, Seq) — the scheduler's total event order.
func (s Stamp) Less(o Stamp) bool {
	if !s.At.Equal(o.At) {
		return s.At.Before(o.At)
	}
	if s.Shard != o.Shard {
		return s.Shard < o.Shard
	}
	return s.Seq < o.Seq
}

// A StampSource reports the stamp of the event currently executing on the
// calling goroutine, if any. Barrier-buffered sinks take one to tag entries.
type StampSource interface {
	ExecStamp() (Stamp, bool)
}

// A Handle schedules events with a fixed shard affinity. Scheduling through
// a handle obtained from OnKey pins the event chain — the event and
// everything it transitively schedules — to the key's shard.
type Handle interface {
	// At schedules fn at the given virtual time (past times are clamped).
	At(at time.Time, name string, fn func(now time.Time))
	// After schedules fn d after the current virtual time.
	After(d time.Duration, name string, fn func(now time.Time))
	// Every schedules fn every interval until the predicate returns true.
	Every(interval time.Duration, name string, until func(now time.Time) bool, fn func(now time.Time))
}

// EventScheduler is the scheduling contract shared by the serial Scheduler
// and the ShardedScheduler, so worlds can be wired against either.
//
// The sharding surface degrades gracefully on the serial scheduler: one
// shard, one worker, every key mapping to shard 0, and ExecStamp reporting
// (At, 0, Seq) of the running event.
type EventScheduler interface {
	Handle
	StampSource
	// Clock returns the clock this scheduler drives.
	Clock() *SimClock
	// Run drains events up to horizon (zero = unbounded); RunFor is Run at
	// now+d. Both return the number of events executed.
	Run(horizon time.Time) int
	RunFor(d time.Duration) int
	Len() int
	Executed() int
	Close()
	Closed() bool
	Dropped() int
	Err() error
	SetInterrupt(fn func() error)
	InterruptErr() error
	Observe(fn EventObserver)
	// Sharded reports whether this scheduler runs the windowed shard
	// protocol (even with one worker). Sinks use it to pick buffered mode.
	Sharded() bool
	// Shards is the number of event-queue partitions; Workers the number of
	// goroutines draining them. Workers affects wall time only.
	Shards() int
	Workers() int
	// ShardFor maps an affinity key (canonically "host:<registrable domain>")
	// to its shard.
	ShardFor(key string) int
	// OnKey returns a Handle pinning event chains to ShardFor(key).
	OnKey(key string) Handle
	// OnShard returns a Handle pinning event chains to the given shard.
	OnShard(shard int) Handle
	// OnBarrier registers fn to run at every window barrier (and at the end
	// of every Run), on the driving goroutine with no events in flight.
	// Sinks flush their per-shard buffers here. Callbacks run in
	// registration order and must not schedule events.
	OnBarrier(fn func())
}

// ShardFor is the key-to-shard map shared by both schedulers: FNV-1a folded
// through a splitmix64 finalizer (the same avalanche family as
// core.SplitSeed), so nearby keys land on independent shards and the mapping
// is identical on every platform.
func shardFor(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	return int(h % uint64(shards))
}

// scheduleEvery is the shared Every implementation: ticks track their own
// nominal deadline so the until predicate and fn observe the tick time
// consistently even when a horizon truncation or an external AdvanceTo moves
// the clock past a deadline before the tick runs. The cadence never drifts:
// tick k always observes start + (k+1)*interval.
func scheduleEvery(h Handle, start time.Time, interval time.Duration, name string, until func(now time.Time) bool, fn func(now time.Time)) {
	if interval <= 0 {
		panic(fmt.Sprintf("simclock: non-positive interval %v for %q", interval, name))
	}
	next := start.Add(interval)
	var tick func(time.Time)
	tick = func(time.Time) {
		at := next
		if until != nil && until(at) {
			return
		}
		fn(at)
		next = next.Add(interval)
		h.At(next, name, tick)
	}
	h.At(next, name, tick)
}

// Defaults for ShardedConfig zero fields.
const (
	// DefaultShards fixes the partition count independently of Workers, so
	// shard assignment — and therefore output — is identical at any
	// parallelism.
	DefaultShards = 8
	// DefaultWindow is the lock-step quantum. Five virtual minutes is well
	// under every feedback latency in the study (crawl delays, poll
	// cadences), so cross-shard barrier deferral stays invisible, while
	// windows remain wide enough to batch useful parallel work.
	DefaultWindow = 5 * time.Minute
)

// ShardedConfig parameterises NewSharded. Zero fields take the defaults
// (DefaultShards, one worker, DefaultWindow).
type ShardedConfig struct {
	Shards  int
	Workers int
	Window  time.Duration
}

// mailEntry is one cross-shard send awaiting delivery at the barrier.
type mailEntry struct {
	at       time.Time
	name     string
	fn       func(now time.Time)
	srcShard int
	srcSeq   int64
	sendIdx  int
}

// shardState is one event-queue partition. Its queue, seq, free list, and
// ran counter are touched only by the worker currently draining it (or by
// the driver between windows); the mailbox is the one concurrently written
// field and has its own lock.
type shardState struct {
	id    int
	queue eventHeap
	seq   int64
	ran   int64
	free  []*Event

	mu      sync.Mutex
	mailbox []mailEntry
}

// execCtx is the identity of the event currently running on a worker.
type execCtx struct {
	sh    *shardState
	at    time.Time
	seq   int64
	sends int
}

// workerCtx is one worker goroutine's slot in the gid map. Only its own
// goroutine reads or writes exec.
type workerCtx struct {
	exec *execCtx
}

// ShardedScheduler executes one world's events on a pool of workers in
// lock-stepped virtual-time windows, with output byte-identical for any
// worker count. It implements EventScheduler; see the file comment for the
// protocol and DESIGN.md §13 for the determinism argument.
//
// Like the serial Scheduler, all driving methods (Run, Close, At outside
// events, …) belong to a single goroutine. Event functions run on pool
// workers; scheduling from inside an event is routed by the calling
// goroutine's execution context.
type ShardedScheduler struct {
	clock   *SimClock
	window  time.Duration
	shards  []*shardState
	workers int

	// gidCtx maps worker goroutine ids to their contexts. Built once before
	// the first window and read-only after, so lookups are lock-free.
	gidCtx  map[uint64]*workerCtx
	work    chan *shardState
	wg      sync.WaitGroup
	poolUp  bool
	running atomic.Bool

	// windowEnd and limit are set by the driver before dispatching a window
	// and read by workers during it (ordered by the work-channel send).
	windowEnd time.Time
	limit     time.Time

	onBarrier []func()
	observe   EventObserver

	ran     int
	closed  bool
	dropped int
	err     error

	interrupt func() error
	intMu     sync.Mutex
	intErr    error
}

// NewSharded returns a ShardedScheduler driving clock. Worker goroutines are
// started lazily on the first Run and stopped by Close.
func NewSharded(clock *SimClock, cfg ShardedConfig) *ShardedScheduler {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	s := &ShardedScheduler{clock: clock, window: cfg.Window, workers: cfg.Workers}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, &shardState{id: i})
	}
	// Let SimClock.Now() observe the running event's exact deadline, so
	// in-event timestamps match a serial execution instead of the window
	// floor.
	clock.setExecHook(s.execAt)
	return s
}

// gid returns the calling goroutine's id, parsed from the runtime.Stack
// header ("goroutine N [running]:"). Workers resolve their execution context
// through it; the id is stable for a goroutine's lifetime.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	frame := buf[:n]
	const prefix = "goroutine "
	if len(frame) <= len(prefix) {
		return 0
	}
	frame = frame[len(prefix):]
	i := 0
	for i < len(frame) && frame[i] != ' ' {
		i++
	}
	id, _ := strconv.ParseUint(string(frame[:i]), 10, 64)
	return id
}

// exec returns the execution context of the event running on the calling
// goroutine, or nil outside events. The running flag short-circuits the gid
// parse on the driver path between windows.
func (s *ShardedScheduler) exec() *execCtx {
	if !s.running.Load() {
		return nil
	}
	if w := s.gidCtx[gid()]; w != nil {
		return w.exec
	}
	return nil
}

func (s *ShardedScheduler) execAt() (time.Time, bool) {
	if ec := s.exec(); ec != nil {
		return ec.at, true
	}
	return time.Time{}, false
}

// ExecStamp reports the stamp of the event currently executing on the
// calling goroutine.
func (s *ShardedScheduler) ExecStamp() (Stamp, bool) {
	ec := s.exec()
	if ec == nil {
		return Stamp{}, false
	}
	return Stamp{At: ec.at, Shard: ec.sh.id, Seq: ec.seq}, true
}

// push enqueues on sh with a fresh shard-local sequence number. The caller
// must own sh (its draining worker, or the driver between windows).
func (s *ShardedScheduler) push(sh *shardState, at time.Time, name string, fn func(now time.Time)) {
	sh.seq++
	var ev *Event
	if n := len(sh.free); n > 0 {
		ev = sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
	} else {
		ev = new(Event)
	}
	*ev = Event{At: at, Name: name, Run: fn, seq: sh.seq}
	heap.Push(&sh.queue, ev)
}

// schedule routes one event. target < 0 means "the caller's shard": the
// running event's shard from a worker, shard 0 from the driver. From a
// worker, a cross-shard target goes through the destination mailbox and is
// delivered at the barrier, clamped to the window end so no shard ever
// receives work inside a window it is already draining.
func (s *ShardedScheduler) schedule(target int, at time.Time, name string, fn func(now time.Time)) {
	if fn == nil {
		panic("simclock: nil event func")
	}
	if ec := s.exec(); ec != nil {
		if at.Before(ec.at) {
			at = ec.at
		}
		if target < 0 || target == ec.sh.id {
			s.push(ec.sh, at, name, fn)
			return
		}
		if at.Before(s.windowEnd) {
			at = s.windowEnd
		}
		dst := s.shards[target]
		ec.sends++
		dst.mu.Lock()
		dst.mailbox = append(dst.mailbox, mailEntry{at: at, name: name, fn: fn, srcShard: ec.sh.id, srcSeq: ec.seq, sendIdx: ec.sends})
		dst.mu.Unlock()
		return
	}
	if s.closed {
		s.dropped++
		if s.err == nil {
			s.err = fmt.Errorf("%w: dropped event %q", ErrClosed, name)
		}
		return
	}
	if now := s.clock.Now(); at.Before(now) {
		at = now
	}
	if target < 0 {
		target = 0
	}
	s.push(s.shards[target], at, name, fn)
}

// At schedules fn on the caller's shard (shard 0 outside events).
func (s *ShardedScheduler) At(at time.Time, name string, fn func(now time.Time)) {
	s.schedule(-1, at, name, fn)
}

// After schedules fn d after the current virtual time on the caller's shard.
func (s *ShardedScheduler) After(d time.Duration, name string, fn func(now time.Time)) {
	s.schedule(-1, s.clock.Now().Add(d), name, fn)
}

// Every schedules fn every interval on the caller's shard; see
// Scheduler.Every for tick-time semantics.
func (s *ShardedScheduler) Every(interval time.Duration, name string, until func(now time.Time) bool, fn func(now time.Time)) {
	scheduleEvery(s, s.clock.Now(), interval, name, until, fn)
}

// shardHandle pins scheduling to one shard.
type shardHandle struct {
	s     *ShardedScheduler
	shard int
}

func (h shardHandle) At(at time.Time, name string, fn func(now time.Time)) {
	h.s.schedule(h.shard, at, name, fn)
}

func (h shardHandle) After(d time.Duration, name string, fn func(now time.Time)) {
	h.s.schedule(h.shard, h.s.clock.Now().Add(d), name, fn)
}

func (h shardHandle) Every(interval time.Duration, name string, until func(now time.Time) bool, fn func(now time.Time)) {
	scheduleEvery(h, h.s.clock.Now(), interval, name, until, fn)
}

// Sharded reports true: this scheduler runs the windowed shard protocol.
func (s *ShardedScheduler) Sharded() bool { return true }

// Shards returns the partition count.
func (s *ShardedScheduler) Shards() int { return len(s.shards) }

// Workers returns the pool size. It affects wall time only, never output.
func (s *ShardedScheduler) Workers() int { return s.workers }

// ShardFor maps an affinity key to its shard.
func (s *ShardedScheduler) ShardFor(key string) int { return shardFor(key, len(s.shards)) }

// OnKey returns a Handle pinning event chains to ShardFor(key).
func (s *ShardedScheduler) OnKey(key string) Handle { return s.OnShard(s.ShardFor(key)) }

// OnShard returns a Handle pinning event chains to the given shard.
func (s *ShardedScheduler) OnShard(shard int) Handle {
	if shard < 0 || shard >= len(s.shards) {
		panic(fmt.Sprintf("simclock: shard %d out of range [0,%d)", shard, len(s.shards)))
	}
	return shardHandle{s: s, shard: shard}
}

// OnBarrier registers a barrier callback; see EventScheduler.OnBarrier.
func (s *ShardedScheduler) OnBarrier(fn func()) { s.onBarrier = append(s.onBarrier, fn) }

// Observe installs fn as the event observer (nil disables). In sharded mode
// the observer is called concurrently from pool workers and must be
// goroutine-safe; queueDepth is the depth of the event's own shard.
func (s *ShardedScheduler) Observe(fn EventObserver) { s.observe = fn }

// Clock returns the clock this scheduler drives.
func (s *ShardedScheduler) Clock() *SimClock { return s.clock }

// SetInterrupt installs a cancellation check polled every interruptStride
// events on each worker; fn must be safe for concurrent use (context.Err
// is). Semantics otherwise match Scheduler.SetInterrupt.
func (s *ShardedScheduler) SetInterrupt(fn func() error) { s.interrupt = fn }

// InterruptErr returns the error that interrupted Run, if any.
func (s *ShardedScheduler) InterruptErr() error {
	s.intMu.Lock()
	defer s.intMu.Unlock()
	return s.intErr
}

func (s *ShardedScheduler) setIntErr(err error) {
	s.intMu.Lock()
	if s.intErr == nil {
		s.intErr = err
	}
	s.intMu.Unlock()
}

// ensurePool starts the workers and builds the gid map. Workers register
// their goroutine ids over a channel before the map is published, so the map
// is immutable by the time any window is dispatched.
func (s *ShardedScheduler) ensurePool() {
	if s.poolUp {
		return
	}
	s.work = make(chan *shardState)
	s.gidCtx = make(map[uint64]*workerCtx, s.workers)
	type reg struct {
		id uint64
		w  *workerCtx
	}
	regc := make(chan reg)
	for i := 0; i < s.workers; i++ {
		go func() {
			w := &workerCtx{}
			regc <- reg{id: gid(), w: w}
			for sh := range s.work {
				s.drain(sh, w)
				s.wg.Done()
			}
		}()
	}
	for i := 0; i < s.workers; i++ {
		r := <-regc
		s.gidCtx[r.id] = r.w
	}
	s.poolUp = true
}

// drain runs sh's events with deadlines inside the current window (and
// horizon), in (At, seq) order, on the calling worker.
func (s *ShardedScheduler) drain(sh *shardState, w *workerCtx) {
	ec := &execCtx{sh: sh}
	w.exec = ec
	defer func() { w.exec = nil }()
	n := 0
	for len(sh.queue) > 0 {
		next := sh.queue[0]
		if !next.At.Before(s.windowEnd) {
			break
		}
		if !s.limit.IsZero() && next.At.After(s.limit) {
			break
		}
		if s.interrupt != nil && n%interruptStride == 0 {
			if err := s.interrupt(); err != nil {
				s.setIntErr(err)
				break
			}
		}
		heap.Pop(&sh.queue)
		ec.at, ec.seq, ec.sends = next.At, next.seq, 0
		// Events receive their exact deadline as now — identical to a
		// serial execution, where the clock advances to each deadline.
		if s.observe != nil {
			start := time.Now()
			next.Run(next.At)
			s.observe(next.Name, next.At, time.Since(start), len(sh.queue))
		} else {
			next.Run(next.At)
		}
		n++
		sh.ran++
		*next = Event{}
		sh.free = append(sh.free, next)
	}
}

// mergeMailboxes delivers deferred cross-shard sends at the barrier, in
// (At, source shard, source seq, send index) order — a total order fixed by
// virtual time, so destination sequence numbers are identical for any worker
// count.
func (s *ShardedScheduler) mergeMailboxes() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		pending := sh.mailbox
		sh.mailbox = nil
		sh.mu.Unlock()
		if len(pending) == 0 {
			continue
		}
		sort.Slice(pending, func(i, j int) bool {
			a, b := pending[i], pending[j]
			if !a.at.Equal(b.at) {
				return a.at.Before(b.at)
			}
			if a.srcShard != b.srcShard {
				return a.srcShard < b.srcShard
			}
			if a.srcSeq != b.srcSeq {
				return a.srcSeq < b.srcSeq
			}
			return a.sendIdx < b.sendIdx
		})
		for _, m := range pending {
			s.push(sh, m.at, m.name, m.fn)
		}
	}
}

// nextAt returns the earliest queued deadline across shards.
func (s *ShardedScheduler) nextAt() (time.Time, bool) {
	var at time.Time
	ok := false
	for _, sh := range s.shards {
		if len(sh.queue) == 0 {
			continue
		}
		if h := sh.queue[0].At; !ok || h.Before(at) {
			at = h
			ok = true
		}
	}
	return at, ok
}

func (s *ShardedScheduler) totalRan() int {
	n := 0
	for _, sh := range s.shards {
		n += int(sh.ran)
	}
	return n
}

// Run drains windows until the queue is empty or the next event lies beyond
// horizon, then advances the clock to horizon and fires a final barrier so
// sinks are flushed even when no window ran. It returns the number of events
// executed.
func (s *ShardedScheduler) Run(horizon time.Time) int {
	if s.closed || s.InterruptErr() != nil {
		return 0
	}
	s.ensurePool()
	ran0 := s.totalRan()
	for {
		if s.interrupt != nil {
			if err := s.interrupt(); err != nil {
				s.setIntErr(err)
				break
			}
		}
		next, ok := s.nextAt()
		if !ok {
			break
		}
		if !horizon.IsZero() && next.After(horizon) {
			break
		}
		s.windowEnd = next.Add(s.window)
		s.limit = horizon
		s.clock.AdvanceTo(next)
		var busy []*shardState
		for _, sh := range s.shards {
			if len(sh.queue) == 0 {
				continue
			}
			head := sh.queue[0].At
			if head.Before(s.windowEnd) && (horizon.IsZero() || !head.After(horizon)) {
				busy = append(busy, sh)
			}
		}
		s.running.Store(true)
		s.wg.Add(len(busy))
		for _, sh := range busy {
			s.work <- sh
		}
		s.wg.Wait()
		s.running.Store(false)
		s.mergeMailboxes()
		for _, fn := range s.onBarrier {
			fn()
		}
		if s.InterruptErr() != nil {
			break
		}
		end := s.windowEnd
		if !horizon.IsZero() && horizon.Before(end) {
			end = horizon
		}
		s.clock.AdvanceTo(end)
	}
	if !horizon.IsZero() && s.InterruptErr() == nil {
		s.clock.AdvanceTo(horizon)
	}
	for _, fn := range s.onBarrier {
		fn()
	}
	s.ran = s.totalRan()
	return s.ran - ran0
}

// RunFor drains events for d of virtual time from now.
func (s *ShardedScheduler) RunFor(d time.Duration) int {
	return s.Run(s.clock.Now().Add(d))
}

// Len reports the number of queued events across all shards.
func (s *ShardedScheduler) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += len(sh.queue)
	}
	return n
}

// Executed reports the total number of events run so far.
func (s *ShardedScheduler) Executed() int { return s.totalRan() }

// ShardEventCounts returns the number of events executed per shard, for
// operator visibility (phishfarm -v). The slice is a copy.
func (s *ShardedScheduler) ShardEventCounts() []int64 {
	counts := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		counts[i] = sh.ran
	}
	return counts
}

// Close stops the worker pool, releases every pending event and mailbox
// entry, and makes later scheduling take the ErrClosed drop path. Idempotent;
// driver goroutine only.
func (s *ShardedScheduler) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.poolUp {
		close(s.work)
		s.poolUp = false
	}
	s.clock.setExecHook(nil)
	for _, sh := range s.shards {
		sh.queue = nil
		sh.free = nil
		sh.mailbox = nil
	}
	s.onBarrier = nil
}

// Closed reports whether Close has been called.
func (s *ShardedScheduler) Closed() bool { return s.closed }

// Dropped reports how many events were scheduled after Close (and discarded).
func (s *ShardedScheduler) Dropped() int { return s.dropped }

// Err returns nil, or an error wrapping ErrClosed describing the first event
// scheduled after Close.
func (s *ShardedScheduler) Err() error { return s.err }

// Interface conformance.
var (
	_ EventScheduler = (*Scheduler)(nil)
	_ EventScheduler = (*ShardedScheduler)(nil)
)
