package simclock

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// Every's until predicate and fn must observe the tick's nominal deadline
// even when the clock has been advanced past it — a horizon truncation ends
// Run with a trailing AdvanceTo, and a caller may advance the clock directly
// before resuming. Before the fix the tick observed the (later) clock
// position, so an until cutoff between the deadline and the clock position
// ended the series one tick early and the cadence drifted.
func TestEveryObservesTickTimeAcrossHorizonTruncation(t *testing.T) {
	t.Parallel()
	clock := New(Epoch)
	s := NewScheduler(clock)
	end := Epoch.Add(45 * time.Minute)
	var ticks []time.Time
	s.Every(10*time.Minute, "tick", func(now time.Time) bool {
		return now.After(end)
	}, func(now time.Time) {
		ticks = append(ticks, now)
	})
	// Truncate the run between ticks, then advance the clock past the next
	// deadline before resuming — the tick at +40m now executes "late".
	s.Run(Epoch.Add(35 * time.Minute))
	clock.AdvanceTo(Epoch.Add(47 * time.Minute))
	s.RunFor(2 * time.Hour)

	want := []time.Time{
		Epoch.Add(10 * time.Minute),
		Epoch.Add(20 * time.Minute),
		Epoch.Add(30 * time.Minute),
		Epoch.Add(40 * time.Minute),
	}
	if len(ticks) != len(want) {
		t.Fatalf("got %d ticks (%v), want %d — the +40m tick must run (40m <= until cutoff 45m) and the +50m one must not", len(ticks), ticks, len(want))
	}
	for i := range want {
		if !ticks[i].Equal(want[i]) {
			t.Errorf("tick %d observed %v, want nominal deadline %v", i, ticks[i], want[i])
		}
	}
}

// A recurring tick whose reschedule lands on a closed scheduler must take
// the defined drop path: counted by Dropped, first drop remembered by Err,
// and nothing resurrected.
func TestEveryRescheduleOntoClosedSchedulerIsDropped(t *testing.T) {
	t.Parallel()
	s := NewScheduler(New(Epoch))
	fired := 0
	s.Every(time.Minute, "tick", nil, func(now time.Time) {
		fired++
		if fired == 3 {
			// Closing from inside an event models a world torn down by a
			// callback; the tick's own reschedule is the late scheduling.
			s.Close()
		}
	})
	s.RunFor(10 * time.Minute)
	if fired != 3 {
		t.Fatalf("fired %d ticks, want 3", fired)
	}
	if s.Dropped() != 1 {
		t.Errorf("Dropped = %d, want exactly the tick reschedule", s.Dropped())
	}
	if !errors.Is(s.Err(), ErrClosed) {
		t.Errorf("Err = %v, want ErrClosed", s.Err())
	}
}

// At with a deadline already in the past is clamped to the current virtual
// time and runs immediately, after same-time events scheduled earlier.
func TestAtPastDeadlineClampsToNow(t *testing.T) {
	t.Parallel()
	clock := New(Epoch)
	s := NewScheduler(clock)
	clock.AdvanceTo(Epoch.Add(time.Hour))
	var order []string
	var ranAt time.Time
	s.At(clock.Now(), "same-time", func(now time.Time) { order = append(order, "same-time") })
	s.At(Epoch.Add(10*time.Minute), "past", func(now time.Time) {
		order = append(order, "past")
		ranAt = now
	})
	s.RunFor(time.Minute)
	if len(order) != 2 || order[0] != "same-time" || order[1] != "past" {
		t.Fatalf("execution order %v, want [same-time past] (clamp preserves FIFO among same-time events)", order)
	}
	if !ranAt.Equal(Epoch.Add(time.Hour)) {
		t.Errorf("past event ran at %v, want clamped to %v", ranAt, Epoch.Add(time.Hour))
	}
}

// The interrupt check runs before events at stride multiples; a cancellation
// landing exactly on a stride boundary must stop the run at that boundary,
// with no extra event executed.
func TestInterruptFiresExactlyOnStrideBoundary(t *testing.T) {
	t.Parallel()
	s := NewScheduler(New(Epoch))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.SetInterrupt(ctx.Err)
	ran := 0
	for i := 0; i < 3*interruptStride; i++ {
		s.At(Epoch.Add(time.Duration(i+1)*time.Second), "ev", func(now time.Time) {
			ran++
			if ran == interruptStride {
				cancel() // observed by the check before event interruptStride+1
			}
		})
	}
	got := s.RunFor(time.Hour)
	if got != interruptStride || ran != interruptStride {
		t.Fatalf("ran %d events (Run reported %d), want exactly one stride %d", ran, got, interruptStride)
	}
	if !errors.Is(s.InterruptErr(), context.Canceled) {
		t.Fatalf("InterruptErr = %v, want context.Canceled", s.InterruptErr())
	}
}

// Close must release the free list: recycled events are zeroed after running,
// but the free list itself would otherwise pin the backing array (and the
// last Run closure set into it before zeroing is reachable until then). After
// Close, a closure's referent must be collectable.
func TestCloseReleasesFreeListClosures(t *testing.T) {
	t.Parallel()
	s := NewScheduler(New(Epoch))
	type big struct{ payload [1 << 16]byte }
	leaked := &big{}
	collected := make(chan struct{})
	runtime.SetFinalizer(leaked, func(*big) { close(collected) })
	s.At(Epoch.Add(time.Second), "holds-big", func(now time.Time) {
		_ = leaked.payload[0]
	})
	s.RunFor(time.Minute) // event ran and was recycled to the free list
	leaked = nil
	s.Close()
	deadline := time.After(2 * time.Second)
	for {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-deadline:
			t.Fatal("closure referent not collected after Close — free list leaks Run closures")
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}
