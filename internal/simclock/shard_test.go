package simclock

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// shardWorkload drives a synthetic mixed workload — keyed root chains,
// unkeyed roots, cross-shard sends, recurring ticks, barrier-buffered
// output — and returns a transcript ordered purely by stamps. Identical
// transcripts across worker counts is the scheduler's core contract.
func shardWorkload(t *testing.T, workers int) string {
	t.Helper()
	clock := New(Epoch)
	s := NewSharded(clock, ShardedConfig{Shards: 4, Workers: workers, Window: 5 * time.Minute})
	defer s.Close()

	type rec struct {
		stamp Stamp
		line  string
	}
	buf := make([][]rec, s.Shards())
	var out []string
	s.OnBarrier(func() {
		var all []rec
		for i := range buf {
			all = append(all, buf[i]...)
			buf[i] = buf[i][:0]
		}
		// Insertion sort by stamp: small windows, and keeps the test free of
		// sort-package noise.
		for i := 1; i < len(all); i++ {
			for j := i; j > 0 && all[j].stamp.Less(all[j-1].stamp); j-- {
				all[j], all[j-1] = all[j-1], all[j]
			}
		}
		for _, r := range all {
			out = append(out, r.line)
		}
	})
	emit := func(format string, args ...any) {
		stamp, ok := s.ExecStamp()
		if !ok {
			t.Fatalf("emit outside event")
		}
		buf[stamp.Shard] = append(buf[stamp.Shard], rec{stamp, fmt.Sprintf("%s s%d q%d ", stamp.At.Format("15:04:05"), stamp.Shard, stamp.Seq) + fmt.Sprintf(format, args...)})
	}

	hosts := []string{"alpha.example", "bravo.example", "charlie.example", "delta.example", "echo.example", "foxtrot.example"}
	for i, host := range hosts {
		host := host
		h := s.OnKey("host:" + host)
		// Root chains at staggered times; each chain schedules follow-ups on
		// its own shard and one cross-shard send.
		h.At(Epoch.Add(time.Duration(i)*90*time.Second), "visit:"+host, func(now time.Time) {
			emit("visit %s", host)
			s.After(45*time.Second, "revisit:"+host, func(now time.Time) {
				emit("revisit %s", host)
			})
			peer := hosts[(i+1)%len(hosts)]
			s.OnKey("host:"+peer).After(30*time.Second, "xshard:"+host, func(now time.Time) {
				emit("xshard %s->%s", host, peer)
			})
		})
		h.Every(7*time.Minute, "tick:"+host, func(now time.Time) bool {
			return now.After(Epoch.Add(40 * time.Minute))
		}, func(now time.Time) {
			emit("tick %s", host)
		})
	}
	// Unkeyed root (driver context) lands on shard 0.
	s.After(10*time.Minute, "unkeyed", func(now time.Time) {
		emit("unkeyed")
		if stamp, _ := s.ExecStamp(); stamp.Shard != 0 {
			t.Errorf("unkeyed root ran on shard %d, want 0", stamp.Shard)
		}
	})
	s.RunFor(time.Hour)
	if err := s.Err(); err != nil {
		t.Fatalf("scheduler error: %v", err)
	}
	return strings.Join(out, "\n")
}

func TestShardedByteIdenticalAcrossWorkers(t *testing.T) {
	t.Parallel()
	want := shardWorkload(t, 1)
	if want == "" {
		t.Fatal("workload produced no output")
	}
	for _, workers := range []int{2, 4, 9} {
		if got := shardWorkload(t, workers); got != want {
			t.Errorf("workers=%d transcript differs from workers=1:\n--- workers=1\n%s\n--- workers=%d\n%s", workers, want, workers, got)
		}
	}
}

func TestShardedEventsSeeExactDeadline(t *testing.T) {
	t.Parallel()
	clock := New(Epoch)
	s := NewSharded(clock, ShardedConfig{Shards: 4, Workers: 2, Window: 10 * time.Minute})
	defer s.Close()
	// Two events inside one window: the second must observe its own deadline
	// through now, ExecStamp, and Clock().Now(), not the window floor.
	at := Epoch.Add(7 * time.Minute)
	s.OnKey("a").At(Epoch.Add(time.Minute), "first", func(now time.Time) {})
	s.OnKey("a").At(at, "second", func(now time.Time) {
		if !now.Equal(at) {
			t.Errorf("now = %v, want %v", now, at)
		}
		if got := s.Clock().Now(); !got.Equal(at) {
			t.Errorf("Clock().Now() = %v, want exact deadline %v", got, at)
		}
		if stamp, ok := s.ExecStamp(); !ok || !stamp.At.Equal(at) {
			t.Errorf("ExecStamp = %v, %v; want at %v", stamp, ok, at)
		}
	})
	s.RunFor(time.Hour)
}

func TestShardedCrossShardSendDeferredToBarrier(t *testing.T) {
	t.Parallel()
	clock := New(Epoch)
	s := NewSharded(clock, ShardedConfig{Shards: 4, Workers: 1, Window: 5 * time.Minute})
	defer s.Close()
	// Find two keys on different shards.
	a, b := "k0", ""
	for i := 1; ; i++ {
		k := fmt.Sprintf("k%d", i)
		if s.ShardFor(k) != s.ShardFor(a) {
			b = k
			break
		}
	}
	var deliveredAt time.Time
	sendAt := Epoch.Add(time.Minute)
	s.OnKey(a).At(sendAt, "send", func(now time.Time) {
		// Nominal delivery 1s later is inside the current window, so it must
		// be clamped to the window end.
		s.OnKey(b).After(time.Second, "recv", func(now time.Time) {
			deliveredAt = now
		})
	})
	s.RunFor(time.Hour)
	windowEnd := sendAt.Add(5 * time.Minute)
	if !deliveredAt.Equal(windowEnd) {
		t.Errorf("cross-shard delivery at %v, want clamped to window end %v", deliveredAt, windowEnd)
	}
}

func TestShardedRunsSameEventsAsSerial(t *testing.T) {
	t.Parallel()
	// The same chain-structured workload on the serial Scheduler and the
	// sharded one executes the same event multiset (order may differ across
	// shards, never within a chain).
	build := func(s EventScheduler) *[]string {
		var names []string
		for i := 0; i < 5; i++ {
			i := i
			s.OnKey(fmt.Sprintf("host%d", i)).After(time.Duration(i+1)*time.Minute, fmt.Sprintf("root%d", i), func(now time.Time) {
				names = append(names, fmt.Sprintf("root%d", i))
				s.After(30*time.Second, fmt.Sprintf("leaf%d", i), func(now time.Time) {
					names = append(names, fmt.Sprintf("leaf%d", i))
				})
			})
		}
		return &names
	}
	serial := NewScheduler(New(Epoch))
	sn := build(serial)
	serialRan := serial.RunFor(time.Hour)

	sharded := NewSharded(New(Epoch), ShardedConfig{Shards: 4, Workers: 1})
	defer sharded.Close()
	shn := build(sharded)
	shardedRan := sharded.RunFor(time.Hour)

	if serialRan != shardedRan {
		t.Fatalf("serial ran %d events, sharded %d", serialRan, shardedRan)
	}
	seen := map[string]int{}
	for _, n := range *sn {
		seen[n]++
	}
	for _, n := range *shn {
		seen[n]--
	}
	for n, c := range seen {
		if c != 0 {
			t.Errorf("event %q multiset mismatch (%+d)", n, c)
		}
	}
}

func TestShardedInterruptStopsRun(t *testing.T) {
	t.Parallel()
	clock := New(Epoch)
	s := NewSharded(clock, ShardedConfig{Shards: 2, Workers: 2})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	s.SetInterrupt(ctx.Err)
	ran := 0
	var tick func(now time.Time)
	tick = func(now time.Time) {
		ran++
		if ran == 10 {
			cancel()
		}
		s.After(time.Second, "tick", tick)
	}
	s.After(time.Second, "tick", tick)
	s.RunFor(24 * time.Hour)
	if !errors.Is(s.InterruptErr(), context.Canceled) {
		t.Fatalf("InterruptErr = %v, want context.Canceled", s.InterruptErr())
	}
	if n := s.RunFor(time.Hour); n != 0 {
		t.Errorf("Run after interrupt executed %d events, want 0", n)
	}
}

func TestShardedCloseDropsLateEvents(t *testing.T) {
	t.Parallel()
	s := NewSharded(New(Epoch), ShardedConfig{Shards: 2, Workers: 1})
	s.After(time.Minute, "pre", func(time.Time) {})
	s.RunFor(time.Hour)
	s.Close()
	s.Close() // idempotent
	if !s.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	s.After(time.Minute, "late", func(time.Time) { t.Error("late event ran") })
	if s.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", s.Dropped())
	}
	if !errors.Is(s.Err(), ErrClosed) {
		t.Errorf("Err = %v, want ErrClosed", s.Err())
	}
	if n := s.RunFor(time.Hour); n != 0 {
		t.Errorf("Run after Close executed %d events", n)
	}
}

func TestShardedShardForStableAndSpread(t *testing.T) {
	t.Parallel()
	s := NewSharded(New(Epoch), ShardedConfig{Shards: 8, Workers: 1})
	defer s.Close()
	hit := map[int]bool{}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("host:site-%d.example", i)
		sh := s.ShardFor(k)
		if sh < 0 || sh >= 8 {
			t.Fatalf("ShardFor(%q) = %d out of range", k, sh)
		}
		if s.ShardFor(k) != sh {
			t.Fatalf("ShardFor(%q) unstable", k)
		}
		hit[sh] = true
	}
	if len(hit) < 6 {
		t.Errorf("64 keys hit only %d of 8 shards — hash not spreading", len(hit))
	}
}

func TestShardedObserverSeesEveryEvent(t *testing.T) {
	t.Parallel()
	s := NewSharded(New(Epoch), ShardedConfig{Shards: 4, Workers: 1})
	defer s.Close()
	var names []string
	s.Observe(func(name string, at time.Time, wall time.Duration, depth int) {
		names = append(names, name)
	})
	for i := 0; i < 6; i++ {
		s.OnKey(fmt.Sprintf("k%d", i)).After(time.Duration(i+1)*time.Minute, "ev", func(time.Time) {})
	}
	if ran := s.RunFor(time.Hour); ran != len(names) {
		t.Errorf("observer saw %d events, Run reported %d", len(names), ran)
	}
	if s.Executed() != 6 || s.Len() != 0 {
		t.Errorf("Executed=%d Len=%d, want 6, 0", s.Executed(), s.Len())
	}
	counts := s.ShardEventCounts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 6 {
		t.Errorf("ShardEventCounts sums to %d, want 6", total)
	}
}
