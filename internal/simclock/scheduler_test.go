package simclock

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSchedulerRunsInDeadlineOrder(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	s := NewScheduler(c)
	var got []string
	s.After(30*time.Minute, "c", func(time.Time) { got = append(got, "c") })
	s.After(10*time.Minute, "a", func(time.Time) { got = append(got, "a") })
	s.After(20*time.Minute, "b", func(time.Time) { got = append(got, "b") })
	n := s.Run(time.Time{})
	if n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
}

func TestSchedulerTiesRunFIFO(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	s := NewScheduler(c)
	var got []int
	at := Epoch.Add(time.Hour)
	for i := 0; i < 5; i++ {
		i := i
		s.At(at, "tie", func(time.Time) { got = append(got, i) })
	}
	s.Run(time.Time{})
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v, want FIFO", got)
		}
	}
}

func TestSchedulerHorizonStopsAndAdvances(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	s := NewScheduler(c)
	ran := 0
	s.After(time.Hour, "in", func(time.Time) { ran++ })
	s.After(3*time.Hour, "out", func(time.Time) { ran++ })
	horizon := Epoch.Add(2 * time.Hour)
	if n := s.Run(horizon); n != 1 {
		t.Fatalf("Run = %d events, want 1", n)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if !c.Now().Equal(horizon) {
		t.Fatalf("clock = %v, want advanced to horizon %v", c.Now(), horizon)
	}
	if s.Len() != 1 {
		t.Fatalf("queue length = %d, want 1 remaining", s.Len())
	}
}

func TestSchedulerEventsCanScheduleEvents(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	s := NewScheduler(c)
	var times []time.Time
	s.After(time.Minute, "outer", func(now time.Time) {
		times = append(times, now)
		s.After(time.Minute, "inner", func(now time.Time) {
			times = append(times, now)
		})
	})
	s.Run(time.Time{})
	if len(times) != 2 {
		t.Fatalf("executed %d events, want 2", len(times))
	}
	if want := Epoch.Add(2 * time.Minute); !times[1].Equal(want) {
		t.Fatalf("inner ran at %v, want %v", times[1], want)
	}
}

func TestSchedulerEvery(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	s := NewScheduler(c)
	count := 0
	stop := Epoch.Add(100 * time.Minute)
	s.Every(30*time.Minute, "poll", func(now time.Time) bool { return now.After(stop) }, func(time.Time) { count++ })
	s.Run(Epoch.Add(4 * time.Hour))
	// Ticks at 30, 60, 90 run; the 120-minute tick sees now > stop and halts.
	if count != 3 {
		t.Fatalf("Every ran %d times, want 3", count)
	}
}

func TestSchedulerPastEventRunsNow(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	c.Advance(time.Hour)
	s := NewScheduler(c)
	var at time.Time
	s.At(Epoch, "past", func(now time.Time) { at = now })
	s.Run(time.Time{})
	if !at.Equal(Epoch.Add(time.Hour)) {
		t.Fatalf("past event ran at %v, want clamped to now %v", at, Epoch.Add(time.Hour))
	}
}

func TestSchedulerExecutedCounter(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	s := NewScheduler(c)
	for i := 0; i < 4; i++ {
		s.After(time.Duration(i+1)*time.Minute, "e", func(time.Time) {})
	}
	s.RunFor(2 * time.Minute)
	s.RunFor(10 * time.Minute)
	if s.Executed() != 4 {
		t.Fatalf("Executed() = %d, want 4", s.Executed())
	}
}

func TestSchedulerNilFuncPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling a nil func should panic")
		}
	}()
	s := NewScheduler(New(Epoch))
	s.After(time.Minute, "nil", nil)
}

func TestSchedulerNonPositiveEveryPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Every with non-positive interval should panic")
		}
	}()
	s := NewScheduler(New(Epoch))
	s.Every(0, "bad", nil, func(time.Time) {})
}

func TestSchedulerCloseDropsQueueAndStopsRun(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	s := NewScheduler(c)
	ran := 0
	s.After(time.Minute, "pending", func(time.Time) { ran++ })
	s.Close()
	if !s.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if s.Len() != 0 {
		t.Fatalf("Len() = %d after Close, want 0 (queue released)", s.Len())
	}
	if n := s.Run(time.Time{}); n != 0 {
		t.Fatalf("Run on closed scheduler executed %d events, want 0", n)
	}
	if ran != 0 {
		t.Fatalf("pending event ran %d times after Close, want 0", ran)
	}
	s.Close() // idempotent
}

func TestSchedulerAtAfterCloseIsDefinedErrorPath(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	s := NewScheduler(c)
	if err := s.Err(); err != nil {
		t.Fatalf("Err() = %v before any post-close scheduling, want nil", err)
	}
	s.Close()
	ran := 0
	s.At(Epoch.Add(time.Minute), "late-at", func(time.Time) { ran++ })
	s.After(time.Minute, "late-after", func(time.Time) { ran++ })
	s.Every(time.Minute, "late-every", nil, func(time.Time) { ran++ })
	if got := s.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
	if s.Len() != 0 {
		t.Fatalf("Len() = %d, want 0 (post-close events never enqueue)", s.Len())
	}
	s.Run(time.Time{})
	if ran != 0 {
		t.Fatalf("post-close events ran %d times, want 0", ran)
	}
	err := s.Err()
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Err() = %v, want ErrClosed", err)
	}
	if !strings.Contains(err.Error(), "late-at") {
		t.Fatalf("Err() = %q, want it to name the first dropped event", err)
	}
}

func TestSchedulerCloseAfterRunLeavesHistory(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	s := NewScheduler(c)
	s.After(time.Minute, "e", func(time.Time) {})
	s.Run(time.Time{})
	s.Close()
	if s.Executed() != 1 {
		t.Fatalf("Executed() = %d after Close, want history preserved", s.Executed())
	}
	if s.Err() != nil {
		t.Fatalf("Err() = %v for a clean Close, want nil", s.Err())
	}
}

func TestSchedulerInterrupt(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	s := NewScheduler(c)
	for i := 0; i < 10*interruptStride; i++ {
		s.After(time.Duration(i)*time.Second, "work", func(time.Time) {})
	}
	cancelled := errors.New("cancelled")
	calls := 0
	s.SetInterrupt(func() error {
		calls++
		if calls > 3 {
			return cancelled
		}
		return nil
	})
	ran := s.Run(time.Time{})
	if !errors.Is(s.InterruptErr(), cancelled) {
		t.Fatalf("InterruptErr = %v, want cancelled", s.InterruptErr())
	}
	if ran == 0 || ran >= 10*interruptStride {
		t.Fatalf("Run executed %d events, want an early stop strictly inside (0, %d)", ran, 10*interruptStride)
	}
	if ran > 4*interruptStride {
		t.Fatalf("Run executed %d events after cancellation at check 4 (stride %d)", ran, interruptStride)
	}
	// An interrupted scheduler never resumes.
	if again := s.Run(time.Time{}); again != 0 {
		t.Fatalf("interrupted scheduler ran %d more events", again)
	}
	if s.Len() == 0 {
		t.Fatal("interrupted scheduler should still hold its pending events")
	}
}

func TestSchedulerInterruptNilIsFree(t *testing.T) {
	t.Parallel()
	c := New(Epoch)
	s := NewScheduler(c)
	done := false
	s.After(time.Minute, "ok", func(time.Time) { done = true })
	s.SetInterrupt(func() error { return nil })
	s.Run(time.Time{})
	if !done || s.InterruptErr() != nil {
		t.Fatalf("clean interrupt check perturbed the run: done=%v err=%v", done, s.InterruptErr())
	}
}
