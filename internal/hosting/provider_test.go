package hosting

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/simnet"
)

func testProvider(t *testing.T) (*FreeProvider, *simnet.Internet, *simclock.Scheduler, *simclock.SimClock) {
	t.Helper()
	clock := simclock.New(simclock.Epoch)
	sched := simclock.NewScheduler(clock)
	net := simnet.New(nil)
	p := NewFreeProvider("pages.example", net, nil, sched, nil)
	return p, net, sched, clock
}

func textHandler(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	})
}

func get(t *testing.T, net *simnet.Internet, url string) (int, string) {
	t.Helper()
	client := simnet.NewClient(net, "203.0.113.99")
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestProviderMountServeEvict(t *testing.T) {
	t.Parallel()
	p, net, _, _ := testProvider(t)
	host := p.Mount("victim-login", textHandler("phish"))
	if host != "victim-login.pages.example" {
		t.Fatalf("Mount returned %q", host)
	}
	// The wildcard front end serves the mounted site over HTTPS — free
	// hosting hands out certificates with the subdomain.
	if code, body := get(t, net, "https://"+host+"/account"); code != 200 || body != "phish" {
		t.Fatalf("mounted site: %d %q", code, body)
	}
	// Unmounted siblings get the provider placeholder, not an error.
	if code, body := get(t, net, "https://other.pages.example/"); code != 404 || !strings.Contains(body, "free") {
		t.Errorf("placeholder page: %d %q", code, body)
	}
	if !p.Evict("victim-login") {
		t.Fatal("Evict of a live route reported false")
	}
	if code, _ := get(t, net, "https://"+host+"/account"); code != 404 {
		t.Errorf("evicted site still serving: %d", code)
	}
	if p.Evict("victim-login") {
		t.Error("double Evict reported true")
	}
	st := p.Stats()
	if st.Mounted != 1 || st.Evicted != 1 || st.Live != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProviderLabelOf(t *testing.T) {
	t.Parallel()
	p, _, _, _ := testProvider(t)
	cases := []struct{ host, want string }{
		{"victim.pages.example", "victim"},
		{"Victim.Pages.Example.", "victim"},
		{"victim.pages.example:443", "victim"},
		{"a.b.pages.example", ""}, // nested subdomains are not customer labels
		{"pages.example", ""},
		{"victim.webhost.example", ""}, // different provider
	}
	for _, c := range cases {
		if got := p.labelOf(c.host); got != c.want {
			t.Errorf("labelOf(%q) = %q, want %q", c.host, got, c.want)
		}
	}
}

func TestProviderIPForStableAndPooled(t *testing.T) {
	t.Parallel()
	p, _, _, _ := testProvider(t)
	q := NewFreeProvider("webhost.example", simnet.New(nil), nil, p.sched, nil)
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		label := "site-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		ip := p.IPFor(label)
		if ip != p.IPFor(label) {
			t.Fatal("IPFor not stable")
		}
		seen[ip] = true
	}
	if len(seen) != ProviderIPs {
		t.Errorf("64 labels used %d addresses, want the full pool of %d", len(seen), ProviderIPs)
	}
	// Distinct providers draw from distinct pools.
	if p.IPFor("x") == q.IPFor("x") && p.ips[0] == q.ips[0] {
		t.Error("providers share an address pool")
	}
}

func TestProviderTaintScoreThresholds(t *testing.T) {
	t.Parallel()
	p, _, _, _ := testProvider(t)
	ip := p.IPFor("victim")
	for n, want := range map[int]float64{0: 0, 1: 0.35, 2: 0.6, 3: 0.85, 7: 0.85} {
		p.taint = map[string]int{ip: n}
		if got := p.TaintScore("victim.pages.example", simclock.Epoch); got != want {
			t.Errorf("TaintScore with %d co-hosted listings = %v, want %v", n, got, want)
		}
	}
	if got := p.TaintScore("elsewhere.example", simclock.Epoch); got != 0 {
		t.Errorf("off-apex host scored %v, want 0", got)
	}
}

func TestPublishTaintBarrier(t *testing.T) {
	t.Parallel()
	p, _, _, _ := testProvider(t)
	ip := p.IPFor("victim")
	p.pending = map[string]int{ip: 3}
	if got := p.TaintScore("victim.pages.example", simclock.Epoch); got != 0 {
		t.Fatalf("pending recount visible before publish: %v", got)
	}
	p.PublishTaint()
	if got := p.TaintScore("victim.pages.example", simclock.Epoch); got != 0.85 {
		t.Fatalf("published taint score = %v, want 0.85", got)
	}
	// No pending recount: publish keeps the current map.
	p.PublishTaint()
	if got := p.TaintScore("victim.pages.example", simclock.Epoch); got != 0.85 {
		t.Errorf("empty publish clobbered taint: %v", got)
	}
}

// TestProviderSweepTakedown drives the abuse-sweep loop on the virtual
// clock: a blacklisted customer site is slated at the sweep and taken down
// after the grace period, while unlisted sites survive; the sweep's IP
// recount feeds TaintScore.
func TestProviderSweepTakedown(t *testing.T) {
	t.Parallel()
	p, net, sched, clock := testProvider(t)
	feed := blacklist.NewList("gsb", clock)
	p.Mount("listed-site", textHandler("phish"))
	p.Mount("clean-site", textHandler("ham"))
	feed.Add("https://listed-site.pages.example/account", "gsb")
	// Off-apex listings must not confuse the sweep.
	feed.Add("https://elsewhere.example/x", "gsb")

	p.StartSweeps(2*time.Hour, simclock.Epoch.Add(5*time.Hour), []*blacklist.List{feed})
	sched.Run(simclock.Epoch.Add(6 * time.Hour))

	st := p.Stats()
	if st.Sweeps < 2 {
		t.Errorf("sweeps = %d, want >= 2", st.Sweeps)
	}
	if st.Takedowns != 1 {
		t.Errorf("takedowns = %d, want 1", st.Takedowns)
	}
	if code, _ := get(t, net, "https://listed-site.pages.example/account"); code != 404 {
		t.Errorf("listed site still serving after sweep takedown: %d", code)
	}
	if code, body := get(t, net, "https://clean-site.pages.example/"); code != 200 || body != "ham" {
		t.Errorf("clean site affected by sweep: %d %q", code, body)
	}
	// Serial scheduler publishes taint inline from the sweep event: the
	// listed site's shared address carries one listing's worth of taint.
	if got := p.TaintScore("listed-site.pages.example", clock.Now()); got != 0.35 {
		t.Errorf("listed site's address taint = %v, want 0.35 (one listing)", got)
	}
	if p.IPFor("clean-site") == p.IPFor("listed-site") {
		if got := p.TaintScore("clean-site.pages.example", clock.Now()); got == 0 {
			t.Error("co-hosted site has no reputation taint after sweep")
		}
	}
}
