package hosting

import (
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/dnssim"
	"areyouhuman/internal/journal"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/simnet"
)

// FreeProvider models a free web-hosting platform (the infrastructure Roy et
// al. analyse at tens-of-thousands scale): every customer site is a
// subdomain of one shared apex, served by a single wildcard front end off a
// small pool of shared addresses. That architecture gives campaigns three
// properties the paper's dedicated-domain study never had:
//
//   - O(1) deployment: one wildcard host + one wildcard DNS record cover any
//     number of subdomain URLs; per-URL state is one routing-table entry.
//   - Shared-IP reputation: a blacklisted subdomain taints the shared
//     address it resolves to, and engines begin flagging co-hosted siblings
//     on reputation alone — which is how reCAPTCHA-cloaked URLs get caught
//     on free hosting despite bots never reaching their payload.
//   - Provider-side abuse sweeps: the platform periodically diffs public
//     blacklist feeds against its own customer base and bulk-evicts listed
//     sites after a short grace, independent of any abuse report.
//
// All mutable state is bounded by *in-flight* sites: eviction at window
// close (or by a sweep) returns the routing table to its prior size, so a
// 1M-URL campaign holds only one wave's worth of routes at any instant.
type FreeProvider struct {
	// Apex is the shared registrable domain (one of
	// simnet.FreeHostingApexes, so the scheduler shard-keys each subdomain
	// independently).
	Apex string
	// Grace is how long after a sweep flags a site until the provider takes
	// it down. DefaultSweepGrace when zero.
	Grace time.Duration

	net   *simnet.Internet
	sched simclock.EventScheduler
	rec   *journal.Recorder
	ips   []string

	mu       sync.RWMutex
	routes   map[string]http.Handler // subdomain label -> site
	slated   map[string]bool         // labels awaiting sweep takedown
	mounted  int64
	evicted  int64
	sweeps   int64
	takedown int64

	repMu   sync.RWMutex
	taint   map[string]int // shared IP -> listed co-hosted sites (published)
	pending map[string]int // next sweep's recount, awaiting barrier publish
}

// Provider cadence defaults: platforms sweep abuse feeds a few times a day
// and act within the hour.
const (
	DefaultSweepInterval = 6 * time.Hour
	DefaultSweepGrace    = 45 * time.Minute
	// ProviderIPs is the size of each provider's shared address pool.
	ProviderIPs = 4
)

// NewFreeProvider brings the platform online: one wildcard web host (with
// TLS — free-hosting platforms hand out certificates with the subdomain) and
// a wildcard DNS record under apex. dns may be nil when the world resolves
// through the host registry alone; rec may be nil to skip journalling.
func NewFreeProvider(apex string, net *simnet.Internet, dns *dnssim.Server, sched simclock.EventScheduler, rec *journal.Recorder) *FreeProvider {
	apex = strings.ToLower(strings.TrimSpace(apex))
	p := &FreeProvider{
		Apex:   apex,
		Grace:  DefaultSweepGrace,
		net:    net,
		sched:  sched,
		rec:    rec,
		routes: make(map[string]http.Handler),
		slated: make(map[string]bool),
		taint:  make(map[string]int),
	}
	p.ips = make([]string, ProviderIPs)
	for i := range p.ips {
		// Each provider derives its shared pool from its apex so pools don't
		// collide across providers.
		p.ips[i] = "198.51.100." + strconv.Itoa(int(mix64str(apex)%59)+10+i)
	}
	host := net.RegisterWildcard(apex, p)
	net.EnableTLS("*." + apex)
	if dns != nil {
		dns.AddZone(apex, host.IP)
		dns.AddWildcardA(apex, host.IP)
	}
	return p
}

// Mount routes label.<apex> to site. It replaces any previous route for the
// label (free hosting recycles names) and reports the full host name.
func (p *FreeProvider) Mount(label string, site http.Handler) string {
	p.mu.Lock()
	p.routes[label] = site
	p.mounted++
	p.mu.Unlock()
	return label + "." + p.Apex
}

// Evict removes label's route, reporting whether it existed. Subsequent
// visits get the provider's placeholder page (benign).
func (p *FreeProvider) Evict(label string) bool {
	p.mu.Lock()
	_, ok := p.routes[label]
	delete(p.routes, label)
	delete(p.slated, label)
	if ok {
		p.evicted++
	}
	p.mu.Unlock()
	return ok
}

// ServeHTTP dispatches on the request's Host header: the mounted site if the
// subdomain is live, the provider's placeholder page otherwise.
func (p *FreeProvider) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	label := p.labelOf(r.Host)
	p.mu.RLock()
	site := p.routes[label]
	p.mu.RUnlock()
	if site == nil {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.WriteHeader(http.StatusNotFound)
		io.WriteString(w, "<html><head><title>Site not found</title></head><body><h1>404</h1><p>This site has been removed or never existed. Host your own site for free!</p></body></html>")
		return
	}
	site.ServeHTTP(w, r)
}

// labelOf extracts the customer subdomain label from a host name under the
// apex ("" when host is not under it).
func (p *FreeProvider) labelOf(host string) string {
	host = strings.TrimSuffix(strings.ToLower(host), ".")
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	label, found := strings.CutSuffix(host, "."+p.Apex)
	if !found || strings.Contains(label, ".") {
		return ""
	}
	return label
}

// IPFor returns the shared pool address label's site resolves to — a pure
// hash so assignment needs no per-site state.
func (p *FreeProvider) IPFor(label string) string {
	return p.ips[mix64str(label)%uint64(len(p.ips))]
}

// TaintScore implements engines.HostRep over the published taint state: the
// more co-hosted listings share a site's address, the likelier an engine
// flags it on reputation alone. Reads see barrier-quantized state under
// sharded execution (PublishTaint), so the score at a virtual instant is
// identical for every worker count.
func (p *FreeProvider) TaintScore(host string, now time.Time) float64 {
	label := p.labelOf(host)
	if label == "" {
		return 0
	}
	p.repMu.RLock()
	n := p.taint[p.IPFor(label)]
	p.repMu.RUnlock()
	switch {
	case n >= 3:
		return 0.85
	case n == 2:
		return 0.6
	case n == 1:
		return 0.35
	default:
		return 0
	}
}

// PublishTaint promotes the latest sweep's recount to the published taint
// map. Register it as an OnBarrier callback under sharded execution; the
// serial path publishes inline from the sweep event.
func (p *FreeProvider) PublishTaint() {
	p.repMu.Lock()
	if p.pending != nil {
		p.taint = p.pending
		p.pending = nil
	}
	p.repMu.Unlock()
}

// StartSweeps begins the provider's abuse sweeps on the virtual clock: every
// interval (DefaultSweepInterval when zero) until the horizon, the platform
// downloads the public feeds, recomputes per-address taint over its own
// customer base, and slates every listed subdomain for takedown after Grace.
// The sweep chain is rooted on the apex key, takedowns on each subdomain's
// own key, so campaign providers cost one recurring event each.
func (p *FreeProvider) StartSweeps(interval time.Duration, until time.Time, feeds []*blacklist.List) {
	if interval <= 0 {
		interval = DefaultSweepInterval
	}
	p.sched.OnKey(simnet.ShardKey(p.Apex)).Every(interval, "provider:sweep",
		func(now time.Time) bool { return now.After(until) },
		func(now time.Time) { p.sweep(now, feeds) })
}

// sweep is one provider pass over the public feeds.
func (p *FreeProvider) sweep(now time.Time, feeds []*blacklist.List) {
	suffix := "." + p.Apex
	counts := make(map[string]int)
	listed := make(map[string]bool)
	for _, list := range feeds {
		for _, e := range list.Snapshot() {
			label := p.labelOf(hostOfURL(e.URL))
			if label == "" || !strings.HasSuffix(hostOfURL(e.URL), suffix) {
				continue
			}
			listed[label] = true
		}
	}
	p.mu.Lock()
	p.sweeps++
	var doomed []string
	for label := range listed {
		counts[p.IPFor(label)]++
		if p.routes[label] != nil && !p.slated[label] {
			p.slated[label] = true
			doomed = append(doomed, label)
		}
	}
	p.mu.Unlock()
	// Map iteration built doomed in random order; takedown scheduling must
	// be deterministic.
	sort.Strings(doomed)

	p.repMu.Lock()
	p.pending = counts
	p.repMu.Unlock()
	if !p.sched.Sharded() {
		p.PublishTaint()
	}

	p.rec.Emit(journal.KindProviderSweep, journal.Fields{
		Domain: p.Apex, Attempt: len(listed), Sim: now,
	})

	for _, label := range doomed {
		host := label + suffix
		p.sched.OnKey(simnet.ShardKey(host)).After(p.Grace, "provider:takedown", func(then time.Time) {
			if !p.Evict(label) {
				return // window already closed and released the route
			}
			p.mu.Lock()
			p.takedown++
			p.mu.Unlock()
			p.rec.Emit(journal.KindTakedown, journal.Fields{
				Domain: host, Sim: then,
			})
		})
	}
}

// ProviderStats is a point-in-time snapshot of one provider's counters.
type ProviderStats struct {
	Apex      string
	Live      int   // currently mounted sites
	Mounted   int64 // sites ever mounted
	Evicted   int64 // routes released (window close or takedown)
	Sweeps    int64 // abuse sweeps run
	Takedowns int64 // sweep-driven evictions
}

// Stats returns the provider's counters.
func (p *FreeProvider) Stats() ProviderStats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return ProviderStats{
		Apex:      p.Apex,
		Live:      len(p.routes),
		Mounted:   p.mounted,
		Evicted:   p.evicted,
		Sweeps:    p.sweeps,
		Takedowns: p.takedown,
	}
}

// hostOfURL extracts the host portion of a canonicalised URL.
func hostOfURL(rawURL string) string {
	s := rawURL
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' || s[i] == '?' || s[i] == '#' {
			return s[:i]
		}
	}
	return s
}

// mix64str hashes a string FNV-64a then splitmix64-finalises it — the same
// seed-pure construction the chaos and campaign layers use, so provider IP
// assignment is a pure function of the label.
func mix64str(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s)
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
