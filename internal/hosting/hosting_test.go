package hosting

import (
	"errors"
	"io"
	"net/http"
	"testing"
	"time"

	"areyouhuman/internal/report"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/simnet"
)

func newDesk(grace time.Duration) (*AbuseDesk, *simclock.Scheduler, *simnet.Internet, *report.MailSystem) {
	clock := simclock.New(simclock.Epoch)
	sched := simclock.NewScheduler(clock)
	net := simnet.New(nil)
	mail := report.NewMailSystem(clock)
	desk := &AbuseDesk{Net: net, Mail: mail, Sched: sched, Address: "abuse@hosting.example", Grace: grace}
	return desk, sched, net, mail
}

func register(net *simnet.Internet, host string) {
	net.Register(host, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "up")
	}))
}

func TestComplaintLeadsToTakedown(t *testing.T) {
	t.Parallel()
	desk, sched, net, mail := newDesk(6 * time.Hour)
	register(net, "phish-host.example")
	desk.Start(simclock.Epoch.Add(72 * time.Hour))

	notifier := &report.AbuseNotifier{Mail: mail, From: "phishlabs@example", AbuseContact: "abuse@hosting.example"}
	sched.After(30*time.Minute, "complaint", func(time.Time) {
		notifier.Notify("https://phish-host.example/wp-content/login.php")
	})
	sched.RunFor(72 * time.Hour)

	if !desk.Notified("phish-host.example") {
		t.Fatal("desk should have processed the complaint")
	}
	tds := desk.Takedowns()
	if len(tds) != 1 || tds[0].Host != "phish-host.example" {
		t.Fatalf("takedowns = %+v", tds)
	}
	if got := tds[0].DownAt.Sub(tds[0].NotifiedAt); got != 6*time.Hour {
		t.Fatalf("grace = %v, want 6h", got)
	}

	client := simnet.NewClient(net, "198.51.100.5")
	if _, err := client.Get("http://phish-host.example/"); !errors.Is(err, simnet.ErrHostDown) {
		t.Fatalf("host should be down after takedown, err = %v", err)
	}
}

func TestDuplicateComplaintsOneTakedown(t *testing.T) {
	t.Parallel()
	desk, sched, net, mail := newDesk(time.Hour)
	register(net, "dup-host.example")
	desk.Start(simclock.Epoch.Add(48 * time.Hour))
	notifier := &report.AbuseNotifier{Mail: mail, From: "a@x", AbuseContact: "abuse@hosting.example"}
	for i := 0; i < 3; i++ {
		notifier.Notify("http://dup-host.example/kit.php")
	}
	sched.RunFor(48 * time.Hour)
	if len(desk.Takedowns()) != 1 {
		t.Fatalf("takedowns = %d, want 1 despite 3 complaints", len(desk.Takedowns()))
	}
}

func TestNoComplaintsNoTakedowns(t *testing.T) {
	t.Parallel()
	desk, sched, net, _ := newDesk(0)
	register(net, "quiet-host.example")
	desk.Start(simclock.Epoch.Add(24 * time.Hour))
	sched.RunFor(24 * time.Hour)
	if len(desk.Takedowns()) != 0 {
		t.Fatal("no complaints should mean no takedowns")
	}
	client := simnet.NewClient(net, "198.51.100.5")
	if resp, err := client.Get("http://quiet-host.example/"); err != nil {
		t.Fatalf("host should still be up: %v", err)
	} else {
		resp.Body.Close()
	}
}

func TestUnknownHostComplaintIgnored(t *testing.T) {
	t.Parallel()
	desk, sched, _, mail := newDesk(time.Hour)
	desk.Start(simclock.Epoch.Add(24 * time.Hour))
	mail.Send("x@y", "abuse@hosting.example", "complaint", "please remove http://not-ours.example/phish")
	sched.RunFor(24 * time.Hour)
	if len(desk.Takedowns()) != 0 {
		t.Fatal("complaints about unknown hosts produce no takedowns")
	}
	if !desk.Notified("not-ours.example") {
		t.Fatal("the complaint itself should still be recorded")
	}
}

func TestGraceDefault(t *testing.T) {
	t.Parallel()
	desk, sched, net, mail := newDesk(0) // zero selects DefaultGrace
	register(net, "g.example")
	desk.Start(simclock.Epoch.Add(48 * time.Hour))
	mail.Send("x@y", "abuse@hosting.example", "s", "http://g.example/x")
	sched.RunFor(48 * time.Hour)
	tds := desk.Takedowns()
	if len(tds) != 1 {
		t.Fatalf("takedowns = %d", len(tds))
	}
	if got := tds[0].DownAt.Sub(tds[0].NotifiedAt); got != DefaultGrace {
		t.Fatalf("grace = %v, want %v", got, DefaultGrace)
	}
}
