// Package hosting simulates the hosting provider's abuse desk — the
// downstream consumer of the PhishLabs-style notifications the paper
// received for its OpenPhish and PhishTank reports (Section 4.1).
//
// The paper's researchers owned the hosting and ignored the complaints so
// the measurement could continue; a real provider processes them and takes
// the offending host down after a grace period. The desk makes that
// lifecycle — report, notification, takedown, dead site — available for
// studies that need it (e.g. measuring how much lifetime an evasion
// technique buys when takedown is the enforcement path).
package hosting

import (
	"regexp"
	"sort"
	"sync"
	"time"

	"areyouhuman/internal/journal"
	"areyouhuman/internal/report"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/simnet"
)

// Takedown records one host removal.
type Takedown struct {
	Host       string
	NotifiedAt time.Time
	DownAt     time.Time
}

// AbuseDesk processes complaints arriving at the provider's abuse mailbox
// and takes reported hosts offline after a grace period.
type AbuseDesk struct {
	Net  *simnet.Internet
	Mail *report.MailSystem
	// Sched drives the desk's mailbox polls (driver-rooted, so shard 0 under
	// sharded execution) and the takedown timers, which are rooted on the
	// target host's affinity key so they serialize with that host's traffic.
	Sched simclock.EventScheduler
	// Address is the abuse mailbox the desk reads.
	Address string
	// Grace is the delay between first notification and takedown; zero
	// selects DefaultGrace.
	Grace time.Duration
	// Journal, when set, records each completed takedown as a lifecycle
	// event (see internal/journal).
	Journal *journal.Recorder

	mu        sync.Mutex
	seen      int // mails already processed
	notified  map[string]time.Time
	takedowns []Takedown
}

// DefaultGrace approximates real provider response times.
const DefaultGrace = 12 * time.Hour

// PollInterval is how often the desk reads its mailbox.
const PollInterval = time.Hour

var urlHostPattern = regexp.MustCompile(`https?://([a-zA-Z0-9.-]+)`)

// Start begins polling the mailbox until the horizon.
func (d *AbuseDesk) Start(until time.Time) {
	if d.notified == nil {
		d.notified = make(map[string]time.Time)
	}
	d.Sched.Every(PollInterval, "abuse-desk",
		func(now time.Time) bool { return now.After(until) },
		func(now time.Time) { d.poll(now) })
}

func (d *AbuseDesk) poll(now time.Time) {
	inbox := d.Mail.Inbox(d.Address)
	d.mu.Lock()
	fresh := inbox[min(d.seen, len(inbox)):]
	d.seen = len(inbox)
	var newHosts []string
	for _, mail := range fresh {
		for _, m := range urlHostPattern.FindAllStringSubmatch(mail.Subject+" "+mail.Body, -1) {
			host := m[1]
			if _, dup := d.notified[host]; !dup {
				d.notified[host] = now
				newHosts = append(newHosts, host)
			}
		}
	}
	d.mu.Unlock()

	grace := d.Grace
	if grace == 0 {
		grace = DefaultGrace
	}
	for _, host := range newHosts {
		host := host
		notifiedAt := now
		d.Sched.OnKey(simnet.ShardKey(host)).After(grace, "abuse-takedown", func(at time.Time) {
			if d.Net.TakeDown(host) {
				d.mu.Lock()
				d.takedowns = append(d.takedowns, Takedown{Host: host, NotifiedAt: notifiedAt, DownAt: at})
				d.mu.Unlock()
				d.Journal.Emit(journal.KindTakedown, journal.Fields{
					Domain: host, Delay: at.Sub(notifiedAt),
				})
			}
		})
	}
}

// Takedowns returns completed takedowns, sorted by host.
func (d *AbuseDesk) Takedowns() []Takedown {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Takedown, len(d.takedowns))
	copy(out, d.takedowns)
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// Notified reports whether the desk has seen a complaint about host.
func (d *AbuseDesk) Notified(host string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.notified[host]
	return ok
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
