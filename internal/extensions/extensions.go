// Package extensions implements the six client-side anti-phishing browser
// extensions of Section 5 (Table 3).
//
// The paper's Burp-proxy traffic analysis found that every extension works
// the same way: it collects the URLs the user visits, sends them — four of
// six in plain text, with query parameters — to its vendor's server, and
// checks them against the vendor's blacklist. None of them builds features
// from the page *content*, which is why none can detect a CAPTCHA-protected
// phishing page even after the user solves the challenge and the malicious
// content is sitting right in front of the extension.
package extensions

import (
	"strings"
	"sync"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/browser"
	"areyouhuman/internal/simclock"
)

// Extension is one installed anti-phishing extension.
type Extension struct {
	Name    string
	Company string
	// Installations is the combined Chrome+Firefox install base from
	// Table 3.
	Installations int
	// SendsPlainURL is true when telemetry carries the naked URL (vs a
	// hash).
	SendsPlainURL bool
	// SendsParams is true when query parameters are included.
	SendsParams bool

	// Vendor is the vendor-side blacklist consulted for verdicts.
	Vendor *blacklist.List
	// Clock drives telemetry timestamps and verdict caching.
	Clock simclock.Clock

	cache *blacklist.CachingClient

	mu        sync.Mutex
	telemetry []Telemetry
	checks    int
	flagged   int
}

// Telemetry is one captured extension-to-server message (what the paper read
// off the Burp proxy).
type Telemetry struct {
	At time.Time
	// Payload is the URL exactly as transmitted: plain or hashed, with or
	// without parameters.
	Payload string
	Hashed  bool
}

// OnNavigate is called for every page the user's browser finishes loading.
// The page content is available to the extension — it runs inside the
// browser — but, matching the observed implementations, only the URL is
// used. It returns true when the vendor blacklist flags the URL.
func (x *Extension) OnNavigate(rawURL string, page *browser.Page) bool {
	_ = page // content deliberately unused: extensions only ship URLs

	transmitted := rawURL
	if !x.SendsParams {
		if i := strings.IndexByte(transmitted, '?'); i >= 0 {
			transmitted = transmitted[:i]
		}
	}
	payload := transmitted
	hashed := false
	if !x.SendsPlainURL {
		payload = blacklist.HashPrefix(transmitted)
		hashed = true
	}

	x.mu.Lock()
	if x.cache == nil {
		x.cache = &blacklist.CachingClient{List: x.Vendor, Clock: x.clock()}
	}
	x.telemetry = append(x.telemetry, Telemetry{At: x.clock().Now(), Payload: payload, Hashed: hashed})
	x.checks++
	cache := x.cache
	x.mu.Unlock()

	verdict := cache.Check(transmitted)
	if verdict {
		x.mu.Lock()
		x.flagged++
		x.mu.Unlock()
	}
	return verdict
}

func (x *Extension) clock() simclock.Clock {
	if x.Clock == nil {
		return simclock.Real
	}
	return x.Clock
}

// TelemetryLog returns the captured messages.
func (x *Extension) TelemetryLog() []Telemetry {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]Telemetry, len(x.telemetry))
	copy(out, x.telemetry)
	return out
}

// Stats reports URL checks performed and how many were flagged.
func (x *Extension) Stats() (checks, flagged int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.checks, x.flagged
}

// Spec describes one catalog entry.
type Spec struct {
	Name          string
	Company       string
	Installations int
	SendsPlainURL bool
	SendsParams   bool
	// VendorEngine optionally names a server-side engine whose blacklist
	// the vendor consumes (NetCraft's extension uses NetCraft's list).
	VendorEngine string
}

// Catalog returns the six extensions of Table 3, most-installed first.
func Catalog() []Spec {
	return []Spec{
		{Name: "Avast Online Security", Company: "Avast", Installations: 10_800_000, SendsPlainURL: true, SendsParams: true},
		{Name: "Avira Browser Safety", Company: "Avira", Installations: 7_350_000, SendsPlainURL: true, SendsParams: true},
		{Name: "TrafficLight", Company: "BitDefender", Installations: 665_000, SendsPlainURL: true, SendsParams: true},
		{Name: "Emsisoft Browser Security", Company: "Emsisoft", Installations: 80_000, SendsPlainURL: false, SendsParams: false},
		{Name: "NetCraft Anti-phishing", Company: "NetCraft", Installations: 58_000, SendsPlainURL: false, SendsParams: false, VendorEngine: "netcraft"},
		{Name: "Online Security Pro", Company: "Comodo", Installations: 14_000, SendsPlainURL: true, SendsParams: true},
	}
}

// Build instantiates a catalog entry against a vendor blacklist resolver:
// vendors tied to a server-side engine reuse that engine's list, others get
// their own (initially empty) list.
func Build(spec Spec, clock simclock.Clock, engineList func(key string) *blacklist.List) *Extension {
	var vendor *blacklist.List
	if spec.VendorEngine != "" && engineList != nil {
		vendor = engineList(spec.VendorEngine)
	}
	if vendor == nil {
		vendor = blacklist.NewList(strings.ToLower(spec.Company), clock)
	}
	return &Extension{
		Name:          spec.Name,
		Company:       spec.Company,
		Installations: spec.Installations,
		SendsPlainURL: spec.SendsPlainURL,
		SendsParams:   spec.SendsParams,
		Vendor:        vendor,
		Clock:         clock,
	}
}
