package extensions

import (
	"strings"
	"testing"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/simclock"
)

func TestCatalogMatchesTable3(t *testing.T) {
	t.Parallel()
	cat := Catalog()
	if len(cat) != 6 {
		t.Fatalf("catalog = %d extensions, want 6", len(cat))
	}
	for i := 1; i < len(cat); i++ {
		if cat[i-1].Installations < cat[i].Installations {
			t.Fatal("catalog must be ordered by install base")
		}
	}
	plain := 0
	for _, s := range cat {
		if s.SendsPlainURL {
			plain++
			if !s.SendsParams {
				t.Fatalf("%s sends plain URLs but not params; Table 3 pairs them", s.Name)
			}
		}
	}
	if plain != 4 {
		t.Fatalf("plain-URL extensions = %d, want 4 of 6", plain)
	}
}

func TestOnNavigatePlainTelemetry(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	x := Build(Catalog()[0], clock, nil) // Avast: plain + params
	url := "http://phish.example/login.php?sid=abc&next=inbox"
	if x.OnNavigate(url, nil) {
		t.Fatal("unlisted URL must not flag")
	}
	tel := x.TelemetryLog()
	if len(tel) != 1 {
		t.Fatalf("telemetry = %d records", len(tel))
	}
	if tel[0].Hashed || tel[0].Payload != url {
		t.Fatalf("telemetry = %+v, want plain URL with params", tel[0])
	}
}

func TestOnNavigateHashedNoParams(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	var spec Spec
	for _, s := range Catalog() {
		if s.Company == "Emsisoft" {
			spec = s
		}
	}
	x := Build(spec, clock, nil)
	url := "http://phish.example/login.php?sid=abc"
	x.OnNavigate(url, nil)
	tel := x.TelemetryLog()
	if !tel[0].Hashed {
		t.Fatal("Emsisoft telemetry must be hashed")
	}
	if strings.Contains(tel[0].Payload, "phish.example") || strings.Contains(tel[0].Payload, "sid=abc") {
		t.Fatalf("hashed payload leaks URL: %q", tel[0].Payload)
	}
	// Hash must cover the parameter-stripped URL.
	if tel[0].Payload != blacklist.HashPrefix("http://phish.example/login.php") {
		t.Fatal("hash should be over the parameter-stripped URL")
	}
}

func TestVerdictComesFromVendorList(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	x := Build(Catalog()[0], clock, nil)
	url := "http://phish.example/login.php"
	x.Vendor.Add(url, "vendor")
	if !x.OnNavigate(url, nil) {
		t.Fatal("listed URL must flag")
	}
	checks, flagged := x.Stats()
	if checks != 1 || flagged != 1 {
		t.Fatalf("stats = %d,%d", checks, flagged)
	}
}

func TestVerdictCachingWindow(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	x := Build(Catalog()[0], clock, nil)
	url := "http://phish.example/login.php"
	if x.OnNavigate(url, nil) {
		t.Fatal("not yet listed")
	}
	// Vendor lists it a minute later; the cached safe verdict masks it.
	clock.Advance(time.Minute)
	x.Vendor.Add(url, "vendor")
	if x.OnNavigate(url, nil) {
		t.Fatal("cached safe verdict should mask the fresh listing")
	}
	clock.Advance(blacklist.MaxCacheTTL)
	if !x.OnNavigate(url, nil) {
		t.Fatal("after cache expiry the listing must show")
	}
}

func TestBuildWithEngineList(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	ncList := blacklist.NewList("netcraft", clock)
	var spec Spec
	for _, s := range Catalog() {
		if s.VendorEngine == "netcraft" {
			spec = s
		}
	}
	x := Build(spec, clock, func(key string) *blacklist.List {
		if key == "netcraft" {
			return ncList
		}
		return nil
	})
	if x.Vendor != ncList {
		t.Fatal("NetCraft extension must reuse the NetCraft engine list")
	}
}

func TestContentIsIgnoredByDesign(t *testing.T) {
	t.Parallel()
	// Even a page whose content screams phishing is not flagged when the
	// URL is unlisted — the paper's core client-side finding.
	clock := simclock.New(simclock.Epoch)
	x := Build(Catalog()[0], clock, nil)
	if x.OnNavigate("http://phish.example/login.php", nil) {
		t.Fatal("extensions judge URLs, never content")
	}
}
