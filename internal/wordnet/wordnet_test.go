package wordnet

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestDictionaryNonTrivialAndSorted(t *testing.T) {
	t.Parallel()
	d := Dictionary()
	if len(d) < 200 {
		t.Fatalf("dictionary has %d words, want a non-trivial vocabulary", len(d))
	}
	if !sort.StringsAreSorted(d) {
		t.Fatal("Dictionary() must be sorted")
	}
}

func TestKnown(t *testing.T) {
	t.Parallel()
	for _, w := range []string{"garden", "Yard", "ESPRESSO", "blog"} {
		if !Known(w) {
			t.Errorf("Known(%q) = false, want true", w)
		}
	}
	if Known("zzzznotaword") {
		t.Error("Known(zzzznotaword) = true")
	}
}

func TestSynonymsHeadWord(t *testing.T) {
	t.Parallel()
	syns := Synonyms("garden")
	if len(syns) == 0 {
		t.Fatal("garden should have synonyms")
	}
	found := false
	for _, s := range syns {
		if s == "orchard" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Synonyms(garden) = %v, want to include orchard", syns)
	}
}

func TestSynonymsReverseLookup(t *testing.T) {
	t.Parallel()
	syns := Synonyms("orchard")
	if len(syns) == 0 || syns[0] != "garden" {
		t.Fatalf("Synonyms(orchard) = %v, want head word garden first", syns)
	}
}

func TestSynonymsUnknown(t *testing.T) {
	t.Parallel()
	if got := Synonyms("qwertyuiop"); got != nil {
		t.Fatalf("Synonyms(unknown) = %v, want nil", got)
	}
}

func TestSynonymsReturnsCopy(t *testing.T) {
	t.Parallel()
	a := Synonyms("garden")
	a[0] = "MUTATED"
	b := Synonyms("garden")
	if b[0] == "MUTATED" {
		t.Fatal("Synonyms must return a fresh slice")
	}
}

func TestExtractKeywordsHyphenated(t *testing.T) {
	t.Parallel()
	got := ExtractKeywords("garden-tools.com")
	want := map[string]bool{"garden": true, "tool": false} // "tools" is not in dict; "tool" via segmentation? "tools" segments to "tool"+"s"
	_ = want
	if len(got) == 0 || got[0] != "garden" {
		t.Fatalf("ExtractKeywords(garden-tools.com) = %v, want garden first", got)
	}
}

func TestExtractKeywordsConcatenated(t *testing.T) {
	t.Parallel()
	got := ExtractKeywords("bestcoffeeguide.net")
	joined := strings.Join(got, ",")
	for _, w := range []string{"best", "coffee", "guide"} {
		if !strings.Contains(joined, w) {
			t.Fatalf("ExtractKeywords(bestcoffeeguide.net) = %v, want %s", got, w)
		}
	}
}

func TestExtractKeywordsDigitsAndDuplicates(t *testing.T) {
	t.Parallel()
	got := ExtractKeywords("coffee2coffee.org")
	count := 0
	for _, w := range got {
		if w == "coffee" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("ExtractKeywords should deduplicate: %v", got)
	}
}

func TestExtractKeywordsNoWords(t *testing.T) {
	t.Parallel()
	if got := ExtractKeywords("xqzt.com"); len(got) != 0 {
		t.Fatalf("ExtractKeywords(gibberish) = %v, want none", got)
	}
}

func TestRandomKeywordsDeterministic(t *testing.T) {
	t.Parallel()
	a := RandomKeywords(42, 5)
	b := RandomKeywords(42, 5)
	if len(a) != 5 {
		t.Fatalf("RandomKeywords returned %d words, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomKeywords must be deterministic per seed")
		}
	}
	c := RandomKeywords(43, 5)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different keyword sets")
	}
}

func TestRandomKeywordsBounded(t *testing.T) {
	t.Parallel()
	all := RandomKeywords(1, 10_000)
	if len(all) == 0 || len(all) > len(Dictionary()) {
		t.Fatalf("RandomKeywords over-asked returned %d words", len(all))
	}
}

func TestParagraphsDeterministicAndTopical(t *testing.T) {
	t.Parallel()
	p1 := Paragraphs("coffee", 7, 4)
	p2 := Paragraphs("coffee", 7, 4)
	if len(p1) != 4 {
		t.Fatalf("Paragraphs returned %d, want 4", len(p1))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("Paragraphs must be deterministic per seed")
		}
	}
	vocab := append([]string{"coffee"}, Synonyms("coffee")...)
	text := strings.Join(p1, " ")
	found := false
	for _, w := range vocab {
		if strings.Contains(text, w) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("generated text mentions no topical vocabulary: %q", text)
	}
}

// Property: every keyword extracted from any string is a dictionary word.
func TestQuickExtractOnlyDictionaryWords(t *testing.T) {
	t.Parallel()
	f := func(s string) bool {
		for _, w := range ExtractKeywords(s + ".com") {
			if !Known(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
