// Package wordnet is the embedded vocabulary substrate standing in for the
// Unix dictionary, the Datamuse synonym API, and the Wikipedia corpus the
// paper's fake-website generator consumes.
//
// It offers keyword extraction from domain names (greedy dictionary
// segmentation), synonym expansion, and a deterministic topical text
// generator used to fill the 30 pages of each generated website.
package wordnet

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// thesaurus maps head words to related words. Both directions are useful:
// Synonyms answers from the map, and the dictionary is its key+value closure.
var thesaurus = map[string][]string{
	"garden":   {"yard", "orchard", "greenhouse", "lawn", "nursery"},
	"tool":     {"implement", "utensil", "instrument", "device", "apparatus"},
	"flower":   {"blossom", "bloom", "petal", "rose", "tulip"},
	"kitchen":  {"cookery", "pantry", "galley", "cuisine", "scullery"},
	"recipe":   {"formula", "dish", "preparation", "method", "blend"},
	"travel":   {"journey", "voyage", "trip", "tour", "expedition"},
	"hotel":    {"inn", "lodge", "hostel", "resort", "guesthouse"},
	"music":    {"melody", "harmony", "rhythm", "tune", "song"},
	"guitar":   {"strings", "fretboard", "acoustic", "banjo", "ukulele"},
	"finance":  {"banking", "economy", "investment", "capital", "budget"},
	"market":   {"bazaar", "exchange", "trade", "store", "shop"},
	"health":   {"wellness", "fitness", "vitality", "medicine", "nutrition"},
	"doctor":   {"physician", "surgeon", "clinician", "practitioner", "medic"},
	"sport":    {"athletics", "game", "exercise", "competition", "recreation"},
	"soccer":   {"football", "league", "goal", "pitch", "striker"},
	"book":     {"volume", "novel", "manuscript", "paperback", "tome"},
	"library":  {"archive", "collection", "repository", "athenaeum", "stacks"},
	"computer": {"machine", "processor", "workstation", "laptop", "server"},
	"network":  {"grid", "mesh", "web", "lattice", "system"},
	"photo":    {"picture", "snapshot", "portrait", "image", "print"},
	"camera":   {"lens", "shutter", "viewfinder", "tripod", "flash"},
	"coffee":   {"espresso", "brew", "roast", "latte", "mocha"},
	"bakery":   {"patisserie", "bakehouse", "oven", "pastry", "confectionery"},
	"bicycle":  {"bike", "cycle", "tandem", "velocipede", "wheels"},
	"mountain": {"peak", "summit", "ridge", "alp", "highland"},
	"river":    {"stream", "brook", "creek", "waterway", "tributary"},
	"school":   {"academy", "college", "institute", "seminary", "campus"},
	"teacher":  {"instructor", "tutor", "educator", "mentor", "lecturer"},
	"weather":  {"climate", "forecast", "atmosphere", "conditions", "meteorology"},
	"energy":   {"power", "electricity", "fuel", "vigor", "force"},
	"craft":    {"handiwork", "artisanry", "trade", "skill", "workmanship"},
	"wood":     {"timber", "lumber", "oak", "pine", "plank"},
	"paint":    {"pigment", "lacquer", "varnish", "tint", "enamel"},
	"farm":     {"ranch", "homestead", "acreage", "pasture", "croft"},
	"animal":   {"creature", "beast", "fauna", "mammal", "critter"},
	"ocean":    {"sea", "deep", "marine", "tide", "gulf"},
	"fishing":  {"angling", "trawling", "casting", "catch", "tackle"},
	"car":      {"automobile", "vehicle", "sedan", "motorcar", "coupe"},
	"engine":   {"motor", "turbine", "powerplant", "machine", "drivetrain"},
	"house":    {"home", "dwelling", "residence", "cottage", "abode"},
	"design":   {"layout", "blueprint", "pattern", "scheme", "plan"},
	"shop":     {"boutique", "store", "outlet", "emporium", "stall"},
	"cloud":    {"vapor", "mist", "nimbus", "cumulus", "overcast"},
	"data":     {"records", "figures", "statistics", "information", "facts"},
	"wine":     {"vintage", "vineyard", "merlot", "claret", "cellar"},
	"cheese":   {"cheddar", "brie", "gouda", "dairy", "curd"},
	"art":      {"painting", "sculpture", "gallery", "canvas", "artwork"},
	"theater":  {"stage", "playhouse", "drama", "auditorium", "cinema"},
	"history":  {"chronicle", "antiquity", "heritage", "past", "annals"},
	"science":  {"research", "physics", "chemistry", "biology", "laboratory"},
}

var dictionary = buildDictionary()

func buildDictionary() map[string]bool {
	d := make(map[string]bool, len(thesaurus)*6)
	for head, syns := range thesaurus {
		d[head] = true
		for _, s := range syns {
			d[s] = true
		}
	}
	// Connective vocabulary usable in generated names.
	for _, w := range []string{"best", "top", "my", "the", "pro", "new", "old", "big",
		"little", "daily", "world", "online", "guide", "club", "hub", "zone", "info",
		"blog", "news", "home", "plus", "center", "review"} {
		d[w] = true
	}
	return d
}

// Dictionary returns the embedded word list in lexical order. The sorted
// list is computed once (the dictionary is immutable after init); each call
// returns a fresh copy so callers may shuffle it freely.
func Dictionary() []string {
	d := sortedDictionary()
	out := make([]string, len(d))
	copy(out, d)
	return out
}

var sortedDictionary = func() func() []string {
	var once sync.Once
	var words []string
	return func() []string {
		once.Do(func() {
			words = make([]string, 0, len(dictionary))
			for w := range dictionary {
				words = append(words, w)
			}
			sort.Strings(words)
		})
		return words
	}
}()

// Known reports whether w is a dictionary word.
func Known(w string) bool { return dictionary[strings.ToLower(w)] }

// Synonyms returns related words for w (step 2 of the paper's fake-website
// algorithm). Unknown words return nil; synonyms of a head word map back to
// the head word plus its siblings.
func Synonyms(w string) []string {
	w = strings.ToLower(w)
	if syns, ok := thesaurus[w]; ok {
		out := make([]string, len(syns))
		copy(out, syns)
		return out
	}
	// Scan heads in lexical order, not map order: if a word ever appears
	// under two heads, the winner must not depend on Go's randomized map
	// iteration — this feeds generated page text and therefore output.
	for _, head := range sortedHeads() {
		syns := thesaurus[head]
		for _, s := range syns {
			if s == w {
				out := []string{head}
				for _, sib := range syns {
					if sib != w {
						out = append(out, sib)
					}
				}
				return out
			}
		}
	}
	return nil
}

// sortedHeads returns the thesaurus head words in lexical order, computed
// once (the thesaurus is immutable after init).
var sortedHeads = func() func() []string {
	var once sync.Once
	var heads []string
	return func() []string {
		once.Do(func() {
			heads = make([]string, 0, len(thesaurus))
			for h := range thesaurus {
				heads = append(heads, h)
			}
			sort.Strings(heads)
		})
		return heads
	}
}()

// ExtractKeywords extracts meaningful dictionary words from a domain name
// (step 1 of the paper's algorithm): the label is split on hyphens and
// digits, and unbroken runs are segmented greedily against the dictionary.
func ExtractKeywords(domain string) []string {
	domain = strings.ToLower(strings.TrimSpace(domain))
	if i := strings.IndexByte(domain, '.'); i >= 0 {
		domain = domain[:i]
	}
	var tokens []string
	field := strings.FieldsFunc(domain, func(r rune) bool {
		return r == '-' || r == '_' || (r >= '0' && r <= '9')
	})
	for _, part := range field {
		tokens = append(tokens, segment(part)...)
	}
	var out []string
	seen := map[string]bool{}
	for _, tok := range tokens {
		if dictionary[tok] && !seen[tok] {
			seen[tok] = true
			out = append(out, tok)
		}
	}
	return out
}

// segment splits a run of letters into dictionary words, greedy
// longest-match from the left; unmatched prefixes skip one rune.
func segment(s string) []string {
	var words []string
	for len(s) > 0 {
		matched := ""
		for end := len(s); end > 0; end-- {
			if dictionary[s[:end]] {
				matched = s[:end]
				break
			}
		}
		if matched == "" {
			s = s[1:]
			continue
		}
		words = append(words, matched)
		s = s[len(matched):]
	}
	return words
}

// RandomKeywords picks n distinct dictionary head words using the given
// seed — the paper's "randomly generate keywords from the Unix dictionary"
// step for the non-drop-catch domains.
func RandomKeywords(seed int64, n int) []string {
	heads := make([]string, 0, len(thesaurus))
	for h := range thesaurus {
		heads = append(heads, h)
	}
	sort.Strings(heads)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(heads), func(i, j int) { heads[i], heads[j] = heads[j], heads[i] })
	if n > len(heads) {
		n = len(heads)
	}
	return heads[:n]
}

var sentenceTemplates = []string{
	"The study of %s has a long tradition in many regions of the world.",
	"Modern approaches to %s combine classical methods with new techniques.",
	"Many enthusiasts consider %s an essential part of everyday life.",
	"Historical records mention %s as early as the medieval period.",
	"The economics of %s changed considerably over the last century.",
	"Local communities often organize events dedicated to %s.",
	"Experts disagree about the best way to approach %s in practice.",
	"A wide range of literature covers both the theory and practice of %s.",
	"Regional variations in %s reflect differences in climate and culture.",
	"Recent developments have made %s accessible to a much wider audience.",
}

// Paragraphs generates n deterministic paragraphs about topic, in the style
// of an encyclopedia article, standing in for the Wikipedia download of the
// paper's step 3.
func Paragraphs(topic string, seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed ^ int64(len(topic))))
	vocab := append([]string{topic}, Synonyms(topic)...)
	out := make([]string, n)
	for i := range out {
		var b strings.Builder
		sentences := 3 + rng.Intn(3)
		for s := 0; s < sentences; s++ {
			tmpl := sentenceTemplates[rng.Intn(len(sentenceTemplates))]
			word := vocab[rng.Intn(len(vocab))]
			if s > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strings.Replace(tmpl, "%s", word, 1))
		}
		out[i] = b.String()
	}
	return out
}
