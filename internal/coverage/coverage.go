// Package coverage maps browsers to the anti-phishing engines protecting
// them, with 2020 market shares, as Section 3 of the paper lays out: GSB
// protects Chrome, Firefox and Safari (87% of users); SmartScreen protects
// IE and Edge; Opera checks both NetCraft and PhishTank; Yandex Browser uses
// YSB.
//
// Given the listing state of a URL across engines, ProtectedShare answers
// the question the paper's victims care about: what fraction of web users
// would see a warning instead of the phishing page?
package coverage

import (
	"sort"
	"strings"
)

// BrowserShare is one browser's engine wiring and market share.
type BrowserShare struct {
	Browser string
	// Engines whose blacklists the browser consults; a hit in any one
	// protects the user.
	Engines []string
	// Share is the approximate 2020 market share, summing to ~1 across the
	// catalog.
	Share float64
}

// Catalog returns the browser/engine map from Section 3. GSB's 87% combined
// share for Chrome+Firefox+Safari matches the paper's figure.
func Catalog() []BrowserShare {
	return []BrowserShare{
		{Browser: "Chrome", Engines: []string{"gsb"}, Share: 0.65},
		{Browser: "Safari", Engines: []string{"gsb"}, Share: 0.17},
		{Browser: "Firefox", Engines: []string{"gsb"}, Share: 0.05},
		{Browser: "Edge/IE", Engines: []string{"smartscreen"}, Share: 0.06},
		{Browser: "Opera", Engines: []string{"netcraft", "phishtank"}, Share: 0.02},
		{Browser: "Yandex", Engines: []string{"ysb"}, Share: 0.01},
		{Browser: "Other", Engines: nil, Share: 0.04},
	}
}

// Checker answers whether an engine currently lists a URL.
type Checker func(engineKey, url string) bool

// ProtectedShare computes the fraction of users whose browser would warn
// about url, given per-engine listing state.
func ProtectedShare(url string, listed Checker) float64 {
	total := 0.0
	for _, b := range Catalog() {
		for _, engine := range b.Engines {
			if listed(engine, url) {
				total += b.Share
				break
			}
		}
	}
	return total
}

// EngineReach returns the total market share each engine protects, sorted
// descending — GSB's dominance is why its alert-box bypass matters so much
// more than NetCraft's session bypass.
func EngineReach() []struct {
	Engine string
	Share  float64
} {
	shares := map[string]float64{}
	for _, b := range Catalog() {
		for _, engine := range b.Engines {
			shares[engine] += b.Share
		}
	}
	out := make([]struct {
		Engine string
		Share  float64
	}, 0, len(shares))
	for e, s := range shares {
		out = append(out, struct {
			Engine string
			Share  float64
		}{e, s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share == out[j].Share {
			return out[i].Engine < out[j].Engine
		}
		return out[i].Share > out[j].Share
	})
	return out
}

// GSBShare is the combined share of GSB-protected browsers; the paper cites
// 87%.
func GSBShare() float64 {
	total := 0.0
	for _, b := range Catalog() {
		for _, e := range b.Engines {
			if strings.EqualFold(e, "gsb") {
				total += b.Share
			}
		}
	}
	return total
}
