package coverage

import (
	"math"
	"testing"
)

func TestCatalogSharesSumToOne(t *testing.T) {
	t.Parallel()
	total := 0.0
	for _, b := range Catalog() {
		if b.Share <= 0 {
			t.Fatalf("%s has non-positive share", b.Browser)
		}
		total += b.Share
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", total)
	}
}

func TestGSBShareMatchesPaper(t *testing.T) {
	t.Parallel()
	if got := GSBShare(); math.Abs(got-0.87) > 1e-9 {
		t.Fatalf("GSB share = %v, paper cites 87%%", got)
	}
}

func TestProtectedShare(t *testing.T) {
	t.Parallel()
	url := "https://phish.example/login.php"
	none := func(engine, u string) bool { return false }
	if got := ProtectedShare(url, none); got != 0 {
		t.Fatalf("no listings should protect nobody, got %v", got)
	}
	gsbOnly := func(engine, u string) bool { return engine == "gsb" }
	if got := ProtectedShare(url, gsbOnly); math.Abs(got-0.87) > 1e-9 {
		t.Fatalf("GSB listing protects %v, want 0.87", got)
	}
	// Opera is protected when either of its two lists hits.
	phishtankOnly := func(engine, u string) bool { return engine == "phishtank" }
	if got := ProtectedShare(url, phishtankOnly); math.Abs(got-0.02) > 1e-9 {
		t.Fatalf("PhishTank listing protects %v, want Opera's 0.02", got)
	}
	netcraftAndPhishtank := func(engine, u string) bool { return engine == "netcraft" || engine == "phishtank" }
	if got := ProtectedShare(url, netcraftAndPhishtank); math.Abs(got-0.02) > 1e-9 {
		t.Fatalf("double Opera hit must not double count: %v", got)
	}
	all := func(engine, u string) bool { return true }
	if got := ProtectedShare(url, all); math.Abs(got-0.96) > 1e-9 {
		t.Fatalf("all listings protect %v, want 0.96 (Other has no engine)", got)
	}
}

func TestEngineReachOrdering(t *testing.T) {
	t.Parallel()
	reach := EngineReach()
	if len(reach) == 0 || reach[0].Engine != "gsb" {
		t.Fatalf("reach = %+v, want GSB first", reach)
	}
	for i := 1; i < len(reach); i++ {
		if reach[i-1].Share < reach[i].Share {
			t.Fatal("reach must be sorted descending")
		}
	}
}
