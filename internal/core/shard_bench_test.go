package core

import (
	"fmt"
	"testing"

	"areyouhuman/internal/experiment"
)

// BenchmarkShardedWorld measures one main-experiment world on the sharded
// scheduler at increasing worker counts. Unlike BenchmarkReplicaScaling this
// parallelises *inside* a single world: the event queue is partitioned into
// host-keyed shards drained concurrently in lock-stepped virtual-time
// windows, so speedup is bounded by the window barrier and by how evenly the
// 105 URL chains spread over the shards. On a single-core host all worker
// counts measure the same. Results are recorded in BENCH_shardedworld.json
// at the repo root.
func BenchmarkShardedWorld(b *testing.B) {
	base := experiment.Config{TrafficScale: 0.05, MainTrafficPerReport: 100}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shard-workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := base
				cfg.ShardWorkers = workers
				w := experiment.NewWorld(cfg)
				res, err := w.RunMain()
				if err != nil {
					b.Fatal(err)
				}
				if res.TotalURLs != 105 {
					b.Fatalf("got %d URLs, want 105", res.TotalURLs)
				}
				w.Close()
			}
		})
	}
}
