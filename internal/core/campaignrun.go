package core

import (
	"areyouhuman/internal/campaign"
)

// RunCampaign runs a paper-scale streaming campaign study in a fresh world:
// cfg.URLs phishing URLs deployed in waves on free-hosting providers (or
// dedicated domains), each reported to one engine and scored when its
// measurement window closes. Results aggregate into fixed-size cells — see
// internal/campaign — so memory stays flat from 10k to 1M URLs.
func (f *Framework) RunCampaign(cfg campaign.Config) (*campaign.Results, error) {
	w := f.newWorld(f.Cfg)
	defer w.Close()
	return w.RunCampaign(cfg)
}
