package core

import (
	"fmt"
	"testing"

	"areyouhuman/internal/experiment"
)

// BenchmarkReplicaScaling measures a fixed-size replica study at increasing
// worker counts. Because replicas share no simulation state, the study is
// embarrassingly parallel and wall time should fall near-linearly until the
// worker count reaches the host's core count; on a single-core host all
// worker counts measure the same. Results are recorded in BENCH_replicas.json
// at the repo root.
func BenchmarkReplicaScaling(b *testing.B) {
	const replicas = 4
	base := experiment.Config{TrafficScale: 0.01, MainTrafficPerReport: 50}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d/workers=%d", replicas, workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs, err := RunReplicas(ReplicaOptions{
					Replicas: replicas,
					Parallel: workers,
					Base:     base,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(rs.Runs) != replicas {
					b.Fatalf("got %d runs, want %d", len(rs.Runs), replicas)
				}
			}
		})
	}
}
