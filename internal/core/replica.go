package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/phishkit"
	"areyouhuman/internal/telemetry"
)

// The replica runner executes N fully independent seeded worlds and
// aggregates their results. The paper's headline numbers (8/105 detections,
// NetCraft's 2-of-6 session catches) rest on seeded stochastic draws, so one
// run is one sample from a distribution; replicas turn the reproduction into
// mean/min/max/CI summaries over that distribution.
//
// Concurrency model: each replica owns a complete world — clock, scheduler,
// network, DNS, engines, mail — and runs it single-threaded on one worker
// goroutine, so replicas share no simulation state at all. Replica K's seed
// is SplitSeed(master, K), a pure function, and results land in a slice
// indexed by replica: the outcome is bit-identical for any worker count and
// any completion order.

// ReplicaOptions configures a multi-replica study.
type ReplicaOptions struct {
	// Replicas is the number of independent worlds (minimum 1).
	Replicas int
	// Parallel is the worker count; 0 selects GOMAXPROCS. Parallelism
	// affects wall time only, never results.
	Parallel int
	// MasterSeed roots the seed-splitting scheme; 0 selects
	// experiment.DefaultSeed. Replica 0 runs with the master seed itself.
	MasterSeed int64
	// Base is the per-world configuration template. Its Seed, Replica, and
	// Telemetry fields are overridden per replica; Mutate, if set, is called
	// from several worker goroutines and must be stateless.
	Base experiment.Config
	// Ctx, when set, cancels the study: in-flight replicas stop within a
	// bounded number of events, queued replicas never start, and RunReplicas
	// returns Ctx's error. Nil means no cancellation (as before).
	Ctx context.Context
}

func (o ReplicaOptions) withDefaults() ReplicaOptions {
	if o.Replicas < 1 {
		o.Replicas = 1
	}
	if o.Parallel < 1 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.Parallel > o.Replicas {
		o.Parallel = o.Replicas
	}
	if o.MasterSeed == 0 {
		o.MasterSeed = experiment.DefaultSeed
	}
	return o
}

// ReplicaRun is one replica's complete study: the three tables, the
// ablations, and the exposure study.
type ReplicaRun struct {
	Replica int
	Seed    int64

	Results    *Results
	Alert      AlertAblationResult
	Form       FormAblationResult
	Provenance ProvenanceAblationResult
	Sharing    SharingAblationResult
	Cache      CacheAblationResult
	Cloaking   CloakingBaselineResult
	Exposure   []ExposureResult
}

// ReplicaSet is the outcome of RunReplicas: one ReplicaRun per replica, in
// replica order.
type ReplicaSet struct {
	MasterSeed int64
	Runs       []ReplicaRun
}

// RunReplicas executes opts.Replicas independent worlds across opts.Parallel
// workers and returns their runs in replica order. The first replica error
// aborts the study.
func RunReplicas(opts ReplicaOptions) (*ReplicaSet, error) {
	opts = opts.withDefaults()
	runs := make([]ReplicaRun, opts.Replicas)
	errs := make([]error, opts.Replicas)

	indices := make(chan int)
	var wg sync.WaitGroup
	for p := 0; p < opts.Parallel; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range indices {
				if opts.Ctx != nil && opts.Ctx.Err() != nil {
					errs[k] = opts.Ctx.Err()
					opts.Base.Journal.CloseReplica(k)
					continue // drain remaining indices without running them
				}
				runs[k], errs[k] = runReplica(opts, k)
				// Retire the replica's journal section: the writer streams
				// replica K's buffered lines once every replica below K has
				// closed, keeping the journal in replica order for any worker
				// count or completion order.
				opts.Base.Journal.CloseReplica(k)
			}
		}()
	}
	for k := 0; k < opts.Replicas; k++ {
		indices <- k
	}
	close(indices)
	wg.Wait()
	if err := opts.Base.Journal.Flush(); err != nil {
		return nil, fmt.Errorf("core: flushing journal: %w", err)
	}

	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	for k, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: replica %d (seed %d): %w", k, SplitSeed(opts.MasterSeed, k), err)
		}
	}
	return &ReplicaSet{MasterSeed: opts.MasterSeed, Runs: runs}, nil
}

// runReplica runs one complete world on the calling goroutine.
func runReplica(opts ReplicaOptions, k int) (ReplicaRun, error) {
	cfg := opts.Base
	cfg.Seed = SplitSeed(opts.MasterSeed, k)
	cfg.Replica = k
	cfg.Telemetry = replicaTelemetry(opts.Base.Telemetry, k)

	f := New(cfg)
	if opts.Ctx != nil {
		f.WithContext(opts.Ctx)
	}
	run := ReplicaRun{Replica: k, Seed: cfg.Seed}
	var err error
	if run.Results, err = f.RunAll(); err != nil {
		return run, err
	}
	if run.Alert, err = f.RunAlertConfirmAblation(); err != nil {
		return run, err
	}
	if run.Form, err = f.RunFormSubmitAblation(); err != nil {
		return run, err
	}
	if run.Provenance, err = f.RunKitProvenanceAblation(); err != nil {
		return run, err
	}
	if run.Sharing, err = f.RunFeedSharingAblation(); err != nil {
		return run, err
	}
	run.Cache = f.RunVerdictCacheAblation()
	if run.Cloaking, err = f.RunCloakingBaseline(); err != nil {
		return run, err
	}
	if run.Exposure, err = f.RunExposureStudy(); err != nil {
		return run, err
	}
	return run, nil
}

// replicaTelemetry derives replica K's telemetry set: a replica-labelled view
// of the shared metrics registry for every world, the tracer on replica 0
// only (a Tracer carries a single virtual clock; interleaving N timelines in
// one JSONL stream would make the trace unreadable).
func replicaTelemetry(base *telemetry.Set, k int) *telemetry.Set {
	tel := base.ForReplica(k)
	if tel != nil && k != 0 {
		tel.Tracer = nil
	}
	return tel
}

// Summary is the distribution of one scalar metric across replicas. CI95 is
// the half-width of the normal-approximation 95% confidence interval for the
// mean (1.96·s/√n; 0 when n < 2).
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	CI95 float64 `json:"ci95"`
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(len(xs)-1))
		s.CI95 = 1.96 * sd / math.Sqrt(float64(len(xs)))
	}
	return s
}

// CellAggregate is one Table 2 cell summarised across replicas.
type CellAggregate struct {
	Engine    string  `json:"engine"`
	Brand     string  `json:"brand"`
	Technique string  `json:"technique"`
	Detected  Summary `json:"detected"`
	Total     int     `json:"total"`
}

// Aggregate summarises a ReplicaSet: named scalar series plus the per-cell
// Table 2 distribution. It is a pure function of the runs (and therefore of
// the master seed and replica count), independent of worker count.
type Aggregate struct {
	Replicas   int                `json:"replicas"`
	MasterSeed int64              `json:"master_seed"`
	Metrics    map[string]Summary `json:"metrics"`
	Cells      []CellAggregate    `json:"table2_cells"`
}

// Aggregate computes the cross-replica summary.
func (rs *ReplicaSet) Aggregate() Aggregate {
	agg := Aggregate{
		Replicas:   len(rs.Runs),
		MasterSeed: rs.MasterSeed,
		Metrics:    make(map[string]Summary),
	}
	series := make(map[string][]float64)
	add := func(name string, v float64) { series[name] = append(series[name], v) }

	for _, run := range rs.Runs {
		r := run.Results
		if r.Main != nil {
			add("main_total_detected", float64(r.Main.TotalDetected))
			add("gsb_alertbox_avg_min", experiment.AverageDuration(r.Main.GSBAlertBoxTimes).Minutes())
			add("netcraft_session_detections", float64(len(r.Main.NetCraftSessionTimes)))
		}
		t1Requests := 0
		for _, row := range r.Table1 {
			t1Requests += row.Requests
		}
		add("table1_requests_total", float64(t1Requests))
		t3Detected := 0
		for _, row := range r.Table3 {
			t3Detected += row.Detected
		}
		add("extensions_detected_total", float64(t3Detected))

		add("ablation_alert_confirm_all", float64(run.Alert.ConfirmAll))
		add("ablation_form_nosubmit_bypasses", float64(run.Form.NoSubmitBypasses))
		add("ablation_provenance_cloned_detected", boolMetric(run.Provenance.ClonedDetected))
		add("ablation_cross_feeds_baseline", float64(run.Sharing.BaselineCrossFeeds))
		add("ablation_cross_feeds_severed", float64(run.Sharing.SeveredCrossFeeds))
		add("cloaking_detected", float64(run.Cloaking.Detected))
		add("cloaking_avg_delay_min", run.Cloaking.AvgDelay.Minutes())
		for _, exp := range run.Exposure {
			add("exposure_rate_"+exp.Technique.String(), exp.ExposureRate())
			add("exposure_creds_lost_"+exp.Technique.String(), float64(exp.CredentialsLost))
		}
	}
	for name, xs := range series {
		agg.Metrics[name] = Summarize(xs)
	}

	for _, key := range engines.MainExperimentKeys() {
		for _, brand := range []phishkit.Brand{phishkit.Facebook, phishkit.PayPal} {
			for _, tech := range evasion.Techniques() {
				var detected []float64
				total := 0
				for _, run := range rs.Runs {
					if run.Results.Main == nil {
						continue
					}
					c := run.Results.Main.Cells[key][brand][tech]
					if c == nil {
						c = &experiment.Cell{}
					}
					detected = append(detected, float64(c.Detected))
					total = c.Total
				}
				if len(detected) == 0 {
					continue
				}
				agg.Cells = append(agg.Cells, CellAggregate{
					Engine: key, Brand: string(brand), Technique: tech.String(),
					Detected: Summarize(detected), Total: total,
				})
			}
		}
	}
	return agg
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Report renders the aggregate as text: a Table 2 of mean detections per
// cell, then every scalar series as mean/min/max/±CI95. The output depends
// only on the runs, never on the worker count.
func (rs *ReplicaSet) Report() string {
	agg := rs.Aggregate()
	var b strings.Builder
	fmt.Fprintf(&b, "== Aggregate over %d replicas (master seed %d) ==\n\n", agg.Replicas, agg.MasterSeed)

	if len(agg.Cells) > 0 {
		cell := make(map[string]CellAggregate, len(agg.Cells))
		for _, c := range agg.Cells {
			cell[c.Engine+"|"+c.Brand+"|"+c.Technique] = c
		}
		b.WriteString("Table 2 across replicas (mean detected per cell)\n")
		fmt.Fprintf(&b, "%-14s | %-20s | %-20s\n", "", "Facebook", "PayPal")
		fmt.Fprintf(&b, "%-14s | %-6s %-6s %-6s | %-6s %-6s %-6s\n", "Engine", "A", "S", "R", "A", "S", "R")
		for _, key := range engines.MainExperimentKeys() {
			fmt.Fprintf(&b, "%-14s |", key)
			for _, brand := range []phishkit.Brand{phishkit.Facebook, phishkit.PayPal} {
				for _, tech := range evasion.Techniques() {
					c := cell[key+"|"+string(brand)+"|"+tech.String()]
					fmt.Fprintf(&b, " %-6s", fmt.Sprintf("%.1f/%d", c.Detected.Mean, c.Total))
				}
				fmt.Fprintf(&b, " |")
			}
			fmt.Fprintf(&b, "\n")
		}
		b.WriteString("\n")
	}

	names := make([]string, 0, len(agg.Metrics))
	for name := range agg.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "%-38s %9s %9s %9s %9s\n", "metric", "mean", "min", "max", "ci95")
	for _, name := range names {
		s := agg.Metrics[name]
		fmt.Fprintf(&b, "%-38s %9.2f %9.2f %9.2f %8.2f\n", name, s.Mean, s.Min, s.Max, s.CI95)
	}
	return b.String()
}

// ReplicaExport is one replica's machine-readable section.
type ReplicaExport struct {
	Replica int               `json:"replica"`
	Seed    int64             `json:"seed"`
	Tables  experiment.Export `json:"tables"`
}

// AggregateExport is the JSON document for a replica study: the aggregate
// plus a per-replica section. Worker count is deliberately absent — the
// document is identical for any -parallel value.
type AggregateExport struct {
	Aggregate Aggregate       `json:"aggregate"`
	Replicas  []ReplicaExport `json:"replicas"`
}

// Export assembles the JSON document.
func (rs *ReplicaSet) Export() AggregateExport {
	out := AggregateExport{Aggregate: rs.Aggregate()}
	for _, run := range rs.Runs {
		r := run.Results
		out.Replicas = append(out.Replicas, ReplicaExport{
			Replica: run.Replica,
			Seed:    run.Seed,
			Tables:  experiment.BuildExport(r.Table1, r.Main, r.Table3),
		})
	}
	return out
}

// WriteJSON writes the aggregate export as indented JSON.
func (rs *ReplicaSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rs.Export()); err != nil {
		return fmt.Errorf("core: encoding replica export: %w", err)
	}
	return nil
}
