package core

import (
	"strings"
	"testing"

	"areyouhuman/internal/experiment"
)

// TestCachesAreSemanticsPreserving proves the visit-path caches (parsed-DOM,
// compiled scriptlets, evasion render, generated sites, phishing kits) never
// change what the study computes: the same four replicas run with caches
// enabled and with Config.NoCache must produce bit-identical reports and JSON
// exports. Both arms run with four concurrent workers, so under -race this
// also exercises the process-global caches (sitegen, phishkit) and the
// sync.Pool-backed substrates across concurrently live worlds.
func TestCachesAreSemanticsPreserving(t *testing.T) {
	t.Parallel()
	const replicas = 4

	run := func(noCache bool) *ReplicaSet {
		cfg := fastCfg()
		cfg.NoCache = noCache
		rs, err := RunReplicas(ReplicaOptions{
			Replicas: replicas,
			Parallel: replicas,
			Base:     cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	cached := run(false)
	fresh := run(true)

	for k := 0; k < replicas; k++ {
		if got, want := cached.Runs[k].Results.Report(), fresh.Runs[k].Results.Report(); got != want {
			t.Errorf("replica %d report differs with caches enabled:\n--- cached ---\n%s\n--- nocache ---\n%s", k, got, want)
		}
	}
	if got, want := cached.Report(), fresh.Report(); got != want {
		t.Errorf("aggregate report depends on caching:\n--- cached ---\n%s\n--- nocache ---\n%s", got, want)
	}

	var cachedJSON, freshJSON strings.Builder
	if err := cached.WriteJSON(&cachedJSON); err != nil {
		t.Fatal(err)
	}
	if err := fresh.WriteJSON(&freshJSON); err != nil {
		t.Fatal(err)
	}
	if cachedJSON.String() != freshJSON.String() {
		t.Error("JSON export depends on caching")
	}
}

// TestNoCacheDisablesWorldCaches pins the escape hatch's mechanism: a NoCache
// world carries no shared caches, so every consumer degrades to fresh parses.
func TestNoCacheDisablesWorldCaches(t *testing.T) {
	t.Parallel()
	cfg := fastCfg()
	cfg.NoCache = true
	w := experiment.NewWorld(cfg)
	if w.DOMCache != nil || w.Scripts != nil {
		t.Errorf("NoCache world still carries caches: DOM=%v scripts=%v", w.DOMCache, w.Scripts)
	}
	w = experiment.NewWorld(fastCfg())
	if w.DOMCache == nil || w.Scripts == nil {
		t.Errorf("default world is missing caches: DOM=%v scripts=%v", w.DOMCache, w.Scripts)
	}
}
