package core

import "areyouhuman/internal/chaos"

// Seed splitting.
//
// A replica study runs N fully independent worlds from one master seed. Each
// world must (a) be reproducible in isolation — replica K gets the same seed
// whether 1 or 100 replicas run, in any completion order — and (b) draw from a
// stream decorrelated from every sibling, so the replicas are genuinely
// independent draws from the simulated distribution rather than phase-shifted
// copies of one stream.
//
// SplitSeed achieves both with the splitmix64 finalizer (Steele, Lea &
// Flood 2014; the mixer behind Java's SplittableRandom and xoshiro seeding):
// the master seed is advanced K times by the golden-ratio increment and pushed
// through the avalanche function, so adjacent replicas land on unrelated
// 64-bit states. Replica 0 bypasses the mixer entirely and uses the master
// seed unchanged — a single-replica run is bit-identical to the historical
// single-run output.

// SplitSeed derives replica K's world seed from the master seed. Replica 0
// returns master unchanged; K > 0 returns splitmix64(master + K*gamma). The
// result is never 0, because experiment.Config treats a zero seed as "use the
// paper-calibrated default".
//
// The implementation lives in the chaos package (which also derives per-spec
// fault streams from it and cannot import core); this wrapper preserves the
// historical call site and its tests.
//
//phishlint:hotpath
func SplitSeed(master int64, replica int) int64 {
	return chaos.SplitSeed(master, replica)
}
