package core

import (
	"fmt"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/browser"
	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/htmlmini"
	"areyouhuman/internal/phishkit"
)

// The paper's motivation is lifespan: evasion techniques extend how long a
// phishing page keeps catching victims before blacklists protect them. The
// exposure study quantifies that directly: a spam campaign drives one victim
// per hour at each deployment for several days; each victim's browser checks
// the URL against GSB through the standard caching client before rendering.
// A victim is *exposed* when the page is not (visibly) blacklisted and the
// gate reveals the payload to a human.

// ExposureResult summarises one technique's victim outcomes.
type ExposureResult struct {
	Technique evasion.Technique
	// Victims is the campaign size.
	Victims int
	// Exposed victims reached the phishing payload.
	Exposed int
	// Protected victims were blocked by a blacklist warning.
	Protected int
	// CredentialsLost counts victims who went on to submit the login form.
	CredentialsLost int
	// BlacklistedAfter is the time from report to listing (0 = never).
	BlacklistedAfter time.Duration
}

// ExposureRate is the fraction of victims who reached the payload.
func (r ExposureResult) ExposureRate() float64 {
	if r.Victims == 0 {
		return 0
	}
	return float64(r.Exposed) / float64(r.Victims)
}

// ExposureCampaignDays is the campaign length.
const ExposureCampaignDays = 3

// RunExposureStudy runs the campaign for each technique (plus the naked
// control) against GSB.
func (f *Framework) RunExposureStudy() ([]ExposureResult, error) {
	techniques := []evasion.Technique{evasion.None, evasion.AlertBox, evasion.SessionBased, evasion.Recaptcha}
	results := make([]ExposureResult, 0, len(techniques))
	for i, tech := range techniques {
		res, err := f.runExposure(tech, i)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

func (f *Framework) runExposure(tech evasion.Technique, idx int) (ExposureResult, error) {
	w := f.newWorld(f.Cfg)
	defer w.Close()
	d, err := w.Deploy(fmt.Sprintf("exposure-%s-%d.com", tech, idx),
		experiment.MountSpec{Brand: phishkit.PayPal, Technique: tech})
	if err != nil {
		return ExposureResult{}, err
	}
	url := d.Mounts[0].URL
	mount := d.Mounts[0]
	gsb := w.Engines[engines.GSB]
	if err := w.ReportTo(d, engines.GSB); err != nil {
		return ExposureResult{}, err
	}

	res := ExposureResult{Technique: tech}
	// Each victim runs a fresh browser profile whose Safe Browsing client
	// shares GSB's list with standard 30-minute verdict caching.
	guard := &blacklist.CachingClient{List: gsb.List, Clock: w.Clock}

	hours := ExposureCampaignDays * 24
	for v := 0; v < hours; v++ {
		w.Sched.After(time.Duration(v)*time.Hour+7*time.Minute, "victim", func(time.Time) {
			res.Victims++
			if guard.Check(url) {
				res.Protected++
				return
			}
			human := browser.New(w.Net, browser.Config{
				UserAgent:       "Mozilla/5.0 (Windows NT 10.0; Win64; x64) Chrome/81.0 Safari/537.36",
				SourceIP:        fmt.Sprintf("198.51.%d.%d", 100+res.Victims/250, res.Victims%250+1),
				ExecuteScripts:  true,
				AlertPolicy:     browser.AlertConfirm,
				TimerBudget:     time.Hour,
				CanSolveCAPTCHA: true,
				DOMCache:        w.DOMCache,
				ScriptCache:     w.Scripts,
			})
			page, err := human.Open(url)
			if err != nil {
				return
			}
			// A victim follows the lure: if the page shows a persuader form
			// without a password field (the session cover's Join Chat
			// button), they press it once and look again.
			loginForm, ok := findLoginForm(page, mount.Kit.Brand)
			if !ok {
				for _, form := range page.Forms() {
					next, err := page.Submit(form, nil)
					if err != nil {
						continue
					}
					if lf, found := findLoginForm(next, mount.Kit.Brand); found {
						page, loginForm, ok = next, lf, true
					}
					break
				}
			}
			if !ok {
				return
			}
			res.Exposed++
			// Half the exposed victims type their credentials.
			if res.Exposed%2 == 1 {
				if _, err := page.Submit(loginForm, map[string]string{
					passwordField(mount.Kit.Brand): "hunter2",
				}); err == nil {
					res.CredentialsLost++
				}
			}
		})
	}
	w.Sched.RunFor(time.Duration(ExposureCampaignDays*24)*time.Hour + 2*time.Hour)
	if err := w.Sched.InterruptErr(); err != nil {
		return ExposureResult{}, err
	}

	if entry, ok := gsb.List.Lookup(url); ok {
		res.BlacklistedAfter = entry.AddedAt.Sub(d.ReportedAt)
	}
	return res, nil
}

func passwordField(brand phishkit.Brand) string {
	spec, _ := phishkit.SpecFor(brand)
	return spec.PasswordField
}

// RenderExposure formats the study as a table.
func RenderExposure(results []ExposureResult) string {
	out := fmt.Sprintf("%-10s %8s %8s %10s %12s %s\n",
		"technique", "victims", "exposed", "protected", "creds-lost", "blacklisted-after")
	for _, r := range results {
		after := "never"
		if r.BlacklistedAfter > 0 {
			after = fmt.Sprintf("%.0f min", r.BlacklistedAfter.Minutes())
		}
		out += fmt.Sprintf("%-10s %8d %8d %10d %12d %s\n",
			r.Technique, r.Victims, r.Exposed, r.Protected, r.CredentialsLost, after)
	}
	return out
}

// findLoginForm returns the page's credential form for the brand, if shown.
func findLoginForm(page *browser.Page, brand phishkit.Brand) (form htmlmini.Form, ok bool) {
	for _, f := range page.Forms() {
		if _, has := f.Fields[passwordField(brand)]; has {
			return f, true
		}
	}
	return htmlmini.Form{}, false
}
