package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"areyouhuman/internal/chaos"
	"areyouhuman/internal/experiment"
)

// The chaos study measures how resilient the reproduced pipeline is to an
// imperfect world: it runs the main experiment once as a clean baseline and
// once per fault plan, and reports how detection and timing shift. The paper
// ran against the real internet, which misbehaves for free; the simulation
// has to inject its misbehaviour deliberately.

// ChaosArm is one run of the main experiment under one fault plan (or none).
type ChaosArm struct {
	// Name labels the arm: "baseline" or the plan/preset name.
	Name string
	// Detected and Total are the Table 2 headline for this arm.
	Detected int
	Total    int
	// MeanTimeToList averages report-to-listing delay over detected URLs.
	MeanTimeToList time.Duration
	// MeanSightingLag averages how far behind the true listing time the
	// monitoring pipeline's first sighting ran (over detected URLs that were
	// sighted at all). Feed staleness and outages stretch this.
	MeanSightingLag time.Duration
	// Sighted counts detected URLs the monitor actually observed.
	Sighted int
}

// DetectionRate is Detected/Total (0 when Total is 0).
func (a ChaosArm) DetectionRate() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Detected) / float64(a.Total)
}

// ChaosStudy compares the main experiment across fault plans.
type ChaosStudy struct {
	Baseline ChaosArm
	Arms     []ChaosArm
}

// RunChaosStudy runs the main experiment once without faults and once per
// preset name, all from the same base configuration and seed, and returns the
// comparison. Every arm is a fresh world; only the fault plan differs, so any
// delta is attributable to the injected faults alone.
func RunChaosStudy(ctx context.Context, base experiment.Config, presets []string) (*ChaosStudy, error) {
	study := &ChaosStudy{}
	arm, err := runChaosArm(ctx, base, "baseline", nil)
	if err != nil {
		return nil, err
	}
	study.Baseline = arm
	for _, name := range presets {
		plan, err := chaos.Preset(name)
		if err != nil {
			return nil, err
		}
		arm, err := runChaosArm(ctx, base, name, plan)
		if err != nil {
			return nil, fmt.Errorf("core: chaos arm %q: %w", name, err)
		}
		study.Arms = append(study.Arms, arm)
	}
	return study, nil
}

func runChaosArm(ctx context.Context, base experiment.Config, name string, plan *chaos.Plan) (ChaosArm, error) {
	cfg := base
	cfg.Chaos = plan
	f := New(cfg)
	if ctx != nil {
		f.WithContext(ctx)
	}
	res, err := f.RunMain()
	if err != nil {
		return ChaosArm{}, err
	}
	arm := ChaosArm{Name: name, Detected: res.TotalDetected, Total: res.TotalURLs}
	var listDelays []time.Duration
	//phishlint:sorted only the order-insensitive sum/mean (AverageDuration) consumes the slice
	for _, ds := range res.TimesToList {
		listDelays = append(listDelays, ds...)
	}
	arm.MeanTimeToList = experiment.AverageDuration(listDelays)
	var lags []time.Duration
	//phishlint:sorted only a count and the order-insensitive mean (AverageDuration) consume this
	for url, listedAt := range res.ListedAt {
		if s, sighted := res.Sightings[url]; sighted {
			arm.Sighted++
			lags = append(lags, s.SeenAt.Sub(listedAt))
		}
	}
	arm.MeanSightingLag = experiment.AverageDuration(lags)
	return arm, nil
}

// Report renders the study as a fixed-width comparison table with deltas
// against the baseline.
func (s *ChaosStudy) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Chaos study: main experiment under fault injection ==\n\n")
	fmt.Fprintf(&b, "%-12s %10s %8s %15s %14s %10s\n",
		"arm", "detected", "rate", "mean list time", "sighting lag", "sighted")
	row := func(a ChaosArm, base *ChaosArm) {
		fmt.Fprintf(&b, "%-12s %7d/%d %7.1f%% %14.0fm %13.0fm %7d/%d",
			a.Name, a.Detected, a.Total, 100*a.DetectionRate(),
			a.MeanTimeToList.Minutes(), a.MeanSightingLag.Minutes(),
			a.Sighted, a.Detected)
		if base != nil {
			fmt.Fprintf(&b, "   (Δdetect %+d, Δlist %+.0fm, Δlag %+.0fm)",
				a.Detected-base.Detected,
				a.MeanTimeToList.Minutes()-base.MeanTimeToList.Minutes(),
				a.MeanSightingLag.Minutes()-base.MeanSightingLag.Minutes())
		}
		fmt.Fprintf(&b, "\n")
	}
	row(s.Baseline, nil)
	for _, a := range s.Arms {
		row(a, &s.Baseline)
	}
	return b.String()
}
