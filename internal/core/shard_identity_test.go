package core

import (
	"bytes"
	"testing"

	"areyouhuman/internal/journal"
	"areyouhuman/internal/telemetry"
)

// shardedArtifacts runs the full study on the sharded scheduler with the
// given worker count and returns every observable output surface: the
// lifecycle journal bytes, the Prometheus metrics snapshot, and the rendered
// study tables.
func shardedArtifacts(t *testing.T, seed int64, workers int) (journalBytes, metricsText []byte, report string) {
	t.Helper()
	var jbuf bytes.Buffer
	w := journal.NewWriter(&jbuf)
	cfg := fastCfg()
	cfg.Seed = seed
	cfg.ShardWorkers = workers
	cfg.Journal = w
	cfg.Telemetry = &telemetry.Set{Metrics: telemetry.NewRegistry()}
	res, err := New(cfg).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	if err := cfg.Telemetry.M().WritePrometheus(&mbuf); err != nil {
		t.Fatal(err)
	}
	return jbuf.Bytes(), mbuf.Bytes(), res.Report()
}

// TestShardedWorldByteIdenticalAcrossWorkers pins the sharded scheduler's
// determinism contract end to end: for a fixed seed, one worker and four
// workers must produce byte-identical journals, byte-identical metrics
// snapshots, and identical study tables. One worker is the sequential
// baseline — same shards, same windows, drained by a single goroutine — so
// any divergence is a cross-shard ordering leak. Run under -race (the CI
// sharded-identity job does both) this also proves the worker pool, the
// barrier-buffered sinks, and the per-shard engine clients are data-race
// free.
func TestShardedWorldByteIdenticalAcrossWorkers(t *testing.T) {
	t.Parallel()
	for _, seed := range []int64{21, 1234} {
		seed := seed
		j1, m1, r1 := shardedArtifacts(t, seed, 1)
		j4, m4, r4 := shardedArtifacts(t, seed, 4)
		if len(j1) == 0 {
			t.Fatalf("seed %d: journal is empty", seed)
		}
		if !bytes.Equal(j1, j4) {
			t.Errorf("seed %d: journal differs between 1 and 4 shard workers (%d vs %d bytes)",
				seed, len(j1), len(j4))
		}
		if !bytes.Equal(m1, m4) {
			t.Errorf("seed %d: metrics snapshot differs between 1 and 4 shard workers", seed)
		}
		if r1 != r4 {
			t.Errorf("seed %d: study tables differ between 1 and 4 shard workers", seed)
		}

		// The journal parses back anomaly-free.
		events, err := journal.ReadEvents(bytes.NewReader(j1))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if anomalies := journal.Analyze(events).Anomalies(); len(anomalies) != 0 {
			t.Fatalf("seed %d: journal flagged %d anomalies, e.g. %v", seed, len(anomalies), anomalies[0])
		}
	}
}

// TestShardedOneWorkerMatchesClassicResults pins a softer but load-bearing
// property: the sharded scheduler reproduces the classic serial scheduler's
// study tables. Engine RNG draws are pure per-call functions of (seed, key),
// so re-partitioning the queue must not move any result — only the
// scheduler-internal interleaving and observability timings may differ.
func TestShardedOneWorkerMatchesClassicResults(t *testing.T) {
	t.Parallel()
	classicCfg := fastCfg()
	classic, err := New(classicCfg).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	shardedCfg := fastCfg()
	shardedCfg.ShardWorkers = 1
	sharded, err := New(shardedCfg).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if c, s := classic.Report(), sharded.Report(); c != s {
		t.Errorf("study tables differ between classic and sharded-1 schedulers:\n--- classic ---\n%s\n--- sharded ---\n%s", c, s)
	}
}
