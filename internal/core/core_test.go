package core

import (
	"strings"
	"testing"
	"time"

	"areyouhuman/internal/experiment"
)

func fastCfg() experiment.Config {
	return experiment.Config{TrafficScale: 0.002}
}

func TestRunAllReproducesHeadlines(t *testing.T) {
	t.Parallel()
	f := New(fastCfg())
	res, err := f.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	claims := res.Claims()
	if len(claims) < 8 {
		t.Fatalf("claims = %d, want the full headline set", len(claims))
	}
	for _, c := range claims {
		if !c.Holds {
			t.Errorf("claim %q diverges: paper %s, measured %s", c.Name, c.Paper, c.Measured)
		}
	}
}

func TestReportRendersEverything(t *testing.T) {
	t.Parallel()
	f := New(fastCfg())
	res, err := f.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	out := res.Report()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3",
		"total detected: 8/105",
		"Claims (paper vs measured)",
		"reCAPTCHA",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "DIFF") {
		t.Errorf("report contains diverging claims:\n%s", out)
	}
}

func TestAlertConfirmAblation(t *testing.T) {
	t.Parallel()
	f := New(fastCfg())
	res, err := f.RunAlertConfirmAblation()
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 6 {
		t.Fatalf("total = %d, want 6", res.Total)
	}
	if res.BaselineDetected != 1 {
		t.Fatalf("baseline alert detections = %d, want 1 (only GSB)", res.BaselineDetected)
	}
	if res.ConfirmAll != 6 {
		t.Fatalf("confirm-all detections = %d, want 6 (alert box collapses)", res.ConfirmAll)
	}
}

func TestFormSubmitAblation(t *testing.T) {
	t.Parallel()
	f := New(fastCfg())
	res, err := f.RunFormSubmitAblation()
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 6 {
		t.Fatalf("total = %d", res.Total)
	}
	if res.BaselineBypasses != 6 {
		t.Fatalf("baseline bypasses = %d, want all 6 (NetCraft submits every form)", res.BaselineBypasses)
	}
	if res.NoSubmitBypasses != 0 {
		t.Fatalf("no-submit bypasses = %d, want 0", res.NoSubmitBypasses)
	}
}

func TestKitProvenanceAblation(t *testing.T) {
	t.Parallel()
	f := New(fastCfg())
	res, err := f.RunKitProvenanceAblation()
	if err != nil {
		t.Fatal(err)
	}
	if res.ScratchDetected {
		t.Fatal("fingerprint engine must miss the scratch-built Gmail kit")
	}
	if !res.ClonedDetected {
		t.Fatal("fingerprint engine must catch the cloned Gmail kit")
	}
}

func TestFeedSharingAblation(t *testing.T) {
	t.Parallel()
	f := New(fastCfg())
	res, err := f.RunFeedSharingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineCrossFeeds == 0 {
		t.Fatal("baseline must show cross-feed appearances")
	}
	if res.SeveredCrossFeeds != 0 {
		t.Fatalf("severed sharing still shows %d cross-feeds", res.SeveredCrossFeeds)
	}
}

func TestVerdictCacheAblation(t *testing.T) {
	t.Parallel()
	f := New(fastCfg())
	res := f.RunVerdictCacheAblation()
	if !res.MaskedWithCache {
		t.Fatal("within the TTL the cached safe verdict must mask the listing")
	}
	if !res.VisibleWithoutCache {
		t.Fatal("without caching the listing must be visible immediately")
	}
}

func TestCloakingBaseline(t *testing.T) {
	t.Parallel()
	f := New(fastCfg())
	res, err := f.RunCloakingBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 36 {
		t.Fatalf("total = %d, want 36", res.Total)
	}
	rate := float64(res.Detected) / float64(res.Total)
	// Oest et al.: ~23% of cloaked sites detected; our disguised-GSB model
	// lands in the same band, and far above the 7.6% of human verification.
	if rate < 0.10 || rate > 0.35 {
		t.Fatalf("cloaking detection rate = %.2f, want 0.10..0.35 (paper context: 0.23)", rate)
	}
	if res.AvgDelay < 3*time.Hour || res.AvgDelay > 5*time.Hour {
		t.Fatalf("cloaked avg delay = %v, want ≈238 min", res.AvgDelay)
	}
}

func TestFunnelAtPaperScale(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("1M-name funnel")
	}
	funnel, err := FunnelAtPaperScale()
	if err != nil {
		t.Fatal(err)
	}
	want := "1000000 -> 770 -> 251 -> 244 -> 244 -> 50"
	if funnel.String() != want {
		t.Fatalf("funnel = %s, want %s", funnel, want)
	}
}

func TestExposureStudyLifespanExtension(t *testing.T) {
	t.Parallel()
	f := New(fastCfg())
	results, err := f.RunExposureStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d techniques, want 4", len(results))
	}
	byTech := map[string]ExposureResult{}
	for _, r := range results {
		byTech[r.Technique.String()] = r
		if r.Victims != ExposureCampaignDays*24 {
			t.Fatalf("%s saw %d victims, want %d", r.Technique, r.Victims, ExposureCampaignDays*24)
		}
	}

	naked := byTech["none"]
	alert := byTech["alertbox"]
	session := byTech["session"]
	recaptcha := byTech["recaptcha"]

	// Naked and alert-box pages get blacklisted (GSB cracks both), so most
	// victims are protected.
	if naked.BlacklistedAfter == 0 || alert.BlacklistedAfter == 0 {
		t.Fatal("naked and alert-box pages should be blacklisted")
	}
	if naked.Protected < 60 || alert.Protected < 60 {
		t.Fatalf("blacklisting should protect most victims: naked %d, alert %d protected", naked.Protected, alert.Protected)
	}
	// Session and reCAPTCHA pages are never listed: every victim exposed.
	if session.BlacklistedAfter != 0 || recaptcha.BlacklistedAfter != 0 {
		t.Fatal("session/recaptcha pages must never be blacklisted by GSB")
	}
	if session.Exposed != session.Victims || recaptcha.Exposed != recaptcha.Victims {
		t.Fatalf("evasion should expose every victim: session %d/%d, recaptcha %d/%d",
			session.Exposed, session.Victims, recaptcha.Exposed, recaptcha.Victims)
	}
	// Half the exposed victims lose credentials.
	if recaptcha.CredentialsLost < recaptcha.Exposed/3 {
		t.Fatalf("creds lost = %d of %d exposed", recaptcha.CredentialsLost, recaptcha.Exposed)
	}
	// The rendered table mentions every technique.
	out := RenderExposure(results)
	for _, want := range []string{"none", "alertbox", "session", "recaptcha", "never"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
