package core

import (
	"encoding/json"
	"strings"
	"testing"

	"areyouhuman/internal/experiment"
)

// runSet is a test helper: run the full replica study with a given worker
// count over the fast config.
func runSet(t *testing.T, replicas, parallel int) *ReplicaSet {
	t.Helper()
	rs, err := RunReplicas(ReplicaOptions{
		Replicas: replicas,
		Parallel: parallel,
		Base:     fastCfg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// TestReplicaZeroMatchesSingleRun pins the compatibility promise: replica 0
// of a multi-replica study is the exact world a plain single run produces —
// same seed, same report, byte for byte.
func TestReplicaZeroMatchesSingleRun(t *testing.T) {
	t.Parallel()
	single, err := New(fastCfg()).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	rs := runSet(t, 2, 2)

	if got := rs.Runs[0].Seed; got != experiment.DefaultSeed {
		t.Fatalf("replica 0 seed = %d, want the default master seed %d", got, experiment.DefaultSeed)
	}
	if got, want := rs.Runs[0].Results.Report(), single.Report(); got != want {
		t.Errorf("replica 0 report diverges from a single run:\n--- replica 0 ---\n%s\n--- single ---\n%s", got, want)
	}
	if rs.Runs[1].Seed == rs.Runs[0].Seed {
		t.Error("replica 1 reuses replica 0's seed; worlds would be identical")
	}
}

// TestReplicasParallelMatchesSequential is the determinism stress test: four
// replicas executed by four concurrent workers must produce reports pairwise
// bit-identical to the same four replicas executed by a single worker. Run
// under -race this also exercises every substrate for data races across
// concurrently live worlds.
func TestReplicasParallelMatchesSequential(t *testing.T) {
	t.Parallel()
	const replicas = 4
	seq := runSet(t, replicas, 1)
	par := runSet(t, replicas, replicas)

	for k := 0; k < replicas; k++ {
		if seq.Runs[k].Seed != par.Runs[k].Seed {
			t.Fatalf("replica %d seeds differ: sequential %d, parallel %d", k, seq.Runs[k].Seed, par.Runs[k].Seed)
		}
		if got, want := par.Runs[k].Results.Report(), seq.Runs[k].Results.Report(); got != want {
			t.Errorf("replica %d report differs between parallel and sequential execution", k)
		}
		if par.Runs[k].Exposure == nil {
			t.Errorf("replica %d is missing its exposure study", k)
		}
	}
	if got, want := par.Report(), seq.Report(); got != want {
		t.Errorf("aggregate report depends on worker count:\n--- parallel ---\n%s\n--- sequential ---\n%s", got, want)
	}

	var parJSON, seqJSON strings.Builder
	if err := par.WriteJSON(&parJSON); err != nil {
		t.Fatal(err)
	}
	if err := seq.WriteJSON(&seqJSON); err != nil {
		t.Fatal(err)
	}
	if parJSON.String() != seqJSON.String() {
		t.Error("JSON export depends on worker count")
	}
}

// TestReplicaRunsDiverge guards against a broken seed split silently running
// N copies of the same world: with different seeds, at least one replica pair
// should differ somewhere in the full report.
func TestReplicaRunsDiverge(t *testing.T) {
	t.Parallel()
	rs := runSet(t, 3, 3)
	distinct := false
	for k := 1; k < len(rs.Runs); k++ {
		if rs.Runs[k].Results.Report() != rs.Runs[0].Results.Report() {
			distinct = true
		}
	}
	if !distinct {
		t.Error("all replicas produced identical reports; seeds are not decorrelating the worlds")
	}
}

// TestAggregateShape checks the aggregate covers the study: the scalar series
// all carry N = replicas samples, Table 2 cells span the full engine × brand
// × technique grid, and the export round-trips as JSON without a worker-count
// field.
func TestAggregateShape(t *testing.T) {
	t.Parallel()
	rs := runSet(t, 2, 2)
	agg := rs.Aggregate()

	if agg.Replicas != 2 || agg.MasterSeed != experiment.DefaultSeed {
		t.Fatalf("aggregate header = %d replicas seed %d", agg.Replicas, agg.MasterSeed)
	}
	for _, name := range []string{
		"main_total_detected", "gsb_alertbox_avg_min", "netcraft_session_detections",
		"table1_requests_total", "extensions_detected_total",
		"ablation_alert_confirm_all", "ablation_form_nosubmit_bypasses",
		"ablation_cross_feeds_baseline", "cloaking_detected",
		"exposure_rate_recaptcha",
	} {
		s, ok := agg.Metrics[name]
		if !ok {
			t.Errorf("aggregate is missing metric %q", name)
			continue
		}
		if s.N != 2 {
			t.Errorf("metric %q has %d samples, want one per replica", name, s.N)
		}
		if s.Min > s.Mean || s.Mean > s.Max {
			t.Errorf("metric %q violates min <= mean <= max: %+v", name, s)
		}
	}
	// 6 engines x 2 brands x 3 techniques.
	if len(agg.Cells) != 36 {
		t.Errorf("aggregate has %d Table 2 cells, want 36", len(agg.Cells))
	}

	var buf strings.Builder
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if strings.Contains(strings.ToLower(buf.String()), "parallel") {
		t.Error("export mentions the worker count; output must be identical for any -parallel")
	}
	reps, ok := doc["replicas"].([]any)
	if !ok || len(reps) != 2 {
		t.Fatalf("export has %v per-replica sections, want 2", doc["replicas"])
	}
}

// TestSummarize pins the statistics helper.
func TestSummarize(t *testing.T) {
	t.Parallel()
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("Summarize(nil) = %+v, want zero value", s)
	}
	if s := Summarize([]float64{5}); s.N != 1 || s.Mean != 5 || s.Min != 5 || s.Max != 5 || s.CI95 != 0 {
		t.Fatalf("Summarize single = %+v", s)
	}
	s := Summarize([]float64{2, 4, 6, 8})
	if s.Mean != 5 || s.Min != 2 || s.Max != 8 || s.N != 4 {
		t.Fatalf("Summarize = %+v", s)
	}
	// sd = sqrt((9+1+1+9)/3) ≈ 2.582; ci95 = 1.96·sd/2 ≈ 2.53.
	if s.CI95 < 2.5 || s.CI95 > 2.56 {
		t.Fatalf("CI95 = %v, want ≈2.53", s.CI95)
	}
}
