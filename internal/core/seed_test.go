package core

import (
	"math/bits"
	"math/rand"
	"testing"

	"areyouhuman/internal/experiment"
)

func TestSplitSeedReplicaZeroIsMaster(t *testing.T) {
	t.Parallel()
	for _, master := range []int64{experiment.DefaultSeed, 1, -7, 1 << 40} {
		if got := SplitSeed(master, 0); got != master {
			t.Fatalf("SplitSeed(%d, 0) = %d, want the master unchanged", master, got)
		}
	}
}

func TestSplitSeedStableAcrossReplicaCounts(t *testing.T) {
	t.Parallel()
	// Replica K's seed is a pure function of (master, K): no dependence on
	// how many siblings exist or who finished first.
	for k := 0; k < 64; k++ {
		a := SplitSeed(experiment.DefaultSeed, k)
		b := SplitSeed(experiment.DefaultSeed, k)
		if a != b {
			t.Fatalf("SplitSeed not deterministic at replica %d: %d vs %d", k, a, b)
		}
	}
}

func TestSplitSeedDistinctAndNonZero(t *testing.T) {
	t.Parallel()
	for _, master := range []int64{0, experiment.DefaultSeed, -1, 1 << 62} {
		seen := make(map[int64]int, 4096)
		for k := 0; k < 4096; k++ {
			s := SplitSeed(master, k)
			if s == 0 && k > 0 {
				t.Fatalf("SplitSeed(%d, %d) = 0; zero means 'default' to Config and must never be derived", master, k)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("SplitSeed(%d, ·) collides: replicas %d and %d both get %d", master, prev, k, s)
			}
			seen[s] = k
		}
	}
}

// TestSplitSeedDecorrelatesStreams checks the property the replica runner
// actually needs: the rand streams rooted at adjacent replica seeds should
// behave like independent draws, not shifted copies. Two cheap proxies: the
// avalanche between adjacent seeds is ~32 of 64 bits, and first draws from
// adjacent streams agree no more often than chance.
func TestSplitSeedDecorrelatesStreams(t *testing.T) {
	t.Parallel()
	const n = 2048
	flips := 0
	matches := 0
	for k := 1; k < n; k++ {
		a := SplitSeed(experiment.DefaultSeed, k)
		b := SplitSeed(experiment.DefaultSeed, k+1)
		flips += bits.OnesCount64(uint64(a) ^ uint64(b))
		ra := rand.New(rand.NewSource(a))
		rb := rand.New(rand.NewSource(b))
		if ra.Intn(100) == rb.Intn(100) {
			matches++
		}
	}
	if avg := float64(flips) / float64(n-1); avg < 24 || avg > 40 {
		t.Fatalf("avalanche between adjacent replica seeds = %.1f bits on average, want ~32", avg)
	}
	// Chance agreement for Intn(100) is 1%; allow generous slack.
	if matches > n/20 {
		t.Fatalf("first draws from adjacent replica streams matched %d/%d times, want ~1%%", matches, n-1)
	}
}
