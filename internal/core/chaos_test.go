package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"areyouhuman/internal/chaos"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/telemetry"
)

// TestEmptyPlanIsByteIdentical pins the chaos layer's central invariant: a
// non-nil but empty fault plan installs inert hooks, and the full study's
// report is byte-for-byte what a chaos-free run produces. If any fault hook
// consumed randomness, reordered events, or perturbed a timing even when no
// fault fires, this diverges.
func TestEmptyPlanIsByteIdentical(t *testing.T) {
	t.Parallel()
	clean, err := New(fastCfg()).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.Chaos = &chaos.Plan{Name: "empty"}
	empty, err := New(cfg).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := empty.Report(), clean.Report(); got != want {
		t.Errorf("empty plan perturbs the study:\n--- empty plan ---\n%s\n--- no plan ---\n%s", got, want)
	}
}

// TestChaosReplicasParallelMatchesSequential is the fault-injection
// determinism stress test: with a nonempty plan, N replicas must still be
// bit-identical between one worker and N workers. Fault draws are pure
// functions of (seed, plan, label, time), so worker count cannot reach them;
// under -race this also proves the injector is safe across concurrently
// live worlds.
func TestChaosReplicasParallelMatchesSequential(t *testing.T) {
	t.Parallel()
	const replicas = 3
	cfg := fastCfg()
	cfg.Chaos = chaos.Flaky()
	run := func(parallel int) *ReplicaSet {
		rs, err := RunReplicas(ReplicaOptions{Replicas: replicas, Parallel: parallel, Base: cfg})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	seq := run(1)
	par := run(replicas)

	for k := 0; k < replicas; k++ {
		if got, want := par.Runs[k].Results.Report(), seq.Runs[k].Results.Report(); got != want {
			t.Errorf("replica %d diverges between parallel and sequential under chaos", k)
		}
	}
	var seqJSON, parJSON strings.Builder
	if err := seq.WriteJSON(&seqJSON); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteJSON(&parJSON); err != nil {
		t.Fatal(err)
	}
	if seqJSON.String() != parJSON.String() {
		t.Error("chaos-run JSON export depends on worker count")
	}
}

// TestChaosFaultsObservable runs the main experiment under the flaky preset
// with telemetry and checks the chaos layer actually fired: injected-fault
// counters are positive and the run still completes with the full URL count.
func TestChaosFaultsObservable(t *testing.T) {
	t.Parallel()
	cfg := fastCfg()
	cfg.Chaos = chaos.Flaky()
	cfg.Telemetry = &telemetry.Set{Metrics: telemetry.NewRegistry()}
	res, err := New(cfg).RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalURLs != 105 {
		t.Fatalf("chaos run deployed %d URLs, want 105", res.TotalURLs)
	}
	injected := 0.0
	for _, p := range cfg.Telemetry.Metrics.Snapshot() {
		if p.Name == chaos.MetricFaultsInjected {
			injected += p.Value
		}
	}
	if injected == 0 {
		t.Error("flaky preset injected no faults over a two-week main run")
	}
}

// TestChaosStudyComparesArms checks the comparison harness: a baseline arm
// plus one preset arm, full URL counts in both, and a rendered delta table.
func TestChaosStudyComparesArms(t *testing.T) {
	t.Parallel()
	study, err := RunChaosStudy(context.Background(), fastCfg(), []string{"outage"})
	if err != nil {
		t.Fatal(err)
	}
	if study.Baseline.Total != 105 || len(study.Arms) != 1 || study.Arms[0].Total != 105 {
		t.Fatalf("study shape: baseline %d/%d, %d arms", study.Baseline.Detected, study.Baseline.Total, len(study.Arms))
	}
	if study.Arms[0].Name != "outage" {
		t.Fatalf("arm name = %q", study.Arms[0].Name)
	}
	rep := study.Report()
	if !strings.Contains(rep, "baseline") || !strings.Contains(rep, "outage") {
		t.Errorf("report is missing arms:\n%s", rep)
	}
}

// TestRunChaosStudyUnknownPreset propagates the preset error.
func TestRunChaosStudyUnknownPreset(t *testing.T) {
	t.Parallel()
	_, err := RunChaosStudy(context.Background(), fastCfg(), []string{"earthquake"})
	if !errors.Is(err, chaos.ErrUnknownPreset) {
		t.Fatalf("err = %v, want ErrUnknownPreset", err)
	}
}

// TestFrameworkContextCancellation: a framework under an already-cancelled
// context must fail promptly with the context error, not run a two-week
// simulation to completion.
func TestFrameworkContextCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(fastCfg()).WithContext(ctx).RunAll()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAll under cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestRunReplicasContextCancellation: a cancelled study returns ctx.Err and
// no result set.
func TestRunReplicasContextCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs, err := RunReplicas(ReplicaOptions{Replicas: 2, Parallel: 2, Base: fastCfg(), Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunReplicas under cancelled ctx = %v, want context.Canceled", err)
	}
	if rs != nil {
		t.Error("cancelled study still returned a result set")
	}
}

// TestChaosChangesOutcome guards against the chaos layer being wired but
// inert: a heavy outage plan must shift something measurable relative to the
// clean baseline (detections, listing delay, or sighting lag). A fully
// identical run would mean the faults never reach the pipeline.
func TestChaosChangesOutcome(t *testing.T) {
	t.Parallel()
	clean, err := New(fastCfg()).RunMain()
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.Chaos = chaos.Degraded()
	faulty, err := New(cfg).RunMain()
	if err != nil {
		t.Fatal(err)
	}
	meanList := func(res *experiment.MainResults) float64 {
		var all []time.Duration
		for _, ds := range res.TimesToList {
			all = append(all, ds...)
		}
		return experiment.AverageDuration(all).Minutes()
	}
	cleanMean, faultyMean := meanList(clean), meanList(faulty)
	// The degraded preset's study-long engine-slow window adds 4 hours to
	// every listing pipeline, so mean time-to-list must move by hours.
	if faultyMean < cleanMean+60 {
		t.Errorf("degraded preset left listing delays untouched: clean mean %.0fm, degraded mean %.0fm",
			cleanMean, faultyMean)
	}
}
