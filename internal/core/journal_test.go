package core

import (
	"bytes"
	"testing"

	"areyouhuman/internal/journal"
)

// journalOf runs a full multi-replica study with the lifecycle journal
// attached and returns the journal bytes.
func journalOf(t *testing.T, seed int64, replicas, parallel int) []byte {
	t.Helper()
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Seed = seed
	cfg.Journal = journal.NewWriter(&buf)
	if _, err := RunReplicas(ReplicaOptions{
		Replicas: replicas, Parallel: parallel, MasterSeed: seed, Base: cfg,
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJournalByteIdenticalAcrossParallelism pins the journal determinism
// contract: for a fixed seed, the journal is byte-for-byte identical whatever
// the worker count — replica blocks land in replica order regardless of
// completion order. Run under -race this also exercises the writer's
// concurrent buffering from N replica goroutines.
func TestJournalByteIdenticalAcrossParallelism(t *testing.T) {
	t.Parallel()
	serial := journalOf(t, 1234, 3, 1)
	concurrent := journalOf(t, 1234, 3, 3)
	if len(serial) == 0 {
		t.Fatal("journal is empty")
	}
	if !bytes.Equal(serial, concurrent) {
		t.Fatalf("journal differs between -parallel 1 and -parallel 3 (%d vs %d bytes)",
			len(serial), len(concurrent))
	}

	// Sanity: the bytes respond to the seed — different seeds, different runs.
	other := journalOf(t, 5678, 3, 3)
	if bytes.Equal(serial, other) {
		t.Fatal("journals identical across different master seeds")
	}

	// The stream parses back, covers every replica, and is anomaly-free.
	events, err := journal.ReadEvents(bytes.NewReader(serial))
	if err != nil {
		t.Fatal(err)
	}
	st := journal.Analyze(events)
	if got := st.Replicas(); len(got) != 3 {
		t.Fatalf("replicas in journal = %v, want 3", got)
	}
	if anomalies := st.Anomalies(); len(anomalies) != 0 {
		t.Fatalf("journal flagged %d anomalies, e.g. %v", len(anomalies), anomalies[0])
	}
	// Replica blocks must be contiguous: once the replica index advances, it
	// never goes back.
	last, seen := -1, map[int]bool{}
	for _, ev := range events {
		if ev.Replica != last {
			if seen[ev.Replica] {
				t.Fatalf("replica %d block is not contiguous", ev.Replica)
			}
			seen[ev.Replica] = true
			if ev.Replica < last {
				t.Fatalf("replica %d after replica %d", ev.Replica, last)
			}
			last = ev.Replica
		}
	}
}
