package core

import (
	"fmt"
	"sort"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/browser"
	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/phishkit"
	"areyouhuman/internal/simclock"
)

// Ablations quantify the design choices DESIGN.md calls out: what happens to
// the paper's results when one mechanism is granted to everyone or taken
// away.

// AlertAblationResult compares alert-box detections with stock capability
// profiles against a world where every engine is granted GSB's
// alert-confirming browser simulation.
type AlertAblationResult struct {
	BaselineDetected int
	ConfirmAll       int
	Total            int
}

// RunAlertConfirmAblation deploys one alert-box URL per main-experiment
// engine in two worlds and counts detections.
func (f *Framework) RunAlertConfirmAblation() (AlertAblationResult, error) {
	run := func(mutate func(p *engines.Profile)) (int, int, error) {
		cfg := f.Cfg
		cfg.Mutate = mutate
		w := f.newWorld(cfg)
		defer w.Close()
		detected, total := 0, 0
		for i, key := range engines.MainExperimentKeys() {
			d, err := w.Deploy(fmt.Sprintf("ablation-alert-%d.com", i),
				experiment.MountSpec{Brand: phishkit.PayPal, Technique: evasion.AlertBox})
			if err != nil {
				return 0, 0, err
			}
			if err := w.ReportTo(d, key); err != nil {
				return 0, 0, err
			}
			total++
		}
		w.Sched.RunFor(24 * time.Hour)
		if err := w.Sched.InterruptErr(); err != nil {
			return 0, 0, err
		}
		for _, d := range w.Deployments() {
			if w.Engines[d.ReportedTo].List.Contains(d.Mounts[0].URL) {
				detected++
			}
		}
		return detected, total, nil
	}

	baseline, total, err := run(nil)
	if err != nil {
		return AlertAblationResult{}, err
	}
	all, _, err := run(func(p *engines.Profile) {
		p.ExecuteScripts = true
		p.AlertPolicy = browser.AlertConfirm
		if p.TimerBudget < 30*time.Second {
			p.TimerBudget = 30 * time.Second
		}
	})
	if err != nil {
		return AlertAblationResult{}, err
	}
	return AlertAblationResult{BaselineDetected: baseline, ConfirmAll: all, Total: total}, nil
}

// FormAblationResult compares session-based bypasses with and without
// NetCraft's form submission.
type FormAblationResult struct {
	BaselineBypasses int
	NoSubmitBypasses int
	Total            int
}

// RunFormSubmitAblation deploys six session-protected URLs reported to
// NetCraft, with and without its FormAll policy, and counts payload reaches.
func (f *Framework) RunFormSubmitAblation() (FormAblationResult, error) {
	run := func(mutate func(p *engines.Profile)) (int, int, error) {
		cfg := f.Cfg
		cfg.Mutate = mutate
		w := f.newWorld(cfg)
		defer w.Close()
		total := 0
		var deployments []*experiment.Deployment
		for i := 0; i < 6; i++ {
			brand := phishkit.Facebook
			if i%2 == 1 {
				brand = phishkit.PayPal
			}
			d, err := w.Deploy(fmt.Sprintf("ablation-session-%d.com", i),
				experiment.MountSpec{Brand: brand, Technique: evasion.SessionBased})
			if err != nil {
				return 0, 0, err
			}
			if err := w.ReportTo(d, engines.NetCraft); err != nil {
				return 0, 0, err
			}
			deployments = append(deployments, d)
			total++
		}
		w.Sched.RunFor(24 * time.Hour)
		if err := w.Sched.InterruptErr(); err != nil {
			return 0, 0, err
		}
		bypassed := 0
		for _, d := range deployments {
			if len(d.Log.PayloadServes()) > 0 {
				bypassed++
			}
		}
		return bypassed, total, nil
	}

	baseline, total, err := run(nil)
	if err != nil {
		return FormAblationResult{}, err
	}
	noSubmit, _, err := run(func(p *engines.Profile) {
		if p.Key == engines.NetCraft {
			p.FormPolicy = engines.FormNone
		}
	})
	if err != nil {
		return FormAblationResult{}, err
	}
	return FormAblationResult{BaselineBypasses: baseline, NoSubmitBypasses: noSubmit, Total: total}, nil
}

// ProvenanceAblationResult compares detection of the Gmail kit by a
// fingerprint-only engine when the kit is scratch-built (the paper's choice)
// versus cloned.
type ProvenanceAblationResult struct {
	ScratchDetected bool
	ClonedDetected  bool
}

// RunKitProvenanceAblation reports a scratch-built and a cloned Gmail kit to
// OpenPhish (fingerprint-only) and compares outcomes.
func (f *Framework) RunKitProvenanceAblation() (ProvenanceAblationResult, error) {
	run := func(cloned bool) (bool, error) {
		w := f.newWorld(f.Cfg)
		defer w.Close()
		d, err := w.Deploy("ablation-gmail.com",
			experiment.MountSpec{Brand: phishkit.Gmail, Technique: evasion.None, ForceCloned: cloned})
		if err != nil {
			return false, err
		}
		if err := w.ReportTo(d, engines.OpenPhish); err != nil {
			return false, err
		}
		w.Sched.RunFor(24 * time.Hour)
		if err := w.Sched.InterruptErr(); err != nil {
			return false, err
		}
		return w.Engines[engines.OpenPhish].List.Contains(d.Mounts[0].URL), nil
	}
	scratch, err := run(false)
	if err != nil {
		return ProvenanceAblationResult{}, err
	}
	cloned, err := run(true)
	if err != nil {
		return ProvenanceAblationResult{}, err
	}
	return ProvenanceAblationResult{ScratchDetected: scratch, ClonedDetected: cloned}, nil
}

// SharingAblationResult compares cross-feed appearances with and without the
// feed-sharing graph.
type SharingAblationResult struct {
	BaselineCrossFeeds int
	SeveredCrossFeeds  int
}

// RunFeedSharingAblation runs the preliminary test with and without sharing
// edges and counts "also blacklisted by" relationships.
func (f *Framework) RunFeedSharingAblation() (SharingAblationResult, error) {
	count := func(mutate func(p *engines.Profile)) (int, error) {
		cfg := f.Cfg
		cfg.Mutate = mutate
		w := f.newWorld(cfg)
		defer w.Close()
		rows, err := w.RunPreliminary()
		if err != nil {
			return 0, err
		}
		n := 0
		for _, r := range rows {
			n += len(r.AlsoBlacklistedBy)
		}
		return n, nil
	}
	baseline, err := count(nil)
	if err != nil {
		return SharingAblationResult{}, err
	}
	severed, err := count(func(p *engines.Profile) { p.SharesTo = nil })
	if err != nil {
		return SharingAblationResult{}, err
	}
	return SharingAblationResult{BaselineCrossFeeds: baseline, SeveredCrossFeeds: severed}, nil
}

// CacheAblationResult shows the verdict-cache window that protects the
// reCAPTCHA same-URL trick on the client side.
type CacheAblationResult struct {
	// MaskedWithCache is true when a fresh listing stays invisible to a
	// caching client inside the TTL window.
	MaskedWithCache bool
	// VisibleWithoutCache is true when a cacheless client sees the listing
	// immediately.
	VisibleWithoutCache bool
}

// RunVerdictCacheAblation replays the timeline from Section 2.4: a client
// checks a URL (safe), the URL gets blacklisted minutes later, and the
// client re-checks within the TTL.
func (f *Framework) RunVerdictCacheAblation() CacheAblationResult {
	clock := simclock.New(simclock.Epoch)
	list := blacklist.NewList("gsb", clock)
	url := "https://ablation-cache.com/wp-content/secure/login.php"

	cached := &blacklist.CachingClient{List: list, Clock: clock, TTL: 30 * time.Minute}
	plain := &blacklist.CachingClient{List: list, Clock: clock, Disabled: true}

	cached.Check(url) // first page load: challenge page, verdict safe
	plain.Check(url)
	clock.Advance(2 * time.Minute)
	list.Add(url, "gsb") // the engine lists the URL
	clock.Advance(3 * time.Minute)

	return CacheAblationResult{
		MaskedWithCache:     !cached.Check(url),
		VisibleWithoutCache: plain.Check(url),
	}
}

// CloakingBaselineResult reproduces the context numbers from Oest et al.
// that Section 4 cites: cloaked phishing sites were still detected ~23% of
// the time (vs 7.6% for human verification), at a longer average delay.
type CloakingBaselineResult struct {
	Detected int
	Total    int
	AvgDelay time.Duration
}

// RunCloakingBaseline deploys cloaking-protected kits (6 engines x FB/PP x 3
// URLs). The attacker blocks known crawler user agents and address ranges,
// but GSB's fleet crawls from addresses outside the attacker's list with a
// browser user agent — which is how cloaked sites still get caught.
func (f *Framework) RunCloakingBaseline() (CloakingBaselineResult, error) {
	cfg := f.Cfg
	cfg.Mutate = func(p *engines.Profile) {
		if p.Key == engines.GSB {
			// Disguised crawl: residential-looking UA, unlisted prefix,
			// and the slower cloaked-review pipeline Oest et al. measured
			// (238 min average).
			p.UserAgent = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) Chrome/81.0.4044.138 Safari/537.36"
			p.IPPrefix = "72.14.200."
			p.BlacklistDelay = 214 * time.Minute
			p.BlacklistJitter = 24 * time.Minute
		}
	}
	w := f.newWorld(cfg)
	defer w.Close()

	// The attacker's blocklist covers the engines' published crawler ranges.
	var botIPs []string
	for _, p := range engines.Profiles() {
		botIPs = append(botIPs, p.IPPrefix)
	}
	sort.Strings(botIPs)

	res := CloakingBaselineResult{}
	var ds []*experiment.Deployment
	i := 0
	for _, key := range engines.MainExperimentKeys() {
		for _, brand := range []phishkit.Brand{phishkit.Facebook, phishkit.PayPal} {
			for k := 0; k < 3; k++ {
				domain := fmt.Sprintf("ablation-cloak-%d.com", i)
				i++
				d, err := w.Deploy(domain, experiment.MountSpec{
					Brand: brand, Technique: evasion.Cloaking, BotIPs: botIPs,
				})
				if err != nil {
					return res, err
				}
				if err := w.ReportTo(d, key); err != nil {
					return res, err
				}
				ds = append(ds, d)
				res.Total++
			}
		}
	}
	w.Sched.RunFor(48 * time.Hour)
	if err := w.Sched.InterruptErr(); err != nil {
		return res, err
	}

	var delays []time.Duration
	for _, d := range ds {
		eng := w.Engines[d.ReportedTo]
		if entry, ok := eng.List.Lookup(d.Mounts[0].URL); ok && entry.Source == d.ReportedTo {
			res.Detected++
			delays = append(delays, entry.AddedAt.Sub(d.ReportedAt))
		}
	}
	res.AvgDelay = experiment.AverageDuration(delays)
	return res, nil
}
