package core

import (
	"areyouhuman/internal/population"
)

// RunPopulation runs the heterogeneous-victim exposure study in a fresh
// world: spec.Size victims partitioned into cohorts (inspection skill,
// susceptibility, reporting propensity, visit cadence) visit
// evasion-protected lures on their home hosts, with Safe Browsing guards
// fed by GSB and community reports feeding PhishTank's unverified section.
// Victims are derived positionally in batches — see internal/population —
// so memory stays flat from 10k to 1M victims.
func (f *Framework) RunPopulation(spec population.Spec) (*population.Results, error) {
	w := f.newWorld(f.Cfg)
	defer w.Close()
	return w.RunPopulation(spec)
}
