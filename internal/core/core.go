// Package core is the paper's primary contribution: a semi-automated,
// scalable framework for experimentally testing phishing evasion techniques
// against anti-phishing engines (Section 3).
//
// The Framework orchestrates the full study — domain acquisition, website
// and kit generation, evasion deployment, reporting, monitoring, and
// analysis — over the simulated internet, and renders the paper's three
// tables plus the headline claims with paper-vs-measured values.
package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"areyouhuman/internal/dropcatch"
	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/phishkit"
)

// Framework runs the study.
type Framework struct {
	Cfg experiment.Config
	ctx context.Context
}

// New returns a framework with the given configuration.
func New(cfg experiment.Config) *Framework {
	return &Framework{Cfg: cfg}
}

// WithContext subjects every world the framework builds to ctx: once ctx is
// cancelled, the running stage stops within a bounded number of events and
// returns ctx's error. Returns the framework for chaining.
func (f *Framework) WithContext(ctx context.Context) *Framework {
	f.ctx = ctx
	return f
}

// newWorld builds a world from cfg and applies the framework's context.
func (f *Framework) newWorld(cfg experiment.Config) *experiment.World {
	w := experiment.NewWorld(cfg)
	if f.ctx != nil {
		w.SetContext(f.ctx)
	}
	return w
}

// Results aggregates all three experiments.
type Results struct {
	Table1 []experiment.Table1Row
	Main   *experiment.MainResults
	Table3 []experiment.Table3Row
}

// RunPreliminary runs the 24-hour naked-kit test (Table 1) in a fresh world.
func (f *Framework) RunPreliminary() ([]experiment.Table1Row, error) {
	w := f.newWorld(f.Cfg)
	defer w.Close()
	return w.RunPreliminary()
}

// RunMain runs the two-week main experiment (Table 2) in a fresh world.
func (f *Framework) RunMain() (*experiment.MainResults, error) {
	w := f.newWorld(f.Cfg)
	defer w.Close()
	return w.RunMain()
}

// RunExtensions runs the client-side extension study (Table 3) in a fresh
// world.
func (f *Framework) RunExtensions() ([]experiment.Table3Row, error) {
	w := f.newWorld(f.Cfg)
	defer w.Close()
	return w.RunExtensions()
}

// RunAll runs the three experiments, each in its own isolated world (the
// paper's stages were weeks apart on fresh domains).
func (f *Framework) RunAll() (*Results, error) {
	t1, err := f.RunPreliminary()
	if err != nil {
		return nil, fmt.Errorf("core: preliminary: %w", err)
	}
	main, err := f.RunMain()
	if err != nil {
		return nil, fmt.Errorf("core: main: %w", err)
	}
	t3, err := f.RunExtensions()
	if err != nil {
		return nil, fmt.Errorf("core: extensions: %w", err)
	}
	return &Results{Table1: t1, Main: main, Table3: t3}, nil
}

// Claim is one paper claim with the measured value.
type Claim struct {
	Name     string
	Paper    string
	Measured string
	Holds    bool
}

// Claims derives the headline paper-vs-measured comparison from results.
func (r *Results) Claims() []Claim {
	var claims []Claim
	add := func(name, paper, measured string, holds bool) {
		claims = append(claims, Claim{Name: name, Paper: paper, Measured: measured, Holds: holds})
	}

	if r.Main != nil {
		add("total detections (main)", "8/105",
			fmt.Sprintf("%d/%d", r.Main.TotalDetected, r.Main.TotalURLs),
			r.Main.TotalDetected == 8 && r.Main.TotalURLs == 105)

		gsbAlert := cellSum(r.Main, engines.GSB, evasion.AlertBox)
		add("GSB detects all alert-box URLs", "6/6", gsbAlert.String(), gsbAlert.Detected == 6 && gsbAlert.Total == 6)

		ncSession := cellSum(r.Main, engines.NetCraft, evasion.SessionBased)
		add("NetCraft detects 2 of 6 session URLs", "2/6", ncSession.String(), ncSession.Detected == 2 && ncSession.Total == 6)

		recaptcha := experiment.Cell{}
		for _, key := range engines.MainExperimentKeys() {
			c := cellSum(r.Main, key, evasion.Recaptcha)
			recaptcha.Detected += c.Detected
			recaptcha.Total += c.Total
		}
		add("no engine detects any reCAPTCHA URL", "0/35", recaptcha.String(), recaptcha.Detected == 0)

		avg := experiment.AverageDuration(r.Main.GSBAlertBoxTimes)
		add("GSB alert-box average time-to-blacklist", "132 min",
			fmt.Sprintf("%.0f min", avg.Minutes()), avg > 100*time.Minute && avg < 170*time.Minute)

		var nc []string
		ok := len(r.Main.NetCraftSessionTimes) == 2
		for _, d := range r.Main.NetCraftSessionTimes {
			nc = append(nc, fmt.Sprintf("%.0f", d.Minutes()))
			if d < 2*time.Minute || d > 20*time.Minute {
				ok = false
			}
		}
		add("NetCraft session times (minutes)", "6 and 9", strings.Join(nc, " and "), ok)

		add("drop-catch funnel selects 50 reputed domains", "…-> 50",
			r.Main.Funnel.String(), r.Main.Funnel.Selected == 50)
	}

	if r.Table1 != nil {
		byKey := map[string]experiment.Table1Row{}
		for _, row := range r.Table1 {
			byKey[row.Engine] = row
		}
		add("only GSB and NetCraft detect the scratch-built Gmail kit", "G only at GSB, NetCraft",
			fmt.Sprintf("GSB=%q NetCraft=%q APWG=%q", byKey[engines.GSB].BlacklistedTargets,
				byKey[engines.NetCraft].BlacklistedTargets, byKey[engines.APWG].BlacklistedTargets),
			strings.Contains(byKey[engines.GSB].BlacklistedTargets, "G") &&
				strings.Contains(byKey[engines.NetCraft].BlacklistedTargets, "G") &&
				!strings.Contains(byKey[engines.APWG].BlacklistedTargets, "G"))
		add("YSB detects nothing", "-", byKey[engines.YSB].BlacklistedTargets,
			byKey[engines.YSB].BlacklistedTargets == "-")
		add("OpenPhish generates the largest crawl volume", "81,967 requests",
			fmt.Sprintf("%d requests", byKey[engines.OpenPhish].Requests), maxRequests(r.Table1) == engines.OpenPhish)
	}

	if r.Table3 != nil {
		all0 := len(r.Table3) == 6
		for _, row := range r.Table3 {
			if row.Detected != 0 || row.Total != 9 {
				all0 = false
			}
		}
		add("no client-side extension detects anything", "0/9 x6", table3Summary(r.Table3), all0)
	}
	return claims
}

func cellSum(m *experiment.MainResults, engine string, tech evasion.Technique) experiment.Cell {
	out := experiment.Cell{}
	for _, brand := range []phishkit.Brand{phishkit.Facebook, phishkit.PayPal} {
		if c := m.Cells[engine][brand][tech]; c != nil {
			out.Detected += c.Detected
			out.Total += c.Total
		}
	}
	return out
}

func maxRequests(rows []experiment.Table1Row) string {
	best, key := -1, ""
	for _, r := range rows {
		if r.Requests > best {
			best, key = r.Requests, r.Engine
		}
	}
	return key
}

func table3Summary(rows []experiment.Table3Row) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = fmt.Sprintf("%d/%d", r.Detected, r.Total)
	}
	return strings.Join(parts, " ")
}

// Report renders the full study: the three tables, timing statistics, the
// domain funnel, and the claims comparison.
func (r *Results) Report() string {
	var b strings.Builder
	b.WriteString("== Are You Human? — reproduction report ==\n\n")
	if r.Table1 != nil {
		b.WriteString("Table 1 — preliminary test (naked kits, 24h)\n")
		b.WriteString(experiment.RenderTable1(r.Table1))
		b.WriteString("\n")
	}
	if r.Main != nil {
		b.WriteString("Table 2 — main experiment (105 protected URLs, 2 weeks)\n")
		b.WriteString(experiment.RenderTable2(r.Main))
		fmt.Fprintf(&b, "drop-catch funnel: %s\n", r.Main.Funnel)
		fmt.Fprintf(&b, "GSB alert-box avg: %.0f min; NetCraft session times:",
			experiment.AverageDuration(r.Main.GSBAlertBoxTimes).Minutes())
		for _, d := range r.Main.NetCraftSessionTimes {
			fmt.Fprintf(&b, " %.0fmin", d.Minutes())
		}
		b.WriteString("\n")
		for _, key := range engines.MainExperimentKeys() {
			if ds := r.Main.TimesToList[key]; len(ds) > 0 {
				fmt.Fprintf(&b, "time-to-blacklist %-12s %s\n", key+":", experiment.Stats(ds))
			}
		}
		b.WriteString("\n")
	}
	if r.Table3 != nil {
		b.WriteString("Table 3 — client-side extensions (9 URLs, 3 visits each)\n")
		b.WriteString(experiment.RenderTable3(r.Table3))
		b.WriteString("\n")
	}
	claims := r.Claims()
	if len(claims) > 0 {
		b.WriteString("Claims (paper vs measured)\n")
		for _, c := range claims {
			mark := "OK  "
			if !c.Holds {
				mark = "DIFF"
			}
			fmt.Fprintf(&b, "  [%s] %-55s paper: %-12s measured: %s\n", mark, c.Name, c.Paper, c.Measured)
		}
	}
	return b.String()
}

// FunnelAtPaperScale runs the drop-catch pipeline at the paper's full
// 1M-domain scale over the compact synthetic world and returns the funnel
// (1,000,000 -> 770 -> 251 -> 244 -> 244 -> 50).
func FunnelAtPaperScale() (dropcatch.Funnel, error) {
	w, err := dropcatch.NewWorld(dropcatch.PaperConfig())
	if err != nil {
		return dropcatch.Funnel{}, err
	}
	_, funnel := dropcatch.Run(w.Top, w.Services(), dropcatch.PaperConfig().Selected)
	return funnel, nil
}
