package browser

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"areyouhuman/internal/simnet"
)

func serve(html string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, html)
	})
}

func newNet() *simnet.Internet { return simnet.New(nil) }

func TestOpenPlainPage(t *testing.T) {
	t.Parallel()
	net := newNet()
	net.Register("plain.example", serve(`<html><head><title>Hi</title></head>
<body><a href="/next.php">next</a><form action="/f" method="post"><input name="q"></form></body></html>`))
	b := New(net, Config{})
	p, err := b.Open("http://plain.example/")
	if err != nil {
		t.Fatal(err)
	}
	if p.Title() != "Hi" {
		t.Fatalf("Title = %q", p.Title())
	}
	if links := p.Links(); len(links) != 1 || links[0] != "/next.php" {
		t.Fatalf("Links = %v", links)
	}
	if forms := p.Forms(); len(forms) != 1 || forms[0].Method != "POST" {
		t.Fatalf("Forms = %+v", forms)
	}
}

func TestScriptsMutateDOM(t *testing.T) {
	t.Parallel()
	net := newNet()
	net.Register("dyn.example", serve(`<html><head><title>before</title></head><body>
<script>
document.title = 'after';
var form = document.createElement('form');
form.setAttribute('method', 'post');
var input = document.createElement('input');
input.setAttribute('name', 'gresponse');
input.setAttribute('value', 'tok');
form.appendChild(input);
document.body.appendChild(form);
</script></body></html>`))
	b := New(net, Config{ExecuteScripts: true})
	p, err := b.Open("http://dyn.example/")
	if err != nil {
		t.Fatal(err)
	}
	if p.ScriptErr != nil {
		t.Fatalf("script error: %v", p.ScriptErr)
	}
	if p.Title() != "after" {
		t.Fatalf("Title = %q, want after", p.Title())
	}
	forms := p.Forms()
	if len(forms) != 1 || forms[0].Fields["gresponse"] != "tok" {
		t.Fatalf("dynamic form not visible: %+v", forms)
	}
}

func TestScriptsSkippedWhenDisabled(t *testing.T) {
	t.Parallel()
	net := newNet()
	net.Register("dyn.example", serve(`<html><head><title>before</title></head>
<body><script>document.title = 'after';</script></body></html>`))
	b := New(net, Config{ExecuteScripts: false})
	p, err := b.Open("http://dyn.example/")
	if err != nil {
		t.Fatal(err)
	}
	if p.Title() != "before" {
		t.Fatalf("Title = %q, want before (no script execution)", p.Title())
	}
}

const confirmPage = `<html><body>
<div id="state">benign</div>
<script>
function gate() {
  var ok = confirm('Please sign in to continue');
  var el = document.getElementById('state');
  if (ok) { el.innerText = 'confirmed'; } else { el.innerText = 'dismissed'; }
}
gate();
</script></body></html>`

func TestConfirmPolicies(t *testing.T) {
	t.Parallel()
	cases := []struct {
		policy  AlertPolicy
		want    string
		wantErr bool
	}{
		{AlertConfirm, "confirmed", false},
		{AlertDismiss, "dismissed", false},
		{AlertIgnore, "benign", true},
	}
	for _, c := range cases {
		net := newNet()
		net.Register("gate.example", serve(confirmPage))
		b := New(net, Config{ExecuteScripts: true, AlertPolicy: c.policy})
		p, err := b.Open("http://gate.example/")
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.TrimSpace(p.Text()); got != c.want {
			t.Errorf("policy %v: state = %q, want %q", c.policy, got, c.want)
		}
		if c.wantErr != (p.ScriptErr != nil) {
			t.Errorf("policy %v: ScriptErr = %v, wantErr=%v", c.policy, p.ScriptErr, c.wantErr)
		}
		if c.wantErr && !errors.Is(p.ScriptErr, ErrDialogUnhandled) {
			t.Errorf("policy %v: ScriptErr = %v, want ErrDialogUnhandled", c.policy, p.ScriptErr)
		}
		if len(p.Dialogs) != 1 || !strings.Contains(p.Dialogs[0], "Please sign in") {
			t.Errorf("policy %v: Dialogs = %v", c.policy, p.Dialogs)
		}
	}
}

func TestWindowOnloadFires(t *testing.T) {
	t.Parallel()
	net := newNet()
	net.Register("load.example", serve(`<html><body><div id="x">no</div>
<script>
window.onload = function() { document.getElementById('x').innerText = 'loaded'; };
</script></body></html>`))
	b := New(net, Config{ExecuteScripts: true})
	p, err := b.Open("http://load.example/")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(p.Text()); got != "loaded" {
		t.Fatalf("onload did not fire: text = %q", got)
	}
}

func TestTimerBudget(t *testing.T) {
	t.Parallel()
	page := `<html><body><div id="x">pending</div>
<script>
setTimeout(function() { document.getElementById('x').innerText = 'fired'; }, 2000);
</script></body></html>`
	for _, c := range []struct {
		budget time.Duration
		want   string
	}{
		{5 * time.Second, "fired"},
		{time.Second, "pending"},
	} {
		net := newNet()
		net.Register("t.example", serve(page))
		b := New(net, Config{ExecuteScripts: true, TimerBudget: c.budget})
		p, err := b.Open("http://t.example/")
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.TrimSpace(p.Text()); got != c.want {
			t.Errorf("budget %v: text = %q, want %q", c.budget, got, c.want)
		}
	}
}

func TestNestedTimersRunInOrder(t *testing.T) {
	t.Parallel()
	net := newNet()
	net.Register("t.example", serve(`<html><body><div id="x"></div>
<script>
var el = document.getElementById('x');
setTimeout(function() {
  el.innerText = el.innerText + 'a';
  setTimeout(function() { el.innerText = el.innerText + 'b'; }, 10);
}, 10);
setTimeout(function() { el.innerText = el.innerText + 'c'; }, 20);
</script></body></html>`))
	b := New(net, Config{ExecuteScripts: true, TimerBudget: time.Second})
	p, err := b.Open("http://t.example/")
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(p.Text())
	if got != "abc" && got != "acb" { // both are valid schedules for equal-delay ties
		t.Fatalf("timer order = %q", got)
	}
}

// postEcho serves a page whose POST handler reveals a secret.
func postEcho() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if r.Method == "POST" {
			r.ParseForm()
			fmt.Fprintf(w, `<html><body><div id="payload">got:%s</div></body></html>`, r.PostFormValue("get_data"))
			return
		}
		io.WriteString(w, `<html><body>
<script>
var f = document.createElement('form');
f.setAttribute('method', 'post');
var i = document.createElement('input');
i.setAttribute('name', 'get_data');
i.setAttribute('value', 'getData');
f.appendChild(i);
document.body.appendChild(f);
f.submit();
</script></body></html>`)
	})
}

func TestScriptFormSubmitNavigates(t *testing.T) {
	t.Parallel()
	net := newNet()
	net.Register("submit.example", postEcho())
	b := New(net, Config{ExecuteScripts: true})
	p, err := b.Open("http://submit.example/login.php")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Text(), "got:getData") {
		t.Fatalf("script submit did not reach POST handler: %q", p.Text())
	}
	if p.URL.Path != "/login.php" {
		t.Fatalf("post-back URL = %s, want same path", p.URL)
	}
}

func TestManualSubmitWithOverrides(t *testing.T) {
	t.Parallel()
	net := newNet()
	net.Register("form.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if r.Method == "POST" && r.URL.Path == "/session.php" {
			r.ParseForm()
			fmt.Fprintf(w, `<html><body>user=%s</body></html>`, r.PostFormValue("username"))
			return
		}
		io.WriteString(w, `<html><body><form action="/session.php" method="post">
<input name="username" value=""><input name="page" value="1"></form></body></html>`)
	}))
	b := New(net, Config{})
	p, err := b.Open("http://form.example/")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p.Submit(p.Forms()[0], map[string]string{"username": "probe@example.com"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p2.Text(), "user=probe@example.com") {
		t.Fatalf("Submit result = %q", p2.Text())
	}
}

func TestLocationAssignmentNavigates(t *testing.T) {
	t.Parallel()
	net := newNet()
	net.Register("a.example", serve(`<html><body><script>window.location.href = 'http://b.example/dest';</script></body></html>`))
	net.Register("b.example", serve(`<html><head><title>dest</title></head><body>arrived</body></html>`))
	b := New(net, Config{ExecuteScripts: true})
	p, err := b.Open("http://a.example/")
	if err != nil {
		t.Fatal(err)
	}
	if p.Title() != "dest" || p.URL.Host != "b.example" {
		t.Fatalf("location nav ended at %s (%q)", p.URL, p.Title())
	}
}

func TestCookiesPersistAcrossRequests(t *testing.T) {
	t.Parallel()
	net := newNet()
	net.Register("sess.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if c, err := r.Cookie("sid"); err == nil {
			fmt.Fprintf(w, `<html><body>welcome back %s</body></html>`, c.Value)
			return
		}
		http.SetCookie(w, &http.Cookie{Name: "sid", Value: "s123", Path: "/"})
		io.WriteString(w, `<html><body>first visit</body></html>`)
	}))
	b := New(net, Config{})
	p1, err := b.Open("http://sess.example/")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p1.Text(), "first visit") {
		t.Fatalf("first visit = %q", p1.Text())
	}
	p2, err := b.Open("http://sess.example/")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p2.Text(), "welcome back s123") {
		t.Fatalf("second visit = %q (cookies not persisted)", p2.Text())
	}
}

// captchaSite builds a two-state page: CAPTCHA widget on GET, payload on a
// POST carrying the token issued by the challenge endpoint.
func captchaSite(t *testing.T, net *simnet.Internet) {
	t.Helper()
	net.Register("captcha-svc.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/issue" {
			io.WriteString(w, "tok-"+r.URL.Query().Get("sitekey"))
			return
		}
		http.NotFound(w, r)
	}))
	net.Register("phish.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if r.Method == "POST" {
			r.ParseForm()
			if r.PostFormValue("gresponse") == "tok-site1" {
				io.WriteString(w, `<html><body><div id="payload">PHISHING PAYLOAD</div></body></html>`)
				return
			}
		}
		io.WriteString(w, `<html><body>
<div class="g-recaptcha" data-sitekey="site1" data-callback="capback" data-endpoint="http://captcha-svc.example/issue"></div>
<script>
function capback(g_response) {
  var f = document.createElement('form');
  f.setAttribute('method', 'post');
  var i = document.createElement('input');
  i.setAttribute('name', 'gresponse');
  i.setAttribute('value', g_response);
  f.appendChild(i);
  document.body.appendChild(f);
  f.submit();
}
</script></body></html>`)
	}))
}

func TestHumanSolvesCaptchaBotDoesNot(t *testing.T) {
	t.Parallel()
	net := newNet()
	captchaSite(t, net)

	human := New(net, Config{ExecuteScripts: true, AlertPolicy: AlertConfirm, CanSolveCAPTCHA: true, TimerBudget: time.Hour})
	p, err := human.Open("http://phish.example/login.php")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Text(), "PHISHING PAYLOAD") {
		t.Fatalf("human should reach payload, got %q", p.Text())
	}
	if p.URL.Path != "/login.php" {
		t.Fatalf("CAPTCHA flow changed the URL to %s; the paper's technique keeps it identical", p.URL)
	}

	bot := New(net, Config{ExecuteScripts: true, AlertPolicy: AlertConfirm, CanSolveCAPTCHA: false})
	pb, err := bot.Open("http://phish.example/login.php")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(pb.Text(), "PHISHING PAYLOAD") {
		t.Fatal("bot must not reach the CAPTCHA-gated payload")
	}
}

func TestNavigationLimit(t *testing.T) {
	t.Parallel()
	net := newNet()
	net.Register("loop.example", serve(`<html><body><script>window.location.href = '/again';</script></body></html>`))
	b := New(net, Config{ExecuteScripts: true, MaxNavigations: 3})
	if _, err := b.Open("http://loop.example/"); err == nil {
		t.Fatal("infinite script navigation should hit the limit")
	}
}

func TestTraceRecordsJourney(t *testing.T) {
	t.Parallel()
	net := newNet()
	net.Register("gate.example", serve(confirmPage))
	b := New(net, Config{ExecuteScripts: true, AlertPolicy: AlertConfirm, TraceEvents: true})
	if _, err := b.Open("http://gate.example/"); err != nil {
		t.Fatal(err)
	}
	var kinds []EventKind
	for _, e := range b.Trace() {
		kinds = append(kinds, e.Kind)
	}
	wantFetch, wantConfirm := false, false
	for _, k := range kinds {
		if k == EventFetch {
			wantFetch = true
		}
		if k == EventConfirm {
			wantConfirm = true
		}
	}
	if !wantFetch || !wantConfirm {
		t.Fatalf("trace kinds = %v, want fetch and confirm", kinds)
	}
}

func TestFollowRelativeLink(t *testing.T) {
	t.Parallel()
	net := newNet()
	net.Register("site.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		switch r.URL.Path {
		case "/":
			io.WriteString(w, `<html><body><a href="dir/page.php">go</a></body></html>`)
		case "/dir/page.php":
			io.WriteString(w, `<html><head><title>inner</title></head><body>inner</body></html>`)
		default:
			http.NotFound(w, r)
		}
	}))
	b := New(net, Config{})
	p, err := b.Open("http://site.example/")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p.Follow(p.Links()[0])
	if err != nil {
		t.Fatal(err)
	}
	if p2.Title() != "inner" {
		t.Fatalf("Follow landed on %q", p2.Title())
	}
}

func TestAlertPolicyString(t *testing.T) {
	t.Parallel()
	if AlertIgnore.String() != "ignore" || AlertConfirm.String() != "confirm" || AlertDismiss.String() != "dismiss" {
		t.Fatal("AlertPolicy strings wrong")
	}
	if !strings.Contains(AlertPolicy(9).String(), "9") {
		t.Fatal("unknown policy string")
	}
}
