// Package browser provides browser emulation on top of the simulated
// network, the mini DOM, and the scriptlet interpreter.
//
// Anti-phishing crawlers differ in how much of a browser they implement —
// whether they execute JavaScript, whether they can interact with modal
// alert/confirm dialogs, how long they wait for timers, whether they submit
// forms. Those capability differences are exactly what the paper measures,
// so they are first-class configuration here (Config). A human visitor is
// the same machinery with the most permissive settings plus the ability to
// solve CAPTCHAs.
package browser

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/url"
	"strings"
	"time"

	"areyouhuman/internal/htmlmini"
	"areyouhuman/internal/scriptlet"
	"areyouhuman/internal/simnet"
)

// AlertPolicy controls how the browser answers modal alert/confirm dialogs.
type AlertPolicy int

// Alert policies.
const (
	// AlertIgnore cannot interact with dialogs: script execution aborts at
	// the first alert/confirm, like an emulator with no dialog support. The
	// paper's log analysis shows most engines never got past the alert box.
	AlertIgnore AlertPolicy = iota
	// AlertConfirm answers dialogs affirmatively (GSB's observed behaviour).
	AlertConfirm
	// AlertDismiss cancels dialogs.
	AlertDismiss
)

func (p AlertPolicy) String() string {
	switch p {
	case AlertIgnore:
		return "ignore"
	case AlertConfirm:
		return "confirm"
	case AlertDismiss:
		return "dismiss"
	default:
		return fmt.Sprintf("AlertPolicy(%d)", int(p))
	}
}

// ErrDialogUnhandled aborts script execution under AlertIgnore.
var ErrDialogUnhandled = errors.New("browser: modal dialog not handled")

// Config is a browser capability profile.
type Config struct {
	UserAgent      string
	SourceIP       string
	ExecuteScripts bool
	AlertPolicy    AlertPolicy
	// TimerBudget bounds which setTimeout callbacks fire during Settle: only
	// timers with delays at or below the budget run. Crawlers wait seconds;
	// humans effectively wait forever.
	TimerBudget time.Duration
	// MaxNavigations bounds script- or redirect-driven navigation chains.
	MaxNavigations int
	// Timeout bounds each fetch; it only bites under fault injection, when
	// added latency beyond it fails the request (see simnet.Transport).
	Timeout time.Duration
	// CanSolveCAPTCHA marks human visitors; the CAPTCHA widget binding
	// consults it. No anti-phishing engine sets it.
	CanSolveCAPTCHA bool
	// TraceEvents records a journey trace readable via Trace. Off by
	// default: formatting the detail string costs an allocation per fetch,
	// dialog, and submission, and nothing on the visit hot path reads it.
	TraceEvents bool
	// DOMCache, when set, memoises HTML parsing by response body content.
	// Every page is served a fresh deep clone, so script mutation cannot leak
	// between visits; output is bit-identical with or without the cache.
	DOMCache *htmlmini.ParseCache
	// ScriptCache, when set, memoises script compilation by source text. The
	// AST is immutable under evaluation, so sharing compiled programs across
	// visits is semantics-preserving.
	ScriptCache *scriptlet.ProgramCache
}

// EventKind labels trace events.
type EventKind string

// Trace event kinds.
const (
	EventFetch   EventKind = "fetch"
	EventAlert   EventKind = "alert"
	EventConfirm EventKind = "confirm"
	EventSubmit  EventKind = "submit"
	EventScript  EventKind = "script-error"
	EventSolve   EventKind = "captcha-solve"
)

// Event is one trace entry.
type Event struct {
	Kind   EventKind
	Detail string
}

// Browser is a stateful emulated browser (cookies persist across pages).
type Browser struct {
	cfg       Config
	transport *simnet.Transport
	jar       *cookiejar.Jar
	trace     []Event
	// uaHeader is the User-Agent header value, allocated once and shared by
	// every request this browser sends (nothing downstream mutates it).
	uaHeader []string
}

// formContentType is the shared Content-Type value for form posts.
var formContentType = []string{"application/x-www-form-urlencoded"}

// New returns a browser riding the given virtual internet.
func New(net *simnet.Internet, cfg Config) *Browser {
	if cfg.MaxNavigations <= 0 {
		cfg.MaxNavigations = 8
	}
	if cfg.UserAgent == "" {
		cfg.UserAgent = "Mozilla/5.0 (X11; Linux x86_64) SimBrowser/1.0"
	}
	if cfg.SourceIP == "" {
		cfg.SourceIP = "192.0.2.50"
	}
	jar, _ := cookiejar.New(nil)
	return &Browser{
		cfg:       cfg,
		uaHeader:  []string{cfg.UserAgent},
		transport: &simnet.Transport{Net: net, SourceIP: cfg.SourceIP, Timeout: cfg.Timeout},
		jar:       jar,
	}
}

// do sends req over the virtual network, attaching jar cookies and following
// redirects the way http.Client would (POST rewrites to GET on 301/302/303,
// Referer carried across hops, at most 10 hops). Driving the transport
// directly avoids http.Client's defensive per-request header clone, which was
// a measurable slice of visit allocations.
//
//phishlint:hotpath
func (b *Browser) do(req *http.Request) (*http.Response, error) {
	for hop := 0; ; hop++ {
		if cookies := b.jar.Cookies(req.URL); len(cookies) > 0 {
			for _, c := range cookies {
				req.AddCookie(c)
			}
		}
		resp, err := b.transport.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		if rc := resp.Cookies(); len(rc) > 0 {
			b.jar.SetCookies(req.URL, rc)
		}
		switch resp.StatusCode {
		case http.StatusMovedPermanently, http.StatusFound, http.StatusSeeOther,
			http.StatusTemporaryRedirect, http.StatusPermanentRedirect:
		default:
			return resp, nil
		}
		loc := resp.Header.Get("Location")
		if loc == "" {
			return resp, nil
		}
		if hop >= 9 {
			resp.Body.Close()
			return nil, errors.New("browser: too many redirects")
		}
		u, perr := req.URL.Parse(loc)
		resp.Body.Close()
		if perr != nil {
			return nil, fmt.Errorf("browser: bad redirect location %q: %w", loc, perr)
		}
		method := req.Method
		if resp.StatusCode != http.StatusTemporaryRedirect && resp.StatusCode != http.StatusPermanentRedirect {
			method = "GET"
		}
		next, nerr := http.NewRequest(method, u.String(), nil)
		if nerr != nil {
			return nil, nerr
		}
		next.Header["User-Agent"] = b.uaHeader
		next.Header.Set("Referer", req.URL.String())
		req = next
	}
}

// Config returns the browser's capability profile.
func (b *Browser) Config() Config { return b.cfg }

// Trace returns a copy of the event trace so far.
func (b *Browser) Trace() []Event {
	out := make([]Event, len(b.trace))
	copy(out, b.trace)
	return out
}

// tracing gates tracef calls: hot paths check it first so disabled runs
// don't even build the variadic argument slice.
func (b *Browser) tracing() bool { return b.cfg.TraceEvents }

func (b *Browser) tracef(kind EventKind, format string, args ...any) {
	if !b.cfg.TraceEvents {
		return
	}
	b.trace = append(b.trace, Event{Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// readBody drains a response body. When the transport declares the length
// (the simulated network always does), the buffer is sized exactly once
// instead of grown through io.ReadAll's doubling.
//
//phishlint:hotpath
func readBody(resp *http.Response) ([]byte, error) {
	if n := resp.ContentLength; n >= 0 {
		body := make([]byte, n) //phishlint:allow allocfree exact-size buffer sized once from ContentLength; the body must be materialised
		if _, err := io.ReadFull(resp.Body, body); err != nil {
			return nil, err
		}
		return body, nil
	}
	return io.ReadAll(resp.Body)
}

// Page is one rendered document.
type Page struct {
	URL     *url.URL
	Status  int
	RawHTML string
	DOM     *htmlmini.Node
	// Dialogs lists alert/confirm messages the page showed.
	Dialogs []string
	// ScriptErr is the first script execution failure, if any (including
	// ErrDialogUnhandled under AlertIgnore).
	ScriptErr error

	browser *Browser
	pending *navigation
}

type navigation struct {
	method string
	action *url.URL
	fields url.Values
}

// Open fetches target, executes its scripts per the browser's capability
// profile, follows any script-initiated navigation, and returns the final
// settled page.
func (b *Browser) Open(target string) (*Page, error) {
	return b.navigate("GET", target, nil, nil)
}

// navigate performs one fetch plus the script-driven navigation loop.
func (b *Browser) navigate(method, target string, form url.Values, referer *url.URL) (*Page, error) {
	for hop := 0; hop < b.cfg.MaxNavigations; hop++ {
		page, err := b.fetch(method, target, form, referer)
		if err != nil {
			return nil, err
		}
		if page.pending == nil {
			return page, nil
		}
		nav := page.pending
		page.pending = nil
		method = nav.method
		target = nav.action.String()
		form = nav.fields
		referer = page.URL
	}
	return nil, fmt.Errorf("browser: navigation limit (%d) exceeded at %s", b.cfg.MaxNavigations, target)
}

func (b *Browser) fetch(method, target string, form url.Values, referer *url.URL) (*Page, error) {
	var req *http.Request
	var err error
	if method == "POST" {
		req, err = http.NewRequest("POST", target, strings.NewReader(form.Encode()))
		if err == nil {
			req.Header["Content-Type"] = formContentType
		}
	} else {
		u := target
		if len(form) > 0 {
			sep := "?"
			if strings.Contains(target, "?") {
				sep = "&"
			}
			u = target + sep + form.Encode()
		}
		req, err = http.NewRequest("GET", u, nil)
	}
	if err != nil {
		return nil, fmt.Errorf("browser: building request for %s: %w", target, err)
	}
	req.Header["User-Agent"] = b.uaHeader
	if referer != nil {
		req.Header.Set("Referer", referer.String())
	}
	resp, err := b.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := readBody(resp)
	if err != nil {
		return nil, fmt.Errorf("browser: reading %s: %w", target, err)
	}
	if b.tracing() {
		b.tracef(EventFetch, "%s %s -> %d", method, req.URL, resp.StatusCode)
	}

	finalURL := resp.Request.URL // after redirects
	raw := string(body)
	page := &Page{
		URL:     finalURL,
		Status:  resp.StatusCode,
		RawHTML: raw,
		DOM:     b.cfg.DOMCache.Get(raw), // nil cache degrades to Parse
		browser: b,
	}
	if b.cfg.ExecuteScripts && strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		page.runScripts()
	}
	return page, nil
}

// Forms returns the page's forms as currently present in the DOM (including
// script-created ones).
func (p *Page) Forms() []htmlmini.Form { return p.DOM.Forms() }

// Links returns the page's anchor targets.
func (p *Page) Links() []string { return p.DOM.Links() }

// Text returns the visible text of the settled page.
func (p *Page) Text() string { return p.DOM.Text() }

// Title returns the document title.
func (p *Page) Title() string { return p.DOM.Title() }

// Resolve resolves href against the page URL.
func (p *Page) Resolve(href string) (*url.URL, error) {
	rel, err := url.Parse(href)
	if err != nil {
		return nil, fmt.Errorf("browser: bad href %q: %w", href, err)
	}
	return p.URL.ResolveReference(rel), nil
}

// Follow fetches the page behind href.
func (p *Page) Follow(href string) (*Page, error) {
	u, err := p.Resolve(href)
	if err != nil {
		return nil, err
	}
	return p.browser.navigate("GET", u.String(), nil, p.URL)
}

// Submit submits the given form with optional field overrides, returning the
// resulting page. An empty form action posts back to the page's own URL, as
// browsers do.
func (p *Page) Submit(form htmlmini.Form, overrides map[string]string) (*Page, error) {
	fields := url.Values{}
	for k, v := range form.Fields {
		fields.Set(k, v)
	}
	for k, v := range overrides {
		fields.Set(k, v)
	}
	action := p.URL
	if form.Action != "" {
		var err error
		action, err = p.Resolve(form.Action)
		if err != nil {
			return nil, err
		}
	}
	if p.browser.tracing() {
		p.browser.tracef(EventSubmit, "%s %s (%d fields)", form.Method, action, len(fields))
	}
	return p.browser.navigate(form.Method, action.String(), fields, p.URL)
}
