package browser

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"areyouhuman/internal/htmlmini"
	"areyouhuman/internal/scriptlet"
)

// timer is a pending setTimeout callback.
type timer struct {
	delay time.Duration
	fn    scriptlet.Value
	seq   int
}

// scriptHost wires one page's DOM into a scriptlet interpreter.
type scriptHost struct {
	page     *Page
	interp   *scriptlet.Interp
	window   *scriptlet.Object
	timers   []timer
	seq      int
	elements map[*htmlmini.Node]*scriptlet.Object
	nodes    map[*scriptlet.Object]*htmlmini.Node

	// Element methods are shared across all wrappers (the receiver arrives
	// as `this`), so creating a wrapper costs no per-method closures.
	elemGetAttr scriptlet.NativeFunc
	elemSetAttr scriptlet.NativeFunc
	elemAppend  scriptlet.NativeFunc
	elemSubmit  scriptlet.NativeFunc
}

// runScripts executes the page's inline scripts, the onload handler, and
// eligible timers, then (for CAPTCHA-solving visitors) works the CAPTCHA
// widget. The first script failure is recorded and halts further execution,
// like an uncaught exception would.
func (p *Page) runScripts() {
	// The script list is extracted before anything runs, so the cached copy
	// (from the pristine template) is identical to what this clone holds.
	scripts := p.browser.cfg.DOMCache.Scripts(p.RawHTML, p.DOM)
	if len(scripts) == 0 && !p.browser.cfg.CanSolveCAPTCHA {
		// Nothing can run: window.onload and timers only exist once a script
		// sets them, so a script-less page needs no interpreter or DOM
		// bindings at all — a large share of visit allocations for the
		// payload pages, which are plain HTML forms.
		return
	}
	h := &scriptHost{
		page:     p,
		interp:   scriptlet.NewInterp(),
		elements: make(map[*htmlmini.Node]*scriptlet.Object),
		nodes:    make(map[*scriptlet.Object]*htmlmini.Node),
	}
	h.initElementMethods()
	h.installGlobals()

	for _, src := range scripts {
		prog, err := p.browser.cfg.ScriptCache.Get(src) // nil cache compiles fresh
		if err == nil {
			err = h.interp.RunProgram(prog)
		}
		if err != nil {
			p.fail(err)
			break
		}
	}
	if p.ScriptErr == nil {
		h.fireOnload()
	}
	if p.ScriptErr == nil {
		h.settleTimers()
	}
	if p.ScriptErr == nil && p.browser.cfg.CanSolveCAPTCHA {
		h.solveCaptcha()
		if p.ScriptErr == nil {
			h.settleTimers()
		}
	}
}

func (p *Page) fail(err error) {
	if p.ScriptErr == nil {
		p.ScriptErr = err
		p.browser.tracef(EventScript, "%s: %v", p.URL, err)
	}
}

func (h *scriptHost) installGlobals() {
	g := h.interp.Globals
	doc := h.documentObject()
	h.window = h.windowObject(doc)
	g.Define("document", doc)
	g.Define("window", h.window)
	g.Define("location", h.window.Get("location"))
	g.Define("alert", scriptlet.NativeFunc(h.alertFn))
	g.Define("confirm", scriptlet.NativeFunc(h.confirmFn))
	g.Define("setTimeout", scriptlet.NativeFunc(h.setTimeoutFn))
	g.Define("console", h.consoleObject())
}

func (h *scriptHost) alertFn(_ scriptlet.Value, args []scriptlet.Value) (scriptlet.Value, error) {
	msg := ""
	if len(args) > 0 {
		msg = scriptlet.ToString(args[0])
	}
	h.page.Dialogs = append(h.page.Dialogs, msg)
	if h.page.browser.tracing() {
		h.page.browser.tracef(EventAlert, "%q", msg)
	}
	if h.page.browser.cfg.AlertPolicy == AlertIgnore {
		return nil, ErrDialogUnhandled
	}
	return nil, nil
}

func (h *scriptHost) confirmFn(_ scriptlet.Value, args []scriptlet.Value) (scriptlet.Value, error) {
	msg := ""
	if len(args) > 0 {
		msg = scriptlet.ToString(args[0])
	}
	h.page.Dialogs = append(h.page.Dialogs, msg)
	tracing := h.page.browser.tracing()
	switch h.page.browser.cfg.AlertPolicy {
	case AlertConfirm:
		if tracing {
			h.page.browser.tracef(EventConfirm, "%q -> true", msg)
		}
		return true, nil
	case AlertDismiss:
		if tracing {
			h.page.browser.tracef(EventConfirm, "%q -> false", msg)
		}
		return false, nil
	default:
		if tracing {
			h.page.browser.tracef(EventConfirm, "%q -> unhandled", msg)
		}
		return nil, ErrDialogUnhandled
	}
}

func (h *scriptHost) setTimeoutFn(_ scriptlet.Value, args []scriptlet.Value) (scriptlet.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	delayMS := 0.0
	if len(args) > 1 {
		delayMS, _ = scriptlet.ToNumber(args[1])
	}
	h.seq++
	h.timers = append(h.timers, timer{
		delay: time.Duration(delayMS) * time.Millisecond,
		fn:    args[0],
		seq:   h.seq,
	})
	return float64(h.seq), nil
}

// sharedConsole is the console binding, shared by every page: console.log is
// a stateless no-op, and the write-suppressing Setter keeps scripts from
// storing state on it (which would leak between pages through the sharing).
var sharedConsole = func() *scriptlet.Object {
	console := scriptlet.NewObject()
	console.Set("log", scriptlet.NativeFunc(func(_ scriptlet.Value, _ []scriptlet.Value) (scriptlet.Value, error) {
		return nil, nil
	}))
	console.Setter = func(string, scriptlet.Value) bool { return true }
	return console
}()

func (h *scriptHost) consoleObject() *scriptlet.Object {
	return sharedConsole
}

// fireOnload calls window.onload if a script assigned one.
func (h *scriptHost) fireOnload() {
	onload := h.window.Get("onload")
	if onload == nil {
		return
	}
	if _, err := h.interp.CallValue(onload, h.window, nil); err != nil {
		h.page.fail(err)
	}
}

// settleTimers runs queued timers whose delay fits the browser's timer
// budget, in delay order, allowing timers to queue more timers. A navigation
// request stops the loop (the page is being left).
func (h *scriptHost) settleTimers() {
	const maxRounds = 64
	for round := 0; round < maxRounds; round++ {
		if h.page.pending != nil || len(h.timers) == 0 {
			return
		}
		sort.Slice(h.timers, func(i, j int) bool {
			if h.timers[i].delay == h.timers[j].delay {
				return h.timers[i].seq < h.timers[j].seq
			}
			return h.timers[i].delay < h.timers[j].delay
		})
		t := h.timers[0]
		h.timers = h.timers[1:]
		if t.delay > h.page.browser.cfg.TimerBudget {
			// This and all later timers exceed the budget: the visitor
			// leaves before they fire.
			h.timers = nil
			return
		}
		if _, err := h.interp.CallValue(t.fn, nil, nil); err != nil {
			h.page.fail(err)
			return
		}
	}
}

// windowObject builds the window binding with a live location object.
func (h *scriptHost) windowObject(doc *scriptlet.Object) *scriptlet.Object {
	win := scriptlet.NewObject()
	win.Class = "Window"
	loc := scriptlet.NewObject()
	loc.Class = "Location"
	loc.Set("href", h.page.URL.String())
	loc.Setter = func(key string, v scriptlet.Value) bool {
		if key == "href" {
			h.requestNavigation("GET", scriptlet.ToString(v), nil)
		}
		loc.Props[key] = v
		return true
	}
	win.Set("location", loc)
	win.Set("document", doc)
	return win
}

func (h *scriptHost) requestNavigation(method, href string, fields url.Values) {
	u, err := h.page.Resolve(href)
	if err != nil {
		h.page.fail(err)
		return
	}
	if h.page.pending == nil {
		h.page.pending = &navigation{method: method, action: u, fields: fields}
	}
}

// documentObject builds the document binding.
func (h *scriptHost) documentObject() *scriptlet.Object {
	doc := scriptlet.NewObject()
	doc.Class = "Document"
	doc.Set("getElementById", scriptlet.NativeFunc(func(_ scriptlet.Value, args []scriptlet.Value) (scriptlet.Value, error) {
		if len(args) == 0 {
			return scriptlet.NullValue, nil
		}
		n := h.page.DOM.ByID(scriptlet.ToString(args[0]))
		if n == nil {
			return scriptlet.NullValue, nil
		}
		return h.element(n), nil
	}))
	doc.Set("createElement", scriptlet.NativeFunc(func(_ scriptlet.Value, args []scriptlet.Value) (scriptlet.Value, error) {
		if len(args) == 0 {
			return nil, fmt.Errorf("createElement: missing tag")
		}
		return h.element(htmlmini.NewElement(scriptlet.ToString(args[0]))), nil
	}))
	doc.Set("getElementsByTagName", scriptlet.NativeFunc(func(_ scriptlet.Value, args []scriptlet.Value) (scriptlet.Value, error) {
		if len(args) == 0 {
			return scriptlet.NewArray(), nil
		}
		return h.elementArray(h.page.DOM.Find(scriptlet.ToString(args[0]))), nil
	}))
	// "body" is served by the Getter below (consulted before Props), so no
	// eager wrapper is built for pages whose scripts never touch it.
	doc.Getter = func(key string) (scriptlet.Value, bool) {
		switch key {
		case "title":
			return h.page.DOM.Title(), true
		case "body":
			return h.element(h.page.DOM.Body()), true
		case "forms":
			return h.elementArray(h.page.DOM.Find("form")), true
		}
		return nil, false
	}
	doc.Setter = func(key string, v scriptlet.Value) bool {
		if key == "title" {
			t := h.page.DOM.First("title")
			if t == nil {
				// Browsers create the element on assignment.
				t = htmlmini.NewElement("title")
				parent := h.page.DOM.First("head")
				if parent == nil {
					parent = h.page.DOM.Body()
				}
				parent.AppendChild(t)
			}
			t.Children = []*htmlmini.Node{htmlmini.NewText(scriptlet.ToString(v))}
			return true
		}
		return false
	}
	return doc
}

// elementArray wraps a node list as a script array of element wrappers.
func (h *scriptHost) elementArray(nodes []*htmlmini.Node) *scriptlet.Object {
	elems := make([]scriptlet.Value, len(nodes))
	for i, n := range nodes {
		elems[i] = h.element(n)
	}
	return scriptlet.NewArray(elems...)
}

// initElementMethods builds the shared element method implementations. Each
// resolves its DOM node from the receiver, so one closure per host serves
// every element wrapper.
func (h *scriptHost) initElementMethods() {
	h.elemGetAttr = func(this scriptlet.Value, args []scriptlet.Value) (scriptlet.Value, error) {
		n := h.receiverNode(this)
		if n == nil {
			return nil, fmt.Errorf("getAttribute: not an element")
		}
		if len(args) == 0 {
			return scriptlet.NullValue, nil
		}
		if v, ok := n.Attr(scriptlet.ToString(args[0])); ok {
			return v, nil
		}
		return scriptlet.NullValue, nil
	}
	h.elemSetAttr = func(this scriptlet.Value, args []scriptlet.Value) (scriptlet.Value, error) {
		n := h.receiverNode(this)
		if n == nil {
			return nil, fmt.Errorf("setAttribute: not an element")
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("setAttribute: need name and value")
		}
		n.SetAttr(scriptlet.ToString(args[0]), scriptlet.ToString(args[1]))
		return nil, nil
	}
	h.elemAppend = func(this scriptlet.Value, args []scriptlet.Value) (scriptlet.Value, error) {
		n := h.receiverNode(this)
		if n == nil {
			return nil, fmt.Errorf("appendChild: not an element")
		}
		if len(args) == 0 {
			return nil, fmt.Errorf("appendChild: missing child")
		}
		childObj, ok := args[0].(*scriptlet.Object)
		if !ok {
			return nil, fmt.Errorf("appendChild: not an element")
		}
		child := h.nodes[childObj]
		if child == nil {
			return nil, fmt.Errorf("appendChild: foreign object")
		}
		n.AppendChild(child)
		return args[0], nil
	}
	h.elemSubmit = func(this scriptlet.Value, _ []scriptlet.Value) (scriptlet.Value, error) {
		n := h.receiverNode(this)
		if n == nil || n.Tag != "form" {
			return nil, fmt.Errorf("submit: not a form")
		}
		h.submitFormNode(n)
		return nil, nil
	}
}

// receiverNode resolves a method receiver back to its DOM node (nil for
// non-element receivers).
func (h *scriptHost) receiverNode(this scriptlet.Value) *htmlmini.Node {
	obj, ok := this.(*scriptlet.Object)
	if !ok {
		return nil
	}
	return h.nodes[obj]
}

// element returns the (cached) script wrapper for a DOM node.
func (h *scriptHost) element(n *htmlmini.Node) *scriptlet.Object {
	if el, ok := h.elements[n]; ok {
		return el
	}
	el := scriptlet.NewObject()
	el.Class = "Element"
	h.elements[n] = el
	h.nodes[el] = n

	el.Set("getAttribute", h.elemGetAttr)
	el.Set("setAttribute", h.elemSetAttr)
	el.Set("appendChild", h.elemAppend)
	el.Set("submit", h.elemSubmit)
	el.Getter = func(key string) (scriptlet.Value, bool) {
		switch key {
		case "value":
			return n.AttrOr("value", ""), true
		case "id":
			return n.AttrOr("id", ""), true
		case "name":
			return n.AttrOr("name", ""), true
		case "tagName":
			return strings.ToUpper(n.Tag), true
		case "innerHTML":
			var b strings.Builder
			for _, c := range n.Children {
				io.WriteString(&b, c.Render())
			}
			return b.String(), true
		case "innerText", "textContent":
			return n.Text(), true
		case "style":
			return h.styleObject(), true
		}
		return nil, false
	}
	el.Setter = func(key string, v scriptlet.Value) bool {
		switch key {
		case "value", "id", "name", "type", "method", "action":
			n.SetAttr(key, scriptlet.ToString(v))
			return true
		case "innerHTML":
			frag := htmlmini.Parse(scriptlet.ToString(v))
			n.Children = nil
			for _, c := range frag.Children {
				n.AppendChild(c)
			}
			return true
		case "innerText", "textContent":
			n.Children = []*htmlmini.Node{htmlmini.NewText(scriptlet.ToString(v))}
			return true
		case "onclick", "onsubmit":
			el.Props[key] = v
			return true
		}
		return false
	}
	return el
}

// styleObject is a permissive sink for style assignments.
func (h *scriptHost) styleObject() *scriptlet.Object {
	s := scriptlet.NewObject()
	s.Class = "CSSStyleDeclaration"
	s.Setter = func(key string, v scriptlet.Value) bool { s.Props[key] = v; return true }
	return s
}

// nodeFor reverse-maps a wrapper to its DOM node.
func (h *scriptHost) nodeFor(obj *scriptlet.Object) *htmlmini.Node {
	return h.nodes[obj]
}

// submitFormNode converts a form node into a pending navigation, like a real
// programmatic form.submit().
func (h *scriptHost) submitFormNode(n *htmlmini.Node) {
	fields := url.Values{}
	for _, input := range n.Find("input") {
		if name, ok := input.Attr("name"); ok && name != "" {
			fields.Set(name, input.AttrOr("value", ""))
		}
	}
	method := strings.ToUpper(n.AttrOr("method", "GET"))
	action := n.AttrOr("action", "")
	if action == "" {
		action = h.page.URL.String()
	}
	if h.page.browser.tracing() {
		h.page.browser.tracef(EventSubmit, "script %s %s (%d fields)", method, action, len(fields))
	}
	h.requestNavigation(method, action, fields)
}

// solveCaptcha emulates a human working a reCAPTCHA v2 checkbox: it finds the
// widget, fetches a response token from the CAPTCHA service's challenge
// endpoint, and invokes the widget's data-callback with the token — which on
// the paper's phishing pages dynamically builds and submits the gated form.
func (h *scriptHost) solveCaptcha() {
	widget := h.findWidget()
	if widget == nil {
		return
	}
	sitekey := widget.AttrOr("data-sitekey", "")
	endpoint := widget.AttrOr("data-endpoint", "")
	callback := widget.AttrOr("data-callback", "")
	if sitekey == "" || endpoint == "" || callback == "" {
		return
	}
	solveURL, err := h.page.Resolve(endpoint)
	if err != nil {
		h.page.fail(err)
		return
	}
	q := solveURL.Query()
	q.Set("sitekey", sitekey)
	solveURL.RawQuery = q.Encode()
	solveReq, err := http.NewRequest("GET", solveURL.String(), nil)
	if err != nil {
		h.page.fail(fmt.Errorf("browser: captcha challenge: %w", err))
		return
	}
	resp, err := h.page.browser.do(solveReq)
	if err != nil {
		h.page.fail(fmt.Errorf("browser: captcha challenge: %w", err))
		return
	}
	tokenBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		h.page.fail(fmt.Errorf("browser: captcha challenge failed: status %d", resp.StatusCode))
		return
	}
	token := strings.TrimSpace(string(tokenBytes))
	h.page.browser.tracef(EventSolve, "sitekey %s", sitekey)

	cb, ok := h.interp.Globals.Lookup(callback)
	if !ok {
		h.page.fail(fmt.Errorf("browser: captcha callback %q not defined", callback))
		return
	}
	if _, err := h.interp.CallValue(cb, nil, []scriptlet.Value{token}); err != nil {
		h.page.fail(err)
	}
}

func (h *scriptHost) findWidget() *htmlmini.Node {
	var widget *htmlmini.Node
	h.page.DOM.Walk(func(n *htmlmini.Node) bool {
		if n.Type == htmlmini.ElementNode {
			if cls, ok := n.Attr("class"); ok && strings.Contains(cls, "g-recaptcha") {
				widget = n
				return false
			}
		}
		return true
	})
	return widget
}
