package browser

import (
	"strings"
	"testing"
	"time"

	"areyouhuman/internal/simnet"
)

// bindings_test covers the DOM-binding edge cases the main browser tests
// don't reach.

func open(t *testing.T, html string, cfg Config) *Page {
	t.Helper()
	net := simnet.New(nil)
	net.Register("bind.example", serve(html))
	cfg.ExecuteScripts = true
	if cfg.TimerBudget == 0 {
		cfg.TimerBudget = time.Minute
	}
	b := New(net, cfg)
	p, err := b.Open("http://bind.example/")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGetElementByIdMissingIsNull(t *testing.T) {
	t.Parallel()
	p := open(t, `<html><body><div id="out"></div><script>
var el = document.getElementById('nope');
document.getElementById('out').innerText = (el === null) ? 'null' : 'found';
</script></body></html>`, Config{})
	if got := strings.TrimSpace(p.Text()); got != "null" {
		t.Fatalf("missing element lookup = %q, want null", got)
	}
}

func TestGetAttributeAndTagName(t *testing.T) {
	t.Parallel()
	p := open(t, `<html><body><input id="f" name="user" type="email"><div id="out"></div><script>
var el = document.getElementById('f');
document.getElementById('out').innerText = el.tagName + ':' + el.getAttribute('type') + ':' + (el.getAttribute('missing') === null);
</script></body></html>`, Config{})
	if got := strings.TrimSpace(p.Text()); got != "INPUT:email:true" {
		t.Fatalf("attribute access = %q", got)
	}
}

func TestValuePropertyReadsAndWrites(t *testing.T) {
	t.Parallel()
	p := open(t, `<html><body><input id="f" value="before"><div id="out"></div><script>
var el = document.getElementById('f');
var was = el.value;
el.value = 'after';
document.getElementById('out').innerText = was + '/' + el.value;
</script></body></html>`, Config{})
	if got := strings.TrimSpace(p.Text()); got != "before/after" {
		t.Fatalf("value property = %q", got)
	}
}

func TestInnerHTMLParsesFragment(t *testing.T) {
	t.Parallel()
	p := open(t, `<html><body><div id="box"></div><script>
document.getElementById('box').innerHTML = '<form method="post"><input name="x" value="1"></form>';
</script></body></html>`, Config{})
	forms := p.Forms()
	if len(forms) != 1 || forms[0].Fields["x"] != "1" {
		t.Fatalf("innerHTML fragment not reflected in DOM: %+v", forms)
	}
}

func TestInnerHTMLReadRendersChildren(t *testing.T) {
	t.Parallel()
	p := open(t, `<html><body><div id="box"><b>bold</b></div><div id="out"></div><script>
document.getElementById('out').innerText = document.getElementById('box').innerHTML;
</script></body></html>`, Config{})
	if got := strings.TrimSpace(p.Text()); !strings.Contains(got, "<b>bold</b>") {
		t.Fatalf("innerHTML read = %q", got)
	}
}

func TestStyleAssignmentsAreSinked(t *testing.T) {
	t.Parallel()
	p := open(t, `<html><body><div id="x">visible</div><script>
var el = document.getElementById('x');
el.style.display = 'none';
el.style.filter = 'blur(8px)';
</script></body></html>`, Config{})
	if p.ScriptErr != nil {
		t.Fatalf("style writes must not error: %v", p.ScriptErr)
	}
}

func TestElementIdentityCached(t *testing.T) {
	t.Parallel()
	p := open(t, `<html><body><div id="x"></div><div id="out"></div><script>
var a = document.getElementById('x');
var b = document.getElementById('x');
document.getElementById('out').innerText = (a === b) ? 'same' : 'different';
</script></body></html>`, Config{})
	if got := strings.TrimSpace(p.Text()); got != "same" {
		t.Fatalf("element identity = %q, want cached wrapper", got)
	}
}

func TestDocumentTitleReadWrite(t *testing.T) {
	t.Parallel()
	p := open(t, `<html><head><title>old</title></head><body><div id="out"></div><script>
var was = document.title;
document.title = 'new';
document.getElementById('out').innerText = was;
</script></body></html>`, Config{})
	if p.Title() != "new" {
		t.Fatalf("title = %q, want new", p.Title())
	}
	if got := strings.TrimSpace(p.Text()); got != "old" {
		t.Fatalf("old title read = %q", got)
	}
}

func TestSubmitNonFormElementErrors(t *testing.T) {
	t.Parallel()
	p := open(t, `<html><body><div id="d"></div><script>
document.getElementById('d').submit();
</script></body></html>`, Config{})
	if p.ScriptErr == nil {
		t.Fatal("submitting a non-form must raise a script error")
	}
}

func TestAlertRecordedUnderConfirmPolicy(t *testing.T) {
	t.Parallel()
	p := open(t, `<html><body><script>alert('heads up'); document.title='survived';</script></body></html>`,
		Config{AlertPolicy: AlertConfirm})
	if p.Title() != "survived" {
		t.Fatal("alert under confirm policy must not halt the script")
	}
	if len(p.Dialogs) != 1 || p.Dialogs[0] != "heads up" {
		t.Fatalf("Dialogs = %v", p.Dialogs)
	}
}

func TestAlertHaltsUnderIgnorePolicy(t *testing.T) {
	t.Parallel()
	p := open(t, `<html><body><script>alert('wall'); document.title='unreached';</script></body></html>`,
		Config{AlertPolicy: AlertIgnore})
	if p.Title() == "unreached" {
		t.Fatal("alert under ignore policy must halt the script")
	}
	if p.ScriptErr == nil {
		t.Fatal("ScriptErr expected")
	}
}

func TestCaptchaWidgetIncompleteAttributesIgnored(t *testing.T) {
	t.Parallel()
	// A widget missing its endpoint cannot be solved; the page must settle
	// without error instead of crashing the solver.
	p := open(t, `<html><body>
<div class="g-recaptcha" data-sitekey="k"></div>
<script>function capback(t){}</script></body></html>`,
		Config{CanSolveCAPTCHA: true, AlertPolicy: AlertConfirm})
	if p.ScriptErr != nil {
		t.Fatalf("incomplete widget should be ignored: %v", p.ScriptErr)
	}
}

func TestCaptchaCallbackUndefinedFails(t *testing.T) {
	t.Parallel()
	net := simnet.New(nil)
	net.Register("svc.example", serve("tok"))
	net.Register("bind.example", serve(`<html><body>
<div class="g-recaptcha" data-sitekey="k" data-callback="missingFn" data-endpoint="http://svc.example/"></div>
</body></html>`))
	b := New(net, Config{ExecuteScripts: true, CanSolveCAPTCHA: true, TimerBudget: time.Minute})
	p, err := b.Open("http://bind.example/")
	if err != nil {
		t.Fatal(err)
	}
	if p.ScriptErr == nil || !strings.Contains(p.ScriptErr.Error(), "missingFn") {
		t.Fatalf("undefined callback should surface: %v", p.ScriptErr)
	}
}

func TestLocationHrefReadable(t *testing.T) {
	t.Parallel()
	p := open(t, `<html><body><div id="out"></div><script>
document.getElementById('out').innerText = window.location.href;
</script></body></html>`, Config{})
	if got := strings.TrimSpace(p.Text()); got != "http://bind.example/" {
		t.Fatalf("location.href = %q", got)
	}
}

func TestDocumentFormsCollection(t *testing.T) {
	t.Parallel()
	p := open(t, `<html><body>
<form id="a" method="post"><input name="x"></form>
<form id="b"><input name="y"></form>
<div id="out"></div>
<script>
var forms = document.forms;
document.getElementById('out').innerText = forms.length + ':' + forms[0].id + ':' + forms[1].id;
</script></body></html>`, Config{})
	if got := strings.TrimSpace(p.Text()); got != "2:a:b" {
		t.Fatalf("document.forms = %q", got)
	}
}

func TestGetElementsByTagNameIteration(t *testing.T) {
	t.Parallel()
	p := open(t, `<html><body>
<input name="one"><input name="two"><input name="three">
<div id="out"></div>
<script>
var inputs = document.getElementsByTagName('input');
var names = [];
for (var i = 0; i < inputs.length; i++) { names.push(inputs[i].name); }
document.getElementById('out').innerText = names.join(',');
</script></body></html>`, Config{})
	if got := strings.TrimSpace(p.Text()); got != "one,two,three" {
		t.Fatalf("getElementsByTagName = %q", got)
	}
}
