package chaos

import (
	"fmt"
	"time"
)

// Named presets. Windows are expressed relative to the stage start; the main
// study runs 14 virtual days, so "whole study" windows use 336h.
const study = Duration(14 * 24 * time.Hour)

// Flaky models a persistently unreliable network: connection resets,
// timeout-inducing latency spikes, truncated transfers, and intermittent
// resolver failures, all probabilistic and study-long.
func Flaky() *Plan {
	return &Plan{Name: "flaky", Faults: []FaultSpec{
		{Name: "flaky-reset", Kind: KindNetReset, Start: 0, Duration: study, Probability: 0.15},
		{Name: "flaky-latency", Kind: KindNetLatency, Start: 0, Duration: study, Probability: 0.10, Latency: Duration(45 * time.Second)},
		{Name: "flaky-truncate", Kind: KindNetTruncate, Start: 0, Duration: study, Probability: 0.10},
		{Name: "flaky-servfail", Kind: KindDNSServFail, Start: 0, Duration: study, Probability: 0.10},
	}}
}

// Outage models hard engine downtime: two single-engine outages early in the
// study and one short all-engine blackout in week two. Inside a window the
// engine neither crawls nor answers its public API.
func Outage() *Plan {
	return &Plan{Name: "outage", Faults: []FaultSpec{
		{Name: "outage-gsb", Kind: KindEngineOutage, Target: "gsb", Start: Duration(24 * time.Hour), Duration: Duration(24 * time.Hour), Probability: 1},
		{Name: "outage-netcraft", Kind: KindEngineOutage, Target: "netcraft", Start: Duration(3 * 24 * time.Hour), Duration: Duration(36 * time.Hour), Probability: 1},
		{Name: "outage-blackout", Kind: KindEngineOutage, Target: "*", Start: Duration(8 * 24 * time.Hour), Duration: Duration(6 * time.Hour), Probability: 1},
	}}
}

// Degraded models a soft-failure ecosystem: every engine's pipeline runs
// hours behind, public feeds serve day-old snapshots for most of the study,
// and listed URLs flap in and out of monitor visibility.
func Degraded() *Plan {
	return &Plan{Name: "degraded", Faults: []FaultSpec{
		{Name: "degraded-slow", Kind: KindEngineSlow, Target: "*", Start: 0, Duration: study, Probability: 1, Latency: Duration(4 * time.Hour)},
		{Name: "degraded-feeds", Kind: KindFeedStale, Target: "*", Start: Duration(2 * 24 * time.Hour), Duration: Duration(10 * 24 * time.Hour), Probability: 1, Staleness: Duration(24 * time.Hour)},
		{Name: "degraded-flap", Kind: KindListFlap, Target: "*", Start: 0, Duration: study, Probability: 0.30},
	}}
}

// PresetNames lists the named presets in display order.
func PresetNames() []string { return []string{"flaky", "outage", "degraded"} }

// Preset returns the named preset plan, or ErrUnknownPreset. "none" and ""
// return a nil plan.
func Preset(name string) (*Plan, error) {
	switch name {
	case "", "none":
		return nil, nil
	case "flaky":
		return Flaky(), nil
	case "outage":
		return Outage(), nil
	case "degraded":
		return Degraded(), nil
	default:
		return nil, fmt.Errorf("%w %q (have flaky, outage, degraded)", ErrUnknownPreset, name)
	}
}
