package chaos

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC)

func mustInjector(t *testing.T, p *Plan, seed int64) *Injector {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return NewInjector(p, seed, t0, nil, nil)
}

func TestPlanValidate(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		plan Plan
		want string // substring of the error, "" = valid
	}{
		{"empty", Plan{}, ""},
		{"ok", Plan{Faults: []FaultSpec{{Name: "a", Kind: KindNetReset, Duration: 1, Probability: 0.5}}}, ""},
		{"no name", Plan{Faults: []FaultSpec{{Kind: KindNetReset}}}, "has no name"},
		{"dup name", Plan{Faults: []FaultSpec{
			{Name: "a", Kind: KindNetReset}, {Name: "a", Kind: KindNetTruncate},
		}}, "duplicate fault name"},
		{"bad kind", Plan{Faults: []FaultSpec{{Name: "a", Kind: "net-unplug"}}}, "unknown kind"},
		{"bad probability", Plan{Faults: []FaultSpec{{Name: "a", Kind: KindNetReset, Probability: 1.5}}}, "outside [0, 1]"},
		{"negative start", Plan{Faults: []FaultSpec{{Name: "a", Kind: KindNetReset, Start: -1}}}, "negative start"},
		{"negative duration", Plan{Faults: []FaultSpec{{Name: "a", Kind: KindNetReset, Duration: -1}}}, "negative duration"},
		{"latency required", Plan{Faults: []FaultSpec{{Name: "a", Kind: KindNetLatency, Duration: 1, Probability: 1}}}, "requires latency"},
		{"staleness required", Plan{Faults: []FaultSpec{{Name: "a", Kind: KindFeedStale, Duration: 1, Probability: 1}}}, "requires staleness"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		switch {
		case tc.want == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.want != "" && (err == nil || !strings.Contains(err.Error(), tc.want)):
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	t.Parallel()
	src := `{
	  "name": "demo",
	  "faults": [
	    {"name": "lag", "kind": "net-latency", "target": "*.example",
	     "start": "24h", "duration": "36h", "probability": 0.25, "latency": "45s"},
	    {"name": "stale", "kind": "feed-stale", "target": "gsb",
	     "start": 3600000000000, "duration": "48h", "probability": 1, "staleness": "24h"}
	  ]
	}`
	p, err := ParsePlan([]byte(src))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Faults[0].Latency.D() != 45*time.Second {
		t.Errorf("latency = %v, want 45s", p.Faults[0].Latency.D())
	}
	if p.Faults[1].Start.D() != time.Hour {
		t.Errorf("numeric start = %v, want 1h", p.Faults[1].Start.D())
	}
	out, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	p2, err := ParsePlan(out)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(p2.Faults) != 2 || p2.Faults[0].Latency != p.Faults[0].Latency {
		t.Errorf("round trip mismatch: %+v", p2)
	}
	if _, err := ParsePlan([]byte(`{"faults": [{"name": "x", "kind": "net-reset", "surprise": 1}]}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestWindowEdges(t *testing.T) {
	t.Parallel()
	hour := Duration(time.Hour)
	in := mustInjector(t, &Plan{Faults: []FaultSpec{
		{Name: "zero", Kind: KindEngineOutage, Start: hour, Duration: 0, Probability: 1},
		{Name: "always", Kind: KindNetReset, Start: hour, Duration: hour, Probability: 1},
		{Name: "never", Kind: KindNetTruncate, Start: hour, Duration: hour, Probability: 0},
	}}, 7)

	// A zero-length window never fires, even exactly at its start instant.
	for _, at := range []time.Duration{0, time.Hour, time.Hour + 1, 48 * time.Hour} {
		if in.EngineDown("gsb", t0.Add(at)) {
			t.Errorf("zero-length window fired at +%v", at)
		}
	}
	// Probability 1 fires on every draw inside [start, start+duration)...
	for _, at := range []time.Duration{time.Hour, 90 * time.Minute, 2*time.Hour - 1} {
		if f := in.Net("host.example", t0.Add(at)); !f.Reset {
			t.Errorf("p=1 did not fire at +%v", at)
		}
	}
	// ...and never outside it (end-exclusive).
	for _, at := range []time.Duration{0, time.Hour - 1, 2 * time.Hour, 3 * time.Hour} {
		if f := in.Net("host.example", t0.Add(at)); f.Reset {
			t.Errorf("p=1 fired outside window at +%v", at)
		}
	}
	// Probability 0 never fires even inside the window.
	for _, at := range []time.Duration{time.Hour, 90 * time.Minute} {
		if f := in.Net("host.example", t0.Add(at)); f.TruncateBody {
			t.Errorf("p=0 fired at +%v", at)
		}
	}
}

func TestOverlappingWindowsCompose(t *testing.T) {
	t.Parallel()
	hour := Duration(time.Hour)
	in := mustInjector(t, &Plan{Faults: []FaultSpec{
		{Name: "slow-a", Kind: KindNetLatency, Start: 0, Duration: 2 * hour, Probability: 1, Latency: Duration(10 * time.Second)},
		{Name: "slow-b", Kind: KindNetLatency, Start: hour, Duration: 2 * hour, Probability: 1, Latency: Duration(5 * time.Second)},
	}}, 7)
	cases := []struct {
		at   time.Duration
		want time.Duration
	}{
		{30 * time.Minute, 10 * time.Second}, // only a
		{90 * time.Minute, 15 * time.Second}, // overlap: latencies add
		{150 * time.Minute, 5 * time.Second}, // only b
		{4 * time.Hour, 0},                   // neither
	}
	for _, tc := range cases {
		if got := in.Net("h.example", t0.Add(tc.at)).Latency; got != tc.want {
			t.Errorf("latency at +%v = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestDecisionsDeterministicAndOrderIndependent(t *testing.T) {
	t.Parallel()
	plan := Flaky()
	a := mustInjector(t, plan, 21)
	b := mustInjector(t, plan, 21)
	c := mustInjector(t, plan, 22)

	hosts := []string{"one.example", "two.example", "three.example"}
	// Query b in reverse order with interleaved extra queries: answers must
	// still match a's exactly (no shared stream to perturb).
	type q struct {
		host string
		at   time.Duration
	}
	var queries []q
	for i := 0; i < 200; i++ {
		queries = append(queries, q{hosts[i%len(hosts)], time.Duration(i) * 13 * time.Minute})
	}
	ans := make(map[q]NetFault, len(queries))
	for _, query := range queries {
		ans[query] = a.Net(query.host, t0.Add(query.at))
	}
	diffSeed := 0
	for i := len(queries) - 1; i >= 0; i-- {
		query := queries[i]
		b.DNS("noise.example", t0.Add(query.at)) // extra draws must not matter
		if got := b.Net(query.host, t0.Add(query.at)); got != ans[query] {
			t.Fatalf("order-dependent decision for %+v: %+v vs %+v", query, got, ans[query])
		}
		if c.Net(query.host, t0.Add(query.at)) != ans[query] {
			diffSeed++
		}
	}
	if diffSeed == 0 {
		t.Error("seed change did not alter any of 200 decisions")
	}
}

func TestTargetMatching(t *testing.T) {
	t.Parallel()
	day := Duration(24 * time.Hour)
	in := mustInjector(t, &Plan{Faults: []FaultSpec{
		{Name: "exact", Kind: KindEngineOutage, Target: "gsb", Duration: day, Probability: 1},
		{Name: "suffix", Kind: KindNetReset, Target: "*.shop", Duration: day, Probability: 1},
	}}, 3)
	at := t0.Add(time.Hour)
	if !in.EngineDown("gsb", at) || in.EngineDown("netcraft", at) {
		t.Error("exact target mismatch")
	}
	if !in.Net("pay.shop", at).Reset || in.Net("pay.example", at).Reset {
		t.Error("suffix target mismatch")
	}
}

func TestDNSFirstMatchWins(t *testing.T) {
	t.Parallel()
	day := Duration(24 * time.Hour)
	in := mustInjector(t, &Plan{Faults: []FaultSpec{
		{Name: "sf", Kind: KindDNSServFail, Duration: day, Probability: 1},
		{Name: "nx", Kind: KindDNSNXDomain, Duration: day, Probability: 1},
	}}, 3)
	f := in.DNS("a.example", t0.Add(time.Minute))
	if !f.ServFail || f.NXDomain {
		t.Errorf("overlapping DNS faults: got %+v, want first (servfail) to win", f)
	}
}

func TestDegradedTime(t *testing.T) {
	t.Parallel()
	hour := Duration(time.Hour)
	in := mustInjector(t, &Plan{Faults: []FaultSpec{
		{Name: "o", Kind: KindEngineOutage, Target: "gsb", Start: 0, Duration: 2 * hour, Probability: 1},
		{Name: "s", Kind: KindEngineSlow, Target: "*", Start: 0, Duration: 3 * hour, Probability: 0.5, Latency: hour},
		{Name: "z", Kind: KindEngineOutage, Target: "gsb", Start: hour, Duration: 0, Probability: 1},
	}}, 3)
	if got := in.DegradedTime("gsb"); got != 5*time.Hour {
		t.Errorf("DegradedTime(gsb) = %v, want 5h", got)
	}
	if got := in.DegradedTime("netcraft"); got != 3*time.Hour {
		t.Errorf("DegradedTime(netcraft) = %v, want 3h", got)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	t.Parallel()
	var in *Injector
	at := t0.Add(time.Hour)
	if f := in.Net("h", at); f.Reset || f.Latency != 0 || f.TruncateBody {
		t.Error("nil injector injected a net fault")
	}
	if f := in.DNS("h", at); f.ServFail || f.NXDomain {
		t.Error("nil injector injected a DNS fault")
	}
	if in.EngineDown("gsb", at) || in.EngineSlowdown("gsb", at) != 0 ||
		in.FeedLag("gsb", at) != 0 || in.Flap("u", "gsb", at) || in.DegradedTime("gsb") != 0 {
		t.Error("nil injector reported engine faults")
	}
	in.PublishDegraded([]string{"gsb"})
	if NewInjector(nil, 1, t0, nil, nil) != nil {
		t.Error("NewInjector(nil plan) != nil")
	}
}

func TestPresets(t *testing.T) {
	t.Parallel()
	for _, name := range PresetNames() {
		p, err := Preset(name)
		if err != nil || p == nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("preset %q has Name %q", name, p.Name)
		}
	}
	if p, err := Preset("none"); err != nil || p != nil {
		t.Errorf("Preset(none) = %v, %v", p, err)
	}
	if _, err := Preset("mayhem"); !errors.Is(err, ErrUnknownPreset) {
		t.Errorf("Preset(mayhem) error = %v, want ErrUnknownPreset", err)
	}
}

func TestSplitSeed(t *testing.T) {
	t.Parallel()
	if SplitSeed(21, 0) != 21 {
		t.Error("stream 0 must return the master seed unchanged")
	}
	seen := map[int64]bool{}
	for k := 0; k < 1000; k++ {
		s := SplitSeed(21, k)
		if s == 0 {
			t.Fatalf("SplitSeed(21, %d) = 0", k)
		}
		if seen[s] {
			t.Fatalf("SplitSeed collision at k=%d", k)
		}
		seen[s] = true
	}
}

func TestBackoffDeterministicJitterAndBudget(t *testing.T) {
	t.Parallel()
	b := DefaultBackoff()
	var prev []time.Duration
	for run := 0; run < 2; run++ {
		var ds []time.Duration
		for attempt := 1; ; attempt++ {
			d, ok := b.Delay(21, "crawl|http://x.example/", attempt)
			if !ok {
				break
			}
			ds = append(ds, d)
		}
		if len(ds) != b.Attempts {
			t.Fatalf("got %d delays, want %d", len(ds), b.Attempts)
		}
		if run == 1 {
			for i := range ds {
				if ds[i] != prev[i] {
					t.Fatalf("jitter not deterministic: run 0 %v vs run 1 %v", prev, ds)
				}
			}
		}
		prev = ds
	}
	// Delays respect Base and the jittered Max ceiling, and grow overall.
	for i, d := range prev {
		if d < b.Base {
			t.Errorf("attempt %d delay %v below base %v", i+1, d, b.Base)
		}
		max := time.Duration(float64(b.Max) * (1 + b.Jitter))
		if d > max {
			t.Errorf("attempt %d delay %v above jittered max %v", i+1, d, max)
		}
	}
	if prev[len(prev)-1] <= prev[0] {
		t.Errorf("delays did not grow: %v", prev)
	}
	// Different seeds jitter differently; zero jitter removes the spread.
	d1, _ := b.Delay(21, "x", 1)
	d2, _ := b.Delay(22, "x", 1)
	if d1 == d2 {
		t.Error("distinct seeds produced identical jitter")
	}
	b.Jitter = 0
	for _, seed := range []int64{21, 22, 23} {
		if d, _ := b.Delay(seed, "x", 1); d != b.Base {
			t.Errorf("jitterless first delay = %v, want %v", d, b.Base)
		}
	}
	if _, ok := b.Delay(21, "x", 0); ok {
		t.Error("attempt 0 accepted")
	}
}
