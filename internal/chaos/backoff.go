package chaos

import "time"

// Backoff is an exponential backoff policy with deterministic jitter. The
// consumers (engine crawl retries, monitor probe retries) run it on the
// virtual clock: Delay answers "how long until attempt N", and the caller
// schedules a virtual-time event that far out.
type Backoff struct {
	// Base is the delay before the first retry.
	Base time.Duration
	// Factor multiplies the delay per attempt (>= 1).
	Factor float64
	// Max caps the un-jittered delay.
	Max time.Duration
	// Jitter in [0, 1] stretches each delay by up to that fraction,
	// deterministically per (seed, label, attempt).
	Jitter float64
	// Attempts is the retry budget: attempts beyond it are refused.
	Attempts int
}

// DefaultBackoff is the policy both the engines and the monitor start from:
// first retry after 2 virtual minutes, doubling to a 30-minute cap, up to
// half again in jitter, at most 5 retries.
func DefaultBackoff() Backoff {
	return Backoff{Base: 2 * time.Minute, Factor: 2, Max: 30 * time.Minute, Jitter: 0.5, Attempts: 5}
}

// Delay returns the wait before retry attempt (1-based) for the work item
// identified by label, or false when the budget is exhausted. The jitter
// draw is a pure function of (seed, label, attempt): two replicas with the
// same seed retry on identical schedules, and re-running one replica
// reproduces its schedule exactly.
func (b Backoff) Delay(seed int64, label string, attempt int) (time.Duration, bool) {
	if attempt < 1 || (b.Attempts > 0 && attempt > b.Attempts) {
		return 0, false
	}
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 {
		d *= 1 + b.Jitter*u01(uint64(seed), label, int64(attempt))
	}
	return time.Duration(d), true
}
