package chaos

// Seed splitting and hash-based uniform draws.
//
// SplitSeed is the repo's canonical seed splitter (core.SplitSeed delegates
// here so the chaos layer can derive per-spec streams without importing
// core, which would cycle through experiment). See the determinism notes in
// the package comment: chaos decisions never advance a shared RNG stream;
// each decision hashes (stream, label, virtual time) through the same
// splitmix64 finalizer and maps the result to [0, 1).

const (
	splitmixGamma = 0x9E3779B97F4A7C15 // 2^64 / golden ratio, odd
	splitmixMul1  = 0xBF58476D1CE4E5B9
	splitmixMul2  = 0x94D049BB133111EB

	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// SplitSeed derives stream K from a master seed with the splitmix64
// finalizer (Steele, Lea & Flood 2014). Stream 0 returns master unchanged —
// a single-replica run stays bit-identical to historical single-run output —
// and the result is never 0, because experiment.Config treats a zero seed as
// "use the paper-calibrated default".
//
//phishlint:hotpath
func SplitSeed(master int64, k int) int64 {
	if k == 0 {
		return master
	}
	z := mix64(uint64(master) + uint64(k)*splitmixGamma)
	if z == 0 {
		z = splitmixGamma
	}
	return int64(z)
}

// mix64 is the splitmix64 avalanche finalizer.
//
//phishlint:hotpath
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= splitmixMul1
	z ^= z >> 27
	z *= splitmixMul2
	z ^= z >> 31
	return z
}

// u01 maps (stream, label, tick) to a uniform float64 in [0, 1) without
// allocating: FNV-1a over the label folded into the stream, the virtual-time
// tick mixed in, and the splitmix finalizer for avalanche. Two calls with
// the same arguments always agree, regardless of what any other decision
// drew — the property the cross-parallelism bit-identity test relies on.
//
//phishlint:hotpath
func u01(stream uint64, label string, tick int64) float64 {
	h := uint64(fnvOffset) ^ stream
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= fnvPrime
	}
	h = mix64(h ^ uint64(tick))
	return float64(h>>11) / (1 << 53)
}
