package chaos

import (
	"time"

	"areyouhuman/internal/journal"
	"areyouhuman/internal/telemetry"
)

// Metric names exported by the injector.
const (
	// MetricFaultsInjected counts positive injection decisions, labelled by
	// fault name and kind.
	MetricFaultsInjected = "chaos_faults_injected_total"
	// MetricDegradedSeconds gauges the plan-declared degraded window time
	// per engine (outage + slow windows that target it).
	MetricDegradedSeconds = "chaos_engine_degraded_seconds"
)

// NetFault is the injector's answer for one HTTP exchange.
type NetFault struct {
	// Reset aborts the connection before any response is delivered.
	Reset bool
	// Latency is added virtual delay; requests whose client timeout is
	// shorter than the added latency fail with a timeout.
	Latency time.Duration
	// TruncateBody delivers only the first half of the response body.
	TruncateBody bool
}

// DNSFault is the injector's answer for one DNS query.
type DNSFault struct {
	ServFail bool
	NXDomain bool
}

// Injector answers fault-decision queries for a compiled (plan, seed) pair.
// All methods are safe on a nil receiver (they report "no fault"), safe for
// concurrent use, and allocation-free on the no-fault path.
type Injector struct {
	start time.Time
	tel   *telemetry.Set

	net    []*specState
	dns    []*specState
	outage []*specState
	slow   []*specState
	feed   []*specState
	flap   []*specState
	all    []*specState // plan order, for Windows
}

// specState is one compiled fault spec: the spec itself, its private draw
// stream, its injection counter, and the journal recorder (nil when the
// world runs unjournaled).
type specState struct {
	spec     FaultSpec
	from, to time.Duration // window bounds relative to start
	stream   uint64
	injected *telemetry.Counter
	rec      *journal.Recorder
}

// NewInjector compiles a plan into an injector rooted at the given virtual
// start time. Spec K draws from the SplitSeed(seed, K+1) stream, so decisions
// are reproducible from (seed, plan) alone. A nil plan yields a nil injector.
// The plan should be validated first; NewInjector does not re-check it.
// rec, when non-nil, receives a fault_injected journal event per positive
// decision; journaling observes only — it never touches the draw streams.
func NewInjector(plan *Plan, seed int64, start time.Time, tel *telemetry.Set, rec *journal.Recorder) *Injector {
	if plan == nil {
		return nil
	}
	in := &Injector{start: start, tel: tel}
	tel.M().Describe(MetricFaultsInjected, "Chaos fault injection decisions that fired, by fault name and fault kind.")
	tel.M().Describe(MetricDegradedSeconds, "Plan-declared degraded window seconds per engine (outage + slow).")
	for i := range plan.Faults {
		spec := plan.Faults[i]
		st := &specState{
			spec:     spec,
			from:     spec.Start.D(),
			to:       spec.Start.D() + spec.Duration.D(),
			stream:   uint64(SplitSeed(seed, i+1)),
			injected: tel.M().Counter(MetricFaultsInjected, "fault", spec.Name, "fault_kind", string(spec.Kind)),
			rec:      rec,
		}
		in.all = append(in.all, st)
		switch spec.Kind {
		case KindNetReset, KindNetLatency, KindNetTruncate:
			in.net = append(in.net, st)
		case KindDNSServFail, KindDNSNXDomain:
			in.dns = append(in.dns, st)
		case KindEngineOutage:
			in.outage = append(in.outage, st)
		case KindEngineSlow:
			in.slow = append(in.slow, st)
		case KindFeedStale:
			in.feed = append(in.feed, st)
		case KindListFlap:
			in.flap = append(in.flap, st)
		}
	}
	return in
}

// hit reports whether the spec fires for (label, now): window active, target
// matched by the caller, probability drawn from the spec's own stream. The
// probability edge cases are exact: 0 never fires, 1 always fires inside the
// window.
func (st *specState) hit(start time.Time, label string, now time.Time) bool {
	elapsed := now.Sub(start)
	if elapsed < st.from || elapsed >= st.to {
		return false
	}
	p := st.spec.Probability
	if p <= 0 {
		return false
	}
	if p < 1 && u01(st.stream, label, now.UnixNano()) >= p {
		return false
	}
	st.injected.Inc()
	if st.rec != nil {
		st.rec.Emit(journal.KindFaultInjected, journal.Fields{
			Fault:     st.spec.Name,
			FaultKind: string(st.spec.Kind),
			Target:    label,
			Sim:       now,
		})
	}
	return true
}

// Window is one plan-declared fault window: its identity and bounds relative
// to the injector's start. Windows lets the world journal every window's
// open/close without chaos scheduling anything itself.
type Window struct {
	Name     string
	Kind     string
	From, To time.Duration
}

// Windows returns the plan's fault windows in plan order.
func (in *Injector) Windows() []Window {
	if in == nil {
		return nil
	}
	out := make([]Window, len(in.all))
	for i, st := range in.all {
		out[i] = Window{Name: st.spec.Name, Kind: string(st.spec.Kind), From: st.from, To: st.to}
	}
	return out
}

// Net answers for one HTTP exchange to host. Multiple active specs compose:
// any reset wins, latencies add, any truncate truncates.
func (in *Injector) Net(host string, now time.Time) NetFault {
	var f NetFault
	if in == nil {
		return f
	}
	for _, st := range in.net {
		if !matchTarget(st.spec.Target, host) || !st.hit(in.start, host, now) {
			continue
		}
		switch st.spec.Kind {
		case KindNetReset:
			f.Reset = true
		case KindNetLatency:
			f.Latency += st.spec.Latency.D()
		case KindNetTruncate:
			f.TruncateBody = true
		}
	}
	return f
}

// DNS answers for one query for name. The first active spec in plan order
// wins, keeping overlapping windows deterministic.
func (in *Injector) DNS(name string, now time.Time) DNSFault {
	var f DNSFault
	if in == nil {
		return f
	}
	for _, st := range in.dns {
		if !matchTarget(st.spec.Target, name) || !st.hit(in.start, name, now) {
			continue
		}
		if st.spec.Kind == KindDNSServFail {
			f.ServFail = true
		} else {
			f.NXDomain = true
		}
		return f
	}
	return f
}

// EngineDown reports whether engine key is inside an active outage window.
func (in *Injector) EngineDown(key string, now time.Time) bool {
	if in == nil {
		return false
	}
	for _, st := range in.outage {
		if matchTarget(st.spec.Target, key) && st.hit(in.start, key, now) {
			return true
		}
	}
	return false
}

// EngineSlowdown returns the added processing latency for engine key, summed
// over active slow windows.
func (in *Injector) EngineSlowdown(key string, now time.Time) time.Duration {
	if in == nil {
		return 0
	}
	var total time.Duration
	for _, st := range in.slow {
		if matchTarget(st.spec.Target, key) && st.hit(in.start, key, now) {
			total += st.spec.Latency.D()
		}
	}
	return total
}

// FeedLag returns how stale engine key's public feed reads are right now
// (the maximum over active feed-stale windows; zero = live).
func (in *Injector) FeedLag(key string, now time.Time) time.Duration {
	if in == nil {
		return 0
	}
	var lag time.Duration
	for _, st := range in.feed {
		if matchTarget(st.spec.Target, key) && st.hit(in.start, key, now) {
			if s := st.spec.Staleness.D(); s > lag {
				lag = s
			}
		}
	}
	return lag
}

// Flap reports whether a listed URL is momentarily invisible to monitor
// lookups against engine key. The listing itself is untouched — flapping
// perturbs observation, never ground truth.
func (in *Injector) Flap(url, key string, now time.Time) bool {
	if in == nil {
		return false
	}
	for _, st := range in.flap {
		if matchTarget(st.spec.Target, key) && st.hit(in.start, url+"|"+key, now) {
			return true
		}
	}
	return false
}

// DegradedTime sums the plan-declared degraded window time (outage + slow)
// targeting engine key. It reads the plan, not runtime decisions, so it is
// known at construction.
func (in *Injector) DegradedTime(key string) time.Duration {
	if in == nil {
		return 0
	}
	var total time.Duration
	for _, set := range [][]*specState{in.outage, in.slow} {
		for _, st := range set {
			if matchTarget(st.spec.Target, key) && st.to > st.from {
				total += st.to - st.from
			}
		}
	}
	return total
}

// PublishDegraded sets the per-engine degraded-time gauges for the given
// engine keys.
func (in *Injector) PublishDegraded(keys []string) {
	if in == nil {
		return
	}
	for _, key := range keys {
		in.tel.M().Gauge(MetricDegradedSeconds, "engine", key).Set(in.DegradedTime(key).Seconds())
	}
}
