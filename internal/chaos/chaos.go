// Package chaos is the deterministic fault-injection layer for the virtual
// internet.
//
// A Plan is a declarative list of named fault specs, each with a virtual-time
// window, a probability, and a target selector. An Injector compiled from a
// (plan, seed) pair answers point questions from the simulation layers —
// "does this connection reset?", "is this engine down right now?", "how stale
// is this feed?" — without owning any of their state. The layers stay
// ignorant of each other: simnet and dnssim consume small func hooks,
// engines and monitor consume narrow interfaces that *Injector satisfies
// directly.
//
// Determinism contract: every stochastic decision is a pure function of
// (seed, spec name, decision label, virtual time). No shared RNG stream is
// advanced, so decisions are independent of scheduling order and replica
// parallelism — a chaos run is bit-identical across -parallel settings and
// reproducible from (seed, plan) alone. An empty plan injects nothing and a
// nil plan installs nothing; both produce byte-identical output to a run
// without chaos.
package chaos

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Kind enumerates the fault types a spec can inject.
type Kind string

const (
	// KindNetReset aborts matching HTTP connections with a reset error.
	KindNetReset Kind = "net-reset"
	// KindNetLatency adds latency to matching HTTP connections; if the
	// added latency exceeds the client's timeout the request fails.
	KindNetLatency Kind = "net-latency"
	// KindNetTruncate delivers only the first half of the response body.
	KindNetTruncate Kind = "net-truncate"
	// KindDNSServFail answers matching DNS queries with SERVFAIL.
	KindDNSServFail Kind = "dns-servfail"
	// KindDNSNXDomain answers matching DNS queries with NXDOMAIN even when
	// the zone exists.
	KindDNSNXDomain Kind = "dns-nxdomain"
	// KindEngineOutage takes a detection engine hard-down: crawls do not
	// run and its public API answers 503.
	KindEngineOutage Kind = "engine-outage"
	// KindEngineSlow adds processing latency to an engine's pipeline,
	// delaying blacklist listing.
	KindEngineSlow Kind = "engine-slow"
	// KindFeedStale serves monitor feed reads from a snapshot Staleness
	// old instead of the live blacklist.
	KindFeedStale Kind = "feed-stale"
	// KindListFlap makes already-listed URLs intermittently invisible to
	// monitor lookups (the listing itself is untouched).
	KindListFlap Kind = "list-flap"
)

// kinds is the closed set Validate accepts.
var kinds = map[Kind]bool{
	KindNetReset: true, KindNetLatency: true, KindNetTruncate: true,
	KindDNSServFail: true, KindDNSNXDomain: true,
	KindEngineOutage: true, KindEngineSlow: true,
	KindFeedStale: true, KindListFlap: true,
}

// Duration is a time.Duration that marshals to/from JSON as a Go duration
// string ("30m", "72h"). Plain numbers are accepted on input as nanoseconds.
type Duration time.Duration

// D returns the value as a time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as a quoted Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a quoted duration string or a number of
// nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("chaos: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(data, &ns); err != nil {
		return err
	}
	*d = Duration(ns)
	return nil
}

// FaultSpec is one named fault: a kind, a target selector, an activity
// window in virtual time (relative to the stage start), and a probability
// applied per decision inside the window.
//
// Target selects what the fault applies to. "" and "*" match everything;
// "*suffix" matches by suffix; anything else is an exact match. Net and DNS
// faults match against the host name, engine/feed/flap faults against the
// engine key ("gsb", "netcraft", ...).
//
// Window semantics: the fault is active for virtual times t with
// start+Start <= t < start+Start+Duration. A Duration of zero (or negative)
// therefore never fires — a zero-length window is inert by construction.
type FaultSpec struct {
	Name        string   `json:"name"`
	Kind        Kind     `json:"kind"`
	Target      string   `json:"target,omitempty"`
	Start       Duration `json:"start"`
	Duration    Duration `json:"duration"`
	Probability float64  `json:"probability"`
	// Latency is the added delay for net-latency and engine-slow faults.
	Latency Duration `json:"latency,omitempty"`
	// Staleness is the feed age for feed-stale faults.
	Staleness Duration `json:"staleness,omitempty"`
}

// Plan is a named collection of fault specs. The zero value (and nil) is the
// empty plan: valid, and injecting nothing.
type Plan struct {
	Name   string      `json:"name,omitempty"`
	Faults []FaultSpec `json:"faults,omitempty"`
}

// Empty reports whether the plan contains no fault specs.
func (p *Plan) Empty() bool { return p == nil || len(p.Faults) == 0 }

// Validate checks the plan's internal consistency: unique non-empty spec
// names, known kinds, probabilities in [0, 1], non-negative windows, and
// kind-specific parameters present where required.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	seen := make(map[string]bool, len(p.Faults))
	for i := range p.Faults {
		f := &p.Faults[i]
		if f.Name == "" {
			return fmt.Errorf("chaos: fault %d has no name", i)
		}
		if seen[f.Name] {
			return fmt.Errorf("chaos: duplicate fault name %q", f.Name)
		}
		seen[f.Name] = true
		if !kinds[f.Kind] {
			return fmt.Errorf("chaos: fault %q has unknown kind %q", f.Name, f.Kind)
		}
		if f.Probability < 0 || f.Probability > 1 {
			return fmt.Errorf("chaos: fault %q probability %v outside [0, 1]", f.Name, f.Probability)
		}
		if f.Start < 0 {
			return fmt.Errorf("chaos: fault %q has negative start", f.Name)
		}
		if f.Duration < 0 {
			return fmt.Errorf("chaos: fault %q has negative duration", f.Name)
		}
		switch f.Kind {
		case KindNetLatency, KindEngineSlow:
			if f.Latency <= 0 {
				return fmt.Errorf("chaos: fault %q kind %s requires latency > 0", f.Name, f.Kind)
			}
		case KindFeedStale:
			if f.Staleness <= 0 {
				return fmt.Errorf("chaos: fault %q kind %s requires staleness > 0", f.Name, f.Kind)
			}
		}
	}
	return nil
}

// ParsePlan decodes and validates a JSON plan.
func ParsePlan(data []byte) (*Plan, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("chaos: parsing plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ErrUnknownPreset is returned by Preset for names it does not know.
var ErrUnknownPreset = errors.New("chaos: unknown preset")

// matchTarget reports whether a spec target selects name. "" and "*" match
// everything; a leading "*" matches by suffix; otherwise exact.
func matchTarget(target, name string) bool {
	switch {
	case target == "" || target == "*":
		return true
	case strings.HasPrefix(target, "*"):
		return strings.HasSuffix(name, target[1:])
	default:
		return target == name
	}
}
