// Package phishkit generates the (harmless) phishing kits of Section 3:
// lookalike login pages for PayPal, Facebook, and Gmail with all external
// resources (logo, favicon) bundled locally, packed as a ready-to-upload
// .zip.
//
// Provenance matters: the paper *cloned* the PayPal and Facebook pages from
// the originals (so their bundled resources are byte-identical to the brand's
// official ones) but built the Gmail page *from scratch*. Anti-phishing
// classifiers that rely on exact resource fingerprints catch clones but miss
// scratch-built pages — the paper's preliminary test found only GSB and
// NetCraft detected the Gmail kit. Clone kits here carry the brand's
// canonical resource bytes; scratch kits carry redrawn ones.
//
// Ethics note, mirroring Appendix B: the credential collector never stores
// submitted values; it records only that a submission happened.
package phishkit

import (
	"archive/zip"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Brand is a phishing target brand.
type Brand string

// The paper's three target brands.
const (
	PayPal   Brand = "PayPal"
	Facebook Brand = "Facebook"
	Gmail    Brand = "Gmail"
)

// Brands returns the paper's target list in its reporting order
// (G, F, P appear as Gmail, Facebook, PayPal).
func Brands() []Brand { return []Brand{Gmail, Facebook, PayPal} }

// Letter returns the single-letter code Table 1 uses.
func (b Brand) Letter() string {
	switch b {
	case Gmail:
		return "G"
	case Facebook:
		return "F"
	case PayPal:
		return "P"
	default:
		return "?"
	}
}

// Provenance records how the kit page was produced.
type Provenance int

// Kit provenance values.
const (
	// Cloned pages copy the original HTML and resources (PayPal, Facebook).
	Cloned Provenance = iota
	// FromScratch pages are hand-written lookalikes (Gmail).
	FromScratch
)

func (p Provenance) String() string {
	if p == FromScratch {
		return "from-scratch"
	}
	return "cloned"
}

// DefaultCollectPath is where kit login forms post credentials.
const DefaultCollectPath = "/collect.php"

// Kit is one generated phishing kit.
type Kit struct {
	Brand       Brand
	Provenance  Provenance
	CollectPath string
	// LoginHTML is the phishing login page.
	LoginHTML string
	// Resources maps bundled file paths (favicon, logo) to contents.
	Resources map[string][]byte
}

// Generate builds the kit for a brand with the paper's provenance choices:
// PayPal and Facebook cloned, Gmail from scratch.
func Generate(brand Brand) (*Kit, error) {
	prov := Cloned
	if brand == Gmail {
		prov = FromScratch
	}
	return GenerateWithProvenance(brand, prov)
}

// GenerateWithProvenance builds a kit with an explicit provenance — used by
// the ablation study that clones all three brands.
func GenerateWithProvenance(brand Brand, prov Provenance) (*Kit, error) {
	spec, ok := brandSpecs[brand]
	if !ok {
		return nil, fmt.Errorf("phishkit: unknown brand %q", brand)
	}
	k := &Kit{
		Brand:       brand,
		Provenance:  prov,
		CollectPath: DefaultCollectPath,
		Resources:   make(map[string][]byte, 2),
	}
	if prov == Cloned {
		k.Resources[spec.logoPath] = OfficialResource(brand, "logo")
		k.Resources[spec.faviconPath] = OfficialResource(brand, "favicon")
	} else {
		k.Resources[spec.logoPath] = redrawnResource(brand, "logo")
		k.Resources[spec.faviconPath] = redrawnResource(brand, "favicon")
	}
	k.LoginHTML = spec.render(prov, k.CollectPath)
	return k, nil
}

// OfficialResource returns the brand's canonical resource bytes — what the
// real site serves and what classifiers fingerprint. Deterministic.
func OfficialResource(brand Brand, name string) []byte {
	return resourceBytes("official/" + string(brand) + "/" + name)
}

// OfficialResourceHash returns the hex SHA-256 of the canonical resource.
func OfficialResourceHash(brand Brand, name string) string {
	return HashBytes(OfficialResource(brand, name))
}

// redrawnResource returns visually-equivalent-but-rebuilt bytes, as a
// from-scratch designer would produce.
func redrawnResource(brand Brand, name string) []byte {
	return resourceBytes("scratch/" + string(brand) + "/" + name)
}

func resourceBytes(seed string) []byte {
	sum := sha256.Sum256([]byte(seed))
	blob := make([]byte, 0, 96)
	blob = append(blob, 0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n')
	for i := 0; i < 2; i++ {
		blob = append(blob, sum[:]...)
	}
	return blob
}

// HashBytes returns the hex SHA-256 of data.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

type brandSpec struct {
	title       string
	officialDom string
	logoPath    string
	faviconPath string
	emailField  string
	passField   string
	heading     string
	footer      string
}

var brandSpecs = map[Brand]brandSpec{
	PayPal: {
		title:       "Log in to your PayPal account",
		officialDom: "paypal.com",
		logoPath:    "/assets/paypal-logo.png",
		faviconPath: "/assets/paypal-favicon.ico",
		emailField:  "login_email",
		passField:   "login_pass",
		heading:     "PayPal",
		footer:      "Copyright 1999-2020 PayPal. All rights reserved.",
	},
	Facebook: {
		title:       "Facebook - Log In or Sign Up",
		officialDom: "facebook.com",
		logoPath:    "/assets/facebook-logo.png",
		faviconPath: "/assets/facebook-favicon.ico",
		emailField:  "email",
		passField:   "pass",
		heading:     "Facebook",
		footer:      "Facebook (c) 2020",
	},
	Gmail: {
		title:       "Gmail - Sign in - Google Accounts",
		officialDom: "accounts.google.com",
		logoPath:    "/assets/google-logo.png",
		faviconPath: "/assets/google-favicon.ico",
		emailField:  "identifier",
		passField:   "password",
		heading:     "Sign in",
		footer:      "Google - One account. All of Google working for you.",
	},
}

func (s brandSpec) render(prov Provenance, collectPath string) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "  <title>%s</title>\n", s.title)
	fmt.Fprintf(&b, "  <link rel=\"icon\" href=%q>\n", s.faviconPath)
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "  <img class=\"brand-logo\" src=%q alt=%q>\n", s.logoPath, s.heading)
	fmt.Fprintf(&b, "  <h1>%s</h1>\n", s.heading)
	if prov == Cloned {
		// Clones keep the original's structural fingerprints: canonical
		// links back to the brand domain and its form markup.
		fmt.Fprintf(&b, "  <link rel=\"canonical\" href=\"https://www.%s/login\">\n", s.officialDom)
	}
	fmt.Fprintf(&b, "  <form id=\"login_form\" action=%q method=\"post\">\n", collectPath)
	fmt.Fprintf(&b, "    <input type=\"email\" name=%q placeholder=\"Email\">\n", s.emailField)
	fmt.Fprintf(&b, "    <input type=\"password\" name=%q placeholder=\"Password\">\n", s.passField)
	b.WriteString("    <button type=\"submit\">Log In</button>\n  </form>\n")
	fmt.Fprintf(&b, "  <footer>%s</footer>\n", s.footer)
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// Spec exposes read-only brand metadata the classifier builds signatures
// from.
type Spec struct {
	Title          string
	OfficialDomain string
	LogoPath       string
	FaviconPath    string
	PasswordField  string
}

// SpecFor returns the brand's metadata.
func SpecFor(brand Brand) (Spec, bool) {
	s, ok := brandSpecs[brand]
	if !ok {
		return Spec{}, false
	}
	return Spec{
		Title:          s.title,
		OfficialDomain: s.officialDom,
		LogoPath:       s.logoPath,
		FaviconPath:    s.faviconPath,
		PasswordField:  s.passField,
	}, true
}

// Collector counts credential submissions without storing any field values
// (Appendix B: sensitive information is never retained).
type Collector struct {
	mu          sync.Mutex
	submissions int
}

// Submissions reports how many credential posts arrived.
func (c *Collector) Submissions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submissions
}

func (c *Collector) record() {
	c.mu.Lock()
	c.submissions++
	c.mu.Unlock()
}

// Handler serves the kit: the login page on any GET, bundled resources at
// their paths, and the credential collector at CollectPath. collector may be
// nil.
func (k *Kit) Handler(collector *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if res, ok := k.Resources[r.URL.Path]; ok {
			w.Header().Set("Content-Type", "image/png")
			w.Write(res)
			return
		}
		if r.URL.Path == k.CollectPath && r.Method == http.MethodPost {
			if collector != nil {
				collector.record()
			}
			// Swallow the credentials and bounce to a harmless page.
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			io.WriteString(w, "<html><body>Temporarily unavailable. Please try again later.</body></html>")
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, k.LoginHTML)
	})
}

// WriteZip packs the kit for upload, entries sorted for reproducibility.
func (k *Kit) WriteZip(w io.Writer) error {
	zw := zip.NewWriter(w)
	entries := map[string][]byte{"login.php": []byte(k.LoginHTML)}
	for path, data := range k.Resources {
		entries[strings.TrimPrefix(path, "/")] = data
	}
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := zw.Create(name)
		if err != nil {
			return fmt.Errorf("phishkit: creating zip entry %s: %w", name, err)
		}
		if _, err := f.Write(entries[name]); err != nil {
			return fmt.Errorf("phishkit: writing zip entry %s: %w", name, err)
		}
	}
	return zw.Close()
}
