package phishkit

import "sync"

// kitCache memoises GenerateWithProvenance. A Kit is pure content derived
// from (brand, provenance) and is never mutated after generation — handlers
// and classifiers only read it — so one instance can back every mount in
// every replica world. The main experiment alone generates 105 kits per
// world; with the cache each (brand, provenance) pair is built once per
// process.
var kitCache sync.Map // kitKey -> *Kit

type kitKey struct {
	brand Brand
	prov  Provenance
}

// GenerateCached is GenerateWithProvenance backed by the process-wide kit
// cache. The returned Kit is shared: callers must treat it as read-only
// (which every handler and classifier in this repository does).
func GenerateCached(brand Brand, prov Provenance) (*Kit, error) {
	key := kitKey{brand: brand, prov: prov}
	if k, ok := kitCache.Load(key); ok {
		return k.(*Kit), nil
	}
	k, err := GenerateWithProvenance(brand, prov)
	if err != nil {
		return nil, err
	}
	actual, _ := kitCache.LoadOrStore(key, k)
	return actual.(*Kit), nil
}
