package phishkit

import (
	"archive/zip"
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"areyouhuman/internal/htmlmini"
	"areyouhuman/internal/simnet"
)

func TestGenerateProvenanceDefaults(t *testing.T) {
	t.Parallel()
	for brand, want := range map[Brand]Provenance{PayPal: Cloned, Facebook: Cloned, Gmail: FromScratch} {
		k, err := Generate(brand)
		if err != nil {
			t.Fatal(err)
		}
		if k.Provenance != want {
			t.Errorf("%s provenance = %v, want %v", brand, k.Provenance, want)
		}
	}
}

func TestGenerateUnknownBrand(t *testing.T) {
	t.Parallel()
	if _, err := Generate(Brand("MySpace")); err == nil {
		t.Fatal("unknown brand should fail")
	}
}

func TestClonedResourcesMatchOfficialHashes(t *testing.T) {
	t.Parallel()
	k, _ := Generate(PayPal)
	spec, _ := SpecFor(PayPal)
	if got := HashBytes(k.Resources[spec.LogoPath]); got != OfficialResourceHash(PayPal, "logo") {
		t.Fatal("cloned kit logo must be byte-identical to the official resource")
	}
	if got := HashBytes(k.Resources[spec.FaviconPath]); got != OfficialResourceHash(PayPal, "favicon") {
		t.Fatal("cloned kit favicon must match the official resource")
	}
}

func TestScratchResourcesDiffer(t *testing.T) {
	t.Parallel()
	k, _ := Generate(Gmail)
	spec, _ := SpecFor(Gmail)
	if HashBytes(k.Resources[spec.LogoPath]) == OfficialResourceHash(Gmail, "logo") {
		t.Fatal("from-scratch kit must not reuse official resource bytes")
	}
}

func TestAblationCloneGmail(t *testing.T) {
	t.Parallel()
	k, err := GenerateWithProvenance(Gmail, Cloned)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := SpecFor(Gmail)
	if HashBytes(k.Resources[spec.LogoPath]) != OfficialResourceHash(Gmail, "logo") {
		t.Fatal("explicitly cloned Gmail must carry official resources")
	}
}

func TestLoginPageLooksLikeBrand(t *testing.T) {
	t.Parallel()
	for _, brand := range Brands() {
		k, _ := Generate(brand)
		doc := htmlmini.Parse(k.LoginHTML)
		spec, _ := SpecFor(brand)
		if doc.Title() != spec.Title {
			t.Errorf("%s title = %q, want %q", brand, doc.Title(), spec.Title)
		}
		forms := doc.Forms()
		if len(forms) != 1 {
			t.Fatalf("%s login page has %d forms", brand, len(forms))
		}
		if _, ok := forms[0].Fields[spec.PasswordField]; !ok {
			t.Errorf("%s form missing password field %q", brand, spec.PasswordField)
		}
		if forms[0].Action != DefaultCollectPath {
			t.Errorf("%s form action = %q", brand, forms[0].Action)
		}
	}
}

func TestClonedPagesKeepCanonicalLink(t *testing.T) {
	t.Parallel()
	pp, _ := Generate(PayPal)
	if !strings.Contains(pp.LoginHTML, "paypal.com") {
		t.Fatal("cloned PayPal page should reference the official domain")
	}
	gm, _ := Generate(Gmail)
	if strings.Contains(gm.LoginHTML, `rel="canonical"`) {
		t.Fatal("from-scratch page should not carry the clone's canonical link")
	}
}

func TestHandlerServesPageResourcesAndCollector(t *testing.T) {
	t.Parallel()
	k, _ := Generate(Facebook)
	var collector Collector
	net := simnet.New(nil)
	net.Register("fb-phish.example", k.Handler(&collector))
	client := simnet.NewClient(net, "198.51.100.4")

	resp, err := client.Get("http://fb-phish.example/secure/login.php")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "Facebook") {
		t.Fatal("login page not served")
	}

	spec, _ := SpecFor(Facebook)
	resp, err = client.Get("http://fb-phish.example" + spec.LogoPath)
	if err != nil {
		t.Fatal(err)
	}
	logo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if HashBytes(logo) != OfficialResourceHash(Facebook, "logo") {
		t.Fatal("served logo must be the bundled clone resource")
	}

	resp, err = client.PostForm("http://fb-phish.example"+k.CollectPath,
		map[string][]string{"email": {"victim@example.com"}, "pass": {"hunter2"}})
	if err != nil {
		t.Fatal(err)
	}
	credsPage, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if collector.Submissions() != 1 {
		t.Fatalf("Submissions = %d, want 1", collector.Submissions())
	}
	if strings.Contains(string(credsPage), "hunter2") {
		t.Fatal("collector must never echo or retain credentials")
	}
}

func TestHandlerNilCollector(t *testing.T) {
	t.Parallel()
	k, _ := Generate(PayPal)
	net := simnet.New(nil)
	net.Register("p.example", k.Handler(nil))
	client := simnet.NewClient(net, "198.51.100.4")
	resp, err := client.PostForm("http://p.example"+k.CollectPath, map[string][]string{"login_pass": {"x"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("collect without collector = %d", resp.StatusCode)
	}
}

func TestWriteZipContainsAllFiles(t *testing.T) {
	t.Parallel()
	k, _ := Generate(PayPal)
	var buf bytes.Buffer
	if err := k.WriteZip(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := zip.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + len(k.Resources)
	if len(zr.File) != want {
		t.Fatalf("zip entries = %d, want %d", len(zr.File), want)
	}
	names := map[string]bool{}
	for _, f := range zr.File {
		names[f.Name] = true
	}
	if !names["login.php"] || !names["assets/paypal-logo.png"] {
		t.Fatalf("zip names = %v", names)
	}
}

func TestBrandLetters(t *testing.T) {
	t.Parallel()
	if Gmail.Letter() != "G" || Facebook.Letter() != "F" || PayPal.Letter() != "P" {
		t.Fatal("brand letters wrong")
	}
	if Brand("X").Letter() != "?" {
		t.Fatal("unknown brand letter")
	}
	if got := len(Brands()); got != 3 {
		t.Fatalf("Brands() = %d entries", got)
	}
}

func TestProvenanceString(t *testing.T) {
	t.Parallel()
	if Cloned.String() != "cloned" || FromScratch.String() != "from-scratch" {
		t.Fatal("provenance strings wrong")
	}
}

func TestOfficialResourcesDeterministic(t *testing.T) {
	t.Parallel()
	a := OfficialResource(PayPal, "logo")
	b := OfficialResource(PayPal, "logo")
	if !bytes.Equal(a, b) {
		t.Fatal("official resources must be deterministic")
	}
	if bytes.Equal(OfficialResource(PayPal, "logo"), OfficialResource(Facebook, "logo")) {
		t.Fatal("brands must have distinct resources")
	}
}
