package dnssim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddZoneAnswersSOAAndNS(t *testing.T) {
	t.Parallel()
	s := NewServer()
	s.AddZone("shop.example", "203.0.113.5")
	code, soa := s.Query("shop.example", TypeSOA)
	if code != NoError || len(soa) != 1 {
		t.Fatalf("SOA query = %v %v, want NOERROR with 1 record", code, soa)
	}
	code, ns := s.Query("shop.example", TypeNS)
	if code != NoError || len(ns) != 2 {
		t.Fatalf("NS query = %v %v, want NOERROR with 2 records", code, ns)
	}
}

func TestMissingZoneIsNXDOMAIN(t *testing.T) {
	t.Parallel()
	s := NewServer()
	code, recs := s.Query("gone.example", TypeSOA)
	if code != NXDomain || recs != nil {
		t.Fatalf("query = %v %v, want NXDOMAIN nil", code, recs)
	}
}

func TestRemoveZoneDropsToNXDOMAIN(t *testing.T) {
	t.Parallel()
	s := NewServer()
	s.AddZone("expired.example", "203.0.113.5")
	if !s.Exists("expired.example") {
		t.Fatal("zone should exist before removal")
	}
	s.RemoveZone("expired.example")
	if s.Exists("expired.example") {
		t.Fatal("zone should be NXDOMAIN after removal")
	}
}

func TestNodataForMissingType(t *testing.T) {
	t.Parallel()
	s := NewServer()
	s.AddZone("a.example", "") // no A record
	code, recs := s.Query("a.example", TypeA)
	if code != NoError || len(recs) != 0 {
		t.Fatalf("A query = %v %v, want NOERROR with no records (NODATA)", code, recs)
	}
}

func TestResolveA(t *testing.T) {
	t.Parallel()
	s := NewServer()
	s.AddZone("web.example", "203.0.113.9")
	ip, ok := s.ResolveA("web.example")
	if !ok || ip != "203.0.113.9" {
		t.Fatalf("ResolveA = %q,%v; want 203.0.113.9,true", ip, ok)
	}
	if _, ok := s.ResolveA("missing.example"); ok {
		t.Fatal("ResolveA should fail for missing zone")
	}
}

func TestSubdomainResolvesWithinZone(t *testing.T) {
	t.Parallel()
	s := NewServer()
	z := s.AddZone("site.example", "203.0.113.9")
	z.Records = append(z.Records, Record{Name: "www.site.example", Type: TypeA, Data: "203.0.113.10"})
	ip, ok := s.ResolveA("www.site.example")
	if !ok || ip != "203.0.113.10" {
		t.Fatalf("ResolveA(www) = %q,%v; want 203.0.113.10,true", ip, ok)
	}
}

func TestCanonicalisation(t *testing.T) {
	t.Parallel()
	s := NewServer()
	s.AddZone("MiXeD.Example.", "203.0.113.5")
	if !s.Exists("mixed.example") {
		t.Fatal("zone lookup should be case-insensitive and trailing-dot tolerant")
	}
	if ip, ok := s.ResolveA("MIXED.EXAMPLE."); !ok || ip != "203.0.113.5" {
		t.Fatalf("ResolveA mixed case = %q,%v", ip, ok)
	}
}

func TestDNSSECFlag(t *testing.T) {
	t.Parallel()
	s := NewServer()
	s.AddZone("signed.example", "203.0.113.5")
	if s.DNSSEC("signed.example") {
		t.Fatal("zone should start unsigned")
	}
	if !s.EnableDNSSEC("signed.example") {
		t.Fatal("EnableDNSSEC reported missing zone")
	}
	if !s.DNSSEC("signed.example") {
		t.Fatal("zone should be signed after EnableDNSSEC")
	}
	if s.EnableDNSSEC("missing.example") {
		t.Fatal("EnableDNSSEC should report false for a missing zone")
	}
}

func TestQueriesCounter(t *testing.T) {
	t.Parallel()
	s := NewServer()
	s.AddZone("q.example", "203.0.113.5")
	for i := 0; i < 7; i++ {
		s.Query("q.example", TypeSOA)
	}
	if got := s.Queries(); got != 7 {
		t.Fatalf("Queries() = %d, want 7", got)
	}
}

func TestZonesSorted(t *testing.T) {
	t.Parallel()
	s := NewServer()
	for _, d := range []string{"zz.example", "aa.example", "mm.example"} {
		s.AddZone(d, "")
	}
	zones := s.Zones()
	for i := 1; i < len(zones); i++ {
		if zones[i-1] >= zones[i] {
			t.Fatalf("Zones() = %v, want sorted unique", zones)
		}
	}
}

func TestRCodeString(t *testing.T) {
	t.Parallel()
	if NoError.String() != "NOERROR" || NXDomain.String() != "NXDOMAIN" {
		t.Fatalf("RCode strings = %q, %q", NoError, NXDomain)
	}
	if got := RCode(9).String(); !strings.Contains(got, "9") {
		t.Fatalf("unknown RCode string = %q", got)
	}
}

// Property: after AddZone, Exists is true and after RemoveZone it is false,
// for arbitrary label casing.
func TestQuickAddRemoveRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(raw uint32, upper bool) bool {
		domain := strings.ToLower(strings.TrimSpace(synthDomain(raw)))
		s := NewServer()
		in := domain
		if upper {
			in = strings.ToUpper(domain)
		}
		s.AddZone(in, "")
		if !s.Exists(domain) {
			return false
		}
		s.RemoveZone(strings.ToUpper(in))
		return !s.Exists(domain)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func synthDomain(raw uint32) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 6)
	for i := range b {
		b[i] = letters[raw%26]
		raw /= 26
	}
	return string(b) + ".example"
}
