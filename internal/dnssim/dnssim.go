// Package dnssim is a simulated authoritative DNS store.
//
// The drop-catch pipeline (Section 3 of the paper) begins by scanning the
// Alexa top-1M list for SOA and NS records and keeping only domains that
// answer NXDOMAIN — i.e. expired domains still on popularity lists. This
// package provides the record store and query semantics that scan needs, plus
// DNSSEC deployment flags for the registered experiment domains.
package dnssim

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"areyouhuman/internal/simnet"
)

// RType is a DNS record type.
type RType string

// Record types used by the simulation.
const (
	TypeA   RType = "A"
	TypeNS  RType = "NS"
	TypeSOA RType = "SOA"
	TypeTXT RType = "TXT"
)

// RCode is a DNS response code.
type RCode int

// Response codes.
const (
	NoError RCode = iota
	NXDomain
	ServFail
)

func (c RCode) String() string {
	switch c {
	case NoError:
		return "NOERROR"
	case NXDomain:
		return "NXDOMAIN"
	case ServFail:
		return "SERVFAIL"
	default:
		return fmt.Sprintf("RCODE(%d)", int(c))
	}
}

// FaultFunc lets a fault-injection layer override live resolutions: a
// non-NoError return makes ResolveA fail as if the authoritative server
// answered that code. Only ResolveA (the path live HTTP traffic takes)
// consults it — direct Query calls, like the drop-catch pipeline's SOA
// scans, see the true zone store.
type FaultFunc func(name string) RCode

// Record is a single resource record.
type Record struct {
	Name string
	Type RType
	Data string
}

// Zone holds the records for one domain.
type Zone struct {
	Domain  string
	Records []Record
	DNSSEC  bool
}

// Server is the simulated authoritative DNS. The zero value is not usable;
// call NewServer.
type Server struct {
	mu      sync.RWMutex
	zones   map[string]*Zone
	fault   FaultFunc
	queries int64
}

// NewServer returns an empty DNS server.
func NewServer() *Server {
	return &Server{zones: make(map[string]*Zone)}
}

// AddZone creates (or replaces) the zone for domain with standard SOA/NS
// records and an A record pointing at ip. An empty ip omits the A record.
func (s *Server) AddZone(domain, ip string) *Zone {
	domain = canonical(domain)
	z := &Zone{
		Domain: domain,
		Records: []Record{
			{Name: domain, Type: TypeSOA, Data: "ns1." + domain + " hostmaster." + domain},
			{Name: domain, Type: TypeNS, Data: "ns1." + domain},
			{Name: domain, Type: TypeNS, Data: "ns2." + domain},
		},
	}
	if ip != "" {
		z.Records = append(z.Records, Record{Name: domain, Type: TypeA, Data: ip})
	}
	s.mu.Lock()
	s.zones[domain] = z
	s.mu.Unlock()
	return z
}

// AddWildcardA appends a wildcard A record ("*." + apex) to apex's zone, the
// way free-hosting providers resolve every customer subdomain to shared
// front-end addresses. The zone must already exist (AddZone). It reports
// whether the record was added.
func (s *Server) AddWildcardA(apex, ip string) bool {
	apex = canonical(apex)
	s.mu.Lock()
	defer s.mu.Unlock()
	z, ok := s.zones[apex]
	if !ok {
		return false
	}
	z.Records = append(z.Records, Record{Name: "*." + apex, Type: TypeA, Data: ip})
	return true
}

// RemoveZone deletes the zone, making subsequent queries answer NXDOMAIN —
// what happens when a domain expires and drops.
func (s *Server) RemoveZone(domain string) {
	s.mu.Lock()
	delete(s.zones, canonical(domain))
	s.mu.Unlock()
}

// EnableDNSSEC flags the zone as signed. It reports whether the zone exists.
func (s *Server) EnableDNSSEC(domain string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	z, ok := s.zones[canonical(domain)]
	if ok {
		z.DNSSEC = true
	}
	return ok
}

// Query answers a DNS query for (name, type). Missing zones answer NXDOMAIN;
// present zones without a matching record answer NOERROR with no records
// (NODATA), like real DNS.
func (s *Server) Query(name string, t RType) (RCode, []Record) {
	name = canonical(name)
	s.mu.Lock()
	s.queries++
	s.mu.Unlock()

	s.mu.RLock()
	defer s.mu.RUnlock()
	z, ok := s.zones[registrable(name)]
	if !ok {
		return NXDomain, nil
	}
	var out []Record
	for _, r := range z.Records {
		if r.Type == t && canonical(r.Name) == name {
			out = append(out, r)
		}
	}
	if out == nil && name != z.Domain {
		// No exact match for a subdomain: wildcard records answer, like real
		// DNS wildcard synthesis (RFC 4592, simplified to one label deep).
		wild := "*." + z.Domain
		for _, r := range z.Records {
			if r.Type == t && canonical(r.Name) == wild {
				out = append(out, r)
			}
		}
	}
	return NoError, out
}

// Exists reports whether a zone is delegated for domain (the SOA/NS scan of
// pipeline step 1 reduces to this).
func (s *Server) Exists(domain string) bool {
	code, _ := s.Query(domain, TypeSOA)
	return code == NoError
}

// DNSSEC reports whether the domain's zone is signed.
func (s *Server) DNSSEC(domain string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	z, ok := s.zones[canonical(domain)]
	return ok && z.DNSSEC
}

// SetFault installs a resolution fault hook; nil removes it.
func (s *Server) SetFault(f FaultFunc) {
	s.mu.Lock()
	s.fault = f
	s.mu.Unlock()
}

// ResolveA implements simnet.Resolver.
func (s *Server) ResolveA(host string) (string, bool) {
	s.mu.RLock()
	fault := s.fault
	s.mu.RUnlock()
	if fault != nil {
		if rc := fault(canonical(host)); rc != NoError {
			// The failed lookup still counts as a served query.
			s.mu.Lock()
			s.queries++
			s.mu.Unlock()
			return "", false
		}
	}
	code, recs := s.Query(host, TypeA)
	if code != NoError || len(recs) == 0 {
		return "", false
	}
	return recs[0].Data, true
}

// Zones returns the delegated domains in lexical order.
func (s *Server) Zones() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.zones))
	for d := range s.zones {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Queries reports the number of queries served.
func (s *Server) Queries() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.queries
}

func canonical(name string) string {
	return strings.TrimSuffix(strings.ToLower(strings.TrimSpace(name)), ".")
}

// ShardKey returns the scheduler affinity key for a DNS name, in the same
// "host:<registrable>" form as simnet.ShardKey (including the free-hosting
// shared-suffix rule, so DNS-layer events for a campaign subdomain land on
// the same shard as its web-layer lifecycle). Event chains that mutate a
// zone (registration, removal, DNSSEC flips) should be rooted with
// simclock.EventScheduler.OnKey on this key so they serialize with the
// web-layer events for the same domain.
func ShardKey(name string) string {
	return simnet.ShardKey(name)
}

// registrable maps a hostname to the zone apex it belongs to in this
// simulation: the last two labels (e.g. www.shop.example.com → example.com).
// Real DNS uses the public-suffix list; two labels suffice for the synthetic
// TLD catalog used here.
func registrable(name string) string {
	labels := strings.Split(name, ".")
	if len(labels) <= 2 {
		return name
	}
	return strings.Join(labels[len(labels)-2:], ".")
}
