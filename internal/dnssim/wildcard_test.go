package dnssim

import (
	"testing"

	"areyouhuman/internal/simnet"
)

func TestAddWildcardAAndQuery(t *testing.T) {
	t.Parallel()
	s := NewServer()
	z := s.AddZone("pages.example", "198.51.100.7")
	if !s.AddWildcardA("pages.example", "198.51.100.7") {
		t.Fatal("AddWildcardA on an existing zone failed")
	}
	// A wildcard record for a zone that was never created is refused.
	if s.AddWildcardA("nozone.example", "198.51.100.9") {
		t.Error("AddWildcardA invented a zone")
	}

	// Subdomains synthesise from the wildcard...
	rc, recs := s.Query("victim-login.pages.example", TypeA)
	if rc != NoError || len(recs) != 1 || recs[0].Data != "198.51.100.7" {
		t.Fatalf("wildcard synthesis: rc=%v recs=%v", rc, recs)
	}
	// ...an exact record still wins for its own name...
	z.Records = append(z.Records, Record{Name: "special.pages.example", Type: TypeA, Data: "203.0.113.50"})
	if _, recs := s.Query("special.pages.example", TypeA); len(recs) != 1 || recs[0].Data != "203.0.113.50" {
		t.Errorf("exact record lost to the wildcard: %v", recs)
	}
	// ...and removing the zone kills wildcard synthesis with it.
	s.RemoveZone("pages.example")
	if rc, _ := s.Query("victim-login.pages.example", TypeA); rc != NXDomain {
		t.Errorf("query after RemoveZone = %v, want NXDomain", rc)
	}
}

// TestShardKeyMatchesSimnet pins the cross-layer agreement the campaign
// relies on: DNS events for a host land on the same scheduler shard as its
// web-layer lifecycle, including the free-hosting shared-suffix rule.
func TestShardKeyMatchesSimnet(t *testing.T) {
	t.Parallel()
	for _, host := range []string{
		"shop.example",
		"www.shop.example",
		"victim.pages.example",
		"a.b.freesites.example",
	} {
		if got, want := ShardKey(host), simnet.ShardKey(host); got != want {
			t.Errorf("ShardKey(%q) = %q, simnet says %q", host, got, want)
		}
	}
	if ShardKey("a.pages.example") == ShardKey("b.pages.example") {
		t.Error("free-hosting subdomains serialise on one DNS shard key")
	}
}
