package dnssim

import "testing"

// TestFaultFailsResolveAOnly pins the fault hook's scope: an injected
// SERVFAIL (or NXDOMAIN) breaks live A-record resolution but leaves Query —
// and therefore the drop-catch SOA/NS scans — answering from the true store.
func TestFaultFailsResolveAOnly(t *testing.T) {
	t.Parallel()
	s := NewServer()
	s.AddZone("site.example", "203.0.113.5")

	if ip, ok := s.ResolveA("site.example"); !ok || ip != "203.0.113.5" {
		t.Fatalf("pre-fault ResolveA = %q %v", ip, ok)
	}

	s.SetFault(func(name string) RCode {
		if name == "site.example" {
			return ServFail
		}
		return NoError
	})
	if ip, ok := s.ResolveA("site.example"); ok {
		t.Fatalf("ResolveA under SERVFAIL = %q, want failure", ip)
	}
	if code, _ := s.Query("site.example", TypeSOA); code != NoError {
		t.Fatalf("Query under fault = %v, want NOERROR (faults must not reach Query)", code)
	}
	if !s.Exists("site.example") {
		t.Fatal("Exists must keep answering from the true store under faults")
	}

	// Clearing the fault restores resolution.
	s.SetFault(nil)
	if _, ok := s.ResolveA("site.example"); !ok {
		t.Fatal("ResolveA still failing after fault cleared")
	}
}

// TestFaultCountsQueries: a faulted resolution still counts as a served
// query — the resolver answered, just unhelpfully.
func TestFaultCountsQueries(t *testing.T) {
	t.Parallel()
	s := NewServer()
	s.AddZone("q.example", "203.0.113.9")
	s.SetFault(func(name string) RCode { return NXDomain })
	before := s.Queries()
	s.ResolveA("q.example")
	if got := s.Queries(); got != before+1 {
		t.Fatalf("queries = %d, want %d", got, before+1)
	}
}

// TestServFailString covers the new RCode.
func TestServFailString(t *testing.T) {
	t.Parallel()
	if ServFail.String() != "SERVFAIL" {
		t.Fatalf("ServFail.String() = %q", ServFail.String())
	}
}
