package engines

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/phishkit"
	"areyouhuman/internal/simnet"
)

// apiWorld mounts a GSB-like engine's HTTP API on a virtual host.
func apiWorld(t *testing.T) (*world, *Engine, *http.Client) {
	t.Helper()
	w := newWorld(t, evasion.None, phishkit.PayPal)
	eng := w.engine(GSB, nil)
	w.net.Register("api.gsb.example", eng.Handler())
	client := simnet.NewClient(w.net, "198.51.100.123")
	return w, eng, client
}

func TestAPIReportTriggersPipeline(t *testing.T) {
	t.Parallel()
	w, eng, client := apiWorld(t)
	resp, err := client.PostForm("http://api.gsb.example/report",
		map[string][]string{"url": {w.url}, "reporter": {"r@lab.example"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("report status = %d", resp.StatusCode)
	}
	w.sched.RunFor(24 * time.Hour)
	if !eng.List.Contains(w.url) {
		t.Fatal("HTTP-submitted report should flow through the full pipeline")
	}
}

func TestAPIReportValidation(t *testing.T) {
	t.Parallel()
	_, _, client := apiWorld(t)
	resp, err := client.Get("http://api.gsb.example/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /report = %d, want 405", resp.StatusCode)
	}
	resp, err = client.PostForm("http://api.gsb.example/report", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty report = %d, want 400", resp.StatusCode)
	}
}

func TestAPIV4LookupRoundTrip(t *testing.T) {
	t.Parallel()
	w, eng, client := apiWorld(t)
	eng.List.Add(w.url, GSB)
	prefix := blacklist.HashPrefix(w.url)

	resp, err := client.Get("http://api.gsb.example/v4/lookup?prefix=" + prefix)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "yes" {
		t.Fatalf("lookup = %q, want yes", body)
	}

	resp, err = client.Get("http://api.gsb.example/v4/fullHashes?prefix=" + prefix)
	if err != nil {
		t.Fatal(err)
	}
	var hashes []string
	if err := json.NewDecoder(resp.Body).Decode(&hashes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(hashes) != 1 || !strings.HasPrefix(hashes[0], prefix) {
		t.Fatalf("fullHashes = %v", hashes)
	}

	resp, err = client.Get("http://api.gsb.example/v4/lookup?prefix=deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "no" {
		t.Fatalf("miss lookup = %q, want no", body)
	}
}

func TestAPIFeedDownload(t *testing.T) {
	t.Parallel()
	w, eng, client := apiWorld(t)
	eng.List.Add(w.url, GSB)
	eng.List.Add("http://another.example/x.php", GSB)
	resp, err := client.Get("http://api.gsb.example/feed")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("feed lines = %v", lines)
	}
}

func TestAPIUnverifiedSection(t *testing.T) {
	t.Parallel()
	// An alert-box-protected URL is unconfirmable for PhishTank's pipeline
	// and voters alike, so it stays in the public unverified section.
	w2 := newWorld(t, evasion.AlertBox, phishkit.PayPal)
	pt := w2.engine(PhishTank, nil)
	w2.net.Register("api.phishtank.example", pt.Handler())
	client := simnet.NewClient(w2.net, "198.51.100.124")

	pt.Report(w2.url, "r@lab.example")
	w2.sched.RunFor(48 * time.Hour)

	resp, err := client.Get("http://api.phishtank.example/unverified")
	if err != nil {
		t.Fatal(err)
	}
	var pending []PendingReport
	if err := json.NewDecoder(resp.Body).Decode(&pending); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(pending) != 1 || pending[0].URL != w2.url {
		t.Fatalf("unverified = %+v", pending)
	}

	// Engines without community verification 404.
	w3, _, client3 := apiWorld(t)
	_ = w3
	resp, err = client3.Get("http://api.gsb.example/unverified")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GSB /unverified = %d, want 404", resp.StatusCode)
	}
}
