package engines

import (
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// Traffic shaping: the paper received roughly 90% of all engine traffic
// within the first two hours after reporting; the rest dribbled in over the
// first day.
const (
	burstWindow   = 2 * time.Hour
	tailWindow    = 22 * time.Hour
	burstFraction = 0.9
	burstBatches  = 24
	tailBatches   = 22
)

// probePaths are what OpenPhish's storm hunted for on the paper's servers:
// famous web shells, phishing-kit archives, and harvested-credential files.
var probePaths = []string{
	"/shell.php", "/c99.php", "/r57.php", "/wso.php", "/b374k.php", "/alfa.php",
	"/wp-content/shell.php", "/admin/cmd.php",
	"/kit.zip", "/backup.zip", "/wp-content.zip", "/site.zip",
	"/log.txt", "/rezult.txt", "/victims.log", "/track.log", "/data/pass.txt",
}

// generateTraffic schedules the crawler fleet's request volume against the
// reported URL's host.
func (e *Engine) generateTraffic(rawURL string) {
	total := e.TrafficPerReport
	if total <= 0 {
		return
	}
	target, err := url.Parse(rawURL)
	if err != nil {
		return
	}
	paths := e.discoverPaths(target)
	rng := e.rng("traffic|" + rawURL)

	burst := int(float64(total) * burstFraction)
	tail := total - burst
	e.scheduleBatches(target, paths, rng, burst, burstBatches, burstWindow, 0)
	e.scheduleBatches(target, paths, rng, tail, tailBatches, tailWindow, burstWindow)
}

func (e *Engine) scheduleBatches(target *url.URL, paths []string, rng *rand.Rand, total, batches int, window, offset time.Duration) {
	if total <= 0 || batches <= 0 {
		return
	}
	per := total / batches
	rem := total % batches
	for i := 0; i < batches; i++ {
		n := per
		if i < rem {
			n++
		}
		if n == 0 {
			continue
		}
		at := offset + time.Duration(int64(window)/int64(batches)*int64(i)) +
			time.Duration(rng.Int63n(int64(window)/int64(batches)+1))
		count := n
		e.sched.After(at, e.Profile.Key+":fleet", func(time.Time) {
			e.fleetBatch(target, paths, rng, count)
		})
	}
}

// fleetBatch issues n requests from randomly chosen fleet addresses.
func (e *Engine) fleetBatch(target *url.URL, paths []string, rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		ip := e.ipPool[rng.Intn(len(e.ipPool))]
		path := target.Path
		switch {
		case e.Profile.ProbeStorm && rng.Float64() < 0.35:
			path = probePaths[rng.Intn(len(probePaths))]
		case len(paths) > 0 && rng.Float64() < 0.6:
			path = paths[rng.Intn(len(paths))]
		}
		e.get(ip, target.Scheme+"://"+target.Host+path)
	}
}

// discoverPaths fetches the host's index page once and extracts same-host
// link paths so fleet traffic exercises the whole fake site.
func (e *Engine) discoverPaths(target *url.URL) []string {
	body := e.get(e.ipPool[0], target.Scheme+"://"+target.Host+"/")
	if body == "" {
		return nil
	}
	doc := e.domCache.Get(body) // nil cache degrades to Parse
	var out []string
	for _, href := range doc.Links() {
		u, err := url.Parse(href)
		if err != nil || (u.Host != "" && u.Host != target.Host) {
			continue
		}
		if u.Path != "" {
			out = append(out, u.Path)
		}
	}
	return out
}

// fleetBufPool holds the 64KB read buffers fleet requests drain bodies into;
// one buffer per in-flight request instead of one fresh allocation each.
var fleetBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 64*1024)
		return &b
	},
}

// get fetches a URL with the engine identity, returning the body ("" on any
// failure). The engine's fleet client is reused across calls (the source IP
// is stamped onto its transport per request; see the concurrency note on
// Engine).
func (e *Engine) get(ip, rawURL string) string {
	e.inst.fleetRequests.Inc()
	shard := e.shardIdx()
	e.fleetTrs[shard].SourceIP = ip
	req, err := http.NewRequest(http.MethodGet, rawURL, nil)
	if err != nil {
		return ""
	}
	req.Header.Set("User-Agent", e.Profile.UserAgent)
	resp, err := e.fleetClients[shard].Do(req)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	bufp := fleetBufPool.Get().(*[]byte)
	n, _ := resp.Body.Read(*bufp)
	body := string((*bufp)[:n])
	fleetBufPool.Put(bufp)
	return body
}
