package engines

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/browser"
	"areyouhuman/internal/chaos"
	"areyouhuman/internal/classify"
	"areyouhuman/internal/htmlmini"
	"areyouhuman/internal/journal"
	"areyouhuman/internal/report"
	"areyouhuman/internal/scriptlet"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/simnet"
	"areyouhuman/internal/telemetry"
)

// FaultSource answers fault-window queries for the engine pipeline.
// *chaos.Injector satisfies it; a nil field means a perfect world.
type FaultSource interface {
	// EngineDown reports whether this engine is inside a hard outage: no
	// crawls launch and the public API answers 503.
	EngineDown(key string, now time.Time) bool
	// EngineSlowdown is extra pipeline latency added to blacklist listing.
	EngineSlowdown(key string, now time.Time) time.Duration
}

// APITimeout is the engines' patience budget per HTTP exchange (crawls,
// resource fetches, fleet traffic). It only bites under fault injection.
const APITimeout = 30 * time.Second

// Detection records one confirmed verdict.
type Detection struct {
	URL string
	// CrawledAt is when the deciding crawl happened; ListedAt when the URL
	// hit the engine's blacklist.
	CrawledAt time.Time
	ListedAt  time.Time
	// ViaFormPath is true when the payload was reached by submitting a form
	// (the session-bypass path).
	ViaFormPath bool

	// stamp orders detections deterministically under sharded execution
	// (appends race across shards; Detections sorts by stamp).
	stamp simclock.Stamp
}

// Engine is one running anti-phishing entity.
type Engine struct {
	Profile Profile
	Queue   *report.Queue
	List    *blacklist.List

	net   *simnet.Internet
	sched simclock.EventScheduler
	mail  *report.MailSystem
	abuse *report.AbuseNotifier
	peers func(key string) *Engine
	seed  int64

	domCache *htmlmini.ParseCache
	scripts  *scriptlet.ProgramCache
	// judgeTrs/judgeClients and the fleet clients in traffic.go are reused
	// across calls with a mutated SourceIP — one instance per scheduler
	// shard, indexed by the running event's shard, so no two in-flight
	// requests ever share a transport. On the serial scheduler that
	// degenerates to the single reused instance of the PR 2 model.
	judgeTrs     []*simnet.Transport
	judgeClients []*http.Client
	fleetTrs     []*simnet.Transport
	fleetClients []*http.Client

	ipPool []string
	// detMu guards detections: under sharded execution, share events append
	// to a peer engine's slice from the sharing chain's shard.
	detMu      sync.Mutex
	detections []Detection
	community  *communitySection // non-nil for community-verified engines
	tel        *telemetry.Set
	inst       instruments
	rec        *journal.Recorder
	faults     FaultSource
	backoff    chaos.Backoff
	// TrafficPerReport is how many crawler-fleet requests one report
	// triggers (beyond the deciding bot visits). The experiment calibrates
	// this per stage; the preliminary stage uses PrelimRequests/3.
	TrafficPerReport int
	// Recheck intervals after the first crawl.
	Rechecks []time.Duration

	// Campaign streaming mode (see CampaignTune): detections flow to detSink
	// instead of accumulating, and per-report queue/community/mail state is
	// skipped so memory stays constant per URL.
	streaming bool
	detSink   func(Detection)
	hostRep   HostRep
}

// HostRep scores shared-hosting IP reputation. A free-hosting provider
// implements it over its published taint state: once co-hosted URLs on the
// same provider address are blacklisted, engines begin flagging sibling
// URLs on that address without needing to reach their payload — the
// infrastructure-reputation channel that makes human-verification cloaking
// (reCAPTCHA and friends) leaky on shared hosting.
type HostRep interface {
	// TaintScore returns the probability in [0, 1] that a benign-looking URL
	// on host gets flagged anyway on reputation grounds at virtual time now.
	// Implementations must be deterministic in virtual time (barrier-stable
	// under sharded execution) and safe for concurrent use.
	TaintScore(host string, now time.Time) float64
}

// TaintSourcePrefix marks blacklist entries contributed by the shared-IP
// reputation channel rather than a content verdict: the entry source is
// TaintSourcePrefix + the engine key.
const TaintSourcePrefix = "ip-rep:"

// hostOf extracts the host from a URL without needing it to parse fully.
func hostOf(rawURL string) string {
	s := rawURL
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' || s[i] == '?' || s[i] == '#' {
			return s[:i]
		}
	}
	return s
}

// Deps wires an engine into the simulated world.
type Deps struct {
	Net *simnet.Internet
	// Sched drives the engine's crawl pipeline. When it is sharded, the
	// engine's blacklist switches to barrier-buffered publication and its
	// HTTP clients become per-shard.
	Sched simclock.EventScheduler
	Mail  *report.MailSystem
	// AbuseContact receives PhishLabs-style notifications for engines with
	// NotifiesAbuse.
	AbuseContact string
	// Peers resolves another engine by key for feed sharing.
	Peers func(key string) *Engine
	// Seed drives every stochastic choice (confirmation draws, traffic
	// spread) so runs are reproducible.
	Seed int64
	// Telemetry, when set, receives per-engine counters (crawls, verdicts,
	// fleet volume, detections) and detection trace events.
	Telemetry *telemetry.Set
	// DOMCache and Scripts, when set, share parsed-DOM templates and compiled
	// scripts across this world's visits. Both are semantics-preserving (the
	// DOM cache hands out deep clones; script ASTs are immutable), so output
	// is bit-identical with or without them.
	DOMCache *htmlmini.ParseCache
	Scripts  *scriptlet.ProgramCache
	// Faults, when set, injects outage and slowdown windows into the crawl
	// pipeline (see internal/chaos). Leave nil for a perfect world.
	Faults FaultSource
	// Journal, when set, records report submissions, deciding crawls,
	// retries, and listings as lifecycle events (see internal/journal).
	// Like Telemetry it observes only.
	Journal *journal.Recorder
	// HostRep, when set, lets the crawl pipeline flag benign-looking URLs on
	// reputation-tainted shared-hosting addresses (see HostRep). Leave nil
	// for the classic content-only pipeline.
	HostRep HostRep
}

// instruments are the engine's pre-resolved metric handles; all nil (and
// therefore no-ops) when the world runs without telemetry.
type instruments struct {
	reports       *telemetry.Counter
	crawls        *telemetry.Counter
	fleetRequests *telemetry.Counter
	verdictPhish  *telemetry.Counter
	verdictBenign *telemetry.Counter
	detections    *telemetry.Counter
	shares        *telemetry.Counter
	retries       *telemetry.Counter
	retriesGiven  *telemetry.Counter
}

// Engine metric names.
const (
	MetricReports       = "phish_engine_reports_total"
	MetricCrawls        = "phish_engine_crawls_total"
	MetricFleetRequests = "phish_engine_fleet_requests_total"
	MetricVerdicts      = "phish_engine_verdicts_total"
	MetricDetections    = "phish_engine_detections_total"
	MetricShares        = "phish_engine_shares_total"
	MetricRetries       = "phish_engine_retries_total"
	MetricRetriesGiven  = "phish_engine_retries_exhausted_total"
)

func newInstruments(m *telemetry.Registry, engine string) instruments {
	if m == nil {
		return instruments{}
	}
	m.Describe(MetricReports, "URL reports submitted to an engine.")
	m.Describe(MetricCrawls, "Deciding bot visits (crawl-and-judge runs).")
	m.Describe(MetricFleetRequests, "Crawler-fleet HTTP requests issued against reported hosts.")
	m.Describe(MetricVerdicts, "Crawl verdicts by outcome (phish includes the via-form path).")
	m.Describe(MetricDetections, "URLs an engine added to its own blacklist.")
	m.Describe(MetricShares, "Listings propagated to partner feeds.")
	m.Describe(MetricRetries, "Crawl attempts rescheduled after an injected failure or outage window.")
	m.Describe(MetricRetriesGiven, "Crawl retry sequences abandoned after exhausting the backoff budget.")
	return instruments{
		reports:       m.Counter(MetricReports, "engine", engine),
		crawls:        m.Counter(MetricCrawls, "engine", engine),
		fleetRequests: m.Counter(MetricFleetRequests, "engine", engine),
		verdictPhish:  m.Counter(MetricVerdicts, "engine", engine, "verdict", "phish"),
		verdictBenign: m.Counter(MetricVerdicts, "engine", engine, "verdict", "benign"),
		detections:    m.Counter(MetricDetections, "engine", engine),
		shares:        m.Counter(MetricShares, "engine", engine),
		retries:       m.Counter(MetricRetries, "engine", engine),
		retriesGiven:  m.Counter(MetricRetriesGiven, "engine", engine),
	}
}

// New builds an engine from its profile.
func New(p Profile, deps Deps) *Engine {
	e := &Engine{
		Profile:          p,
		Queue:            report.NewQueue(p.Name, p.Via, deps.Sched.Clock()),
		List:             blacklist.NewList(p.Key, deps.Sched.Clock()),
		net:              deps.Net,
		sched:            deps.Sched,
		mail:             deps.Mail,
		peers:            deps.Peers,
		seed:             deps.Seed,
		tel:              deps.Telemetry,
		domCache:         deps.DOMCache,
		scripts:          deps.Scripts,
		inst:             newInstruments(deps.Telemetry.M(), p.Key),
		rec:              deps.Journal,
		faults:           deps.Faults,
		hostRep:          deps.HostRep,
		backoff:          chaos.DefaultBackoff(),
		TrafficPerReport: p.PrelimRequests / 3,
		Rechecks:         []time.Duration{30 * time.Minute, 2 * time.Hour},
	}
	if p.NotifiesAbuse && deps.Mail != nil && deps.AbuseContact != "" {
		e.abuse = &report.AbuseNotifier{
			Mail:         deps.Mail,
			From:         "notifications@phishlabs.example",
			AbuseContact: deps.AbuseContact,
		}
	}
	if p.CommunityVerified {
		e.community = newCommunitySection()
	}
	e.ipPool = make([]string, p.UniqueIPs)
	for i := range e.ipPool {
		e.ipPool[i] = fmt.Sprintf("%s%d", p.IPPrefix, i+1)
	}
	if len(e.ipPool) == 0 {
		e.ipPool = []string{"198.18.0.1"}
	}
	shards := deps.Sched.Shards()
	e.judgeTrs = make([]*simnet.Transport, shards)
	e.judgeClients = make([]*http.Client, shards)
	e.fleetTrs = make([]*simnet.Transport, shards)
	e.fleetClients = make([]*http.Client, shards)
	for i := 0; i < shards; i++ {
		e.judgeTrs[i] = &simnet.Transport{Net: deps.Net, Timeout: APITimeout}
		e.judgeClients[i] = &http.Client{
			Transport: e.judgeTrs[i],
			CheckRedirect: func(req *http.Request, via []*http.Request) error {
				return http.ErrUseLastResponse
			},
		}
		e.fleetTrs[i] = &simnet.Transport{Net: deps.Net, Timeout: APITimeout}
		e.fleetClients[i] = &http.Client{
			Transport: e.fleetTrs[i],
			CheckRedirect: func(req *http.Request, via []*http.Request) error {
				return http.ErrUseLastResponse
			},
		}
	}
	if deps.Sched.Sharded() {
		e.List.ShardBuffered(deps.Sched, shards)
		deps.Sched.OnBarrier(e.List.PublishPending)
	}
	return e
}

// shardIdx is the running event's shard (0 between events and on the serial
// scheduler) — the index into the per-shard client pools.
func (e *Engine) shardIdx() int {
	if stamp, ok := e.sched.ExecStamp(); ok {
		return stamp.Shard
	}
	return 0
}

// Detections returns confirmed detections so far, in deterministic stamp
// order (the serial execution order; under sharding, the virtual-time total
// order regardless of worker count).
func (e *Engine) Detections() []Detection {
	e.detMu.Lock()
	out := make([]Detection, len(e.detections))
	copy(out, e.detections)
	e.detMu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].stamp.Less(out[j].stamp) })
	return out
}

// recordDetection appends d stamped with the current event, under the lock.
// In streaming mode the detection flows to the sink (or is dropped) instead
// of accumulating, keeping engine memory constant per URL at campaign scale.
func (e *Engine) recordDetection(d Detection) {
	d.stamp, _ = e.sched.ExecStamp()
	if e.streaming {
		if e.detSink != nil {
			e.detSink(d)
		}
		return
	}
	e.detMu.Lock()
	e.detections = append(e.detections, d)
	e.detMu.Unlock()
}

// CampaignTune reconfigures the engine for streaming campaign studies where
// per-URL cost must be constant: no crawler-fleet traffic, no rechecks, no
// reporter/abuse notification mail, no retained report queue or community
// section, and detections streamed to sink (discarded when nil, scorable via
// List at window close) instead of accumulating. rep, when non-nil, installs
// a shared-hosting reputation source consulted on benign verdicts. Call
// before the first Report; the classic stages never call it.
func (e *Engine) CampaignTune(rep HostRep, sink func(Detection)) {
	e.TrafficPerReport = 0
	e.Rechecks = nil
	e.Profile.NotifiesReporter = false
	e.abuse = nil
	e.streaming = true
	e.detSink = sink
	if rep != nil {
		e.hostRep = rep
	}
}

// rng returns a deterministic generator scoped to this engine and a label
// (typically the reported URL), independent of scheduling order.
func (e *Engine) rng(label string) *rand.Rand {
	h := fnv.New64a()
	io.WriteString(h, e.Profile.Key)
	io.WriteString(h, "|")
	io.WriteString(h, label)
	return rand.New(rand.NewSource(e.seed ^ int64(h.Sum64())))
}

// Report submits a URL to this engine and schedules its processing.
func (e *Engine) Report(rawURL, reporter string) {
	e.inst.reports.Inc()
	if e.tel.Tracing() {
		e.tel.T().Event("engine.report", telemetry.String("engine", e.Profile.Key), telemetry.String("url", rawURL))
	}
	e.rec.Emit(journal.KindReportSubmit, journal.Fields{
		URL: rawURL, Engine: e.Profile.Key, Source: reporter,
	})
	if !e.streaming {
		// The intake queue and community section retain per-report state for
		// the classic stages' bookkeeping; a streaming campaign skips both.
		e.Queue.Submit(rawURL, reporter)
		e.enqueueCommunity(rawURL)
	}
	e.sched.After(e.Profile.RespondsWithin, e.Profile.Key+":first-crawl", func(now time.Time) {
		e.process(rawURL)
	})
	if e.abuse != nil {
		// PhishLabs notifications arrived within the first hours of
		// OpenPhish/PhishTank reports.
		e.sched.After(e.Profile.RespondsWithin+35*time.Minute, e.Profile.Key+":abuse-mail", func(time.Time) {
			e.abuse.Notify(rawURL)
		})
	}
}

// process runs the crawl pipeline for one reported URL.
func (e *Engine) process(rawURL string) {
	e.generateTraffic(rawURL)
	e.crawlAndJudge(rawURL)
	for _, d := range e.Rechecks {
		e.sched.After(d, e.Profile.Key+":recheck", func(time.Time) {
			if !e.List.Contains(rawURL) {
				e.crawlAndJudge(rawURL)
			}
		})
	}
}

// crawlAndJudge performs one bot visit and, on a confirmed verdict,
// schedules the blacklist listing, sharing, and notifications.
func (e *Engine) crawlAndJudge(rawURL string) {
	e.crawlAttempt(rawURL, 1)
}

// retryable reports whether a visit failure warrants a backoff retry. Only
// manufactured failures qualify: injected transport faults, and resolution
// failures (which, during a study, only an injected DNS fault produces —
// study deployments are never torn down mid-run). Organic errors keep their
// historical benign-verdict path, which is what makes an empty chaos plan
// byte-identical to a run without one.
func retryable(err error) bool {
	return errors.Is(err, simnet.ErrInjected) || errors.Is(err, simnet.ErrNoSuchHost)
}

// retry schedules the next attempt for rawURL under the engine's backoff
// policy. The dropped revisit is rescheduled, not lost; only an exhausted
// budget abandons the URL (until the next independent recheck).
func (e *Engine) retry(rawURL string, attempt int) {
	delay, ok := e.backoff.Delay(e.seed, e.Profile.Key+"|retry|"+rawURL, attempt)
	if !ok {
		e.inst.retriesGiven.Inc()
		return
	}
	e.inst.retries.Inc()
	if e.tel.Tracing() {
		e.tel.T().Event("engine.retry",
			telemetry.String("engine", e.Profile.Key),
			telemetry.String("url", rawURL),
			telemetry.Int("attempt", attempt),
			telemetry.Duration("delay", delay))
	}
	e.rec.Emit(journal.KindCrawlRetry, journal.Fields{
		URL: rawURL, Engine: e.Profile.Key, Attempt: attempt, Delay: delay,
	})
	e.sched.After(delay, e.Profile.Key+":retry", func(time.Time) {
		e.crawlAttempt(rawURL, attempt+1)
	})
}

func (e *Engine) crawlAttempt(rawURL string, attempt int) {
	if e.List.Contains(rawURL) {
		return
	}
	if e.faults != nil && e.faults.EngineDown(e.Profile.Key, e.sched.Clock().Now()) {
		// The crawler never launches during an outage; the visit is deferred.
		e.retry(rawURL, attempt)
		return
	}
	e.inst.crawls.Inc()
	verdict, viaForm, err := e.visit(rawURL)
	tainted := false
	if err == nil && !verdict && e.hostRep != nil {
		// The page looked benign (or hid behind a human-verification gate),
		// but the engine also scores the hosting infrastructure: on a
		// shared-hosting address already serving blacklisted siblings, the
		// URL can be flagged on reputation alone. The draw is seed-pure per
		// (engine, URL), so the decision is independent of scheduling order.
		if score := e.hostRep.TaintScore(hostOf(rawURL), e.sched.Clock().Now()); score > 0 {
			if e.rng("iprep|"+rawURL).Float64() < score {
				verdict, tainted = true, true
			}
		}
	}
	if e.rec != nil {
		v := "benign"
		switch {
		case err != nil:
			v = "error"
		case verdict:
			v = "phish"
		}
		e.rec.Emit(journal.KindCrawlVisit, journal.Fields{
			URL: rawURL, Engine: e.Profile.Key,
			Verdict: v, ViaForm: viaForm, Attempt: attempt,
		})
	}
	if err != nil && retryable(err) {
		e.retry(rawURL, attempt)
		return
	}
	if !verdict {
		e.inst.verdictBenign.Inc()
		return
	}
	e.inst.verdictPhish.Inc()
	if viaForm && e.Profile.FormPathConfirmRate < 1 {
		if e.rng(rawURL).Float64() >= e.Profile.FormPathConfirmRate {
			return // confirmation pipeline dropped it
		}
	}
	crawledAt := e.sched.Clock().Now()
	delay := e.blacklistDelay(rawURL)
	if e.faults != nil {
		// A degraded pipeline confirms as usual but lists late.
		delay += e.faults.EngineSlowdown(e.Profile.Key, crawledAt)
	}
	source := e.Profile.Key
	if tainted {
		// Reputation-grounded listings carry a distinct source so campaign
		// scoring can attribute them to the shared-IP channel.
		source = TaintSourcePrefix + e.Profile.Key
	}
	e.sched.After(delay, e.Profile.Key+":blacklist", func(now time.Time) {
		if !e.List.Add(rawURL, source) {
			return
		}
		e.recordDetection(Detection{
			URL: rawURL, CrawledAt: crawledAt, ListedAt: now, ViaFormPath: viaForm,
		})
		e.inst.detections.Inc()
		if e.tel.Tracing() {
			e.tel.T().Event("engine.blacklist",
				telemetry.String("engine", e.Profile.Key),
				telemetry.String("url", rawURL),
				telemetry.Bool("via_form", viaForm),
				telemetry.Duration("listing_delay", now.Sub(crawledAt)))
		}
		e.rec.Emit(journal.KindBlacklistAdd, journal.Fields{
			URL: rawURL, Engine: e.Profile.Key, Source: source,
			ViaForm: viaForm, Delay: now.Sub(crawledAt),
		})
		if e.community != nil {
			e.community.remove(rawURL)
		}
		e.notifyReporter(rawURL, now)
		e.share(rawURL)
	})
}

// blacklistDelay derives the listing delay for a URL: base plus per-URL
// jitter, deterministic per (engine, URL, seed).
func (e *Engine) blacklistDelay(rawURL string) time.Duration {
	jitter := time.Duration(0)
	if e.Profile.BlacklistJitter > 0 {
		jitter = time.Duration(e.rng("delay|" + rawURL).Int63n(int64(e.Profile.BlacklistJitter)))
	}
	return e.Profile.BlacklistDelay + jitter
}

func (e *Engine) notifyReporter(rawURL string, at time.Time) {
	if !e.Profile.NotifiesReporter || e.mail == nil {
		return
	}
	reporter := ""
	// The queue has been drained by processing time; notifications go to the
	// standing reporter identity used by the experiment.
	reporter = "reporter@lab.example"
	e.mail.Send(strings.ToLower(e.Profile.Key)+"@takedown.example", reporter,
		"Report outcome: "+rawURL,
		fmt.Sprintf("The reported URL was confirmed as phishing and blacklisted at %s.", at.UTC().Format(time.RFC3339)))
}

// share propagates a listing to partner feeds after the sharing delay.
// Shared entries are attributed to this engine and are not re-shared,
// keeping the PhishTank<->OpenPhish edge loop-free.
func (e *Engine) share(rawURL string) {
	if e.peers == nil {
		return
	}
	for _, key := range e.Profile.SharesTo {
		peer := e.peers(key)
		if peer == nil {
			continue
		}
		e.sched.After(e.Profile.ShareDelay, e.Profile.Key+":share:"+key, func(now time.Time) {
			if peer.List.Add(rawURL, "shared:"+e.Profile.Key) {
				peer.recordDetection(Detection{
					URL: rawURL, CrawledAt: now, ListedAt: now,
				})
				e.inst.shares.Inc()
				e.rec.Emit(journal.KindBlacklistAdd, journal.Fields{
					URL: rawURL, Engine: key, Source: "shared:" + e.Profile.Key,
				})
			}
		})
	}
}

// visit opens the URL with the engine's browser capabilities and classifies
// whatever it reaches; when the direct path stays benign and the form policy
// allows, it submits forms and classifies the results. The returned error is
// the navigation failure, if any (the caller decides whether it is worth a
// retry); a failed visit always carries a false verdict.
func (e *Engine) visit(rawURL string) (verdict, viaForm bool, err error) {
	b := browser.New(e.net, browser.Config{
		UserAgent:      e.Profile.UserAgent,
		SourceIP:       e.pickIP(rawURL, 0),
		ExecuteScripts: e.Profile.ExecuteScripts,
		AlertPolicy:    e.Profile.AlertPolicy,
		TimerBudget:    e.Profile.TimerBudget,
		Timeout:        APITimeout,
		DOMCache:       e.domCache,
		ScriptCache:    e.scripts,
	})
	page, err := b.Open(rawURL)
	if err != nil {
		return false, false, err
	}
	if e.judge(page) {
		return true, false, nil
	}
	if e.Profile.FormPolicy == FormNone {
		return false, false, nil
	}
	for _, form := range page.Forms() {
		if !e.shouldSubmit(form.Fields) {
			continue
		}
		after, err := page.Submit(form, fillProbeValues(form.Fields))
		if err != nil {
			continue
		}
		if e.judge(after) {
			return true, true, nil
		}
	}
	return false, false, nil
}

// judge classifies a settled page under the engine's power, fetching
// referenced resources with the engine's own client for fingerprinting.
func (e *Engine) judge(page *browser.Page) bool {
	shard := e.shardIdx()
	e.judgeTrs[shard].SourceIP = e.pickIP(page.URL.String(), 1)
	client := e.judgeClients[shard]
	fetch := func(res string) []byte {
		rel, err := url.Parse(res)
		if err != nil {
			return nil
		}
		resp, err := client.Get(page.URL.ResolveReference(rel).String())
		if err != nil {
			return nil
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil
		}
		return data
	}
	ev := classify.Examine(page.URL.Hostname(), page.DOM, fetch)
	return classify.Verdict(ev, e.Profile.Power)
}

// shouldSubmit applies the engine's form policy to a form's field set.
func (e *Engine) shouldSubmit(fields map[string]string) bool {
	switch e.Profile.FormPolicy {
	case FormAll:
		return true
	case FormLogin:
		for name := range fields {
			if looksLikeLoginField(name) {
				return true
			}
		}
	}
	return false
}

func looksLikeLoginField(name string) bool {
	name = strings.ToLower(name)
	for _, marker := range []string{"user", "email", "login", "identifier", "account"} {
		if strings.Contains(name, marker) {
			return true
		}
	}
	return false
}

// fillProbeValues fills username-like fields with a probe identity, as the
// paper observed in its server logs (passwords were not logged server-side;
// the probe sets one anyway, as the engines did).
func fillProbeValues(fields map[string]string) map[string]string {
	out := map[string]string{}
	for name := range fields {
		lower := strings.ToLower(name)
		switch {
		case looksLikeLoginField(name):
			out[name] = "john.smith1982@example.com"
		case strings.Contains(lower, "pass"):
			out[name] = "Probe!12345"
		}
	}
	return out
}

func (e *Engine) pickIP(label string, salt int) string {
	r := e.rng(fmt.Sprintf("ip|%s|%d", label, salt))
	return e.ipPool[r.Intn(len(e.ipPool))]
}
