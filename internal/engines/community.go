package engines

import (
	"sort"
	"sync"
	"time"

	"areyouhuman/internal/browser"
)

// PhishTank is community-driven: every submission lands in a public
// *unverified* section first (the paper's main real-world data source,
// Section 2), and only reports confirmed by the pipeline or by volunteer
// voters reach the official blacklist. Section 5.1 recounts a
// reCAPTCHA-protected URL that sat in the unverified section forever because
// no voter could confirm it — exactly what this model produces for
// evasion-protected URLs.

// PendingReport is one entry in the unverified section.
type PendingReport struct {
	URL         string
	SubmittedAt time.Time
	// VoterVisits counts volunteer review visits so far.
	VoterVisits int
	// Reports counts community submissions for this URL (the first one
	// created the entry).
	Reports int
	// Confirmations counts submissions whose reporter recognised the page
	// as phishing first-hand. CommunityVotesNeeded of them publish the URL
	// without waiting for volunteer voters.
	Confirmations int
}

// communitySection tracks the unverified queue for a community-verified
// engine.
type communitySection struct {
	mu      sync.Mutex
	pending map[string]*PendingReport
}

func newCommunitySection() *communitySection {
	return &communitySection{pending: make(map[string]*PendingReport)}
}

// add files url into the unverified section, reporting whether the entry is
// new (duplicates keep the original submission time).
func (c *communitySection) add(url string, at time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.pending[url]; dup {
		return false
	}
	c.pending[url] = &PendingReport{URL: url, SubmittedAt: at}
	return true
}

// confirm counts one community report against url's pending entry and
// returns the confirmation total so far (0 if the URL is not pending).
func (c *communitySection) confirm(url string, confirmed bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pending[url]
	if !ok {
		return 0
	}
	p.Reports++
	if confirmed {
		p.Confirmations++
	}
	return p.Confirmations
}

func (c *communitySection) remove(url string) {
	c.mu.Lock()
	delete(c.pending, url)
	c.mu.Unlock()
}

func (c *communitySection) visit(url string) {
	c.mu.Lock()
	if p, ok := c.pending[url]; ok {
		p.VoterVisits++
	}
	c.mu.Unlock()
}

func (c *communitySection) list() []PendingReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PendingReport, 0, len(c.pending))
	for _, p := range c.pending {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Unverified returns the engine's unverified-section contents (nil for
// engines without community verification).
func (e *Engine) Unverified() []PendingReport {
	if e.community == nil {
		return nil
	}
	return e.community.list()
}

// voterReviewTimes are when volunteers look at a pending submission.
var voterReviewTimes = []time.Duration{time.Hour, 6 * time.Hour, 24 * time.Hour}

// CommunityVotesNeeded is how many confirming community reports publish a
// pending URL without waiting for a volunteer voter to reproduce the phish
// themselves (PhishTank's "is a phish" vote threshold).
const CommunityVotesNeeded = 3

// enqueueCommunity files a submission into the unverified section and
// schedules volunteer reviews.
func (e *Engine) enqueueCommunity(rawURL string) {
	if e.community == nil {
		return
	}
	if e.community.add(rawURL, e.sched.Clock().Now()) {
		e.scheduleVoterReviews(rawURL)
	}
}

// scheduleVoterReviews books the volunteer looks at a newly pending URL.
func (e *Engine) scheduleVoterReviews(rawURL string) {
	for _, after := range voterReviewTimes {
		e.sched.After(after, e.Profile.Key+":voter-review", func(time.Time) {
			e.voterReview(rawURL)
		})
	}
}

// CommunityOutcome is what became of one community report.
type CommunityOutcome int

const (
	// CommunityListed: the URL is already on the official list; the report
	// is redundant and dropped.
	CommunityListed CommunityOutcome = iota
	// CommunityPending: the report was filed (or counted against an
	// existing entry) and the URL remains in the unverified section.
	CommunityPending
	// CommunityPublished: this report was the confirming vote that moved
	// the URL from the unverified section to the official list.
	CommunityPublished
)

// CommunityReport files one human report into the engine's unverified
// section — the channel a victim population feeds. confirmed marks a
// reporter who recognised the page as phishing first-hand (they saw the
// payload, or inspected the URL and know the brand); unconfirmed reports
// count but never vote a URL onto the list, which is exactly how
// human-verification evasion starves the queue: nobody who only saw the
// CAPTCHA face can confirm anything. Returns CommunityListed for engines
// without community verification. Unlike Report, this path works in
// streaming (CampaignTune) mode: the pending section holds one entry per
// distinct URL, which population studies keep bounded.
func (e *Engine) CommunityReport(rawURL string, confirmed bool) CommunityOutcome {
	if e.community == nil || e.List.Contains(rawURL) {
		return CommunityListed
	}
	e.inst.reports.Inc()
	if e.community.add(rawURL, e.sched.Clock().Now()) {
		e.scheduleVoterReviews(rawURL)
	}
	if e.community.confirm(rawURL, confirmed) >= CommunityVotesNeeded {
		e.publishCommunity(rawURL)
		return CommunityPublished
	}
	return CommunityPending
}

// publishCommunity moves rawURL from the unverified section to the official
// list: community consensus reached.
func (e *Engine) publishCommunity(rawURL string) {
	if !e.List.Add(rawURL, e.Profile.Key) {
		return
	}
	now := e.sched.Clock().Now()
	e.recordDetection(Detection{URL: rawURL, CrawledAt: now, ListedAt: now})
	e.community.remove(rawURL)
	e.share(rawURL)
}

// voterReview is one volunteer looking at a pending URL. Voters browse with
// scripts enabled but behave cautiously on suspicious pages: they dismiss
// dialogs, never type into forms, and never solve CAPTCHAs — so an
// evasion-protected page shows them only its benign face and stays
// unverified.
func (e *Engine) voterReview(rawURL string) {
	if e.community == nil || e.List.Contains(rawURL) {
		return
	}
	e.community.visit(rawURL)
	voter := browser.New(e.net, browser.Config{
		UserAgent:      "Mozilla/5.0 (X11; Linux x86_64; rv:76.0) Gecko/20100101 Firefox/76.0",
		SourceIP:       e.pickIP("voter|"+rawURL, 7),
		ExecuteScripts: true,
		AlertPolicy:    browser.AlertDismiss,
		TimerBudget:    30 * time.Second,
		DOMCache:       e.domCache,
		ScriptCache:    e.scripts,
	})
	page, err := voter.Open(rawURL)
	if err != nil {
		return
	}
	// Publication requires community consensus, which in practice tracks
	// the same confidence bar as the engine's own pipeline: obvious clones
	// get votes, scratch-built lookalikes do not (the paper's preliminary
	// test shows PhishTank never listed the scratch Gmail page).
	if e.judge(page) {
		// Votes agree: publish to the official list.
		e.publishCommunity(rawURL)
	}
}
