package engines

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Handler exposes the engine over HTTP, the way the paper interacts with the
// real entities:
//
//	POST /report        url=<...>            submit a phishing report (the
//	                                         online form / mail intake)
//	GET  /v4/lookup     ?prefix=<hex>        hash-prefix round: "yes"/"no"
//	GET  /v4/fullHashes ?prefix=<hex>        full-hash round: JSON array
//	GET  /feed                               full blacklist snapshot, one
//	                                         canonical URL per line
//	GET  /unverified                         community unverified section
//	                                         (PhishTank only), JSON
//
// Mounting the handler on a simnet host lets monitoring and third parties
// interact with the engine exactly as remote clients would.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		url := strings.TrimSpace(r.PostFormValue("url"))
		if url == "" {
			http.Error(w, "missing url", http.StatusBadRequest)
			return
		}
		reporter := r.PostFormValue("reporter")
		if reporter == "" {
			reporter = "anonymous"
		}
		e.Report(url, reporter)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "report accepted by %s\n", e.Profile.Name)
	})
	mux.HandleFunc("/v4/lookup", func(w http.ResponseWriter, r *http.Request) {
		prefix := r.URL.Query().Get("prefix")
		if prefix == "" {
			http.Error(w, "missing prefix", http.StatusBadRequest)
			return
		}
		if e.List.PrefixHit(prefix) {
			fmt.Fprintln(w, "yes")
		} else {
			fmt.Fprintln(w, "no")
		}
	})
	mux.HandleFunc("/v4/fullHashes", func(w http.ResponseWriter, r *http.Request) {
		prefix := r.URL.Query().Get("prefix")
		if prefix == "" {
			http.Error(w, "missing prefix", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		hashes := e.List.FullHashes(prefix)
		if hashes == nil {
			hashes = []string{}
		}
		json.NewEncoder(w).Encode(hashes)
	})
	mux.HandleFunc("/feed", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, entry := range e.List.Snapshot() {
			fmt.Fprintln(w, entry.URL)
		}
	})
	mux.HandleFunc("/unverified", func(w http.ResponseWriter, r *http.Request) {
		if e.community == nil {
			http.Error(w, "no unverified section", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		pending := e.Unverified()
		if pending == nil {
			pending = []PendingReport{}
		}
		json.NewEncoder(w).Encode(pending)
	})
	if e.faults == nil {
		return mux
	}
	// Under fault injection, an engine in an outage window is down on every
	// public surface, not just the crawl pipeline.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if e.faults.EngineDown(e.Profile.Key, e.sched.Clock().Now()) {
			http.Error(w, e.Profile.Name+" is temporarily unavailable", http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	})
}
