// Package engines implements the seven server-side anti-phishing entities
// the paper evaluates: Google Safe Browsing, NetCraft, APWG, OpenPhish,
// PhishTank, Microsoft Defender SmartScreen, and Yandex Safe Browsing.
//
// Each engine is the same machine — report intake, a crawler fleet, a
// content classifier, a blacklist, feed sharing — parameterised by a
// capability profile. The profiles encode what the paper's server-side log
// analysis revealed:
//
//   - only GSB's browser simulation confirms alert boxes;
//   - NetCraft submits any HTML form; OpenPhish and PhishTank fill and
//     submit login-looking forms (Section 4.1);
//   - only GSB and NetCraft run content classifiers strong enough to catch
//     the scratch-built Gmail page; YSB detected nothing at all;
//   - no engine solves CAPTCHAs;
//   - crawl volumes, unique source addresses, and the feed-sharing graph
//     are calibrated to Table 1.
package engines

import (
	"time"

	"areyouhuman/internal/browser"
	"areyouhuman/internal/classify"
	"areyouhuman/internal/report"
)

// Engine keys.
const (
	GSB         = "gsb"
	NetCraft    = "netcraft"
	APWG        = "apwg"
	OpenPhish   = "openphish"
	PhishTank   = "phishtank"
	SmartScreen = "smartscreen"
	YSB         = "ysb"
)

// Keys lists all seven engines in the paper's Table 1 order.
func Keys() []string {
	return []string{GSB, NetCraft, APWG, OpenPhish, PhishTank, SmartScreen, YSB}
}

// MainExperimentKeys lists the six engines of the main experiment (YSB was
// excluded after detecting nothing in the preliminary test).
func MainExperimentKeys() []string {
	return []string{GSB, NetCraft, APWG, OpenPhish, PhishTank, SmartScreen}
}

// FormPolicy says which forms a crawler submits.
type FormPolicy int

// Form policies.
const (
	// FormNone never submits forms.
	FormNone FormPolicy = iota
	// FormLogin submits only forms that look like credential forms (a
	// visible text/email field).
	FormLogin
	// FormAll submits any form it finds — NetCraft's observed behaviour,
	// which is what bypasses the session-based cover pages.
	FormAll
)

func (p FormPolicy) String() string {
	switch p {
	case FormNone:
		return "none"
	case FormLogin:
		return "login-forms"
	case FormAll:
		return "all-forms"
	default:
		return "unknown"
	}
}

// Profile is an engine's capability and calibration sheet.
type Profile struct {
	Key  string
	Name string

	// Report intake.
	Via report.Via
	// RespondsWithin is the delay from report submission to first crawler
	// traffic; the paper saw traffic within 30 minutes for every engine.
	RespondsWithin time.Duration

	// Crawler capabilities.
	UserAgent      string
	ExecuteScripts bool
	AlertPolicy    browser.AlertPolicy
	TimerBudget    time.Duration
	FormPolicy     FormPolicy

	// Classification.
	Power classify.Power
	// FormPathConfirmRate is the probability that a payload reached *via
	// form submission* survives the engine's confirmation pipeline. The
	// paper observed NetCraft bypassing all six session pages but
	// blacklisting only two — evidently an unreliable post-bypass pipeline.
	// Direct-path detections always confirm.
	FormPathConfirmRate float64

	// Timing.
	// BlacklistDelay is the base delay from a confirmed verdict's crawl to
	// the URL appearing on the engine's list; per-domain jitter is added on
	// top (see Engine.blacklistDelay).
	BlacklistDelay  time.Duration
	BlacklistJitter time.Duration
	// ShareDelay is the lag before a listing propagates to partner feeds.
	ShareDelay time.Duration

	// Ecosystem behaviour.
	SharesTo         []string // engine keys receiving this engine's listings
	NotifiesAbuse    bool     // triggers PhishLabs-style abuse mails
	NotifiesReporter bool     // mails the reporter about outcomes (NetCraft)
	// CommunityVerified engines (PhishTank) file every submission into a
	// public unverified section; volunteer voters publish only what they
	// can confirm themselves.
	CommunityVerified bool

	// Traffic calibration (Table 1; totals are across the 3 preliminary
	// URLs).
	PrelimRequests int
	UniqueIPs      int
	ProbeStorm     bool // OpenPhish's hunt for shells/kits/credential files
	// IPPrefix seeds the engine's crawler address pool.
	IPPrefix string
}

// Profiles returns the calibrated profile set, keyed by engine key.
func Profiles() map[string]Profile {
	ps := []Profile{
		{
			Key: GSB, Name: "Google Safe Browsing",
			Via:                 report.ViaForm,
			RespondsWithin:      12 * time.Minute,
			UserAgent:           "Mozilla/5.0 (compatible; Google-Safety; +http://www.google.com/bot.html)",
			ExecuteScripts:      true,
			AlertPolicy:         browser.AlertConfirm, // the only engine that clicks confirm
			TimerBudget:         30 * time.Second,
			FormPolicy:          FormNone,
			Power:               classify.PowerContent,
			FormPathConfirmRate: 1,
			// Listing lands ≈132 min after submission (RespondsWithin +
			// this base + half the jitter), matching the paper's measured
			// alert-box average and close to Oest et al.'s 126-minute
			// no-cloak baseline.
			BlacklistDelay:  114 * time.Minute,
			BlacklistJitter: 12 * time.Minute,
			ShareDelay:      30 * time.Minute,
			PrelimRequests:  8396, UniqueIPs: 69,
			IPPrefix: "66.249.64.",
		},
		{
			Key: NetCraft, Name: "NetCraft",
			Via:                 report.ViaForm,
			RespondsWithin:      4 * time.Minute,
			UserAgent:           "Mozilla/5.0 (compatible; NetcraftSurveyAgent/1.0; +info@netcraft.com)",
			ExecuteScripts:      true,
			AlertPolicy:         browser.AlertIgnore, // executes JS but cannot work modals
			TimerBudget:         10 * time.Second,
			FormPolicy:          FormAll,
			Power:               classify.PowerContent,
			FormPathConfirmRate: 1.0 / 3.0, // 2 of 6 bypassed session pages confirmed
			// Session-based detections landed 6 and 9 minutes after
			// submission (RespondsWithin + this base + jitter).
			BlacklistDelay:   time.Minute,
			BlacklistJitter:  5 * time.Minute,
			ShareDelay:       45 * time.Minute,
			SharesTo:         []string{GSB},
			NotifiesReporter: true,
			PrelimRequests:   6057, UniqueIPs: 63,
			IPPrefix: "52.8.120.",
		},
		{
			Key: APWG, Name: "APWG",
			Via:                 report.ViaEmail,
			RespondsWithin:      25 * time.Minute,
			UserAgent:           "Mozilla/5.0 (X11; Linux x86_64; rv:68.0) Gecko/20100101 Firefox/68.0 APWG-crawler",
			ExecuteScripts:      false,
			FormPolicy:          FormNone,
			Power:               classify.PowerFingerprint,
			FormPathConfirmRate: 1,
			BlacklistDelay:      90 * time.Minute,
			BlacklistJitter:     30 * time.Minute,
			ShareDelay:          60 * time.Minute,
			SharesTo:            []string{GSB},
			PrelimRequests:      2381, UniqueIPs: 86,
			IPPrefix: "198.18.6.",
		},
		{
			Key: OpenPhish, Name: "OpenPhish",
			Via:                 report.ViaEmail,
			RespondsWithin:      8 * time.Minute,
			UserAgent:           "Mozilla/5.0 (compatible; OpenPhishBot/2.0)",
			ExecuteScripts:      false,
			FormPolicy:          FormLogin,
			Power:               classify.PowerFingerprint,
			FormPathConfirmRate: 1,
			BlacklistDelay:      60 * time.Minute,
			BlacklistJitter:     20 * time.Minute,
			ShareDelay:          40 * time.Minute,
			SharesTo:            []string{PhishTank, GSB, APWG, SmartScreen},
			NotifiesAbuse:       true,
			PrelimRequests:      81967, UniqueIPs: 852,
			ProbeStorm: true,
			IPPrefix:   "198.18.20.",
		},
		{
			Key: PhishTank, Name: "PhishTank",
			Via:                 report.ViaEmail,
			RespondsWithin:      15 * time.Minute,
			UserAgent:           "phishtank/opendns crawler",
			ExecuteScripts:      false,
			FormPolicy:          FormLogin,
			Power:               classify.PowerFingerprint,
			FormPathConfirmRate: 1,
			BlacklistDelay:      100 * time.Minute,
			BlacklistJitter:     40 * time.Minute,
			ShareDelay:          50 * time.Minute,
			SharesTo:            []string{OpenPhish, GSB},
			NotifiesAbuse:       true,
			CommunityVerified:   true,
			PrelimRequests:      4929, UniqueIPs: 275,
			IPPrefix: "198.18.40.",
		},
		{
			Key: SmartScreen, Name: "Microsoft Defender SmartScreen",
			Via:                 report.ViaForm,
			RespondsWithin:      20 * time.Minute,
			UserAgent:           "Mozilla/5.0 (Windows NT 10.0; Win64; x64) SmartScreen/1.0",
			ExecuteScripts:      true,
			AlertPolicy:         browser.AlertIgnore,
			TimerBudget:         10 * time.Second,
			FormPolicy:          FormNone,
			Power:               classify.PowerFingerprint,
			FormPathConfirmRate: 1,
			BlacklistDelay:      150 * time.Minute,
			BlacklistJitter:     60 * time.Minute,
			ShareDelay:          90 * time.Minute,
			SharesTo:            []string{GSB},
			PrelimRequests:      1590, UniqueIPs: 81,
			IPPrefix: "131.253.14.",
		},
		{
			Key: YSB, Name: "Yandex Safe Browsing",
			Via:                 report.ViaForm,
			RespondsWithin:      28 * time.Minute,
			UserAgent:           "Mozilla/5.0 (compatible; YandexBot/3.0; +http://yandex.com/bots)",
			ExecuteScripts:      false,
			FormPolicy:          FormNone,
			Power:               classify.PowerNone, // detected nothing, ever
			FormPathConfirmRate: 1,
			BlacklistDelay:      4 * time.Hour,
			BlacklistJitter:     time.Hour,
			PrelimRequests:      82, UniqueIPs: 34,
			IPPrefix: "5.255.253.",
		},
	}
	out := make(map[string]Profile, len(ps))
	for _, p := range ps {
		out[p.Key] = p
	}
	return out
}
