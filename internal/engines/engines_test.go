package engines

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"areyouhuman/internal/browser"
	"areyouhuman/internal/classify"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/phishkit"
	"areyouhuman/internal/report"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/simnet"
	"areyouhuman/internal/sitegen"
	"areyouhuman/internal/weblog"
)

// world is a minimal deployment for engine tests: one host serving a fake
// site with a phishing URL protected by a technique.
type world struct {
	net   *simnet.Internet
	sched *simclock.Scheduler
	mail  *report.MailSystem
	log   *weblog.Log
	url   string
}

const phishPath = "/wp-content/secure/login.php"

func newWorld(t *testing.T, technique evasion.Technique, brand phishkit.Brand) *world {
	t.Helper()
	clock := simclock.New(simclock.Epoch)
	w := &world{
		net:   simnet.New(nil),
		sched: simclock.NewScheduler(clock),
		mail:  report.NewMailSystem(clock),
		log:   weblog.New(clock),
	}
	kit, err := phishkit.Generate(brand)
	if err != nil {
		t.Fatal(err)
	}
	site := sitegen.Generate("garden-tools.example", sitegen.Config{Seed: 1})
	payload := kit.Handler(nil)
	wrapped, err := evasion.Wrap(technique, evasion.Options{
		Payload: payload,
		Benign:  site.Handler(),
		Log:     w.log.ServeLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", site.Handler())
	mux.Handle("/assets/", payload)
	mux.Handle(kit.CollectPath, payload)
	mux.Handle(phishPath, wrapped)
	w.net.Register("garden-tools.example", w.log.Middleware(mux))
	w.url = "http://garden-tools.example" + phishPath
	return w
}

func (w *world) engine(key string, mutate func(*Profile)) *Engine {
	p := Profiles()[key]
	if mutate != nil {
		mutate(&p)
	}
	var eng *Engine
	eng = New(p, Deps{
		Net: w.net, Sched: w.sched, Mail: w.mail,
		AbuseContact: "abuse@hosting.example",
		Seed:         42,
	})
	// Keep unit tests fast: modest fleet traffic.
	eng.TrafficPerReport = 40
	return eng
}

func TestProfilesComplete(t *testing.T) {
	t.Parallel()
	ps := Profiles()
	if len(ps) != 7 {
		t.Fatalf("profiles = %d, want 7", len(ps))
	}
	for _, key := range Keys() {
		p, ok := ps[key]
		if !ok {
			t.Fatalf("missing profile %s", key)
		}
		if p.Name == "" || p.UserAgent == "" || p.UniqueIPs == 0 || p.PrelimRequests == 0 {
			t.Fatalf("incomplete profile %+v", p)
		}
	}
	if len(MainExperimentKeys()) != 6 {
		t.Fatal("main experiment has 6 engines (YSB excluded)")
	}
	for _, key := range MainExperimentKeys() {
		if key == YSB {
			t.Fatal("YSB must be excluded from the main experiment")
		}
	}
}

func TestOnlyGSBConfirmsAlerts(t *testing.T) {
	t.Parallel()
	ps := Profiles()
	for key, p := range ps {
		if key == GSB {
			if p.AlertPolicy != browser.AlertConfirm {
				t.Fatal("GSB must confirm alert boxes")
			}
			continue
		}
		if p.AlertPolicy == browser.AlertConfirm {
			t.Fatalf("%s must not confirm alert boxes", key)
		}
	}
}

func TestNakedKitDetectedByGSB(t *testing.T) {
	t.Parallel()
	w := newWorld(t, evasion.None, phishkit.PayPal)
	eng := w.engine(GSB, nil)
	eng.Report(w.url, "reporter@lab.example")
	w.sched.RunFor(24 * time.Hour)

	if !eng.List.Contains(w.url) {
		t.Fatal("GSB should blacklist the naked PayPal kit")
	}
	dets := eng.Detections()
	if len(dets) != 1 || dets[0].ViaFormPath {
		t.Fatalf("detections = %+v", dets)
	}
	// Delay from report to listing ≈ RespondsWithin + BlacklistDelay + jitter.
	delta := dets[0].ListedAt.Sub(simclock.Epoch)
	if delta < 2*time.Hour || delta > 3*time.Hour {
		t.Fatalf("time-to-blacklist = %v, want roughly 126min+", delta)
	}
}

func TestNakedGmailOnlyContentPower(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		key  string
		want bool
	}{
		{GSB, true}, {NetCraft, true}, {OpenPhish, false}, {APWG, false}, {YSB, false},
	} {
		w := newWorld(t, evasion.None, phishkit.Gmail)
		eng := w.engine(tc.key, nil)
		eng.Report(w.url, "r@lab.example")
		w.sched.RunFor(48 * time.Hour)
		if got := eng.List.Contains(w.url); got != tc.want {
			t.Errorf("%s detects scratch Gmail = %v, want %v", tc.key, got, tc.want)
		}
	}
}

func TestAlertBoxOnlyGSB(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		key  string
		want bool
	}{
		{GSB, true}, {NetCraft, false}, {SmartScreen, false}, {OpenPhish, false},
	} {
		w := newWorld(t, evasion.AlertBox, phishkit.PayPal)
		eng := w.engine(tc.key, nil)
		eng.Report(w.url, "r@lab.example")
		w.sched.RunFor(48 * time.Hour)
		if got := eng.List.Contains(w.url); got != tc.want {
			t.Errorf("%s detects alert-box page = %v, want %v", tc.key, got, tc.want)
		}
	}
}

func TestSessionBasedNetCraftBypassesAndMayDetect(t *testing.T) {
	t.Parallel()
	// Force the confirmation pipeline to 1.0 to assert the bypass+detect
	// path deterministically.
	w := newWorld(t, evasion.SessionBased, phishkit.Facebook)
	eng := w.engine(NetCraft, func(p *Profile) { p.FormPathConfirmRate = 1 })
	eng.Report(w.url, "r@lab.example")
	w.sched.RunFor(24 * time.Hour)

	if len(w.log.PayloadServes()) == 0 {
		t.Fatal("NetCraft (FormAll) must bypass the session cover and reach the payload")
	}
	if !eng.List.Contains(w.url) {
		t.Fatal("with confirm rate 1 the bypassed payload must be blacklisted")
	}
	dets := eng.Detections()
	if len(dets) != 1 || !dets[0].ViaFormPath {
		t.Fatalf("detections = %+v, want one via form path", dets)
	}
	// NetCraft session detections landed 6 and 9 minutes after submission.
	delta := dets[0].ListedAt.Sub(simclock.Epoch)
	if delta < 5*time.Minute || delta > 15*time.Minute {
		t.Fatalf("NetCraft time-to-blacklist = %v, want single-digit minutes", delta)
	}
}

func TestSessionBasedConfirmRateZeroBypassesWithoutListing(t *testing.T) {
	t.Parallel()
	w := newWorld(t, evasion.SessionBased, phishkit.Facebook)
	eng := w.engine(NetCraft, func(p *Profile) { p.FormPathConfirmRate = 0 })
	eng.Report(w.url, "r@lab.example")
	w.sched.RunFor(24 * time.Hour)
	if len(w.log.PayloadServes()) == 0 {
		t.Fatal("bypass should still happen")
	}
	if eng.List.Contains(w.url) {
		t.Fatal("confirm rate 0 must never list")
	}
}

func TestSessionBasedLoginFormPolicyDoesNotBypass(t *testing.T) {
	t.Parallel()
	for _, key := range []string{OpenPhish, PhishTank, GSB, APWG, SmartScreen} {
		w := newWorld(t, evasion.SessionBased, phishkit.PayPal)
		eng := w.engine(key, nil)
		eng.Report(w.url, "r@lab.example")
		w.sched.RunFor(24 * time.Hour)
		if n := len(w.log.PayloadServes()); n != 0 {
			t.Errorf("%s reached the session payload %d times; cover form has no login field", key, n)
		}
		if eng.List.Contains(w.url) {
			t.Errorf("%s must not detect the session-protected page", key)
		}
	}
}

func TestFeedSharingNetCraftToGSB(t *testing.T) {
	t.Parallel()
	w := newWorld(t, evasion.None, phishkit.PayPal)
	registry := map[string]*Engine{}
	deps := Deps{
		Net: w.net, Sched: w.sched, Mail: w.mail, Seed: 42,
		Peers: func(key string) *Engine { return registry[key] },
	}
	nc := New(Profiles()[NetCraft], deps)
	nc.TrafficPerReport = 20
	gsbEng := New(Profiles()[GSB], deps)
	gsbEng.TrafficPerReport = 20
	registry[NetCraft] = nc
	registry[GSB] = gsbEng

	nc.Report(w.url, "r@lab.example")
	w.sched.RunFor(24 * time.Hour)
	if !nc.List.Contains(w.url) {
		t.Fatal("NetCraft should list the naked kit")
	}
	if !gsbEng.List.Contains(w.url) {
		t.Fatal("listing should propagate NetCraft -> GSB")
	}
	if e, _ := gsbEng.List.Lookup(w.url); !strings.HasPrefix(e.Source, "shared:") {
		t.Fatalf("GSB entry source = %q, want shared attribution", e.Source)
	}
}

func TestAbuseNotificationFromOpenPhish(t *testing.T) {
	t.Parallel()
	w := newWorld(t, evasion.None, phishkit.PayPal)
	eng := w.engine(OpenPhish, nil)
	eng.Report(w.url, "r@lab.example")
	w.sched.RunFor(6 * time.Hour)
	inbox := w.mail.Inbox("abuse@hosting.example")
	if len(inbox) != 1 || !strings.Contains(inbox[0].Body, w.url) {
		t.Fatalf("abuse inbox = %+v", inbox)
	}
}

func TestReporterNotificationFromNetCraft(t *testing.T) {
	t.Parallel()
	w := newWorld(t, evasion.None, phishkit.PayPal)
	eng := w.engine(NetCraft, nil)
	eng.Report(w.url, "reporter@lab.example")
	w.sched.RunFor(24 * time.Hour)
	inbox := w.mail.Inbox("reporter@lab.example")
	if len(inbox) == 0 {
		t.Fatal("NetCraft must mail the reporter about the outcome")
	}
}

func TestTrafficVolumeAndConcentration(t *testing.T) {
	t.Parallel()
	w := newWorld(t, evasion.None, phishkit.PayPal)
	eng := w.engine(GSB, nil)
	eng.TrafficPerReport = 500
	eng.Report(w.url, "r@lab.example")
	w.sched.RunFor(48 * time.Hour)

	reqs := w.log.Requests()
	if reqs < 500 || reqs > 600 {
		t.Fatalf("host saw %d requests, want ~500 fleet + bot visits", reqs)
	}
	conc := w.log.TrafficConcentration(2*time.Hour + 15*time.Minute)
	if conc < 0.8 {
		t.Fatalf("traffic concentration in first ~2h = %v, want ≥0.8", conc)
	}
}

func TestOpenPhishProbeStorm(t *testing.T) {
	t.Parallel()
	w := newWorld(t, evasion.None, phishkit.PayPal)
	eng := w.engine(OpenPhish, nil)
	eng.TrafficPerReport = 600
	eng.Report(w.url, "r@lab.example")
	w.sched.RunFor(48 * time.Hour)

	probes := w.log.ProbeReport()
	if probes[weblog.ProbeWebShell] == 0 || probes[weblog.ProbeKitArchive] == 0 || probes[weblog.ProbeCredentials] == 0 {
		t.Fatalf("probe report = %v, want all three probe kinds", probes)
	}
}

func TestYSBDetectsNothing(t *testing.T) {
	t.Parallel()
	w := newWorld(t, evasion.None, phishkit.PayPal)
	eng := w.engine(YSB, nil)
	eng.Report(w.url, "r@lab.example")
	w.sched.RunFor(72 * time.Hour)
	if eng.List.Len() != 0 {
		t.Fatal("YSB must never detect anything")
	}
}

func TestRecaptchaNobodyDetects(t *testing.T) {
	t.Parallel()
	// Without a CAPTCHA service the widget/verifier can't even be built —
	// use the full wiring from the evasion tests via a simple always-false
	// verifier to prove no engine passes the gate.
	clock := simclock.New(simclock.Epoch)
	w := &world{
		net:   simnet.New(nil),
		sched: simclock.NewScheduler(clock),
		mail:  report.NewMailSystem(clock),
		log:   weblog.New(clock),
	}
	kit, _ := phishkit.Generate(phishkit.PayPal)
	site := sitegen.Generate("garden-tools.example", sitegen.Config{Seed: 1})
	wrapped, err := evasion.Wrap(evasion.Recaptcha, evasion.Options{
		Payload:     kit.Handler(nil),
		Benign:      site.Handler(),
		Log:         w.log.ServeLogger(),
		WidgetHTML:  `<div class="g-recaptcha" data-sitekey="k" data-callback="capback" data-endpoint="http://nowhere.example/issue"></div>`,
		VerifyToken: func(string) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", site.Handler())
	mux.Handle(phishPath, wrapped)
	w.net.Register("garden-tools.example", w.log.Middleware(mux))
	w.url = "http://garden-tools.example" + phishPath

	for _, key := range MainExperimentKeys() {
		eng := w.engine(key, nil)
		eng.Report(w.url, "r@lab.example")
	}
	w.sched.RunFor(72 * time.Hour)
	if n := len(w.log.PayloadServes()); n != 0 {
		t.Fatalf("payload served %d times; no engine can solve CAPTCHA", n)
	}
}

func TestEngineRNGIndependentOfOrder(t *testing.T) {
	t.Parallel()
	w := newWorld(t, evasion.None, phishkit.PayPal)
	e := w.engine(NetCraft, nil)
	a := e.rng("http://x.example/a").Float64()
	_ = e.rng("http://x.example/b").Float64()
	a2 := e.rng("http://x.example/a").Float64()
	if a != a2 {
		t.Fatal("per-URL RNG must not depend on draw order")
	}
}

func TestFormPolicyString(t *testing.T) {
	t.Parallel()
	if FormNone.String() != "none" || FormLogin.String() != "login-forms" || FormAll.String() != "all-forms" {
		t.Fatal("form policy strings wrong")
	}
}

func TestClassifierPowerAssignments(t *testing.T) {
	t.Parallel()
	ps := Profiles()
	if ps[GSB].Power != classify.PowerContent || ps[NetCraft].Power != classify.PowerContent {
		t.Fatal("GSB and NetCraft must run content classifiers")
	}
	if ps[YSB].Power != classify.PowerNone {
		t.Fatal("YSB must have no effective classifier")
	}
	for _, key := range []string{APWG, OpenPhish, PhishTank, SmartScreen} {
		if ps[key].Power != classify.PowerFingerprint {
			t.Fatalf("%s must be fingerprint-only", key)
		}
	}
}

func TestPhishTankCommunityPublishesNakedKit(t *testing.T) {
	t.Parallel()
	w := newWorld(t, evasion.None, phishkit.PayPal)
	eng := w.engine(PhishTank, nil)
	eng.Report(w.url, "r@lab.example")
	w.sched.RunFor(48 * time.Hour)
	if !eng.List.Contains(w.url) {
		t.Fatal("naked kit should be verified and published")
	}
	if len(eng.Unverified()) != 0 {
		t.Fatalf("unverified section = %+v, want empty after publication", eng.Unverified())
	}
}

func TestPhishTankEvasionProtectedStaysUnverified(t *testing.T) {
	t.Parallel()
	// The Section 5.1 anecdote: a protected URL submitted to PhishTank sits
	// in the public unverified section forever because neither the pipeline
	// nor the voters can confirm it.
	w := newWorld(t, evasion.AlertBox, phishkit.PayPal)
	eng := w.engine(PhishTank, nil)
	eng.Report(w.url, "r@lab.example")
	w.sched.RunFor(72 * time.Hour)
	if eng.List.Contains(w.url) {
		t.Fatal("protected URL must not reach the official list")
	}
	pending := eng.Unverified()
	if len(pending) != 1 || pending[0].URL != w.url {
		t.Fatalf("unverified section = %+v, want the submitted URL", pending)
	}
	if pending[0].VoterVisits == 0 {
		t.Fatal("voters should have looked at the pending URL")
	}
}

func TestNonCommunityEngineHasNoUnverifiedSection(t *testing.T) {
	t.Parallel()
	w := newWorld(t, evasion.None, phishkit.PayPal)
	eng := w.engine(GSB, nil)
	eng.Report(w.url, "r@lab.example")
	w.sched.RunFor(24 * time.Hour)
	if eng.Unverified() != nil {
		t.Fatal("GSB has no community section")
	}
}

func TestEngineSurvivesHostTakedown(t *testing.T) {
	t.Parallel()
	// A crawl against a downed host must not crash or list anything.
	w := newWorld(t, evasion.None, phishkit.PayPal)
	eng := w.engine(GSB, nil)
	w.net.TakeDown("garden-tools.example")
	eng.Report(w.url, "r@lab.example")
	w.sched.RunFor(24 * time.Hour)
	if eng.List.Len() != 0 {
		t.Fatal("a dead host cannot be classified")
	}
}

func TestRecheckDetectsLateExposure(t *testing.T) {
	t.Parallel()
	// The site starts cloaking-protected with the engine's UA blocked, then
	// the attacker breaks their cloak (serves payload to everyone) before
	// the 2h recheck: the engine's re-crawl must catch it.
	clock := simclock.New(simclock.Epoch)
	w := &world{
		net:   simnet.New(nil),
		sched: simclock.NewScheduler(clock),
		mail:  report.NewMailSystem(clock),
		log:   weblog.New(clock),
	}
	kit, _ := phishkit.Generate(phishkit.PayPal)
	site := sitegen.Generate("garden-tools.example", sitegen.Config{Seed: 1})
	payload := kit.Handler(nil)

	gate := true // while true, serve benign to everyone
	toggled := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if gate {
			site.Handler().ServeHTTP(rw, r)
			return
		}
		payload.ServeHTTP(rw, r)
	})
	mux := http.NewServeMux()
	mux.Handle("/", site.Handler())
	mux.Handle("/assets/", payload)
	mux.Handle(phishPath, toggled)
	w.net.Register("garden-tools.example", w.log.Middleware(mux))
	w.url = "http://garden-tools.example" + phishPath

	eng := w.engine(GSB, nil)
	eng.Report(w.url, "r@lab.example")
	w.sched.After(time.Hour, "break-cloak", func(time.Time) { gate = false })
	w.sched.RunFor(24 * time.Hour)

	if !eng.List.Contains(w.url) {
		t.Fatal("the 2h recheck should catch the newly exposed payload")
	}
	dets := eng.Detections()
	if len(dets) != 1 || dets[0].CrawledAt.Before(simclock.Epoch.Add(time.Hour)) {
		t.Fatalf("detection should come from a recheck after the cloak broke: %+v", dets)
	}
}

func TestDetectionsReturnsCopy(t *testing.T) {
	t.Parallel()
	w := newWorld(t, evasion.None, phishkit.PayPal)
	eng := w.engine(GSB, nil)
	eng.Report(w.url, "r@lab.example")
	w.sched.RunFor(24 * time.Hour)
	dets := eng.Detections()
	if len(dets) == 0 {
		t.Fatal("expected a detection")
	}
	dets[0].URL = "mutated"
	if eng.Detections()[0].URL == "mutated" {
		t.Fatal("Detections must return a copy")
	}
}

func TestBlacklistDelayDeterministicPerURL(t *testing.T) {
	t.Parallel()
	w := newWorld(t, evasion.None, phishkit.PayPal)
	a := w.engine(GSB, nil)
	b := w.engine(GSB, nil)
	if a.blacklistDelay("https://x.example/1") != b.blacklistDelay("https://x.example/1") {
		t.Fatal("delay must be deterministic per (engine, URL, seed)")
	}
	if a.blacklistDelay("https://x.example/1") == a.blacklistDelay("https://x.example/2") &&
		a.blacklistDelay("https://x.example/2") == a.blacklistDelay("https://x.example/3") {
		t.Fatal("jitter should vary across URLs")
	}
}
