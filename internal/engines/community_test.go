package engines

import (
	"net/http"
	"testing"
	"time"

	"areyouhuman/internal/evasion"
	"areyouhuman/internal/phishkit"
	"areyouhuman/internal/report"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/simnet"
	"areyouhuman/internal/sitegen"
	"areyouhuman/internal/weblog"
)

// newEvasionWorld is newWorld with full evasion wiring: reCAPTCHA needs a
// widget and verifier (here one nobody can pass, like the real service
// refuses crawlers).
func newEvasionWorld(t *testing.T, technique evasion.Technique) *world {
	t.Helper()
	clock := simclock.New(simclock.Epoch)
	w := &world{
		net:   simnet.New(nil),
		sched: simclock.NewScheduler(clock),
		mail:  report.NewMailSystem(clock),
		log:   weblog.New(clock),
	}
	kit, err := phishkit.Generate(phishkit.PayPal)
	if err != nil {
		t.Fatal(err)
	}
	site := sitegen.Generate("garden-tools.example", sitegen.Config{Seed: 1})
	wrapped, err := evasion.Wrap(technique, evasion.Options{
		Payload:     kit.Handler(nil),
		Benign:      site.Handler(),
		Log:         w.log.ServeLogger(),
		WidgetHTML:  `<div class="g-recaptcha" data-sitekey="k" data-callback="capback" data-endpoint="http://nowhere.example/issue"></div>`,
		VerifyToken: func(string) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", site.Handler())
	mux.Handle(phishPath, wrapped)
	w.net.Register("garden-tools.example", w.log.Middleware(mux))
	w.url = "http://garden-tools.example" + phishPath
	return w
}

// TestCommunityQueueHeterogeneousReporters drives the unverified section
// with reporter cohorts of different propensity and confirmation ability —
// the population-model contract. Alert-box pages expose their payload to
// victims who confirm the alert, so a high-propensity cohort accumulates
// confirming votes and clears the queue; reCAPTCHA pages show every
// reporter only the challenge face, so no report ever confirms and the URL
// sits unverified forever — the paper's 0-detection headline for
// human-verification evasion.
func TestCommunityQueueHeterogeneousReporters(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name      string
		technique evasion.Technique
		reports   int
		// confirmed: the cohort's reporters saw the payload first-hand
		// (possible for alert-box victims, impossible behind reCAPTCHA).
		confirmed   bool
		wantListed  bool
		wantPending bool
	}{
		{
			name:      "alertbox high-propensity cohort clears the queue",
			technique: evasion.AlertBox,
			reports:   5, confirmed: true,
			wantListed: true, wantPending: false,
		},
		{
			name:      "alertbox below vote threshold stays pending",
			technique: evasion.AlertBox,
			reports:   CommunityVotesNeeded - 1, confirmed: true,
			wantListed: false, wantPending: true,
		},
		{
			name:      "recaptcha high-propensity cohort cannot confirm",
			technique: evasion.Recaptcha,
			reports:   12, confirmed: false,
			wantListed: false, wantPending: true,
		},
		{
			name:      "recaptcha low-propensity cohort barely reports",
			technique: evasion.Recaptcha,
			reports:   1, confirmed: false,
			wantListed: false, wantPending: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			w := newEvasionWorld(t, tc.technique)
			eng := w.engine(PhishTank, nil)
			published := 0
			for i := 0; i < tc.reports; i++ {
				// Spread reports over the first day, like a population's
				// visit cadence would.
				i := i
				w.sched.After(time.Duration(i)*time.Hour, "community-report", func(time.Time) {
					if eng.CommunityReport(w.url, tc.confirmed) == CommunityPublished {
						published++
					}
				})
			}
			w.sched.RunFor(72 * time.Hour)

			if got := eng.List.Contains(w.url); got != tc.wantListed {
				t.Errorf("listed = %v, want %v", got, tc.wantListed)
			}
			pending := eng.Unverified()
			if tc.wantPending {
				if len(pending) != 1 || pending[0].URL != w.url {
					t.Fatalf("unverified section = %+v, want the reported URL", pending)
				}
				if pending[0].Reports != tc.reports {
					t.Errorf("pending reports = %d, want %d", pending[0].Reports, tc.reports)
				}
				if pending[0].Confirmations != 0 && !tc.confirmed {
					t.Errorf("unconfirmed cohort produced %d confirmations", pending[0].Confirmations)
				}
				if pending[0].VoterVisits == 0 {
					t.Error("voters never looked at the pending URL")
				}
			} else if len(pending) != 0 {
				t.Errorf("unverified section = %+v, want empty", pending)
			}
			if tc.wantListed && published != 1 {
				t.Errorf("published outcomes = %d, want exactly 1", published)
			}
		})
	}
}

// TestCommunityReportAfterListingIsDropped: once the URL is on the official
// list, further community reports are redundant.
func TestCommunityReportAfterListingIsDropped(t *testing.T) {
	t.Parallel()
	w := newEvasionWorld(t, evasion.AlertBox)
	eng := w.engine(PhishTank, nil)
	for i := 0; i < CommunityVotesNeeded; i++ {
		if got := eng.CommunityReport(w.url, true); i < CommunityVotesNeeded-1 && got != CommunityPending {
			t.Fatalf("report %d outcome = %v, want pending", i, got)
		}
	}
	if !eng.List.Contains(w.url) {
		t.Fatal("threshold reached, URL should be listed")
	}
	if got := eng.CommunityReport(w.url, true); got != CommunityListed {
		t.Fatalf("post-listing report outcome = %v, want CommunityListed", got)
	}
}

// TestCommunityReportNonCommunityEngine: engines without a community
// section drop the report.
func TestCommunityReportNonCommunityEngine(t *testing.T) {
	t.Parallel()
	w := newEvasionWorld(t, evasion.AlertBox)
	eng := w.engine(GSB, nil)
	if got := eng.CommunityReport(w.url, true); got != CommunityListed {
		t.Fatalf("GSB CommunityReport = %v, want CommunityListed (no-op)", got)
	}
	if eng.List.Contains(w.url) {
		t.Fatal("no-op report must not list anything")
	}
}
