package journal

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// The Chrome trace-event exporter renders a journal in the format Perfetto
// and chrome://tracing load: one process per replica, one thread per span
// (URL lifecycle, stage, fault window), instant events for lifecycle points,
// and complete ("X") events for stage and fault-window intervals.
//
// Output is deterministic: pids are replica indices, tids are assigned in
// span first-appearance order, args maps are key-sorted by encoding/json,
// and timestamps are microseconds of virtual time relative to the journal's
// earliest event.

type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Cat  string            `json:"cat,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// spanThreadLabel names the exporter thread for a span from any of its
// events.
func spanThreadLabel(ev Event) string {
	switch {
	case ev.URL != "":
		return ev.URL
	case ev.Stage != "":
		return "stage " + ev.Stage
	case ev.Fault != "":
		return "fault " + ev.Fault
	case ev.Domain != "":
		return "host " + ev.Domain
	default:
		return "span " + ev.Span
	}
}

func traceArgs(ev Event) map[string]string {
	args := map[string]string{"id": ev.ID, "seq": strconv.FormatUint(ev.Seq, 10)}
	if ev.Parent != "" {
		args["parent"] = ev.Parent
	}
	for _, kv := range [...][2]string{
		{"url", ev.URL}, {"domain", ev.Domain}, {"brand", ev.Brand},
		{"technique", ev.Technique}, {"engine", ev.Engine}, {"source", ev.Source},
		{"method", ev.Method}, {"verdict", ev.Verdict}, {"stage", ev.Stage},
		{"fault", ev.Fault}, {"fault_kind", ev.FaultKind}, {"target", ev.Target},
	} {
		if kv[1] != "" {
			args[kv[0]] = kv[1]
		}
	}
	if ev.ViaForm {
		args["via_form"] = "true"
	}
	if ev.Attempt != 0 {
		args["attempt"] = strconv.Itoa(ev.Attempt)
	}
	if ev.DelayS != 0 {
		args["delay_s"] = strconv.FormatFloat(ev.DelayS, 'g', -1, 64)
	}
	return args
}

// WriteChromeTrace exports events as a Chrome trace-event JSON document.
func WriteChromeTrace(w io.Writer, events []Event) error {
	if len(events) == 0 {
		return json.NewEncoder(w).Encode(chromeTrace{DisplayTimeUnit: "ms"})
	}
	base := events[0].Sim
	maxSim := base
	for _, ev := range events {
		if ev.Sim.Before(base) {
			base = ev.Sim
		}
		if ev.Sim.After(maxSim) {
			maxSim = ev.Sim
		}
	}
	ts := func(t time.Time) int64 { return t.Sub(base).Microseconds() }

	// Assign thread ids per (replica, span) in first-appearance order, and
	// collect replica process ids in first-appearance order.
	type threadKey struct {
		replica int
		span    string
	}
	tids := make(map[threadKey]int)
	nextTid := make(map[int]int)
	var meta []traceEvent
	seenPid := make(map[int]bool)
	for _, ev := range events {
		if !seenPid[ev.Replica] {
			seenPid[ev.Replica] = true
			meta = append(meta, traceEvent{
				Name: "process_name", Ph: "M", Pid: ev.Replica,
				Args: map[string]string{"name": fmt.Sprintf("replica %d", ev.Replica)},
			})
		}
		key := threadKey{ev.Replica, ev.Span}
		if _, ok := tids[key]; !ok {
			nextTid[ev.Replica]++
			tids[key] = nextTid[ev.Replica]
			meta = append(meta, traceEvent{
				Name: "thread_name", Ph: "M", Pid: ev.Replica, Tid: tids[key],
				Args: map[string]string{"name": spanThreadLabel(ev)},
			})
		}
	}

	out := make([]traceEvent, 0, len(events)+len(meta))
	out = append(out, meta...)
	// Interval pairing: opens wait (keyed by span) for their close; the X
	// event lands at the close's stream position. Unclosed opens run to the
	// journal's horizon and land at the end, in open order.
	type openInterval struct {
		ev  Event
		tid int
	}
	opens := make(map[threadKey]openInterval)
	var openOrder []threadKey
	for _, ev := range events {
		key := threadKey{ev.Replica, ev.Span}
		tid := tids[key]
		switch ev.Kind {
		case KindStageStart, KindFaultWindowOpen:
			opens[key] = openInterval{ev: ev, tid: tid}
			openOrder = append(openOrder, key)
		case KindStageEnd, KindFaultWindowClose:
			if op, ok := opens[key]; ok {
				delete(opens, key)
				out = append(out, traceEvent{
					Name: spanThreadLabel(op.ev), Ph: "X", Cat: op.ev.Kind,
					Pid: ev.Replica, Tid: tid,
					Ts: ts(op.ev.Sim), Dur: ev.Sim.Sub(op.ev.Sim).Microseconds(),
					Args: traceArgs(op.ev),
				})
			}
		default:
			out = append(out, traceEvent{
				Name: ev.Kind, Ph: "i", Cat: ev.Kind, S: "t",
				Pid: ev.Replica, Tid: tid, Ts: ts(ev.Sim), Args: traceArgs(ev),
			})
		}
	}
	for _, key := range openOrder {
		op, ok := opens[key]
		if !ok {
			continue
		}
		out = append(out, traceEvent{
			Name: spanThreadLabel(op.ev), Ph: "X", Cat: op.ev.Kind,
			Pid: op.ev.Replica, Tid: op.tid,
			Ts: ts(op.ev.Sim), Dur: maxSim.Sub(op.ev.Sim).Microseconds(),
			Args: traceArgs(op.ev),
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(chromeTrace{DisplayTimeUnit: "ms", TraceEvents: out}); err != nil {
		return fmt.Errorf("journal: encoding chrome trace: %w", err)
	}
	return nil
}
