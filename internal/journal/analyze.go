package journal

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Timeline is one URL's reconstructed lifecycle within a stage section.
type Timeline struct {
	URL       string
	Domain    string
	Brand     string
	Technique string
	// Engine is the engine the URL was reported to.
	Engine  string
	Replica int

	Deployed   bool
	DeployedAt time.Time
	Reported   bool
	ReportedAt time.Time
	// Listed reports a first-party listing by the reported engine; shared
	// propagation lands in SharedTo instead.
	Listed     bool
	ListedAt   time.Time
	ViaForm    bool
	ListingLag time.Duration // ListedAt - ReportedAt
	Seen       bool
	SeenAt     time.Time
	SeenMethod string
	TakenDown  bool
	DownAt     time.Time

	Visits        int // deciding bot visits
	PhishVerdicts int
	Retries       int
	PayloadServes int
	SharedTo      []string

	// Events are the raw journal lines of this URL's span, in stream order.
	Events []Event
}

// Section is one stage's worth of journal, bracketed by stage_start and
// stage_end markers. Ablation re-runs of a stage produce further sections
// with the same stage name; Study.Section returns the first.
type Section struct {
	Stage   string
	Replica int
	StartAt time.Time
	EndAt   time.Time
	// Timelines in deploy order — for the main study this is the paper's
	// submission-plan order, so derived tables come out in Table 2 shape.
	Timelines []*Timeline
	// Takedowns maps host -> takedown time within this section.
	Takedowns map[string]time.Time
	// Sweeps are free-hosting provider abuse sweeps (provider_sweep events),
	// in stream order. They live outside URL spans, like takedowns.
	Sweeps []Event

	byURL map[string]*Timeline
}

// Timeline returns the section's timeline for url (nil when absent).
func (s *Section) Timeline(url string) *Timeline { return s.byURL[url] }

// Study is a fully parsed journal: events, stage sections, and the fault
// decoration (window and injection events, which live outside URL spans).
type Study struct {
	Events   []Event
	Sections []*Section
	// Faults are fault_window_open/close and fault_injected events, in
	// stream order.
	Faults []Event
}

// Section returns the first section named stage for the replica (nil when
// absent) — "first" because ablations re-run stages under the same name.
func (st *Study) Section(stage string, replica int) *Section {
	for _, sec := range st.Sections {
		if sec.Stage == stage && sec.Replica == replica {
			return sec
		}
	}
	return nil
}

// Replicas lists the replica indices present, ascending.
func (st *Study) Replicas() []int {
	seen := make(map[int]bool)
	for _, ev := range st.Events {
		seen[ev.Replica] = true
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Analyze reconstructs a Study from a journal's events. Events are expected
// in stream order (replica blocks contiguous, as the Writer guarantees).
func Analyze(events []Event) *Study {
	st := &Study{Events: events}
	// One open section per replica: replica blocks are contiguous, but being
	// keyed by replica also tolerates hand-concatenated journals.
	open := make(map[int]*Section)
	section := func(ev Event) *Section {
		sec := open[ev.Replica]
		if sec == nil {
			// Events before any stage marker (or in a marker-less synthetic
			// journal) land in an implicit unnamed section.
			sec = &Section{Stage: "", Replica: ev.Replica, StartAt: ev.Sim,
				Takedowns: make(map[string]time.Time), byURL: make(map[string]*Timeline)}
			open[ev.Replica] = sec
			st.Sections = append(st.Sections, sec)
		}
		return sec
	}
	timeline := func(sec *Section, ev Event) *Timeline {
		tl := sec.byURL[ev.URL]
		if tl == nil {
			tl = &Timeline{URL: ev.URL, Replica: ev.Replica}
			sec.byURL[ev.URL] = tl
			sec.Timelines = append(sec.Timelines, tl)
		}
		return tl
	}

	for _, ev := range events {
		switch ev.Kind {
		case KindFaultWindowOpen, KindFaultWindowClose, KindFaultInjected:
			st.Faults = append(st.Faults, ev)
			continue
		case KindStageStart:
			sec := &Section{Stage: ev.Stage, Replica: ev.Replica, StartAt: ev.Sim,
				Takedowns: make(map[string]time.Time), byURL: make(map[string]*Timeline)}
			open[ev.Replica] = sec
			st.Sections = append(st.Sections, sec)
			continue
		case KindStageEnd:
			if sec := open[ev.Replica]; sec != nil {
				sec.EndAt = ev.Sim
			}
			delete(open, ev.Replica)
			continue
		}
		sec := section(ev)
		if ev.Kind == KindTakedown {
			if _, dup := sec.Takedowns[ev.Domain]; !dup {
				sec.Takedowns[ev.Domain] = ev.Sim
			}
			continue
		}
		if ev.Kind == KindProviderSweep {
			sec.Sweeps = append(sec.Sweeps, ev)
			continue
		}
		tl := timeline(sec, ev)
		tl.Events = append(tl.Events, ev)
		switch ev.Kind {
		case KindDeploy:
			tl.Deployed = true
			tl.DeployedAt = ev.Sim
			tl.Domain, tl.Brand, tl.Technique = ev.Domain, ev.Brand, ev.Technique
		case KindReportSubmit:
			if !tl.Reported {
				tl.Reported = true
				tl.ReportedAt = ev.Sim
				tl.Engine = ev.Engine
			}
		case KindCrawlVisit:
			tl.Visits++
			if ev.Verdict == "phish" {
				tl.PhishVerdicts++
			}
		case KindCrawlRetry:
			tl.Retries++
		case KindPayloadServe:
			tl.PayloadServes++
		case KindBlacklistAdd:
			if strings.HasPrefix(ev.Source, sharedPrefix) {
				tl.SharedTo = append(tl.SharedTo, ev.Engine)
			} else if !tl.Listed {
				tl.Listed = true
				tl.ListedAt = ev.Sim
				tl.ViaForm = ev.ViaForm
				if tl.Reported {
					tl.ListingLag = ev.Sim.Sub(tl.ReportedAt)
				}
			}
		case KindSighting:
			if !tl.Seen {
				tl.Seen = true
				tl.SeenAt = ev.Sim
				tl.SeenMethod = ev.Method
			}
		}
	}
	// Join takedowns onto timelines by host.
	for _, sec := range st.Sections {
		for _, tl := range sec.Timelines {
			if at, ok := sec.Takedowns[tl.Domain]; ok {
				tl.TakenDown = true
				tl.DownAt = at
			}
		}
	}
	return st
}

// Anomaly kinds flagged by the causal checker.
const (
	AnomalyDetectedWithoutVisit = "detected_without_visit"
	AnomalyVisitAfterTakedown   = "visit_after_takedown"
	AnomalyReportWithoutDeploy  = "report_without_deploy"
)

// Anomaly is one causal-consistency violation: a journal whose chains don't
// add up (a listing with no deciding visit, activity on a dead host, a
// report for a URL that never went live).
type Anomaly struct {
	Kind    string
	Stage   string
	Replica int
	URL     string
	Engine  string
	Sim     time.Time
	Detail  string
}

func (a Anomaly) String() string {
	return fmt.Sprintf("%s [%s r%d] %s %s: %s", a.Kind, a.Stage, a.Replica, a.Sim.UTC().Format(time.RFC3339), a.URL, a.Detail)
}

// Anomalies runs the causal checks over every section. A healthy journal
// returns none; phishtrace exits nonzero when any are flagged.
func (st *Study) Anomalies() []Anomaly {
	var out []Anomaly
	for _, sec := range st.Sections {
		for _, tl := range sec.Timelines {
			if tl.Reported && !tl.Deployed {
				out = append(out, Anomaly{
					Kind: AnomalyReportWithoutDeploy, Stage: sec.Stage, Replica: sec.Replica,
					URL: tl.URL, Engine: tl.Engine, Sim: tl.ReportedAt,
					Detail: "URL was reported to " + tl.Engine + " but never deployed in this stage",
				})
			}
			if tl.Listed && tl.PhishVerdicts == 0 {
				out = append(out, Anomaly{
					Kind: AnomalyDetectedWithoutVisit, Stage: sec.Stage, Replica: sec.Replica,
					URL: tl.URL, Engine: tl.Engine, Sim: tl.ListedAt,
					Detail: "first-party listing with no phish-verdict crawl visit on record",
				})
			}
			if tl.TakenDown {
				for _, ev := range tl.Events {
					if (ev.Kind == KindCrawlVisit || ev.Kind == KindPayloadServe) && ev.Sim.After(tl.DownAt) {
						out = append(out, Anomaly{
							Kind: AnomalyVisitAfterTakedown, Stage: sec.Stage, Replica: sec.Replica,
							URL: tl.URL, Engine: ev.Engine, Sim: ev.Sim,
							Detail: fmt.Sprintf("%s at %s but host %s went down at %s",
								ev.Kind, ev.Sim.UTC().Format(time.RFC3339), tl.Domain, tl.DownAt.UTC().Format(time.RFC3339)),
						})
					}
				}
			}
		}
	}
	return out
}

// durationStats mirrors the experiment package's lag summary (journal sits
// below experiment, so it carries its own copy).
type durationStats struct {
	n                      int
	min, median, mean, max time.Duration
}

func statsOf(ds []time.Duration) durationStats {
	if len(ds) == 0 {
		return durationStats{}
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	mid := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		mid = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return durationStats{
		n: len(sorted), min: sorted[0], median: mid,
		mean: sum / time.Duration(len(sorted)), max: sorted[len(sorted)-1],
	}
}

func (s durationStats) String() string {
	if s.n == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%.0fm median=%.0fm mean=%.0fm max=%.0fm",
		s.n, s.min.Minutes(), s.median.Minutes(), s.mean.Minutes(), s.max.Minutes())
}

// appearanceOrder returns unique values in first-appearance order — for the
// main study, deploys arrive in submission-plan order, so engines, brands,
// and techniques come out in the paper's Table 2 order without this package
// having to know the engine roster.
func appearanceOrder(pick func(*Timeline) string, tls []*Timeline) []string {
	seen := make(map[string]bool)
	var out []string
	for _, tl := range tls {
		v := pick(tl)
		if v == "" || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// Detected counts first-party listings in the section.
func (s *Section) Detected() int {
	n := 0
	for _, tl := range s.Timelines {
		if tl.Listed {
			n++
		}
	}
	return n
}

// SummaryTable renders the section in the paper's Table 2 shape — one row
// per engine, detected/total per (brand, technique) cell — followed by the
// report→listing lag distribution per engine, reconstructed entirely from
// the journal.
func (s *Section) SummaryTable() string {
	engines := appearanceOrder(func(t *Timeline) string { return t.Engine }, s.Timelines)
	brands := appearanceOrder(func(t *Timeline) string { return t.Brand }, s.Timelines)
	techs := appearanceOrder(func(t *Timeline) string { return t.Technique }, s.Timelines)

	type cell struct{ detected, total int }
	cells := make(map[string]*cell)
	key := func(e, b, t string) string { return e + "|" + b + "|" + t }
	lags := make(map[string][]time.Duration)
	for _, tl := range s.Timelines {
		k := key(tl.Engine, tl.Brand, tl.Technique)
		c := cells[k]
		if c == nil {
			c = &cell{}
			cells[k] = c
		}
		c.total++
		if tl.Listed {
			c.detected++
			lags[tl.Engine] = append(lags[tl.Engine], tl.ListingLag)
		}
	}

	var b strings.Builder
	stage := s.Stage
	if stage == "" {
		stage = "(unnamed)"
	}
	fmt.Fprintf(&b, "Stage %q, replica %d: %d URLs, %d detected\n\n",
		stage, s.Replica, len(s.Timelines), s.Detected())
	colw := 9
	fmt.Fprintf(&b, "%-14s |", "")
	for _, brand := range brands {
		fmt.Fprintf(&b, " %-*s|", colw*len(techs), brand)
	}
	fmt.Fprintf(&b, "\n%-14s |", "Engine")
	for range brands {
		for _, tech := range techs {
			short := tech
			if len(short) > colw-2 {
				short = short[:colw-2]
			}
			fmt.Fprintf(&b, " %-*s", colw-1, short)
		}
		fmt.Fprintf(&b, "|")
	}
	fmt.Fprintf(&b, "\n")
	for _, eng := range engines {
		fmt.Fprintf(&b, "%-14s |", eng)
		for _, brand := range brands {
			for _, tech := range techs {
				c := cells[key(eng, brand, tech)]
				if c == nil {
					c = &cell{}
				}
				fmt.Fprintf(&b, " %-*s", colw-1, fmt.Sprintf("%d/%d", c.detected, c.total))
			}
			fmt.Fprintf(&b, "|")
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "\nTime from report to listing (first-party only):\n")
	for _, eng := range engines {
		fmt.Fprintf(&b, "  %-14s %s\n", eng, statsOf(lags[eng]))
	}
	return b.String()
}

// Lags returns the report→listing delays of first-party listings, per
// engine — the journal-side counterpart of MainResults.TimesToList.
func (s *Section) Lags() map[string][]time.Duration {
	out := make(map[string][]time.Duration)
	for _, tl := range s.Timelines {
		if tl.Listed {
			out[tl.Engine] = append(out[tl.Engine], tl.ListingLag)
		}
	}
	return out
}

// TimelineText renders one URL's lifecycle, one line per event with offsets
// relative to deploy.
func (tl *Timeline) TimelineText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", tl.URL)
	fmt.Fprintf(&b, "  domain=%s brand=%s technique=%s reported-to=%s\n",
		tl.Domain, tl.Brand, tl.Technique, tl.Engine)
	base := tl.DeployedAt
	for _, ev := range tl.Events {
		off := "+0m"
		if !base.IsZero() {
			off = fmt.Sprintf("+%.0fm", ev.Sim.Sub(base).Minutes())
		}
		fmt.Fprintf(&b, "  %-28s %6s  %s%s\n",
			ev.Sim.UTC().Format(time.RFC3339), off, ev.Kind, eventDetail(ev))
	}
	if tl.TakenDown {
		fmt.Fprintf(&b, "  %-28s %6s  takedown host=%s\n",
			tl.DownAt.UTC().Format(time.RFC3339),
			fmt.Sprintf("+%.0fm", tl.DownAt.Sub(base).Minutes()), tl.Domain)
	}
	switch {
	case tl.Listed && tl.Seen:
		fmt.Fprintf(&b, "  => listed by %s after %.0fm (sighted via %s %.0fm later)\n",
			tl.Engine, tl.ListingLag.Minutes(), tl.SeenMethod, tl.SeenAt.Sub(tl.ListedAt).Minutes())
	case tl.Listed:
		fmt.Fprintf(&b, "  => listed by %s after %.0fm\n", tl.Engine, tl.ListingLag.Minutes())
	default:
		fmt.Fprintf(&b, "  => never listed (%d visits, %d payload serves)\n", tl.Visits, tl.PayloadServes)
	}
	return b.String()
}

func eventDetail(ev Event) string {
	var parts []string
	if ev.Engine != "" {
		parts = append(parts, "engine="+ev.Engine)
	}
	if ev.Verdict != "" {
		parts = append(parts, "verdict="+ev.Verdict)
	}
	if ev.ViaForm {
		parts = append(parts, "via_form")
	}
	if ev.Attempt != 0 {
		parts = append(parts, fmt.Sprintf("attempt=%d", ev.Attempt))
	}
	if ev.Technique != "" && ev.Kind == KindPayloadServe {
		parts = append(parts, "technique="+ev.Technique)
	}
	if ev.Source != "" {
		parts = append(parts, "source="+ev.Source)
	}
	if ev.Method != "" {
		parts = append(parts, "method="+ev.Method)
	}
	if ev.DelayS != 0 {
		parts = append(parts, fmt.Sprintf("delay=%.0fs", ev.DelayS))
	}
	if len(parts) == 0 {
		return ""
	}
	return " " + strings.Join(parts, " ")
}
