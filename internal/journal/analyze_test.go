package journal

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// record builds a synthetic journal through a real recorder, so analyzer
// tests exercise the same encode → read → analyze path production uses.
func record(t *testing.T, emit func(rec *Recorder, clock *fakeClock)) []Event {
	t.Helper()
	var buf bytes.Buffer
	rec := NewRecorder(NewWriter(&buf), 99, 0, newFakeClock())
	emit(rec, rec.clock.(*fakeClock))
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestAnalyzeHealthyLifecycle(t *testing.T) {
	events := record(t, func(rec *Recorder, clock *fakeClock) {
		emitLifecycle(rec, clock, "https://evil.example/login", "evil.example")
	})
	st := Analyze(events)
	if got := st.Anomalies(); len(got) != 0 {
		t.Fatalf("healthy journal flagged %d anomalies: %v", len(got), got)
	}
	sec := st.Section("main", 0)
	if sec == nil {
		t.Fatal("no main section")
	}
	tl := sec.Timeline("https://evil.example/login")
	if tl == nil {
		t.Fatal("no timeline for the URL")
	}
	if !tl.Deployed || !tl.Reported || !tl.Listed || !tl.Seen || !tl.TakenDown {
		t.Errorf("lifecycle flags: %+v", tl)
	}
	if tl.Engine != "gsb" || tl.Brand != "PayPal" || tl.Technique != "alertbox" {
		t.Errorf("identity fields: engine=%s brand=%s technique=%s", tl.Engine, tl.Brand, tl.Technique)
	}
	if tl.ListingLag != 41*time.Minute {
		t.Errorf("ListingLag = %v, want 41m", tl.ListingLag)
	}
	if tl.Visits != 2 || tl.PhishVerdicts != 1 || tl.PayloadServes != 1 {
		t.Errorf("visit counts: visits=%d phish=%d serves=%d", tl.Visits, tl.PhishVerdicts, tl.PayloadServes)
	}
	if len(tl.SharedTo) != 1 || tl.SharedTo[0] != "smartscreen" {
		t.Errorf("SharedTo = %v", tl.SharedTo)
	}
	if sec.Detected() != 1 {
		t.Errorf("Detected = %d", sec.Detected())
	}
	lags := sec.Lags()
	if len(lags["gsb"]) != 1 || lags["gsb"][0] != 41*time.Minute {
		t.Errorf("Lags = %v", lags)
	}
	if !strings.Contains(sec.SummaryTable(), "1/1") {
		t.Errorf("summary table missing the 1/1 cell:\n%s", sec.SummaryTable())
	}
	if txt := tl.TimelineText(); !strings.Contains(txt, "listed by gsb after 41m") {
		t.Errorf("timeline text missing outcome:\n%s", txt)
	}
}

func TestAnomalyDetectedWithoutVisit(t *testing.T) {
	events := record(t, func(rec *Recorder, clock *fakeClock) {
		rec.Emit(KindStageStart, Fields{Stage: "main"})
		rec.Emit(KindDeploy, Fields{URL: "https://a.example/p", Domain: "a.example"})
		rec.Emit(KindReportSubmit, Fields{URL: "https://a.example/p", Engine: "gsb"})
		clock.advance(time.Hour)
		// Listing appears with no phish-verdict crawl on record.
		rec.Emit(KindBlacklistAdd, Fields{URL: "https://a.example/p", Engine: "gsb", Source: "gsb"})
		rec.Emit(KindStageEnd, Fields{Stage: "main"})
	})
	anomalies := Analyze(events).Anomalies()
	if len(anomalies) != 1 || anomalies[0].Kind != AnomalyDetectedWithoutVisit {
		t.Fatalf("anomalies = %v, want one %s", anomalies, AnomalyDetectedWithoutVisit)
	}
	if anomalies[0].URL != "https://a.example/p" || anomalies[0].Engine != "gsb" {
		t.Errorf("anomaly identity: %+v", anomalies[0])
	}
}

func TestAnomalyReportWithoutDeploy(t *testing.T) {
	events := record(t, func(rec *Recorder, clock *fakeClock) {
		rec.Emit(KindStageStart, Fields{Stage: "main"})
		rec.Emit(KindReportSubmit, Fields{URL: "https://ghost.example/p", Engine: "netcraft"})
		rec.Emit(KindStageEnd, Fields{Stage: "main"})
	})
	anomalies := Analyze(events).Anomalies()
	if len(anomalies) != 1 || anomalies[0].Kind != AnomalyReportWithoutDeploy {
		t.Fatalf("anomalies = %v, want one %s", anomalies, AnomalyReportWithoutDeploy)
	}
}

func TestAnomalyVisitAfterTakedown(t *testing.T) {
	events := record(t, func(rec *Recorder, clock *fakeClock) {
		rec.Emit(KindStageStart, Fields{Stage: "main"})
		rec.Emit(KindDeploy, Fields{URL: "https://b.example/p", Domain: "b.example"})
		rec.Emit(KindReportSubmit, Fields{URL: "https://b.example/p", Engine: "gsb"})
		clock.advance(time.Hour)
		rec.Emit(KindTakedown, Fields{Domain: "b.example"})
		clock.advance(time.Hour)
		// The host is down, yet a crawl visit still lands.
		rec.Emit(KindCrawlVisit, Fields{URL: "https://b.example/p", Engine: "gsb", Verdict: "benign", Attempt: 1})
		rec.Emit(KindStageEnd, Fields{Stage: "main"})
	})
	anomalies := Analyze(events).Anomalies()
	if len(anomalies) != 1 || anomalies[0].Kind != AnomalyVisitAfterTakedown {
		t.Fatalf("anomalies = %v, want one %s", anomalies, AnomalyVisitAfterTakedown)
	}
}

func TestAnalyzeSectionsAndFaults(t *testing.T) {
	events := record(t, func(rec *Recorder, clock *fakeClock) {
		rec.Emit(KindFaultWindowOpen, Fields{Fault: "dns_flap", FaultKind: "dns_blackout", Sim: baseTime})
		rec.Emit(KindFaultWindowClose, Fields{Fault: "dns_flap", FaultKind: "dns_blackout", Sim: baseTime.Add(time.Hour)})
		rec.Emit(KindStageStart, Fields{Stage: "preliminary"})
		rec.Emit(KindDeploy, Fields{URL: "https://p.example/x", Domain: "p.example"})
		rec.Emit(KindStageEnd, Fields{Stage: "preliminary"})
		clock.advance(time.Hour)
		rec.Emit(KindStageStart, Fields{Stage: "main"})
		rec.Emit(KindFaultInjected, Fields{Fault: "dns_flap", Target: "p.example"})
		rec.Emit(KindDeploy, Fields{URL: "https://m.example/y", Domain: "m.example"})
		rec.Emit(KindStageEnd, Fields{Stage: "main"})
	})
	st := Analyze(events)
	if len(st.Sections) != 2 {
		t.Fatalf("sections = %d, want 2", len(st.Sections))
	}
	if st.Section("preliminary", 0) == nil || st.Section("main", 0) == nil {
		t.Fatal("missing a named section")
	}
	// Fault events decorate the study; they never land inside URL timelines.
	if len(st.Faults) != 3 {
		t.Errorf("Faults = %d, want 3", len(st.Faults))
	}
	for _, sec := range st.Sections {
		if len(sec.Timelines) != 1 {
			t.Errorf("section %q has %d timelines, want 1", sec.Stage, len(sec.Timelines))
		}
	}
	if got := st.Replicas(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Replicas = %v", got)
	}
}

func TestDiffIdenticalAndChanged(t *testing.T) {
	healthy := func(rec *Recorder, clock *fakeClock) {
		emitLifecycle(rec, clock, "https://evil.example/login", "evil.example")
	}
	a := record(t, healthy)
	b := record(t, healthy)
	if d := Diff(a, b); !d.Identical() {
		t.Fatalf("identical journals diffed:\n%s", d.Render("a", "b"))
	}

	c := record(t, func(rec *Recorder, clock *fakeClock) {
		rec.Emit(KindStageStart, Fields{Stage: "main"})
		rec.Emit(KindDeploy, Fields{URL: "https://evil.example/login", Domain: "evil.example"})
		rec.Emit(KindReportSubmit, Fields{URL: "https://evil.example/login", Engine: "gsb"})
		rec.Emit(KindStageEnd, Fields{Stage: "main"})
	})
	d := Diff(a, c)
	if d.Identical() {
		t.Fatal("differing journals reported identical")
	}
	if len(d.Changed) != 1 {
		t.Errorf("Changed = %v", d.Changed)
	}
	if len(d.KindCounts) == 0 {
		t.Errorf("expected event-kind total differences")
	}
	if !strings.Contains(d.Render("a", "c"), "changed: r0|main|https://evil.example/login") {
		t.Errorf("render:\n%s", d.Render("a", "c"))
	}
}

func TestProgressObserve(t *testing.T) {
	events := record(t, func(rec *Recorder, clock *fakeClock) {
		emitLifecycle(rec, clock, "https://evil.example/login", "evil.example")
	})
	p := NewProgress()
	for _, ev := range events {
		p.Observe(ev)
	}
	snap := p.Snapshot()
	if snap.URLs != 1 || snap.Detected != 1 || snap.Stage != "main" {
		t.Errorf("snapshot: urls=%d detected=%d stage=%q", snap.URLs, snap.Detected, snap.Stage)
	}
	if snap.Events != int64(len(events)) {
		t.Errorf("Events = %d, want %d", snap.Events, len(events))
	}
	var gsb *EngineProgress
	for i := range snap.Engines {
		if snap.Engines[i].Engine == "gsb" {
			gsb = &snap.Engines[i]
		}
	}
	if gsb == nil || gsb.Listings != 1 || gsb.Visits != 2 || gsb.Sightings != 1 {
		t.Errorf("gsb progress = %+v", gsb)
	}
}
