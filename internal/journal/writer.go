package journal

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Writer serialises journal lines from N concurrent replica worlds into one
// byte-identical stream: replica K's lines appear as one contiguous block,
// blocks in replica order, whatever the worker count or completion order.
//
// Replica 0 (and, after it closes, the lowest-index unclosed replica)
// streams straight through; later replicas buffer until every earlier one
// has closed. Buffering is therefore bounded by how far completion order
// runs ahead of replica order — at most (workers-1) replica blocks — and a
// single-world run buffers nothing at all.
//
// A nil Writer accepts every call as a no-op.
type Writer struct {
	mu      sync.Mutex
	out     io.Writer
	next    int // lowest replica index not yet closed: its lines stream through
	closed  map[int]bool
	pending map[int][]byte
	lines   int64
	err     error
}

// NewWriter returns a journal writer streaming JSONL to out. Wrap out in a
// bufio.Writer when writing to a file; the journal emits one Write per line.
// A nil out yields a nil Writer.
func NewWriter(out io.Writer) *Writer {
	if out == nil {
		return nil
	}
	return &Writer{out: out, closed: make(map[int]bool), pending: make(map[int][]byte)}
}

// write routes one rendered line. The caller's buffer is not retained.
func (w *Writer) write(replica int, line []byte) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lines++
	if replica == w.next {
		w.emit(line)
		return
	}
	w.pending[replica] = append(w.pending[replica], line...)
}

func (w *Writer) emit(line []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.out.Write(line); err != nil {
		w.err = fmt.Errorf("journal: writing line: %w", err)
	}
}

// CloseReplica declares that replica k will emit no further lines. When k is
// the streaming replica, the ordered flush advances: each next replica's
// buffered block is written out, chaining through already-closed replicas.
// The replica runner calls this as each world finishes.
func (w *Writer) CloseReplica(k int) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed[k] = true
	for w.closed[w.next] {
		delete(w.closed, w.next)
		w.next++
		if buf, ok := w.pending[w.next]; ok {
			w.emit(buf)
			delete(w.pending, w.next)
		}
	}
}

// Flush writes any still-buffered replica blocks in replica order — the
// end-of-run safety net for replicas that never closed (a cancelled study) —
// and returns the first write error encountered, if any.
func (w *Writer) Flush() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	keys := make([]int, 0, len(w.pending))
	for k := range w.pending {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		w.emit(w.pending[k])
		delete(w.pending, k)
	}
	return w.err
}

// Lines reports how many lines have been accepted (streamed or buffered).
func (w *Writer) Lines() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lines
}

// Err returns the first write error encountered, if any.
func (w *Writer) Err() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}
