package journal

import (
	"sync"
	"time"
)

// Progress is the dashboard-side journal consumer: it folds a live event
// stream into per-engine and per-technique counters that worldserve's
// /debug/study page renders. It is an analysis-side component — unlike the
// Recorder it may retain per-URL state (one technique string per deployed
// URL, needed to attribute listings to techniques).
type Progress struct {
	mu         sync.Mutex
	events     int64
	lastSim    time.Time
	stage      string
	urls       int
	detected   int
	engines    map[string]*EngineProgress
	engOrder   []string
	techs      map[string]*TechniqueProgress
	techOrder  []string
	urlTech    map[string]string
	windows    []FaultWindowStatus
	injections int
}

// EngineProgress is one engine's running totals.
type EngineProgress struct {
	Engine    string `json:"engine"`
	Reports   int    `json:"reports"`
	Visits    int    `json:"visits"`
	Retries   int    `json:"retries"`
	Listings  int    `json:"listings"`
	Shared    int    `json:"shared"`
	Sightings int    `json:"sightings"`
}

// TechniqueProgress is one evasion technique's running totals.
type TechniqueProgress struct {
	Technique     string `json:"technique"`
	Deploys       int    `json:"deploys"`
	PayloadServes int    `json:"payload_serves"`
	Listings      int    `json:"listings"`
}

// FaultWindowStatus is one plan-declared fault window with its bounds.
type FaultWindowStatus struct {
	Fault   string    `json:"fault"`
	Kind    string    `json:"kind"`
	OpenAt  time.Time `json:"open_at"`
	CloseAt time.Time `json:"close_at,omitempty"`
	// Active is recomputed at snapshot time against the latest sim time.
	Active bool `json:"active"`
}

// Snapshot is the JSON-ready dashboard state.
type Snapshot struct {
	Events     int64               `json:"events"`
	Sim        time.Time           `json:"sim"`
	Stage      string              `json:"stage"`
	URLs       int                 `json:"urls"`
	Detected   int                 `json:"detected"`
	Engines    []EngineProgress    `json:"engines"`
	Techniques []TechniqueProgress `json:"techniques"`
	Faults     []FaultWindowStatus `json:"faults,omitempty"`
	Injections int                 `json:"injections,omitempty"`
}

// NewProgress returns an empty aggregator.
func NewProgress() *Progress {
	return &Progress{
		engines: make(map[string]*EngineProgress),
		techs:   make(map[string]*TechniqueProgress),
		urlTech: make(map[string]string),
	}
}

func (p *Progress) engine(key string) *EngineProgress {
	e := p.engines[key]
	if e == nil {
		e = &EngineProgress{Engine: key}
		p.engines[key] = e
		p.engOrder = append(p.engOrder, key)
	}
	return e
}

func (p *Progress) tech(name string) *TechniqueProgress {
	t := p.techs[name]
	if t == nil {
		t = &TechniqueProgress{Technique: name}
		p.techs[name] = t
		p.techOrder = append(p.techOrder, name)
	}
	return t
}

// Observe folds one event into the aggregates.
func (p *Progress) Observe(ev Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.events++
	if ev.Sim.After(p.lastSim) {
		p.lastSim = ev.Sim
	}
	switch ev.Kind {
	case KindStageStart:
		p.stage = ev.Stage
	case KindDeploy:
		p.urls++
		p.tech(ev.Technique).Deploys++
		p.urlTech[ev.URL] = ev.Technique
	case KindReportSubmit:
		p.engine(ev.Engine).Reports++
	case KindCrawlVisit:
		p.engine(ev.Engine).Visits++
	case KindCrawlRetry:
		p.engine(ev.Engine).Retries++
	case KindPayloadServe:
		p.tech(ev.Technique).PayloadServes++
	case KindBlacklistAdd:
		e := p.engine(ev.Engine)
		if ev.Source == ev.Engine {
			e.Listings++
			p.detected++
			if tech, ok := p.urlTech[ev.URL]; ok {
				p.tech(tech).Listings++
			}
		} else {
			e.Shared++
		}
	case KindSighting:
		p.engine(ev.Engine).Sightings++
	case KindFaultWindowOpen:
		p.windows = append(p.windows, FaultWindowStatus{Fault: ev.Fault, Kind: ev.FaultKind, OpenAt: ev.Sim})
	case KindFaultWindowClose:
		for i := range p.windows {
			if p.windows[i].Fault == ev.Fault && p.windows[i].CloseAt.IsZero() {
				p.windows[i].CloseAt = ev.Sim
				break
			}
		}
	case KindFaultInjected:
		p.injections++
	}
}

// ObserveLine parses one journal line and folds it in.
func (p *Progress) ObserveLine(line []byte) error {
	ev, err := ParseEvent(line)
	if err != nil {
		return err
	}
	p.Observe(ev)
	return nil
}

// Snapshot returns the current aggregates, rows in first-appearance order
// (which for a study is submission-plan order).
func (p *Progress) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	snap := Snapshot{
		Events:     p.events,
		Sim:        p.lastSim,
		Stage:      p.stage,
		URLs:       p.urls,
		Detected:   p.detected,
		Injections: p.injections,
	}
	for _, key := range p.engOrder {
		snap.Engines = append(snap.Engines, *p.engines[key])
	}
	for _, name := range p.techOrder {
		snap.Techniques = append(snap.Techniques, *p.techs[name])
	}
	for _, w := range p.windows {
		w.Active = !w.OpenAt.After(p.lastSim) && (w.CloseAt.IsZero() || w.CloseAt.After(p.lastSim))
		snap.Faults = append(snap.Faults, w)
	}
	return snap
}
