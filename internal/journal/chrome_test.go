package journal

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestChromeTraceGolden pins the exporter's exact output for a synthetic
// lifecycle journal: process/thread metadata, instant events, interval
// pairing, and deterministic ordering. Regenerate with -update after an
// intentional format change.
func TestChromeTraceGolden(t *testing.T) {
	events := record(t, func(rec *Recorder, clock *fakeClock) {
		rec.Emit(KindFaultWindowOpen, Fields{Fault: "dns_flap", FaultKind: "dns_blackout", Sim: baseTime})
		emitLifecycle(rec, clock, "https://evil.example/login", "evil.example")
		rec.Emit(KindFaultWindowClose, Fields{Fault: "dns_flap", FaultKind: "dns_blackout", Sim: baseTime.Add(30 * time.Minute)})
	})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to record it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden file; run with -update if intentional\n got: %s", buf.Bytes())
	}

	// Structural sanity independent of the exact bytes.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var metas, instants, completes int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			metas++
		case "i":
			instants++
		case "X":
			completes++
		}
	}
	if metas == 0 || instants == 0 {
		t.Errorf("trace shape: %d metadata, %d instants", metas, instants)
	}
	// The stage and the fault window each pair into one complete event.
	if completes != 2 {
		t.Errorf("completes = %d, want 2 (stage + fault window)", completes)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
}
