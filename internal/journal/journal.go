// Package journal is the study's flight recorder: a deterministic,
// virtual-clock-stamped event stream recording every URL's lifecycle as
// causally linked spans — deploy → report(engine) → crawl_visit(bot, evasion
// outcome) → blacklist → takedown — plus fault windows and stage markers.
//
// The paper's core evidence is exactly this per-URL timeline (which bot
// visited which protected URL, which evasion check it passed, and when a
// blacklist entry appeared); the journal makes that chain a first-class,
// replayable artifact instead of something implicit across counters and the
// weblog.
//
// Determinism contract. Journal lines carry only virtual time — never wall
// time — and every span/event/parent ID is a pure function of (world seed,
// span label, event kind, qualifier, per-world sequence number), folded
// through a splitmix64 finalizer over FNV-64a hashes. No per-URL state is
// retained while recording (ready for 100k+ URL campaigns), and the Writer
// streams replicas in index order regardless of completion order, so a
// journal is byte-identical for any -parallel worker count on a fixed seed
// (pinned by a -race test in internal/core).
//
// Everything is nil-safe: a nil *Recorder or nil *Writer accepts every call
// as a no-op, so instrumented code pays only a nil check when journaling is
// off — the visit hot path stays allocation-identical to an unjournaled run
// (proved by BenchmarkJournalOverhead).
package journal

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Clock yields the current virtual time. *simclock.SimClock satisfies it;
// journal depends only on this one-method surface so it sits below every
// simulation package.
type Clock interface {
	Now() time.Time
}

// Event kinds, in rough lifecycle order. Kind strings are constant lowercase
// snake_case — enforced at compile time by the phishlint metriclabel
// analyzer at every Recorder.Emit call site.
const (
	// KindDeploy records a phishing URL going live on a deployment.
	KindDeploy = "deploy"
	// KindReportSubmit records the URL's submission to one engine.
	KindReportSubmit = "report_submit"
	// KindCrawlVisit records one deciding bot visit and its verdict
	// ("phish", "benign", or "error"), including the via-form bypass bit.
	KindCrawlVisit = "crawl_visit"
	// KindCrawlRetry records a backoff retry scheduled after an injected
	// failure or outage window.
	KindCrawlRetry = "crawl_retry"
	// KindPayloadServe records an evasion wrapper revealing the phishing
	// payload behind a real technique — the "bot reached the content" moment.
	KindPayloadServe = "payload_serve"
	// KindBlacklistAdd records a blacklist entry. Source is the listing
	// engine's own key for first-party listings, "shared:<origin>" for feed
	// propagation.
	KindBlacklistAdd = "blacklist_add"
	// KindSighting records the monitoring pipeline first observing a listing
	// from outside (API poll, feed diff, outcome mail, screenshot).
	KindSighting = "sighting"
	// KindTakedown records the hosting provider taking a host offline.
	KindTakedown = "takedown"
	// KindWindowClose records a streaming campaign closing one URL's
	// measurement window: the moment its lifecycle is folded into the
	// aggregate and its retained state (routes, listings, watches) purged.
	KindWindowClose = "window_close"
	// KindProviderSweep records one free-hosting provider abuse sweep over
	// its shared apex (Domain); Attempt carries the number of listed
	// subdomains the sweep found.
	KindProviderSweep = "provider_sweep"
	// KindStageStart / KindStageEnd bracket one experiment stage
	// ("preliminary", "main", "extensions").
	KindStageStart = "stage_start"
	KindStageEnd   = "stage_end"
	// KindFaultWindowOpen / KindFaultWindowClose bracket one chaos fault
	// window; both are emitted at world construction (the bounds are
	// plan-declared) so degraded runs are explainable from the journal alone.
	KindFaultWindowOpen  = "fault_window_open"
	KindFaultWindowClose = "fault_window_close"
	// KindFaultInjected records one positive injection decision inside a
	// window, labelled with the decision target (host, engine, url|engine).
	KindFaultInjected = "fault_injected"
)

// Event is one journal line. Fixed fields come first; everything else is
// omitted when empty. Sim is virtual time only — wall time never appears in
// a journal, which is what lets two runs of the same seed produce
// byte-identical files.
type Event struct {
	// Seq is the per-world emission sequence number.
	Seq uint64 `json:"seq"`
	// ID identifies this event; Span groups a lifecycle; Parent is the ID of
	// the causally preceding event ("" for roots). All three are 16-hex-digit
	// derivations — see DESIGN.md §12 for the scheme.
	ID     string `json:"id"`
	Span   string `json:"span"`
	Parent string `json:"parent,omitempty"`
	Kind   string `json:"kind"`
	// Sim is the virtual time of the event (RFC3339Nano, UTC).
	Sim     time.Time `json:"sim"`
	Replica int       `json:"replica"`

	Stage     string  `json:"stage,omitempty"`
	URL       string  `json:"url,omitempty"`
	Domain    string  `json:"domain,omitempty"`
	Brand     string  `json:"brand,omitempty"`
	Technique string  `json:"technique,omitempty"`
	Engine    string  `json:"engine,omitempty"`
	Source    string  `json:"source,omitempty"`
	Method    string  `json:"method,omitempty"`
	Verdict   string  `json:"verdict,omitempty"`
	ViaForm   bool    `json:"via_form,omitempty"`
	Attempt   int     `json:"attempt,omitempty"`
	DelayS    float64 `json:"delay_s,omitempty"`
	Fault     string  `json:"fault,omitempty"`
	FaultKind string  `json:"fault_kind,omitempty"`
	Target    string  `json:"target,omitempty"`
}

// Fields carries the annotations an emit site provides; the Recorder fills
// in sequence, IDs, and time. The zero value of every field means "absent".
type Fields struct {
	Stage     string
	URL       string
	Domain    string
	Brand     string
	Technique string
	Engine    string
	Source    string
	Method    string
	Verdict   string
	ViaForm   bool
	Attempt   int
	// Delay is rendered in seconds (listing delay, retry backoff).
	Delay     time.Duration
	Fault     string
	FaultKind string
	Target    string
	// Sim overrides the event time (zero uses the recorder's clock "now") —
	// used for plan-declared fault window bounds, which are known upfront.
	Sim time.Time
}

// Recorder stamps and emits events for one world. Create one per world with
// NewRecorder; a nil Recorder accepts every Emit as a no-op. Safe for
// concurrent use (worldserve drives real concurrent HTTP through a world),
// though a simulation world emits from its single scheduler goroutine.
type Recorder struct {
	w       *Writer
	seed    uint64
	replica int
	clock   Clock

	mu  sync.Mutex
	seq uint64
	buf []byte

	// Sharded mode (see ShardBuffer): in-event emits are staged per shard —
	// each slice touched only by the shard's draining worker — and flushed
	// in stamp order at window barriers, so sequence numbers and line order
	// depend on virtual time, never on worker interleaving.
	stamper   Stamper
	shardBufs []*shardBuf
}

// Stamper reports the (virtual time, shard, shard-local sequence) stamp of
// the event executing on the calling goroutine, if any. It mirrors
// simclock.StampSource as a flat tuple because journal sits below every
// simulation package and cannot import simclock.
type Stamper interface {
	ExecStamp() (at time.Time, shard int, seq int64, ok bool)
}

// pendingEvent is one staged emit: everything needed to render the line at
// the barrier, plus the stamp that orders it.
type pendingEvent struct {
	kind         string
	f            Fields
	sim          time.Time
	span, parent uint64
	qual         string
	repeat       bool

	at    time.Time
	shard int
	eseq  int64
	idx   int // emit index within (shard, event), ordering same-event emits
}

type shardBuf struct {
	pending []pendingEvent
}

// ShardBuffer switches the recorder into barrier-buffered mode for sharded
// execution. Emits from inside events (src reports a stamp) are staged on
// the emitting shard's buffer; FlushShards — registered by the world as an
// OnBarrier callback — sorts the staged events by (At, shard, seq, emit
// index) and only then assigns sequence numbers and renders, so the journal
// stays byte-identical for any worker count. Emits outside events (deploys,
// stage markers, fault windows) keep the immediate path.
func (r *Recorder) ShardBuffer(src Stamper, shards int) {
	if r == nil || src == nil || shards <= 0 {
		return
	}
	r.stamper = src
	r.shardBufs = make([]*shardBuf, shards)
	for i := range r.shardBufs {
		r.shardBufs[i] = &shardBuf{}
	}
}

// FlushShards renders every staged event in stamp order. Call at a window
// barrier (no events in flight); a no-op in unbuffered mode.
func (r *Recorder) FlushShards() {
	if r == nil || r.shardBufs == nil {
		return
	}
	var all []pendingEvent
	for _, sb := range r.shardBufs {
		all = append(all, sb.pending...)
		sb.pending = sb.pending[:0]
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if !a.at.Equal(b.at) {
			return a.at.Before(b.at)
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		if a.eseq != b.eseq {
			return a.eseq < b.eseq
		}
		return a.idx < b.idx
	})
	for _, p := range all {
		r.render(p.span, p.parent, p.kind, p.qual, p.repeat, p.sim, p.f)
	}
}

// NewRecorder returns a recorder for one world: seed scopes the ID scheme,
// replica routes lines through the writer's ordered stream, clock stamps
// virtual time. A nil writer (or clock) yields a nil recorder.
func NewRecorder(w *Writer, seed int64, replica int, clock Clock) *Recorder {
	if w == nil || clock == nil {
		return nil
	}
	return &Recorder{w: w, seed: uint64(seed), replica: replica, clock: clock}
}

// splitmix64 finalizer and FNV-64a, kept local so the ID scheme is fully
// specified by this package (journal sits below chaos and cannot import it).
const (
	idGamma   = 0x9e3779b97f4a7c15
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

//phishlint:hotpath
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnvParts hashes the parts with a NUL separator between them, so ("a","bc")
// and ("ab","c") hash differently.
//
//phishlint:hotpath
func fnvParts(parts ...string) uint64 {
	h := uint64(fnvOffset)
	for i, p := range parts {
		if i > 0 {
			h ^= 0
			h *= fnvPrime
		}
		for j := 0; j < len(p); j++ {
			h ^= uint64(p[j])
			h *= fnvPrime
		}
	}
	return h
}

// spanID derives the span identity for a lifecycle label under a seed.
func spanID(seed uint64, label string) uint64 { return mix64(seed ^ fnvParts(label)) }

// slotID derives the identity of a (kind, qualifier) slot within a span —
// the ID of a unique event, and the parent handle repeated events hang off.
func slotID(span uint64, kind, qual string) uint64 {
	return mix64(span ^ fnvParts(kind, qual))
}

// occID distinguishes repeated occurrences of one slot by the emission
// sequence number, folded through the avalanche so adjacent occurrences
// don't correlate.
func occID(slot, seq uint64) uint64 { return mix64(slot ^ (seq+1)*idGamma) }

// sharedPrefix marks blacklist entries propagated from a partner feed.
const sharedPrefix = "shared:"

// spanLabelFor picks the lifecycle a kind belongs to: the URL where there is
// one, the host for takedowns (which apply to every mount on the host), and
// dedicated namespaces for stages and fault windows.
func spanLabelFor(kind string, f Fields) string {
	switch kind {
	case KindTakedown:
		return "host|" + f.Domain
	case KindProviderSweep:
		return "provider|" + f.Domain
	case KindStageStart, KindStageEnd:
		return "stage|" + f.Stage
	case KindFaultWindowOpen, KindFaultWindowClose, KindFaultInjected:
		return "fault|" + f.Fault
	default:
		if f.URL != "" {
			return f.URL
		}
		return "world"
	}
}

// Emit records one event. kind must be one of the Kind constants (a
// compile-time constant snake_case string — phishlint enforces this at every
// call site). Emit on a nil recorder is a no-op, so emit sites guard only
// when building Fields is itself costly.
//
//phishlint:hotpath
func (r *Recorder) Emit(kind string, f Fields) {
	if r == nil {
		return
	}
	span := spanID(r.seed, spanLabelFor(kind, f)) //phishlint:allow allocfree span labels for non-URL kinds concatenate once per event; URL spans reuse f.URL

	// Causal derivation: qual scopes the slot within the span (the engine for
	// crawl/listing events, the technique for payload serves, the decision
	// target for injections); parent is the slot of the causally preceding
	// event, derivable without retained state because the scheme is pure.
	var qual string
	var repeat bool
	var parent uint64
	switch kind {
	case KindDeploy, KindTakedown, KindStageStart, KindFaultWindowOpen:
		// Span roots: no parent.
	case KindProviderSweep:
		// Span root too, but sweeps recur on the provider's span.
		repeat = true
	case KindWindowClose:
		parent = slotID(span, KindDeploy, "")
	case KindReportSubmit:
		qual = f.Engine
		parent = slotID(span, KindDeploy, "")
	case KindCrawlVisit, KindCrawlRetry:
		qual, repeat = f.Engine, true
		parent = slotID(span, KindReportSubmit, f.Engine)
	case KindPayloadServe:
		qual, repeat = f.Technique, true
		parent = slotID(span, KindDeploy, "")
	case KindBlacklistAdd:
		qual = f.Engine
		if origin, ok := strings.CutPrefix(f.Source, sharedPrefix); ok {
			parent = slotID(span, KindBlacklistAdd, origin)
		} else {
			parent = slotID(span, KindReportSubmit, f.Engine)
		}
	case KindSighting:
		qual = f.Engine
		parent = slotID(span, KindBlacklistAdd, f.Engine)
	case KindStageEnd:
		parent = slotID(span, KindStageStart, "")
	case KindFaultWindowClose, KindFaultInjected:
		repeat = kind == KindFaultInjected
		if repeat {
			qual = f.Target
		}
		parent = slotID(span, KindFaultWindowOpen, "")
	}

	sim := f.Sim
	if sim.IsZero() {
		sim = r.clock.Now()
	}

	if r.stamper != nil {
		if at, shard, eseq, ok := r.stamper.ExecStamp(); ok && shard >= 0 && shard < len(r.shardBufs) {
			sb := r.shardBufs[shard]
			sb.pending = append(sb.pending, pendingEvent{
				kind: kind, f: f, sim: sim, span: span, parent: parent,
				qual: qual, repeat: repeat,
				at: at, shard: shard, eseq: eseq, idx: len(sb.pending),
			})
			return
		}
	}
	r.render(span, parent, kind, qual, repeat, sim, f)
}

// render assigns the next sequence number and writes one line. The sequence
// counter lives here so both the immediate path and the barrier flush share
// one numbering.
func (r *Recorder) render(span, parent uint64, kind, qual string, repeat bool, sim time.Time, f Fields) {
	r.mu.Lock()
	seq := r.seq
	r.seq++
	slot := slotID(span, kind, qual)
	id := slot
	if repeat {
		id = occID(slot, seq)
	}
	r.buf = appendEvent(r.buf[:0], seq, id, span, parent, kind, sim, r.replica, f)
	r.w.write(r.replica, r.buf)
	r.mu.Unlock()
}

// Seq reports how many events this recorder has emitted.
func (r *Recorder) Seq() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// appendEvent renders one journal line. The encoder is hand-rolled so field
// order, float formatting, and escaping are fully specified here (and cheap
// enough for the <5% visit-path overhead budget); encoding/json would also
// work but pins the hot path to reflection.
func appendEvent(b []byte, seq, id, span, parent uint64, kind string, sim time.Time, replica int, f Fields) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, `,"id":"`...)
	b = appendHex16(b, id)
	b = append(b, `","span":"`...)
	b = appendHex16(b, span)
	b = append(b, '"')
	if parent != 0 {
		b = append(b, `,"parent":"`...)
		b = appendHex16(b, parent)
		b = append(b, '"')
	}
	b = append(b, `,"kind":"`...)
	b = append(b, kind...) // kind constants are snake_case: no escaping needed
	b = append(b, `","sim":"`...)
	b = sim.UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","replica":`...)
	b = strconv.AppendInt(b, int64(replica), 10)
	b = appendStringField(b, "stage", f.Stage)
	b = appendStringField(b, "url", f.URL)
	b = appendStringField(b, "domain", f.Domain)
	b = appendStringField(b, "brand", f.Brand)
	b = appendStringField(b, "technique", f.Technique)
	b = appendStringField(b, "engine", f.Engine)
	b = appendStringField(b, "source", f.Source)
	b = appendStringField(b, "method", f.Method)
	b = appendStringField(b, "verdict", f.Verdict)
	if f.ViaForm {
		b = append(b, `,"via_form":true`...)
	}
	if f.Attempt != 0 {
		b = append(b, `,"attempt":`...)
		b = strconv.AppendInt(b, int64(f.Attempt), 10)
	}
	if f.Delay != 0 {
		b = append(b, `,"delay_s":`...)
		b = strconv.AppendFloat(b, f.Delay.Seconds(), 'g', -1, 64)
	}
	b = appendStringField(b, "fault", f.Fault)
	b = appendStringField(b, "fault_kind", f.FaultKind)
	b = appendStringField(b, "target", f.Target)
	b = append(b, '}', '\n')
	return b
}

func appendStringField(b []byte, key, val string) []byte {
	if val == "" {
		return b
	}
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return appendJSONString(b, val)
}

// appendJSONString appends val as a JSON string. URLs, engine keys, and
// technique names are plain ASCII, so the fast path is a straight copy;
// quotes, backslashes, and control bytes take the escape path.
func appendJSONString(b []byte, val string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(val); i++ {
		c := val[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			continue
		}
		b = append(b, val[start:i]...)
		switch c {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
		start = i + 1
	}
	b = append(b, val[start:]...)
	return append(b, '"')
}

func appendHex16(b []byte, v uint64) []byte {
	const hex = "0123456789abcdef"
	var tmp [16]byte
	for i := 15; i >= 0; i-- {
		tmp[i] = hex[v&0xf]
		v >>= 4
	}
	return append(b, tmp[:]...)
}
