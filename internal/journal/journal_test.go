package journal

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeClock is a hand-advanced virtual clock for recorder tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: baseTime} }

var baseTime = time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC)

// emitLifecycle drives one full URL lifecycle through rec — the emit
// sequence the instrumented world produces, in causal order.
func emitLifecycle(rec *Recorder, clock *fakeClock, url, domain string) {
	rec.Emit(KindStageStart, Fields{Stage: "main"})
	rec.Emit(KindDeploy, Fields{URL: url, Domain: domain, Brand: "PayPal", Technique: "alertbox"})
	clock.advance(5 * time.Minute)
	rec.Emit(KindReportSubmit, Fields{URL: url, Engine: "gsb", Source: "reporter@example.org"})
	clock.advance(30 * time.Minute)
	rec.Emit(KindCrawlVisit, Fields{URL: url, Engine: "gsb", Verdict: "benign", Attempt: 1})
	clock.advance(10 * time.Minute)
	rec.Emit(KindPayloadServe, Fields{URL: url, Domain: domain, Technique: "alertbox"})
	rec.Emit(KindCrawlVisit, Fields{URL: url, Engine: "gsb", Verdict: "phish", ViaForm: true, Attempt: 2})
	clock.advance(time.Minute)
	rec.Emit(KindBlacklistAdd, Fields{URL: url, Engine: "gsb", Source: "gsb", ViaForm: true, Delay: 41 * time.Minute})
	rec.Emit(KindBlacklistAdd, Fields{URL: url, Engine: "smartscreen", Source: "shared:gsb"})
	clock.advance(2 * time.Minute)
	rec.Emit(KindSighting, Fields{URL: url, Engine: "gsb", Method: "api"})
	clock.advance(time.Hour)
	rec.Emit(KindTakedown, Fields{Domain: domain, Delay: 98 * time.Minute})
	rec.Emit(KindStageEnd, Fields{Stage: "main"})
}

func recordLifecycle(seed int64, replica int) []byte {
	var buf bytes.Buffer
	rec := NewRecorder(NewWriter(&buf), seed, replica, newFakeClock())
	clock := rec.clock.(*fakeClock)
	emitLifecycle(rec, clock, "https://evil-"+string(rune('a'+replica))+".example/login", "evil.example")
	return buf.Bytes()
}

func TestRecorderDeterministic(t *testing.T) {
	a := recordLifecycle(42, 0)
	b := recordLifecycle(42, 0)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different journals:\n%s\nvs\n%s", a, b)
	}
	c := recordLifecycle(43, 0)
	if bytes.Equal(a, c) {
		t.Fatalf("different seeds produced identical journals")
	}
}

func TestRecorderCausalChain(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(NewWriter(&buf), 7, 0, newFakeClock())
	emitLifecycle(rec, rec.clock.(*fakeClock), "https://evil.example/login", "evil.example")
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byKind := func(kind, engine string) Event {
		for _, ev := range events {
			if ev.Kind == kind && (engine == "" || ev.Engine == engine) {
				return ev
			}
		}
		t.Fatalf("no %s/%s event", kind, engine)
		return Event{}
	}

	deploy := byKind(KindDeploy, "")
	report := byKind(KindReportSubmit, "gsb")
	listing := byKind(KindBlacklistAdd, "gsb")
	shared := byKind(KindBlacklistAdd, "smartscreen")
	sighting := byKind(KindSighting, "gsb")

	if deploy.Parent != "" {
		t.Errorf("deploy should be a span root, parent=%s", deploy.Parent)
	}
	if report.Parent != deploy.ID {
		t.Errorf("report parent = %s, want deploy id %s", report.Parent, deploy.ID)
	}
	if listing.Parent != report.ID {
		t.Errorf("listing parent = %s, want report id %s", listing.Parent, report.ID)
	}
	if shared.Parent != listing.ID {
		t.Errorf("shared listing parent = %s, want origin listing id %s", shared.Parent, listing.ID)
	}
	if sighting.Parent != listing.ID {
		t.Errorf("sighting parent = %s, want listing id %s", sighting.Parent, listing.ID)
	}
	// crawl visits chain to the report and repeat occurrences stay distinct.
	var visitIDs []string
	for _, ev := range events {
		if ev.Kind != KindCrawlVisit {
			continue
		}
		if ev.Parent != report.ID {
			t.Errorf("visit parent = %s, want report id %s", ev.Parent, report.ID)
		}
		visitIDs = append(visitIDs, ev.ID)
	}
	if len(visitIDs) != 2 || visitIDs[0] == visitIDs[1] {
		t.Errorf("repeat visits should get distinct ids, got %v", visitIDs)
	}
	// Every URL-lifecycle event shares the deploy's span; stage and host
	// events live in their own namespaces.
	for _, ev := range events {
		switch ev.Kind {
		case KindStageStart, KindStageEnd, KindTakedown:
			if ev.Span == deploy.Span {
				t.Errorf("%s should not share the URL span", ev.Kind)
			}
		default:
			if ev.Span != deploy.Span {
				t.Errorf("%s span = %s, want URL span %s", ev.Kind, ev.Span, deploy.Span)
			}
		}
	}
	stageEnd := byKind(KindStageEnd, "")
	if stageEnd.Parent != byKind(KindStageStart, "").ID {
		t.Errorf("stage_end should parent on stage_start")
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	rec.Emit(KindDeploy, Fields{URL: "https://x.example"}) // must not panic
	if rec.Seq() != 0 {
		t.Errorf("nil recorder Seq = %d", rec.Seq())
	}
	if NewRecorder(nil, 1, 0, newFakeClock()) != nil {
		t.Errorf("NewRecorder with nil writer should be nil")
	}
	if NewRecorder(NewWriter(&bytes.Buffer{}), 1, 0, nil) != nil {
		t.Errorf("NewRecorder with nil clock should be nil")
	}
	if NewWriter(nil) != nil {
		t.Errorf("NewWriter(nil) should be nil")
	}
	var w *Writer
	w.write(0, []byte("x\n"))
	w.CloseReplica(0)
	if err := w.Flush(); err != nil {
		t.Errorf("nil writer Flush = %v", err)
	}
	if w.Lines() != 0 || w.Err() != nil {
		t.Errorf("nil writer Lines/Err = %d/%v", w.Lines(), w.Err())
	}
}

func TestEventRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(NewWriter(&buf), 3, 2, newFakeClock())
	rec.Emit(KindCrawlVisit, Fields{
		URL:     `https://weird.example/p?q="1"\2`,
		Engine:  "gsb",
		Verdict: "phish",
		ViaForm: true,
		Attempt: 3,
		Delay:   90 * time.Second,
	})
	// Replica 2 buffers until the ordered stream reaches it.
	if err := rec.w.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events", len(events))
	}
	ev := events[0]
	if ev.URL != `https://weird.example/p?q="1"\2` {
		t.Errorf("URL round-trip = %q", ev.URL)
	}
	if ev.Kind != KindCrawlVisit || ev.Engine != "gsb" || ev.Verdict != "phish" ||
		!ev.ViaForm || ev.Attempt != 3 || ev.DelayS != 90 || ev.Replica != 2 {
		t.Errorf("round-trip mismatch: %+v", ev)
	}
	if !ev.Sim.Equal(baseTime) {
		t.Errorf("Sim = %v, want %v", ev.Sim, baseTime)
	}
	if len(ev.ID) != 16 || len(ev.Span) != 16 {
		t.Errorf("ids should be 16 hex digits: id=%q span=%q", ev.ID, ev.Span)
	}
}

func TestAppendJSONString(t *testing.T) {
	cases := map[string]string{
		"plain":        `"plain"`,
		`quo"te`:       `"quo\"te"`,
		`back\slash`:   `"back\\slash"`,
		"new\nline":    `"new\nline"`,
		"tab\there":    `"tab\there"`,
		"bell\x07ring": `"bell\u0007ring"`,
		"":             `""`,
	}
	for in, want := range cases {
		if got := string(appendJSONString(nil, in)); got != want {
			t.Errorf("appendJSONString(%q) = %s, want %s", in, got, want)
		}
	}
}

func TestRecorderSimOverride(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(NewWriter(&buf), 1, 0, newFakeClock())
	at := baseTime.Add(72 * time.Hour)
	rec.Emit(KindFaultWindowOpen, Fields{Fault: "dns_outage", FaultKind: "dns_blackout", Sim: at})
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !events[0].Sim.Equal(at) {
		t.Errorf("Sim override not honoured: %v", events[0].Sim)
	}
	if events[0].FaultKind != "dns_blackout" {
		t.Errorf("fault_kind = %q", events[0].FaultKind)
	}
}

func TestJournalLinesAreOneLineEach(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(NewWriter(&buf), 1, 0, newFakeClock())
	emitLifecycle(rec, rec.clock.(*fakeClock), "https://evil.example/login", "evil.example")
	out := buf.String()
	n := strings.Count(out, "\n")
	if int64(n) != rec.w.Lines() {
		t.Errorf("%d newlines vs %d lines accepted", n, rec.w.Lines())
	}
	if rec.Seq() != uint64(n) {
		t.Errorf("Seq = %d, want %d", rec.Seq(), n)
	}
}
