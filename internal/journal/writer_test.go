package journal

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func line(s string) []byte { return []byte(s + "\n") }

func TestWriterReplicaOrder(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)

	// Three replica worlds emitting interleaved, completing out of order.
	w.write(1, line("r1a"))
	w.write(0, line("r0a"))
	w.write(2, line("r2a"))
	w.write(1, line("r1b"))
	w.CloseReplica(2) // finishes first: must still print last
	w.write(0, line("r0b"))
	w.CloseReplica(0)
	w.write(1, line("r1c"))
	w.CloseReplica(1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	want := "r0a\nr0b\nr1a\nr1b\nr1c\nr2a\n"
	if got := buf.String(); got != want {
		t.Errorf("stream order:\n got %q\nwant %q", got, want)
	}
	if w.Lines() != 6 {
		t.Errorf("Lines = %d, want 6", w.Lines())
	}
}

func TestWriterStreamsLowestOpenReplica(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.write(0, line("r0a"))
	if buf.String() != "r0a\n" {
		t.Errorf("replica 0 should stream through immediately, got %q", buf.String())
	}
	w.CloseReplica(0)
	// After replica 0 closes, replica 1 becomes the streaming replica.
	w.write(1, line("r1a"))
	if buf.String() != "r0a\nr1a\n" {
		t.Errorf("replica 1 should stream after 0 closes, got %q", buf.String())
	}
}

func TestWriterFlushSafetyNet(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// A cancelled run: replicas 2 and 1 buffered, nothing ever closed.
	w.write(2, line("r2a"))
	w.write(1, line("r1a"))
	w.write(1, line("r1b"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "r1a\nr1b\nr2a\n"
	if got := buf.String(); got != want {
		t.Errorf("flush order:\n got %q\nwant %q", got, want)
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after--
	return len(p), nil
}

func TestWriterErrorSticks(t *testing.T) {
	w := NewWriter(&failWriter{after: 1})
	w.write(0, line("ok"))
	w.write(0, line("fails"))
	w.write(0, line("skipped"))
	if w.Err() == nil {
		t.Fatal("expected a write error")
	}
	if err := w.Flush(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Flush = %v, want the first write error", err)
	}
}
