package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// ParseEvent decodes one journal line.
func ParseEvent(line []byte) (Event, error) {
	var ev Event
	if err := json.Unmarshal(line, &ev); err != nil {
		return ev, fmt.Errorf("journal: parsing event: %w", err)
	}
	return ev, nil
}

// ReadEvents parses a JSONL journal back into events — the analysis-side
// counterpart of the Recorder, used by phishtrace and the tests.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, err := ParseEvent(line)
		if err != nil {
			return out, fmt.Errorf("journal: line %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("journal: reading journal: %w", err)
	}
	return out, nil
}
