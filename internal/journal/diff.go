package journal

import (
	"fmt"
	"sort"
	"strings"
)

// SpanChange is one URL whose lifecycle outcome differs between two
// journals.
type SpanChange struct {
	Key  string // "r<replica>|<stage>|<url>"
	A, B string // rendered outcomes
}

// DiffReport is the run-to-run comparison of two journals, keyed by
// (replica, stage, url). Outcomes compare listing engine, report→listing
// lag, and visit counts — the things a regression in engine behaviour or
// evasion strength would move.
type DiffReport struct {
	// OnlyA / OnlyB are URL keys present in only one journal.
	OnlyA, OnlyB []string
	// Changed are URLs present in both with differing outcomes.
	Changed []SpanChange
	// KindCounts maps event kind -> [countA, countB] for kinds whose totals
	// differ.
	KindCounts map[string][2]int
}

// Identical reports whether the diff found no differences.
func (d *DiffReport) Identical() bool {
	return len(d.OnlyA) == 0 && len(d.OnlyB) == 0 && len(d.Changed) == 0 && len(d.KindCounts) == 0
}

func outcomeOf(tl *Timeline) string {
	if !tl.Listed {
		return fmt.Sprintf("not listed (visits=%d serves=%d)", tl.Visits, tl.PayloadServes)
	}
	return fmt.Sprintf("listed by %s after %.0fm (visits=%d via_form=%v)",
		tl.Engine, tl.ListingLag.Minutes(), tl.Visits, tl.ViaForm)
}

func spanOutcomes(events []Event) (map[string]string, []string) {
	st := Analyze(events)
	out := make(map[string]string)
	var order []string
	for _, sec := range st.Sections {
		for _, tl := range sec.Timelines {
			key := fmt.Sprintf("r%d|%s|%s", sec.Replica, sec.Stage, tl.URL)
			if _, dup := out[key]; dup {
				continue // later sections re-running a stage keep the first outcome
			}
			out[key] = outcomeOf(tl)
			order = append(order, key)
		}
	}
	return out, order
}

// Diff compares two journals run-to-run.
func Diff(a, b []Event) *DiffReport {
	d := &DiffReport{KindCounts: make(map[string][2]int)}
	oa, orderA := spanOutcomes(a)
	ob, orderB := spanOutcomes(b)
	for _, key := range orderA {
		bv, ok := ob[key]
		if !ok {
			d.OnlyA = append(d.OnlyA, key)
			continue
		}
		if av := oa[key]; av != bv {
			d.Changed = append(d.Changed, SpanChange{Key: key, A: av, B: bv})
		}
	}
	for _, key := range orderB {
		if _, ok := oa[key]; !ok {
			d.OnlyB = append(d.OnlyB, key)
		}
	}
	counts := make(map[string][2]int)
	for _, ev := range a {
		c := counts[ev.Kind]
		c[0]++
		counts[ev.Kind] = c
	}
	for _, ev := range b {
		c := counts[ev.Kind]
		c[1]++
		counts[ev.Kind] = c
	}
	for kind, c := range counts {
		if c[0] != c[1] {
			d.KindCounts[kind] = c
		}
	}
	return d
}

// Render formats the diff as text; labels name the two journals.
func (d *DiffReport) Render(labelA, labelB string) string {
	var b strings.Builder
	if d.Identical() {
		fmt.Fprintf(&b, "journals agree: same URL outcomes and event-kind totals\n")
		return b.String()
	}
	if len(d.KindCounts) > 0 {
		kinds := make([]string, 0, len(d.KindCounts))
		for k := range d.KindCounts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(&b, "event-kind totals differ:\n")
		for _, k := range kinds {
			c := d.KindCounts[k]
			fmt.Fprintf(&b, "  %-20s %s=%d %s=%d\n", k, labelA, c[0], labelB, c[1])
		}
	}
	for _, key := range d.OnlyA {
		fmt.Fprintf(&b, "only in %s: %s\n", labelA, key)
	}
	for _, key := range d.OnlyB {
		fmt.Fprintf(&b, "only in %s: %s\n", labelB, key)
	}
	for _, ch := range d.Changed {
		fmt.Fprintf(&b, "changed: %s\n  %s: %s\n  %s: %s\n", ch.Key, labelA, ch.A, labelB, ch.B)
	}
	return b.String()
}
