package reputation

import (
	"testing"
	"time"
)

func TestRankListSetRankAndLen(t *testing.T) {
	t.Parallel()
	l := NewRankList()
	l.Set("popular.com", 12)
	l.Set("NICHE.com", 500000)
	if got := l.Rank("popular.com"); got != 12 {
		t.Fatalf("Rank = %d, want 12", got)
	}
	if got := l.Rank("niche.com"); got != 500000 {
		t.Fatalf("Rank should be case-insensitive, got %d", got)
	}
	if got := l.Rank("absent.com"); got != 0 {
		t.Fatalf("Rank(unlisted) = %d, want 0", got)
	}
	if got := l.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

func TestRankListTopOrdering(t *testing.T) {
	t.Parallel()
	l := NewRankList()
	l.Set("third.com", 30)
	l.Set("first.com", 1)
	l.Set("second.com", 2)
	got := l.Top(2)
	if len(got) != 2 || got[0] != "first.com" || got[1] != "second.com" {
		t.Fatalf("Top(2) = %v", got)
	}
	if all := l.Top(99); len(all) != 3 {
		t.Fatalf("Top(99) = %v, want all 3", all)
	}
}

func TestArchive(t *testing.T) {
	t.Parallel()
	a := NewArchive()
	if a.Archived("old.com") {
		t.Fatal("fresh archive should report nothing archived")
	}
	a.AddSnapshot("old.com", time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC))
	a.AddSnapshot("OLD.com", time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC))
	if !a.Archived("old.com") {
		t.Fatal("domain with snapshots should be archived")
	}
	if got := a.Snapshots("old.com"); got != 2 {
		t.Fatalf("Snapshots = %d, want 2", got)
	}
}

func TestSearchIndex(t *testing.T) {
	t.Parallel()
	s := NewSearchIndex()
	if got := s.SiteQuery("site.com"); got != 0 {
		t.Fatalf("SiteQuery(unindexed) = %d, want 0", got)
	}
	s.Index("site.com", 42)
	if got := s.SiteQuery("SITE.com"); got != 42 {
		t.Fatalf("SiteQuery = %d, want 42", got)
	}
}

func TestScannerVerdicts(t *testing.T) {
	t.Parallel()
	s := NewScanner()
	if !s.Clean("neutral.com") {
		t.Fatal("unscanned domain should be clean")
	}
	s.Report("bad.com", Verdict{Engine: "engine-a", Malicious: true})
	s.Report("bad.com", Verdict{Engine: "engine-b", Malicious: false})
	s.Report("bad.com", Verdict{Engine: "engine-c", Malicious: true})
	if got := s.Detections("bad.com"); got != 2 {
		t.Fatalf("Detections = %d, want 2", got)
	}
	if s.Clean("bad.com") {
		t.Fatal("flagged domain should not be clean")
	}
}

func TestScannerScanCounter(t *testing.T) {
	t.Parallel()
	s := NewScanner()
	s.Clean("a.com")
	s.Detections("b.com")
	if got := s.Scans(); got != 2 {
		t.Fatalf("Scans = %d, want 2", got)
	}
}
