// Package reputation simulates the third-party reputation services the
// drop-catch pipeline consults: a popularity rank list (Alexa), a web archive
// (Internet Archive), a search-engine index (Google site: queries), and a
// multi-engine malware/phishing scanner (VirusTotal).
//
// Pipeline steps 1, 4, 5 and 6 of the paper reduce to membership and history
// questions against these services.
package reputation

import (
	"sort"
	"strings"
	"sync"
	"time"
)

func canonical(domain string) string {
	return strings.TrimSuffix(strings.ToLower(strings.TrimSpace(domain)), ".")
}

// RankList is a popularity list such as the Alexa top 1M.
type RankList struct {
	mu    sync.RWMutex
	ranks map[string]int
}

// NewRankList returns an empty rank list.
func NewRankList() *RankList {
	return &RankList{ranks: make(map[string]int)}
}

// Set assigns rank (1 = most popular) to domain.
func (l *RankList) Set(domain string, rank int) {
	l.mu.Lock()
	l.ranks[canonical(domain)] = rank
	l.mu.Unlock()
}

// Rank returns domain's rank, or 0 if unlisted.
func (l *RankList) Rank(domain string) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.ranks[canonical(domain)]
}

// Len reports the number of listed domains.
func (l *RankList) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.ranks)
}

// Top returns up to n domains ordered by ascending rank.
func (l *RankList) Top(n int) []string {
	l.mu.RLock()
	type entry struct {
		domain string
		rank   int
	}
	entries := make([]entry, 0, len(l.ranks))
	for d, r := range l.ranks {
		entries = append(entries, entry{d, r})
	}
	l.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].rank == entries[j].rank {
			return entries[i].domain < entries[j].domain
		}
		return entries[i].rank < entries[j].rank
	})
	if n > len(entries) {
		n = len(entries)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = entries[i].domain
	}
	return out
}

// Archive is a web archive recording page snapshots per domain.
type Archive struct {
	mu        sync.RWMutex
	snapshots map[string][]time.Time
}

// NewArchive returns an empty archive.
func NewArchive() *Archive {
	return &Archive{snapshots: make(map[string][]time.Time)}
}

// AddSnapshot records that domain was archived at t.
func (a *Archive) AddSnapshot(domain string, t time.Time) {
	key := canonical(domain)
	a.mu.Lock()
	a.snapshots[key] = append(a.snapshots[key], t)
	a.mu.Unlock()
}

// Snapshots returns the number of archived captures for domain.
func (a *Archive) Snapshots(domain string) int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.snapshots[canonical(domain)])
}

// Archived reports whether domain was archived at least once — pipeline
// step 5's web-history requirement.
func (a *Archive) Archived(domain string) bool {
	return a.Snapshots(domain) > 0
}

// SearchIndex is a search engine's index, queried with site:domain.
type SearchIndex struct {
	mu    sync.RWMutex
	pages map[string]int
}

// NewSearchIndex returns an empty index.
func NewSearchIndex() *SearchIndex {
	return &SearchIndex{pages: make(map[string]int)}
}

// Index records that domain has n indexed pages.
func (s *SearchIndex) Index(domain string, n int) {
	s.mu.Lock()
	s.pages[canonical(domain)] = n
	s.mu.Unlock()
}

// SiteQuery returns the number of indexed pages for site:domain — pipeline
// step 6's requirement is SiteQuery ≥ 1.
func (s *SearchIndex) SiteQuery(domain string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pages[canonical(domain)]
}

// Verdict is one scanning engine's opinion of a domain.
type Verdict struct {
	Engine    string
	Malicious bool
	At        time.Time
}

// Scanner is a multi-engine scanner in the style of VirusTotal: step 4
// submits candidate domains and rejects any flagged by at least one engine.
type Scanner struct {
	mu       sync.RWMutex
	verdicts map[string][]Verdict
	scans    int64
}

// NewScanner returns an empty scanner.
func NewScanner() *Scanner {
	return &Scanner{verdicts: make(map[string][]Verdict)}
}

// Report records a verdict for domain.
func (s *Scanner) Report(domain string, v Verdict) {
	key := canonical(domain)
	s.mu.Lock()
	s.verdicts[key] = append(s.verdicts[key], v)
	s.mu.Unlock()
}

// Detections returns how many engines flagged domain as malicious.
func (s *Scanner) Detections(domain string) int {
	s.mu.Lock()
	s.scans++
	s.mu.Unlock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, v := range s.verdicts[canonical(domain)] {
		if v.Malicious {
			n++
		}
	}
	return n
}

// Clean reports whether no engine flagged the domain.
func (s *Scanner) Clean(domain string) bool {
	return s.Detections(domain) == 0
}

// Scans reports the number of scan queries served.
func (s *Scanner) Scans() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scans
}
