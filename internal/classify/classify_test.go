package classify

import (
	"testing"

	"areyouhuman/internal/htmlmini"
	"areyouhuman/internal/phishkit"
)

// kitFetcher serves a kit's bundled resources like the phishing host would.
func kitFetcher(k *phishkit.Kit) ResourceFetcher {
	return func(path string) []byte { return k.Resources[path] }
}

func examineKit(t *testing.T, brand phishkit.Brand, prov phishkit.Provenance, host string) Evidence {
	t.Helper()
	k, err := phishkit.GenerateWithProvenance(brand, prov)
	if err != nil {
		t.Fatal(err)
	}
	dom := htmlmini.Parse(k.LoginHTML)
	return Examine(host, dom, kitFetcher(k))
}

func TestClonedPayPalEvidence(t *testing.T) {
	t.Parallel()
	ev := examineKit(t, phishkit.PayPal, phishkit.Cloned, "random-site.example")
	if ev.Brand != phishkit.PayPal {
		t.Fatalf("Brand = %q", ev.Brand)
	}
	if !ev.HasLoginForm || !ev.TitleMatch || !ev.ResourceMatch || !ev.OffDomain {
		t.Fatalf("evidence = %+v, want all signals", ev)
	}
}

func TestScratchGmailEvidenceLacksFingerprint(t *testing.T) {
	t.Parallel()
	ev := examineKit(t, phishkit.Gmail, phishkit.FromScratch, "random-site.example")
	if ev.Brand != phishkit.Gmail {
		t.Fatalf("Brand = %q", ev.Brand)
	}
	if ev.ResourceMatch {
		t.Fatal("scratch-built kit must not fingerprint-match")
	}
	if !ev.TitleMatch && ev.KeywordHits < 2 {
		t.Fatalf("scratch Gmail should still show content signals: %+v", ev)
	}
}

func TestVerdictsByPower(t *testing.T) {
	t.Parallel()
	cloned := examineKit(t, phishkit.Facebook, phishkit.Cloned, "x.example")
	scratch := examineKit(t, phishkit.Gmail, phishkit.FromScratch, "x.example")

	// Cloned kits: caught by both classifier families.
	if !Verdict(cloned, PowerFingerprint) || !Verdict(cloned, PowerContent) {
		t.Fatal("cloned kit should convict under both powers")
	}
	// Scratch kits: only content classifiers convict — the paper's Gmail
	// result (only GSB and NetCraft detected it).
	if Verdict(scratch, PowerFingerprint) {
		t.Fatal("fingerprint classifiers must miss scratch-built kits")
	}
	if !Verdict(scratch, PowerContent) {
		t.Fatal("content classifiers should catch scratch-built kits")
	}
	// PowerNone convicts nothing, ever.
	if Verdict(cloned, PowerNone) {
		t.Fatal("PowerNone must never convict")
	}
}

func TestOnDomainBrandIsNotPhishing(t *testing.T) {
	t.Parallel()
	ev := examineKit(t, phishkit.PayPal, phishkit.Cloned, "www.paypal.com")
	if ev.OffDomain {
		t.Fatal("official domain must not be off-domain")
	}
	if Verdict(ev, PowerContent) {
		t.Fatal("the real PayPal login page is not phishing")
	}
}

func TestBenignPageNoEvidence(t *testing.T) {
	t.Parallel()
	dom := htmlmini.Parse(`<html><head><title>Garden Tips</title></head>
<body><h1>Ten tips for a better garden</h1><p>Water your plants.</p></body></html>`)
	ev := Examine("garden.example", dom, nil)
	if ev.HasLoginForm {
		t.Fatal("no password input on benign page")
	}
	if Verdict(ev, PowerContent) {
		t.Fatal("benign page must not convict")
	}
}

func TestLoginFormWithoutBrandNotConvicted(t *testing.T) {
	t.Parallel()
	dom := htmlmini.Parse(`<html><head><title>Intranet Portal</title></head>
<body><form action="/login" method="post"><input type="password" name="p"></form></body></html>`)
	ev := Examine("intranet.example", dom, nil)
	if !ev.HasLoginForm {
		t.Fatal("password input should be detected")
	}
	if Verdict(ev, PowerContent) {
		t.Fatal("a generic login form without brand impersonation is not phishing")
	}
}

func TestNilFetcherDegradesGracefully(t *testing.T) {
	t.Parallel()
	k, _ := phishkit.Generate(phishkit.PayPal)
	ev := Examine("x.example", htmlmini.Parse(k.LoginHTML), nil)
	if ev.ResourceMatch {
		t.Fatal("no fetcher means no fingerprint evidence")
	}
	// Content power still convicts via title/keywords.
	if !Verdict(ev, PowerContent) {
		t.Fatalf("content power should convict on title alone: %+v", ev)
	}
}

func TestPowerString(t *testing.T) {
	t.Parallel()
	if PowerNone.String() != "none" || PowerFingerprint.String() != "fingerprint" || PowerContent.String() != "content" {
		t.Fatal("power strings wrong")
	}
	if Power(42).String() != "unknown" {
		t.Fatal("unknown power string")
	}
}

func TestBenignSiteWithCaptchaGateStaysClean(t *testing.T) {
	t.Parallel()
	// The reCAPTCHA challenge page is what bots see: benign text, a widget,
	// no form, no brand payload. It must never convict.
	dom := htmlmini.Parse(`<html><head><title>Garden Tips</title></head><body>
<h1>Welcome</h1><p>Please verify that you are human to continue.</p>
<div class="g-recaptcha" data-sitekey="k"></div>
<script>function capback(t){}</script></body></html>`)
	ev := Examine("site.example", dom, nil)
	if Verdict(ev, PowerContent) || Verdict(ev, PowerFingerprint) {
		t.Fatal("CAPTCHA challenge page must classify benign")
	}
}
