// Package classify is the phishing-content classifier anti-phishing engines
// run over fetched pages.
//
// It models the two classifier families the paper's results imply:
//
//   - fingerprint classifiers match bundled brand resources (logos,
//     favicons, web beacons — Section 3 notes these "play an important role
//     for anti-phishing companies to track and detect phishing attacks")
//     against the brand's official bytes. They catch *cloned* kits, whose
//     resources are byte-identical, and miss *from-scratch* pages.
//
//   - content classifiers additionally weigh brand keywords, page titles,
//     and login-form structure, so they also catch scratch-built lookalikes.
//     Only GSB and NetCraft detected the paper's scratch-built Gmail kit.
//
// A page is phishing evidence only when it impersonates a brand *off* the
// brand's official domain and asks for credentials.
package classify

import (
	"strings"

	"areyouhuman/internal/htmlmini"
	"areyouhuman/internal/phishkit"
)

// Power is a classifier family.
type Power int

// Classifier powers.
const (
	// PowerNone never flags anything (YSB's observed behaviour in the
	// preliminary test).
	PowerNone Power = iota
	// PowerFingerprint needs an exact brand-resource match.
	PowerFingerprint
	// PowerContent flags on content signals too (GSB, NetCraft).
	PowerContent
)

func (p Power) String() string {
	switch p {
	case PowerNone:
		return "none"
	case PowerFingerprint:
		return "fingerprint"
	case PowerContent:
		return "content"
	default:
		return "unknown"
	}
}

// Evidence is what examination of one page produced.
type Evidence struct {
	// Brand is the impersonated brand ("" if none matched).
	Brand phishkit.Brand
	// HasLoginForm is true when the page contains a password input.
	HasLoginForm bool
	// TitleMatch is true when the page title matches the brand's.
	TitleMatch bool
	// KeywordHits counts brand-name occurrences in visible text.
	KeywordHits int
	// ResourceMatch is true when a fetched logo/favicon is byte-identical to
	// the brand's official resource.
	ResourceMatch bool
	// OffDomain is true when the serving host is not the brand's own.
	OffDomain bool
}

// ResourceFetcher retrieves a page-relative resource (nil on failure). The
// engine's crawler supplies one bound to its HTTP client.
type ResourceFetcher func(path string) []byte

// Examine inspects a rendered page for brand impersonation.
func Examine(host string, dom *htmlmini.Node, fetch ResourceFetcher) Evidence {
	ev := Evidence{HasLoginForm: hasPasswordInput(dom)}
	title := strings.ToLower(dom.Title())
	text := strings.ToLower(dom.Text())

	best := Evidence{}
	for _, brand := range phishkit.Brands() {
		spec, _ := phishkit.SpecFor(brand)
		cand := Evidence{Brand: brand, HasLoginForm: ev.HasLoginForm}
		cand.TitleMatch = titleMatches(title, spec.Title)
		cand.KeywordHits = strings.Count(text, strings.ToLower(string(brand)))
		if brand == phishkit.Gmail {
			// Scratch or not, Gmail pages say Google all over.
			cand.KeywordHits += strings.Count(text, "google")
		}
		cand.OffDomain = !strings.HasSuffix(strings.ToLower(host), spec.OfficialDomain)
		if fetch != nil {
			for _, res := range pageResources(dom) {
				data := fetch(res)
				if data == nil {
					continue
				}
				h := phishkit.HashBytes(data)
				if h == phishkit.OfficialResourceHash(brand, "logo") ||
					h == phishkit.OfficialResourceHash(brand, "favicon") {
					cand.ResourceMatch = true
					break
				}
			}
		}
		if score(cand) > score(best) {
			best = cand
		}
	}
	if best.Brand == "" {
		return ev
	}
	return best
}

func score(ev Evidence) int {
	s := 0
	if ev.ResourceMatch {
		s += 4
	}
	if ev.TitleMatch {
		s += 2
	}
	s += min(ev.KeywordHits, 3)
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Verdict decides whether the evidence convicts the page as phishing under
// the given classifier power.
func Verdict(ev Evidence, power Power) bool {
	if power == PowerNone {
		return false
	}
	if ev.Brand == "" || !ev.HasLoginForm || !ev.OffDomain {
		return false
	}
	if ev.ResourceMatch {
		return true
	}
	if power == PowerContent {
		return ev.TitleMatch || ev.KeywordHits >= 2
	}
	return false
}

func hasPasswordInput(dom *htmlmini.Node) bool {
	for _, input := range dom.Find("input") {
		if strings.EqualFold(input.AttrOr("type", ""), "password") {
			return true
		}
	}
	return false
}

// titleMatches checks significant-token overlap between page and brand
// titles.
func titleMatches(pageTitle, brandTitle string) bool {
	if pageTitle == "" {
		return false
	}
	brandTokens := tokens(strings.ToLower(brandTitle))
	if len(brandTokens) == 0 {
		return false
	}
	pageSet := map[string]bool{}
	for _, t := range tokens(pageTitle) {
		pageSet[t] = true
	}
	hit := 0
	for _, t := range brandTokens {
		if pageSet[t] {
			hit++
		}
	}
	return hit*2 >= len(brandTokens) // at least half the brand title's tokens
}

func tokens(s string) []string {
	return strings.FieldsFunc(s, func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
}

// pageResources lists candidate brand-resource paths referenced by the page:
// image sources and icon links.
func pageResources(dom *htmlmini.Node) []string {
	var out []string
	for _, img := range dom.Find("img") {
		if src, ok := img.Attr("src"); ok {
			out = append(out, src)
		}
	}
	for _, link := range dom.Find("link") {
		rel := strings.ToLower(link.AttrOr("rel", ""))
		if strings.Contains(rel, "icon") {
			if href, ok := link.Attr("href"); ok {
				out = append(out, href)
			}
		}
	}
	return out
}
