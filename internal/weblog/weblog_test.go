package weblog

import (
	"io"
	"net/http"
	"testing"
	"time"

	"areyouhuman/internal/evasion"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/simnet"
)

func TestMiddlewareRecordsRequests(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	log := New(clock)
	net := simnet.New(nil)
	net.Register("logged.example", log.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
			return
		}
		io.WriteString(w, "ok")
	})))
	client := simnet.NewClient(net, "198.51.100.10")
	for _, p := range []string{"/", "/page.php", "/missing"} {
		req, _ := http.NewRequest("GET", "http://logged.example"+p, nil)
		req.Header.Set("User-Agent", "TestAgent/1.0")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	entries := log.Entries()
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
	if entries[0].IP != "198.51.100.10" || entries[0].UserAgent != "TestAgent/1.0" || entries[0].Host != "logged.example" {
		t.Fatalf("entry = %+v", entries[0])
	}
	if entries[2].Status != http.StatusNotFound {
		t.Fatalf("status of /missing = %d, want 404", entries[2].Status)
	}
	if entries[0].Bytes != len("ok") {
		t.Fatalf("bytes of / = %d, want %d", entries[0].Bytes, len("ok"))
	}
	if entries[2].Bytes == 0 {
		t.Fatal("404 response should still record its body byte count")
	}
}

func TestUniqueIPsAndRequests(t *testing.T) {
	t.Parallel()
	log := New(simclock.New(simclock.Epoch))
	for i, ip := range []string{"10.0.0.1", "10.0.0.2", "10.0.0.1", "10.0.0.3"} {
		log.Append(Entry{IP: ip, Path: "/", Time: simclock.Epoch.Add(time.Duration(i) * time.Minute)})
	}
	if log.Requests() != 4 {
		t.Fatalf("Requests = %d", log.Requests())
	}
	if log.UniqueIPs() != 3 {
		t.Fatalf("UniqueIPs = %d, want 3", log.UniqueIPs())
	}
}

func TestServeLoggerAndPayloadServes(t *testing.T) {
	t.Parallel()
	log := New(simclock.New(simclock.Epoch))
	fn := log.ServeLogger()
	req, _ := http.NewRequest("POST", "http://x.example/login.php", nil)
	req.RemoteAddr = "10.1.1.1:555"
	fn(req, evasion.ServeBenign)
	fn(req, evasion.ServePayload)
	fn(req, evasion.ServePayload)
	if got := log.ServeCounts(); got[evasion.ServeBenign] != 1 || got[evasion.ServePayload] != 2 {
		t.Fatalf("ServeCounts = %v", got)
	}
	reaches := log.PayloadServes()
	if len(reaches) != 2 || reaches[0].IP != "10.1.1.1" {
		t.Fatalf("PayloadServes = %+v", reaches)
	}
	// Serve-decision entries are not access requests.
	if log.Requests() != 0 {
		t.Fatalf("Requests = %d, want 0", log.Requests())
	}
}

func TestClassifyProbe(t *testing.T) {
	t.Parallel()
	cases := []struct {
		path string
		kind ProbeKind
		ok   bool
	}{
		{"/shell.php", ProbeWebShell, true},
		{"/admin/c99.php", ProbeWebShell, true},
		{"/wp-content/WSO.php", ProbeWebShell, true},
		{"/kit.zip", ProbeKitArchive, true},
		{"/backup/site.ZIP", ProbeKitArchive, true},
		{"/logs/rezult.txt", ProbeCredentials, true},
		{"/data/victims.log", ProbeCredentials, true},
		{"/index.php", "", false},
		{"/img/logo.png", "", false},
	}
	for _, c := range cases {
		kind, ok := ClassifyProbe(c.path)
		if kind != c.kind || ok != c.ok {
			t.Errorf("ClassifyProbe(%q) = %v,%v; want %v,%v", c.path, kind, ok, c.kind, c.ok)
		}
	}
}

func TestProbeReport(t *testing.T) {
	t.Parallel()
	log := New(simclock.New(simclock.Epoch))
	paths := []string{"/shell.php", "/c99.php", "/kit.zip", "/creds.txt", "/a.log", "/index.php"}
	for _, p := range paths {
		log.Append(Entry{IP: "10.0.0.9", Path: p})
	}
	rep := log.ProbeReport()
	if rep[ProbeWebShell] != 2 || rep[ProbeKitArchive] != 1 || rep[ProbeCredentials] != 2 {
		t.Fatalf("ProbeReport = %v", rep)
	}
}

func TestTrafficConcentration(t *testing.T) {
	t.Parallel()
	log := New(simclock.New(simclock.Epoch))
	// 9 requests in the first 2 hours, 1 request much later: 90%.
	for i := 0; i < 9; i++ {
		log.Append(Entry{IP: "10.0.0.1", Path: "/", Time: simclock.Epoch.Add(time.Duration(i) * 10 * time.Minute)})
	}
	log.Append(Entry{IP: "10.0.0.1", Path: "/", Time: simclock.Epoch.Add(48 * time.Hour)})
	got := log.TrafficConcentration(2 * time.Hour)
	if got < 0.89 || got > 0.91 {
		t.Fatalf("TrafficConcentration = %v, want 0.9", got)
	}
}

func TestTrafficConcentrationEmpty(t *testing.T) {
	t.Parallel()
	log := New(simclock.New(simclock.Epoch))
	if got := log.TrafficConcentration(time.Hour); got != 0 {
		t.Fatalf("empty log concentration = %v", got)
	}
}
