// Package weblog captures and analyses web-server access logs.
//
// The paper's findings lean heavily on server-side log analysis: per-engine
// request counts and unique source IPs (Table 1), evidence that GSB bots
// clicked the alert-box confirm button, that NetCraft bypassed all six
// session pages, and the classification of OpenPhish's 81,967-request probe
// storm into web-shell, kit (.zip), and credential-file (.log/.txt) hunting.
package weblog

import (
	"net/http"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"areyouhuman/internal/evasion"
	"areyouhuman/internal/simclock"
)

// Entry is one access-log line.
type Entry struct {
	Time      time.Time
	IP        string
	Method    string
	Host      string
	Path      string
	UserAgent string
	Status    int
	// Bytes is the response body size in bytes (0 for serve-decision
	// entries, which record a routing choice rather than a response).
	Bytes int
	// Serve is the evasion wrapper's decision for this request, when the
	// logged handler is an evasion deployment ("" otherwise).
	Serve evasion.ServeKind
}

// Log is an append-only access log. The zero value is not usable; call New.
type Log struct {
	clock simclock.Clock

	mu      sync.Mutex
	entries []Entry
}

// New returns an empty log on the given clock (simclock.Real when nil).
func New(clock simclock.Clock) *Log {
	if clock == nil {
		clock = simclock.Real
	}
	return &Log{clock: clock}
}

// Append adds a fully formed entry (used by tests and replays).
func (l *Log) Append(e Entry) {
	l.mu.Lock()
	l.entries = append(l.entries, e)
	l.mu.Unlock()
}

// Middleware records every request passing through, including its response
// status.
func (l *Log) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		l.Append(Entry{
			Time:      l.clock.Now(),
			IP:        clientIP(r),
			Method:    r.Method,
			Host:      r.Host,
			Path:      r.URL.Path,
			UserAgent: r.UserAgent(),
			Status:    sw.status,
			Bytes:     sw.bytes,
		})
	})
}

// ServeLogger adapts the log as an evasion.LogFunc, recording the wrapper's
// serve decisions as their own entries.
func (l *Log) ServeLogger() evasion.LogFunc {
	return func(r *http.Request, kind evasion.ServeKind) {
		l.Append(Entry{
			Time:      l.clock.Now(),
			IP:        clientIP(r),
			Method:    r.Method,
			Host:      r.Host,
			Path:      r.URL.Path,
			UserAgent: r.UserAgent(),
			Serve:     kind,
		})
	}
}

type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
	wrote  bool
}

func (s *statusWriter) WriteHeader(code int) {
	if !s.wrote {
		s.status = code
		s.wrote = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(p []byte) (int, error) {
	// A body write implies the implicit 200 header; later WriteHeader calls
	// are superfluous and must not overwrite the recorded status.
	s.wrote = true
	n, err := s.ResponseWriter.Write(p)
	s.bytes += n
	return n, err
}

func clientIP(r *http.Request) string {
	addr := r.RemoteAddr
	if i := strings.LastIndexByte(addr, ':'); i >= 0 {
		return addr[:i]
	}
	return addr
}

// Entries returns a copy of all entries in arrival order.
func (l *Log) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Len reports the number of entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Requests counts access entries (serve-decision entries excluded).
func (l *Log) Requests() int {
	n := 0
	for _, e := range l.Entries() {
		if e.Serve == "" {
			n++
		}
	}
	return n
}

// UniqueIPs counts distinct source addresses across all entries.
func (l *Log) UniqueIPs() int {
	seen := map[string]bool{}
	for _, e := range l.Entries() {
		seen[e.IP] = true
	}
	return len(seen)
}

// PayloadServes returns the serve-decision entries where the phishing
// payload was revealed — the "bot reached the phishing content" evidence of
// Section 4.
func (l *Log) PayloadServes() []Entry {
	var out []Entry
	for _, e := range l.Entries() {
		if e.Serve == evasion.ServePayload {
			out = append(out, e)
		}
	}
	return out
}

// ServeCounts tallies serve decisions by kind.
func (l *Log) ServeCounts() map[evasion.ServeKind]int {
	out := map[evasion.ServeKind]int{}
	for _, e := range l.Entries() {
		if e.Serve != "" {
			out[e.Serve]++
		}
	}
	return out
}

// ProbeKind classifies suspicious crawler probes.
type ProbeKind string

// Probe kinds observed in the paper's OpenPhish analysis.
const (
	ProbeWebShell    ProbeKind = "web-shell"
	ProbeKitArchive  ProbeKind = "kit-archive"
	ProbeCredentials ProbeKind = "credential-files"
)

// webShellNames are filenames of famous web shells that crawlers probe for.
var webShellNames = map[string]bool{
	"shell.php": true, "c99.php": true, "r57.php": true, "wso.php": true,
	"b374k.php": true, "alfa.php": true, "up.php": true, "cmd.php": true,
	"marijuana.php": true, "indoxploit.php": true,
}

// ClassifyProbe categorises a request path, reporting whether it is a probe
// at all.
func ClassifyProbe(reqPath string) (ProbeKind, bool) {
	base := strings.ToLower(path.Base(reqPath))
	switch {
	case webShellNames[base]:
		return ProbeWebShell, true
	case strings.HasSuffix(base, ".zip"):
		return ProbeKitArchive, true
	case strings.HasSuffix(base, ".log"), strings.HasSuffix(base, ".txt"):
		return ProbeCredentials, true
	}
	return "", false
}

// ProbeReport tallies probe requests by kind — the Section 4.1 breakdown of
// what anti-phishing bots hunted for on the server.
func (l *Log) ProbeReport() map[ProbeKind]int {
	out := map[ProbeKind]int{}
	for _, e := range l.Entries() {
		if e.Serve != "" {
			continue
		}
		if kind, ok := ClassifyProbe(e.Path); ok {
			out[kind]++
		}
	}
	return out
}

// TrafficConcentration reports the fraction of access requests arriving
// within window of the first request — the paper observed ~90% of traffic in
// the first two hours.
func (l *Log) TrafficConcentration(window time.Duration) float64 {
	var times []time.Time
	for _, e := range l.Entries() {
		if e.Serve == "" {
			times = append(times, e.Time)
		}
	}
	if len(times) == 0 {
		return 0
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	cutoff := times[0].Add(window)
	n := 0
	for _, t := range times {
		if !t.After(cutoff) {
			n++
		}
	}
	return float64(n) / float64(len(times))
}
