package weblog

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"areyouhuman/internal/evasion"
	"areyouhuman/internal/simclock"
)

func sampleEntry() Entry {
	return Entry{
		Time:      time.Date(2020, 5, 4, 13, 37, 42, 0, time.UTC),
		IP:        "66.249.64.7",
		Method:    "POST",
		Host:      "garden-tools.com",
		Path:      "/wp-content/secure/login.php",
		UserAgent: "Mozilla/5.0 (compatible; Google-Safety)",
		Status:    200,
		Bytes:     5120,
	}
}

func TestFormatCLFShape(t *testing.T) {
	t.Parallel()
	line := FormatCLF(sampleEntry())
	for _, want := range []string{
		"66.249.64.7 - - [04/May/2020:13:37:42 +0000]",
		`"POST /wp-content/secure/login.php HTTP/1.1"`,
		"200",
		`"http://garden-tools.com/"`,
		`"Mozilla/5.0 (compatible; Google-Safety)"`,
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
}

func TestCLFRoundTrip(t *testing.T) {
	t.Parallel()
	in := sampleEntry()
	out, err := ParseCLF(FormatCLF(in))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Time.Equal(in.Time) || out.IP != in.IP || out.Method != in.Method ||
		out.Host != in.Host || out.Path != in.Path || out.UserAgent != in.UserAgent ||
		out.Status != in.Status || out.Bytes != in.Bytes {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

func TestFormatCLFBytes(t *testing.T) {
	t.Parallel()
	line := FormatCLF(sampleEntry())
	if !strings.Contains(line, " 200 5120 ") {
		t.Fatalf("line %q should carry the real response size after the status", line)
	}
	empty := sampleEntry()
	empty.Bytes = 0
	if line := FormatCLF(empty); !strings.Contains(line, " 200 - ") {
		t.Fatalf("line %q should use the CLF dash for a zero-byte response", line)
	}
}

// TestCLFServeSlotEdgeCases round-trips the SERVE/ protocol-slot encoding
// with the awkward field combinations serve-decision entries actually have:
// no method, no path, no status, no bytes.
func TestCLFServeSlotEdgeCases(t *testing.T) {
	t.Parallel()
	cases := []Entry{
		{ // serve decision with empty method and path
			Time: simclock.Epoch, IP: "10.9.9.9", Host: "h.example",
			UserAgent: "Bot/2.0", Serve: evasion.ServeChallenge,
		},
		{ // serve decision with method but no path
			Time: simclock.Epoch.Add(time.Minute), IP: "10.9.9.9", Host: "h.example",
			Method: "POST", UserAgent: "Bot/2.0", Serve: evasion.ServeCover,
		},
		{ // access entry with empty method and path, bytes recorded
			Time: simclock.Epoch.Add(2 * time.Minute), IP: "10.9.9.9", Host: "h.example",
			UserAgent: "Bot/2.0", Status: 200, Bytes: 17,
		},
	}
	for i, in := range cases {
		line := FormatCLF(in)
		out, err := ParseCLF(line)
		if err != nil {
			t.Fatalf("case %d: ParseCLF(%q): %v", i, line, err)
		}
		if out.Serve != in.Serve || out.Method != in.Method || out.Path != in.Path ||
			out.Bytes != in.Bytes || out.Status != in.Status || !out.Time.Equal(in.Time) {
			t.Fatalf("case %d: round trip = %+v, want %+v (line %q)", i, out, in, line)
		}
	}
}

func TestCLFServeDecisionRoundTrip(t *testing.T) {
	t.Parallel()
	in := sampleEntry()
	in.Serve = evasion.ServePayload
	in.Status = 0
	out, err := ParseCLF(FormatCLF(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Serve != evasion.ServePayload {
		t.Fatalf("serve kind = %q, want payload", out.Serve)
	}
}

func TestWriteReadCLFWholeLog(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	log := New(clock)
	log.Append(sampleEntry())
	e2 := sampleEntry()
	e2.IP = "52.8.120.3"
	e2.Serve = evasion.ServeBenign
	log.Append(e2)

	var buf bytes.Buffer
	if err := log.WriteCLF(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCLF(&buf, clock)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 2 {
		t.Fatalf("restored %d entries", restored.Len())
	}
	if restored.UniqueIPs() != 2 || restored.Requests() != 1 {
		t.Fatalf("restored analysis: ips=%d reqs=%d", restored.UniqueIPs(), restored.Requests())
	}
}

func TestParseCLFMalformed(t *testing.T) {
	t.Parallel()
	for _, line := range []string{
		"",
		"nonsense",
		`1.2.3.4 - - [not-a-time] "GET / HTTP/1.1" 200 0 "r" "ua"`,
		`1.2.3.4 - - [04/May/2020:13:37:42 +0000] "GET / HTTP/1.1" 200 0 "unterminated`,
	} {
		if _, err := ParseCLF(line); err == nil {
			t.Errorf("ParseCLF(%q) should fail", line)
		}
	}
}

// Property: format→parse is lossless for entries with printable fields.
func TestQuickCLFRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(ipOct uint8, status uint8, pathSeed uint16) bool {
		e := Entry{
			Time:      simclock.Epoch.Add(time.Duration(pathSeed) * time.Second),
			IP:        "198.51.100." + itoa(int(ipOct)),
			Method:    "GET",
			Host:      "h.example",
			Path:      "/p" + itoa(int(pathSeed)),
			UserAgent: "Agent/1.0",
			Status:    200 + int(status)%300,
		}
		out, err := ParseCLF(FormatCLF(e))
		if err != nil {
			return false
		}
		return out.IP == e.IP && out.Path == e.Path && out.Status == e.Status && out.Time.Equal(e.Time)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}

// FuzzParseCLF ensures the CLF parser is total: arbitrary lines either parse
// or fail with an error — never panic.
func FuzzParseCLF(f *testing.F) {
	f.Add(FormatCLF(sampleEntry()))
	f.Add(`1.2.3.4 - - [04/May/2020:13:37:42 +0000] "GET / HTTP/1.1" 200 0 "r" "ua"`)
	f.Add("")
	f.Add(`x [`)
	f.Add(`ip - - [04/May/2020:13:37:42 +0000] "unclosed`)
	f.Fuzz(func(t *testing.T, line string) {
		entry, err := ParseCLF(line)
		if err == nil {
			// A parsed entry must re-format without panicking.
			_ = FormatCLF(entry)
		}
	})
}
