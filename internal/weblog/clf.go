package weblog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"areyouhuman/internal/evasion"
	"areyouhuman/internal/simclock"
)

// Access logs serialise to Common Log Format with the user agent appended
// (the NCSA "combined"-ish shape ops teams actually grep), so simulated logs
// can be exported, diffed, and re-imported — the paper's analysis workflow
// is log files on disk.

// clfTime is the CLF timestamp layout.
const clfTime = "02/Jan/2006:15:04:05 -0700"

// FormatCLF renders one entry as a combined-log line. Serve-decision entries
// carry the kind in the request line's protocol slot so they survive a round
// trip. The size slot is the response byte count, "-" when nothing was
// written (the CLF convention for absent sizes).
func FormatCLF(e Entry) string {
	// 256 bytes covers a typical line in one allocation; longer lines grow.
	return string(AppendCLF(make([]byte, 0, 256), e))
}

// AppendCLF appends the combined-log line for e to dst and returns the
// extended slice. It produces byte-for-byte the same line as FormatCLF while
// letting callers amortise the buffer — the zero-allocation path the access
// log's export uses for every request of every visitor.
//
//phishlint:hotpath
func AppendCLF(dst []byte, e Entry) []byte {
	dst = append(dst, e.IP...)
	dst = append(dst, " - - ["...)
	dst = e.Time.AppendFormat(dst, clfTime)
	dst = append(dst, "] "...)
	// Request line, quoted like %q of "METHOD PATH PROTO".
	method, path := orDash(e.Method), orDash(e.Path)
	if plainASCII(method) && plainASCII(path) && plainASCII(string(e.Serve)) {
		dst = append(dst, '"')
		dst = append(dst, method...)
		dst = append(dst, ' ')
		dst = append(dst, path...)
		dst = append(dst, ' ')
		if e.Serve != "" {
			dst = append(dst, "SERVE/"...)
			dst = append(dst, e.Serve...)
		} else {
			dst = append(dst, "HTTP/1.1"...)
		}
		dst = append(dst, '"')
	} else {
		proto := "HTTP/1.1"
		if e.Serve != "" {
			proto = "SERVE/" + string(e.Serve) //phishlint:allow allocfree strconv.Quote fallback for non-printable input; generated traffic always takes the ASCII fast path
		}
		dst = strconv.AppendQuote(dst, method+" "+path+" "+proto) //phishlint:allow allocfree strconv.Quote fallback for non-printable input; generated traffic always takes the ASCII fast path
	}
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(e.Status), 10)
	dst = append(dst, ' ')
	if e.Bytes > 0 {
		dst = strconv.AppendInt(dst, int64(e.Bytes), 10)
	} else {
		dst = append(dst, '-')
	}
	dst = append(dst, ' ')
	if plainASCII(e.Host) {
		dst = append(dst, `"http://`...)
		dst = append(dst, e.Host...)
		dst = append(dst, `/"`...)
	} else {
		dst = strconv.AppendQuote(dst, "http://"+e.Host+"/") //phishlint:allow allocfree strconv.Quote fallback for non-printable hosts; synthesized domains are ASCII
	}
	dst = append(dst, ' ')
	dst = appendQuoted(dst, e.UserAgent)
	return dst
}

// plainASCII reports whether s quotes under %q as just `"` + s + `"` —
// printable ASCII with no escapes. The fast paths above rely on it to stay
// byte-identical with strconv.Quote.
//
//phishlint:hotpath
func plainASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

//phishlint:hotpath
func appendQuoted(dst []byte, s string) []byte {
	if plainASCII(s) {
		dst = append(dst, '"')
		dst = append(dst, s...)
		return append(dst, '"')
	}
	return strconv.AppendQuote(dst, s)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// clfBufPool holds export scratch buffers for WriteCLF.
var clfBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64*1024)
		return &b
	},
}

// WriteCLF dumps the whole log in arrival order. Lines are formatted into a
// pooled buffer and flushed in chunks, without copying the entry slice.
func (l *Log) WriteCLF(w io.Writer) error {
	bufp := clfBufPool.Get().(*[]byte)
	defer clfBufPool.Put(bufp)
	buf := (*bufp)[:0]
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.entries {
		buf = AppendCLF(buf, e)
		buf = append(buf, '\n')
		if len(buf) >= 48*1024 {
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("weblog: writing CLF: %w", err)
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("weblog: writing CLF: %w", err)
		}
	}
	*bufp = buf[:0]
	return nil
}

// ParseCLF parses one combined-log line back into an Entry.
func ParseCLF(line string) (Entry, error) {
	var e Entry
	rest := strings.TrimSpace(line)

	// ip - - [time] ...
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return e, fmt.Errorf("weblog: malformed CLF line %q", line)
	}
	e.IP = rest[:sp]
	open := strings.IndexByte(rest, '[')
	clos := strings.IndexByte(rest, ']')
	if open < 0 || clos < open {
		return e, fmt.Errorf("weblog: missing timestamp in %q", line)
	}
	ts, err := time.Parse(clfTime, rest[open+1:clos])
	if err != nil {
		return e, fmt.Errorf("weblog: bad timestamp: %w", err)
	}
	e.Time = ts

	fields, err := quotedFields(rest[clos+1:])
	if err != nil {
		return e, fmt.Errorf("weblog: %w in %q", err, line)
	}
	if len(fields) < 5 {
		return e, fmt.Errorf("weblog: truncated CLF line %q", line)
	}
	// fields: request, status, size, referer, agent
	reqParts := strings.SplitN(fields[0], " ", 3)
	if len(reqParts) == 3 {
		e.Method = dashEmpty(reqParts[0])
		e.Path = dashEmpty(reqParts[1])
		if kind, ok := strings.CutPrefix(reqParts[2], "SERVE/"); ok {
			e.Serve = evasion.ServeKind(kind)
		}
	}
	if n, err := strconv.Atoi(fields[1]); err == nil {
		e.Status = n
	}
	// Size slot: "-" (and legacy "0") mean no body bytes recorded.
	if n, err := strconv.Atoi(fields[2]); err == nil && n > 0 {
		e.Bytes = n
	}
	if host, ok := strings.CutPrefix(fields[3], "http://"); ok {
		e.Host = strings.TrimSuffix(host, "/")
	}
	e.UserAgent = fields[4]
	return e, nil
}

func dashEmpty(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

// quotedFields splits a CLF tail: unquoted tokens and double-quoted strings.
func quotedFields(s string) ([]string, error) {
	var out []string
	i := 0
	for i < len(s) {
		switch {
		case s[i] == ' ':
			i++
		case s[i] == '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("unterminated quote")
			}
			out = append(out, s[i+1:j])
			i = j + 1
		default:
			j := i
			for j < len(s) && s[j] != ' ' {
				j++
			}
			out = append(out, s[i:j])
			i = j
		}
	}
	return out, nil
}

// ReadCLF parses a whole log dump into a Log (entries keep their recorded
// times; the clock is only used for future appends).
func ReadCLF(r io.Reader, clock simclock.Clock) (*Log, error) {
	l := New(clock)
	scanner := bufio.NewScanner(r)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		e, err := ParseCLF(line)
		if err != nil {
			return nil, err
		}
		l.Append(e)
	}
	return l, scanner.Err()
}
