package weblog

import (
	"testing"
	"time"

	"areyouhuman/internal/evasion"
)

// TestAppendCLFAllocs is the allocation-regression gate for the CLF hot path:
// appending a typical fleet-crawler entry into a pre-sized buffer must not
// allocate at all, and FormatCLF must pay only for the returned string.
func TestAppendCLFAllocs(t *testing.T) {
	e := Entry{
		Time:      time.Date(2020, 4, 7, 13, 37, 0, 0, time.UTC),
		IP:        "66.102.9.104",
		Method:    "GET",
		Host:      "login-paypal.example",
		Path:      "/index.php?auth=1",
		UserAgent: "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)",
		Status:    200,
		Bytes:     5120,
		Serve:     evasion.ServePayload,
	}
	buf := make([]byte, 0, 512)
	if got := testing.AllocsPerRun(100, func() {
		buf = AppendCLF(buf[:0], e)
	}); got != 0 {
		t.Errorf("AppendCLF into a sized buffer allocates %.1f times per line, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		_ = FormatCLF(e)
	}); got > 2 {
		t.Errorf("FormatCLF allocates %.1f times per line, want <= 2 (slice + string)", got)
	}
}

// TestAppendCLFAllocsEscaped pins the slow path's ceiling: a user agent that
// needs real escaping may allocate for the quoted form but must stay bounded.
func TestAppendCLFAllocsEscaped(t *testing.T) {
	e := Entry{
		Time:      time.Date(2020, 4, 7, 13, 37, 0, 0, time.UTC),
		IP:        "198.51.100.7",
		Method:    "GET",
		Host:      "login-paypal.example",
		Path:      "/x",
		UserAgent: "weird \"agent\"\twith controls",
		Status:    404,
	}
	buf := make([]byte, 0, 512)
	if got := testing.AllocsPerRun(100, func() {
		buf = AppendCLF(buf[:0], e)
	}); got > 2 {
		t.Errorf("AppendCLF escaped path allocates %.1f times per line, want <= 2", got)
	}
}
