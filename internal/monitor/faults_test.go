package monitor

import (
	"testing"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/telemetry"
)

// fakeFaults is a scripted FaultSource: the engine is down inside the outage
// window, the feed reads stale by lag, and flapping hides a listing before
// flapUntil.
type fakeFaults struct {
	outageFrom, outageTo time.Time
	lag                  time.Duration
	flapUntil            time.Time
}

func (f *fakeFaults) EngineDown(key string, now time.Time) bool {
	return !now.Before(f.outageFrom) && now.Before(f.outageTo)
}
func (f *fakeFaults) FeedLag(key string, now time.Time) time.Duration { return f.lag }
func (f *fakeFaults) Flap(url, key string, now time.Time) bool {
	return now.Before(f.flapUntil)
}

// TestWatchAPIRetriesThroughOutage drives an API watcher into a scripted
// outage: every poll inside the window must schedule backoff retries (counted
// in telemetry), the retries must respect the virtual clock, and once the
// outage lifts the watcher still records the sighting.
func TestWatchAPIRetriesThroughOutage(t *testing.T) {
	t.Parallel()
	sched, clock := newSched()
	tel := &telemetry.Set{Metrics: telemetry.NewRegistry()}
	faults := &fakeFaults{
		outageFrom: simclock.Epoch,
		outageTo:   simclock.Epoch.Add(3 * time.Hour),
	}
	m := New(sched).WithFaults(faults, 7)
	m.Instrument(tel)
	list := blacklist.NewList("gsb", clock)
	url := "http://phish.example/login.php"
	until := simclock.Epoch.Add(24 * time.Hour)
	m.WatchAPI(url, "gsb", list, until)

	sched.After(30*time.Minute, "list", func(time.Time) { list.Add(url, "gsb") })
	sched.Run(until.Add(time.Hour))

	retries := tel.M().Counter(MetricRetries, "engine", "gsb").Value()
	if retries == 0 {
		t.Error("no backoff retries were scheduled during a 3-hour outage")
	}
	s, ok := m.FirstSeen(url, "gsb")
	if !ok {
		t.Fatal("sighting lost to the outage; graceful degradation failed")
	}
	if s.SeenAt.Before(faults.outageTo) {
		t.Errorf("sighting at %v, inside the outage window ending %v", s.SeenAt, faults.outageTo)
	}
	if s.SeenAt.After(until) {
		t.Errorf("sighting at %v is past the watch deadline %v", s.SeenAt, until)
	}
}

// TestRetriesAreBounded pins the backoff budget: an outage covering the whole
// watch window must not retry forever — the attempt budget caps the extra
// probes each poll tick spawns.
func TestRetriesAreBounded(t *testing.T) {
	t.Parallel()
	sched, clock := newSched()
	tel := &telemetry.Set{Metrics: telemetry.NewRegistry()}
	until := simclock.Epoch.Add(6 * time.Hour)
	faults := &fakeFaults{outageFrom: simclock.Epoch, outageTo: until.Add(time.Hour)}
	m := New(sched).WithFaults(faults, 7)
	m.Instrument(tel)
	list := blacklist.NewList("gsb", clock)
	m.WatchAPI("http://phish.example/x", "gsb", list, until)

	sched.Run(until.Add(2 * time.Hour))

	retries := tel.M().Counter(MetricRetries, "engine", "gsb").Value()
	// 12 poll ticks in 6 hours, at most Attempts retries each.
	maxRetries := int64(12 * m.backoff.Attempts)
	if retries == 0 || retries > maxRetries {
		t.Errorf("retries = %d, want in (0, %d]", retries, maxRetries)
	}
}

// TestFeedLagDelaysSighting: with a stale feed, a fresh listing stays
// invisible until the lagged snapshot catches up to it.
func TestFeedLagDelaysSighting(t *testing.T) {
	t.Parallel()
	sched, clock := newSched()
	faults := &fakeFaults{lag: 2 * time.Hour}
	m := New(sched).WithFaults(faults, 7)
	list := blacklist.NewList("openphish", clock)
	url := "http://phish.example/feed.php"
	until := simclock.Epoch.Add(24 * time.Hour)
	m.WatchFeed(url, "openphish", list, until)

	listAt := simclock.Epoch.Add(30 * time.Minute)
	sched.After(30*time.Minute, "list", func(time.Time) { list.Add(url, "openphish") })
	sched.Run(until.Add(time.Hour))

	s, ok := m.FirstSeen(url, "openphish")
	if !ok {
		t.Fatal("sighting expected once the stale feed catches up")
	}
	if s.SeenAt.Before(listAt.Add(faults.lag)) {
		t.Errorf("stale feed sighted at %v, before listing+lag %v", s.SeenAt, listAt.Add(faults.lag))
	}
}

// TestFlappingHidesThenReveals: while flapping, an already-listed URL is
// invisible to lookups; after the flap window the sighting lands.
func TestFlappingHidesThenReveals(t *testing.T) {
	t.Parallel()
	sched, clock := newSched()
	flapUntil := simclock.Epoch.Add(4 * time.Hour)
	faults := &fakeFaults{flapUntil: flapUntil}
	m := New(sched).WithFaults(faults, 7)
	list := blacklist.NewList("gsb", clock)
	url := "http://phish.example/flap.php"
	until := simclock.Epoch.Add(24 * time.Hour)
	m.WatchAPI(url, "gsb", list, until)

	list.Add(url, "gsb") // listed from the start
	sched.Run(until.Add(time.Hour))

	s, ok := m.FirstSeen(url, "gsb")
	if !ok {
		t.Fatal("sighting expected after flapping stops")
	}
	if s.SeenAt.Before(flapUntil) {
		t.Errorf("sighted at %v while the listing was flapping until %v", s.SeenAt, flapUntil)
	}
}
