// Package monitor implements the paper's blacklist-monitoring pipeline
// (Section 3, "Reporting and Monitoring Process"):
//
//   - GSB and YSB: poll the lookup API for each watched URL;
//   - OpenPhish, PhishTank, APWG: download the feed every 30 minutes and
//     diff it;
//   - NetCraft: watch the reporter's mailbox for outcome notifications;
//   - SmartScreen: no public API — open the URL in a monitored browser and
//     "screenshot" it every 10 minutes for the first 72 hours, then every
//     5 hours (the verdict is whether the browser's SmartScreen client
//     blocks the page).
package monitor

import (
	"sort"
	"strings"
	"sync"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/report"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/telemetry"
)

// Method labels how a sighting was obtained.
type Method string

// Monitoring methods.
const (
	MethodAPI        Method = "api-poll"
	MethodFeed       Method = "feed-diff"
	MethodMail       Method = "mail"
	MethodScreenshot Method = "screenshot"
)

// Sighting records the first time a watched URL was seen blacklisted.
type Sighting struct {
	URL    string
	Engine string
	SeenAt time.Time
	Method Method
}

// Monitor watches engine blacklists for a set of URLs.
type Monitor struct {
	sched *simclock.Scheduler
	tel   *telemetry.Set

	mu        sync.Mutex
	sightings map[string]map[string]Sighting // url -> engine -> first sighting
	polls     int
}

// New returns a monitor driving its probes off sched.
func New(sched *simclock.Scheduler) *Monitor {
	return &Monitor{sched: sched, sightings: make(map[string]map[string]Sighting)}
}

// Monitor metric names.
const (
	MetricPolls     = "phish_monitor_polls_total"
	MetricSightings = "phish_monitor_sightings_total"
)

// Instrument attaches telemetry: a poll counter per (engine, method), a
// sighting counter, and a trace event per first sighting.
func (m *Monitor) Instrument(set *telemetry.Set) {
	m.tel = set
	if reg := set.M(); reg != nil {
		reg.Describe(MetricPolls, "Blacklist probe actions (API polls, feed diffs, mailbox scans, screenshots).")
		reg.Describe(MetricSightings, "First observations of a watched URL on an engine blacklist.")
	}
}

// pollCounter resolves the poll counter for one watcher (nil without
// telemetry, so increments no-op).
func (m *Monitor) pollCounter(engine string, method Method) *telemetry.Counter {
	return m.tel.M().Counter(MetricPolls, "engine", engine, "method", string(method))
}

// PollInterval is the feed/API polling cadence (the paper polled every half
// hour).
const PollInterval = 30 * time.Minute

// WatchAPI polls list for url until horizon.
func (m *Monitor) WatchAPI(url, engine string, list *blacklist.List, until time.Time) {
	m.watchList(url, engine, list, MethodAPI, PollInterval, until)
}

// WatchFeed downloads the feed snapshot on the polling cadence and diffs it
// for url.
func (m *Monitor) WatchFeed(url, engine string, list *blacklist.List, until time.Time) {
	m.watchList(url, engine, list, MethodFeed, PollInterval, until)
}

func (m *Monitor) watchList(url, engine string, list *blacklist.List, method Method, interval time.Duration, until time.Time) {
	pollc := m.pollCounter(engine, method)
	m.sched.Every(interval, "monitor:"+engine,
		func(now time.Time) bool { return now.After(until) || m.seen(url, engine) },
		func(now time.Time) {
			m.mu.Lock()
			m.polls++
			m.mu.Unlock()
			pollc.Inc()
			listed := false
			if method == MethodFeed {
				for _, e := range list.Snapshot() {
					if e.URL == blacklist.Canonicalize(url) {
						listed = true
						break
					}
				}
			} else {
				listed = list.CheckByHash(url)
			}
			if listed {
				m.record(Sighting{URL: url, Engine: engine, SeenAt: now, Method: method})
			}
		})
}

// WatchMail scans the reporter mailbox on the polling cadence for outcome
// notifications mentioning url.
func (m *Monitor) WatchMail(url, engine, mailbox string, mail *report.MailSystem, until time.Time) {
	pollc := m.pollCounter(engine, MethodMail)
	m.sched.Every(PollInterval, "monitor:mail:"+engine,
		func(now time.Time) bool { return now.After(until) || m.seen(url, engine) },
		func(now time.Time) {
			m.mu.Lock()
			m.polls++
			m.mu.Unlock()
			pollc.Inc()
			for _, msg := range mail.Inbox(mailbox) {
				if strings.Contains(msg.Subject, url) || strings.Contains(msg.Body, url) {
					m.record(Sighting{URL: url, Engine: engine, SeenAt: now, Method: MethodMail})
					return
				}
			}
		})
}

// Screenshot cadence from the paper: every 10 minutes for the first 72
// hours, then every 5 hours.
const (
	screenshotFastInterval = 10 * time.Minute
	screenshotFastWindow   = 72 * time.Hour
	screenshotSlowInterval = 5 * time.Hour
)

// WatchScreenshots drives the SmartScreen prober: visit checks whether the
// monitored browser blocks url right now.
func (m *Monitor) WatchScreenshots(url, engine string, visit func() bool, until time.Time) {
	start := m.sched.Clock().Now()
	fastEnd := start.Add(screenshotFastWindow)
	pollc := m.pollCounter(engine, MethodScreenshot)
	shoot := func(now time.Time) {
		m.mu.Lock()
		m.polls++
		m.mu.Unlock()
		pollc.Inc()
		if visit() {
			m.record(Sighting{URL: url, Engine: engine, SeenAt: now, Method: MethodScreenshot})
		}
	}
	m.sched.Every(screenshotFastInterval, "monitor:screenshot-fast:"+engine,
		func(now time.Time) bool { return now.After(fastEnd) || now.After(until) || m.seen(url, engine) },
		shoot)
	m.sched.At(fastEnd, "monitor:screenshot-slow-start:"+engine, func(time.Time) {
		m.sched.Every(screenshotSlowInterval, "monitor:screenshot-slow:"+engine,
			func(now time.Time) bool { return now.After(until) || m.seen(url, engine) },
			shoot)
	})
}

func (m *Monitor) record(s Sighting) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byEngine, ok := m.sightings[s.URL]
	if !ok {
		byEngine = make(map[string]Sighting)
		m.sightings[s.URL] = byEngine
	}
	if _, dup := byEngine[s.Engine]; !dup {
		byEngine[s.Engine] = s
		m.tel.M().Counter(MetricSightings, "engine", s.Engine, "method", string(s.Method)).Inc()
		if m.tel.Tracing() {
			m.tel.T().Event("monitor.sighting",
				telemetry.String("engine", s.Engine),
				telemetry.String("url", s.URL),
				telemetry.String("method", string(s.Method)))
		}
	}
}

func (m *Monitor) seen(url, engine string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.sightings[url][engine]
	return ok
}

// FirstSeen returns the first sighting of url by engine.
func (m *Monitor) FirstSeen(url, engine string) (Sighting, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sightings[url][engine]
	return s, ok
}

// Engines returns every engine that sighted url, in lexical order (the
// sightings map must never leak Go's randomized iteration order to callers).
func (m *Monitor) Engines(url string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for engine := range m.sightings[url] {
		out = append(out, engine)
	}
	sort.Strings(out)
	return out
}

// Polls reports how many probe actions ran.
func (m *Monitor) Polls() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.polls
}
