// Package monitor implements the paper's blacklist-monitoring pipeline
// (Section 3, "Reporting and Monitoring Process"):
//
//   - GSB and YSB: poll the lookup API for each watched URL;
//   - OpenPhish, PhishTank, APWG: download the feed every 30 minutes and
//     diff it;
//   - NetCraft: watch the reporter's mailbox for outcome notifications;
//   - SmartScreen: no public API — open the URL in a monitored browser and
//     "screenshot" it every 10 minutes for the first 72 hours, then every
//     5 hours (the verdict is whether the browser's SmartScreen client
//     blocks the page).
package monitor

import (
	"sort"
	"strings"
	"sync"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/chaos"
	"areyouhuman/internal/journal"
	"areyouhuman/internal/report"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/simnet"
	"areyouhuman/internal/telemetry"
)

// FaultSource answers fault-window queries for the monitoring pipeline.
// *chaos.Injector satisfies it; without one the pipeline observes a perfect
// world, as it always did.
type FaultSource interface {
	// EngineDown reports whether the engine's public surface (lookup API,
	// feed download) is answering 503 right now.
	EngineDown(key string, now time.Time) bool
	// FeedLag is how stale the engine's public feed reads are (0 = live).
	FeedLag(key string, now time.Time) time.Duration
	// Flap reports whether an already-listed URL is momentarily invisible
	// to lookups against the engine.
	Flap(url, key string, now time.Time) bool
}

// Method labels how a sighting was obtained.
type Method string

// Monitoring methods.
const (
	MethodAPI        Method = "api-poll"
	MethodFeed       Method = "feed-diff"
	MethodMail       Method = "mail"
	MethodScreenshot Method = "screenshot"
)

// Sighting records the first time a watched URL was seen blacklisted.
type Sighting struct {
	URL    string
	Engine string
	SeenAt time.Time
	Method Method
}

// Monitor watches engine blacklists for a set of URLs.
type Monitor struct {
	sched   simclock.EventScheduler
	tel     *telemetry.Set
	rec     *journal.Recorder
	faults  FaultSource
	seed    int64
	backoff chaos.Backoff

	mu        sync.Mutex
	sightings map[string]map[string]Sighting // url -> engine -> first sighting
	polls     int
}

// New returns a monitor driving its probes off sched. Each watch chain is
// rooted on the watched URL's host affinity key (see root), so under a
// sharded scheduler the poll load — by far the world's largest event
// population — spreads across shards instead of serialising on shard 0.
func New(sched simclock.EventScheduler) *Monitor {
	return &Monitor{sched: sched, sightings: make(map[string]map[string]Sighting)}
}

// root returns the scheduling handle a watch on url rides: the URL's host
// affinity key, the same one the report chain is rooted on — so a URL's
// probes serialise with its own lifecycle, and what a probe observes (its
// own shard's staged blacklist additions plus barrier-published state) is a
// pure function of virtual time, identical for every worker count.
func (m *Monitor) root(url string) simclock.Handle {
	return m.sched.OnKey(simnet.ShardKey(hostOf(url)))
}

// hostOf extracts the host from a URL without needing it to parse fully.
func hostOf(rawURL string) string {
	s := rawURL
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' || s[i] == '?' || s[i] == '#' {
			return s[:i]
		}
	}
	return s
}

// WithFaults subjects the monitor's probes to a fault source: probes against
// a down engine schedule bounded backoff retries (deterministically jittered
// from seed) instead of silently learning nothing, feed diffs honour feed
// staleness, and lookups honour flapping. Returns the monitor for chaining.
func (m *Monitor) WithFaults(f FaultSource, seed int64) *Monitor {
	m.faults = f
	m.seed = seed
	m.backoff = chaos.DefaultBackoff()
	return m
}

// WithJournal records each first sighting as a journal event. Returns the
// monitor for chaining.
func (m *Monitor) WithJournal(rec *journal.Recorder) *Monitor {
	m.rec = rec
	return m
}

// Monitor metric names.
const (
	MetricPolls     = "phish_monitor_polls_total"
	MetricSightings = "phish_monitor_sightings_total"
	MetricRetries   = "monitor_retries_total"
)

// Instrument attaches telemetry: a poll counter per (engine, method), a
// sighting counter, and a trace event per first sighting.
func (m *Monitor) Instrument(set *telemetry.Set) {
	m.tel = set
	if reg := set.M(); reg != nil {
		reg.Describe(MetricPolls, "Blacklist probe actions (API polls, feed diffs, mailbox scans, screenshots).")
		reg.Describe(MetricSightings, "First observations of a watched URL on an engine blacklist.")
		reg.Describe(MetricRetries, "Backoff retry probes scheduled after an engine's public surface answered 503.")
	}
}

// pollCounter resolves the poll counter for one watcher (nil without
// telemetry, so increments no-op).
func (m *Monitor) pollCounter(engine string, method Method) *telemetry.Counter {
	return m.tel.M().Counter(MetricPolls, "engine", engine, "method", string(method))
}

// PollInterval is the feed/API polling cadence (the paper polled every half
// hour).
const PollInterval = 30 * time.Minute

// WatchAPI polls list for url until horizon.
func (m *Monitor) WatchAPI(url, engine string, list *blacklist.List, until time.Time) {
	m.watchList(url, engine, list, MethodAPI, PollInterval, until)
}

// WatchFeed downloads the feed snapshot on the polling cadence and diffs it
// for url.
func (m *Monitor) WatchFeed(url, engine string, list *blacklist.List, until time.Time) {
	m.watchList(url, engine, list, MethodFeed, PollInterval, until)
}

func (m *Monitor) watchList(url, engine string, list *blacklist.List, method Method, interval time.Duration, until time.Time) {
	pollc := m.pollCounter(engine, method)
	var probe func(now time.Time, attempt int)
	probe = func(now time.Time, attempt int) {
		m.mu.Lock()
		m.polls++
		m.mu.Unlock()
		pollc.Inc()
		if m.faults != nil && m.faults.EngineDown(engine, now) {
			// The engine's public surface answered 503. The regular cadence
			// keeps running regardless; these are bounded extra probes so a
			// short outage costs minutes, not a full poll interval.
			delay, ok := m.backoff.Delay(m.seed, "monitor|"+engine+"|"+url, attempt)
			if !ok {
				return
			}
			m.tel.M().Counter(MetricRetries, "engine", engine).Inc()
			m.sched.After(delay, "monitor:retry:"+engine, func(then time.Time) {
				if then.After(until) || m.seen(url, engine) {
					return
				}
				probe(then, attempt+1)
			})
			return
		}
		listed := false
		if method == MethodFeed {
			entries := list.Snapshot()
			if m.faults != nil {
				if lag := m.faults.FeedLag(engine, now); lag > 0 {
					// A stale feed is the feed as it stood lag ago.
					entries = list.SnapshotBefore(now.Add(-lag))
				}
			}
			for _, e := range entries {
				if e.URL == blacklist.Canonicalize(url) {
					listed = true
					break
				}
			}
		} else {
			listed = list.CheckByHash(url)
		}
		if listed && m.faults != nil && m.faults.Flap(url, engine, now) {
			listed = false // flapping: the listing is momentarily invisible
		}
		if listed {
			m.record(Sighting{URL: url, Engine: engine, SeenAt: now, Method: method})
		}
	}
	m.root(url).Every(interval, "monitor:"+engine,
		func(now time.Time) bool { return now.After(until) || m.seen(url, engine) },
		func(now time.Time) { probe(now, 1) })
}

// WatchMail scans the reporter mailbox on the polling cadence for outcome
// notifications mentioning url.
func (m *Monitor) WatchMail(url, engine, mailbox string, mail *report.MailSystem, until time.Time) {
	pollc := m.pollCounter(engine, MethodMail)
	m.root(url).Every(PollInterval, "monitor:mail:"+engine,
		func(now time.Time) bool { return now.After(until) || m.seen(url, engine) },
		func(now time.Time) {
			m.mu.Lock()
			m.polls++
			m.mu.Unlock()
			pollc.Inc()
			for _, msg := range mail.Inbox(mailbox) {
				if strings.Contains(msg.Subject, url) || strings.Contains(msg.Body, url) {
					m.record(Sighting{URL: url, Engine: engine, SeenAt: now, Method: MethodMail})
					return
				}
			}
		})
}

// Screenshot cadence from the paper: every 10 minutes for the first 72
// hours, then every 5 hours.
const (
	screenshotFastInterval = 10 * time.Minute
	screenshotFastWindow   = 72 * time.Hour
	screenshotSlowInterval = 5 * time.Hour
)

// WatchScreenshots drives the SmartScreen prober: visit checks whether the
// monitored browser blocks url right now.
func (m *Monitor) WatchScreenshots(url, engine string, visit func() bool, until time.Time) {
	start := m.sched.Clock().Now()
	fastEnd := start.Add(screenshotFastWindow)
	pollc := m.pollCounter(engine, MethodScreenshot)
	shoot := func(now time.Time) {
		m.mu.Lock()
		m.polls++
		m.mu.Unlock()
		pollc.Inc()
		if visit() {
			m.record(Sighting{URL: url, Engine: engine, SeenAt: now, Method: MethodScreenshot})
		}
	}
	h := m.root(url)
	h.Every(screenshotFastInterval, "monitor:screenshot-fast:"+engine,
		func(now time.Time) bool { return now.After(fastEnd) || now.After(until) || m.seen(url, engine) },
		shoot)
	h.At(fastEnd, "monitor:screenshot-slow-start:"+engine, func(time.Time) {
		// Scheduling from inside the event stays on the caller's shard, so
		// the slow cadence inherits the URL's affinity.
		m.sched.Every(screenshotSlowInterval, "monitor:screenshot-slow:"+engine,
			func(now time.Time) bool { return now.After(until) || m.seen(url, engine) },
			shoot)
	})
}

func (m *Monitor) record(s Sighting) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byEngine, ok := m.sightings[s.URL]
	if !ok {
		byEngine = make(map[string]Sighting)
		m.sightings[s.URL] = byEngine
	}
	if _, dup := byEngine[s.Engine]; !dup {
		byEngine[s.Engine] = s
		m.tel.M().Counter(MetricSightings, "engine", s.Engine, "method", string(s.Method)).Inc()
		if m.tel.Tracing() {
			m.tel.T().Event("monitor.sighting",
				telemetry.String("engine", s.Engine),
				telemetry.String("url", s.URL),
				telemetry.String("method", string(s.Method)))
		}
		m.rec.Emit(journal.KindSighting, journal.Fields{
			URL: s.URL, Engine: s.Engine, Method: string(s.Method), Sim: s.SeenAt,
		})
	}
}

func (m *Monitor) seen(url, engine string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.sightings[url][engine]
	return ok
}

// Forget drops all sighting state for url. Streaming campaigns call it when
// a watched exemplar URL's measurement window closes, so monitor memory is
// bounded by in-flight watches instead of growing with every URL ever
// watched. Any still-scheduled watch chain for the URL terminates on its
// next tick: seen() no longer answers true, but the watch's `until` horizon
// should already have passed by window close.
func (m *Monitor) Forget(url string) {
	m.mu.Lock()
	delete(m.sightings, url)
	m.mu.Unlock()
}

// FirstSeen returns the first sighting of url by engine.
func (m *Monitor) FirstSeen(url, engine string) (Sighting, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sightings[url][engine]
	return s, ok
}

// Engines returns every engine that sighted url, in lexical order (the
// sightings map must never leak Go's randomized iteration order to callers).
func (m *Monitor) Engines(url string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for engine := range m.sightings[url] {
		out = append(out, engine)
	}
	sort.Strings(out)
	return out
}

// Polls reports how many probe actions ran.
func (m *Monitor) Polls() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.polls
}
