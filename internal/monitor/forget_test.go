package monitor

import (
	"testing"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/simclock"
)

// TestForgetDropsSightings pins the streaming-campaign contract: Forget
// releases every engine's sighting state for the URL (memory bounded by
// in-flight watches) while leaving other URLs untouched.
func TestForgetDropsSightings(t *testing.T) {
	t.Parallel()
	sched, clock := newSched()
	m := New(sched)
	list := blacklist.NewList("gsb", clock)
	keep := "http://keep.example/login"
	drop := "http://drop.example/login"
	until := simclock.Epoch.Add(6 * time.Hour)
	m.WatchAPI(keep, "gsb", list, until)
	m.WatchAPI(drop, "gsb", list, until)
	sched.After(10*time.Minute, "list", func(time.Time) {
		list.Add(keep, "gsb")
		list.Add(drop, "gsb")
	})
	sched.Run(until.Add(time.Hour))

	if _, ok := m.FirstSeen(drop, "gsb"); !ok {
		t.Fatal("setup: no sighting to forget")
	}
	m.Forget(drop)
	if _, ok := m.FirstSeen(drop, "gsb"); ok {
		t.Error("sighting survived Forget")
	}
	if got := m.Engines(drop); len(got) != 0 {
		t.Errorf("Engines after Forget = %v, want none", got)
	}
	if _, ok := m.FirstSeen(keep, "gsb"); !ok {
		t.Error("Forget leaked onto an unrelated URL")
	}
	// Forgetting an unknown URL is a no-op, not a panic.
	m.Forget("http://never-watched.example/")
}
