package monitor

import (
	"sort"
	"testing"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/report"
	"areyouhuman/internal/simclock"
)

func newSched() (*simclock.Scheduler, *simclock.SimClock) {
	clock := simclock.New(simclock.Epoch)
	return simclock.NewScheduler(clock), clock
}

func TestWatchAPIDetectsListing(t *testing.T) {
	t.Parallel()
	sched, clock := newSched()
	m := New(sched)
	list := blacklist.NewList("gsb", clock)
	url := "http://phish.example/login.php"
	until := simclock.Epoch.Add(24 * time.Hour)
	m.WatchAPI(url, "gsb", list, until)

	// Listing appears 47 minutes in; the 30-minute poll sees it at 60.
	sched.After(47*time.Minute, "list", func(time.Time) { list.Add(url, "gsb") })
	sched.Run(until.Add(time.Hour))

	s, ok := m.FirstSeen(url, "gsb")
	if !ok {
		t.Fatal("sighting expected")
	}
	if want := simclock.Epoch.Add(60 * time.Minute); !s.SeenAt.Equal(want) {
		t.Fatalf("SeenAt = %v, want %v (next poll tick)", s.SeenAt, want)
	}
	if s.Method != MethodAPI {
		t.Fatalf("method = %v", s.Method)
	}
}

func TestWatchFeedDiff(t *testing.T) {
	t.Parallel()
	sched, clock := newSched()
	m := New(sched)
	list := blacklist.NewList("openphish", clock)
	url := "http://phish.example/a.php"
	until := simclock.Epoch.Add(12 * time.Hour)
	m.WatchFeed(url, "openphish", list, until)
	list.Add("http://unrelated.example/", "openphish")
	sched.After(100*time.Minute, "list", func(time.Time) { list.Add(url, "openphish") })
	sched.Run(until.Add(time.Hour))
	s, ok := m.FirstSeen(url, "openphish")
	if !ok || s.Method != MethodFeed {
		t.Fatalf("sighting = %+v,%v", s, ok)
	}
	if s.SeenAt.Sub(simclock.Epoch) != 120*time.Minute {
		t.Fatalf("SeenAt = %v", s.SeenAt)
	}
}

func TestWatchNeverListedNoSighting(t *testing.T) {
	t.Parallel()
	sched, clock := newSched()
	m := New(sched)
	list := blacklist.NewList("gsb", clock)
	url := "http://never.example/x.php"
	until := simclock.Epoch.Add(6 * time.Hour)
	m.WatchAPI(url, "gsb", list, until)
	sched.Run(until.Add(2 * time.Hour))
	if _, ok := m.FirstSeen(url, "gsb"); ok {
		t.Fatal("no sighting expected")
	}
	if m.Polls() == 0 {
		t.Fatal("polling should have happened")
	}
}

func TestPollingStopsAfterSighting(t *testing.T) {
	t.Parallel()
	sched, clock := newSched()
	m := New(sched)
	list := blacklist.NewList("gsb", clock)
	url := "http://phish.example/p.php"
	list.Add(url, "gsb")
	m.WatchAPI(url, "gsb", list, simclock.Epoch.Add(48*time.Hour))
	sched.Run(simclock.Epoch.Add(50 * time.Hour))
	if m.Polls() != 1 {
		t.Fatalf("polls = %d, want 1 (stop after first sighting)", m.Polls())
	}
}

func TestWatchMail(t *testing.T) {
	t.Parallel()
	sched, clock := newSched()
	m := New(sched)
	mail := report.NewMailSystem(clock)
	url := "http://phish.example/n.php"
	until := simclock.Epoch.Add(24 * time.Hour)
	m.WatchMail(url, "netcraft", "reporter@lab.example", mail, until)
	sched.After(40*time.Minute, "mail", func(time.Time) {
		mail.Send("netcraft@takedown.example", "reporter@lab.example", "Report outcome: "+url, "blacklisted")
	})
	sched.Run(until.Add(time.Hour))
	s, ok := m.FirstSeen(url, "netcraft")
	if !ok || s.Method != MethodMail {
		t.Fatalf("sighting = %+v,%v", s, ok)
	}
}

func TestWatchScreenshotsCadence(t *testing.T) {
	t.Parallel()
	sched, _ := newSched()
	m := New(sched)
	url := "http://phish.example/s.php"
	blockedAfter := simclock.Epoch.Add(75 * time.Hour) // after the fast window
	visits := 0
	visit := func() bool {
		visits++
		return sched.Clock().Now().After(blockedAfter)
	}
	until := simclock.Epoch.Add(90 * time.Hour)
	m.WatchScreenshots(url, "smartscreen", visit, until)
	sched.Run(until.Add(time.Hour))

	s, ok := m.FirstSeen(url, "smartscreen")
	if !ok || s.Method != MethodScreenshot {
		t.Fatalf("sighting = %+v,%v", s, ok)
	}
	if s.SeenAt.Before(blockedAfter) {
		t.Fatal("sighting before the browser started blocking")
	}
	// Fast window: ~432 visits (every 10 min for 72h); slow: every 5h.
	if visits < 400 || visits > 460 {
		t.Fatalf("visits = %d, want ≈432 fast + a few slow", visits)
	}
}

func TestEnginesAccumulate(t *testing.T) {
	t.Parallel()
	sched, clock := newSched()
	m := New(sched)
	url := "http://phish.example/z.php"
	a := blacklist.NewList("gsb", clock)
	b := blacklist.NewList("apwg", clock)
	a.Add(url, "gsb")
	b.Add(url, "apwg")
	until := simclock.Epoch.Add(2 * time.Hour)
	m.WatchAPI(url, "gsb", a, until)
	m.WatchFeed(url, "apwg", b, until)
	sched.Run(until.Add(time.Hour))
	got := m.Engines(url)
	sort.Strings(got)
	if len(got) != 2 || got[0] != "apwg" || got[1] != "gsb" {
		t.Fatalf("Engines = %v", got)
	}
}
