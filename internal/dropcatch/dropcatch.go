// Package dropcatch implements the paper's six-step drop-catch domain
// selection pipeline (Section 3, "Registering Domains"):
//
//  1. scan the popularity top-1M for SOA/NS and keep NXDOMAIN answers,
//  2. check availability at two registrar APIs,
//  3. keep domains whose WHOIS answers NOT FOUND,
//  4. keep domains not flagged by the multi-engine scanner or Safe Browsing,
//  5. keep domains archived at least once by the web archive,
//  6. keep domains indexed at least once by the search engine,
//
// yielding reputed, previously used — "compromised-looking" — domains. The
// paper's funnel is 1,000,000 → 770 → 251 → 244 → 244 → 50.
package dropcatch

import "fmt"

// Services are the external questions the pipeline asks. Each function
// corresponds to one filtering step; wiring them to the simulated DNS, WHOIS,
// registrar, scanner, archive and index services is the caller's job (see
// World and PaperWorld).
type Services struct {
	Exists       func(domain string) bool // step 1: DNS delegation present?
	Available    func(domain string) bool // step 2: registrable right now?
	Unregistered func(domain string) bool // step 3: WHOIS answers NOT FOUND?
	Clean        func(domain string) bool // step 4: no scanner detections?
	Archived     func(domain string) bool // step 5: web-archive history?
	Indexed      func(domain string) bool // step 6: search-engine indexed?
}

// Funnel counts the survivors of each pipeline step.
type Funnel struct {
	Scanned      int // input list size
	Expired      int // after step 1 (NXDOMAIN)
	Available    int // after step 2
	Unregistered int // after step 3
	Clean        int // after step 4
	Selected     int // after steps 5+6, capped at the requested count
}

// String renders the funnel as an arrow chain like the paper reports it.
func (f Funnel) String() string {
	return fmt.Sprintf("%d -> %d -> %d -> %d -> %d -> %d",
		f.Scanned, f.Expired, f.Available, f.Unregistered, f.Clean, f.Selected)
}

// Run executes the pipeline over the popularity list top, returning up to
// want selected domains and the per-step funnel. Steps run in the paper's
// order; a domain failing a step is never shown to later steps.
func Run(top []string, svc Services, want int) ([]string, Funnel) {
	f := Funnel{Scanned: len(top)}

	var expired []string
	for _, d := range top {
		if !svc.Exists(d) {
			expired = append(expired, d)
		}
	}
	f.Expired = len(expired)

	var available []string
	for _, d := range expired {
		if svc.Available(d) {
			available = append(available, d)
		}
	}
	f.Available = len(available)

	var unregistered []string
	for _, d := range available {
		if svc.Unregistered(d) {
			unregistered = append(unregistered, d)
		}
	}
	f.Unregistered = len(unregistered)

	var clean []string
	for _, d := range unregistered {
		if svc.Clean(d) {
			clean = append(clean, d)
		}
	}
	f.Clean = len(clean)

	var selected []string
	for _, d := range clean {
		if len(selected) >= want && want >= 0 {
			break
		}
		if svc.Archived(d) && svc.Indexed(d) {
			selected = append(selected, d)
		}
	}
	f.Selected = len(selected)
	return selected, f
}
