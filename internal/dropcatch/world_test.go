package dropcatch

import (
	"math/rand"
	"strings"
	"testing"
)

// TestAppendPositionWordEdges pins the name-synthesis edge cases: position 0
// still encodes to a full two-pair word, every word is consonant-vowel
// alternating over the synth alphabets, and distinct positions never collide
// (the property the campaign label generator leans on).
func TestAppendPositionWordEdges(t *testing.T) {
	w0 := string(AppendPositionWord(nil, 0))
	if len(w0) != 4 {
		t.Fatalf("position 0 word %q, want two consonant-vowel pairs", w0)
	}
	// Single base-95 digit boundary: 94 is the last one-digit value, 95 the
	// first two-digit one — both still pad to the two-pair minimum.
	if a, b := string(AppendPositionWord(nil, 94)), string(AppendPositionWord(nil, 95)); a == b || len(a) != 4 || len(b) != 4 {
		t.Fatalf("digit-boundary words: %q vs %q", a, b)
	}
	// Three digits appear at 95^2.
	if w := string(AppendPositionWord(nil, 95*95)); len(w) != 6 {
		t.Fatalf("position 95^2 word %q, want three pairs", w)
	}

	seen := make(map[string]int, 20_000)
	for i := 0; i < 20_000; i++ {
		w := string(AppendPositionWord(nil, i))
		if j, dup := seen[w]; dup {
			t.Fatalf("positions %d and %d both encode to %q", j, i, w)
		}
		seen[w] = i
		for k := 0; k < len(w); k += 2 {
			if !strings.ContainsRune(synthConsonants, rune(w[k])) || !strings.ContainsRune(synthVowels, rune(w[k+1])) {
				t.Fatalf("word %q (position %d) breaks consonant-vowel alternation at %d", w, i, k)
			}
		}
	}
}

// TestAppendPositionWordReusesBuffer checks the append contract: the word
// lands on the passed buffer so hot loops can amortise one allocation.
func TestAppendPositionWordReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 32)
	buf = append(buf, "x-"...)
	buf = AppendPositionWord(buf, 123)
	if !strings.HasPrefix(string(buf), "x-") {
		t.Fatalf("prefix lost: %q", buf)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		b := buf[:0]
		_ = AppendPositionWord(b, 99_999)
	}); allocs != 0 {
		t.Errorf("AppendPositionWord into a sized buffer allocates %.1f per call, want 0", allocs)
	}
}

// TestSamplePositionsEdges covers the clamping contract: k = 0 draws
// nothing, k = n is a full permutation, k > n clamps to the pool, and
// negative k clamps to zero.
func TestSamplePositionsEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := samplePositions(rng, 10, 0); len(got) != 0 {
		t.Errorf("k=0 drew %v", got)
	}
	if got := samplePositions(rng, 10, -3); len(got) != 0 {
		t.Errorf("k<0 drew %v", got)
	}
	if got := samplePositions(rng, 0, 5); len(got) != 0 {
		t.Errorf("empty pool drew %v", got)
	}
	for _, k := range []int{50, 75} { // k = n exactly, and k > n clamped
		got := samplePositions(rand.New(rand.NewSource(2)), 50, k)
		if len(got) != 50 {
			t.Fatalf("k=%d over pool 50 drew %d positions, want 50", k, len(got))
		}
		seen := make([]bool, 50)
		for _, p := range got {
			if p < 0 || p >= 50 || seen[p] {
				t.Fatalf("k=%d sample not a permutation: %v", k, got)
			}
			seen[p] = true
		}
	}
}

// TestSamplePositionsDistinctAndDeterministic checks the partial
// Fisher-Yates: samples are distinct and in range, the same seed reproduces
// the same sample, and two seeds draw differently.
func TestSamplePositionsDistinctAndDeterministic(t *testing.T) {
	draw := func(seed int64) []int {
		return samplePositions(rand.New(rand.NewSource(seed)), 10_000, 300)
	}
	a, b := draw(7), draw(7)
	if len(a) != 300 {
		t.Fatalf("drew %d positions, want 300", len(a))
	}
	seen := make(map[int]bool, 300)
	for i, p := range a {
		if p < 0 || p >= 10_000 {
			t.Fatalf("position %d out of range", p)
		}
		if seen[p] {
			t.Fatalf("duplicate position %d", p)
		}
		seen[p] = true
		if b[i] != p {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, p, b[i])
		}
	}
	c := draw(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("two seeds drew identical samples")
	}
}
