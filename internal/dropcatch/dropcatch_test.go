package dropcatch

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"areyouhuman/internal/dnssim"
	"areyouhuman/internal/registrar"
	"areyouhuman/internal/reputation"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/whois"
)

func TestSmallWorldFunnelExact(t *testing.T) {
	t.Parallel()
	cfg := SmallConfig()
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	selected, f := Run(w.Top, w.Services(), cfg.Selected)
	if f.Scanned != cfg.ListSize || f.Expired != cfg.Expired || f.Available != cfg.Available ||
		f.Unregistered != cfg.Unregistered || f.Clean != cfg.Clean || f.Selected != cfg.Selected {
		t.Fatalf("funnel = %v, want %v -> %v -> %v -> %v -> %v -> %v",
			f, cfg.ListSize, cfg.Expired, cfg.Available, cfg.Unregistered, cfg.Clean, cfg.Selected)
	}
	if len(selected) != cfg.Selected {
		t.Fatalf("selected %d domains, want %d", len(selected), cfg.Selected)
	}
}

func TestWorldDeterministicAcrossRuns(t *testing.T) {
	t.Parallel()
	cfg := SmallConfig()
	w1, _ := NewWorld(cfg)
	w2, _ := NewWorld(cfg)
	s1, _ := Run(w1.Top, w1.Services(), cfg.Selected)
	s2, _ := Run(w2.Top, w2.Services(), cfg.Selected)
	if len(s1) != len(s2) {
		t.Fatalf("runs selected %d vs %d domains", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("selection differs at %d: %s vs %s", i, s1[i], s2[i])
		}
	}
}

func TestWorldSeedChangesSelection(t *testing.T) {
	t.Parallel()
	a := SmallConfig()
	b := SmallConfig()
	b.Seed = 7777
	wa, _ := NewWorld(a)
	wb, _ := NewWorld(b)
	sa, _ := Run(wa.Top, wa.Services(), a.Selected)
	sb, _ := Run(wb.Top, wb.Services(), b.Selected)
	same := true
	for i := range sa {
		if sa[i] != sb[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should produce different selections")
	}
}

func TestWorldConfigValidation(t *testing.T) {
	t.Parallel()
	bad := SmallConfig()
	bad.Selected = bad.Clean + 1
	if _, err := NewWorld(bad); err == nil {
		t.Fatal("Selected > Clean should be rejected")
	}
	bad = SmallConfig()
	bad.Expired = bad.ListSize + 1
	if _, err := NewWorld(bad); err == nil {
		t.Fatal("Expired > ListSize should be rejected")
	}
}

func TestFunnelString(t *testing.T) {
	t.Parallel()
	f := Funnel{Scanned: 1000000, Expired: 770, Available: 251, Unregistered: 244, Clean: 244, Selected: 50}
	want := "1000000 -> 770 -> 251 -> 244 -> 244 -> 50"
	if got := f.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestRunWantCapsSelection(t *testing.T) {
	t.Parallel()
	cfg := SmallConfig()
	w, _ := NewWorld(cfg)
	selected, f := Run(w.Top, w.Services(), 2)
	if len(selected) != 2 || f.Selected != 2 {
		t.Fatalf("want cap 2, got %d selected (funnel %v)", len(selected), f)
	}
}

func TestSynthDomainsLookRegistrable(t *testing.T) {
	t.Parallel()
	cfg := SmallConfig()
	w, _ := NewWorld(cfg)
	for _, d := range w.Top[:100] {
		if !strings.Contains(d, ".") || strings.Count(d, ".") != 1 {
			t.Fatalf("synthetic domain %q is not a simple registrable name", d)
		}
		tld := d[strings.IndexByte(d, '.')+1:]
		switch tld {
		case "com", "net", "org", "info":
		default:
			t.Fatalf("synthetic domain %q has unexpected TLD", d)
		}
	}
}

// Property: the funnel is monotone non-increasing for arbitrary valid
// configurations, and Selected never exceeds the requested count.
func TestQuickFunnelMonotone(t *testing.T) {
	t.Parallel()
	f := func(seed int64, a, b, c, d, e uint8) bool {
		// Build a valid descending configuration from arbitrary bytes.
		list := 2000 + int(a)*8
		exp := int(b) % (list / 4)
		avail := exp * int(c) / 300
		unreg := avail * int(d) / 300
		clean := unreg
		sel := unreg * int(e) / 300
		cfg := WorldConfig{ListSize: list, Expired: exp, Available: avail,
			Unregistered: unreg, Clean: clean, Selected: sel, Seed: seed}
		w, err := NewWorld(cfg)
		if err != nil {
			return false
		}
		_, fn := Run(w.Top, w.Services(), sel)
		mono := fn.Scanned >= fn.Expired && fn.Expired >= fn.Available &&
			fn.Available >= fn.Unregistered && fn.Unregistered >= fn.Clean && fn.Clean >= fn.Selected
		return mono && fn.Selected <= sel
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLiveServicesEndToEnd(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	dns := dnssim.NewServer()
	db := whois.NewDB()
	ls := LiveServices{
		DNS: dns,
		Registrars: []*registrar.Registrar{
			registrar.New("GoDaddy", db, dns, clock),
			registrar.New("Porkbun", db, dns, clock),
		},
		WHOIS:   db,
		Scanner: reputation.NewScanner(),
		Archive: reputation.NewArchive(),
		Index:   reputation.NewSearchIndex(),
	}
	list := []string{"alive.com", "chosen-one.com", "alive2.net", "chosen-two.org", "flagged.com"}
	chosen := []string{"chosen-one.com", "chosen-two.org"}
	PlantLive(ls, list, chosen, simclock.Epoch)
	// flagged.com: expired but scanner-flagged, so it must fall out at step 4.
	dns.RemoveZone("flagged.com")
	ls.Scanner.Report("flagged.com", reputation.Verdict{Engine: "vt-engine", Malicious: true, At: simclock.Epoch})

	selected, f := Run(list, ls.Services(), 50)
	if len(selected) != 2 {
		t.Fatalf("selected = %v, want the two planted domains", selected)
	}
	if f.Expired != 3 || f.Clean != 2 {
		t.Fatalf("funnel = %v; want 3 expired, 2 clean", f)
	}
	for _, d := range selected {
		if d != "chosen-one.com" && d != "chosen-two.org" {
			t.Fatalf("unexpected selection %q", d)
		}
	}
}

func TestLiveServicesNoRegistrarsNothingAvailable(t *testing.T) {
	t.Parallel()
	ls := LiveServices{
		DNS:     dnssim.NewServer(),
		WHOIS:   whois.NewDB(),
		Scanner: reputation.NewScanner(),
		Archive: reputation.NewArchive(),
		Index:   reputation.NewSearchIndex(),
	}
	svc := ls.Services()
	if svc.Available("anything.com") {
		t.Fatal("with no registrars, nothing should be available")
	}
}

func TestPlantLiveGivesHistoryOnlyToChosen(t *testing.T) {
	t.Parallel()
	ls := LiveServices{
		DNS:     dnssim.NewServer(),
		WHOIS:   whois.NewDB(),
		Scanner: reputation.NewScanner(),
		Archive: reputation.NewArchive(),
		Index:   reputation.NewSearchIndex(),
	}
	list := []string{"a.com", "b.com", "c.com"}
	PlantLive(ls, list, []string{"b.com"}, time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC))
	if ls.Archive.Archived("a.com") || ls.Archive.Archived("c.com") {
		t.Fatal("non-chosen domains must have no archive history")
	}
	if !ls.Archive.Archived("b.com") || ls.Index.SiteQuery("b.com") < 1 {
		t.Fatal("chosen domain must be archived and indexed")
	}
	if ls.DNS.Exists("b.com") {
		t.Fatal("chosen domain must be expired (no DNS zone)")
	}
	if !ls.DNS.Exists("a.com") {
		t.Fatal("non-chosen domain must keep its DNS zone")
	}
}
