package dropcatch

import (
	"fmt"
	"math/rand"
	"time"

	"areyouhuman/internal/dnssim"
	"areyouhuman/internal/registrar"
	"areyouhuman/internal/reputation"
	"areyouhuman/internal/whois"
)

// WorldConfig sizes a synthetic internet population for the pipeline. Counts
// are planted exactly, so a pipeline run over the generated world reproduces
// the configured funnel deterministically; the default PaperConfig matches
// the numbers the paper reports.
type WorldConfig struct {
	ListSize     int   // popularity list length (paper: 1,000,000)
	Expired      int   // domains answering NXDOMAIN (paper: 770)
	Available    int   // of those, available at the registrars (paper: 251)
	Unregistered int   // of those, WHOIS NOT FOUND (paper: 244)
	Clean        int   // of those, unflagged by scanners (paper: 244)
	Selected     int   // of those, archived and indexed (paper: 50)
	Seed         int64 // RNG seed for name synthesis and shuffling
}

// PaperConfig is the paper's exact funnel at full scale.
func PaperConfig() WorldConfig {
	return WorldConfig{
		ListSize: 1_000_000, Expired: 770, Available: 251,
		Unregistered: 244, Clean: 244, Selected: 50, Seed: 2020,
	}
}

// SmallConfig is a proportionally scaled-down funnel for fast tests.
func SmallConfig() WorldConfig {
	return WorldConfig{
		ListSize: 10_000, Expired: 77, Available: 25,
		Unregistered: 24, Clean: 24, Selected: 5, Seed: 2020,
	}
}

func (c WorldConfig) validate() error {
	switch {
	case c.ListSize < c.Expired:
		return fmt.Errorf("dropcatch: ListSize %d < Expired %d", c.ListSize, c.Expired)
	case c.Expired < c.Available:
		return fmt.Errorf("dropcatch: Expired %d < Available %d", c.Expired, c.Available)
	case c.Available < c.Unregistered:
		return fmt.Errorf("dropcatch: Available %d < Unregistered %d", c.Available, c.Unregistered)
	case c.Unregistered < c.Clean:
		return fmt.Errorf("dropcatch: Unregistered %d < Clean %d", c.Unregistered, c.Clean)
	case c.Clean < c.Selected:
		return fmt.Errorf("dropcatch: Clean %d < Selected %d", c.Clean, c.Selected)
	}
	return nil
}

// World is a compact synthetic population implementing the pipeline's
// Services. Membership is held in small sets — only the funnel survivors are
// materialised — so a paper-scale (1M-name) world fits comfortably in memory.
type World struct {
	Top    []string
	cfg    WorldConfig
	expSet map[string]int // expired domain -> depth it survives to (1..5)
}

// Depth values recorded per expired domain.
const (
	depthExpired = iota + 1
	depthAvailable
	depthUnregistered
	depthClean
	depthSelected
)

// NewWorld generates a synthetic population for cfg.
func NewWorld(cfg WorldConfig) (*World, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Names are unique by construction (the tail word encodes the list
	// position), so no dedup table is needed: at paper scale a 1M-entry seen
	// map plus retry loop dominated world construction.
	top := make([]string, cfg.ListSize)
	buf := make([]byte, 0, 32)
	for i := range top {
		top[i], buf = synthDomainAt(buf, rng, i)
	}
	// Choose which list positions are expired, then assign survival depths to
	// the first cfg.X of a shuffled ordering so each step removes exactly the
	// configured count. samplePositions draws only cfg.Expired positions
	// instead of permuting the whole list.
	idx := samplePositions(rng, cfg.ListSize, cfg.Expired)
	expired := make([]string, cfg.Expired)
	for i, j := range idx {
		expired[i] = top[j]
	}
	rng.Shuffle(len(expired), func(i, j int) { expired[i], expired[j] = expired[j], expired[i] })
	depths := make(map[string]int, cfg.Expired)
	for i, d := range expired {
		switch {
		case i < cfg.Selected:
			depths[d] = depthSelected
		case i < cfg.Clean:
			depths[d] = depthClean
		case i < cfg.Unregistered:
			depths[d] = depthUnregistered
		case i < cfg.Available:
			depths[d] = depthAvailable
		default:
			depths[d] = depthExpired
		}
	}
	return &World{Top: top, cfg: cfg, expSet: depths}, nil
}

// Services returns pipeline services answering from the planted population.
func (w *World) Services() Services {
	depth := func(domain string) int { return w.expSet[domain] }
	return Services{
		Exists:       func(d string) bool { return depth(d) == 0 },
		Available:    func(d string) bool { return depth(d) >= depthAvailable },
		Unregistered: func(d string) bool { return depth(d) >= depthUnregistered },
		Clean:        func(d string) bool { return depth(d) >= depthClean },
		Archived:     func(d string) bool { return depth(d) >= depthSelected },
		Indexed:      func(d string) bool { return depth(d) >= depthSelected },
	}
}

const (
	synthConsonants = "bcdfghjklmnpqrstvwz"
	synthVowels     = "aeiou"
)

var synthTLDs = [...]string{"com", "net", "org", "info"}

// synthDomainAt builds the pronounceable two-word domain name at list
// position i: a seed-dependent random head word, then a tail word spelling
// i in consonant-vowel pairs (little-endian base-95 digits, at least two).
// Distinct positions therefore always yield distinct names. The scratch
// buffer is returned for reuse; only the final string is allocated.
func synthDomainAt(buf []byte, rng *rand.Rand, i int) (string, []byte) {
	buf = buf[:0]
	head := 2 + rng.Intn(2)
	for p := 0; p < head; p++ {
		buf = append(buf, synthConsonants[rng.Intn(len(synthConsonants))], synthVowels[rng.Intn(len(synthVowels))])
	}
	buf = append(buf, '-')
	buf = AppendPositionWord(buf, i)
	buf = append(buf, '.')
	buf = append(buf, synthTLDs[rng.Intn(len(synthTLDs))]...)
	return string(buf), buf
}

// AppendPositionWord appends the pronounceable little-endian base-95
// encoding of position i (consonant-vowel pairs, at least two) to buf and
// returns the extended slice. Distinct non-negative positions always encode
// to distinct words, which is what lets a million-name campaign synthesise
// collision-free labels with no dedup map — the idiom NewWorld uses for its
// top-list names, exported for the campaign URL generator.
//
//phishlint:hotpath
func AppendPositionWord(buf []byte, i int) []byte {
	for d, n := 0, i; d < 2 || n > 0; d++ {
		digit := n % 95
		n /= 95
		buf = append(buf, synthConsonants[digit%19], synthVowels[digit/19])
	}
	return buf
}

// samplePositions returns k distinct uniformly random positions in [0, n),
// in random order — a k-step partial Fisher-Yates over a virtual identity
// slice, so only the swapped entries are materialised. A sample size larger
// than the pool clamps to a full permutation (you cannot draw more distinct
// positions than exist), and k = n is exactly a Fisher-Yates shuffle.
func samplePositions(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	out := make([]int, k)
	swapped := make(map[int]int, 2*k)
	at := func(p int) int {
		if v, ok := swapped[p]; ok {
			return v
		}
		return p
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		out[i] = at(j)
		swapped[j] = at(i)
	}
	return out
}

// LiveServices wires the pipeline to real simulated infrastructure — DNS,
// registrars, WHOIS, scanner, archive, index — instead of the compact planted
// sets. Used by integration tests and the quickstart examples where the world
// is small enough to materialise every service record.
type LiveServices struct {
	DNS        *dnssim.Server
	Registrars []*registrar.Registrar
	WHOIS      *whois.DB
	Scanner    *reputation.Scanner
	Archive    *reputation.Archive
	Index      *reputation.SearchIndex
}

// Services adapts the live infrastructure to the pipeline interface. A domain
// is "available" only if every registrar API reports it available, matching
// the paper's use of two independent registrars.
func (ls LiveServices) Services() Services {
	return Services{
		Exists: func(d string) bool { return ls.DNS.Exists(d) },
		Available: func(d string) bool {
			for _, r := range ls.Registrars {
				if !r.Available(d) {
					return false
				}
			}
			return len(ls.Registrars) > 0
		},
		Unregistered: func(d string) bool {
			_, found := ls.WHOIS.Lookup(d)
			return !found
		},
		Clean:    func(d string) bool { return ls.Scanner.Clean(d) },
		Archived: func(d string) bool { return ls.Archive.Archived(d) },
		Indexed:  func(d string) bool { return ls.Index.SiteQuery(d) >= 1 },
	}
}

// PlantLive populates live infrastructure so that the pipeline selects
// exactly the given domains out of list. Every other list entry keeps a DNS
// zone (so step 1 rejects it); the chosen ones get archive history and index
// entries. Returns the archive timestamp base used.
func PlantLive(ls LiveServices, list, chosen []string, base time.Time) {
	chosenSet := make(map[string]bool, len(chosen))
	for _, d := range chosen {
		chosenSet[d] = true
	}
	for i, d := range list {
		if chosenSet[d] {
			ls.Archive.AddSnapshot(d, base.AddDate(-2, 0, -i%300))
			ls.Index.Index(d, 1+i%7)
			continue // no DNS zone: expired
		}
		ls.DNS.AddZone(d, "")
	}
}
