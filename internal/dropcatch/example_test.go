package dropcatch_test

import (
	"fmt"

	"areyouhuman/internal/dropcatch"
)

// Reproduce the paper's exact selection funnel over a synthetic 1M-name
// popularity list.
func Example_paperFunnel() {
	w, err := dropcatch.NewWorld(dropcatch.PaperConfig())
	if err != nil {
		panic(err)
	}
	selected, funnel := dropcatch.Run(w.Top, w.Services(), 50)
	fmt.Println(funnel)
	fmt.Println("selected:", len(selected))
	// Output:
	// 1000000 -> 770 -> 251 -> 244 -> 244 -> 50
	// selected: 50
}
