package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/coverage"
	"areyouhuman/internal/dropcatch"
	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/journal"
	"areyouhuman/internal/monitor"
	"areyouhuman/internal/phishkit"
	"areyouhuman/internal/simnet"
	"areyouhuman/internal/telemetry"
)

// MainDuration is the main experiment's length (two weeks in May 2020).
const MainDuration = 14 * 24 * time.Hour

// Cell is one Table 2 cell: detected URLs out of submitted.
type Cell struct {
	Detected int
	Total    int
}

func (c Cell) String() string { return fmt.Sprintf("%d/%d", c.Detected, c.Total) }

// MainResults holds everything the main experiment produces.
type MainResults struct {
	// Cells is Table 2: engine -> brand -> technique -> detected/total.
	Cells map[string]map[phishkit.Brand]map[evasion.Technique]*Cell
	// Deployments in assignment order.
	Deployments []*Deployment
	// Funnel is the drop-catch selection funnel used for the 50 reputed
	// domains.
	Funnel dropcatch.Funnel
	// TimesToList maps engine key to delays between report submission and
	// the engine's own listing, per detected URL.
	TimesToList map[string][]time.Duration
	// GSBAlertBoxTimes are GSB's listing delays for alert-box URLs (the
	// paper's average was 132 minutes).
	GSBAlertBoxTimes []time.Duration
	// NetCraftSessionTimes are NetCraft's listing delays for session-based
	// URLs (the paper saw 6 and 9 minutes).
	NetCraftSessionTimes []time.Duration
	// Sightings are the monitoring pipeline's first observations of each
	// detected URL (API polls, feed diffs, outcome mail, screenshots) —
	// what the paper could actually see from outside, at most one poll
	// interval after the true listing time.
	Sightings map[string]monitor.Sighting
	// ListedAt is the true listing time per detected URL (the engine's own
	// blacklist entry time) — the ground truth the sightings chase.
	ListedAt map[string]time.Time
	// UserProtection is, per technique, the average fraction of web users
	// whose browser would warn about the technique's URLs at experiment end
	// (browser market shares and engine wiring from Section 3; cross-feed
	// sharing counts, since any list a browser consults protects its users).
	UserProtection map[evasion.Technique]float64
	TotalDetected  int
	TotalURLs      int
}

// mainPlan returns the Table 2 submission matrix: five engines get 3 URLs
// per (brand x technique); SmartScreen got only 2 Facebook URLs per
// technique (Table 2 shows 0/2), for 105 URLs total.
func mainPlan() []struct {
	engine    string
	brand     phishkit.Brand
	technique evasion.Technique
	count     int
} {
	var plan []struct {
		engine    string
		brand     phishkit.Brand
		technique evasion.Technique
		count     int
	}
	for _, key := range engines.MainExperimentKeys() {
		for _, brand := range []phishkit.Brand{phishkit.Facebook, phishkit.PayPal} {
			for _, tech := range evasion.Techniques() {
				n := 3
				if key == engines.SmartScreen && brand == phishkit.Facebook {
					n = 2
				}
				plan = append(plan, struct {
					engine    string
					brand     phishkit.Brand
					technique evasion.Technique
					count     int
				}{key, brand, tech, n})
			}
		}
	}
	return plan
}

// RunMain deploys the 105 protected phishing sites (50 on drop-catch
// domains, 55 on keyword domains), reports each to exactly one engine, runs
// two virtual weeks, and assembles Table 2 plus the timing statistics.
func (w *World) RunMain() (*MainResults, error) {
	span := w.Tel.T().Start("stage.main")
	defer func() { span.End(telemetry.Int("events_executed", w.Sched.Executed())) }()
	w.Journal.Emit(journal.KindStageStart, journal.Fields{Stage: "main"})
	defer w.Journal.Emit(journal.KindStageEnd, journal.Fields{Stage: "main"})
	plan := mainPlan()
	totalURLs := 0
	for _, p := range plan {
		totalURLs += p.count
	}

	dropDomains, funnel, err := w.DropCatchDomains(50)
	if err != nil {
		return nil, err
	}
	keywordDomains := w.KeywordDomains("main", totalURLs-len(dropDomains), 21)
	domains := append(append([]string{}, dropDomains...), keywordDomains...)
	w.rng.Shuffle(len(domains), func(i, j int) { domains[i], domains[j] = domains[j], domains[i] })

	res := &MainResults{
		Cells:       make(map[string]map[phishkit.Brand]map[evasion.Technique]*Cell),
		Funnel:      funnel,
		TimesToList: make(map[string][]time.Duration),
		ListedAt:    make(map[string]time.Time),
		TotalURLs:   totalURLs,
	}
	cell := func(engine string, brand phishkit.Brand, tech evasion.Technique) *Cell {
		byBrand, ok := res.Cells[engine]
		if !ok {
			byBrand = make(map[phishkit.Brand]map[evasion.Technique]*Cell)
			res.Cells[engine] = byBrand
		}
		byTech, ok := byBrand[brand]
		if !ok {
			byTech = make(map[evasion.Technique]*Cell)
			byBrand[brand] = byTech
		}
		c, ok := byTech[tech]
		if !ok {
			c = &Cell{}
			byTech[tech] = c
		}
		return c
	}

	// Switch engines to main-stage fleet volume.
	for _, eng := range w.Engines {
		eng.TrafficPerReport = scale(w.Cfg.MainTrafficPerReport, w.Cfg.TrafficScale)
	}

	// Deploy and report, staggered ten minutes apart as the paper spread
	// its submissions.
	next := 0
	for _, p := range plan {
		for k := 0; k < p.count; k++ {
			d, err := w.Deploy(domains[next], MountSpec{Brand: p.brand, Technique: p.technique})
			if err != nil {
				return nil, err
			}
			next++
			cell(p.engine, p.brand, p.technique).Total++
			dep := d
			engineKey := p.engine
			d.ReportedTo = engineKey // known at planning time; ReportTo restates it
			// Root the report on the deployment domain's affinity key: the
			// whole downstream chain (crawls, rechecks, listing, shares,
			// fleet traffic) inherits the shard, so one URL's lifecycle is
			// serial even when the world runs on many workers.
			w.Sched.OnKey(simnet.ShardKey(dep.Domain)).After(time.Duration(next)*10*time.Minute, "report:"+engineKey, func(time.Time) {
				w.ReportTo(dep, engineKey)
			})
			res.Deployments = append(res.Deployments, d)
		}
	}
	// Monitoring, exactly as Section 3 describes it: poll the GSB (and
	// YSB-style) lookup APIs, download the OpenPhish/PhishTank/APWG feeds
	// every half hour, watch the reporter mailbox for NetCraft outcomes,
	// and screenshot-probe SmartScreen through a monitored browser.
	mon := monitor.New(w.Sched)
	mon.Instrument(w.Tel)
	mon.WithJournal(w.Journal)
	if w.Faults != nil {
		mon.WithFaults(w.Faults, w.Cfg.Seed)
	}
	horizon := w.Clock.Now().Add(MainDuration)
	for _, d := range res.Deployments {
		url := d.Mounts[0].URL
		switch eng := w.Engines[d.ReportedTo]; eng.Profile.Key {
		case engines.GSB:
			mon.WatchAPI(url, eng.Profile.Key, eng.List, horizon)
		case engines.NetCraft:
			mon.WatchMail(url, eng.Profile.Key, ReporterAddress, w.Mail, horizon)
		case engines.SmartScreen:
			client := &blacklistProbe{list: eng.List, url: url}
			mon.WatchScreenshots(url, eng.Profile.Key, client.blocked, horizon)
		default:
			mon.WatchFeed(url, eng.Profile.Key, eng.List, horizon)
		}
	}

	w.Sched.RunFor(MainDuration)
	if err := w.Sched.InterruptErr(); err != nil {
		return nil, err
	}

	res.Sightings = make(map[string]monitor.Sighting)
	for _, d := range res.Deployments {
		url := d.Mounts[0].URL
		if s, ok := mon.FirstSeen(url, d.ReportedTo); ok {
			res.Sightings[url] = s
		}
	}

	// Score: an engine detects a URL when its own pipeline listed it (feed
	// sharing does not count toward Table 2).
	for _, d := range res.Deployments {
		eng := w.Engines[d.ReportedTo]
		m := d.Mounts[0]
		entry, ok := eng.List.Lookup(m.URL)
		if !ok || entry.Source != d.ReportedTo {
			continue
		}
		cell(d.ReportedTo, m.Brand, m.Technique).Detected++
		res.TotalDetected++
		res.ListedAt[m.URL] = entry.AddedAt
		delay := entry.AddedAt.Sub(d.ReportedAt)
		res.TimesToList[d.ReportedTo] = append(res.TimesToList[d.ReportedTo], delay)
		if d.ReportedTo == engines.GSB && m.Technique == evasion.AlertBox {
			res.GSBAlertBoxTimes = append(res.GSBAlertBoxTimes, delay)
		}
		if d.ReportedTo == engines.NetCraft && m.Technique == evasion.SessionBased {
			res.NetCraftSessionTimes = append(res.NetCraftSessionTimes, delay)
		}
	}

	// Global user protection per technique: what share of browser users a
	// technique's URLs are hidden from by experiment end.
	listed := func(engineKey, url string) bool {
		eng, ok := w.Engines[engineKey]
		return ok && eng.List.Contains(url)
	}
	sums := map[evasion.Technique]float64{}
	counts := map[evasion.Technique]int{}
	for _, d := range res.Deployments {
		m := d.Mounts[0]
		sums[m.Technique] += coverage.ProtectedShare(m.URL, listed)
		counts[m.Technique]++
	}
	res.UserProtection = make(map[evasion.Technique]float64, len(sums))
	for tech, sum := range sums {
		res.UserProtection[tech] = sum / float64(counts[tech])
	}
	return res, nil
}

// AverageDuration returns the mean of ds (0 when empty).
func AverageDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// RenderTable2 formats the main-experiment results like the paper's Table 2.
func RenderTable2(res *MainResults) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s | %-17s | %-17s\n", "", "Facebook", "PayPal")
	fmt.Fprintf(&b, "%-14s | %-5s %-5s %-5s | %-5s %-5s %-5s\n", "Engine", "A", "S", "R", "A", "S", "R")
	for _, key := range engines.MainExperimentKeys() {
		fmt.Fprintf(&b, "%-14s |", key)
		for _, brand := range []phishkit.Brand{phishkit.Facebook, phishkit.PayPal} {
			for _, tech := range evasion.Techniques() {
				c := res.Cells[key][brand][tech]
				if c == nil {
					c = &Cell{}
				}
				fmt.Fprintf(&b, " %-5s", c.String())
			}
			fmt.Fprintf(&b, " |")
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "total detected: %d/%d\n", res.TotalDetected, res.TotalURLs)
	if len(res.UserProtection) > 0 {
		fmt.Fprintf(&b, "avg user protection at end:")
		for _, tech := range evasion.Techniques() {
			fmt.Fprintf(&b, " %s=%.0f%%", tech.Letter(), res.UserProtection[tech]*100)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// blacklistProbe models the monitored Edge browser the screenshot prober
// drives: each probe visit asks the browser's SmartScreen client whether the
// URL is currently blocked.
type blacklistProbe struct {
	list *blacklist.List
	url  string
}

func (p *blacklistProbe) blocked() bool { return p.list.Contains(p.url) }

// DurationStats summarises a set of delays.
type DurationStats struct {
	N           int
	Min, Median time.Duration
	Mean, Max   time.Duration
}

// Stats computes summary statistics over ds.
func Stats(ds []time.Duration) DurationStats {
	if len(ds) == 0 {
		return DurationStats{}
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	mid := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		mid = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	return DurationStats{
		N:      len(sorted),
		Min:    sorted[0],
		Median: mid,
		Mean:   AverageDuration(sorted),
		Max:    sorted[len(sorted)-1],
	}
}

// String renders the stats compactly in minutes.
func (s DurationStats) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%.0fm median=%.0fm mean=%.0fm max=%.0fm",
		s.N, s.Min.Minutes(), s.Median.Minutes(), s.Mean.Minutes(), s.Max.Minutes())
}
