package experiment

import (
	"bytes"
	"encoding/json"
	"io"
	"sort"
	"strings"
	"testing"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/phishkit"
	"areyouhuman/internal/simnet"
)

// fastCfg keeps fleet traffic tiny so tests stay quick; detection logic is
// unaffected (deciding crawls always happen).
func fastCfg() Config {
	return Config{TrafficScale: 0.002}
}

func TestPreliminaryTable1Shape(t *testing.T) {
	t.Parallel()
	w := NewWorld(fastCfg())
	rows, err := w.RunPreliminary()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	byKey := map[string]Table1Row{}
	for _, r := range rows {
		byKey[r.Engine] = r
	}

	wantTargets := map[string]string{
		engines.GSB:         "G, F, P",
		engines.NetCraft:    "G, F, P",
		engines.APWG:        "F, P",
		engines.OpenPhish:   "F, P",
		engines.PhishTank:   "F, P",
		engines.SmartScreen: "F, P",
		engines.YSB:         "-",
	}
	for key, want := range wantTargets {
		if got := byKey[key].BlacklistedTargets; got != want {
			t.Errorf("%s blacklisted targets = %q, want %q", key, got, want)
		}
	}

	wantAlso := map[string][]string{
		engines.GSB:         nil,
		engines.NetCraft:    {engines.GSB},
		engines.APWG:        {engines.GSB},
		engines.OpenPhish:   {engines.APWG, engines.GSB, engines.PhishTank, engines.SmartScreen},
		engines.PhishTank:   {engines.GSB, engines.OpenPhish},
		engines.SmartScreen: {engines.GSB},
		engines.YSB:         nil,
	}
	for key, want := range wantAlso {
		got := byKey[key].AlsoBlacklistedBy
		if len(got) != len(want) {
			t.Errorf("%s also-blacklisted-by = %v, want %v", key, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s also-blacklisted-by = %v, want %v", key, got, want)
				break
			}
		}
	}

	for _, r := range rows {
		if r.Requests == 0 || r.UniqueIPs == 0 {
			t.Errorf("%s saw no traffic", r.Engine)
		}
		if r.ReportedPages != "G, F, P" {
			t.Errorf("%s reported pages = %q", r.Engine, r.ReportedPages)
		}
	}
}

func TestPreliminaryTrafficOrdering(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("traffic ordering needs non-trivial volumes")
	}
	w := NewWorld(Config{TrafficScale: 0.1})
	rows, err := w.RunPreliminary()
	if err != nil {
		t.Fatal(err)
	}
	vol := map[string]int{}
	for _, r := range rows {
		vol[r.Engine] = r.Requests
	}
	// Table 1 ordering: OpenPhish >> GSB > NetCraft > PhishTank > APWG >
	// SmartScreen > YSB.
	order := []string{engines.OpenPhish, engines.GSB, engines.NetCraft, engines.PhishTank, engines.APWG, engines.SmartScreen, engines.YSB}
	for i := 1; i < len(order); i++ {
		if vol[order[i-1]] <= vol[order[i]] {
			t.Fatalf("traffic volume ordering broken: %s(%d) <= %s(%d)",
				order[i-1], vol[order[i-1]], order[i], vol[order[i]])
		}
	}
}

func TestMainExperimentTable2(t *testing.T) {
	t.Parallel()
	w := NewWorld(fastCfg())
	res, err := w.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalURLs != 105 {
		t.Fatalf("TotalURLs = %d, want 105", res.TotalURLs)
	}
	if len(res.Deployments) != 105 {
		t.Fatalf("deployments = %d", len(res.Deployments))
	}

	get := func(key string, brand phishkit.Brand, tech evasion.Technique) Cell {
		c := res.Cells[key][brand][tech]
		if c == nil {
			return Cell{}
		}
		return *c
	}

	// Headline result: 8 of 105 detected.
	if res.TotalDetected != 8 {
		t.Fatalf("TotalDetected = %d, want 8 (6 GSB alert-box + 2 NetCraft session)", res.TotalDetected)
	}

	// GSB: all alert-box URLs, nothing else.
	if c := get(engines.GSB, phishkit.Facebook, evasion.AlertBox); c != (Cell{3, 3}) {
		t.Fatalf("GSB FB alert = %v, want 3/3", c)
	}
	if c := get(engines.GSB, phishkit.PayPal, evasion.AlertBox); c != (Cell{3, 3}) {
		t.Fatalf("GSB PP alert = %v, want 3/3", c)
	}

	// NetCraft: exactly 2 Facebook session URLs (paper Table 2).
	if c := get(engines.NetCraft, phishkit.Facebook, evasion.SessionBased); c != (Cell{2, 3}) {
		t.Fatalf("NetCraft FB session = %v, want 2/3", c)
	}
	if c := get(engines.NetCraft, phishkit.PayPal, evasion.SessionBased); c != (Cell{0, 3}) {
		t.Fatalf("NetCraft PP session = %v, want 0/3", c)
	}

	// reCAPTCHA: zero across the board.
	for _, key := range engines.MainExperimentKeys() {
		for _, brand := range []phishkit.Brand{phishkit.Facebook, phishkit.PayPal} {
			if c := get(key, brand, evasion.Recaptcha); c.Detected != 0 {
				t.Fatalf("%s %s recaptcha = %v, want 0 detections", key, brand, c)
			}
		}
	}

	// SmartScreen totals: 2 Facebook URLs per technique, 3 PayPal.
	if c := get(engines.SmartScreen, phishkit.Facebook, evasion.AlertBox); c.Total != 2 {
		t.Fatalf("SmartScreen FB alert total = %d, want 2", c.Total)
	}
	if c := get(engines.SmartScreen, phishkit.PayPal, evasion.Recaptcha); c.Total != 3 {
		t.Fatalf("SmartScreen PP recaptcha total = %d, want 3", c.Total)
	}

	// Every non-GSB engine scores zero on alert boxes; every non-NetCraft
	// engine scores zero on sessions.
	for _, key := range engines.MainExperimentKeys() {
		for _, brand := range []phishkit.Brand{phishkit.Facebook, phishkit.PayPal} {
			if key != engines.GSB {
				if c := get(key, brand, evasion.AlertBox); c.Detected != 0 {
					t.Fatalf("%s %s alert = %v, want 0", key, brand, c)
				}
			}
			if key != engines.NetCraft {
				if c := get(key, brand, evasion.SessionBased); c.Detected != 0 {
					t.Fatalf("%s %s session = %v, want 0", key, brand, c)
				}
			}
		}
	}
}

func TestMainExperimentTimings(t *testing.T) {
	t.Parallel()
	w := NewWorld(fastCfg())
	res, err := w.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GSBAlertBoxTimes) != 6 {
		t.Fatalf("GSB alert-box detections = %d, want 6", len(res.GSBAlertBoxTimes))
	}
	avg := AverageDuration(res.GSBAlertBoxTimes)
	if avg < 110*time.Minute || avg > 160*time.Minute {
		t.Fatalf("GSB alert-box average = %v, paper reports 132 minutes", avg)
	}
	if len(res.NetCraftSessionTimes) != 2 {
		t.Fatalf("NetCraft session detections = %d, want 2", len(res.NetCraftSessionTimes))
	}
	for _, d := range res.NetCraftSessionTimes {
		if d < 3*time.Minute || d > 15*time.Minute {
			t.Fatalf("NetCraft session time %v, paper reports 6 and 9 minutes", d)
		}
	}
}

func TestMainFunnelAndDomainMix(t *testing.T) {
	t.Parallel()
	w := NewWorld(fastCfg())
	res, err := w.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if res.Funnel.Selected != 50 {
		t.Fatalf("drop-catch funnel selected %d, want 50", res.Funnel.Selected)
	}
	newGTLD := 0
	for _, d := range res.Deployments {
		if strings.HasPrefix(d.Domain, "main-") {
			continue
		}
	}
	for _, d := range res.Deployments {
		for _, tld := range []string{".xyz", ".online", ".site", ".top", ".icu", ".club", ".shop"} {
			if strings.HasSuffix(d.Domain, tld) {
				newGTLD++
			}
		}
	}
	if newGTLD != 21 {
		t.Fatalf("new-gTLD domains = %d, want 21", newGTLD)
	}
}

func TestExtensionsTable3(t *testing.T) {
	t.Parallel()
	w := NewWorld(fastCfg())
	rows, err := w.RunExtensions()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Total != 9 {
			t.Errorf("%s total = %d, want 9", r.Name, r.Total)
		}
		if r.Detected != 0 {
			t.Errorf("%s detected %d/9, paper reports 0/9 for every extension", r.Name, r.Detected)
		}
		if r.Telemetry == 0 {
			t.Errorf("%s sent no telemetry", r.Name)
		}
	}
}

func TestRenderersProduceTables(t *testing.T) {
	t.Parallel()
	w := NewWorld(fastCfg())
	rows, err := w.RunPreliminary()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Reported to") || !strings.Contains(out, "G, F, P") {
		t.Fatalf("Table 1 render:\n%s", out)
	}
}

func TestDeployBringsFullStackOnline(t *testing.T) {
	t.Parallel()
	w := NewWorld(fastCfg())
	d, err := w.Deploy("garden-craft.com", MountSpec{Brand: phishkit.PayPal, Technique: evasion.Recaptcha})
	if err != nil {
		t.Fatal(err)
	}
	if !w.DNS.Exists("garden-craft.com") || !w.DNS.DNSSEC("garden-craft.com") {
		t.Fatal("deploy must delegate a DNSSEC-signed zone")
	}
	if _, ok := w.CA.Lookup("garden-craft.com"); !ok {
		t.Fatal("deploy must issue a TLS certificate")
	}
	if _, ok := w.WHOIS.Lookup("garden-craft.com"); !ok {
		t.Fatal("deploy must register WHOIS")
	}
	if len(d.Mounts) != 1 || !strings.HasPrefix(d.Mounts[0].URL, "https://garden-craft.com/") {
		t.Fatalf("mounts = %+v", d.Mounts)
	}
	if _, err := w.Deploy("garden-craft.com", MountSpec{Brand: phishkit.PayPal, Technique: evasion.None}); err == nil {
		t.Fatal("double registration must fail")
	}
}

func TestKeywordDomainsDeterministicDisjoint(t *testing.T) {
	t.Parallel()
	w := NewWorld(fastCfg())
	a := w.KeywordDomains("x", 10, 3)
	b := w.KeywordDomains("x", 10, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("keyword domains must be deterministic")
		}
	}
	c := w.KeywordDomains("y", 10, 3)
	for i := range a {
		if a[i] == c[i] {
			t.Fatal("different prefixes must give different domains")
		}
	}
	newCount := 0
	for _, d := range a {
		for _, tld := range []string{".xyz", ".online", ".site", ".top", ".icu", ".club", ".shop"} {
			if strings.HasSuffix(d, tld) {
				newCount++
			}
		}
	}
	if newCount != 3 {
		t.Fatalf("new gTLD count = %d, want 3", newCount)
	}
}

func TestMainMonitoringSightings(t *testing.T) {
	t.Parallel()
	w := NewWorld(fastCfg())
	res, err := w.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	// Every detected URL must eventually be sighted by the monitoring
	// pipeline, no earlier than its true listing time and at most one poll
	// interval later.
	sighted := 0
	for _, d := range res.Deployments {
		url := d.Mounts[0].URL
		eng := w.Engines[d.ReportedTo]
		entry, listed := eng.List.Lookup(url)
		s, seen := res.Sightings[url]
		if !listed || entry.Source != d.ReportedTo {
			if seen {
				t.Errorf("sighting for unlisted URL %s", url)
			}
			continue
		}
		if !seen {
			t.Errorf("detected URL %s never sighted by the monitor", url)
			continue
		}
		sighted++
		if s.SeenAt.Before(entry.AddedAt) {
			t.Errorf("%s sighted at %v before listing at %v", url, s.SeenAt, entry.AddedAt)
		}
		if lag := s.SeenAt.Sub(entry.AddedAt); lag > 31*time.Minute {
			t.Errorf("%s sighting lag = %v, want within one poll interval", url, lag)
		}
	}
	if sighted != 8 {
		t.Fatalf("sighted %d detected URLs, want 8", sighted)
	}
}

func TestMainUserProtectionShares(t *testing.T) {
	t.Parallel()
	w := NewWorld(fastCfg())
	res, err := w.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	// Alert-box URLs: GSB lists its own 6 of 17 (18 minus SmartScreen's
	// missing FB slot: 17 per technique... totals aside, the per-technique
	// average must be strictly positive and dominated by GSB's 87% share.
	alert := res.UserProtection[evasion.AlertBox]
	if alert <= 0 || alert > 0.87 {
		t.Fatalf("alert-box user protection = %v, want in (0, 0.87]", alert)
	}
	// reCAPTCHA: never listed anywhere -> zero protection.
	if got := res.UserProtection[evasion.Recaptcha]; got != 0 {
		t.Fatalf("recaptcha user protection = %v, want 0", got)
	}
	// Session: NetCraft's 2 listings shared to GSB protect a visible share.
	if got := res.UserProtection[evasion.SessionBased]; got <= 0 || got >= alert {
		t.Fatalf("session protection = %v, want (0, alert=%v)", got, alert)
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	t.Parallel()
	w := NewWorld(fastCfg())
	t1, err := w.RunPreliminary()
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewWorld(fastCfg())
	main, err := w2.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	exp := BuildExport(t1, main, nil)
	var buf bytes.Buffer
	if err := exp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Export
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Table1) != 7 {
		t.Fatalf("table1 rows = %d", len(decoded.Table1))
	}
	if decoded.Table2 == nil || decoded.Table2.TotalDetected != 8 || decoded.Table2.TotalURLs != 105 {
		t.Fatalf("table2 = %+v", decoded.Table2)
	}
	if len(decoded.Table2.Cells) != 36 {
		t.Fatalf("table2 cells = %d, want 6 engines x 2 brands x 3 techniques", len(decoded.Table2.Cells))
	}
	if len(decoded.Table2.NetCraftMins) != 2 {
		t.Fatalf("netcraft minutes = %v", decoded.Table2.NetCraftMins)
	}
	if got := decoded.Table2.UserProtection["recaptcha"]; got != 0 {
		t.Fatalf("recaptcha protection in export = %v", got)
	}
	if !sort.SliceIsSorted(decoded.Table2.Cells, func(i, j int) bool {
		a, b := decoded.Table2.Cells[i], decoded.Table2.Cells[j]
		if a.Engine != b.Engine {
			return a.Engine < b.Engine
		}
		if a.Brand != b.Brand {
			return a.Brand < b.Brand
		}
		return a.Technique < b.Technique
	}) {
		t.Fatal("cells must be deterministically sorted")
	}
}

func TestDurationsToMinutes(t *testing.T) {
	t.Parallel()
	got := durationsToMinutes([]time.Duration{90 * time.Second, time.Hour})
	if len(got) != 2 || got[0] != 1.5 || got[1] != 60 {
		t.Fatalf("minutes = %v", got)
	}
}

func TestShapeHoldsAcrossSeeds(t *testing.T) {
	t.Parallel()
	// Only NetCraft's exact 2/6 split is seed-calibrated; every structural
	// outcome must hold for arbitrary seeds.
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []int64{7, 99, 12345} {
		cfg := fastCfg()
		cfg.Seed = seed
		w := NewWorld(cfg)
		res, err := w.RunMain()
		if err != nil {
			t.Fatal(err)
		}
		gsbAlert := res.Cells[engines.GSB][phishkit.Facebook][evasion.AlertBox].Detected +
			res.Cells[engines.GSB][phishkit.PayPal][evasion.AlertBox].Detected
		if gsbAlert != 6 {
			t.Errorf("seed %d: GSB alert detections = %d, want 6 at any seed", seed, gsbAlert)
		}
		ncSession := res.Cells[engines.NetCraft][phishkit.Facebook][evasion.SessionBased].Detected +
			res.Cells[engines.NetCraft][phishkit.PayPal][evasion.SessionBased].Detected
		if ncSession < 0 || ncSession > 6 {
			t.Errorf("seed %d: NetCraft session detections = %d", seed, ncSession)
		}
		for _, key := range engines.MainExperimentKeys() {
			for _, brand := range []phishkit.Brand{phishkit.Facebook, phishkit.PayPal} {
				if c := res.Cells[key][brand][evasion.Recaptcha]; c.Detected != 0 {
					t.Errorf("seed %d: %s detected a reCAPTCHA URL", seed, key)
				}
			}
		}
		if res.TotalDetected != 6+ncSession {
			t.Errorf("seed %d: total = %d, want 6 GSB + %d NetCraft", seed, res.TotalDetected, ncSession)
		}
	}
}

func TestDurationStats(t *testing.T) {
	t.Parallel()
	ds := []time.Duration{10 * time.Minute, 2 * time.Minute, 6 * time.Minute}
	s := Stats(ds)
	if s.N != 3 || s.Min != 2*time.Minute || s.Max != 10*time.Minute || s.Median != 6*time.Minute {
		t.Fatalf("stats = %+v", s)
	}
	if s.Mean != 6*time.Minute {
		t.Fatalf("mean = %v", s.Mean)
	}
	even := Stats([]time.Duration{2 * time.Minute, 4 * time.Minute})
	if even.Median != 3*time.Minute {
		t.Fatalf("even median = %v", even.Median)
	}
	if got := Stats(nil).String(); got != "n=0" {
		t.Fatalf("empty stats = %q", got)
	}
	if !strings.Contains(s.String(), "median=6m") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestEngineAPIsMountedInWorld(t *testing.T) {
	t.Parallel()
	w := NewWorld(fastCfg())
	d, err := w.Deploy("api-flow.com", MountSpec{Brand: phishkit.PayPal, Technique: evasion.None})
	if err != nil {
		t.Fatal(err)
	}
	url := d.Mounts[0].URL
	client := simnet.NewClient(w.Net, "198.51.100.200")

	// Report over HTTP, exactly as the paper's online form submission.
	resp, err := client.PostForm("http://"+EngineAPIHost(engines.GSB)+"/report",
		map[string][]string{"url": {url}, "reporter": {ReporterAddress}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("report status = %d", resp.StatusCode)
	}
	w.Sched.RunFor(24 * time.Hour)

	// Check the listing through the v4 API.
	prefix := blacklist.HashPrefix(url)
	resp, err = client.Get("http://" + EngineAPIHost(engines.GSB) + "/v4/lookup?prefix=" + prefix)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "yes" {
		t.Fatalf("v4 lookup = %q, want yes after the pipeline ran", body)
	}
}
