package experiment

import (
	"bytes"
	"strings"
	"testing"

	"areyouhuman/internal/campaign"
	"areyouhuman/internal/journal"
)

func runCampaign(t *testing.T, workers int, cc campaign.Config) (*campaign.Results, string) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWorld(Config{Journal: journal.NewWriter(&buf), ShardWorkers: workers})
	defer w.Close()
	res, err := w.RunCampaign(cc)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Cfg.Journal.Flush(); err != nil {
		t.Fatal(err)
	}
	return res, buf.String()
}

// TestRunCampaignFree drives a small free-hosting campaign end to end on the
// classic serial scheduler: every URL deploys, lists or expires, and is torn
// down; the journal stays anomaly-free.
func TestRunCampaignFree(t *testing.T) {
	t.Parallel()
	res, jb := runCampaign(t, 0, campaign.Config{URLs: 150, Wave: 50, Watches: 8})
	if res.Deployed != 150 {
		t.Errorf("deployed = %d, want 150", res.Deployed)
	}
	if res.Listed == 0 {
		t.Error("campaign produced no listings")
	}
	if res.Shared == 0 {
		t.Error("no cross-engine feed-share listings observed")
	}
	var mounted, evicted int64
	for _, p := range res.Providers {
		mounted += p.Mounted
		evicted += p.Evicted
	}
	if mounted != 150 {
		t.Errorf("providers mounted %d sites, want 150", mounted)
	}
	if evicted != 150 {
		t.Errorf("providers evicted %d sites, want 150 (campaign must tear down every route)", evicted)
	}
	if res.Watched != 8 {
		t.Errorf("watched = %d, want 8", res.Watched)
	}
	table := res.RenderTable()
	if !strings.Contains(table, "campaign: 150 URLs, provider=free") {
		t.Errorf("table header missing:\n%s", table)
	}

	events, err := journal.ReadEvents(strings.NewReader(jb))
	if err != nil {
		t.Fatal(err)
	}
	st := journal.Analyze(events)
	if anomalies := st.Anomalies(); len(anomalies) != 0 {
		t.Fatalf("journal flagged %d anomalies, e.g. %v", len(anomalies), anomalies[0])
	}
}

// TestRunCampaignDedicated checks the dedicated-domain provider: each URL
// registers its own host and zone, and both are released at window close.
func TestRunCampaignDedicated(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w := NewWorld(Config{Journal: journal.NewWriter(&buf)})
	defer w.Close()
	zonesBefore := len(w.DNS.Zones())
	res, err := w.RunCampaign(campaign.Config{
		URLs: 60, Wave: 30, Provider: campaign.ProviderDedicated, Watches: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deployed != 60 {
		t.Errorf("deployed = %d, want 60", res.Deployed)
	}
	if res.Listed == 0 {
		t.Error("dedicated campaign produced no listings")
	}
	if res.Taint != 0 {
		t.Errorf("dedicated campaign reported %d ip-rep listings; reputation needs shared hosting", res.Taint)
	}
	if got := len(w.DNS.Zones()); got != zonesBefore {
		t.Errorf("dangling DNS zones after campaign: %d, want %d", got, zonesBefore)
	}
	if len(res.Providers) != 0 {
		t.Errorf("dedicated campaign lists %d providers, want 0", len(res.Providers))
	}
}

// TestCampaignValidation pins the config error paths.
func TestCampaignValidation(t *testing.T) {
	t.Parallel()
	w := NewWorld(Config{})
	defer w.Close()
	if _, err := w.RunCampaign(campaign.Config{URLs: 0}); err == nil {
		t.Error("URLs=0 accepted")
	}
	if _, err := w.RunCampaign(campaign.Config{URLs: 10, Provider: "clown"}); err == nil {
		t.Error("unknown provider accepted")
	}
}

// TestCampaignShardWorkerIdentity is the campaign determinism gate: the
// rendered tables and journal bytes must be identical for 1 and 4 workers
// (this is the in-tree version of the CI campaign-smoke byte comparison).
func TestCampaignShardWorkerIdentity(t *testing.T) {
	t.Parallel()
	cc := campaign.Config{URLs: 300, Wave: 100, Watches: 8}
	res1, j1 := runCampaign(t, 1, cc)
	res4, j4 := runCampaign(t, 4, cc)
	if t1, t4 := res1.RenderTable(), res4.RenderTable(); t1 != t4 {
		t.Errorf("tables differ across worker counts:\n--- 1 worker ---\n%s\n--- 4 workers ---\n%s", t1, t4)
	}
	if j1 != j4 {
		t.Error("journal bytes differ across worker counts")
	}
}

// TestCampaignTaintListings runs long enough for provider sweeps to publish
// shared-IP reputation and checks that reputation listings actually occur
// (the free-hosting channel Recaptcha URLs can only be caught through).
func TestCampaignTaintListings(t *testing.T) {
	t.Parallel()
	res, _ := runCampaign(t, 1, campaign.Config{URLs: 600, Wave: 150, Watches: -1})
	if res.Taint == 0 {
		t.Error("no shared-IP reputation listings; taint channel inert")
	}
	var sweeps, takedowns int64
	for _, p := range res.Providers {
		sweeps += p.Sweeps
		takedowns += p.Takedowns
	}
	if sweeps == 0 {
		t.Error("providers ran no abuse sweeps")
	}
	if takedowns == 0 {
		t.Error("provider sweeps took down no listed sites")
	}
}
