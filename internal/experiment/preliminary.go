package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/journal"
	"areyouhuman/internal/phishkit"
	"areyouhuman/internal/telemetry"
)

// Table1Row is one row of the preliminary-test table.
type Table1Row struct {
	Engine            string // key
	EngineName        string
	Requests          int
	UniqueIPs         int
	ReportedPages     string // always "G, F, P"
	AlsoBlacklistedBy []string
	// BlacklistedTargets lists the brand letters of this row's URLs that
	// ended up on the row engine's own blacklist.
	BlacklistedTargets string
}

// PreliminaryDuration is the initial test's length (24 hours was enough to
// classify a reported URL, per the paper).
const PreliminaryDuration = 24 * time.Hour

// RunPreliminary deploys one domain per engine hosting naked Gmail,
// Facebook, and PayPal kits, reports each domain's three URLs to its engine,
// runs 24 virtual hours, and assembles Table 1.
func (w *World) RunPreliminary() ([]Table1Row, error) {
	span := w.Tel.T().Start("stage.preliminary")
	defer func() { span.End(telemetry.Int("events_executed", w.Sched.Executed())) }()
	w.Journal.Emit(journal.KindStageStart, journal.Fields{Stage: "preliminary"})
	defer w.Journal.Emit(journal.KindStageEnd, journal.Fields{Stage: "preliminary"})
	keys := engines.Keys()
	domains := w.KeywordDomains("init", len(keys), 0)

	deployments := make([]*Deployment, len(keys))
	for i, key := range keys {
		d, err := w.Deploy(domains[i],
			MountSpec{Brand: phishkit.Gmail, Technique: evasion.None},
			MountSpec{Brand: phishkit.Facebook, Technique: evasion.None},
			MountSpec{Brand: phishkit.PayPal, Technique: evasion.None},
		)
		if err != nil {
			return nil, err
		}
		if err := w.ReportTo(d, key); err != nil {
			return nil, err
		}
		deployments[i] = d
	}
	w.Sched.RunFor(PreliminaryDuration)
	if err := w.Sched.InterruptErr(); err != nil {
		return nil, err
	}

	rows := make([]Table1Row, len(keys))
	for i, key := range keys {
		d := deployments[i]
		eng := w.Engines[key]
		row := Table1Row{
			Engine:        key,
			EngineName:    eng.Profile.Name,
			Requests:      d.Log.Requests(),
			UniqueIPs:     d.Log.UniqueIPs(),
			ReportedPages: "G, F, P",
		}
		var targets []string
		for _, m := range d.Mounts {
			if entry, ok := eng.List.Lookup(m.URL); ok && entry.Source == key {
				targets = append(targets, m.Brand.Letter())
			}
		}
		row.BlacklistedTargets = strings.Join(targets, ", ")
		if row.BlacklistedTargets == "" {
			row.BlacklistedTargets = "-"
		}
		alsoSet := map[string]bool{}
		for _, other := range keys {
			if other == key {
				continue
			}
			for _, url := range d.URLs() {
				if w.Engines[other].List.Contains(url) {
					alsoSet[other] = true
				}
			}
		}
		for other := range alsoSet {
			row.AlsoBlacklistedBy = append(row.AlsoBlacklistedBy, other)
		}
		sort.Strings(row.AlsoBlacklistedBy)
		rows[i] = row
	}
	return rows, nil
}

// RenderTable1 formats the rows like the paper's Table 1.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %-10s %-38s %s\n",
		"Reported to", "# requests", "Unique IPs", "Pages", "Also blacklisted by", "Blacklisted targets")
	for _, r := range rows {
		also := strings.Join(r.AlsoBlacklistedBy, ", ")
		if also == "" {
			also = "-"
		}
		fmt.Fprintf(&b, "%-14s %10d %10d %-10s %-38s %s\n",
			r.EngineName[:min(len(r.EngineName), 14)], r.Requests, r.UniqueIPs, r.ReportedPages, also, r.BlacklistedTargets)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
