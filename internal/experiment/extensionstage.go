package experiment

import (
	"fmt"
	"strings"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/browser"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/extensions"
	"areyouhuman/internal/journal"
	"areyouhuman/internal/phishkit"
	"areyouhuman/internal/telemetry"
)

// Extension-test cadence: each URL is visited three times with a five-hour
// window between visits (Section 5).
const (
	ExtensionVisits       = 3
	ExtensionVisitSpacing = 5 * time.Hour
)

// Table3Row is one row of the client-side extension table.
type Table3Row struct {
	Name          string
	Company       string
	Installations int
	SendsPlainURL bool
	SendsParams   bool
	Detected      int
	Total         int
	// Telemetry is the number of captured extension-to-server messages
	// (the Burp-proxy view).
	Telemetry int
}

// RunExtensions deploys nine fresh protected URLs (three per technique,
// alternating brands), installs each catalog extension in its own browser
// profile with GSB disabled, has a human visit every URL three times —
// solving every challenge — and reports what each extension detected.
func (w *World) RunExtensions() ([]Table3Row, error) {
	span := w.Tel.T().Start("stage.extensions")
	defer func() { span.End(telemetry.Int("events_executed", w.Sched.Executed())) }()
	w.Journal.Emit(journal.KindStageStart, journal.Fields{Stage: "extensions"})
	defer w.Journal.Emit(journal.KindStageEnd, journal.Fields{Stage: "extensions"})
	var specs []MountSpec
	brands := []phishkit.Brand{phishkit.Facebook, phishkit.PayPal}
	for _, tech := range evasion.Techniques() {
		for i := 0; i < 3; i++ {
			specs = append(specs, MountSpec{Brand: brands[i%2], Technique: tech})
		}
	}
	domains := w.KeywordDomains("ext", len(specs), 0)
	deployments := make([]*Deployment, len(specs))
	for i, spec := range specs {
		d, err := w.Deploy(domains[i], spec)
		if err != nil {
			return nil, err
		}
		deployments[i] = d
	}

	rows := make([]Table3Row, 0, len(extensions.Catalog()))
	for _, spec := range extensions.Catalog() {
		ext := extensions.Build(spec, w.Clock, func(key string) *blacklist.List {
			if eng, ok := w.Engines[key]; ok {
				return eng.List
			}
			return nil
		})
		detected := make(map[string]bool)

		// Each extension runs in its own Firefox profile: one browser with
		// human capabilities, GSB disabled (the extension is the only
		// checker).
		human := browser.New(w.Net, browser.Config{
			UserAgent:       "Mozilla/5.0 (X11; Linux x86_64; rv:76.0) Gecko/20100101 Firefox/76.0",
			SourceIP:        "192.0.2.77",
			ExecuteScripts:  true,
			AlertPolicy:     browser.AlertConfirm,
			TimerBudget:     time.Hour,
			CanSolveCAPTCHA: true,
			DOMCache:        w.DOMCache,
			ScriptCache:     w.Scripts,
		})

		for _, d := range deployments {
			m := d.Mounts[0]
			for visit := 0; visit < ExtensionVisits; visit++ {
				url := m.URL
				w.Sched.After(time.Duration(visit)*ExtensionVisitSpacing+time.Minute, "ext-visit:"+spec.Company, func(time.Time) {
					page, err := human.Open(url)
					if err != nil {
						return
					}
					// The human passed the gate; the extension now sees the
					// final (possibly malicious) page and its URL.
					if ext.OnNavigate(url, page) {
						detected[url] = true
					}
				})
			}
		}
		w.Sched.RunFor(time.Duration(ExtensionVisits)*ExtensionVisitSpacing + time.Hour)
		if err := w.Sched.InterruptErr(); err != nil {
			return nil, err
		}

		rows = append(rows, Table3Row{
			Name:          spec.Name,
			Company:       spec.Company,
			Installations: spec.Installations,
			SendsPlainURL: spec.SendsPlainURL,
			SendsParams:   spec.SendsParams,
			Detected:      len(detected),
			Total:         len(deployments),
			Telemetry:     len(ext.TelemetryLog()),
		})
	}
	return rows, nil
}

// RenderTable3 formats the rows like the paper's Table 3.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-12s %14s %-10s %-8s %s\n",
		"Extension", "Company", "# installs", "URLs sent", "Params", "X/Y")
	for _, r := range rows {
		mode := "hashed"
		if r.SendsPlainURL {
			mode = "plain"
		}
		params := "no"
		if r.SendsParams {
			params = "yes"
		}
		fmt.Fprintf(&b, "%-28s %-12s %14s %-10s %-8s %d/%d\n",
			r.Name, r.Company, fmt.Sprintf("%d+", r.Installations), mode, params, r.Detected, r.Total)
	}
	return b.String()
}
