package experiment

import (
	"fmt"
	"math/rand"

	"areyouhuman/internal/dropcatch"
	"areyouhuman/internal/reputation"
	"areyouhuman/internal/whois"
	"areyouhuman/internal/wordnet"
)

// KeywordDomains synthesises n registrable keyword domains (Section 3: "we
// randomly generate keywords from the Unix dictionary"), newGTLD of them
// under new gTLDs and the rest under legacy gTLDs. The label prefix keeps
// stage domain sets disjoint.
func (w *World) KeywordDomains(prefix string, n, newGTLD int) []string {
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ int64(len(prefix))<<8 ^ int64(n)))
	words := wordnet.RandomKeywords(w.Cfg.Seed^int64(n), len(wordnet.Dictionary()))
	legacy := []string{"com", "net", "org"}
	newer := []string{"xyz", "online", "site", "top", "icu", "club", "shop"}
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for i := 0; len(out) < n; i++ {
		a := words[rng.Intn(len(words))]
		b := words[rng.Intn(len(words))]
		if a == b {
			continue
		}
		tld := legacy[rng.Intn(len(legacy))]
		if len(out) < newGTLD {
			tld = newer[rng.Intn(len(newer))]
		}
		domain := fmt.Sprintf("%s-%s-%s.%s", prefix, a, b, tld)
		if seen[domain] {
			continue
		}
		seen[domain] = true
		out = append(out, domain)
	}
	return out
}

// DropCatchDomains runs the six-step selection pipeline over a synthetic
// candidate population and returns n reputed expired domains ready for
// registration, plus the realised funnel. The candidate list is scaled down
// from the paper's 1M (see dropcatch.PaperConfig for the full-scale run);
// the pipeline code is identical.
func (w *World) DropCatchDomains(n int) ([]string, dropcatch.Funnel, error) {
	// Build a live population: a candidate list in which exactly n domains
	// are expired with archive history and search presence.
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0x5eed))
	listSize := n * 40
	list := make([]string, 0, listSize)
	seen := map[string]bool{}
	words := wordnet.Dictionary() // hoisted: one copy for the whole list
	for len(list) < listSize {
		d := synthAged(rng, words)
		if !seen[d] {
			seen[d] = true
			list = append(list, d)
		}
	}
	// Population plan scaled from the paper's funnel (1M -> 770 -> 251 ->
	// 244 -> 244 -> 50): beyond the n keepers, plant expired domains that
	// fall out at intermediate steps — snapped up again before we could
	// register them (step 2/3), or lacking web history (steps 5/6).
	expired := n * 770 / 50
	available := n * 244 / 50
	if expired > listSize {
		expired = listSize
	}
	perm := rng.Perm(listSize)
	pick := func(count int, offset int) []string {
		out := make([]string, count)
		for i := range out {
			out[i] = list[perm[offset+i]]
		}
		return out
	}
	chosen := pick(n, 0)
	unarchived := pick(available-n, n)
	taken := pick(expired-available, available)

	ls := dropcatch.LiveServices{
		DNS:        w.DNS,
		Registrars: w.Checkers,
		WHOIS:      w.WHOIS,
		Scanner:    reputation.NewScanner(),
		Archive:    reputation.NewArchive(),
		Index:      reputation.NewSearchIndex(),
	}
	dropcatch.PlantLive(ls, list, chosen, w.Clock.Now())
	for _, d := range unarchived {
		// Expired and registrable, but never archived or indexed.
		w.DNS.RemoveZone(d)
	}
	for _, d := range taken {
		// Expired on DNS but already re-registered by a drop-catcher.
		w.DNS.RemoveZone(d)
		w.WHOIS.Put(whois.Record{
			Domain: d, Registrar: "DropCatch LLC", Registrant: "speculator",
			Created: w.Clock.Now().AddDate(0, -1, 0), Expires: w.Clock.Now().AddDate(1, -1, 0),
		})
	}
	selected, funnel := dropcatch.Run(list, ls.Services(), n)
	if len(selected) != n {
		return nil, funnel, fmt.Errorf("experiment: drop-catch selected %d domains, want %d", len(selected), n)
	}
	// The planted non-chosen zones are aged sites that exist on DNS but are
	// not part of our hosting; leave them delegated.
	return selected, funnel, nil
}

// synthAged builds names that look like once-active sites, drawing from the
// caller-provided sorted dictionary.
func synthAged(rng *rand.Rand, words []string) string {
	a := words[rng.Intn(len(words))]
	b := words[rng.Intn(len(words))]
	tld := agedTLDs[rng.Intn(len(agedTLDs))]
	return a + b + "." + tld
}

var agedTLDs = [...]string{"com", "net", "org", "info"}
