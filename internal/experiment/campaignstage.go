package experiment

import (
	"net/http"
	"runtime"
	"strings"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/campaign"
	"areyouhuman/internal/captcha"
	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/hosting"
	"areyouhuman/internal/journal"
	"areyouhuman/internal/monitor"
	"areyouhuman/internal/phishkit"
	"areyouhuman/internal/simnet"
	"areyouhuman/internal/sitegen"
	"areyouhuman/internal/telemetry"
)

// CampaignCoverDomain names the shared benign cover site dedicated-mode
// campaign URLs serve beside their phishing page.
const CampaignCoverDomain = "portfolio-hosting.example"

// RunCampaign runs a paper-scale streaming study: cfg.URLs phishing URLs
// deployed in waves, each reported to one engine, measured for one window,
// scored into the streaming aggregator, and torn down. Unlike RunMain,
// nothing per-URL outlives its window — no Deployment records, no result
// maps — so memory is bounded by one wave plus the aggregator's fixed cells
// regardless of campaign size (the heap-regression test holds this to a
// small factor between 10k and 100k URLs).
//
// Free-provider campaigns additionally exercise the shared-hosting dynamics
// the dedicated study cannot: subdomain URLs spread across the provider
// apexes (and therefore across scheduler shards), listings taint the
// provider's shared IPs so engines begin flagging co-hosted URLs on
// reputation alone, and the providers' periodic abuse sweeps bulk-evict
// listed sites on the virtual clock.
func (w *World) RunCampaign(cc campaign.Config) (*campaign.Results, error) {
	cc = cc.WithDefaults()
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	span := w.Tel.T().Start("stage.campaign")
	defer func() { span.End(telemetry.Int("events_executed", w.Sched.Executed())) }()
	w.Journal.Emit(journal.KindStageStart, journal.Fields{Stage: "campaign"})
	defer w.Journal.Emit(journal.KindStageEnd, journal.Fields{Stage: "campaign"})

	keys := engines.Keys()
	feeds := make([]*blacklist.List, len(keys))
	for i, key := range keys {
		feeds[i] = w.Engines[key].List
	}

	// Providers and the reputation channel. Everything shared across URLs —
	// provider front ends, kits, cover sites, the CAPTCHA site, render
	// caches — is built here, before the scheduler runs, so deploy events on
	// different shards only ever read it.
	var providers []*hosting.FreeProvider
	var apexes []string
	var rep engines.HostRep
	if cc.Provider == campaign.ProviderFree {
		apexes = simnet.FreeHostingApexes()
		for _, apex := range apexes {
			p := hosting.NewFreeProvider(apex, w.Net, w.DNS, w.Sched, w.Journal)
			if w.Sched.Sharded() {
				w.Sched.OnBarrier(p.PublishTaint)
			}
			providers = append(providers, p)
		}
		rep = providerMux(providers)
	}
	for _, key := range keys {
		w.Engines[key].CampaignTune(rep, nil)
	}

	factories := make(map[string]*siteFactory, len(apexes)+1)
	if len(apexes) == 0 {
		f, err := w.newSiteFactory(CampaignCoverDomain)
		if err != nil {
			return nil, err
		}
		factories[""] = f
	}
	for _, apex := range apexes {
		f, err := w.newSiteFactory(apex)
		if err != nil {
			return nil, err
		}
		factories[apex] = f
	}

	planner := campaign.NewPlanner(w.Cfg.Seed, apexes)
	agg := campaign.NewAggregator(w.Sched.Shards(), planner.Engines,
		brandNames(planner.Brands), techniqueLetters(planner.Techniques))

	mon := monitor.New(w.Sched)
	mon.Instrument(w.Tel)
	mon.WithJournal(w.Journal)

	providerByApex := make(map[string]*hosting.FreeProvider, len(providers))
	for _, p := range providers {
		providerByApex[p.Apex] = p
	}

	var heap heapWatermark
	waves := cc.Waves()
	start := w.Clock.Now()
	// Horizon: the last wave starts at (waves-1)*Window, its deploys jitter
	// by up to Spread, and their windows run one more Window. The slack
	// hour lets trailing provider takedowns and sweeps drain.
	horizon := start.Add(time.Duration(waves-1)*cc.Window + planner.Spread + cc.Window + time.Hour)
	for _, p := range providers {
		p.StartSweeps(cc.SweepInterval, horizon, feeds)
	}

	closeOne := func(p campaign.Plan, reportedAt time.Time) {
		o := campaign.Outcome{
			Engine: p.Engine, Brand: string(p.Brand),
			Technique: p.Technique.Letter(), URL: p.URL,
		}
		own, taintedOwn := p.Engine, engines.TaintSourcePrefix+p.Engine
		for i, key := range keys {
			entry, ok := feeds[i].Lookup(p.URL)
			if !ok {
				continue
			}
			if key == p.Engine && (entry.Source == own || entry.Source == taintedOwn) {
				o.Listed = true
				o.Taint = entry.Source == taintedOwn
				o.Lag = entry.AddedAt.Sub(reportedAt)
			} else {
				o.Shared++
			}
			feeds[i].Remove(p.URL)
		}
		shard := 0
		if st, ok := w.Sched.ExecStamp(); ok {
			shard = st.Shard
		}
		agg.Observe(shard, o)
		if prov := providerByApex[p.Apex]; prov != nil {
			prov.Evict(p.Label)
		} else {
			w.Net.Unregister(p.Host)
			w.DNS.RemoveZone(p.Host)
		}
		if p.Index < cc.Watches {
			mon.Forget(p.URL)
		}
		w.Journal.Emit(journal.KindWindowClose, journal.Fields{
			URL: p.URL, Domain: p.Host, Engine: p.Engine,
		})
	}

	deployOne := func(p campaign.Plan, now time.Time) {
		apexKey := p.Apex // "" selects the dedicated factory
		site := factories[apexKey].site(p)
		if prov := providerByApex[p.Apex]; prov != nil {
			prov.Mount(p.Label, site)
		} else {
			host := w.Net.Register(p.Host, site)
			w.DNS.AddZone(p.Host, host.IP)
			w.Net.EnableTLS(p.Host)
		}
		w.Journal.Emit(journal.KindDeploy, journal.Fields{
			URL: p.URL, Domain: p.Host,
			Brand: string(p.Brand), Technique: p.Technique.String(),
		})
		eng := w.Engines[p.Engine]
		eng.Report(p.URL, ReporterAddress)
		if p.Index < cc.Watches {
			until := now.Add(cc.Window)
			switch p.Engine {
			case engines.GSB:
				mon.WatchAPI(p.URL, p.Engine, eng.List, until)
			case engines.SmartScreen:
				probe := &blacklistProbe{list: eng.List, url: p.URL}
				mon.WatchScreenshots(p.URL, p.Engine, probe.blocked, until)
			default:
				mon.WatchFeed(p.URL, p.Engine, eng.List, until)
			}
		}
		w.Sched.OnKey(simnet.ShardKey(p.Host)).After(cc.Window, "campaign:close", func(time.Time) {
			closeOne(p, now)
		})
	}

	// The wave pump: a serial chain on its own affinity key that fans each
	// wave's deploys out to the URLs' home shards (cross-shard sends ride
	// the deterministic barrier mailboxes), then sleeps one window — so at
	// most one wave is in flight and memory stays flat.
	pumpKey := w.Sched.OnKey("campaign:pump")
	var pump func(now time.Time, wave int)
	pump = func(now time.Time, wave int) {
		if cc.MeasureHeap {
			heap.sample()
		}
		lo := wave * cc.Wave
		hi := min(cc.URLs, lo+cc.Wave)
		for i := lo; i < hi; i++ {
			p := planner.At(i)
			w.Sched.OnKey(simnet.ShardKey(p.Host)).After(p.Jitter, "campaign:deploy", func(at time.Time) {
				deployOne(p, at)
			})
		}
		if hi < cc.URLs {
			pumpKey.After(cc.Window, "campaign:wave", func(at time.Time) {
				pump(at, wave+1)
			})
		}
	}
	wallStart := time.Now() //phishlint:wallclock throughput metric; excluded from RenderTable so results stay deterministic
	pumpKey.After(0, "campaign:wave", func(at time.Time) { pump(at, 0) })

	w.Sched.RunFor(horizon.Sub(start))
	if err := w.Sched.InterruptErr(); err != nil {
		return nil, err
	}
	if cc.MeasureHeap {
		heap.sample()
	}

	res := agg.Results(cc.URLs, cc.Provider)
	res.VirtualDuration = w.Clock.Now().Sub(start)
	res.PeakHeapBytes = heap.peak
	res.WallSeconds = time.Since(wallStart).Seconds() //phishlint:wallclock throughput metric; never feeds deterministic output
	if res.WallSeconds > 0 {
		res.URLsPerSec = float64(cc.URLs) / res.WallSeconds
	}
	for _, p := range providers {
		st := p.Stats()
		res.Providers = append(res.Providers, campaign.ProviderReport{
			Apex: st.Apex, Mounted: st.Mounted, Evicted: st.Evicted,
			Sweeps: st.Sweeps, Takedowns: st.Takedowns,
		})
	}
	res.Watched = min(cc.Watches, cc.URLs)
	if res.Watched < 0 {
		res.Watched = 0
	}
	for i := 0; i < res.Watched; i++ {
		p := planner.At(i)
		if _, ok := mon.FirstSeen(p.URL, p.Engine); ok {
			res.Sighted++
		}
	}
	return res, nil
}

// providerMux routes reputation queries to the provider owning the host's
// apex. It implements engines.HostRep.
type providerMux []*hosting.FreeProvider

func (m providerMux) TaintScore(host string, now time.Time) float64 {
	for _, p := range m {
		if strings.HasSuffix(host, "."+p.Apex) {
			return p.TaintScore(host, now)
		}
	}
	return 0
}

// siteFactory memoizes everything a campaign URL's site shares with its
// siblings on the same provider: the per-brand kits and payload handlers,
// the benign cover site, one CAPTCHA site registration, and one render
// cache. Only the evasion wrapper is built per URL — session state must not
// leak between URLs — and it is released when the route is evicted.
type siteFactory struct {
	benign   http.Handler
	render   *evasion.RenderCache
	widget   string
	verify   func(string) bool
	kits     map[phishkit.Brand]*phishkit.Kit
	payloads map[phishkit.Brand]http.Handler
}

func (w *World) newSiteFactory(coverDomain string) (*siteFactory, error) {
	cover := sitegen.GenerateCached(coverDomain, sitegen.Config{Seed: w.Cfg.Seed})
	f := &siteFactory{
		benign:   cover.Handler(),
		render:   evasion.NewRenderCache(),
		kits:     make(map[phishkit.Brand]*phishkit.Kit),
		payloads: make(map[phishkit.Brand]http.Handler),
	}
	for _, b := range phishkit.Brands() {
		prov := phishkit.Cloned
		if b == phishkit.Gmail {
			prov = phishkit.FromScratch
		}
		kit, err := phishkit.GenerateCached(b, prov)
		if err != nil {
			return nil, err
		}
		f.kits[b] = kit
		f.payloads[b] = kit.Handler(nil)
	}
	sitekey, secret := w.Captcha.RegisterSite()
	f.widget = captcha.WidgetHTML(CaptchaHost, sitekey, "capback")
	verifier := &captcha.Client{
		HTTP:    simnet.NewClient(w.Net, "203.0.113.250"),
		BaseURL: "http://" + CaptchaHost,
		Secret:  secret,
	}
	f.verify = verifier.Verify
	return f, nil
}

// site assembles one URL's routed handler from the factory's shared parts
// plus a fresh evasion wrapper.
func (f *siteFactory) site(p campaign.Plan) http.Handler {
	opts := evasion.Options{
		Payload:     f.payloads[p.Brand],
		Benign:      f.benign,
		RenderCache: f.render,
	}
	if p.Technique == evasion.Recaptcha {
		opts.WidgetHTML = f.widget
		opts.VerifyToken = f.verify
	}
	wrapped, err := evasion.Wrap(p.Technique, opts)
	if err != nil {
		// Techniques() only yields wrappable techniques; an error here is a
		// programming bug, and the placeholder 404 is the safe fallback.
		return http.NotFoundHandler()
	}
	return &campaignSite{
		phish:   wrapped,
		kit:     f.kits[p.Brand],
		payload: f.payloads[p.Brand],
		benign:  f.benign,
	}
}

// campaignSite routes one URL's paths the way Deploy's per-domain mux does,
// without allocating a ServeMux per URL: the evasion-wrapped page at the
// campaign path, kit assets and the credential collector beside it, the
// benign cover site everywhere else.
type campaignSite struct {
	phish   http.Handler
	kit     *phishkit.Kit
	payload http.Handler
	benign  http.Handler
}

func (s *campaignSite) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == campaign.PhishPath:
		s.phish.ServeHTTP(w, r)
	case path == s.kit.CollectPath:
		s.payload.ServeHTTP(w, r)
	default:
		if _, ok := s.kit.Resources[path]; ok {
			s.payload.ServeHTTP(w, r)
			return
		}
		s.benign.ServeHTTP(w, r)
	}
}

// heapWatermark tracks the wave-boundary heap high-water mark. Samples run
// only on the pump chain (one affinity key, serial), so the plain field is
// race-free; the final read happens after the scheduler drains.
type heapWatermark struct {
	peak uint64
}

func (h *heapWatermark) sample() {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > h.peak {
		h.peak = ms.HeapAlloc
	}
}

func brandNames(bs []phishkit.Brand) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = string(b)
	}
	return out
}

func techniqueLetters(ts []evasion.Technique) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Letter()
	}
	return out
}
