package experiment

import (
	"testing"

	"areyouhuman/internal/browser"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/phishkit"
)

// BenchmarkVisitPath isolates the cost of one bot visit to a deployed
// evasion-protected phishing URL: the full stack of browser emulation,
// script execution, virtual transport, evasion gating, benign-site render,
// HTML parsing, and access logging. This is the per-visitor unit of work the
// whole study multiplies by fleet volume, so its ns/op and allocs/op are the
// simulator's primary hot-path gauge (recorded in BENCH_visitpath.json).
func BenchmarkVisitPath(b *testing.B) {
	w := NewWorld(Config{TrafficScale: 0.01})
	d, err := w.Deploy("bench-visit.example",
		MountSpec{Brand: phishkit.PayPal, Technique: evasion.AlertBox},
		MountSpec{Brand: phishkit.Facebook, Technique: evasion.SessionBased},
	)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)

	// A GSB-class visitor: executes scripts and confirms the alert box, so
	// the visit traverses the full render -> parse -> script -> navigate ->
	// payload pipeline (two fetches and a scripted form submission).
	cfg := browser.Config{
		UserAgent:      "Mozilla/5.0 (bench bot)",
		SourceIP:       "198.18.77.1",
		ExecuteScripts: true,
		AlertPolicy:    browser.AlertConfirm,
		TimerBudget:    3000000000, // 3s, enough for the 2s alert timer
		DOMCache:       w.DOMCache, // the caches every in-world visitor uses
		ScriptCache:    w.Scripts,
	}
	url := d.Mounts[0].URL

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bw := browser.New(w.Net, cfg)
		page, err := bw.Open(url)
		if err != nil {
			b.Fatal(err)
		}
		if page.Status != 200 {
			b.Fatalf("status %d", page.Status)
		}
	}
}

// BenchmarkVisitPathNoScripts is the emulator-class visitor (no script
// execution): one fetch, one parse, one log line. The floor of the visit
// pipeline.
func BenchmarkVisitPathNoScripts(b *testing.B) {
	w := NewWorld(Config{TrafficScale: 0.01})
	d, err := w.Deploy("bench-visit2.example",
		MountSpec{Brand: phishkit.PayPal, Technique: evasion.SessionBased},
	)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)

	cfg := browser.Config{
		UserAgent:   "Mozilla/5.0 (bench emulator)",
		SourceIP:    "198.18.77.2",
		DOMCache:    w.DOMCache,
		ScriptCache: w.Scripts,
	}
	url := d.Mounts[0].URL

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bw := browser.New(w.Net, cfg)
		page, err := bw.Open(url)
		if err != nil {
			b.Fatal(err)
		}
		if page.Status != 200 {
			b.Fatalf("status %d", page.Status)
		}
	}
}
