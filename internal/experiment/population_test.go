package experiment

import (
	"bytes"
	"strings"
	"testing"

	"areyouhuman/internal/journal"
	"areyouhuman/internal/population"
)

func runPopulation(t *testing.T, workers int, spec population.Spec) (*population.Results, string) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWorld(Config{Journal: journal.NewWriter(&buf), ShardWorkers: workers})
	defer w.Close()
	res, err := w.RunPopulation(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Cfg.Journal.Flush(); err != nil {
		t.Fatal(err)
	}
	return res, buf.String()
}

func presetSpec(t *testing.T, name string, size int) population.Spec {
	t.Helper()
	spec, err := population.Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	spec.Size = size
	return spec
}

// TestPopulationStudyDynamics drives a lain2025 population end to end and
// checks the paper's community-verification story arm by arm: confirmable
// pages (naked, alert box) accumulate votes and get published, so later
// victims are blocked; session and reCAPTCHA pages collect reports but
// never a confirmation, sit in the unverified section forever, and keep
// harvesting credentials.
func TestPopulationStudyDynamics(t *testing.T) {
	t.Parallel()
	res, jb := runPopulation(t, 0, presetSpec(t, "lain2025", 6000))

	sum := population.Cell{}
	for _, c := range res.Cells {
		sum.Victims += c.Victims
		sum.Visits += c.Visits
		sum.Reports += c.Reports
		for o, n := range c.Outcomes {
			sum.Outcomes[o] += n
		}
	}
	if sum.Victims != 6000 {
		t.Errorf("victims = %d, want 6000", sum.Victims)
	}
	var outcomes int
	for _, n := range sum.Outcomes {
		outcomes += n
	}
	if outcomes != sum.Visits {
		t.Errorf("outcomes sum to %d, visits %d; every visit must classify exactly once", outcomes, sum.Visits)
	}
	if sum.Outcomes[population.OutcomeFell] == 0 || sum.Outcomes[population.OutcomeSpotted] == 0 {
		t.Errorf("degenerate outcome mix: %+v", sum.Outcomes)
	}

	rows := make(map[string]population.CommunityRow, len(res.Community))
	for _, r := range res.Community {
		rows[r.Technique] = r
	}
	for _, tech := range []string{"none", "alertbox"} {
		r := rows[tech]
		if r.Published != PopulationHomes {
			t.Errorf("%s: published = %d, want all %d URLs (confirmable arm)", tech, r.Published, PopulationHomes)
		}
		if r.Pending != 0 {
			t.Errorf("%s: %d URLs still pending, want 0", tech, r.Pending)
		}
		if r.Confirmations < PopulationHomes*3 {
			t.Errorf("%s: confirmations = %d, want >= %d", tech, r.Confirmations, PopulationHomes*3)
		}
	}
	for _, tech := range []string{"session", "recaptcha"} {
		r := rows[tech]
		if r.Published != 0 {
			t.Errorf("%s: published = %d, want 0 (the paper's headline)", tech, r.Published)
		}
		if r.Pending != PopulationHomes {
			t.Errorf("%s: pending = %d, want all %d URLs stuck unverified", tech, r.Pending, PopulationHomes)
		}
		if r.Confirmations != 0 {
			t.Errorf("%s: confirmations = %d, want 0 (nobody can corroborate)", tech, r.Confirmations)
		}
		if r.Reports == 0 {
			t.Errorf("%s: no reports at all; victims should still be filing", tech)
		}
	}

	// Blocking only happens on arms that got listed: protected victims
	// exist on confirmable arms, none on the evading arms.
	techIdx := make(map[string]int, len(res.Techniques))
	for i, name := range res.Techniques {
		techIdx[name] = i
	}
	blockedOn := func(tech string) int {
		total := 0
		for ci := range res.Spec.Cohorts {
			total += res.Cell(ci, techIdx[tech]).Outcomes[population.OutcomeBlocked]
		}
		return total
	}
	if blockedOn("none") == 0 || blockedOn("alertbox") == 0 {
		t.Error("no victim was ever protected on the confirmable arms")
	}
	if n := blockedOn("session") + blockedOn("recaptcha"); n != 0 {
		t.Errorf("%d victims blocked on evading arms; nothing should have listed those URLs", n)
	}

	events, err := journal.ReadEvents(strings.NewReader(jb))
	if err != nil {
		t.Fatal(err)
	}
	deploys := 0
	for _, e := range events {
		if e.Kind == journal.KindDeploy {
			deploys++
		}
	}
	if want := PopulationHomes * len(res.Techniques); deploys != want {
		t.Errorf("journal records %d deploys, want %d", deploys, want)
	}
}

// TestPopulationByteIdenticalAcrossShardWorkers is the population
// determinism gate: rendered tables and journal bytes must match between 1
// and 4 workers on the same seed (the in-tree version of the CI
// population-identity comparison).
func TestPopulationByteIdenticalAcrossShardWorkers(t *testing.T) {
	t.Parallel()
	spec := presetSpec(t, "paper", 20_000)
	res1, j1 := runPopulation(t, 1, spec)
	res4, j4 := runPopulation(t, 4, spec)
	if t1, t4 := res1.RenderTable(), res4.RenderTable(); t1 != t4 {
		t.Errorf("tables differ across worker counts:\n--- 1 worker ---\n%s\n--- 4 workers ---\n%s", t1, t4)
	}
	if j1 != j4 {
		t.Error("journal bytes differ across worker counts")
	}
}

// TestPopulationUniformCompat covers the TrafficScale compatibility shim:
// a synthesized uniform spec runs the population stage with the legacy
// homogeneous victim model.
func TestPopulationUniformCompat(t *testing.T) {
	t.Parallel()
	spec := population.Uniform(0.5) // 5000 victims
	res, _ := runPopulation(t, 0, spec)
	if res.Spec.Name != "uniform" || len(res.Spec.Cohorts) != 1 {
		t.Fatalf("compat spec = %+v, want single uniform cohort", res.Spec)
	}
	victims := 0
	for _, c := range res.Cells {
		victims += c.Victims
	}
	if victims != 5000 {
		t.Errorf("victims = %d, want 5000", victims)
	}
}

// TestPopulationSpecValidationSurfaces checks that invalid specs fail fast
// with the typed population error.
func TestPopulationSpecValidationSurfaces(t *testing.T) {
	t.Parallel()
	w := NewWorld(Config{})
	defer w.Close()
	bad := population.Spec{Size: 10, Cohorts: []population.Cohort{{Name: "x", Share: 0.4, VisitsPerDay: 1}}}
	if _, err := w.RunPopulation(bad); err == nil {
		t.Fatal("spec with shares summing to 0.4 accepted")
	}
}
