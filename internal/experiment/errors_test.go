package experiment

import (
	"errors"
	"testing"

	"areyouhuman/internal/evasion"
	"areyouhuman/internal/phishkit"
)

// TestDeployErrorSurface pins the typed deployment-error contract: a failed
// Deploy matches ErrDeployFailed via errors.Is, recovers the domain and
// cause via errors.As, and unwraps to the underlying registrar error.
func TestDeployErrorSurface(t *testing.T) {
	t.Parallel()
	w := NewWorld(Config{TrafficScale: 0.002})
	defer w.Close()
	if _, err := w.Deploy("dup.example.com",
		MountSpec{Brand: phishkit.PayPal, Technique: evasion.None}); err != nil {
		t.Fatal(err)
	}
	// Re-registering the same domain is the reliable failure path.
	_, err := w.Deploy("dup.example.com",
		MountSpec{Brand: phishkit.PayPal, Technique: evasion.None})
	if err == nil {
		t.Fatal("duplicate deployment succeeded")
	}
	if !errors.Is(err, ErrDeployFailed) {
		t.Errorf("errors.Is(err, ErrDeployFailed) = false for %v", err)
	}
	var de *DeployError
	if !errors.As(err, &de) {
		t.Fatalf("errors.As(*DeployError) = false for %v", err)
	}
	if de.Domain != "dup.example.com" || de.Reason == nil {
		t.Errorf("DeployError = {Domain: %q, Reason: %v}", de.Domain, de.Reason)
	}
}

// TestReportToUnknownEngine pins the sentinel for misdirected reports.
func TestReportToUnknownEngine(t *testing.T) {
	t.Parallel()
	w := NewWorld(Config{TrafficScale: 0.002})
	defer w.Close()
	d, err := w.Deploy("report-err.example.com",
		MountSpec{Brand: phishkit.Facebook, Technique: evasion.None})
	if err != nil {
		t.Fatal(err)
	}
	err = w.ReportTo(d, "no-such-engine")
	if !errors.Is(err, ErrUnknownEngine) {
		t.Errorf("errors.Is(err, ErrUnknownEngine) = false for %v", err)
	}
	if err := w.ReportTo(d, "gsb"); err != nil {
		t.Errorf("valid engine errored: %v", err)
	}
}
