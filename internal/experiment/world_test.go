package experiment

import (
	"testing"
)

// TestDeploymentURLsMemoized pins the URLs() memoization: the hot path (no
// mount changes since the last call) must allocate nothing and return the
// same backing slice, and the memo must refresh when mounts are added.
func TestDeploymentURLsMemoized(t *testing.T) {
	d := &Deployment{Domain: "memo.example"}
	d.Mounts = append(d.Mounts,
		Mount{URL: "https://memo.example/a"},
		Mount{URL: "https://memo.example/b"})

	first := d.URLs()
	if len(first) != 2 || first[0] != "https://memo.example/a" || first[1] != "https://memo.example/b" {
		t.Fatalf("URLs() = %v", first)
	}
	if allocs := testing.AllocsPerRun(100, func() { d.URLs() }); allocs != 0 {
		t.Errorf("memoized URLs() allocates %.1f per call, want 0", allocs)
	}
	if second := d.URLs(); &second[0] != &first[0] {
		t.Error("repeated URLs() rebuilt the slice instead of reusing the memo")
	}

	d.Mounts = append(d.Mounts, Mount{URL: "https://memo.example/c"})
	third := d.URLs()
	if len(third) != 3 || third[2] != "https://memo.example/c" {
		t.Fatalf("URLs() after mount add = %v", third)
	}
}
