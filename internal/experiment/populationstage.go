package experiment

import (
	"fmt"
	"net/http"
	"net/url"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/browser"
	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/htmlmini"
	"areyouhuman/internal/journal"
	"areyouhuman/internal/phishkit"
	"areyouhuman/internal/population"
	"areyouhuman/internal/simnet"
	"areyouhuman/internal/telemetry"
)

// Population-stage topology. Victims are hashed onto PopulationHomes home
// hosts — each the deployment they receive lures for — so every event
// belonging to one victim (visits, community reports, the engine crawls and
// voter reviews they trigger) runs on that host's scheduler shard, the same
// affinity discipline RunCampaign uses for URLs.
const (
	// PopulationHomes is the number of home-host deployments victims are
	// partitioned across.
	PopulationHomes = 16
	// PopulationCoverDomain names the benign cover site population
	// deployments share.
	PopulationCoverDomain = "newsletter-digest.example"

	// popBatch victims are derived and scheduled per pump tick; with one
	// batch in flight plus its trailing visits, live scheduler state is
	// bounded by a few batches regardless of population size.
	popBatch = 8192
	// popWindow spaces pump batches and one victim's repeat visits.
	popWindow = time.Hour
	// popSessionRotateEvery bounds the session-based wrapper's per-visitor
	// state: after this many victim visits to a home's session arm, the
	// wrapper is rebuilt fresh (cookie-less visitors each cost one session
	// entry; rotation keeps that table capped instead of growing with the
	// population).
	popSessionRotateEvery = 2048
)

// popUserAgent is the victim browser fingerprint (same profile the exposure
// study uses).
const popUserAgent = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) Chrome/81.0 Safari/537.36"

// popHomeHost names home deployment h.
func popHomeHost(h int) string {
	return fmt.Sprintf("pop-home-%02d.example", h)
}

// popArmPath is the phishing path for one technique arm on a home host.
func popArmPath(t evasion.Technique) string {
	return "/wp-content/secure/login-" + t.String() + ".php"
}

// popTechniques are the stage's technique arms: the naked control plus the
// paper's three human-verification techniques.
func popTechniques() []evasion.Technique {
	return append([]evasion.Technique{evasion.None}, evasion.Techniques()...)
}

// popConfirmable reports whether a community report against a page using
// technique t can be corroborated: the page shows its phish to any fresh
// viewer (plain pages, and alert boxes any human clicks through), so votes
// accumulate. Session gates and reCAPTCHA show fresh viewers only the
// benign or challenge face — a reporter's submission stays an
// uncorroborated loner, which is how those techniques starve community
// verification (the paper's Section 5.1 anecdote).
func popConfirmable(t evasion.Technique) bool {
	return t == evasion.None || t == evasion.AlertBox
}

// popSite is one home host's routed handler: four evasion-wrapped arms over
// the shared kit/payload/cover parts. All mutation (session-arm rotation)
// happens on the home's shard, so the plain fields need no lock.
type popSite struct {
	factory    *siteFactory
	brand      phishkit.Brand
	kit        *phishkit.Kit
	payload    http.Handler
	benign     http.Handler
	techniques []evasion.Technique
	paths      []string
	arms       []http.Handler
	sessionArm int
	// sessionVisits counts victim visits to the session arm since the last
	// wrapper rotation.
	sessionVisits int
}

func newPopSite(f *siteFactory, brand phishkit.Brand, techs []evasion.Technique) *popSite {
	s := &popSite{
		factory:    f,
		brand:      brand,
		kit:        f.kits[brand],
		payload:    f.payloads[brand],
		benign:     f.benign,
		techniques: techs,
		paths:      make([]string, len(techs)),
		arms:       make([]http.Handler, len(techs)),
		sessionArm: -1,
	}
	for i, t := range techs {
		s.paths[i] = popArmPath(t)
		s.rebuildArm(i)
		if t == evasion.SessionBased {
			s.sessionArm = i
		}
	}
	return s
}

// rebuildArm (re)wraps one arm. Rotating the session arm drops its
// accumulated per-visitor session table.
func (s *popSite) rebuildArm(arm int) {
	opts := evasion.Options{
		Payload:     s.payload,
		Benign:      s.benign,
		RenderCache: s.factory.render,
	}
	if s.techniques[arm] == evasion.Recaptcha {
		opts.WidgetHTML = s.factory.widget
		opts.VerifyToken = s.factory.verify
	}
	wrapped, err := evasion.Wrap(s.techniques[arm], opts)
	if err != nil {
		// popTechniques only yields wrappable techniques; a failure here is
		// a programming bug and the 404 placeholder is the safe fallback.
		wrapped = http.NotFoundHandler()
	}
	s.arms[arm] = wrapped
}

// visitedSession is called from the home shard's victim events; it rotates
// the session wrapper once enough visitors have accumulated state in it.
func (s *popSite) visitedSession() {
	s.sessionVisits++
	if s.sessionVisits >= popSessionRotateEvery {
		s.sessionVisits = 0
		s.rebuildArm(s.sessionArm)
	}
}

func (s *popSite) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	for i, p := range s.paths {
		if path == p {
			s.arms[i].ServeHTTP(w, r)
			return
		}
	}
	if path == s.kit.CollectPath {
		s.payload.ServeHTTP(w, r)
		return
	}
	if _, ok := s.kit.Resources[path]; ok {
		s.payload.ServeHTTP(w, r)
		return
	}
	s.benign.ServeHTTP(w, r)
}

// popCommCell accumulates one technique arm's community-channel counts on
// one shard; planes merge in shard order like the population aggregator.
type popCommCell struct {
	reports   int
	confirms  int
	published int
}

// RunPopulation runs the heterogeneous-victim exposure study: spec.Size
// victims, derived positionally in batches, visit evasion-protected lures
// on their home hosts; their blacklist guards consult GSB (which received a
// spam-feed report for every URL at deploy time), and their community
// reports feed PhishTank's unverified section, where confirmable arms
// accumulate votes and human-verification arms starve. Nothing per-victim
// outlives its visit events — the same purge discipline as RunCampaign — so
// heap stays flat from 10k to 1M victims.
func (w *World) RunPopulation(spec population.Spec) (*population.Results, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	span := w.Tel.T().Start("stage.population")
	defer func() { span.End(telemetry.Int("events_executed", w.Sched.Executed())) }()
	w.Journal.Emit(journal.KindStageStart, journal.Fields{Stage: "population"})
	defer w.Journal.Emit(journal.KindStageEnd, journal.Fields{Stage: "population"})

	techs := popTechniques()
	arms := len(techs)
	brand := phishkit.PayPal

	// Streaming engine mode: no crawler fleets, no rechecks, no mail, no
	// retained detections — per-victim cost must be the visit itself.
	for _, key := range engines.Keys() {
		w.Engines[key].CampaignTune(nil, nil)
	}
	gsb := w.Engines[engines.GSB]
	tank := w.Engines[engines.PhishTank]

	factory, err := w.newSiteFactory(PopulationCoverDomain)
	if err != nil {
		return nil, err
	}
	spec4, _ := phishkit.SpecFor(brand)
	pwField := spec4.PasswordField

	pl := population.NewPlanner(w.Cfg.Seed, spec, PopulationHomes, arms)
	agg := population.NewAggregator(w.Sched.Shards(), len(spec.Cohorts), arms)
	comm := make([][]popCommCell, w.Sched.Shards())
	for i := range comm {
		comm[i] = make([]popCommCell, arms)
	}
	execShard := func() int {
		if st, ok := w.Sched.ExecStamp(); ok {
			return st.Shard
		}
		return 0
	}

	// Per-home state, all touched only from the home's shard after deploy.
	sites := make([]*popSite, PopulationHomes)
	guards := make([][]*blacklist.CachingClient, PopulationHomes)
	urls := make([][]string, PopulationHomes)
	for h := 0; h < PopulationHomes; h++ {
		host := popHomeHost(h)
		guards[h] = make([]*blacklist.CachingClient, arms)
		urls[h] = make([]string, arms)
		for a, t := range techs {
			urls[h][a] = "http://" + host + popArmPath(t)
			guards[h][a] = &blacklist.CachingClient{List: gsb.List, Clock: w.Clock}
		}
	}

	// Deploy events: one per home, on the home's shard, before any victims
	// arrive. Registering there (not on the main goroutine) keeps every
	// engine chain the deploy spawns — GSB's crawl, its listing, the
	// journal emissions — rooted on the URL's shard.
	for h := 0; h < PopulationHomes; h++ {
		h := h
		host := popHomeHost(h)
		w.Sched.OnKey(simnet.ShardKey(host)).After(0, "population:deploy", func(time.Time) {
			site := newPopSite(factory, brand, techs)
			sites[h] = site
			hs := w.Net.Register(host, site)
			w.DNS.AddZone(host, hs.IP)
			for a, t := range techs {
				w.Journal.Emit(journal.KindDeploy, journal.Fields{
					URL: urls[h][a], Domain: host,
					Brand: string(brand), Technique: t.String(),
				})
				// The spam feed hands every lure URL to GSB — the paper's
				// discovery channel. Community engines hear only from
				// victims.
				gsb.Report(urls[h][a], ReporterAddress)
			}
		})
	}

	// One victim's visit: the inspection draw, the Safe Browsing guard,
	// then a real browser ride through the evasion gate. Everything the
	// closure captures is either shared per-home state or a handful of
	// ints; nothing allocated here survives the event.
	visitOne := func(i, cohort, home, arm, visit int, now time.Time) {
		shard := execShard()
		site := sites[home]
		if site == nil {
			// Deploys run at +0 on every home shard; a visit can only beat
			// one if the horizon is shorter than a window.
			return
		}
		url := urls[home][arm]
		confirmable := popConfirmable(techs[arm])
		// report rolls the victim's reporting draw and, on success, files the
		// community report; it returns whether a report was filed so the
		// aggregator's per-cohort report column counts real submissions.
		report := func() bool {
			if !pl.Reports(i, visit, cohort) {
				return false
			}
			if out := tank.CommunityReport(url, confirmable); out != engines.CommunityListed {
				c := &comm[shard][arm]
				c.reports++
				if confirmable {
					c.confirms++
				}
				if out == engines.CommunityPublished {
					c.published++
				}
			}
			return true
		}
		if pl.Spots(i, visit, cohort) {
			// Inspected the URL and walked away before any content loaded.
			agg.Visit(shard, cohort, arm, population.OutcomeSpotted, report())
			return
		}
		if guards[home][arm].Check(url) {
			agg.Visit(shard, cohort, arm, population.OutcomeBlocked, false)
			return
		}
		if arm == site.sessionArm {
			site.visitedSession()
		}
		human := browser.New(w.Net, browser.Config{
			UserAgent:       popUserAgent,
			SourceIP:        pl.SourceIP(i),
			ExecuteScripts:  true,
			AlertPolicy:     browser.AlertConfirm,
			TimerBudget:     time.Hour,
			CanSolveCAPTCHA: true,
			DOMCache:        w.DOMCache,
			ScriptCache:     w.Scripts,
		})
		page, err := human.Open(url)
		if err != nil {
			agg.Visit(shard, cohort, arm, population.OutcomeBounced, false)
			return
		}
		loginForm, ok := popLoginForm(page, pwField)
		if !ok {
			// Follow the lure once more: press the persuader form (the
			// session cover's Join Chat button) and look again.
			for _, form := range page.Forms() {
				next, err := page.Submit(form, nil)
				if err != nil {
					continue
				}
				if lf, found := popLoginForm(next, pwField); found {
					page, loginForm, ok = next, lf, true
				}
				break
			}
		}
		if !ok {
			// Never reached a credential form — the gate held, or the page
			// face smelled wrong; either way this victim may report it.
			agg.Visit(shard, cohort, arm, population.OutcomeBounced, report())
			return
		}
		if pl.Falls(i, visit, cohort) {
			if _, err := page.Submit(loginForm, map[string]string{pwField: "hunter2"}); err == nil {
				agg.Visit(shard, cohort, arm, population.OutcomeFell, false)
				return
			}
			agg.Visit(shard, cohort, arm, population.OutcomeBounced, false)
			return
		}
		// Reached the payload, recognised it, left — the reporter pool.
		agg.Visit(shard, cohort, arm, population.OutcomeBounced, report())
	}

	var heap heapWatermark
	batches := (spec.Size + popBatch - 1) / popBatch
	pumpKey := w.Sched.OnKey("population:pump")
	var pump func(now time.Time, batch int)
	pump = func(now time.Time, batch int) {
		if spec.MeasureHeap {
			heap.sample()
		}
		shard := execShard()
		lo := batch * popBatch
		hi := min(spec.Size, lo+popBatch)
		for i := lo; i < hi; i++ {
			v := pl.At(i)
			agg.AddVictim(shard, v.Cohort, v.Technique)
			home := w.Sched.OnKey(simnet.ShardKey(popHomeHost(v.Home)))
			for k := 0; k < v.Visits; k++ {
				i, cohort, hm, arm, k := i, v.Cohort, v.Home, v.Technique, k
				at := now.Add(time.Duration(k)*popWindow + pl.VisitOffset(i, k, popWindow))
				home.At(at, "population:visit", func(at time.Time) {
					visitOne(i, cohort, hm, arm, k, at)
				})
			}
		}
		if hi < spec.Size {
			pumpKey.After(popWindow, "population:batch", func(at time.Time) {
				pump(at, batch+1)
			})
		}
	}
	wallStart := time.Now() //phishlint:wallclock throughput metric; excluded from RenderTable so results stay deterministic
	pumpKey.After(popWindow, "population:batch", func(at time.Time) { pump(at, 0) })

	start := w.Clock.Now()
	// Horizon: the last batch starts at batches*window, its victims revisit
	// for up to MaxVisitsPerVictim more windows, and the slack day lets the
	// trailing voter reviews (1h/6h/24h) and feed shares drain.
	horizon := time.Duration(batches)*popWindow +
		time.Duration(population.MaxVisitsPerVictim+1)*popWindow + 26*time.Hour
	w.Sched.RunFor(horizon)
	if err := w.Sched.InterruptErr(); err != nil {
		return nil, err
	}
	if spec.MeasureHeap {
		heap.sample()
	}

	// Community outcome per arm: stage-side counters merged in shard
	// order, plus the engine's end-of-study queue state per URL.
	rows := make([]population.CommunityRow, arms)
	for a, t := range techs {
		rows[a].Technique = t.String()
	}
	for _, plane := range comm {
		for a, c := range plane {
			rows[a].Reports += c.reports
			rows[a].Confirmations += c.confirms
			rows[a].Published += c.published
		}
	}
	pathArm := make(map[string]int, arms)
	for a, t := range techs {
		pathArm[popArmPath(t)] = a
	}
	for _, p := range tank.Unverified() {
		if u, err := parsePath(p.URL); err == nil {
			if a, ok := pathArm[u]; ok {
				rows[a].Pending++
			}
		}
	}

	res := &population.Results{
		Spec:            spec,
		Seed:            w.Cfg.Seed,
		Techniques:      techniqueNames(techs),
		Cells:           agg.Merged(),
		Community:       rows,
		PeakHeapBytes:   heap.peak,
		VirtualDuration: w.Clock.Now().Sub(start),
	}
	res.WallSeconds = time.Since(wallStart).Seconds() //phishlint:wallclock throughput metric; never feeds deterministic output
	if res.WallSeconds > 0 {
		res.VictimsPerSec = float64(spec.Size) / res.WallSeconds
	}
	return res, nil
}

// parsePath extracts the path of a population URL ("http://host/path").
func parsePath(rawURL string) (string, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return "", err
	}
	return u.Path, nil
}

// popLoginForm returns the page's credential form, if shown.
func popLoginForm(page *browser.Page, pwField string) (htmlmini.Form, bool) {
	for _, f := range page.Forms() {
		if _, has := f.Fields[pwField]; has {
			return f, true
		}
	}
	return htmlmini.Form{}, false
}

func techniqueNames(ts []evasion.Technique) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	return out
}
