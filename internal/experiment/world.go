// Package experiment is the paper's measurement harness: it builds the
// simulated world (hosting, DNS, WHOIS, registrars, CA, CAPTCHA service,
// anti-phishing engines, mail), deploys instrumented phishing websites, and
// runs the three studies — the preliminary test (Table 1), the main
// experiment (Table 2), and the client-side extension test (Table 3).
package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"areyouhuman/internal/captcha"
	"areyouhuman/internal/chaos"
	"areyouhuman/internal/dnssim"
	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/htmlmini"
	"areyouhuman/internal/journal"
	"areyouhuman/internal/phishkit"
	"areyouhuman/internal/registrar"
	"areyouhuman/internal/report"
	"areyouhuman/internal/scriptlet"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/simnet"
	"areyouhuman/internal/sitegen"
	"areyouhuman/internal/telemetry"
	"areyouhuman/internal/tlsca"
	"areyouhuman/internal/weblog"
	"areyouhuman/internal/whois"
)

// Config parameterises a world.
type Config struct {
	// Seed drives every stochastic choice. The default (0 selects
	// DefaultSeed) is calibrated so the realised stochastic draws match the
	// paper's observations (NetCraft confirming exactly 2 of 6 bypassed
	// session pages: 2 Facebook, 0 PayPal).
	Seed int64
	// TrafficScale scales engine fleet volumes relative to the Table 1
	// calibration; 0 selects 1.0. Tests use small values for speed.
	TrafficScale float64
	// MainTrafficPerReport is the fleet volume per URL in the main
	// experiment (0 selects 200; Table 1 volumes apply only to the
	// preliminary stage).
	MainTrafficPerReport int
	// Start is the virtual experiment start (zero selects simclock.Epoch,
	// April 2020).
	Start time.Time
	// Mutate, when set, adjusts each engine profile before construction —
	// the hook the ablation studies use (grant everyone GSB's alert policy,
	// remove form submission, sever feed sharing, ...).
	Mutate func(p *engines.Profile)
	// Telemetry, when set, instruments the world end to end: scheduler
	// events, engine crawls and verdicts, monitor polls, evasion serve
	// decisions, and stage spans all land in this set. Nil runs
	// uninstrumented at full speed. Telemetry observes only — it never
	// perturbs the RNG or the event order, so instrumented and plain runs
	// produce identical results.
	Telemetry *telemetry.Set
	// Replica identifies which replica of a multi-replica study this world
	// belongs to (0 for single runs). It is a label, not an input: the
	// replica runner derives each world's Seed from the master seed via
	// core.SplitSeed, and Replica only tags telemetry so N worlds can share
	// one registry (see telemetry.Set.ForReplica).
	Replica int
	// NoCache disables the semantics-preserving caches on the visit hot path
	// (parsed-DOM, compiled-script, kit/site generation, evasion render).
	// It exists as an escape hatch and as the reference arm of the
	// cache-vs-nocache bit-identity test; output is identical either way.
	NoCache bool
	// Chaos, when set, subjects the world to the plan's fault windows (see
	// internal/chaos): network resets and latency, DNS failures, engine
	// outages and slowdowns, feed staleness, monitor-visible flapping. Fault
	// draws derive from (Seed, plan) alone, so a chaos run is bit-identical
	// across -parallel settings. Nil — and, provably, the empty plan — leaves
	// the world byte-identical to a run without chaos.
	Chaos *chaos.Plan
	// Journal, when set, records every URL's lifecycle (deploy, report,
	// crawl, listing, sighting) as causally linked journal events. Like
	// Telemetry it observes only: a journaled run produces results
	// bit-identical to an unjournaled one, and the journal bytes themselves
	// are bit-identical for a fixed seed regardless of replica parallelism
	// (see internal/journal).
	Journal *journal.Writer
	// ShardWorkers selects the scheduler. 0 keeps the classic serial
	// Scheduler — the exact historical execution model every calibrated
	// claim was recorded under. Any n >= 1 runs the world on the sharded
	// scheduler with n workers: the event queue is partitioned into
	// simclock.DefaultShards host-keyed shards drained concurrently in
	// lock-stepped virtual-time windows, and all observable output (journal,
	// metrics, study tables) is byte-identical for every n — including
	// n = 1 — though not necessarily identical to the classic scheduler's.
	ShardWorkers int
}

// DefaultSeed reproduces the paper's stochastic outcomes (see Config.Seed).
const DefaultSeed = 21

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.TrafficScale == 0 {
		c.TrafficScale = 1
	}
	if c.MainTrafficPerReport == 0 {
		c.MainTrafficPerReport = 200
	}
	if c.Start.IsZero() {
		c.Start = simclock.Epoch
	}
	return c
}

// CaptchaHost is the virtual hostname of the simulated reCAPTCHA service.
const CaptchaHost = "captcha-svc.example"

// AbuseContact is the hosting network's abuse address (receives PhishLabs
// notifications).
const AbuseContact = "abuse@hosting.example"

// ReporterAddress is the researchers' reporting identity.
const ReporterAddress = "reporter@lab.example"

// World is a fully wired simulated internet plus the seven engines.
type World struct {
	Cfg   Config
	Clock *simclock.SimClock
	// Sched is the world's event scheduler: the classic serial Scheduler when
	// Cfg.ShardWorkers is 0, the sharded one otherwise (see Config.ShardWorkers).
	Sched simclock.EventScheduler
	Net   *simnet.Internet
	DNS   *dnssim.Server
	WHOIS *whois.DB
	// Registrar is where experiment domains are registered (OVH in the
	// paper); Checkers are the availability APIs used by the drop-catch
	// pipeline (GoDaddy, Porkbun).
	Registrar *registrar.Registrar
	Checkers  []*registrar.Registrar
	CA        *tlsca.CA
	Captcha   *captcha.Service
	Mail      *report.MailSystem
	Engines   map[string]*engines.Engine
	// Tel is the world's telemetry set (from Config.Telemetry; may be nil).
	Tel *telemetry.Set
	// Faults is the world's chaos injector (nil without Config.Chaos). It is
	// consulted by the network, DNS, engines, and — once the main study wires
	// it — the monitor.
	Faults *chaos.Injector
	// Journal is the world's lifecycle recorder (nil without Config.Journal).
	// All emit sites tolerate nil, so unjournaled worlds pay one pointer check.
	Journal *journal.Recorder
	// DOMCache and Scripts are the world's visit-path caches, shared by the
	// engines' browsers and any human-visitor simulation riding this world.
	// Both are nil under Config.NoCache (callers degrade to fresh parses).
	DOMCache *htmlmini.ParseCache
	Scripts  *scriptlet.ProgramCache

	rng             *rand.Rand
	deployments     []*Deployment
	instDeployments *telemetry.Counter
	closed          bool
}

// NewWorld builds and wires a world.
func NewWorld(cfg Config) *World {
	cfg = cfg.withDefaults()
	clock := simclock.New(cfg.Start)
	var sched simclock.EventScheduler
	if cfg.ShardWorkers >= 1 {
		sched = simclock.NewSharded(clock, simclock.ShardedConfig{Workers: cfg.ShardWorkers})
	} else {
		sched = simclock.NewScheduler(clock)
	}
	w := &World{
		Cfg:   cfg,
		Clock: clock,
		Sched: sched,
		Net:   simnet.New(nil),
		DNS:   dnssim.NewServer(),
		WHOIS: whois.NewDB(),
		CA:    tlsca.New(clock),
		Mail:  report.NewMailSystem(clock),
		Tel:   cfg.Telemetry,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	if !cfg.NoCache {
		w.DOMCache = htmlmini.NewParseCache()
		w.Scripts = scriptlet.NewProgramCache()
	}
	w.instDeployments = w.Tel.M().Counter("phish_deployments_total")
	telemetry.ObserveScheduler(w.Sched, w.Tel)
	w.Net.SetResolver(w.DNS)
	w.Journal = journal.NewRecorder(cfg.Journal, cfg.Seed, cfg.Replica, clock)
	if w.Sched.Sharded() {
		// Barrier-buffered sinks: in-event output stages per shard and
		// publishes in (At, shard, seq) stamp order at window barriers, so
		// journal bytes and mail delivery order are pure functions of virtual
		// time, independent of worker interleaving. The engines wire their
		// blacklists the same way in engines.New.
		w.Journal.ShardBuffer(stampAdapter{w.Sched}, w.Sched.Shards())
		w.Sched.OnBarrier(w.Journal.FlushShards)
		w.Mail.ShardBuffered(w.Sched, w.Sched.Shards())
		w.Sched.OnBarrier(w.Mail.PublishPending)
	}
	w.Faults = chaos.NewInjector(cfg.Chaos, cfg.Seed, cfg.Start, cfg.Telemetry, w.Journal)
	// Fault windows are plan-declared, so their open/close events are emitted
	// up front with explicit virtual timestamps rather than scheduled — the
	// journal must never add scheduler events (telemetry counts them).
	for _, win := range w.Faults.Windows() {
		w.Journal.Emit(journal.KindFaultWindowOpen, journal.Fields{
			Fault: win.Name, FaultKind: win.Kind, Sim: cfg.Start.Add(win.From)})
		w.Journal.Emit(journal.KindFaultWindowClose, journal.Fields{
			Fault: win.Name, FaultKind: win.Kind, Sim: cfg.Start.Add(win.To)})
	}
	if w.Faults != nil {
		// The hooks close over the world clock: every fault decision is a pure
		// function of (seed, plan, virtual time), so installation order and
		// replica parallelism cannot perturb the draws.
		w.Net.SetFault(func(host string) simnet.Fault {
			f := w.Faults.Net(host, w.Clock.Now())
			return simnet.Fault{Reset: f.Reset, Latency: f.Latency, TruncateBody: f.TruncateBody}
		})
		w.DNS.SetFault(func(name string) dnssim.RCode {
			f := w.Faults.DNS(name, w.Clock.Now())
			switch {
			case f.ServFail:
				return dnssim.ServFail
			case f.NXDomain:
				return dnssim.NXDomain
			default:
				return dnssim.NoError
			}
		})
	}
	w.Registrar = registrar.New("OVH", w.WHOIS, w.DNS, clock)
	w.Checkers = []*registrar.Registrar{
		registrar.New("GoDaddy", w.WHOIS, w.DNS, clock),
		registrar.New("Porkbun", w.WHOIS, w.DNS, clock),
	}

	w.Captcha = captcha.NewService(clock)
	capHost := w.Net.Register(CaptchaHost, w.Captcha.Handler())
	w.DNS.AddZone(CaptchaHost, capHost.IP)

	w.Engines = make(map[string]*engines.Engine, 7)
	deps := engines.Deps{
		Net: w.Net, Sched: w.Sched, Mail: w.Mail,
		AbuseContact: AbuseContact,
		Peers:        func(key string) *engines.Engine { return w.Engines[key] },
		Seed:         cfg.Seed,
		Telemetry:    cfg.Telemetry,
		DOMCache:     w.DOMCache,
		Scripts:      w.Scripts,
		Journal:      w.Journal,
	}
	if w.Faults != nil {
		// Guarded assignment: a typed-nil *chaos.Injector in the interface
		// field would defeat the engines' `faults != nil` fast path.
		deps.Faults = w.Faults
	}
	// Wire engines in Table 1 order, not map order: server IPs are allocated
	// round-robin at registration, so the construction order must be fixed
	// for two worlds with the same seed to be bit-identical.
	profiles := engines.Profiles()
	for _, key := range engines.Keys() {
		p := profiles[key]
		if cfg.Mutate != nil {
			cfg.Mutate(&p)
		}
		e := engines.New(p, deps)
		e.TrafficPerReport = scale(p.PrelimRequests/3, cfg.TrafficScale)
		w.Engines[key] = e
		// Each engine's public API (report form, v4 lookup, feed download)
		// is reachable over the virtual internet, the way the paper's
		// reporting and monitoring actually interact with the entities.
		apiHost := w.Net.Register(EngineAPIHost(key), e.Handler())
		w.DNS.AddZone(EngineAPIHost(key), apiHost.IP)
	}
	w.Faults.PublishDegraded(engines.Keys())
	return w
}

// SetContext subjects the world's scheduler to ctx: once ctx is cancelled the
// scheduler stops within a bounded number of events and every later Run is a
// no-op (see simclock.Scheduler.SetInterrupt). Stage drivers surface the
// cancellation by checking Sched.InterruptErr after each run.
func (w *World) SetContext(ctx context.Context) {
	if ctx == nil {
		w.Sched.SetInterrupt(nil)
		return
	}
	w.Sched.SetInterrupt(ctx.Err)
}

// stampAdapter bridges simclock's ExecStamp to the journal's flat-tuple
// Stamper (journal sits below simclock and cannot import its Stamp type).
type stampAdapter struct{ s simclock.EventScheduler }

func (a stampAdapter) ExecStamp() (time.Time, int, int64, bool) {
	st, ok := a.s.ExecStamp()
	return st.At, st.Shard, st.Seq, ok
}

// MetricShardEvents counts events executed per scheduler shard; recorded once
// at Close, only for sharded worlds. Shard assignment is key-derived, so the
// counts are identical for every worker count.
const MetricShardEvents = "phish_sched_shard_events_total"

// Close retires the world: the scheduler drops its pending events and rejects
// new ones (see simclock.Scheduler.Close), so a finished replica holds no
// timers or closures alive and a stray late callback cannot restart its
// timeline. The world's results (deployments, engine lists, logs) stay
// readable. Close is idempotent.
func (w *World) Close() {
	if !w.closed {
		w.closed = true
		if ss, ok := w.Sched.(*simclock.ShardedScheduler); ok && w.Tel.Enabled() {
			if m := w.Tel.M(); m != nil {
				m.Describe(MetricShardEvents, "Events executed per scheduler shard (sharded worlds only; recorded at Close).")
				for shard, n := range ss.ShardEventCounts() {
					m.Counter(MetricShardEvents, "shard", fmt.Sprintf("%d", shard)).Add(n)
				}
			}
		}
	}
	w.Sched.Close()
}

// EngineAPIHost is the virtual hostname serving an engine's HTTP API.
func EngineAPIHost(key string) string { return "api-" + key + ".example" }

func scale(n int, f float64) int {
	v := int(float64(n) * f)
	if v < 1 {
		v = 1
	}
	return v
}

// Mount is one phishing URL on a deployment.
type Mount struct {
	Brand     phishkit.Brand
	Technique evasion.Technique
	URL       string
	Kit       *phishkit.Kit
	Collector *phishkit.Collector
}

// Deployment is one experiment domain: registered, hosted, certified, and
// carrying one or more phishing mounts over a generated benign website.
type Deployment struct {
	Domain string
	Site   *sitegen.Site
	Log    *weblog.Log
	Mounts []Mount
	// ReportedTo is the engine key this deployment's URLs were submitted to.
	ReportedTo string
	ReportedAt time.Time

	urls []string // memoized by URLs
}

// URLs lists the deployment's phishing URLs. The slice is memoized — the
// stage drivers and renderers call this repeatedly per deployment — and
// rebuilt only if mounts were added since; callers must not modify it.
func (d *Deployment) URLs() []string {
	if len(d.urls) != len(d.Mounts) {
		d.urls = make([]string, len(d.Mounts))
		for i, m := range d.Mounts {
			d.urls[i] = m.URL
		}
	}
	return d.urls
}

// MountSpec requests one phishing page on a deployment.
type MountSpec struct {
	Brand     phishkit.Brand
	Technique evasion.Technique
	// ForceCloned overrides the kit's default provenance, cloning the page
	// from the brand's original even for Gmail — the kit-provenance
	// ablation.
	ForceCloned bool
	// BotIPs is the attacker's crawler-address blocklist, used when
	// Technique is evasion.Cloaking.
	BotIPs []string
}

// Deploy registers domain, generates its full-fledged website, issues a TLS
// certificate, mounts the requested phishing pages behind their evasion
// techniques, and brings the host online.
func (w *World) Deploy(domain string, specs ...MountSpec) (*Deployment, error) {
	if _, err := w.Registrar.Register(domain, "Research Lab"); err != nil {
		return nil, &DeployError{Domain: domain, Reason: err}
	}
	var site *sitegen.Site
	if w.Cfg.NoCache {
		site = sitegen.Generate(domain, sitegen.Config{Seed: w.Cfg.Seed})
	} else {
		site = sitegen.GenerateCached(domain, sitegen.Config{Seed: w.Cfg.Seed})
	}
	log := weblog.New(w.Clock)
	d := &Deployment{Domain: domain, Site: site, Log: log}
	// One render cache per deployment: the benign site (and therefore a
	// cached render) is specific to this domain's generated pages.
	var renderCache *evasion.RenderCache
	if !w.Cfg.NoCache {
		renderCache = evasion.NewRenderCache()
	}

	mux := http.NewServeMux()
	mux.Handle("/", site.Handler())
	routed := map[string]bool{"/": true}
	handle := func(pattern string, h http.Handler) {
		if !routed[pattern] {
			routed[pattern] = true
			mux.Handle(pattern, h)
		}
	}

	for i, spec := range specs {
		prov := phishkit.Cloned
		if !spec.ForceCloned && spec.Brand == phishkit.Gmail {
			prov = phishkit.FromScratch
		}
		var kit *phishkit.Kit
		var err error
		if w.Cfg.NoCache {
			kit, err = phishkit.GenerateWithProvenance(spec.Brand, prov)
		} else {
			kit, err = phishkit.GenerateCached(spec.Brand, prov)
		}
		if err != nil {
			return nil, &DeployError{Domain: domain, Reason: err}
		}
		collector := &phishkit.Collector{}
		payload := kit.Handler(collector)
		path := phishPath(spec.Brand, i)
		mountURL := "https://" + domain + path

		opts := evasion.Options{
			Payload: payload,
			Benign:  site.Handler(),
			Log: journalServeLog(w.Journal, spec.Technique, mountURL, domain,
				evasion.Instrument(w.Tel, spec.Technique, log.ServeLogger())),
			// The generated site renders purely from the request path, which
			// is exactly the contract the render cache requires.
			RenderCache: renderCache,
		}
		if spec.Technique == evasion.Cloaking {
			opts.BotIPs = spec.BotIPs
		}
		if spec.Technique == evasion.Recaptcha {
			sitekey, secret := w.Captcha.RegisterSite()
			opts.WidgetHTML = captcha.WidgetHTML(CaptchaHost, sitekey, "capback")
			verifier := &captcha.Client{
				HTTP:    simnet.NewClient(w.Net, "203.0.113.250"),
				BaseURL: "http://" + CaptchaHost,
				Secret:  secret,
			}
			opts.VerifyToken = verifier.Verify
		}
		wrapped, err := evasion.Wrap(spec.Technique, opts)
		if err != nil {
			return nil, &DeployError{Domain: domain, Reason: err}
		}
		handle(path, wrapped)
		// Kit asset and collector routes live beside the phishing page.
		for res := range kit.Resources {
			handle(res, payload)
		}
		handle(kit.CollectPath, payload)

		d.Mounts = append(d.Mounts, Mount{
			Brand:     spec.Brand,
			Technique: spec.Technique,
			URL:       mountURL,
			Kit:       kit,
			Collector: collector,
		})
	}

	host := w.Net.Register(domain, log.Middleware(mux))
	w.DNS.AddZone(domain, host.IP)
	w.DNS.EnableDNSSEC(domain)
	w.CA.Issue(domain)
	w.Net.EnableTLS(domain)
	// Record the hosting network's abuse contact, as WHOIS does.
	if rec, ok := w.WHOIS.Lookup(domain); ok {
		rec.AbuseEmail = AbuseContact
		rec.DNSSEC = true
		w.WHOIS.Put(rec)
	}
	w.deployments = append(w.deployments, d)
	w.instDeployments.Inc()
	if w.Journal != nil {
		for _, m := range d.Mounts {
			w.Journal.Emit(journal.KindDeploy, journal.Fields{
				URL: m.URL, Domain: domain,
				Brand: string(m.Brand), Technique: m.Technique.String(),
			})
		}
	}
	if w.Tel.Tracing() {
		attrs := []telemetry.Attr{telemetry.String("domain", domain)}
		for _, m := range d.Mounts {
			attrs = append(attrs,
				telemetry.String("technique", m.Technique.String()),
				telemetry.String("brand", string(m.Brand)))
		}
		w.Tel.T().Event("deploy", attrs...)
	}
	return d, nil
}

// journalServeLog chains a payload-serve journal emit in front of next. Only
// payload reveals on a real technique are journaled — the same moments the
// tracer marks as "bot reached the phishing content"; the None control serves
// its payload to everyone and would only add noise. With no recorder (or the
// None technique) next is returned unchanged, so the unjournaled serve path
// is untouched.
func journalServeLog(rec *journal.Recorder, t evasion.Technique, url, domain string, next evasion.LogFunc) evasion.LogFunc {
	if rec == nil || t == evasion.None {
		return next
	}
	return func(r *http.Request, kind evasion.ServeKind) {
		if kind == evasion.ServePayload {
			rec.Emit(journal.KindPayloadServe, journal.Fields{
				URL: url, Domain: domain, Technique: t.String(),
			})
		}
		if next != nil {
			next(r, kind)
		}
	}
}

// phishPath derives the phishing URL path for a mount. Paths mimic
// compromised-site kit locations.
func phishPath(brand phishkit.Brand, idx int) string {
	return fmt.Sprintf("/wp-content/themes/%s/%d/secure/login.php", brandSlug(brand), idx)
}

func brandSlug(b phishkit.Brand) string {
	switch b {
	case phishkit.PayPal:
		return "pp-billing"
	case phishkit.Facebook:
		return "fb-security"
	case phishkit.Gmail:
		return "mail-verify"
	default:
		return "account"
	}
}

// Deployments returns everything deployed so far.
func (w *World) Deployments() []*Deployment {
	out := make([]*Deployment, len(w.deployments))
	copy(out, w.deployments)
	return out
}

// ReportTo submits every URL of d to the named engine, as the paper does —
// one engine per domain, never more.
func (w *World) ReportTo(d *Deployment, engineKey string) error {
	eng, ok := w.Engines[engineKey]
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownEngine, engineKey)
	}
	d.ReportedTo = engineKey
	d.ReportedAt = w.Clock.Now()
	if w.Tel.Tracing() {
		w.Tel.T().Event("report.submit",
			telemetry.String("engine", engineKey), telemetry.String("domain", d.Domain))
	}
	for _, url := range d.URLs() {
		eng.Report(url, ReporterAddress)
	}
	return nil
}
