package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/phishkit"
)

// Export is the machine-readable form of a full study, for plotting or
// regression-diffing runs. Field names are stable.
type Export struct {
	Table1 []Table1Export `json:"table1,omitempty"`
	Table2 *Table2Export  `json:"table2,omitempty"`
	Table3 []Table3Export `json:"table3,omitempty"`
}

// Table1Export is one preliminary-test row.
type Table1Export struct {
	Engine             string   `json:"engine"`
	Requests           int      `json:"requests"`
	UniqueIPs          int      `json:"unique_ips"`
	AlsoBlacklistedBy  []string `json:"also_blacklisted_by,omitempty"`
	BlacklistedTargets string   `json:"blacklisted_targets"`
}

// Table2Export is the main experiment.
type Table2Export struct {
	Cells          []Table2Cell       `json:"cells"`
	TotalDetected  int                `json:"total_detected"`
	TotalURLs      int                `json:"total_urls"`
	Funnel         string             `json:"funnel"`
	GSBAlertAvgMin float64            `json:"gsb_alertbox_avg_min"`
	NetCraftMins   []float64          `json:"netcraft_session_min"`
	UserProtection map[string]float64 `json:"user_protection"`
}

// Table2Cell is one engine x brand x technique cell.
type Table2Cell struct {
	Engine    string `json:"engine"`
	Brand     string `json:"brand"`
	Technique string `json:"technique"`
	Detected  int    `json:"detected"`
	Total     int    `json:"total"`
}

// Table3Export is one extension row.
type Table3Export struct {
	Name          string `json:"name"`
	Company       string `json:"company"`
	Installations int    `json:"installations"`
	SendsPlainURL bool   `json:"sends_plain_url"`
	SendsParams   bool   `json:"sends_params"`
	Detected      int    `json:"detected"`
	Total         int    `json:"total"`
}

// BuildExport assembles the export from stage results (any may be nil).
func BuildExport(t1 []Table1Row, main *MainResults, t3 []Table3Row) Export {
	var out Export
	for _, r := range t1 {
		out.Table1 = append(out.Table1, Table1Export{
			Engine:             r.Engine,
			Requests:           r.Requests,
			UniqueIPs:          r.UniqueIPs,
			AlsoBlacklistedBy:  r.AlsoBlacklistedBy,
			BlacklistedTargets: r.BlacklistedTargets,
		})
	}
	if main != nil {
		t2 := &Table2Export{
			TotalDetected:  main.TotalDetected,
			TotalURLs:      main.TotalURLs,
			Funnel:         main.Funnel.String(),
			GSBAlertAvgMin: AverageDuration(main.GSBAlertBoxTimes).Minutes(),
			UserProtection: map[string]float64{},
		}
		for _, d := range main.NetCraftSessionTimes {
			t2.NetCraftMins = append(t2.NetCraftMins, d.Minutes())
		}
		for tech, share := range main.UserProtection {
			t2.UserProtection[tech.String()] = share
		}
		for _, key := range engines.MainExperimentKeys() {
			for _, brand := range []phishkit.Brand{phishkit.Facebook, phishkit.PayPal} {
				for _, tech := range evasion.Techniques() {
					c := main.Cells[key][brand][tech]
					if c == nil {
						continue
					}
					t2.Cells = append(t2.Cells, Table2Cell{
						Engine: key, Brand: string(brand), Technique: tech.String(),
						Detected: c.Detected, Total: c.Total,
					})
				}
			}
		}
		sort.Slice(t2.Cells, func(i, j int) bool {
			a, b := t2.Cells[i], t2.Cells[j]
			if a.Engine != b.Engine {
				return a.Engine < b.Engine
			}
			if a.Brand != b.Brand {
				return a.Brand < b.Brand
			}
			return a.Technique < b.Technique
		})
		out.Table2 = t2
	}
	for _, r := range t3 {
		out.Table3 = append(out.Table3, Table3Export{
			Name: r.Name, Company: r.Company, Installations: r.Installations,
			SendsPlainURL: r.SendsPlainURL, SendsParams: r.SendsParams,
			Detected: r.Detected, Total: r.Total,
		})
	}
	return out
}

// WriteJSON writes the export as indented JSON.
func (e Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(e); err != nil {
		return fmt.Errorf("experiment: encoding export: %w", err)
	}
	return nil
}

// durationsToMinutes is a small helper for exporters and tests.
func durationsToMinutes(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Minutes()
	}
	return out
}
