//go:build !race

// The heap regression runs a 1M-victim study; under the race detector that
// costs many minutes for no extra signal (the determinism tests already run
// race-enabled), so the file is excluded from -race builds.

package experiment

import (
	"testing"

	"areyouhuman/internal/population"
)

// TestPopulationHeapFlat is the constant-memory acceptance gate for
// millions-of-victims studies: the batch-boundary heap high-water mark of a
// 1M-victim run must stay within 3x a 100k run's. If per-victim state
// survives its visit events — a retained browser, an unrotated session
// table, an unpruned CAPTCHA token — the 10x size ratio shows up here and
// the test fails.
func TestPopulationHeapFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-victim study is a long test")
	}
	peak := func(size int) uint64 {
		w := NewWorld(Config{ShardWorkers: 4})
		defer w.Close()
		spec, err := population.Preset("lain2025")
		if err != nil {
			t.Fatal(err)
		}
		spec.Size = size
		spec.MeasureHeap = true
		res, err := w.RunPopulation(spec)
		if err != nil {
			t.Fatal(err)
		}
		victims := 0
		for _, c := range res.Cells {
			victims += c.Victims
		}
		if victims != size {
			t.Fatalf("aggregated %d victims of %d", victims, size)
		}
		if res.PeakHeapBytes == 0 {
			t.Fatal("MeasureHeap produced no samples")
		}
		t.Logf("%d victims: peak heap %.1f MiB, %.0f victims/sec",
			size, float64(res.PeakHeapBytes)/(1<<20), res.VictimsPerSec)
		return res.PeakHeapBytes
	}
	small := peak(100_000)
	big := peak(1_000_000)
	if ratio := float64(big) / float64(small); ratio > 3 {
		t.Errorf("1M-victim peak heap is %.2fx the 100k peak, want <= 3x", ratio)
	}
}
