package experiment

import (
	"fmt"
	"testing"

	"areyouhuman/internal/campaign"
)

// BenchmarkCampaign measures streaming-campaign throughput (URLs/sec) and
// the wave-boundary peak heap at two campaign sizes. The ratio between the
// two heap figures is the constant-memory story: the aggregator is
// O(cells), the in-flight set is O(wave), so 10x the URLs should cost
// roughly 1x the memory (TestCampaignHeapFlat enforces <= 3x). Results are
// recorded in BENCH_campaign.json at the repo root.
func BenchmarkCampaign(b *testing.B) {
	for _, urls := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("urls=%d", urls), func(b *testing.B) {
			var peak uint64
			var rate float64
			for i := 0; i < b.N; i++ {
				w := NewWorld(Config{})
				res, err := w.RunCampaign(campaign.Config{
					URLs: urls, MeasureHeap: true, Watches: -1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Deployed != urls {
					b.Fatalf("deployed %d of %d", res.Deployed, urls)
				}
				peak = res.PeakHeapBytes
				rate = res.URLsPerSec
				w.Close()
			}
			b.ReportMetric(rate, "URLs/sec")
			b.ReportMetric(float64(peak), "peak-heap-bytes")
		})
	}
}
