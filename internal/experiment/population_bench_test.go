package experiment

import (
	"fmt"
	"testing"

	"areyouhuman/internal/population"
)

// BenchmarkPopulation measures population-study throughput (victims/sec) and
// peak heap at two population sizes. The ratio between the heap figures is
// the flat-memory story: victims are planned positionally and aggregated per
// cohort x arm cell, so 10x the victims should cost roughly 1x the memory
// (TestPopulationHeapFlat enforces <= 3x at the 100k -> 1M step).
func BenchmarkPopulation(b *testing.B) {
	for _, victims := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("victims=%d", victims), func(b *testing.B) {
			spec, err := population.Preset("paper")
			if err != nil {
				b.Fatal(err)
			}
			spec.Size = victims
			spec.MeasureHeap = true
			var peak uint64
			var rate float64
			for i := 0; i < b.N; i++ {
				w := NewWorld(Config{})
				res, err := w.RunPopulation(spec)
				if err != nil {
					b.Fatal(err)
				}
				var got int
				for _, c := range res.Cells {
					got += c.Victims
				}
				if got != victims {
					b.Fatalf("simulated %d of %d victims", got, victims)
				}
				peak = res.PeakHeapBytes
				rate = res.VictimsPerSec
				w.Close()
			}
			b.ReportMetric(rate, "victims/sec")
			b.ReportMetric(float64(peak), "peak-heap-bytes")
		})
	}
}
