package experiment

import (
	"errors"
	"fmt"
)

// ErrUnknownEngine is returned by ReportTo (and wrapped by the facade) when
// the named engine does not exist in this world.
var ErrUnknownEngine = errors.New("experiment: unknown engine")

// ErrDeployFailed is the sentinel every *DeployError matches via errors.Is,
// letting callers catch "deployment failed" without enumerating causes.
var ErrDeployFailed = errors.New("experiment: deploy failed")

// DeployError reports a failed deployment: which domain, and why. It matches
// ErrDeployFailed via errors.Is and unwraps to the underlying cause for
// errors.As / errors.Is on the specific failure.
type DeployError struct {
	Domain string
	Reason error
}

func (e *DeployError) Error() string {
	return fmt.Sprintf("experiment: deploying %s: %v", e.Domain, e.Reason)
}

// Unwrap exposes the underlying cause.
func (e *DeployError) Unwrap() error { return e.Reason }

// Is matches the ErrDeployFailed sentinel.
func (e *DeployError) Is(target error) bool { return target == ErrDeployFailed }
