//go:build !race

// The heap regression runs a 100k-URL campaign; under the race detector
// that costs minutes for no extra signal (the determinism tests already run
// race-enabled), so the file is excluded from -race builds.

package experiment

import (
	"testing"

	"areyouhuman/internal/campaign"
)

// TestCampaignHeapFlat is the constant-memory acceptance gate: a 100k-URL
// campaign's wave-boundary heap high-water mark must stay within a small
// factor of a 10k-URL campaign's. If per-URL state leaks past its window —
// a retained slice, an unevicted route, an unpurged blacklist entry — the
// 10x size ratio shows up in this ratio and the test fails.
func TestCampaignHeapFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-URL campaign is a long test")
	}
	peak := func(urls int) uint64 {
		w := NewWorld(Config{})
		defer w.Close()
		res, err := w.RunCampaign(campaign.Config{
			URLs: urls, MeasureHeap: true, Watches: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Deployed != urls {
			t.Fatalf("deployed %d of %d", res.Deployed, urls)
		}
		if res.PeakHeapBytes == 0 {
			t.Fatal("MeasureHeap produced no samples")
		}
		return res.PeakHeapBytes
	}
	p10 := peak(10_000)
	p100 := peak(100_000)
	t.Logf("peak heap: 10k URLs = %.1f MiB, 100k URLs = %.1f MiB (ratio %.2f)",
		float64(p10)/(1<<20), float64(p100)/(1<<20), float64(p100)/float64(p10))
	if p100 > 3*p10 {
		t.Errorf("peak heap grew with campaign size: 10k=%d bytes, 100k=%d bytes (> 3x)", p10, p100)
	}
}
