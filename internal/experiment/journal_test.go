package experiment

import (
	"bytes"
	"testing"

	"areyouhuman/internal/journal"
)

// TestJournalReconstructsMainStudy is the journal acceptance test: attach a
// journal to the 105-URL main study and require that phishtrace-style
// analysis reproduces the run's own results — same detections, same lags,
// zero causal anomalies — from the journal alone.
func TestJournalReconstructsMainStudy(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w := NewWorld(Config{TrafficScale: 0.002, Journal: journal.NewWriter(&buf)})
	defer w.Close()
	res, err := w.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Cfg.Journal.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := journal.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := journal.Analyze(events)
	if anomalies := st.Anomalies(); len(anomalies) != 0 {
		t.Fatalf("journal flagged %d anomalies, e.g. %v", len(anomalies), anomalies[0])
	}
	sec := st.Section("main", 0)
	if sec == nil {
		t.Fatal("no main section in the journal")
	}
	if len(sec.Timelines) != res.TotalURLs {
		t.Errorf("timelines = %d, want %d", len(sec.Timelines), res.TotalURLs)
	}
	if sec.Detected() != res.TotalDetected {
		t.Errorf("journal detections = %d, run reported %d", sec.Detected(), res.TotalDetected)
	}
	// The report→listing lags must match the run's own measurements, engine
	// by engine, value by value (both are recorded in submission-plan order).
	lags := sec.Lags()
	if len(lags) != len(res.TimesToList) {
		t.Errorf("lag engines = %d, want %d", len(lags), len(res.TimesToList))
	}
	for engine, want := range res.TimesToList {
		got := lags[engine]
		if len(got) != len(want) {
			t.Errorf("%s: %d lags in journal, %d in results", engine, len(got), len(want))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s lag[%d] = %v, want %v", engine, i, got[i], want[i])
			}
		}
	}
}

// TestJournalObservesOnly pins the "journal observes only" contract: a run
// with the journal attached produces the same results as one without.
func TestJournalObservesOnly(t *testing.T) {
	t.Parallel()
	bare := NewWorld(Config{TrafficScale: 0.002})
	defer bare.Close()
	resBare, err := bare.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	journaled := NewWorld(Config{TrafficScale: 0.002, Journal: journal.NewWriter(&buf)})
	defer journaled.Close()
	resJournaled, err := journaled.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if resBare.TotalDetected != resJournaled.TotalDetected {
		t.Errorf("journal changed detections: %d vs %d", resBare.TotalDetected, resJournaled.TotalDetected)
	}
	if RenderTable2(resBare) != RenderTable2(resJournaled) {
		t.Errorf("journal changed Table 2")
	}
	if buf.Len() == 0 {
		t.Error("journal is empty")
	}
}
