package experiment

import (
	"io"
	"testing"

	"areyouhuman/internal/browser"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/journal"
	"areyouhuman/internal/phishkit"
)

// BenchmarkJournalOverhead measures what the lifecycle journal costs on the
// visit hot path. The "off" case must stay allocation-identical to
// BenchmarkVisitPath (the 187-alloc path recorded in BENCH_visitpath.json):
// an unjournaled world pays one nil check per emit site and nothing else.
// The "on" case streams payload_serve events to io.Discard; the budget is
// <5% ns/op overhead (recorded in BENCH_visitpath.json).
func BenchmarkJournalOverhead(b *testing.B) {
	run := func(b *testing.B, w *World) {
		d, err := w.Deploy("bench-journal.example",
			MountSpec{Brand: phishkit.PayPal, Technique: evasion.AlertBox},
			MountSpec{Brand: phishkit.Facebook, Technique: evasion.SessionBased},
		)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(w.Close)
		cfg := browser.Config{
			UserAgent:      "Mozilla/5.0 (bench bot)",
			SourceIP:       "198.18.77.3",
			ExecuteScripts: true,
			AlertPolicy:    browser.AlertConfirm,
			TimerBudget:    3000000000,
			DOMCache:       w.DOMCache,
			ScriptCache:    w.Scripts,
		}
		url := d.Mounts[0].URL
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bw := browser.New(w.Net, cfg)
			page, err := bw.Open(url)
			if err != nil {
				b.Fatal(err)
			}
			if page.Status != 200 {
				b.Fatalf("status %d", page.Status)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		run(b, NewWorld(Config{TrafficScale: 0.01}))
	})
	b.Run("on", func(b *testing.B) {
		run(b, NewWorld(Config{TrafficScale: 0.01, Journal: journal.NewWriter(io.Discard)}))
	})
}
