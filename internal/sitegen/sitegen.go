// Package sitegen is the fake-website generator of Section 3 ("Website
// Content and Web Servers").
//
// Compromised domains are intrinsically legitimate, so each experiment domain
// needs a full-fledged site: the generator extracts keywords from the domain
// name, expands them with synonyms, generates topical article pages, and
// links 30 .php pages across several directories into a browsable site. The
// output serves directly as an http.Handler and packs into a .zip ready to
// "upload" to the hosting substrate, exactly like the paper's 2-minute
// site-in-a-box pipeline.
package sitegen

import (
	"archive/zip"
	"fmt"
	"html"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"

	"areyouhuman/internal/wordnet"
)

// DefaultPageCount matches the paper's 30 pages per generated website.
const DefaultPageCount = 30

// Page is one generated .php page.
type Page struct {
	Path    string // e.g. "/garden/history-of-orchard.php"
	Title   string
	Topic   string
	HTML    string
	Links   []string // paths of pages this page links to
	ImageID string   // path of the illustration referenced by the page
}

// Site is a generated website.
type Site struct {
	Domain string
	Pages  map[string]*Page  // by path
	Images map[string][]byte // by path
	order  []string          // page paths in generation order; order[0] is the index page
}

// Config adjusts generation.
type Config struct {
	PageCount int   // number of pages; DefaultPageCount when zero
	Seed      int64 // generation seed; domains hash in on top of this
}

// Generate builds a deterministic fake website for domain.
func Generate(domain string, cfg Config) *Site {
	if cfg.PageCount <= 0 {
		cfg.PageCount = DefaultPageCount
	}
	seed := cfg.Seed
	for _, r := range domain {
		seed = seed*131 + int64(r)
	}
	rng := rand.New(rand.NewSource(seed))

	keywords := wordnet.ExtractKeywords(domain)
	if len(keywords) == 0 {
		keywords = wordnet.RandomKeywords(seed, 2)
	}
	// Expand: each keyword plus its synonyms forms the topic pool (paper
	// steps 1–2: extract keywords, find synonyms via the thesaurus API).
	var topics []string
	for _, k := range keywords {
		topics = append(topics, k)
		topics = append(topics, wordnet.Synonyms(k)...)
	}
	if len(topics) == 0 {
		topics = []string{"information"}
	}

	s := &Site{
		Domain: domain,
		Pages:  make(map[string]*Page, cfg.PageCount),
		Images: make(map[string][]byte),
	}
	dirs := keywords
	if len(dirs) == 0 {
		dirs = []string{"pages"}
	}

	// Index page first, then article pages in topic-derived directories.
	index := &Page{Path: "/index.php", Title: siteTitle(domain, keywords), Topic: topics[0]}
	s.addPage(index)
	for i := 1; i < cfg.PageCount; i++ {
		topic := topics[rng.Intn(len(topics))]
		dir := dirs[rng.Intn(len(dirs))]
		name := fmt.Sprintf("%s-%s-%d.php", pageSlugs[rng.Intn(len(pageSlugs))], topic, i)
		p := &Page{
			Path:  "/" + dir + "/" + name,
			Title: strings.Title(topic) + " — " + s.Domain, //nolint:staticcheck // ASCII topics only
			Topic: topic,
		}
		s.addPage(p)
	}

	// Link graph: every page links to 3–6 others chosen deterministically,
	// and every page is reachable from the index via a spanning chain.
	paths := s.order
	for i, path := range paths {
		p := s.Pages[path]
		if i+1 < len(paths) {
			p.Links = append(p.Links, paths[i+1]) // spanning chain
		}
		extra := 2 + rng.Intn(4)
		for len(p.Links) < extra+1 && len(p.Links) < len(paths)-1 {
			cand := paths[rng.Intn(len(paths))]
			if cand != path && !containsStr(p.Links, cand) {
				p.Links = append(p.Links, cand)
			}
		}
	}

	// Illustrations: one deterministic pseudo-image per topic.
	for _, path := range paths {
		p := s.Pages[path]
		img := "/img/" + p.Topic + ".png"
		p.ImageID = img
		if _, ok := s.Images[img]; !ok {
			s.Images[img] = fakePNG(p.Topic, rng)
		}
	}

	// Render HTML bodies last, when links are known.
	for _, path := range paths {
		p := s.Pages[path]
		p.HTML = renderPage(s, p, rng.Int63())
	}
	return s
}

func (s *Site) addPage(p *Page) {
	s.Pages[p.Path] = p
	s.order = append(s.order, p.Path)
}

func containsStr(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

var pageSlugs = []string{"history", "guide", "overview", "notes", "intro", "basics", "tips", "faq", "review", "archive"}

func siteTitle(domain string, keywords []string) string {
	if len(keywords) > 0 {
		return strings.Title(strings.Join(keywords, " ")) + " | " + domain //nolint:staticcheck
	}
	return domain
}

func renderPage(s *Site, p *Page, seed int64) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "  <title>%s</title>\n", html.EscapeString(p.Title))
	fmt.Fprintf(&b, "  <link rel=\"icon\" href=\"/favicon.ico\">\n")
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "  <h1>%s</h1>\n", html.EscapeString(p.Title))
	fmt.Fprintf(&b, "  <img src=%q alt=%q>\n", p.ImageID, p.Topic)
	for _, para := range wordnet.Paragraphs(p.Topic, seed, 3) {
		fmt.Fprintf(&b, "  <p>%s</p>\n", html.EscapeString(para))
	}
	b.WriteString("  <ul class=\"nav\">\n")
	for _, link := range p.Links {
		title := link
		if tp, ok := s.Pages[link]; ok {
			title = tp.Title
		}
		fmt.Fprintf(&b, "    <li><a href=%q>%s</a></li>\n", link, html.EscapeString(title))
	}
	b.WriteString("  </ul>\n</body>\n</html>\n")
	return b.String()
}

// fakePNG returns a small deterministic byte blob with a PNG signature — the
// simulation's stand-in for downloaded topical images.
func fakePNG(topic string, rng *rand.Rand) []byte {
	blob := make([]byte, 128+rng.Intn(256))
	sig := []byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'}
	copy(blob, sig)
	copy(blob[len(sig):], topic)
	for i := len(sig) + len(topic); i < len(blob); i++ {
		blob[i] = byte(rng.Intn(256))
	}
	return blob
}

// Paths returns all page paths, index first, then generation order.
func (s *Site) Paths() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Handler serves the generated site: pages, images, a favicon, and 404s for
// everything else. "/" serves the index page.
func (s *Site) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := r.URL.Path
		if path == "/" {
			path = "/index.php"
		}
		if p, ok := s.Pages[path]; ok {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			io.WriteString(w, p.HTML)
			return
		}
		if img, ok := s.Images[path]; ok {
			w.Header().Set("Content-Type", "image/png")
			w.Write(img)
			return
		}
		if path == "/favicon.ico" {
			w.Header().Set("Content-Type", "image/x-icon")
			w.Write([]byte{0, 0, 1, 0})
			return
		}
		http.NotFound(w, r)
	})
}

// WriteZip packs the site into a .zip archive — the paper's ready-to-upload
// package format. Entries are written in sorted path order for reproducible
// archives.
func (s *Site) WriteZip(w io.Writer) error {
	zw := zip.NewWriter(w)
	var paths []string
	for p := range s.Pages {
		paths = append(paths, p)
	}
	for p := range s.Images {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		f, err := zw.Create(strings.TrimPrefix(path, "/"))
		if err != nil {
			return fmt.Errorf("sitegen: creating zip entry %s: %w", path, err)
		}
		if page, ok := s.Pages[path]; ok {
			if _, err := io.WriteString(f, page.HTML); err != nil {
				return fmt.Errorf("sitegen: writing zip entry %s: %w", path, err)
			}
			continue
		}
		if _, err := f.Write(s.Images[path]); err != nil {
			return fmt.Errorf("sitegen: writing zip entry %s: %w", path, err)
		}
	}
	return zw.Close()
}
