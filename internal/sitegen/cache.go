package sitegen

import "sync"

// siteCache memoises Generate. A Site is a pure function of (domain,
// normalized page count, seed) and is read-only after generation — its
// handler and the hosting layer only serve from it — so one instance can
// back every world that deploys the same domain with the same seed (the
// ablation stages rebuild exactly such worlds).
var siteCache sync.Map // siteKey -> *Site

type siteKey struct {
	domain string
	pages  int
	seed   int64
}

// GenerateCached is Generate backed by the process-wide site cache. The
// returned Site is shared: callers must treat it as read-only.
func GenerateCached(domain string, cfg Config) *Site {
	if cfg.PageCount <= 0 {
		cfg.PageCount = DefaultPageCount
	}
	key := siteKey{domain: domain, pages: cfg.PageCount, seed: cfg.Seed}
	if s, ok := siteCache.Load(key); ok {
		return s.(*Site)
	}
	s := Generate(domain, cfg)
	actual, _ := siteCache.LoadOrStore(key, s)
	return actual.(*Site)
}
