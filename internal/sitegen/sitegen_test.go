package sitegen

import (
	"archive/zip"
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateDefaultPageCount(t *testing.T) {
	t.Parallel()
	s := Generate("garden-tools.com", Config{})
	if len(s.Pages) != DefaultPageCount {
		t.Fatalf("generated %d pages, want %d", len(s.Pages), DefaultPageCount)
	}
	if _, ok := s.Pages["/index.php"]; !ok {
		t.Fatal("site must have an index page")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	t.Parallel()
	a := Generate("garden-tools.com", Config{Seed: 5})
	b := Generate("garden-tools.com", Config{Seed: 5})
	if len(a.Pages) != len(b.Pages) {
		t.Fatal("page counts differ across identical generations")
	}
	for path, pa := range a.Pages {
		pb, ok := b.Pages[path]
		if !ok || pa.HTML != pb.HTML {
			t.Fatalf("page %s differs across identical generations", path)
		}
	}
}

func TestGenerateDomainsDiffer(t *testing.T) {
	t.Parallel()
	a := Generate("garden-tools.com", Config{Seed: 5})
	b := Generate("coffee-guide.net", Config{Seed: 5})
	if len(a.Pages) == 0 || len(b.Pages) == 0 {
		t.Fatal("empty site")
	}
	aPaths := strings.Join(a.Paths(), ",")
	bPaths := strings.Join(b.Paths(), ",")
	if aPaths == bPaths {
		t.Fatal("different domains should produce different page paths")
	}
}

func TestPagesUsePHPExtensionsAndDirectories(t *testing.T) {
	t.Parallel()
	s := Generate("garden-tools.com", Config{})
	dirs := map[string]bool{}
	for path := range s.Pages {
		if !strings.HasSuffix(path, ".php") {
			t.Fatalf("page %s does not have a .php extension", path)
		}
		parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
		if len(parts) > 1 {
			dirs[parts[0]] = true
		}
	}
	if len(dirs) == 0 {
		t.Fatal("pages should be spread across directories")
	}
}

func TestEveryPageReachableFromIndex(t *testing.T) {
	t.Parallel()
	s := Generate("coffee-bakery.org", Config{})
	visited := map[string]bool{}
	queue := []string{"/index.php"}
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		if visited[path] {
			continue
		}
		visited[path] = true
		p, ok := s.Pages[path]
		if !ok {
			t.Fatalf("link to missing page %s", path)
		}
		queue = append(queue, p.Links...)
	}
	if len(visited) != len(s.Pages) {
		t.Fatalf("only %d/%d pages reachable from index", len(visited), len(s.Pages))
	}
}

func TestLinksPointToExistingPages(t *testing.T) {
	t.Parallel()
	s := Generate("music-school.com", Config{})
	for path, p := range s.Pages {
		for _, link := range p.Links {
			if _, ok := s.Pages[link]; !ok {
				t.Fatalf("page %s links to missing %s", path, link)
			}
			if link == path {
				t.Fatalf("page %s links to itself", path)
			}
		}
	}
}

func TestTopicalContent(t *testing.T) {
	t.Parallel()
	s := Generate("garden-tools.com", Config{})
	idx := s.Pages["/index.php"]
	if !strings.Contains(strings.ToLower(idx.HTML), "garden") {
		t.Fatalf("index page should mention the domain keyword; got title %q", idx.Title)
	}
}

func TestGibberishDomainFallsBackToRandomKeywords(t *testing.T) {
	t.Parallel()
	s := Generate("xqztqq.com", Config{})
	if len(s.Pages) != DefaultPageCount {
		t.Fatalf("gibberish domain generated %d pages, want %d", len(s.Pages), DefaultPageCount)
	}
}

func TestHandlerServesPagesImagesFavicon(t *testing.T) {
	t.Parallel()
	s := Generate("garden-tools.com", Config{})
	h := s.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", "http://garden-tools.com"+path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	if rec := get("/"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "<h1>") {
		t.Fatalf("GET / = %d, want index HTML", rec.Code)
	}
	var imgPath string
	for p := range s.Images {
		imgPath = p
		break
	}
	if rec := get(imgPath); rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != "image/png" {
		t.Fatalf("GET %s = %d %s, want PNG", imgPath, rec.Code, rec.Header().Get("Content-Type"))
	}
	if rec := get("/favicon.ico"); rec.Code != http.StatusOK {
		t.Fatalf("GET /favicon.ico = %d", rec.Code)
	}
	if rec := get("/definitely-missing.php"); rec.Code != http.StatusNotFound {
		t.Fatalf("GET missing = %d, want 404", rec.Code)
	}
}

func TestWriteZipRoundTrip(t *testing.T) {
	t.Parallel()
	s := Generate("garden-tools.com", Config{})
	var buf bytes.Buffer
	if err := s.WriteZip(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := zip.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	want := len(s.Pages) + len(s.Images)
	if len(zr.File) != want {
		t.Fatalf("zip has %d entries, want %d", len(zr.File), want)
	}
	// Spot-check one page round-trips byte-identically.
	for _, f := range zr.File {
		if f.Name == "index.php" {
			rc, err := f.Open()
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(rc)
			rc.Close()
			if string(data) != s.Pages["/index.php"].HTML {
				t.Fatal("index.php zip entry does not match generated HTML")
			}
			return
		}
	}
	t.Fatal("index.php not found in zip")
}

func TestImagesShareTopicAcrossPages(t *testing.T) {
	t.Parallel()
	s := Generate("garden-tools.com", Config{})
	if len(s.Images) == 0 {
		t.Fatal("site should have images")
	}
	for _, img := range s.Images {
		if len(img) < 8 || img[1] != 'P' || img[2] != 'N' || img[3] != 'G' {
			t.Fatal("image blob missing PNG signature")
		}
	}
}

// Property: generation never panics and always yields the requested count
// (≥1 page) for arbitrary domain-ish inputs.
func TestQuickGenerateTotal(t *testing.T) {
	t.Parallel()
	f := func(label string, n uint8) bool {
		count := int(n%40) + 1
		s := Generate(label+".com", Config{PageCount: count, Seed: int64(n)})
		return len(s.Pages) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
