package lint

import (
	"path/filepath"
	"testing"
)

// TestRepoIsLintClean is the in-tree half of the phishlint gate: it loads
// the live module once and runs the full analyzer suite — per-package and
// interprocedural — over every package, so `go test ./...` fails on a new
// determinism, aliasing, allocation, or error-discipline violation even when
// CI (which also runs `go run ./cmd/phishlint ./...`) is out of the loop.
// Fixing a failure means either making the code conform or adding a
// justified //phishlint:<token> annotation — see DESIGN.md §11 and §16.
func TestRepoIsLintClean(t *testing.T) {
	t.Parallel()
	// The gate is only worth its name if the interprocedural analyzers are
	// actually in the suite being run.
	for _, required := range []string{"seedflow", "shardflow", "allocfree", "errwrap"} {
		found := false
		for _, a := range Analyzers {
			if a.Name == required {
				found = true
			}
		}
		if !found {
			t.Fatalf("module analyzer %q missing from the default suite", required)
		}
	}
	module, err := LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	// A loader regression that silently skipped most of the tree would make
	// this test pass vacuously; the module has 40+ packages.
	if len(module.Packages) < 30 {
		t.Fatalf("loader found only %d packages, expected the whole module (40+)", len(module.Packages))
	}
	findings, timings := module.Run(Analyzers, 0, module.Packages)
	for _, f := range findings {
		rel, err := filepath.Rel(module.Loader.ModuleRoot, f.Pos.Filename)
		if err != nil {
			rel = f.Pos.Filename
		}
		t.Errorf("%s:%d:%d: %s: %s", rel, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		t.Logf("%d finding(s); fix them or annotate with //phishlint:<token> <why> (DESIGN.md §11, §16)", len(findings))
	}
	for _, tm := range timings {
		t.Logf("%-12s %s", tm.Name, tm.Duration)
	}
}
