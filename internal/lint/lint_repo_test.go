package lint

import (
	"path/filepath"
	"testing"
)

// TestRepoIsLintClean is the in-tree half of the phishlint gate: it runs the
// full analyzer suite over every package of the live module, so `go test
// ./...` fails on a new determinism violation even when CI (which also runs
// `go run ./cmd/phishlint ./...`) is out of the loop. Fixing a failure means
// either making the code deterministic or adding a justified
// //phishlint:<token> annotation — see DESIGN.md §11.
func TestRepoIsLintClean(t *testing.T) {
	t.Parallel()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	targets, err := WalkPackages(loader, loader.ModuleRoot)
	if err != nil {
		t.Fatalf("walking module: %v", err)
	}
	// A walker regression that silently skipped most of the tree would make
	// this test pass vacuously; the module has 40+ packages.
	if len(targets) < 30 {
		t.Fatalf("walker found only %d packages, expected the whole module (40+)", len(targets))
	}
	var total int
	for _, tgt := range targets {
		pkg, err := loader.Load(tgt.Dir, tgt.Path)
		if err != nil {
			t.Errorf("loading %s: %v", tgt.Path, err)
			continue
		}
		for _, f := range RunAnalyzers(pkg, Analyzers) {
			rel, err := filepath.Rel(loader.ModuleRoot, f.Pos.Filename)
			if err != nil {
				rel = f.Pos.Filename
			}
			t.Errorf("%s:%d:%d: %s: %s", rel, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
			total++
		}
	}
	if total > 0 {
		t.Logf("%d determinism finding(s); fix them or annotate with //phishlint:<token> <why> (DESIGN.md §11)", total)
	}
}
