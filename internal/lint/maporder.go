package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Maporder flags `for range` over a map when the loop body does something
// order-sensitive: appends to a slice, writes output (fmt printing, Write*
// methods), or feeds the telemetry / report / weblog subsystems. Go
// randomizes map iteration order per run *by design*, so any of those sinks
// turns the range into a nondeterminism source — exactly the class of bug
// PR 3 had to hunt by hand twice (wordnet Synonyms, monitor.Engines).
//
// Two safe shapes are recognized and not flagged:
//
//   - order-insensitive bodies (summing, counting, building another map,
//     deleting keys);
//   - the collect-then-sort idiom: the loop appends to a slice and a later
//     statement in the same block sorts it before anything else observes it
//     — either directly (sort.* / slices.*) or through a same-package
//     helper whose body sorts the corresponding parameter (`sortKeys(xs)`
//     or `xs = sortKeys(xs)`); intervening statements may touch other state
//     (RUnlock, say) or be further collect loops into the same slice.
//
// Anything else that is provably harmless — an order-insensitive sum, a
// slice the caller sorts — gets a //phishlint:sorted <why> annotation on the
// range statement.
var Maporder = &Analyzer{
	Name:   "maporder",
	Doc:    "flag map iteration feeding slices, output, or telemetry/report/weblog",
	Tokens: []string{"sorted"},
	Run:    runMaporder,
}

// maporderSinkPkgs are packages whose mere use inside a map-range body makes
// the order observable downstream.
var maporderSinkPkgs = map[string]string{
	"areyouhuman/internal/telemetry": "telemetry",
	"areyouhuman/internal/report":    "the report layer",
	"areyouhuman/internal/weblog":    "the web log",
}

func runMaporder(pass *Pass) {
	for _, file := range pass.Files {
		safe := collectSortedLater(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			sink := findOrderSink(pass, rs.Body)
			if sink == nil || safe[rs] {
				return true
			}
			pass.Reportf(rs.For, "map iteration order is randomized but this range %s; sort the keys first (or annotate //phishlint:sorted with why order is harmless)", sink.what)
			return true
		})
	}
}

// orderSink describes the order-sensitive operation in a range body. When
// several exist, non-append sinks win: an append can be redeemed by a later
// sort, a Printf cannot.
type orderSink struct {
	what string
	// appendTo is the object of the slice appended to when the sink is a
	// plain `x = append(x, ...)` — the collect-then-sort check needs it.
	appendTo types.Object
}

// collectSortedLater marks the range statements whose only sink is an append
// redeemed by a later sort in the same statement list: scanning forward from
// the range, statements that don't mention the slice are skipped, further
// map-collect loops into the same slice are skipped, and the first statement
// that does mention it must be a sort.*/slices.* call on it.
func collectSortedLater(pass *Pass, file *ast.File) map[*ast.RangeStmt]bool {
	safe := map[*ast.RangeStmt]bool{}
	scan := func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			rs, ok := stmt.(*ast.RangeStmt)
			if !ok {
				continue
			}
			sink := findOrderSink(pass, rs.Body)
			if sink == nil || sink.appendTo == nil {
				continue
			}
			obj := sink.appendTo
			for j := i + 1; j < len(stmts); j++ {
				next := stmts[j]
				if sortsObject(pass, next, obj) || helperSorts(pass, next, obj) {
					safe[rs] = true
					break
				}
				if !mentionsObject(pass, next, obj) {
					continue
				}
				if nrs, ok := next.(*ast.RangeStmt); ok {
					if s := findOrderSink(pass, nrs.Body); s != nil && s.appendTo == obj {
						continue // sibling collect loop into the same slice
					}
				}
				break // something observed the slice before a sort
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.BlockStmt:
			scan(b.List)
		case *ast.CaseClause:
			scan(b.Body)
		case *ast.CommClause:
			scan(b.Body)
		}
		return true
	})
	return safe
}

// sortsObject reports whether stmt is a call into the sort or slices package
// with obj among its arguments.
func sortsObject(pass *Pass, stmt ast.Stmt, obj types.Object) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || (fn.Pkg().Path() != "sort" && fn.Pkg().Path() != "slices") {
		return false
	}
	for _, arg := range call.Args {
		if exprObject(pass, arg) == obj {
			return true
		}
	}
	return false
}

// helperSorts reports whether stmt delegates the sort to a same-package
// helper: a call (statement or `xs = helper(xs)` assignment) passing obj,
// where the helper's body sorts the corresponding parameter. This keeps the
// collect-then-sort idiom recognized after the sort is factored out.
func helperSorts(pass *Pass, stmt ast.Stmt, obj types.Object) bool {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			call, _ = s.Rhs[0].(*ast.CallExpr)
		}
	}
	if call == nil {
		return false
	}
	var fn *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ = pass.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.Info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() != pass.Pkg {
		return false
	}
	argIdx := -1
	for i, arg := range call.Args {
		if exprObject(pass, arg) == obj {
			argIdx = i
			break
		}
	}
	if argIdx < 0 {
		return false
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || pass.Info.Defs[fd.Name] != fn || fd.Body == nil {
				continue
			}
			params := paramObjects(pass, fd)
			if argIdx >= len(params) {
				return false
			}
			return bodySorts(pass, fd.Body, params[argIdx])
		}
	}
	return false
}

// paramObjects lists a declaration's parameter objects in signature order.
func paramObjects(pass *Pass, fd *ast.FuncDecl) []types.Object {
	var objs []types.Object
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			objs = append(objs, pass.Info.Defs[name])
		}
	}
	return objs
}

// bodySorts reports whether body contains a sort.*/slices.* call with param
// among its arguments.
func bodySorts(pass *Pass, body *ast.BlockStmt, param types.Object) bool {
	if param == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || (fn.Pkg().Path() != "sort" && fn.Pkg().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if exprObject(pass, arg) == param {
				found = true
			}
		}
		return !found
	})
	return found
}

// mentionsObject reports whether obj is referenced anywhere in stmt.
func mentionsObject(pass *Pass, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// exprObject resolves an identifier or field selector to its object.
func exprObject(pass *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.Info.Uses[e]
	case *ast.SelectorExpr:
		return pass.Info.Uses[e.Sel]
	}
	return nil
}

// findOrderSink scans a range body for order-sensitive operations.
func findOrderSink(pass *Pass, body *ast.BlockStmt) *orderSink {
	var appendSink, otherSink *orderSink
	ast.Inspect(body, func(n ast.Node) bool {
		if otherSink != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if bi, ok := pass.Info.Uses[fun].(*types.Builtin); ok && bi.Name() == "append" && appendSink == nil {
				appendSink = &orderSink{what: "appends to a slice"}
				if len(call.Args) > 0 {
					appendSink.appendTo = exprObject(pass, call.Args[0])
				}
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
				pkg := fn.Pkg().Path()
				if pkg == "fmt" && strings.Contains(name, "rint") { // Print*, Fprint*, Sprint*
					otherSink = &orderSink{what: "writes formatted output (fmt." + name + ")"}
					return false
				}
				if what, ok := maporderSinkPkgs[pkg]; ok {
					otherSink = &orderSink{what: "feeds " + what + " (" + name + ")"}
					return false
				}
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
					if what := sinkRecv(recv.Type()); what != "" {
						otherSink = &orderSink{what: "feeds " + what + " (" + name + ")"}
						return false
					}
					if strings.HasPrefix(name, "Write") {
						otherSink = &orderSink{what: "writes output (" + name + ")"}
						return false
					}
				}
			}
		}
		return true
	})
	if otherSink != nil {
		return otherSink
	}
	return appendSink
}

// sinkRecv reports whether a method receiver belongs to one of the sink
// packages (telemetry counters, report builders, weblog appenders).
func sinkRecv(t types.Type) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Named:
			if p := u.Obj().Pkg(); p != nil {
				if what, ok := maporderSinkPkgs[p.Path()]; ok {
					return what
				}
			}
			return ""
		default:
			return ""
		}
	}
}
