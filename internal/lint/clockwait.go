package lint

import (
	"go/ast"
	"go/types"
)

// Clockwait forbids wall-clock waiting primitives in simulation packages:
// time.Sleep, time.After, time.Tick, time.NewTimer, time.NewTicker,
// time.AfterFunc, and wall-deadline contexts (context.WithTimeout,
// context.WithDeadline). Inside a world there is exactly one goroutine and
// one timeline — the scheduler's — so every wait must be a scheduler event
// (Scheduler.At / clock-driven callbacks), never a real sleep. A wall sleep
// in sim code either stalls the event loop for real seconds or, worse,
// introduces a wall/virtual race that only shows up under -race with load.
//
// The //phishlint:wallclock <why> annotation suppresses a finding for code
// that deliberately touches the real clock.
var Clockwait = &Analyzer{
	Name:   "clockwait",
	Doc:    "forbid wall-clock waits in sim packages; waits must be scheduler events",
	Tokens: []string{"wallclock"},
	Run:    runClockwait,
}

var clockwaitForbidden = map[string]map[string]string{
	"time": {
		"Sleep":     "blocks the event loop on the wall clock; schedule a simclock event instead",
		"After":     "wall-clock timer; schedule a simclock event instead",
		"Tick":      "wall-clock ticker; schedule repeating simclock events instead",
		"NewTimer":  "wall-clock timer; schedule a simclock event instead",
		"NewTicker": "wall-clock ticker; schedule repeating simclock events instead",
		"AfterFunc": "wall-clock callback; schedule a simclock event instead",
	},
	"context": {
		"WithTimeout":  "wall-clock deadline; bound work in virtual time via the scheduler",
		"WithDeadline": "wall-clock deadline; bound work in virtual time via the scheduler",
	},
}

func runClockwait(pass *Pass) {
	if !IsSimPackage(pass.Path) {
		return
	}
	forEachPkgFuncUse(pass, func(id *ast.Ident, fn *types.Func) {
		if reason, ok := clockwaitForbidden[fn.Pkg().Path()][fn.Name()]; ok {
			pass.Reportf(id.Pos(), "%s.%s: %s", fn.Pkg().Path(), fn.Name(), reason)
		}
	})
}
