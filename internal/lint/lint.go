// Package lint is the determinism lint suite behind cmd/phishlint.
//
// Every headline number this reproduction reports depends on a run being a
// pure function of (seed, config, plan): the -race bit-identity tests of
// DESIGN.md §7–§9 check that property after the fact, but nothing in the
// compiler stops a refactor from reintroducing wall-clock reads, unsorted
// map iteration on an output path, or an unseeded RNG. This package encodes
// those invariants as analyzers over go/ast + go/types — stdlib only, in the
// spirit of go vet — so violations fail CI (and `go test ./...`, via the
// repo meta-test) with a file:line finding instead of a flaky diff three PRs
// later.
//
// Analyzers ship in this package (Analyzers lists them all): detrand,
// maporder, clockwait, seedpure, metriclabel, and shardsafe. Each is
// documented on its own Analyzer value; DESIGN.md §11 describes the suite,
// the //phishlint:<token> annotation escape hatch, and how to add an
// analyzer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package. Run inspects
// pass.Files and reports findings through the pass; the framework applies
// annotation-based suppression afterwards, so analyzers never look at
// //phishlint comments themselves.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //phishlint:allow
	// annotations. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Tokens lists the annotation tokens (beyond the generic "allow") that
	// suppress this analyzer's findings, e.g. "sorted" for maporder.
	Tokens []string
	// Run performs a per-package analysis. Exactly one of Run and RunModule
	// is set.
	Run func(*Pass)
	// RunModule performs a whole-module analysis over the call graph
	// (seedflow, shardflow, allocfree, errwrap). Module analyzers only
	// execute under Module.Run; the per-package RunAnalyzers entry point
	// skips them.
	RunModule func(*ModulePass)
}

// Analyzers is the full suite, in reporting order: the per-package
// analyzers first, then the interprocedural ones. Populated in init — the
// module analyzers consult the suite at run time (to resolve annotation
// tokens), and a literal initializer would be an initialization cycle.
var Analyzers []*Analyzer

func init() {
	Analyzers = []*Analyzer{
		Detrand, Maporder, Clockwait, Seedpure, Metriclabel, Shardsafe,
		Seedflow, Shardflow, Allocfree, Errwrap,
	}
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// Path is the package's import path ("areyouhuman/internal/chaos").
	// Fixture packages fabricate paths to exercise scope rules.
	Path string
	Pkg  *types.Package
	Info *types.Info

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// A Finding is one reported violation.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`

	// Flattened position for -json output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// simExempt lists internal packages the determinism analyzers (detrand,
// clockwait) do not police: simclock because it *is* the wall-clock
// abstraction boundary, and lint itself. Everything else under internal/ is
// simulation code and must take time from simclock and randomness from the
// world's seeded source. telemetry is deliberately NOT exempt — its two
// sanctioned wall-clock reads carry //phishlint:wallclock annotations so the
// next one added is a conscious decision.
var simExempt = map[string]bool{
	"areyouhuman/internal/simclock": true,
	"areyouhuman/internal/lint":     true,
}

// IsSimPackage reports whether the determinism rules apply to the package at
// importPath: every package under areyouhuman/internal/ except the exempt
// substrates above.
func IsSimPackage(importPath string) bool {
	if !strings.HasPrefix(importPath, "areyouhuman/internal/") {
		return false
	}
	return !simExempt[importPath]
}

// RunAnalyzers runs every analyzer in suite over pkg and returns the
// surviving findings, sorted by position: annotation-suppressed findings are
// dropped, and malformed annotations (no justification, unknown token)
// become findings themselves.
func RunAnalyzers(pkg *Package, suite []*Analyzer) []Finding {
	var raw []Finding
	for _, a := range suite {
		if a.Run == nil {
			continue // module analyzers need Module.Run
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			findings: &raw,
		}
		a.Run(pass)
	}
	anns, bad := collectAnnotations(pkg, suite)
	findings := bad
	for _, f := range raw {
		if !anns.suppresses(f) {
			findings = append(findings, f)
		}
	}
	for i := range findings {
		findings[i].File = findings[i].Pos.Filename
		findings[i].Line = findings[i].Pos.Line
		findings[i].Col = findings[i].Pos.Column
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// annotationPrefix introduces a suppression comment: //phishlint:<token>
// <justification>. A token either names an analyzer-specific escape hatch
// ("sorted", "wallclock") or is the generic "allow <analyzer>". The
// justification is mandatory — an annotation that silences a finding without
// saying why is itself a finding.
const annotationPrefix = "//phishlint:"

// annotation is one parsed //phishlint comment, resolved to the set of
// analyzer names it silences and the source line it governs.
type annotation struct {
	analyzers map[string]bool
	line      int
	file      string
}

type annotationSet []annotation

func (s annotationSet) suppresses(f Finding) bool {
	for _, a := range s {
		if a.file == f.Pos.Filename && a.line == f.Pos.Line && a.analyzers[f.Analyzer] {
			return true
		}
	}
	return false
}

// collectAnnotations parses every //phishlint comment in pkg. An annotation
// governs the line it sits on when it trails code, or the next line when it
// stands alone. Malformed annotations are returned as findings attributed to
// the framework pseudo-analyzer "annotation".
func collectAnnotations(pkg *Package, suite []*Analyzer) (annotationSet, []Finding) {
	byToken := map[string][]string{} // token -> analyzer names it silences
	known := map[string]bool{}
	for _, a := range suite {
		known[a.Name] = true
		for _, tok := range a.Tokens {
			byToken[tok] = append(byToken[tok], a.Name)
		}
	}
	var anns annotationSet
	var bad []Finding
	report := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, Finding{
			Analyzer: "annotation",
			Pos:      pkg.Fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, annotationPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, annotationPrefix)
				// The justification runs to the end of the comment or to an
				// embedded "//" (which lets fixture files carry a trailing
				// `// want` expectation on the same line).
				if cut := strings.Index(rest, "//"); cut >= 0 {
					rest = rest[:cut]
				}
				tok, just, _ := strings.Cut(rest, " ")
				just = strings.TrimSpace(just)
				var silenced []string
				switch {
				case tok == hotpathToken:
					// Not a suppression: //phishlint:hotpath marks a function
					// for the allocfree analyzer (which reads it off the
					// declaration itself). It tightens checking rather than
					// relaxing it, so no justification is required.
					continue
				case tok == "allow":
					name, j, _ := strings.Cut(just, " ")
					just = strings.TrimSpace(j)
					if !known[name] {
						report(c.Pos(), "//phishlint:allow names unknown analyzer %q", name)
						continue
					}
					silenced = []string{name}
				case byToken[tok] != nil:
					silenced = byToken[tok]
				default:
					report(c.Pos(), "unknown //phishlint annotation token %q", tok)
					continue
				}
				if just == "" {
					report(c.Pos(), "//phishlint:%s needs a justification after the token", tok)
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if pos.Column == 1 || standsAlone(pkg.Fset, file, c) {
					line++ // whole-line comment governs the next line
				}
				m := map[string]bool{}
				for _, n := range silenced {
					m[n] = true
				}
				anns = append(anns, annotation{analyzers: m, line: line, file: pos.Filename})
			}
		}
	}
	return anns, bad
}

// standsAlone reports whether comment c is the first token on its line (an
// indented whole-line comment rather than one trailing code).
func standsAlone(fset *token.FileSet, file *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	alone := true
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		if _, ok := n.(*ast.Comment); ok {
			return true
		}
		if _, ok := n.(*ast.CommentGroup); ok {
			return true
		}
		p := fset.Position(n.Pos())
		if p.Line == cpos.Line && p.Column < cpos.Column {
			// Some code token starts before the comment on the same line.
			if _, isFile := n.(*ast.File); !isFile {
				alone = false
			}
		}
		return true
	})
	return alone
}
