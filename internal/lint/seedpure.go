package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Seedpure polices the seed-derivation packages: internal/chaos,
// internal/core, internal/campaign (whose positional URL planner derives a
// million assignments from (seed, index) alone), and internal/population
// (whose positional victim planner does the same for a million victims).
// Fault decisions, replica seeds, campaign plans, and victim behaviour must
// be pure functions of (master seed, stream index, label, virtual time)
// folded through the repo's splitmix64/FNV helpers (chaos.SplitSeed, mix64,
// u01) — the cross-parallelism bit-identity tests rely on draws being
// order-independent and machine-independent. Seedpure therefore forbids, in
// those packages:
//
//   - math/rand (v1 or v2): stream-advancing RNGs make draws depend on call
//     order, which differs between sequential and parallel runs;
//   - unsafe, and reflect's Pointer/UnsafePointer: pointer values differ per
//     process, so anything derived from them is unreproducible;
//   - the %p verb in format strings, for the same reason;
//   - feeding a raw loop counter straight into u01/mix64: counters must be
//     folded through SplitSeed's avalanche first, or adjacent streams
//     correlate (stream K and K+1 differ by one bit pre-mix).
var Seedpure = &Analyzer{
	Name: "seedpure",
	Doc:  "seed/fault draws in chaos+core+campaign+population must derive from the splitmix64/FNV helpers",
	Run:  runSeedpure,
}

// seedpureScope lists the packages whose draws are policed. Fixture packages
// fabricate one of these paths to exercise the analyzer.
var seedpureScope = map[string]bool{
	"areyouhuman/internal/chaos":      true,
	"areyouhuman/internal/core":       true,
	"areyouhuman/internal/campaign":   true,
	"areyouhuman/internal/population": true,
}

func runSeedpure(pass *Pass) {
	if !seedpureScope[pass.Path] {
		return
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "math/rand advances a shared stream; draws here must be order-independent hashes (SplitSeed/u01)")
			case "unsafe":
				pass.Reportf(imp.Pos(), "unsafe exposes pointer values, which differ per process; seeds must be reproducible from (seed, config, plan)")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if n.Kind == token.STRING && strings.Contains(n.Value, "%p") {
					pass.Reportf(n.Pos(), "%%p formats a pointer value, which differs per process; never fold it into a seed or label")
				}
			case *ast.SelectorExpr:
				if fn, ok := pass.Info.Uses[n.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "reflect" {
					if fn.Name() == "Pointer" || fn.Name() == "UnsafePointer" {
						pass.Reportf(n.Sel.Pos(), "reflect.%s yields a per-process pointer value; seeds must be reproducible", fn.Name())
					}
				}
			case *ast.FuncDecl:
				checkLoopCounterDraws(pass, n)
			}
			return true
		})
	}
}

// checkLoopCounterDraws flags calls to u01/mix64 whose arguments reference a
// loop variable without folding it through SplitSeed first.
func checkLoopCounterDraws(pass *Pass, fn *ast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	loopVars := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if a, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range a.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							loopVars[obj] = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						loopVars[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(loopVars) == 0 {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(pass, call)
		if name != "u01" && name != "mix64" {
			return true
		}
		for _, arg := range call.Args {
			if usesLoopVar(pass, arg, loopVars) && !containsSplitSeed(pass, arg) {
				pass.Reportf(arg.Pos(), "raw loop counter fed into %s; fold it through SplitSeed so adjacent streams decorrelate", name)
			}
		}
		return true
	})
}

// calleeName resolves the simple name of a called function, "" if unknown.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return f.Name()
		}
	case *ast.SelectorExpr:
		if f, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return f.Name()
		}
	}
	return ""
}

func usesLoopVar(pass *Pass, e ast.Expr, loopVars map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && loopVars[pass.Info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

func containsSplitSeed(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && calleeName(pass, call) == "SplitSeed" {
			found = true
		}
		return !found
	})
	return found
}
