package lint

import (
	"encoding/json"
	"go/ast"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// loadFixtureModule assembles a single-package fixture as a Module.
func loadFixtureModule(t *testing.T, fixture, importPath string) *Module {
	t.Helper()
	loader, err := NewLoader("testdata/src/" + fixture)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.Load("testdata/src/"+fixture, importPath)
	if err != nil {
		t.Fatalf("load %s: %v", fixture, err)
	}
	return NewModule(loader, pkg)
}

func nodeByName(t *testing.T, g *CallGraph, name string) *CallNode {
	t.Helper()
	for _, n := range g.SortedNodes() {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no call-graph node named %q", name)
	return nil
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	t.Parallel()
	m := loadFixtureModule(t, "callgraph", "areyouhuman/internal/fixture/callgraph")
	g := m.Graph()
	dispatch := nodeByName(t, g, "callgraph.Dispatch")
	var dyn *CallSite
	for _, site := range dispatch.Sites {
		if site.Dynamic {
			dyn = site
		}
	}
	if dyn == nil {
		t.Fatal("Dispatch has no dynamic call site")
	}
	var impls []string
	for _, callee := range dyn.Callees {
		impls = append(impls, callee.Name())
	}
	sort.Strings(impls)
	want := []string{"callgraph.Cat.Speak", "callgraph.Dog.Speak"}
	if !reflect.DeepEqual(impls, want) {
		t.Errorf("CHA resolved %v, want %v", impls, want)
	}
}

func TestCallGraphDirectCall(t *testing.T) {
	t.Parallel()
	m := loadFixtureModule(t, "callgraph", "areyouhuman/internal/fixture/callgraph")
	g := m.Graph()
	direct := nodeByName(t, g, "callgraph.Direct")
	var static *CallSite
	for _, site := range direct.Sites {
		if len(site.Callees) > 0 {
			static = site
		}
	}
	if static == nil {
		t.Fatal("Direct has no resolved call site")
	}
	if static.Dynamic {
		t.Error("static call marked dynamic")
	}
	if len(static.Callees) != 1 || static.Callees[0].Name() != "callgraph.helper" {
		t.Errorf("Direct resolves to %v, want [callgraph.helper]", static.Callees)
	}
}

func TestGlobalAccessSummariesThroughRecursion(t *testing.T) {
	t.Parallel()
	m := loadFixtureModule(t, "callgraph", "areyouhuman/internal/fixture/callgraph")
	g := m.Graph()
	sums := g.GlobalAccessSummaries()
	writesHits := func(name string) bool {
		for v := range sums[nodeByName(t, g, name)].writes {
			if v.Name() == "hits" {
				return true
			}
		}
		return false
	}
	// The write sits in recA; recB reaches it only through the cycle, and
	// UseRec only through recA — both must inherit it at the fixpoint.
	for _, name := range []string{"callgraph.recA", "callgraph.recB", "callgraph.UseRec"} {
		if !writesHits(name) {
			t.Errorf("summary of %s is missing the transitive write of hits", name)
		}
	}
	if writesHits("callgraph.Direct") {
		t.Error("Direct never reaches hits but its summary says it writes it")
	}
}

// wallclockSpec is a minimal taint spec for the engine tests: time.Now is
// the only source.
func wallclockSpec() *TaintSpec {
	return &TaintSpec{
		Name: "test-wallclock",
		CallSource: func(pkg *Package, call *ast.CallExpr) (TaintKind, string, bool) {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return "", "", false
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || fn.Name() != "Now" {
				return "", "", false
			}
			return "wallclock", "time.Now", true
		},
	}
}

func TestTaintSummariesCrossPackage(t *testing.T) {
	t.Parallel()
	// The seedflow fixture spans two packages: the source lives in the
	// timeutil sub-package and only the summary carries it into the root.
	loader, err := NewLoader("testdata/src/seedflow")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	sub, err := loader.Load("testdata/src/seedflow/timeutil", "areyouhuman/internal/chaos/timeutil")
	if err != nil {
		t.Fatalf("load timeutil: %v", err)
	}
	root, err := loader.Load("testdata/src/seedflow", "areyouhuman/internal/chaos")
	if err != nil {
		t.Fatalf("load seedflow: %v", err)
	}
	m := NewModule(loader, sub, root)
	g := m.Graph()
	spec := wallclockSpec()
	sums := g.TaintSummaries(spec)

	taintOf := func(name string) *Taint { return sums[nodeByName(t, g, name)] }
	if taintOf("timeutil.Jitter") == nil {
		t.Fatal("timeutil.Jitter returns time.Now-derived data but its summary is clean")
	}
	jittered := taintOf("chaos.JitteredSeed")
	if jittered == nil {
		t.Fatal("chaos.JitteredSeed inherits taint across the package boundary but its summary is clean")
	}
	path := strings.Join(jittered.Path, " -> ")
	if !strings.Contains(path, "timeutil.Jitter") {
		t.Errorf("cross-package taint path %q does not name timeutil.Jitter", path)
	}
	if taintOf("chaos.FixedSeed") != nil {
		t.Error("chaos.FixedSeed is pure but its summary carries taint")
	}

	// The summary map is cached per spec instance: a second request must be
	// the same map, not a recomputation.
	again := g.TaintSummaries(spec)
	if reflect.ValueOf(sums).Pointer() != reflect.ValueOf(again).Pointer() {
		t.Error("TaintSummaries recomputed instead of returning the cached map")
	}
}

func TestModuleRunParallelDeterminism(t *testing.T) {
	t.Parallel()
	// Same module, same suite, different worker counts: the JSON encoding of
	// the findings must be byte-identical — parallelism is a wall-clock knob
	// only.
	m := loadFixtureModule(t, "allocfree", "areyouhuman/internal/fixture/allocfree")
	roots := m.Packages
	encode := func(parallel int) string {
		findings, _ := m.Run(Analyzers, parallel, roots)
		data, err := json.Marshal(findings)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return string(data)
	}
	base := encode(1)
	if len(base) == len("[]") {
		t.Fatal("determinism test has no findings to compare")
	}
	for _, parallel := range []int{2, 8, 0} {
		if got := encode(parallel); got != base {
			t.Errorf("findings differ between -parallel 1 and -parallel %d:\n%s\nvs\n%s", parallel, base, got)
		}
	}
}
