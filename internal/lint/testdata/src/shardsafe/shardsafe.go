// Package shardsafe exercises the shardsafe analyzer: event closures
// (function literals passed to At/After/Every) must not write variables
// captured from enclosing scopes.
package shardsafe

import "time"

// sched stands in for the simclock scheduling contract; shardsafe matches
// the At/After/Every method names, not the concrete type.
type sched struct{}

func (sched) At(at time.Time, name string, fn func(time.Time))       {}
func (sched) After(d time.Duration, name string, fn func(time.Time)) {}
func (sched) Every(d time.Duration, name string, until func(time.Time) bool, fn func(time.Time)) {
}

var total int

func capturedWrites(s sched) {
	count := 0
	var last time.Time
	s.After(time.Minute, "bad", func(now time.Time) {
		count++    // want `event closure increments captured variable "count"`
		last = now // want `event closure writes captured variable "last"`
		total += 1 // want `event closure writes captured variable "total"`
		local := 0 // declared inside the closure: fine
		local++
		_ = local
	})
	_, _ = count, last
}

func localStateIsFine(s sched) {
	s.At(time.Now(), "good", func(now time.Time) {
		sum := 0
		for i := 0; i < 3; i++ {
			sum += i // loop-local accumulation is closure-local
		}
		_ = sum
	})
}

type box struct{ n int }

func fieldWritesAreOutOfScope(s sched, b *box) {
	// Field writes through captured pointers are deliberately not flagged —
	// they are the mutex-guarded-struct pattern.
	s.Every(time.Minute, "fields", nil, func(time.Time) {
		b.n++
	})
}

func annotatedCaptureIsAllowed(s sched) {
	fired := false
	s.After(time.Second, "annotated", func(time.Time) {
		//phishlint:allow shardsafe driver-rooted setup closure, runs before any worker exists
		fired = true
	})
	_ = fired
}

func readsAreFine(s sched) {
	limit := 10
	hits := make(map[string]int)
	s.After(time.Second, "reads", func(time.Time) {
		if limit > 0 {
			// Map writes mutate shared state too, but through an index
			// expression; the analyzer's contract covers identifier writes.
			hits["a"] = limit
		}
	})
}

func nestedClosureOwnState(s sched) {
	s.After(time.Second, "nested", func(time.Time) {
		n := 0
		inner := func() {
			n++ // captured from the event closure itself, not from outside
		}
		inner()
	})
}
