// Package chaos is a fixture standing in for internal/chaos (the harness
// loads it under that import path): seed draws must derive from the
// splitmix64/FNV helpers, never from stream RNGs, pointers, or raw loop
// counters.
package chaos

import (
	"fmt"
	"math/rand" // want `math/rand advances a shared stream`
	"reflect"
)

// Stubs matching the real chaos helpers the analyzer knows by name.

func mix64(z uint64) uint64 { return z * 0x9E3779B97F4A7C15 }

func SplitSeed(master int64, k int) int64 {
	if k == 0 {
		return master
	}
	return int64(mix64(uint64(master) + uint64(k)))
}

func u01(stream uint64, label string, tick int64) float64 {
	return float64(mix64(stream^uint64(tick))>>11) / (1 << 53)
}

func streamDraw(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func pointerLabel(v any) string {
	return fmt.Sprintf("%p", v) // want `%p formats a pointer value`
}

func reflectedPointer(v any) uint64 {
	return uint64(reflect.ValueOf(v).Pointer()) // want `reflect\.Pointer yields a per-process pointer value`
}

func rawCounterDraws(seed int64, n int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		out = append(out, u01(uint64(i), "spec", 0)) // want `raw loop counter fed into u01; fold it through SplitSeed`
	}
	return out
}

func rawRangeCounter(seed int64, specs []string) uint64 {
	var h uint64
	for i := range specs {
		h ^= mix64(uint64(i)) // want `raw loop counter fed into mix64`
	}
	return h
}

// Non-triggering cases.

func splitDraws(seed int64, n int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		out = append(out, u01(uint64(SplitSeed(seed, i+1)), "spec", 0)) // counters folded through SplitSeed are the sanctioned pattern
	}
	return out
}

func labelDraw(stream uint64, label string, tick int64) float64 {
	return u01(stream, label, tick) // no loop counter in sight
}
