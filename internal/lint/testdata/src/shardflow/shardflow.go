// The fixture impersonates internal/engines. Shardsafe sees each event
// closure in isolation; shardflow pairs them up — a variable written in one
// closure and touched by another is cross-shard aliasing even when every
// closure looks innocent on its own, and the write may hide behind a
// module-local helper call.
package engines

import "sync"

// Scheduler mimics the simclock scheduling contract by method name; the
// analyzer matches At/After/Every selectors.
type Scheduler struct{}

func (Scheduler) At(t int64, fn func())    { fn() }
func (Scheduler) After(d int64, fn func()) { fn() }
func (Scheduler) Every(d int64, fn func()) { fn() }

var (
	crossings int
	observed  int
	total     int
	tally     int

	mu           sync.Mutex
	guardedCount int
)

// Register pairs a writer closure with a reader closure over package state.
func Register(s Scheduler) {
	s.At(1, func() {
		crossings++ // want `"crossings" is written in this event closure and read by the event closure at`
	})
	s.At(2, func() {
		if crossings > 0 {
			observed = crossings
		}
	})
}

// Accumulate has two closures both writing the same counter: each is the
// aliasing write from the other's perspective, so both lines report.
func Accumulate(s Scheduler) {
	s.Every(10, func() {
		total++ // want `"total" is written in this event closure and also written by the event closure at`
	})
	s.Every(20, func() {
		total++ // want `"total" is written in this event closure and also written by the event closure at`
	})
}

func bump()        { tally++ }
func tallyOf() int { return tally }

// Transit hides the accesses behind helper calls; the call-graph summaries
// surface them.
func Transit(s Scheduler) {
	s.After(5, func() {
		bump() // want `"tally" is written in this event closure and read by the event closure at`
	})
	s.After(6, func() {
		_ = tallyOf()
	})
}

// Guarded serialises with a sync lock in both closures, so neither is
// considered — lock ordering is shardsafe/ExecStamp territory.
func Guarded(s Scheduler) {
	s.At(3, func() {
		mu.Lock()
		guardedCount++
		mu.Unlock()
	})
	s.At(4, func() {
		mu.Lock()
		_ = guardedCount
		mu.Unlock()
	})
}

// Isolated touches only closure-local state: private per-event, clean.
func Isolated(s Scheduler) {
	s.At(7, func() {
		local := 0
		local++
		_ = local
	})
}

// Shared captures an enclosing local in two closures; same aliasing, no
// package variable required.
func Shared(s Scheduler) {
	hits := 0
	s.At(8, func() {
		hits++ // want `"hits" is written in this event closure and read by the event closure at`
	})
	s.At(9, func() {
		_ = hits
	})
}
