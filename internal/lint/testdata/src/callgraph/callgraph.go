// Package callgraph exercises graph construction itself: static calls,
// interface dispatch resolved by CHA over value and pointer receivers, and
// recursion cycles that the transitive summaries must converge through.
package callgraph

type Speaker interface{ Speak() string }

type Dog struct{}

func (Dog) Speak() string { return "woof" }

type Cat struct{}

func (*Cat) Speak() string { return "meow" }

// Mute implements nothing; CHA must not drag it in.
type Mute struct{}

func (Mute) Silence() string { return "" }

// Dispatch calls through the interface: a dynamic site with two
// implementations.
func Dispatch(s Speaker) string { return s.Speak() }

// Direct calls a package function: a static, single-callee site.
func Direct() string { return helper() }

func helper() string { return "h" }

var hits int

// UseRec reaches the hits write only through a mutual-recursion cycle.
func UseRec() { recA(3) }

func recA(n int) {
	if n > 0 {
		hits++
		recB(n - 1)
	}
}

func recB(n int) { recA(n) }
