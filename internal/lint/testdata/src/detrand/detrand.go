// Package detrandfix exercises the detrand analyzer: wall-clock reads,
// environment reads, and global-RNG draws are findings inside a sim package;
// seeded constructors, clock-interface calls, and annotated lines are not.
package detrandfix

import (
	"math/rand"
	"os"
	"time"
)

// Clock stands in for simclock.Clock.
type Clock interface {
	Now() time.Time
}

func wallClock() time.Time {
	return time.Now() // want `time\.Now: wall-clock read; take virtual time from simclock`
}

func wallSince(t time.Time) time.Duration {
	return time.Since(t) // want `time\.Since: wall-clock read`
}

func wallUntil(t time.Time) time.Duration {
	return time.Until(t) // want `time\.Until: wall-clock read`
}

func env() string {
	return os.Getenv("HOME") // want `os\.Getenv: environment read`
}

func globalDraw() int {
	return rand.Intn(10) // want `math/rand\.Intn draws from the global RNG`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand\.Shuffle draws from the global RNG`
}

// Non-triggering cases: the sanctioned patterns.

func seededDraw(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // seeded constructor is the sanctioned pattern
	return rng.Intn(10)
}

func virtualNow(c Clock) time.Time {
	return c.Now() // method on the clock interface, not the time package
}

func annotated() time.Time {
	return time.Now() //phishlint:wallclock fixture: deliberate wall read with a justification
}
