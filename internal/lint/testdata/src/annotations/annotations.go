// Package annotationsfix exercises the framework's annotation handling:
// justified annotations suppress findings, and malformed annotations are
// findings in their own right.
package annotationsfix

import "time"

func suppressedTrailing() time.Time {
	return time.Now() //phishlint:wallclock fixture: trailing annotation with a justification
}

func suppressedStandalone() time.Time {
	//phishlint:allow detrand fixture: generic allow with a justification
	return time.Now()
}

func missingJustification() time.Time {
	return time.Now() //phishlint:wallclock // want `needs a justification` `time\.Now: wall-clock read`
}

func unknownToken() time.Time {
	return time.Now() //phishlint:bogus because reasons // want `unknown //phishlint annotation token "bogus"` `time\.Now: wall-clock read`
}

func unknownAnalyzer() time.Time {
	return time.Now() //phishlint:allow nosuchcheck because reasons // want `names unknown analyzer "nosuchcheck"` `time\.Now: wall-clock read`
}

func wrongAnalyzerToken(m map[string]int) time.Time {
	// A sorted annotation does not silence detrand.
	return time.Now() //phishlint:sorted fixture: wrong escape hatch for this finding // want `time\.Now: wall-clock read`
}
