// Package allocfree exercises the hot-path allocation analyzer: every
// heap-escape pattern inside a //phishlint:hotpath function is a finding,
// an unannotated allocating callee is flagged at the hot call site, and the
// clean shapes (fmt.Errorf, constant-size make, stack buffers, annotated
// cold branches) are not.
package allocfree

import (
	"fmt"
	"strings"
)

// Format collects the direct patterns in one body.
//
//phishlint:hotpath
func Format(parts []string, n int) string {
	s := fmt.Sprintf("n=%d", n)   // want `fmt.Sprintf allocates its result and boxes every operand in hotpath function Format`
	j := strings.Join(parts, ",") // want `strings.Join allocates the joined string in hotpath function Format`
	buf := make([]byte, n)        // want `make allocates a per-call buffer in hotpath function Format`
	_ = buf
	return s + j // want `string concatenation allocates the result in hotpath function Format`
}

// Grow accumulates with += in a loop.
//
//phishlint:hotpath
func Grow(parts []string) string {
	out := ""
	for _, p := range parts {
		out += p // want `string \+= allocates the result in hotpath function Grow`
	}
	return out
}

// Capture returns a closure over its parameter.
//
//phishlint:hotpath
func Capture(n int) func() int {
	return func() int { return n } // want `closure captures local n, heap-allocating its environment per call in hotpath function Capture`
}

// Caller stays clean itself but calls an unannotated allocating helper.
//
//phishlint:hotpath
func Caller(n int) string {
	return describe(n) // want `hotpath function Caller calls allocfree.describe, which fmt.Sprintf allocates`
}

func describe(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// Chain calls an annotated helper whose only construction is fmt.Errorf —
// error paths are cold by definition, so both functions are clean.
//
//phishlint:hotpath
func Chain(err error) error {
	if err != nil {
		return describeErr(err)
	}
	return nil
}

//phishlint:hotpath
func describeErr(err error) error {
	return fmt.Errorf("allocfree: %w", err)
}

// AppendWord works entirely in stack buffers and caller-owned slices.
//
//phishlint:hotpath
func AppendWord(dst []byte, word string) []byte {
	var buf [16]byte
	tmp := buf[:0]
	tmp = append(tmp, word...)
	return append(dst, tmp...)
}

// Stage makes a constant-size slice, which stays on the stack.
//
//phishlint:hotpath
func Stage() []byte {
	s := make([]byte, 64)
	return s
}

// Fallback allocates only on an annotated cold branch.
//
//phishlint:hotpath
func Fallback(host string) string {
	if host == "" {
		return "fallback-" + defaultHost() //phishlint:allow allocfree cold fallback, exercised once per study
	}
	return host
}

func defaultHost() string { return "example.test" }

// Unhot is not annotated; its allocations are nobody's business.
func Unhot(parts []string) string {
	return strings.Join(parts, "+")
}

//phishlint:hotpath // want `//phishlint:hotpath must be in the doc comment of a function declaration`
var strayTarget int

var _ = strayTarget
