// Package storage plays an internal package whose errors must not cross
// the facade unwrapped.
package storage

import "errors"

// ErrMissing is the internal sentinel the facade re-exports.
var ErrMissing = errors.New("storage: missing")

// Fetch fails with the sentinel.
func Fetch() error { return ErrMissing }

// Count fails with an ad-hoc error the facade cannot classify.
func Count() (int, error) { return 0, errors.New("storage: uncounted") }
