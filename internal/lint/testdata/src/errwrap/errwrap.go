// The fixture impersonates the facade package: its declarations ARE the
// sanctioned vocabulary (errwrap reads sentinels and typed errors off the
// root package itself), and every return path below is one classification
// case — raw internal error, erased cause chain, inline errors.New,
// undisciplined helper, and the clean twins of each.
package areyouhuman

import (
	"errors"
	"fmt"

	"areyouhuman/internal/storage"
)

// ErrGone is a root sentinel.
var ErrGone = errors.New("areyouhuman: gone")

// ErrMissing re-exports the internal sentinel, sanctioning both objects.
var ErrMissing = storage.ErrMissing

// NotFoundError is a root typed error.
type NotFoundError struct{ Name string }

func (e *NotFoundError) Error() string { return "areyouhuman: not found: " + e.Name }

// Raw forwards an internal error without wrapping it.
func Raw() error {
	return storage.Fetch() // want `error from storage.Fetch crosses the facade unwrapped`
}

// Erased wraps with %v, severing the cause chain.
func Erased() error {
	if err := storage.Fetch(); err != nil {
		return fmt.Errorf("areyouhuman: fetch failed: %v", err) // want `fmt.Errorf without %w erases the cause chain at the facade boundary`
	}
	return nil
}

// Inline mints an unclassifiable error at the boundary.
func Inline() error {
	return errors.New("areyouhuman: busted") // want `inline errors.New escapes the facade unclassifiable`
}

// Indirect inherits Raw's lack of discipline through the fixpoint.
func Indirect() error {
	return Raw() // want `call to areyouhuman.Raw, which returns undisciplined errors`
}

// ForwardBad forwards a multi-result internal call; the tuple's error is
// storage's ad-hoc one.
func ForwardBad() (int, error) {
	return storage.Count() // want `error from storage.Count crosses the facade unwrapped`
}

// Wrapped is Erased's clean twin: %w keeps the chain.
func Wrapped() error {
	if err := storage.Fetch(); err != nil {
		return fmt.Errorf("areyouhuman: fetch: %w", err)
	}
	return nil
}

// Sentinel returns sanctioned vocabulary, both spellings.
func Sentinel(kind int) error {
	if kind == 0 {
		return ErrGone
	}
	return ErrMissing
}

// Typed returns a root typed error, classifiable by errors.As.
func Typed(name string) error {
	return &NotFoundError{Name: name}
}

// Forward forwards a disciplined root helper's tuple.
func Forward() (int, error) {
	return helper()
}

func helper() (int, error) {
	n, err := storage.Count()
	if err != nil {
		return 0, fmt.Errorf("areyouhuman: count: %w", err)
	}
	return n, nil
}

// pingA and pingB only ever return each other's results; the optimistic
// fixpoint must keep the cycle disciplined.
func pingA(n int) error {
	if n == 0 {
		return nil
	}
	return pingB(n - 1)
}

func pingB(n int) error {
	if n == 0 {
		return ErrGone
	}
	return pingA(n - 1)
}
