// Package metriclabelfix exercises the metriclabel analyzer: metric names
// must be compile-time lowercase snake_case strings at every Registry call
// site, and journal event kinds the same at every Recorder.Emit site.
package metriclabelfix

import (
	"fmt"

	"areyouhuman/internal/journal"
	"areyouhuman/internal/telemetry"
)

// MetricGood is the sanctioned shape: a named string constant.
const MetricGood = "fixture_events_total"

func dynamicName(reg *telemetry.Registry, replica int) {
	reg.Counter(fmt.Sprintf("events_%d_total", replica)).Inc() // want `dynamic metric name passed to Registry\.Counter`
}

func dynamicGauge(reg *telemetry.Registry, name string) {
	reg.Gauge(name).Set(1) // want `dynamic metric name passed to Registry\.Gauge`
}

func upperCase(reg *telemetry.Registry) {
	reg.Counter("EventsTotal").Inc() // want `metric name "EventsTotal" is not lowercase snake_case`
}

func badChars(reg *telemetry.Registry) {
	reg.Histogram("latency-seconds", nil).Observe(1) // want `metric name "latency-seconds" is not lowercase snake_case`
}

func doubleUnderscore(reg *telemetry.Registry) {
	reg.Describe("bad__name", "help") // want `metric name "bad__name" is not lowercase snake_case`
}

// Non-triggering cases.

func literalName(reg *telemetry.Registry) {
	reg.Counter("events_total", "kind", "fixture").Inc() // snake_case literal
}

func constName(reg *telemetry.Registry) {
	reg.Gauge(MetricGood).Set(1) // constants resolve at compile time
}

func labelsAreData(reg *telemetry.Registry, engine string) {
	reg.Counter("engine_probes_total", "engine", engine).Inc() // label values are data, not names
}

// Journal event kinds obey the same rule at Recorder.Emit sites.

func dynamicKind(rec *journal.Recorder, stage string) {
	rec.Emit("stage_"+stage, journal.Fields{}) // want `dynamic journal event kind passed to Recorder\.Emit`
}

func upperKind(rec *journal.Recorder) {
	rec.Emit("CrawlVisit", journal.Fields{}) // want `journal event kind "CrawlVisit" is not lowercase snake_case`
}

func constKind(rec *journal.Recorder) {
	rec.Emit(journal.KindDeploy, journal.Fields{URL: "https://x.example/p"}) // the Kind* constants are the sanctioned shape
}

func literalKind(rec *journal.Recorder) {
	rec.Emit("custom_probe", journal.Fields{}) // snake_case literal
}

type fake struct{}

func (fake) Counter(name string) fake { return fake{} }

func (fake) Emit(kind string) {}

func notARegistry(f fake) {
	f.Counter("AnythingGoes") // a method merely named Counter on another type is not checked
	f.Emit("AnythingGoes")    // likewise Emit on another type
}
