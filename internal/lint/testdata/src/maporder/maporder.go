// Package maporderfix exercises the maporder analyzer: map ranges feeding
// slices, output, or telemetry are findings; order-insensitive bodies, the
// collect-then-sort idiom, and annotated ranges are not.
package maporderfix

import (
	"fmt"
	"sort"
	"sync"

	"areyouhuman/internal/telemetry"
)

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `this range appends to a slice`
		keys = append(keys, k)
	}
	return keys
}

func printing(m map[string]int) {
	for k, v := range m { // want `this range writes formatted output \(fmt\.Printf\)`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func feedsTelemetry(m map[string]int, reg *telemetry.Registry) {
	for k := range m { // want `this range feeds telemetry \(Inc\)`
		reg.Counter("maporder_fixture_total", "key", k).Inc()
	}
}

func writerSink(m map[string]int) string {
	var b sortableBuilder
	for k := range m { // want `this range writes output \(WriteString\)`
		b.WriteString(k)
	}
	return b.String()
}

type sortableBuilder struct{ parts []string }

func (b *sortableBuilder) WriteString(s string) { b.parts = append(b.parts, s) }
func (b *sortableBuilder) String() string       { return fmt.Sprint(b.parts) }

// Non-triggering cases.

func sum(m map[string]int) int {
	total := 0
	for _, v := range m { // order-insensitive fold
		total += v
	}
	return total
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectUnlockSort(m map[string]int, mu *sync.RWMutex) []string {
	mu.RLock()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	mu.RUnlock() // statements not touching the slice are skipped
	sort.Strings(keys)
	return keys
}

func twoCollectsOneSort(a, b map[string]int) []string {
	var keys []string
	for k := range a {
		keys = append(keys, k)
	}
	for k := range b { // sibling collect loop into the same slice
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fieldCollect(m map[string]int) []string {
	var row struct{ Keys []string }
	for k := range m {
		row.Keys = append(row.Keys, k)
	}
	sort.Strings(row.Keys)
	return row.Keys
}

func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs { // slices iterate in order; only maps are flagged
		out = append(out, x)
	}
	return out
}

func annotated(m map[string]int) []string {
	var keys []string
	//phishlint:sorted fixture: the caller sorts; order provably harmless
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func collectThenHelperSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // the sort is factored into a same-package helper
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func collectHelperAssign(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // `xs = helper(xs)` shape of the same idiom
		keys = append(keys, k)
	}
	keys = dedupSorted(keys)
	return keys
}

func collectHelperNoSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `this range appends to a slice`
		keys = append(keys, k)
	}
	reverse(keys) // a helper that does NOT sort is no redemption
	return keys
}

func sortKeys(xs []string) { sort.Strings(xs) }

func dedupSorted(xs []string) []string {
	sort.Strings(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func reverse(xs []string) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}
