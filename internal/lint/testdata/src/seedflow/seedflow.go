// The fixture impersonates internal/chaos. Every wall-clock read lives in
// the timeutil sub-package, so seedpure — scanning one package at a time —
// sees nothing wrong in either half; seedflow follows the value through the
// call chain and names it at the sink.
package chaos

import "areyouhuman/internal/chaos/timeutil"

func mix64(z uint64) uint64 {
	z ^= z >> 30
	return z * 0x9E3779B97F4A7C15
}

// SplitSeed is the deriver whose inputs must stay pure.
func SplitSeed(master int64, k int) int64 {
	return int64(mix64(uint64(master) + uint64(k)))
}

// JitteredSeed launders a wall-clock read through the helper call before
// folding it into the deriver. The flow-insensitive engine also taints the
// derived result, so the exported return is flagged as well.
func JitteredSeed(master int64) int64 {
	j := timeutil.Jitter()
	s := SplitSeed(master, int(j)) // want `wall-clock-derived value \(time.Now via timeutil.Jitter\) reaches SplitSeed`
	return s                       // want `returned from exported JitteredSeed`
}

// FixedSeed is the non-triggering twin: identical shape, pure helper.
func FixedSeed(master int64) int64 {
	f := timeutil.Fixed()
	return SplitSeed(master, int(f))
}

// World stands in for sim-visible state.
type World struct{ Seed int64 }

// Stamp stores a laundered clock read into sim-visible state.
func Stamp(w *World) {
	w.Seed = timeutil.Jitter() // want `wall-clock-derived value \(time.Now via timeutil.Jitter\) stored into sim-visible state`
}

// Sanctioned acknowledges the read with the wallclock escape hatch; the
// annotation keeps the finding from firing.
func Sanctioned(w *World) {
	w.Seed = timeutil.Jitter() //phishlint:wallclock fixture-sanctioned diagnostic stamp
}

// SeededStamp is Stamp's clean twin.
func SeededStamp(w *World, seed int64) {
	w.Seed = SplitSeed(seed, 1)
}
