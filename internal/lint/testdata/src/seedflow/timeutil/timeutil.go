// Package timeutil plays a neutral helper package: seedpure does not
// police it, so its wall-clock read is invisible to the per-package
// analyzer. The taint only becomes reportable when a seed-derivation
// package consumes the returned value.
package timeutil

import "time"

// Jitter returns wall-clock-derived nanoseconds — legal here, poison once
// it flows into a seed-derivation package.
func Jitter() int64 { return time.Now().UnixNano() }

// Fixed is Jitter's seed-pure twin.
func Fixed() int64 { return 42 }
