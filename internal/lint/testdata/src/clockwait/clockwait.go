// Package clockwaitfix exercises the clockwait analyzer: wall-clock waits
// are findings inside a sim package; scheduler events and plain context use
// are not.
package clockwaitfix

import (
	"context"
	"time"
)

// Scheduler stands in for simclock.Scheduler.
type Scheduler interface {
	At(t time.Time, name string, fn func())
}

func sleepy() {
	time.Sleep(time.Second) // want `time\.Sleep: blocks the event loop on the wall clock`
}

func waiter() <-chan time.Time {
	return time.After(time.Minute) // want `time\.After: wall-clock timer`
}

func ticker() <-chan time.Time {
	return time.Tick(time.Minute) // want `time\.Tick: wall-clock ticker`
}

func timer() *time.Timer {
	return time.NewTimer(time.Second) // want `time\.NewTimer: wall-clock timer`
}

func deadline(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, time.Second) // want `context\.WithTimeout: wall-clock deadline`
}

// Non-triggering cases.

func scheduled(s Scheduler, now time.Time) {
	s.At(now.Add(time.Hour), "probe", func() {}) // waits as scheduler events are the sanctioned pattern
}

func cancelable(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx) // cancellation without a wall deadline is fine
}

func annotated() {
	time.Sleep(time.Millisecond) //phishlint:wallclock fixture: deliberate wall sleep with a justification
}
