// Package chaos plays the seed-derivation package whose inputs the
// boundary check protects.
package chaos

// Plan derives a plan stream from a caller-provided seed.
func Plan(seed int64) int64 { return int64(uint64(seed) * 0x9E3779B97F4A7C15) }
