// The fixture impersonates the facade: an unscoped package may read the
// clock for its own purposes, but handing the value across the
// seed-derivation boundary launders nondeterminism into the planner —
// seedflow flags the argument at the boundary call.
package areyouhuman

import (
	"time"

	"areyouhuman/internal/chaos"
)

// LaunderedPlan hands a wall-clock read into the seed-derivation package.
func LaunderedPlan() int64 {
	now := time.Now().UnixNano()
	return chaos.Plan(now) // want `wall-clock-derived value \(time.Now\) passed into chaos.Plan`
}

// SeededPlan is the clean twin: the input is caller-provided.
func SeededPlan(seed int64) int64 {
	return chaos.Plan(seed)
}
