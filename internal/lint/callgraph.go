package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// This file is the whole-module half of the framework: a types-resolved call
// graph over every package the Loader has seen. Package-local analyzers
// (detrand, maporder, ...) answer "does this line do X"; the module analyzers
// (seedflow, shardflow, allocfree, errwrap) answer "can a value produced
// here *reach* Y through any chain of calls" — and that question needs one
// graph spanning function boundaries, interface dispatch included.
//
// The graph is deliberately an over-approximation in the places that keep it
// cheap and deterministic:
//
//   - interface method calls resolve by class-hierarchy analysis: every named
//     type in the module that implements the interface contributes its
//     method as a possible callee (this is how EventScheduler.At resolves to
//     both the serial Scheduler and the ShardedScheduler);
//   - calls through plain function values (a closure stored in a variable or
//     field) stay unresolved — the analyzers that care treat unresolved
//     callees conservatively;
//   - function literals belong to their enclosing declaration: a call made
//     inside a closure is an edge out of the declared function that contains
//     the closure.

// A CallNode is one declared function or method of the module, with its
// resolved outgoing call sites.
type CallNode struct {
	// Func is the type-checker's object for the declaration.
	Func *types.Func
	// Decl is the source declaration (Body may be nil for assembly stubs).
	Decl *ast.FuncDecl
	// Pkg is the package the declaration lives in.
	Pkg *Package
	// Sites lists every call expression in the declaration (including calls
	// made inside nested function literals), in source order.
	Sites []*CallSite

	siteByCall map[*ast.CallExpr]*CallSite
}

// Name returns a human-readable name: "pkgname.Func" or
// "pkgname.(*Recv).Method".
func (n *CallNode) Name() string {
	name := n.Func.Name()
	if recv := n.Func.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if n.Func.Pkg() != nil {
		return n.Func.Pkg().Name() + "." + name
	}
	return name
}

// A CallSite is one call expression with its resolved module-local callees.
// Callees is empty for calls that leave the module (stdlib) and for calls
// through plain function values; Dynamic marks interface dispatch, where
// Callees lists every module implementation.
type CallSite struct {
	Call    *ast.CallExpr
	Callees []*CallNode
	Dynamic bool
}

// A CallGraph is the module-wide call graph. Build it once per Module (see
// Module.Graph); construction is deterministic — nodes and edges come out in
// source order — so every analysis over it is too.
type CallGraph struct {
	// Nodes indexes every declared function of the analyzed packages.
	Nodes map[*types.Func]*CallNode

	nodes []*CallNode // deterministic iteration order
	pkgs  []*Package

	mu          sync.Mutex // guards the lazy caches below
	taintCache  map[*TaintSpec]map[*CallNode]*Taint
	accessCache map[*CallNode]*globalAccess
}

// buildCallGraph constructs the graph over pkgs (sorted by import path).
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: map[*types.Func]*CallNode{}, pkgs: pkgs}
	// Pass 1: a node per function declaration.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CallNode{Func: fn, Decl: fd, Pkg: pkg, siteByCall: map[*ast.CallExpr]*CallSite{}}
				g.Nodes[fn] = node
				g.nodes = append(g.nodes, node)
			}
		}
	}
	// Pass 2: resolve call sites. CHA results are memoized per
	// (interface, method) pair.
	type ifaceKey struct {
		iface  *types.Interface
		method string
	}
	chaCache := map[ifaceKey][]*CallNode{}
	cha := func(iface *types.Interface, method string) []*CallNode {
		key := ifaceKey{iface, method}
		if impls, ok := chaCache[key]; ok {
			return impls
		}
		var impls []*CallNode
		for _, pkg := range pkgs {
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok || types.IsInterface(named) {
					continue
				}
				ptr := types.NewPointer(named)
				if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
					continue
				}
				ms := types.NewMethodSet(ptr)
				for i := 0; i < ms.Len(); i++ {
					m := ms.At(i).Obj().(*types.Func)
					if m.Name() != method {
						continue
					}
					if node, ok := g.Nodes[m]; ok {
						impls = append(impls, node)
					}
				}
			}
		}
		chaCache[key] = impls
		return impls
	}
	for _, node := range g.nodes {
		if node.Decl.Body == nil {
			continue
		}
		pkg := node.Pkg
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			site := &CallSite{Call: call}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
					if callee, ok := g.Nodes[fn]; ok {
						site.Callees = []*CallNode{callee}
					}
				}
			case *ast.SelectorExpr:
				sel := pkg.Info.Selections[fun]
				if sel != nil && sel.Kind() == types.MethodVal && types.IsInterface(sel.Recv()) {
					if m, ok := sel.Obj().(*types.Func); ok {
						if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
							site.Dynamic = true
							site.Callees = cha(iface, m.Name())
						}
					}
				} else if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
					if callee, ok := g.Nodes[fn]; ok {
						site.Callees = []*CallNode{callee}
					}
				}
			}
			node.Sites = append(node.Sites, site)
			node.siteByCall[call] = site
			return true
		})
	}
	return g
}

// SortedNodes returns every node in deterministic (package path, source
// position) order.
func (g *CallGraph) SortedNodes() []*CallNode { return g.nodes }

// CalleesOf resolves a call expression made inside node to its module-local
// callees (nil for unresolved or extra-module calls).
func (g *CallGraph) CalleesOf(node *CallNode, call *ast.CallExpr) []*CallNode {
	if node == nil {
		return nil
	}
	if site, ok := node.siteByCall[call]; ok {
		return site.Callees
	}
	return nil
}

// NodeAt returns the node whose declaration encloses pos, or nil. Used by
// tests and message rendering.
func (g *CallGraph) NodeAt(pos token.Pos) *CallNode {
	for _, n := range g.nodes {
		if n.Decl.Pos() <= pos && pos <= n.Decl.End() {
			return n
		}
	}
	return nil
}

// globalAccess summarizes which package-level variables a function reads and
// writes, directly or through any chain of module-local calls. Functions
// that take a lock (a Lock/RLock call anywhere in the body) are "guarded":
// their accesses are serialized by that lock and deliberately dropped from
// the summary — ordering of guarded state is shardsafe/ExecStamp territory,
// not aliasing territory.
type globalAccess struct {
	reads   map[*types.Var]token.Pos
	writes  map[*types.Var]token.Pos
	guarded bool
}

// GlobalAccessSummaries computes (and caches) the transitive package-level
// variable access summary for every node, iterating to a fixpoint so
// recursion and mutual recursion converge.
func (g *CallGraph) GlobalAccessSummaries() map[*CallNode]*globalAccess {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.accessCache != nil {
		return g.accessCache
	}
	sums := map[*CallNode]*globalAccess{}
	// Direct pass.
	for _, node := range g.nodes {
		sums[node] = directGlobalAccess(node)
	}
	// Transitive closure: fold callee summaries into callers until stable.
	for changed := true; changed; {
		changed = false
		for _, node := range g.nodes {
			sum := sums[node]
			if sum.guarded {
				continue
			}
			for _, site := range node.Sites {
				for _, callee := range site.Callees {
					cs := sums[callee]
					if cs == nil || cs.guarded {
						continue
					}
					for v, pos := range cs.reads {
						if _, ok := sum.reads[v]; !ok {
							sum.reads[v] = pos
							changed = true
						}
					}
					for v, pos := range cs.writes {
						if _, ok := sum.writes[v]; !ok {
							sum.writes[v] = pos
							changed = true
						}
					}
				}
			}
		}
	}
	g.accessCache = sums
	return sums
}

// directGlobalAccess scans one declaration for package-level variable reads
// and writes.
func directGlobalAccess(node *CallNode) *globalAccess {
	sum := &globalAccess{reads: map[*types.Var]token.Pos{}, writes: map[*types.Var]token.Pos{}}
	if node.Decl.Body == nil {
		return sum
	}
	info := node.Pkg.Info
	pkgScope := node.Pkg.Types.Scope()
	classify := func(id *ast.Ident, write bool) {
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() != pkgScope {
			return
		}
		if write {
			if _, ok := sum.writes[v]; !ok {
				sum.writes[v] = id.Pos()
			}
		} else if _, ok := sum.reads[v]; !ok {
			sum.reads[v] = id.Pos()
		}
	}
	writeTargets := map[*ast.Ident]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					writeTargets[id] = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				writeTargets[id] = true
			}
		case *ast.CallExpr:
			if isLockCall(info, n) {
				sum.guarded = true
			}
		}
		return true
	})
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			classify(id, writeTargets[id])
		}
		return true
	})
	return sum
}

// isLockCall reports whether call is a Lock or RLock method call (the
// sync.Mutex/RWMutex serialization idiom).
func isLockCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}

// sortedVars returns vars in deterministic (name, position) order.
func sortedVars(set map[*types.Var]token.Pos) []*types.Var {
	out := make([]*types.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name() != out[j].Name() {
			return out[i].Name() < out[j].Name()
		}
		return out[i].Pos() < out[j].Pos()
	})
	return out
}
