package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Seedflow is the interprocedural upgrade of seedpure: where seedpure flags
// the forbidden constructs syntactically, one package at a time, seedflow
// tracks the *values* — a wall-clock read, a math/rand draw, or a
// map-iteration-order selection — through any chain of module-local calls,
// and reports when such a value reaches sim-visible state in the
// seed-derivation packages (chaos, core, campaign, population). A helper in
// a neutral package that returns time.Now-derived data is invisible to
// seedpure; the moment a scoped package folds that return into SplitSeed,
// stores it into a struct, or returns it from an exported function,
// seedflow names the whole chain.
//
// Sinks, inside the scoped packages:
//
//   - a tainted argument to the seed-derivation helpers (SplitSeed, mix64,
//     u01, splitmix64);
//   - a tainted value stored through a field or index (sim-visible state);
//   - a tainted value returned from an exported function (it escapes to
//     callers that trust the package's purity contract).
//
// And in any module package: a tainted argument passed into a scoped
// package's function — laundering a clock read through cmd/ or the facade
// before handing it to the planner is the same bug one call later.
//
// Sources on lines annotated //phishlint:wallclock are sanctioned
// (telemetry's throughput metrics) and do not seed the engine.
var Seedflow = &Analyzer{
	Name:      "seedflow",
	Doc:       "no wall-clock, math/rand, or map-order derived value may reach seed-derivation state through any call chain",
	Tokens:    []string{"wallclock"},
	RunModule: runSeedflow,
}

// seedDerivers are the helpers whose inputs must be pure in (seed, index).
var seedDerivers = map[string]bool{"SplitSeed": true, "mix64": true, "u01": true, "splitmix64": true}

func runSeedflow(pass *ModulePass) {
	m := pass.Module
	spec := &TaintSpec{
		Name:         "seedflow",
		MapSelection: true,
		CallSource: func(pkg *Package, call *ast.CallExpr) (TaintKind, string, bool) {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return "", "", false
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return "", "", false
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					return "wallclock", "time." + fn.Name(), true
				}
			case "math/rand", "math/rand/v2":
				// Package-level draws advance the shared global stream, so
				// their values depend on call order across the whole
				// process. Methods on a locally-seeded generator
				// (rand.New(rand.NewSource(seed))) are order-independent
				// per construction site — detrand already polices which
				// constructors are acceptable where.
				sig, _ := fn.Type().(*types.Signature)
				if sig != nil && sig.Recv() == nil && !detrandRandOK[fn.Name()] {
					return "mathrand", fn.Pkg().Path() + "." + fn.Name(), true
				}
			}
			return "", "", false
		},
		SkipSource: func(pkg *Package, pos token.Pos) bool {
			// Sanctioned sources: annotated lines, and anything inside the
			// exempt substrates (simclock IS the wall-clock boundary — a
			// value it returns is already quarantined behind its API).
			return simExempt[pkg.Path] || m.Annotated("seedflow", pos)
		},
	}
	sums := pass.Graph.TaintSummaries(spec)
	for _, node := range pass.Graph.SortedNodes() {
		if node.Decl.Body == nil || simExempt[node.Pkg.Path] {
			continue
		}
		ft := pass.Graph.FuncTaints(spec, node, sums)
		if len(ft.TaintedVars()) == 0 && !anyCallTaint(ft, node) {
			// Fast path: nothing tainted flows through this function at all.
			continue
		}
		if seedpureScope[node.Pkg.Path] {
			checkScopedSinks(pass, ft, node)
		}
		checkScopeEntry(pass, ft, node)
	}
}

// anyCallTaint reports whether any call in node returns taint per the
// summaries or originates it — the cheap screen before sink checking.
func anyCallTaint(ft *FuncTaints, node *CallNode) bool {
	found := false
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && ft.callTaint(call) != nil {
			found = true
		}
		return !found
	})
	return found
}

// checkScopedSinks reports tainted values reaching sim-visible state inside
// a seed-derivation package.
func checkScopedSinks(pass *ModulePass, ft *FuncTaints, node *CallNode) {
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			name := calleeSimpleName(info, n)
			if !seedDerivers[name] {
				return true
			}
			for _, arg := range n.Args {
				if t := ft.ExprTaint(arg); t != nil {
					pass.Reportf(arg.Pos(), "%s reaches %s; seed draws must be pure functions of (seed, index, label)", describeTaint(t), name)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				switch ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					if t := ft.ExprTaint(n.Rhs[i]); t != nil {
						pass.Reportf(n.Rhs[i].Pos(), "%s stored into sim-visible state; derive it from the world seed instead", describeTaint(t))
					}
				}
			}
		}
		return true
	})
	if !node.Decl.Name.IsExported() {
		return
	}
	// Exported-return sink: walk returns of the declaration itself, pruning
	// nested closures (their returns answer to their own signatures).
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if t := ft.ExprTaint(res); t != nil {
					pass.Reportf(res.Pos(), "%s returned from exported %s; callers rely on this package's purity contract", describeTaint(t), node.Decl.Name.Name)
				}
			}
		}
		return true
	})
}

// checkScopeEntry reports tainted arguments handed into a seed-derivation
// package from outside it — laundering at the boundary.
func checkScopeEntry(pass *ModulePass, ft *FuncTaints, node *CallNode) {
	for _, site := range node.Sites {
		for _, callee := range site.Callees {
			if !seedpureScope[callee.Pkg.Path] || callee.Pkg == node.Pkg {
				continue
			}
			if seedpureScope[node.Pkg.Path] && seedDerivers[callee.Func.Name()] {
				continue // already reported by the deriver-argument sink
			}
			for _, arg := range site.Call.Args {
				if t := ft.ExprTaint(arg); t != nil {
					pass.Reportf(arg.Pos(), "%s passed into %s; the seed-derivation packages must only see seed-pure inputs", describeTaint(t), callee.Name())
				}
			}
			break // one callee resolution is enough to classify the site
		}
	}
}

// calleeSimpleName resolves the simple name of a called function, "" if
// unknown (ModulePass variant of calleeName, which needs a *Pass).
func calleeSimpleName(info *types.Info, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f.Name()
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f.Name()
		}
	}
	return ""
}

// describeTaint renders a taint for a finding message: the source, plus the
// call chain it rode in on.
func describeTaint(t *Taint) string {
	kind := map[TaintKind]string{
		"wallclock": "wall-clock",
		"mathrand":  "math/rand",
		"maporder":  "map-iteration-order",
	}[t.Kind]
	if kind == "" {
		kind = string(t.Kind)
	}
	desc := kind + "-derived value (" + t.Desc
	if len(t.Path) > 0 {
		desc += " via " + strings.Join(t.Path, " -> ")
	}
	return desc + ")"
}
