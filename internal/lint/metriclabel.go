package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Metriclabel requires telemetry metric names to be lowercase snake_case
// strings whose value is known at compile time (a literal or a string
// constant). The metrics Registry interns families by name and the replica
// sharding (Set.ForReplica, Registry.WithLabels) relies on every world
// asking for the same family strings: a dynamically built name — fmt.Sprintf
// with a replica index, say — forks the family per world and breaks both the
// aggregated snapshot and the Prometheus exposition (which additionally
// rejects non-[a-z0-9_] name characters).
//
// Checked call sites: Counter, Gauge, Histogram, and Describe on
// telemetry.Registry. Labels are not checked — label *values* are data.
var Metriclabel = &Analyzer{
	Name: "metriclabel",
	Doc:  "telemetry metric names must be constant lowercase snake_case strings",
	Run:  runMetriclabel,
}

var metriclabelMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Describe":  true,
}

func runMetriclabel(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !metriclabelMethods[sel.Sel.Name] {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !isTelemetryRegistry(sig.Recv().Type()) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			nameArg := call.Args[0]
			tv, ok := pass.Info.Types[nameArg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(nameArg.Pos(), "dynamic metric name passed to Registry.%s; names must be compile-time constants so families agree across replicas", sel.Sel.Name)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !isSnakeCase(name) {
				pass.Reportf(nameArg.Pos(), "metric name %q is not lowercase snake_case ([a-z0-9_], starting with a letter)", name)
			}
			return true
		})
	}
}

func isTelemetryRegistry(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Path() == "areyouhuman/internal/telemetry"
}

// isSnakeCase reports whether s matches ^[a-z][a-z0-9]*(_[a-z0-9]+)*$.
func isSnakeCase(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	prevUnderscore := false
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_':
			if prevUnderscore {
				return false
			}
			prevUnderscore = true
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			prevUnderscore = false
		default:
			return false
		}
	}
	return !prevUnderscore
}
