package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Metriclabel requires telemetry metric names to be lowercase snake_case
// strings whose value is known at compile time (a literal or a string
// constant). The metrics Registry interns families by name and the replica
// sharding (Set.ForReplica, Registry.WithLabels) relies on every world
// asking for the same family strings: a dynamically built name — fmt.Sprintf
// with a replica index, say — forks the family per world and breaks both the
// aggregated snapshot and the Prometheus exposition (which additionally
// rejects non-[a-z0-9_] name characters).
//
// The same rule covers journal event kinds: Recorder.Emit's kind is the
// stable vocabulary phishtrace, the diff tool, and the dashboard key on. A
// computed kind would fork that vocabulary per call site, so kinds too must
// be constant lowercase snake_case strings (the journal.Kind* constants).
//
// Checked call sites: Counter, Gauge, Histogram, and Describe on
// telemetry.Registry, and Emit on journal.Recorder. Labels are not checked —
// label *values* are data.
var Metriclabel = &Analyzer{
	Name: "metriclabel",
	Doc:  "telemetry metric names and journal event kinds must be constant lowercase snake_case strings",
	Run:  runMetriclabel,
}

var metriclabelMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Describe":  true,
}

func runMetriclabel(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (!metriclabelMethods[sel.Sel.Name] && sel.Sel.Name != "Emit") {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			// Which vocabulary is this call site naming into?
			var what, where string
			switch {
			case metriclabelMethods[sel.Sel.Name] && isTelemetryRegistry(sig.Recv().Type()):
				what, where = "metric name", "Registry."+sel.Sel.Name
			case sel.Sel.Name == "Emit" && isJournalRecorder(sig.Recv().Type()):
				what, where = "journal event kind", "Recorder.Emit"
			default:
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			nameArg := call.Args[0]
			tv, ok := pass.Info.Types[nameArg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(nameArg.Pos(), "dynamic %s passed to %s; names must be compile-time constants so families agree across replicas", what, where)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !isSnakeCase(name) {
				pass.Reportf(nameArg.Pos(), "%s %q is not lowercase snake_case ([a-z0-9_], starting with a letter)", what, name)
			}
			return true
		})
	}
}

func isTelemetryRegistry(t types.Type) bool {
	return isNamedType(t, "Registry", "areyouhuman/internal/telemetry")
}

func isJournalRecorder(t types.Type) bool {
	return isNamedType(t, "Recorder", "areyouhuman/internal/journal")
}

func isNamedType(t types.Type, name, pkgPath string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isSnakeCase reports whether s matches ^[a-z][a-z0-9]*(_[a-z0-9]+)*$.
func isSnakeCase(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	prevUnderscore := false
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_':
			if prevUnderscore {
				return false
			}
			prevUnderscore = true
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			prevUnderscore = false
		default:
			return false
		}
	}
	return !prevUnderscore
}
