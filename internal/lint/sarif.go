package lint

import "encoding/json"

// Minimal SARIF 2.1.0 export, so CI systems and editors that speak the
// standard can ingest phishlint findings without a custom adapter. Only the
// subset the findings need is modelled; field order is fixed by the struct
// definitions, so the output is byte-deterministic for a given findings
// slice.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF renders findings as a SARIF 2.1.0 log. The rule table lists every
// analyzer in suite plus the framework's "annotation" pseudo-analyzer;
// results reference rules by id and keep the findings' (already sorted)
// order.
func SARIF(suite []*Analyzer, findings []Finding) ([]byte, error) {
	rules := []sarifRule{{ID: "annotation", ShortDescription: sarifMessage{Text: "malformed //phishlint annotation"}}}
	for _, a := range suite {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: f.File},
				Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "phishlint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
