package lint

import (
	"go/ast"
	"go/types"
)

// Detrand forbids nondeterministic value sources in simulation packages:
// wall-clock reads (time.Now, time.Since, time.Until), environment reads
// (os.Getenv, os.LookupEnv, os.Environ), and draws from the global math/rand
// stream (rand.Intn and friends without an explicit *rand.Rand). Virtual
// time must come from simclock and randomness from the world's seeded
// source — a single violation on an output path breaks the bit-identity the
// replica, cache, and chaos tests all pin.
//
// The seeded constructors rand.New, rand.NewSource, and rand.NewZipf stay
// legal: they consume an explicit seed, which is exactly the sanctioned
// pattern. The escape hatch for deliberate wall-clock reads (telemetry's
// dual sim/wall timestamps) is //phishlint:wallclock <why>.
var Detrand = &Analyzer{
	Name:   "detrand",
	Doc:    "forbid wall-clock, environment, and global-RNG reads in sim packages",
	Tokens: []string{"wallclock"},
	Run:    runDetrand,
}

// detrandForbidden maps package path -> function name -> short reason.
var detrandForbidden = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read; take virtual time from simclock",
		"Since": "wall-clock read; take virtual time from simclock",
		"Until": "wall-clock read; take virtual time from simclock",
	},
	"os": {
		"Getenv":    "environment read; runs must be pure functions of (seed, config, plan)",
		"LookupEnv": "environment read; runs must be pure functions of (seed, config, plan)",
		"Environ":   "environment read; runs must be pure functions of (seed, config, plan)",
	},
}

// detrandRandOK lists the math/rand package-level functions that remain
// legal in sim packages: explicit-seed constructors, not global-stream draws.
var detrandRandOK = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDetrand(pass *Pass) {
	if !IsSimPackage(pass.Path) {
		return
	}
	forEachPkgFuncUse(pass, func(id *ast.Ident, fn *types.Func) {
		pkg := fn.Pkg().Path()
		if reason, ok := detrandForbidden[pkg][fn.Name()]; ok {
			pass.Reportf(id.Pos(), "%s.%s: %s", pkg, fn.Name(), reason)
			return
		}
		if (pkg == "math/rand" || pkg == "math/rand/v2") && !detrandRandOK[fn.Name()] {
			pass.Reportf(id.Pos(), "%s.%s draws from the global RNG; use the world's seeded *rand.Rand", pkg, fn.Name())
		}
	})
}

// forEachPkgFuncUse invokes fn for every use of a package-level function
// (methods have receivers and are skipped — clock.Now() is the sanctioned
// call, time.Now() the forbidden one).
func forEachPkgFuncUse(pass *Pass, visit func(*ast.Ident, *types.Func)) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			visit(id, fn)
			return true
		})
	}
}
