package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Forward taint propagation over the call graph. A TaintSpec names the
// sources; the engine computes, per function, whether any return value can
// carry a source-derived value, iterating summaries to a fixpoint so
// recursion and mutual recursion converge. Analyzers then run the
// intraprocedural engine (FuncTaints) over the bodies they care about and
// ask ExprTaint whether a given expression is derived from a source —
// either directly, or through a call whose summary says "returns taint".
//
// The engine is flow-insensitive within a function (a variable tainted
// anywhere is tainted everywhere) and over-approximates aggregates (any
// tainted operand taints the whole expression). Both choices trade
// precision for predictability: a finding's witness chain is always a real
// syntactic path, and analysis cost stays linear in module size.

// A TaintKind labels the origin class of a tainted value ("wallclock",
// "mathrand", "maporder").
type TaintKind string

// A Taint records where a tainted value entered the program and through
// which calls it traveled. Path holds function names, outermost first.
type Taint struct {
	Kind TaintKind
	// Root is the position of the originating expression.
	Root token.Pos
	// Desc is a human-readable description of the source ("time.Now()").
	Desc string
	// Path lists the functions the value crossed to get here, source first.
	Path []string
}

// A TaintSpec defines the sources for one propagation problem.
type TaintSpec struct {
	// Name keys the summary cache; must be unique per spec instance use.
	Name string
	// CallSource classifies a call expression as a source. Returns the
	// kind, a description, and true when the call originates taint.
	CallSource func(pkg *Package, call *ast.CallExpr) (TaintKind, string, bool)
	// MapSelection, when set, treats a key or value drawn out of a map
	// range that exits early (break/return in the body) as a source: the
	// chosen element depends on Go's randomized map iteration order.
	MapSelection bool
	// SkipSource, when non-nil, suppresses sources at positions the
	// analyzer has already sanctioned (annotated lines).
	SkipSource func(pkg *Package, pos token.Pos) bool
}

// TaintSummaries computes, for every function in the graph, whether its
// return values can carry spec-taint, propagating through call chains to a
// fixpoint. The result maps each node to the taint its returns carry (nil
// when clean). Cached per spec; safe for concurrent use.
func (g *CallGraph) TaintSummaries(spec *TaintSpec) map[*CallNode]*Taint {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.taintCache == nil {
		g.taintCache = map[*TaintSpec]map[*CallNode]*Taint{}
	}
	if sums, ok := g.taintCache[spec]; ok {
		return sums
	}
	sums := map[*CallNode]*Taint{}
	// Iterate to fixpoint: each round re-derives per-function taint with
	// the previous round's summaries visible at call sites. The lattice is
	// two-point (clean → tainted) per function, so rounds are bounded by
	// the longest acyclic call chain; the cap is a safety valve.
	for round := 0; round < 32; round++ {
		changed := false
		for _, node := range g.nodes {
			if sums[node] != nil || node.Decl.Body == nil {
				continue
			}
			ft := g.FuncTaints(spec, node, sums)
			if t := ft.returnTaint(node.Decl); t != nil {
				tt := *t
				tt.Path = append(append([]string(nil), t.Path...), node.Name())
				sums[node] = &tt
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	g.taintCache[spec] = sums
	return sums
}

// FuncTaints is the intraprocedural engine: the set of tainted variables in
// one declaration, given callee summaries.
type FuncTaints struct {
	spec *TaintSpec
	node *CallNode
	sums map[*CallNode]*Taint
	vars map[types.Object]*Taint
}

// FuncTaints analyzes node's body and returns its tainted-variable map.
// sums may be nil (no interprocedural summaries) or the result of
// TaintSummaries.
func (g *CallGraph) FuncTaints(spec *TaintSpec, node *CallNode, sums map[*CallNode]*Taint) *FuncTaints {
	ft := &FuncTaints{spec: spec, node: node, sums: sums, vars: map[types.Object]*Taint{}}
	if node.Decl.Body == nil {
		return ft
	}
	info := node.Pkg.Info
	// Repeat until the tainted-variable set stabilizes: an assignment seen
	// before its source was discovered picks it up on a later sweep.
	for round := 0; round < 10; round++ {
		before := len(ft.vars)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				ft.assign(n)
			case *ast.RangeStmt:
				ft.rangeStmt(n)
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						if t := ft.ExprTaint(n.Values[i]); t != nil {
							ft.mark(info.Defs[name], t)
						}
					}
				}
			}
			return true
		})
		if len(ft.vars) == before {
			break
		}
	}
	return ft
}

func (ft *FuncTaints) mark(obj types.Object, t *Taint) {
	if obj == nil || t == nil {
		return
	}
	if _, ok := ft.vars[obj]; !ok {
		ft.vars[obj] = t
	}
}

func (ft *FuncTaints) assign(stmt *ast.AssignStmt) {
	info := ft.node.Pkg.Info
	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	if len(stmt.Lhs) == len(stmt.Rhs) {
		for i, lhs := range stmt.Lhs {
			rhs := stmt.Rhs[i]
			var t *Taint
			if stmt.Tok == token.ASSIGN || stmt.Tok == token.DEFINE {
				t = ft.ExprTaint(rhs)
			} else {
				// Compound assignment (x += y): both sides contribute.
				t = ft.ExprTaint(rhs)
				if t == nil {
					t = ft.ExprTaint(lhs)
				}
			}
			ft.mark(objOf(lhs), t)
		}
		return
	}
	// Tuple form: v1, v2 := f(). One tainted source taints every target —
	// the engine does not track which result carries it.
	if len(stmt.Rhs) == 1 {
		if t := ft.ExprTaint(stmt.Rhs[0]); t != nil {
			for _, lhs := range stmt.Lhs {
				ft.mark(objOf(lhs), t)
			}
		}
	}
}

func (ft *FuncTaints) rangeStmt(stmt *ast.RangeStmt) {
	info := ft.node.Pkg.Info
	defOf := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	// Ranging over a tainted collection taints the drawn key and value.
	if t := ft.ExprTaint(stmt.X); t != nil {
		if stmt.Key != nil {
			ft.mark(defOf(stmt.Key), t)
		}
		if stmt.Value != nil {
			ft.mark(defOf(stmt.Value), t)
		}
		return
	}
	// Map-order selection: a map range that exits early picks an element
	// determined by iteration order.
	if !ft.spec.MapSelection {
		return
	}
	if _, ok := info.TypeOf(stmt.X).Underlying().(*types.Map); !ok {
		return
	}
	if ft.skip(stmt.Pos()) || !rangeExitsEarly(stmt) {
		return
	}
	t := &Taint{Kind: "maporder", Root: stmt.Pos(), Desc: "element selected by map iteration order"}
	if stmt.Key != nil {
		ft.mark(defOf(stmt.Key), t)
	}
	if stmt.Value != nil {
		ft.mark(defOf(stmt.Value), t)
	}
}

// rangeExitsEarly reports whether the range body can stop mid-iteration
// (break or return), making the drawn element order-dependent. Exhaustive
// iteration is the collect-then-sort idiom's first half and is maporder's
// business, not taint's.
func rangeExitsEarly(stmt *ast.RangeStmt) bool {
	early := false
	ast.Inspect(stmt.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && n.Label == nil {
				early = true
			}
		case *ast.ReturnStmt:
			early = true
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false // inner break/return doesn't exit our loop
		}
		return !early
	})
	return early
}

func (ft *FuncTaints) skip(pos token.Pos) bool {
	return ft.spec.SkipSource != nil && ft.spec.SkipSource(ft.node.Pkg, pos)
}

// ExprTaint reports the taint carried by e, or nil.
func (ft *FuncTaints) ExprTaint(e ast.Expr) *Taint {
	var found *Taint
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := ft.node.Pkg.Info.Uses[n]; obj != nil {
				if t, ok := ft.vars[obj]; ok {
					found = t
					return false
				}
			}
		case *ast.CallExpr:
			if t := ft.callTaint(n); t != nil {
				found = t
				return false
			}
		case *ast.FuncLit:
			return false // a closure value is not itself tainted
		}
		return true
	})
	return found
}

// callTaint classifies one call: a spec source, or a module-local callee
// whose summary says its returns are tainted.
func (ft *FuncTaints) callTaint(call *ast.CallExpr) *Taint {
	if ft.spec.CallSource != nil && !ft.skip(call.Pos()) {
		if kind, desc, ok := ft.spec.CallSource(ft.node.Pkg, call); ok {
			return &Taint{Kind: kind, Root: call.Pos(), Desc: desc}
		}
	}
	if ft.sums == nil {
		return nil
	}
	for _, callee := range ftCallees(ft, call) {
		if t := ft.sums[callee]; t != nil {
			return t
		}
	}
	return nil
}

func ftCallees(ft *FuncTaints, call *ast.CallExpr) []*CallNode {
	if site, ok := ft.node.siteByCall[call]; ok {
		return site.Callees
	}
	return nil
}

// returnTaint reports whether any return statement of decl (excluding
// nested function literals) returns a tainted value. Bare returns check the
// named results.
func (ft *FuncTaints) returnTaint(decl *ast.FuncDecl) *Taint {
	if decl.Body == nil || decl.Type.Results == nil {
		return nil
	}
	var found *Taint
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if len(n.Results) == 0 {
				// Bare return: named results carry whatever they hold.
				for _, field := range decl.Type.Results.List {
					for _, name := range field.Names {
						if obj := ft.node.Pkg.Info.Defs[name]; obj != nil {
							if t, ok := ft.vars[obj]; ok {
								found = t
								return false
							}
						}
					}
				}
				return true
			}
			for _, res := range n.Results {
				if t := ft.ExprTaint(res); t != nil {
					found = t
					return false
				}
			}
		}
		return true
	}
	ast.Inspect(decl.Body, walk)
	return found
}

// TaintedVars exposes the tainted-variable set for tests.
func (ft *FuncTaints) TaintedVars() map[types.Object]*Taint { return ft.vars }
