package lint

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Target is one package directory discovered by WalkPackages.
type Target struct {
	Dir  string // absolute directory
	Path string // import path under the module
}

// WalkPackages finds every package directory under root (a directory inside
// the module), mirroring the `./...` pattern: testdata directories, hidden
// directories, and directories without non-test .go files are skipped.
// Results are sorted by import path so lint runs are deterministic.
func WalkPackages(l *Loader, root string) ([]Target, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var targets []Target
	err = filepath.WalkDir(abs, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, path)
		if err != nil {
			return err
		}
		importPath := l.ModulePath
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		targets = append(targets, Target{Dir: path, Path: importPath})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Path < targets[j].Path })
	return targets, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
