package lint

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The fixture harness mirrors golang.org/x/tools' analysistest, stdlib-only:
// a fixture is a real Go package under testdata/src/<name>, loaded under a
// caller-chosen import path (so scope rules like "only sim packages" are
// exercised by fabricating the right path), and expectations are `// want
// "regexp"` comments on the offending lines. Lines without a want comment
// are the non-triggering half of the fixture — the harness fails on missed
// wants AND on unexpected findings, so every fixture proves both directions.

// A TB is the subset of testing.TB the harness needs; keeping the interface
// local means the lint package (linked into cmd/phishlint) never imports
// the testing package.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunFixture loads testdata/src/<fixture> (relative to dir) as importPath,
// runs the given analyzers plus annotation processing over it, and matches
// findings against the fixture's want comments.
func RunFixture(t TB, analyzers []*Analyzer, dir, fixture, importPath string) {
	t.Helper()
	fixDir := filepath.Join(dir, "testdata", "src", fixture)
	loader, err := NewLoader(fixDir)
	if err != nil {
		t.Fatalf("lint fixture %s: %v", fixture, err)
	}
	pkg, err := loader.Load(fixDir, importPath)
	if err != nil {
		t.Fatalf("lint fixture %s: %v", fixture, err)
	}
	findings := RunAnalyzers(pkg, analyzers)
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("lint fixture %s: %v", fixture, err)
	}
	matchWants(t, fixture, findings, wants)
}

// RunModuleFixture loads testdata/src/<fixture> as a fabricated module: the
// fixture root becomes importPath, and every nested directory holding Go
// files becomes importPath + "/" + its slash-relative path. Sub-packages
// load before the root, so the root's imports of those fabricated paths
// resolve through the loader's memo table to the fixture tree rather than
// to whatever real package lives at the same import path. The suite —
// module analyzers included — then runs over the assembled module with
// every fixture package as a reporting root, and findings must match the
// fixture's want comments exactly.
//
// Sub-packages may import each other only in sorted path order; an earlier
// path importing a later one falls through the memo to the real module tree
// and fails loudly.
func RunModuleFixture(t TB, suite []*Analyzer, dir, fixture, importPath string) {
	t.Helper()
	fixDir := filepath.Join(dir, "testdata", "src", fixture)
	loader, err := NewLoader(fixDir)
	if err != nil {
		t.Fatalf("lint module fixture %s: %v", fixture, err)
	}
	subs, err := fixtureSubdirs(fixDir)
	if err != nil {
		t.Fatalf("lint module fixture %s: %v", fixture, err)
	}
	var pkgs []*Package
	for _, rel := range subs {
		p, err := loader.Load(filepath.Join(fixDir, filepath.FromSlash(rel)), importPath+"/"+rel)
		if err != nil {
			t.Fatalf("lint module fixture %s/%s: %v", fixture, rel, err)
		}
		pkgs = append(pkgs, p)
	}
	root, err := loader.Load(fixDir, importPath)
	if err != nil {
		t.Fatalf("lint module fixture %s: %v", fixture, err)
	}
	pkgs = append(pkgs, root)
	module := NewModule(loader, pkgs...)
	findings, _ := module.Run(suite, 1, pkgs)
	var wants []want
	for _, p := range pkgs {
		ws, err := collectWants(p)
		if err != nil {
			t.Fatalf("lint module fixture %s: %v", fixture, err)
		}
		wants = append(wants, ws...)
	}
	matchWants(t, fixture, findings, wants)
}

// fixtureSubdirs returns the slash-relative path of every directory nested
// under root that contains non-test Go files, sorted.
func fixtureSubdirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil || rel == "." {
			return err
		}
		seen[filepath.ToSlash(rel)] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	subs := make([]string, 0, len(seen))
	for rel := range seen {
		subs = append(subs, rel)
	}
	sort.Strings(subs)
	return subs, nil
}

// matchWants pairs findings against want expectations, failing on both
// unexpected findings and unmatched wants.
func matchWants(t TB, fixture string, findings []Finding, wants []want) {
	t.Helper()
	matched := make([]bool, len(wants))
	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected finding: %s:%d: %s: %s", fixture, filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: %s:%d: no finding matched want %q", fixture, filepath.Base(w.file), w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantMarker introduces expectations in a fixture: one or more quoted (or
// backquoted) regexps, each of which must match one finding on that line.
const wantMarker = "// want "

// collectWants parses the `// want "re" ["re" ...]` comments of a fixture
// package. A want comment governs the line it sits on.
func collectWants(pkg *Package) ([]want, error) {
	var wants []want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, wantMarker)
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				pats, err := parseWantPatterns(c.Text[idx+len(wantMarker):])
				if err != nil {
					return nil, fmt.Errorf("%s: %v in want comment: %s", pos, err, c.Text)
				}
				for _, pat := range pats {
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// parseWantPatterns splits `"a" `+"`b`"+` ...` into unquoted pattern strings.
func parseWantPatterns(s string) ([]string, error) {
	var pats []string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return pats, nil
		}
		var q string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote")
			}
			q, s = s[:end+2], s[end+2:]
		case '"':
			end := 1
			for end < len(s) && s[end] != '"' {
				if s[end] == '\\' {
					end++
				}
				end++
			}
			if end >= len(s) {
				return nil, fmt.Errorf("unterminated quote")
			}
			q, s = s[:end+1], s[end+1:]
		default:
			return nil, fmt.Errorf("unexpected %q after want", s[0])
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			return nil, fmt.Errorf("bad pattern %s: %v", q, err)
		}
		pats = append(pats, pat)
	}
}
