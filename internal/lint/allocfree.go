package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Allocfree enforces the zero-allocation discipline of the visit hot path
// (DESIGN.md §10: the browser/simnet/htmlmini/weblog chain that PR 3 drove
// from 588 to 187 allocations per visit). A function opts in with a
// //phishlint:hotpath line in its doc comment; inside an annotated
// function, allocfree flags the heap-escape patterns that benchmarks keep
// rediscovering:
//
//   - fmt.Sprintf / Sprint / Sprintln (fmt.Errorf is exempt — error
//     construction is the cold path by definition);
//   - strings.Join and string concatenation producing a non-constant
//     string;
//   - make of a map or channel, or of a slice with a non-constant length
//     (an unpooled per-call buffer);
//   - a function literal that captures enclosing locals (the closure
//     environment is heap-allocated per call).
//
// And interprocedurally: a hotpath function calling a module-local callee
// that is NOT itself annotated hotpath but contains one of those patterns
// is flagged at the call site — either the callee belongs on the hot path
// (annotate it and fix it) or the call does not (hoist it). Interface-
// dispatch sites are exempt; the hot path is direct calls by design.
//
// A deliberate cold-path allocation inside a hotpath function (a fallback
// branch, a once-per-study slow path) is suppressed with
// `//phishlint:allow allocfree <why>`.
var Allocfree = &Analyzer{
	Name:      "allocfree",
	Doc:       "functions annotated //phishlint:hotpath must not contain heap-escaping patterns, nor call unannotated module functions that do",
	RunModule: runAllocfree,
}

// hotpathToken is the annotation token marking a function as part of the
// allocation-free hot path. Unlike suppression tokens it tightens checking,
// so it needs no justification (see collectAnnotations).
const hotpathToken = "hotpath"

// allocSite is one direct heap-escape pattern found in a function body.
type allocSite struct {
	pos  token.Pos
	desc string
}

func runAllocfree(pass *ModulePass) {
	hot := map[*CallNode]bool{}
	marked := map[token.Pos]bool{} // positions of hotpath comments claimed by a declaration
	for _, node := range pass.Graph.SortedNodes() {
		if c := hotpathComment(node.Decl); c != nil {
			hot[node] = true
			marked[c.Pos()] = true
		}
	}
	// Stray markers: a //phishlint:hotpath that is not the doc comment of a
	// function declaration silently checks nothing — that is a finding, not
	// a no-op.
	for _, pkg := range pass.Module.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if strings.HasPrefix(c.Text, annotationPrefix+hotpathToken) && !marked[c.Pos()] {
						pass.Reportf(c.Pos(), "//phishlint:hotpath must be in the doc comment of a function declaration")
					}
				}
			}
		}
	}
	// Direct-pattern summaries for every module function, so call sites in
	// hot functions can name what their callee allocates.
	allocs := map[*CallNode][]allocSite{}
	for _, node := range pass.Graph.SortedNodes() {
		allocs[node] = directAllocs(node)
	}
	for _, node := range pass.Graph.SortedNodes() {
		if !hot[node] {
			continue
		}
		for _, site := range allocs[node] {
			pass.Reportf(site.pos, "%s in hotpath function %s; hoist it, pool it, or append into a caller-owned buffer", site.desc, node.Decl.Name.Name)
		}
		for _, cs := range node.Sites {
			if cs.Dynamic {
				continue
			}
			for _, callee := range cs.Callees {
				if hot[callee] || len(allocs[callee]) == 0 {
					continue
				}
				first := allocs[callee][0]
				pass.Reportf(cs.Call.Pos(), "hotpath function %s calls %s, which %s (%s); annotate the callee //phishlint:hotpath and fix it, or hoist the call off the hot path",
					node.Decl.Name.Name, callee.Name(), first.desc, pass.Fset().Position(first.pos))
			}
		}
	}
}

// hotpathComment returns the //phishlint:hotpath comment in decl's doc
// comment, or nil.
func hotpathComment(decl *ast.FuncDecl) *ast.Comment {
	if decl.Doc == nil {
		return nil
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, annotationPrefix+hotpathToken) {
			return c
		}
	}
	return nil
}

// directAllocs scans one declaration for the heap-escape patterns.
func directAllocs(node *CallNode) []allocSite {
	if node.Decl.Body == nil {
		return nil
	}
	info := node.Pkg.Info
	var sites []allocSite
	add := func(pos token.Pos, desc string) {
		sites = append(sites, allocSite{pos: pos, desc: desc})
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.SelectorExpr:
				if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
					switch fn.Pkg().Path() + "." + fn.Name() {
					case "fmt.Sprintf", "fmt.Sprint", "fmt.Sprintln":
						add(n.Pos(), fn.Pkg().Name()+"."+fn.Name()+" allocates its result and boxes every operand")
					case "strings.Join":
						add(n.Pos(), "strings.Join allocates the joined string")
					}
				}
			case *ast.Ident:
				if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin && fun.Name == "make" {
					if allocMake(info, n) {
						add(n.Pos(), "make allocates a per-call buffer")
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(info, n) {
				add(n.Pos(), "string concatenation allocates the result")
				return false // one report per concat chain, not per +
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				add(n.Pos(), "string += allocates the result")
			}
		case *ast.FuncLit:
			if capt := capturedLocal(info, node.Decl, n); capt != "" {
				add(n.Pos(), "closure captures "+capt+", heap-allocating its environment per call")
			}
			return false // patterns inside the closure bill to the closure's own runs
		}
		return true
	})
	return sites
}

// allocMake reports whether a make call allocates per-call: maps and
// channels always, slices unless the length is a compile-time constant
// (constant-size locals usually stay on the stack).
func allocMake(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	switch info.TypeOf(call.Args[0]).Underlying().(type) {
	case *types.Map, *types.Chan:
		return true
	case *types.Slice:
		if len(call.Args) < 2 {
			return false
		}
		return info.Types[call.Args[1]].Value == nil
	}
	return false
}

// isNonConstString reports whether e is a string-typed expression not
// folded to a constant by the compiler.
func isNonConstString(info *types.Info, e ast.Expr) bool {
	tv := info.Types[e]
	return tv.Value == nil && isStringType(tv.Type)
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturedLocal names the first enclosing-function local a closure
// captures, or "" — package-level variables are reached directly and do not
// force an environment allocation.
func capturedLocal(info *types.Info, decl *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// A captured local is declared inside the enclosing declaration but
		// outside the literal.
		if v.Pos() >= decl.Pos() && v.Pos() < lit.Pos() {
			name = "local " + v.Name()
			return false
		}
		return true
	})
	return name
}
