package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	// Path is the import path the package was loaded under.
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of this module plus their stdlib
// dependencies, without go/packages or any external driver. The stdlib is
// resolved by the compiler's source importer; module-local import paths
// (which the source importer cannot see — it predates modules) are mapped
// onto directories under the module root and type-checked recursively.
//
// A Loader memoizes by import path, so walking the whole repository
// type-checks each package (and each stdlib dependency) exactly once. It is
// not safe for concurrent use.
type Loader struct {
	Fset *token.FileSet
	// ModuleRoot is the absolute directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's declared path ("areyouhuman").
	ModulePath string

	std     types.Importer
	pkgs    map[string]*Package
	typed   map[string]*types.Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir. It walks
// upward from dir to find go.mod and reads the module path from it.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		typed:      map[string]*types.Package{},
		loading:    map[string]bool{},
	}, nil
}

// findModule walks upward from dir to the first go.mod and returns the
// directory and declared module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// Load parses and type-checks the package in dir under the given import
// path. Test files (_test.go) are excluded: the determinism invariants
// govern simulation code, and test-only wall-clock use (watchdog timeouts)
// is legitimate.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	files, names, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s (%s): %w", importPath, names[0], typeErrs[0])
	}
	p := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = p
	l.typed[importPath] = tpkg
	return p, nil
}

// parseDir parses every non-test .go file in dir, in name order so analysis
// (and finding order) is deterministic.
func (l *Loader) parseDir(dir string) ([]*ast.File, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	return files, names, nil
}

// loaderImporter adapts Loader to types.Importer: module-local paths load
// from the module tree, everything else (the stdlib) goes through the
// compiler's source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if tp, ok := l.typed[path]; ok {
		return tp, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.Load(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	tp, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.typed[path] = tp
	return tp, nil
}
