package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"
)

// A Module is every package of the repository loaded through one Loader:
// the unit the interprocedural analyzers (seedflow, shardflow, allocfree,
// errwrap) operate on. Per-package analyzers see one package at a time; a
// Module additionally owns the shared call graph and the merged annotation
// set, so a helper in package A can sanction or incriminate a caller in
// package B.
type Module struct {
	Loader *Loader
	// Packages is every loaded module package, sorted by import path.
	Packages []*Package

	graphOnce sync.Once
	graph     *CallGraph

	annsOnce sync.Once
	anns     annotationSet
	annsBad  []Finding
}

// LoadModule loads every package of the module containing dir — the
// whole-module equivalent of Loader.Load. Each package (and each stdlib
// dependency) is parsed and type-checked exactly once; the Loader's memo
// table is the cross-package cache.
func LoadModule(dir string) (*Module, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	targets, err := WalkPackages(loader, loader.ModuleRoot)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		p, err := loader.Load(t.Dir, t.Path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return NewModule(loader, pkgs...), nil
}

// NewModule wraps already-loaded packages as a Module. Fixture tests use
// this to assemble small multi-package modules under fabricated import
// paths.
func NewModule(loader *Loader, pkgs ...*Package) *Module {
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	return &Module{Loader: loader, Packages: sorted}
}

// AddPackage loads the single package at dir under the given import path
// and adds it to the module's analysis set. The driver uses it for
// explicitly-requested directories the module walk skips (fixture trees
// under testdata/), so sanity drives like
// `phishlint ./internal/lint/testdata/src/detrand` stay runnable. Must be
// called before the first Run or Graph.
func (m *Module) AddPackage(dir, path string) (*Package, error) {
	p, err := m.Loader.Load(dir, path)
	if err != nil {
		return nil, err
	}
	m.Packages = append(m.Packages, p)
	sort.Slice(m.Packages, func(i, j int) bool { return m.Packages[i].Path < m.Packages[j].Path })
	return p, nil
}

// Graph returns the module call graph, building it on first use.
func (m *Module) Graph() *CallGraph {
	m.graphOnce.Do(func() { m.graph = buildCallGraph(m.Packages) })
	return m.graph
}

// Package returns the loaded package with the given import path, or nil.
func (m *Module) Package(path string) *Package {
	for _, p := range m.Packages {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// annotations collects //phishlint annotations across every module package
// once, resolved against the full analyzer suite (module analyzers
// included, so "allow seedflow" parses). Malformed annotations become
// findings.
func (m *Module) annotations() (annotationSet, []Finding) {
	m.annsOnce.Do(func() {
		for _, pkg := range m.Packages {
			anns, bad := collectAnnotations(pkg, Analyzers)
			m.anns = append(m.anns, anns...)
			m.annsBad = append(m.annsBad, bad...)
		}
	})
	return m.anns, m.annsBad
}

// Annotated reports whether pos sits on a line whose annotation silences
// the named analyzer. Module analyzers use this to skip sanctioned taint
// sources (an annotated //phishlint:wallclock read must not seed the
// interprocedural engine, or every transitive caller would light up).
func (m *Module) Annotated(analyzer string, pos token.Pos) bool {
	anns, _ := m.annotations()
	p := m.Loader.Fset.Position(pos)
	return anns.suppresses(Finding{Analyzer: analyzer, Pos: p})
}

// A ModulePass carries one module analyzer's view of the whole module.
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module
	Graph    *CallGraph

	findings *[]Finding
}

// Fset returns the module's shared FileSet.
func (p *ModulePass) Fset() *token.FileSet { return p.Module.Loader.Fset }

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset().Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// An AnalyzerTiming records one analyzer's total wall-clock cost in a
// Module.Run (summed across packages for per-package analyzers).
type AnalyzerTiming struct {
	Name     string
	Duration time.Duration
}

// Run executes the suite over the module and returns the surviving
// findings, restricted to the given root packages (the targets the user
// asked about — summaries still span the whole module, so a helper outside
// the roots participates in the analysis even when findings in it are not
// reported).
//
// parallel bounds worker goroutines (<=0 means GOMAXPROCS). Parallelism is
// a wall-clock knob only: findings are globally sorted by position, then
// analyzer, then message, so output is byte-identical for any value.
func (m *Module) Run(suite []*Analyzer, parallel int, roots []*Package) ([]Finding, []AnalyzerTiming) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	rootDirs := map[string]bool{}
	for _, p := range roots {
		rootDirs[p.Dir] = true
	}
	inRoots := func(f Finding) bool { return rootDirs[filepath.Dir(f.Pos.Filename)] }

	var timingMu sync.Mutex
	timings := map[string]time.Duration{}
	record := func(name string, d time.Duration) {
		timingMu.Lock()
		timings[name] += d
		timingMu.Unlock()
	}

	// Annotations span the whole module; malformed ones are findings only
	// inside the roots.
	anns, badAll := m.annotations()
	var raw []Finding
	for _, f := range badAll {
		if inRoots(f) {
			raw = append(raw, f)
		}
	}

	// Per-package analyzers fan out across root packages. The call graph is
	// built up front (serially, under its own timing entry) so module
	// analyzers started afterwards never race on construction.
	var hasModule bool
	for _, a := range suite {
		if a.RunModule != nil {
			hasModule = true
		}
	}
	var graph *CallGraph
	if hasModule {
		start := time.Now()
		graph = m.Graph()
		record("callgraph", time.Since(start))
	}

	type job func() []Finding
	var jobs []job
	for _, pkg := range roots {
		pkg := pkg
		jobs = append(jobs, func() []Finding {
			var out []Finding
			for _, a := range suite {
				if a.Run == nil {
					continue
				}
				start := time.Now()
				pass := &Pass{
					Analyzer: a,
					Fset:     pkg.Fset,
					Files:    pkg.Files,
					Path:     pkg.Path,
					Pkg:      pkg.Types,
					Info:     pkg.Info,
					findings: &out,
				}
				a.Run(pass)
				record(a.Name, time.Since(start))
			}
			return out
		})
	}
	for _, a := range suite {
		a := a
		if a.RunModule == nil {
			continue
		}
		jobs = append(jobs, func() []Finding {
			start := time.Now()
			var out []Finding
			pass := &ModulePass{Analyzer: a, Module: m, Graph: graph, findings: &out}
			a.RunModule(pass)
			record(a.Name, time.Since(start))
			// Module analyzers see the whole module; report only inside the
			// requested roots.
			kept := out[:0]
			for _, f := range out {
				if inRoots(f) {
					kept = append(kept, f)
				}
			}
			return kept
		})
	}

	results := make([][]Finding, len(jobs))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, j := range jobs {
		i, j := i, j
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = j()
		}()
	}
	wg.Wait()
	for _, r := range results {
		raw = append(raw, r...)
	}

	var findings []Finding
	for _, f := range raw {
		if f.Analyzer != "annotation" && anns.suppresses(f) {
			continue
		}
		f.File = f.Pos.Filename
		f.Line = f.Pos.Line
		f.Col = f.Pos.Column
		findings = append(findings, f)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	out := make([]AnalyzerTiming, 0, len(timings))
	for name, d := range timings {
		out = append(out, AnalyzerTiming{Name: name, Duration: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return findings, out
}
