package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Shardflow is the interprocedural upgrade of shardsafe. Shardsafe flags a
// write to a captured variable inside a single event closure; shardflow
// looks at *pairs* of event closures and at the helpers they call: a value
// written inside one shard's closure (directly, or by any module-local
// function it calls) and read from a different closure is cross-shard
// aliasing — under sharded execution the two closures may run on different
// worker goroutines in the same virtual-time window, so the read races and
// its result depends on shard interleaving.
//
// The sanctioned ways to move a value between shards are the mailbox/stamp
// machinery: route it through the scheduler (an event on the owning shard),
// publish it at a window barrier, or order it by ExecStamp. State of
// simclock/journal types is exempt (those types ARE the machinery), and a
// closure (or callee) that serialises with a sync lock is skipped — lock
// ordering under determinism is shardsafe/ExecStamp territory.
//
// Scope matches shardsafe: the packages whose event chains may run on the
// ShardedScheduler.
var Shardflow = &Analyzer{
	Name:      "shardflow",
	Doc:       "state written in one shard's event closure must not be read from another's without mailbox/stamp machinery",
	RunModule: runShardflow,
}

// closureAccess is one scheduled event closure with the variables it
// touches, directly or through module-local callees.
type closureAccess struct {
	node   *CallNode
	lit    *ast.FuncLit
	reads  map[*types.Var]token.Pos
	writes map[*types.Var]token.Pos
}

func runShardflow(pass *ModulePass) {
	sums := pass.Graph.GlobalAccessSummaries()
	var closures []*closureAccess
	for _, node := range pass.Graph.SortedNodes() {
		if !shardsafeScope[node.Pkg.Path] || node.Decl.Body == nil {
			continue
		}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !schedulerMethods[sel.Sel.Name] {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					if ca := collectClosureAccess(pass, node, lit, sums); ca != nil {
						closures = append(closures, ca)
					}
				}
			}
			return true
		})
	}
	// Pair up: a write in closure A vs any access in a different closure B.
	// Report once per (A, var), at A's write, naming the first aliasing B in
	// source order.
	for _, a := range closures {
		for _, v := range sortedVars(a.writes) {
			for _, b := range closures {
				if b == a {
					continue
				}
				pos, read := b.reads[v]
				if !read {
					if wpos, written := b.writes[v]; written {
						pos = wpos
					} else {
						continue
					}
				}
				how := "read"
				if !read {
					how = "also written"
				}
				pass.Reportf(a.writes[v],
					"%q is written in this event closure and %s by the event closure at %s; under sharded execution the closures may run on different shards — route the value through a shard mailbox, publish at a window barrier, or order it by ExecStamp",
					v.Name(), how, pass.Fset().Position(pos))
				break
			}
		}
	}
}

// collectClosureAccess gathers the variables an event closure reads and
// writes: captured locals and package-level variables touched directly,
// plus package-level variables touched by any module-local callee
// (transitively, via the call-graph summaries). Returns nil for closures
// that serialise with a lock.
func collectClosureAccess(pass *ModulePass, node *CallNode, lit *ast.FuncLit, sums map[*CallNode]*globalAccess) *closureAccess {
	info := node.Pkg.Info
	ca := &closureAccess{
		node:   node,
		lit:    lit,
		reads:  map[*types.Var]token.Pos{},
		writes: map[*types.Var]token.Pos{},
	}
	shared := func(id *ast.Ident) *types.Var {
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || exemptShardType(v.Type()) {
			return nil
		}
		// Declared inside the closure (including parameters) is private
		// per-event state; anything outside is shared with other closures.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return nil
		}
		return v
	}
	writeTargets := map[*ast.Ident]bool{}
	guarded := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					writeTargets[id] = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				writeTargets[id] = true
			}
		case *ast.CallExpr:
			if isLockCall(info, n) {
				guarded = true
			}
		}
		return true
	})
	if guarded {
		return nil
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if v := shared(n); v != nil {
				set := ca.reads
				if writeTargets[n] {
					set = ca.writes
				}
				if _, ok := set[v]; !ok {
					set[v] = n.Pos()
				}
			}
		case *ast.CallExpr:
			for _, callee := range pass.Graph.CalleesOf(node, n) {
				sum := sums[callee]
				if sum == nil || sum.guarded {
					continue
				}
				for _, v := range sortedVars(sum.reads) {
					if exemptShardType(v.Type()) {
						continue
					}
					if _, ok := ca.reads[v]; !ok {
						ca.reads[v] = n.Pos()
					}
				}
				for _, v := range sortedVars(sum.writes) {
					if exemptShardType(v.Type()) {
						continue
					}
					if _, ok := ca.writes[v]; !ok {
						ca.writes[v] = n.Pos()
					}
				}
			}
		}
		return true
	})
	if len(ca.reads) == 0 && len(ca.writes) == 0 {
		return nil
	}
	return ca
}

// exemptShardType reports whether a variable's type belongs to the
// scheduling/journalling machinery itself — simclock handles, schedulers,
// and journal recorders are the sanctioned cross-shard channels.
func exemptShardType(t types.Type) bool {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
			continue
		case *types.Slice:
			t = tt.Elem()
			continue
		case *types.Named:
			if pkg := tt.Obj().Pkg(); pkg != nil {
				if strings.HasSuffix(pkg.Path(), "/internal/simclock") || strings.HasSuffix(pkg.Path(), "/internal/journal") {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
}
