package lint

import (
	"strings"
	"testing"
)

// Each analyzer is exercised over a fixture package in testdata/src/<name>:
// `// want "re"` lines are the triggering half, clean lines the
// non-triggering half, and the harness fails on both missed wants and
// unexpected findings.

func TestDetrandFixture(t *testing.T) {
	t.Parallel()
	RunFixture(t, []*Analyzer{Detrand}, ".", "detrand", "areyouhuman/internal/fixture/detrand")
}

func TestClockwaitFixture(t *testing.T) {
	t.Parallel()
	RunFixture(t, []*Analyzer{Clockwait}, ".", "clockwait", "areyouhuman/internal/fixture/clockwait")
}

func TestMaporderFixture(t *testing.T) {
	t.Parallel()
	RunFixture(t, []*Analyzer{Maporder}, ".", "maporder", "areyouhuman/internal/fixture/maporder")
}

func TestSeedpureFixture(t *testing.T) {
	t.Parallel()
	// The fixture impersonates internal/chaos — seedpure only polices the
	// seed-derivation packages.
	RunFixture(t, []*Analyzer{Seedpure}, ".", "seedpure", "areyouhuman/internal/chaos")
}

func TestSeedpureCoversCampaign(t *testing.T) {
	t.Parallel()
	// The campaign planner is in scope too: its positional draws feed a
	// million URL assignments, so the same purity rules apply there.
	RunFixture(t, []*Analyzer{Seedpure}, ".", "seedpure", "areyouhuman/internal/campaign")
}

func TestMetriclabelFixture(t *testing.T) {
	t.Parallel()
	RunFixture(t, []*Analyzer{Metriclabel}, ".", "metriclabel", "areyouhuman/internal/fixture/metriclabel")
}

func TestShardsafeFixture(t *testing.T) {
	t.Parallel()
	// The fixture impersonates internal/engines — shardsafe only polices the
	// packages whose event chains run on sharded workers.
	RunFixture(t, []*Analyzer{Shardsafe}, ".", "shardsafe", "areyouhuman/internal/engines")
}

func TestShardsafeSkipsUnscopedPackages(t *testing.T) {
	t.Parallel()
	// The same violating sources outside the sharded packages are clean:
	// closures there only ever run on the serial scheduler goroutine.
	pkg := loadFixture(t, "shardsafe", "areyouhuman/internal/weblog")
	if got := RunAnalyzers(pkg, []*Analyzer{Shardsafe}); len(got) != 0 {
		t.Errorf("shardsafe outside scope reported %d findings, want 0: %v", len(got), got)
	}
}

func TestSeedflowFixture(t *testing.T) {
	t.Parallel()
	// The acceptance pair for the interprocedural engine: the wall-clock
	// read lives in a helper sub-package where seedpure cannot see it, and
	// only the cross-function taint reaches the deriver.
	RunModuleFixture(t, []*Analyzer{Seedflow}, ".", "seedflow", "areyouhuman/internal/chaos")
}

func TestSeedflowFixtureIsCleanForSeedpure(t *testing.T) {
	t.Parallel()
	// The same sources under the per-package analyzer: seedpure scans one
	// package at a time, so the laundered read is invisible — this is the
	// gap seedflow closes. The helper sub-package must pre-load so the
	// root's fabricated import resolves to the fixture tree.
	loader, err := NewLoader("testdata/src/seedflow")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	if _, err := loader.Load("testdata/src/seedflow/timeutil", "areyouhuman/internal/chaos/timeutil"); err != nil {
		t.Fatalf("load timeutil: %v", err)
	}
	pkg, err := loader.Load("testdata/src/seedflow", "areyouhuman/internal/chaos")
	if err != nil {
		t.Fatalf("load seedflow: %v", err)
	}
	// Seedflow rides along for annotation-token resolution only; RunAnalyzers
	// skips module analyzers.
	if got := RunAnalyzers(pkg, []*Analyzer{Seedpure, Seedflow}); len(got) != 0 {
		t.Errorf("seedpure on the seedflow fixture reported %d findings, want 0: %v", len(got), got)
	}
}

func TestSeedflowScopeEntry(t *testing.T) {
	t.Parallel()
	// Tainted arguments handed INTO a seed-derivation package from outside
	// it are the boundary sink.
	RunModuleFixture(t, []*Analyzer{Seedflow}, ".", "seedflowentry", "areyouhuman")
}

func TestErrwrapFixture(t *testing.T) {
	t.Parallel()
	RunModuleFixture(t, []*Analyzer{Errwrap}, ".", "errwrap", "areyouhuman")
}

func TestShardflowFixture(t *testing.T) {
	t.Parallel()
	RunModuleFixture(t, []*Analyzer{Shardflow}, ".", "shardflow", "areyouhuman/internal/engines")
}

func TestAllocfreeFixture(t *testing.T) {
	t.Parallel()
	RunModuleFixture(t, []*Analyzer{Allocfree}, ".", "allocfree", "areyouhuman/internal/fixture/allocfree")
}

func TestAnnotationsFixture(t *testing.T) {
	t.Parallel()
	// Runs the full suite so every annotation token resolves.
	RunFixture(t, Analyzers, ".", "annotations", "areyouhuman/internal/fixture/annotations")
}

// loadFixture loads a fixture package under an arbitrary import path,
// bypassing want matching — for scope tests, where the same sources must
// yield zero findings.
func loadFixture(t *testing.T, fixture, importPath string) *Package {
	t.Helper()
	loader, err := NewLoader("testdata/src/" + fixture)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.Load("testdata/src/"+fixture, importPath)
	if err != nil {
		t.Fatalf("load %s as %s: %v", fixture, importPath, err)
	}
	return pkg
}

func TestDetrandSkipsNonSimPackages(t *testing.T) {
	t.Parallel()
	// The same violating sources, loaded outside internal/, are clean: the
	// determinism rules bind simulation code, not CLIs.
	pkg := loadFixture(t, "detrand", "areyouhuman/cmd/fixture")
	if got := RunAnalyzers(pkg, []*Analyzer{Detrand}); len(got) != 0 {
		t.Errorf("detrand outside internal/ reported %d findings, want 0: %v", len(got), got)
	}
}

func TestClockwaitSkipsExemptPackages(t *testing.T) {
	t.Parallel()
	// simclock is the wall-clock abstraction boundary and is exempt.
	pkg := loadFixture(t, "clockwait", "areyouhuman/internal/simclock")
	if got := RunAnalyzers(pkg, []*Analyzer{Clockwait}); len(got) != 0 {
		t.Errorf("clockwait in exempt package reported %d findings, want 0: %v", len(got), got)
	}
}

func TestSeedpureSkipsOtherPackages(t *testing.T) {
	t.Parallel()
	// Outside chaos/core the same sources are legal — stream RNGs are fine
	// in a package that owns a world-local seeded source.
	pkg := loadFixture(t, "seedpure", "areyouhuman/internal/evasion")
	if got := RunAnalyzers(pkg, []*Analyzer{Seedpure}); len(got) != 0 {
		t.Errorf("seedpure outside chaos/core reported %d findings, want 0: %v", len(got), got)
	}
}

func TestIsSimPackage(t *testing.T) {
	t.Parallel()
	cases := []struct {
		path string
		want bool
	}{
		{"areyouhuman/internal/experiment", true},
		{"areyouhuman/internal/chaos", true},
		{"areyouhuman/internal/simclock", false},
		{"areyouhuman/internal/lint", false},
		{"areyouhuman/internal/telemetry", true},
		{"areyouhuman/cmd/phishfarm", false},
		{"areyouhuman", false},
	}
	for _, c := range cases {
		if got := IsSimPackage(c.path); got != c.want {
			t.Errorf("IsSimPackage(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestIsSnakeCase(t *testing.T) {
	t.Parallel()
	good := []string{"a", "phish_total", "chaos_faults_injected_total", "x9_y"}
	bad := []string{"", "Phish", "9lives", "_x", "x_", "a__b", "a-b", "a b", "é"}
	for _, s := range good {
		if !isSnakeCase(s) {
			t.Errorf("isSnakeCase(%q) = false, want true", s)
		}
	}
	for _, s := range bad {
		if isSnakeCase(s) {
			t.Errorf("isSnakeCase(%q) = true, want false", s)
		}
	}
}

func TestAnalyzersHaveDistinctNamesAndDocs(t *testing.T) {
	t.Parallel()
	seen := map[string]bool{}
	for _, a := range Analyzers {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v missing name or doc", a)
		}
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %q must set exactly one of Run and RunModule", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Name != strings.ToLower(a.Name) {
			t.Errorf("analyzer name %q is not lowercase", a.Name)
		}
	}
}

func TestParseWantPatterns(t *testing.T) {
	t.Parallel()
	pats, err := parseWantPatterns("\"a b\" `c\\.d`")
	if err != nil {
		t.Fatalf("parseWantPatterns: %v", err)
	}
	if len(pats) != 2 || pats[0] != "a b" || pats[1] != `c\.d` {
		t.Errorf("parseWantPatterns = %q", pats)
	}
	if _, err := parseWantPatterns("`unterminated"); err == nil {
		t.Error("unterminated backquote not rejected")
	}
	if _, err := parseWantPatterns("bare"); err == nil {
		t.Error("unquoted pattern not rejected")
	}
}
