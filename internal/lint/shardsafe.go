package lint

import (
	"go/ast"
	"go/types"
)

// Shardsafe polices the packages whose event chains may run on the sharded
// scheduler (internal/simclock.ShardedScheduler): engines, experiment,
// monitor, and hosting. Under sharded execution, closures scheduled with
// At/After/Every run on worker goroutines — concurrently with events on
// other shards — so a closure that writes a variable captured from its
// enclosing scope is a data race unless something serialises it (the shard
// key, a barrier-buffered sink, or a mutex plus deterministic ordering by
// ExecStamp).
//
// Shardsafe flags direct writes (assignment, compound assignment, ++/--) to
// captured identifiers inside any function literal passed to an At/After/
// Every call. Field writes through captured pointers are deliberately out of
// scope — they are almost always mutex-guarded struct state, and flagging
// them would drown the signal. A legitimate capture (a driver-rooted stage
// closure that runs before the scheduler, or shard-0-serial setup) is
// suppressed with `//phishlint:allow shardsafe <why>` — the annotation's
// mandatory justification is the audit trail.
var Shardsafe = &Analyzer{
	Name: "shardsafe",
	Doc:  "event closures in sharded packages must not write captured variables",
	Run:  runShardsafe,
}

// shardsafeScope lists the packages whose event closures may execute on
// sharded worker goroutines. Fixture packages fabricate one of these paths
// to exercise the analyzer.
var shardsafeScope = map[string]bool{
	"areyouhuman/internal/engines":    true,
	"areyouhuman/internal/experiment": true,
	"areyouhuman/internal/monitor":    true,
	"areyouhuman/internal/hosting":    true,
}

// schedulerMethods are the scheduling entry points whose func-literal
// arguments become events. Matching is by method name: within the scoped
// packages these names always mean the simclock scheduling contract (the
// Scheduler, the ShardedScheduler, or a shard Handle).
var schedulerMethods = map[string]bool{"At": true, "After": true, "Every": true}

func runShardsafe(pass *Pass) {
	if !shardsafeScope[pass.Path] {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !schedulerMethods[sel.Sel.Name] {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkEventClosure(pass, lit)
				}
			}
			return true
		})
	}
}

// checkEventClosure reports writes to variables the closure captures from an
// enclosing scope.
func checkEventClosure(pass *Pass, lit *ast.FuncLit) {
	flag := func(id *ast.Ident, how string) {
		if id.Name == "_" {
			return
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return
		}
		// Declared inside the closure (including its parameters) is fine;
		// anything declared before the literal's body is captured state.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return
		}
		pass.Reportf(id.Pos(), "event closure %s captured variable %q; under sharded execution this races across shards — stage it per shard, publish at a barrier, or order it by ExecStamp", how, id.Name)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					flag(id, "writes")
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok {
				flag(id, "increments")
			}
		}
		return true
	})
}
