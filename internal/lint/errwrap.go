package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errwrap polices the facade's error contract: every error that leaves the
// root areyouhuman package must be classifiable by a caller holding only
// the public API — one of the errors.go sentinels, one of its typed errors,
// or a fmt.Errorf("...%w...") wrap of something else. The sanctioned
// vocabulary is read off errors.go itself: package-level error variables
// (and the internal sentinels they re-export), error types declared or
// aliased at the root. What errwrap rejects is the error that answers to
// neither — a raw return of an internal package's error (errors.Is works
// today by luck of re-exported sentinels, but the message leaks internal
// vocabulary and the next internal refactor breaks the caller), an inline
// errors.New, or a fmt.Errorf without %w (it *erases* the cause chain at
// the exact boundary where callers start relying on it).
//
// The analysis is interprocedural within the root package: a function
// returning the result of another root function inherits that callee's
// discipline (fixpoint, so helper chains and recursion converge). Calls
// into internal packages are the boundary: their result must be wrapped at
// the return, not trusted. Calls that leave the module (stdlib, function
// values) are trusted — flagging ctx.Err() would be noise.
var Errwrap = &Analyzer{
	Name:      "errwrap",
	Doc:       "errors returned by the facade must be errors.go sentinels/typed errors or wrapped via %w",
	RunModule: runErrwrap,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// errwrapVocab is the sanctioned error vocabulary of the root package.
type errwrapVocab struct {
	root *Package
	// vars holds sanctioned sentinel objects: root package-level error
	// variables plus the internal variables they alias.
	vars map[types.Object]bool
	// named holds sanctioned error types: root-declared error types plus
	// alias targets.
	named map[*types.TypeName]bool
}

func runErrwrap(pass *ModulePass) {
	m := pass.Module
	root := m.Package(m.Loader.ModulePath)
	if root == nil {
		return
	}
	vocab := collectVocab(root)
	e := &errwrapPass{pass: pass, vocab: vocab, disciplined: map[*CallNode]bool{}}

	// Fixpoint over root functions: start optimistic (everything
	// disciplined), re-classify until stable. Optimistic initialization is
	// what makes recursion converge to the right answer: a cycle of
	// functions that only ever return each other's results stays
	// disciplined unless some member introduces a bad error.
	var rootNodes []*CallNode
	for _, node := range pass.Graph.SortedNodes() {
		if node.Pkg == root {
			rootNodes = append(rootNodes, node)
			e.disciplined[node] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, node := range rootNodes {
			if !e.disciplined[node] {
				continue
			}
			if e.checkNode(node, false) {
				e.disciplined[node] = false
				changed = true
			}
		}
	}
	for _, node := range rootNodes {
		e.checkNode(node, true)
	}
}

// collectVocab reads the sanctioned sentinels and types off the root
// package's declarations.
func collectVocab(root *Package) *errwrapVocab {
	v := &errwrapVocab{root: root, vars: map[types.Object]bool{}, named: map[*types.TypeName]bool{}}
	scope := root.Types.Scope()
	for _, name := range scope.Names() {
		switch obj := scope.Lookup(name).(type) {
		case *types.Var:
			if types.Implements(obj.Type(), errorIface) {
				v.vars[obj] = true
			}
		case *types.TypeName:
			t := obj.Type()
			if types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface) {
				v.named[obj] = true
				// An alias (type DeployError = experiment.DeployError)
				// sanctions the target type too.
				if named, ok := t.(*types.Named); ok {
					v.named[named.Obj()] = true
				}
			}
		}
	}
	// The initializer of a sanctioned root sentinel re-exports an internal
	// one (var ErrClosed = simclock.ErrClosed): sanction the internal
	// object as well, so returning it raw classifies as the sentinel it is.
	for _, file := range root.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) || !v.vars[root.Info.Defs[name]] {
						continue
					}
					if sel, ok := ast.Unparen(vs.Values[i]).(*ast.SelectorExpr); ok {
						if obj, ok := root.Info.Uses[sel.Sel].(*types.Var); ok {
							v.vars[obj] = true
						}
					}
				}
			}
		}
	}
	return v
}

type errwrapPass struct {
	pass        *ModulePass
	vocab       *errwrapVocab
	disciplined map[*CallNode]bool
}

// checkNode classifies every error-position return expression in node's
// declaration and its nested function literals. With report set, findings
// are emitted; it returns whether anything classified bad.
func (e *errwrapPass) checkNode(node *CallNode, report bool) bool {
	if node.Decl.Body == nil {
		return false
	}
	sig, ok := node.Func.Type().(*types.Signature)
	if !ok {
		return false
	}
	return e.checkFuncBody(node, node.Decl.Body, sig, report)
}

// checkFuncBody walks body's own returns (pruning nested literals, which
// are checked against their own signatures) and recurses into literals.
func (e *errwrapPass) checkFuncBody(node *CallNode, body *ast.BlockStmt, sig *types.Signature, report bool) bool {
	info := node.Pkg.Info
	bad := false
	errIdx := map[int]bool{}
	if res := sig.Results(); res != nil {
		for i := 0; i < res.Len(); i++ {
			if types.Identical(res.At(i).Type(), errorIface) || res.At(i).Type().String() == "error" {
				errIdx[i] = true
			}
		}
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			litSig, ok := info.TypeOf(n).(*types.Signature)
			if ok {
				if e.checkFuncBody(node, n.Body, litSig, report) {
					bad = true
				}
			}
			return false
		case *ast.ReturnStmt:
			if len(errIdx) == 0 {
				return true
			}
			// `return f()` forwarding a multi-result call: the error among
			// the tuple is whatever the call produces.
			if len(n.Results) == 1 && sig.Results().Len() > 1 {
				if call, ok := ast.Unparen(n.Results[0]).(*ast.CallExpr); ok {
					if ok, why := e.classifyCall(node, call); !ok {
						bad = true
						if report {
							e.pass.Reportf(call.Pos(), "%s; return an errors.go sentinel/typed error or wrap the cause: fmt.Errorf(\"areyouhuman: %%w\", err)", why)
						}
					}
				}
				return true
			}
			if len(n.Results) != sig.Results().Len() {
				return true // bare returns pass
			}
			for i, res := range n.Results {
				if !errIdx[i] {
					continue
				}
				if ok, why := e.classify(node, body, res, 0); !ok {
					bad = true
					if report {
						e.pass.Reportf(res.Pos(), "%s; return an errors.go sentinel/typed error or wrap the cause: fmt.Errorf(\"areyouhuman: %%w\", err)", why)
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return bad
}

// classify decides whether expr is a sanctioned facade error. The second
// result explains a rejection.
func (e *errwrapPass) classify(node *CallNode, body *ast.BlockStmt, expr ast.Expr, depth int) (bool, string) {
	if depth > 4 {
		return true, "" // deep provenance chains pass; the assignments en route were checked
	}
	info := node.Pkg.Info
	expr = ast.Unparen(expr)
	if tv, ok := info.Types[expr]; ok {
		if tv.IsNil() {
			return true, ""
		}
		// A value statically typed as a sanctioned error type (or pointer
		// to one) is classifiable by errors.As.
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && e.vocab.named[named.Obj()] {
			return true, ""
		}
	}
	switch x := expr.(type) {
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil {
			if e.vocab.vars[obj] {
				return true, ""
			}
			if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() == node.Pkg.Types {
				return e.classifyVar(node, body, v, depth)
			}
		}
		return true, ""
	case *ast.SelectorExpr:
		if obj := info.Uses[x.Sel]; obj != nil && e.vocab.vars[obj] {
			return true, ""
		}
		// A field read or a foreign package's variable: trusted — the
		// discipline applies to what this package constructs and forwards.
		return true, ""
	case *ast.CallExpr:
		return e.classifyCall(node, x)
	}
	return true, ""
}

// classifyVar traces a local error variable to its assignments within the
// enclosing body.
func (e *errwrapPass) classifyVar(node *CallNode, body *ast.BlockStmt, v *types.Var, depth int) (bool, string) {
	info := node.Pkg.Info
	ok, why := true, ""
	check := func(rhs ast.Expr) {
		if !ok {
			return
		}
		if good, w := e.classify(node, body, rhs, depth+1); !good {
			ok, why = false, w
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, isIdent := ast.Unparen(lhs).(*ast.Ident)
				if !isIdent {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != v {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					check(n.Rhs[i])
				} else if len(n.Rhs) == 1 {
					check(n.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if info.Defs[name] == v && i < len(n.Values) {
					check(n.Values[i])
				}
			}
		}
		return ok
	})
	return ok, why
}

// classifyCall decides whether a call produces a sanctioned error.
func (e *errwrapPass) classifyCall(node *CallNode, call *ast.CallExpr) (bool, string) {
	info := node.Pkg.Info
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() + "." + fn.Name() {
			case "fmt.Errorf":
				if len(call.Args) > 0 {
					if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && !strings.Contains(lit.Value, "%w") {
						return false, "fmt.Errorf without %w erases the cause chain at the facade boundary"
					}
				}
				return true, ""
			case "errors.New":
				return false, "inline errors.New escapes the facade unclassifiable; declare a sentinel in errors.go"
			}
		}
	}
	for _, callee := range e.calleesOf(node, call) {
		if callee.Pkg == e.vocab.root {
			if !e.disciplined[callee] {
				return false, "call to " + callee.Name() + ", which returns undisciplined errors"
			}
			return true, ""
		}
		return false, "error from " + callee.Pkg.Types.Name() + "." + callee.Func.Name() + " crosses the facade unwrapped"
	}
	// Stdlib, interface, and function-value calls are trusted.
	return true, ""
}

func (e *errwrapPass) calleesOf(node *CallNode, call *ast.CallExpr) []*CallNode {
	if site, ok := node.siteByCall[call]; ok && !site.Dynamic {
		return site.Callees
	}
	return nil
}
