package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a trace record.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: value} }

// Duration renders a duration attribute in seconds (JSON-friendly).
func Duration(key string, value time.Duration) Attr {
	return Attr{Key: key, Value: value.Seconds()}
}

// Record is one JSONL trace line. Every record carries both timelines: Sim is
// the virtual time on the experiment clock, Wall the real time the simulator
// produced it. Spans additionally carry their virtual end and wall duration.
type Record struct {
	Type string `json:"type"` // "event" or "span"
	Name string `json:"name"`
	// Sim is the virtual time of the event (span start for spans).
	Sim time.Time `json:"sim"`
	// SimEnd is the virtual time a span ended (omitted for point events).
	SimEnd *time.Time `json:"sim_end,omitempty"`
	// Wall is the wall-clock time the record was produced.
	Wall time.Time `json:"wall"`
	// WallNS is a span's wall-clock execution time in nanoseconds.
	WallNS int64          `json:"wall_ns,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Tracer appends Records to a writer as JSON Lines. A nil Tracer discards
// everything. Tracer is safe for concurrent use.
//
// The active virtual clock is swappable: each experiment stage builds a fresh
// world (and a fresh SimClock), so the world installs its clock on the shared
// tracer at construction. Before any clock is installed, Sim falls back to
// wall time.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	enc   *json.Encoder
	clock atomic.Value // Clock
	n     atomic.Int64
	err   error
}

// NewTracer returns a tracer writing JSONL to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, enc: json.NewEncoder(w)}
}

// SetClock installs the virtual clock stamping subsequent records.
func (t *Tracer) SetClock(c Clock) {
	if t == nil || c == nil {
		return
	}
	t.clock.Store(&c)
}

func (t *Tracer) now() time.Time {
	if c, ok := t.clock.Load().(*Clock); ok {
		return (*c).Now()
	}
	return time.Now() //phishlint:wallclock documented fallback before any virtual clock is installed
}

// Records reports how many records have been written.
func (t *Tracer) Records() int64 {
	if t == nil {
		return 0
	}
	return t.n.Load()
}

// Err returns the first write error encountered, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Event records a point-in-time occurrence.
func (t *Tracer) Event(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	//phishlint:wallclock Record carries both timelines by design; Wall never feeds results
	t.emit(Record{Type: "event", Name: name, Sim: t.now(), Wall: time.Now(), Attrs: attrMap(attrs)})
}

// Span is an in-flight operation started by Tracer.Start; End records it.
type Span struct {
	t         *Tracer
	name      string
	simStart  time.Time
	wallStart time.Time
	attrs     []Attr
}

// Start opens a span. The span is recorded as one line when End is called.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	//phishlint:wallclock spans time their own wall-clock cost by design; never feeds results
	return &Span{t: t, name: name, simStart: t.now(), wallStart: time.Now(), attrs: attrs}
}

// End closes the span, appending any extra attributes, and writes its record.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	simEnd := s.t.now()
	s.t.emit(Record{
		Type:   "span",
		Name:   s.name,
		Sim:    s.simStart,
		SimEnd: &simEnd,
		Wall:   s.wallStart,
		WallNS: time.Since(s.wallStart).Nanoseconds(), //phishlint:wallclock span wall-clock cost; never feeds results
		Attrs:  attrMap(append(s.attrs, attrs...)),
	})
}

func (t *Tracer) emit(rec Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.enc.Encode(rec); err != nil && t.err == nil {
		t.err = fmt.Errorf("telemetry: writing trace: %w", err)
		return
	}
	t.n.Add(1)
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// ReadTrace parses a JSONL trace back into records — the analysis-side
// counterpart of the tracer, mirroring how the paper's scripts re-read their
// own server logs.
func ReadTrace(r io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("telemetry: reading trace record %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
}
