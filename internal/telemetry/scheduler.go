package telemetry

import (
	"time"

	"areyouhuman/internal/simclock"
)

// Scheduler metric names.
const (
	MetricSchedEvents      = "phish_sched_events_total"
	MetricSchedQueueDepth  = "phish_sched_queue_depth"
	MetricSchedWallSeconds = "phish_sched_event_wall_seconds"
)

// ObserveScheduler installs a telemetry observer on the scheduler: a counter
// and a wall-time latency histogram per event name, plus a queue-depth gauge.
// It also points the set's tracer at the scheduler's clock so every trace
// record is stamped with this world's virtual time. A nil or empty set leaves
// the scheduler untouched (and unmeasured).
func ObserveScheduler(s *simclock.Scheduler, set *Set) {
	if s == nil || !set.Enabled() {
		return
	}
	set.T().SetClock(s.Clock())
	m := set.M()
	if m == nil {
		return
	}
	m.Describe(MetricSchedEvents, "Virtual-time events executed by the scheduler, by event name.")
	m.Describe(MetricSchedQueueDepth, "Events pending in the scheduler queue.")
	m.Describe(MetricSchedWallSeconds, "Wall-clock execution time per scheduler event, by event name.")
	depth := m.Gauge(MetricSchedQueueDepth)

	// The observer runs on the single scheduler goroutine, so a plain map is
	// a safe per-event-name instrument cache.
	type inst struct {
		events *Counter
		wall   *Histogram
	}
	cache := make(map[string]inst)
	s.Observe(func(name string, _ time.Time, wall time.Duration, queueDepth int) {
		in, ok := cache[name]
		if !ok {
			in = inst{
				events: m.Counter(MetricSchedEvents, "event", name),
				wall:   m.Histogram(MetricSchedWallSeconds, nil, "event", name),
			}
			cache[name] = in
		}
		in.events.Inc()
		in.wall.Observe(wall.Seconds())
		depth.Set(float64(queueDepth))
	})
}
