package telemetry

import (
	"sync"
	"time"

	"areyouhuman/internal/simclock"
)

// Scheduler metric names.
const (
	MetricSchedEvents      = "phish_sched_events_total"
	MetricSchedQueueDepth  = "phish_sched_queue_depth"
	MetricSchedWallSeconds = "phish_sched_event_wall_seconds"
)

// ObservableScheduler is the slice of simclock.EventScheduler that telemetry
// needs; both the serial Scheduler and ShardedScheduler satisfy it.
type ObservableScheduler interface {
	Clock() *simclock.SimClock
	Observe(simclock.EventObserver)
	Sharded() bool
}

// ObserveScheduler installs a telemetry observer on the scheduler: a counter
// per event name, plus — on the serial scheduler only — a wall-time latency
// histogram per event name and a queue-depth gauge. Wall timings and queue
// depth depend on worker interleaving, so on a sharded scheduler they are
// skipped entirely: the metrics output must be a pure function of virtual
// time, byte-identical for any worker count (including one).
// ObserveScheduler also points the set's tracer at the scheduler's clock so
// every trace record is stamped with this world's virtual time. A nil or
// empty set leaves the scheduler untouched (and unmeasured).
func ObserveScheduler(s ObservableScheduler, set *Set) {
	if s == nil || !set.Enabled() {
		return
	}
	set.T().SetClock(s.Clock())
	m := set.M()
	if m == nil {
		return
	}
	m.Describe(MetricSchedEvents, "Virtual-time events executed by the scheduler, by event name.")
	if s.Sharded() {
		// Worker goroutines report concurrently: the instrument cache needs a
		// lock here, where the serial path below gets away with a plain map.
		var mu sync.Mutex
		cache := make(map[string]*Counter)
		s.Observe(func(name string, _ time.Time, _ time.Duration, _ int) {
			mu.Lock()
			c, ok := cache[name]
			if !ok {
				c = m.Counter(MetricSchedEvents, "event", name)
				cache[name] = c
			}
			mu.Unlock()
			c.Inc()
		})
		return
	}
	m.Describe(MetricSchedQueueDepth, "Events pending in the scheduler queue.")
	m.Describe(MetricSchedWallSeconds, "Wall-clock execution time per scheduler event, by event name.")
	depth := m.Gauge(MetricSchedQueueDepth)

	// The observer runs on the single scheduler goroutine, so a plain map is
	// a safe per-event-name instrument cache.
	type inst struct {
		events *Counter
		wall   *Histogram
	}
	cache := make(map[string]inst)
	s.Observe(func(name string, _ time.Time, wall time.Duration, queueDepth int) {
		in, ok := cache[name]
		if !ok {
			in = inst{
				events: m.Counter(MetricSchedEvents, "event", name),
				wall:   m.Histogram(MetricSchedWallSeconds, nil, "event", name),
			}
			cache[name] = in
		}
		in.events.Inc()
		in.wall.Observe(wall.Seconds())
		depth.Set(float64(queueDepth))
	})
}
