package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds metric families keyed by name. Families are created lazily
// on first use; looking a metric up with the same name and labels returns the
// same instrument, so hot paths resolve their instruments once and then touch
// only atomics. A nil Registry hands out nil instruments, which no-op.
//
// A Registry value is a view: WithLabels returns a second view onto the same
// family store that stamps extra base labels onto every instrument it hands
// out. That is how N concurrent replica worlds share one registry without
// coordination — each world resolves its instruments through its own
// replica-labelled view, lands on distinct series, and then touches only
// atomics.
type Registry struct {
	st *registryState
	// base labels stamped onto every instrument resolved through this view.
	base []string
}

// registryState is the family store shared by every view of a registry.
type registryState struct {
	mu   sync.RWMutex
	fams map[string]*family
	help map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{st: &registryState{fams: make(map[string]*family), help: make(map[string]string)}}
}

// WithLabels returns a view of the same registry whose instruments all carry
// the given extra label pairs (appended to any the view already has). The
// replica runner uses WithLabels("replica", k) to shard one shared registry
// into per-world series. A nil registry stays nil.
func (r *Registry) WithLabels(labelPairs ...string) *Registry {
	if r == nil || len(labelPairs) == 0 {
		return r
	}
	if len(labelPairs)%2 != 0 {
		panic("telemetry: odd label list; pass alternating key, value")
	}
	base := make([]string, 0, len(r.base)+len(labelPairs))
	base = append(append(base, r.base...), labelPairs...)
	return &Registry{st: r.st, base: base}
}

// withBase prepends the view's base labels to an instrument's own pairs.
func (r *Registry) withBase(labelPairs []string) []string {
	if len(r.base) == 0 {
		return labelPairs
	}
	out := make([]string, 0, len(r.base)+len(labelPairs))
	return append(append(out, r.base...), labelPairs...)
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type family struct {
	name    string
	kind    metricKind
	buckets []float64 // histogram families only

	mu       sync.Mutex
	children map[string]any // label signature -> *Counter | *Gauge | *Histogram
	labels   map[string][]string
}

// Describe sets the HELP text emitted for a metric family.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.st.mu.Lock()
	r.st.help[name] = help
	r.st.mu.Unlock()
}

// family returns (creating if needed) the named family, enforcing one kind
// per name.
func (r *Registry) family(name string, kind metricKind, buckets []float64) *family {
	st := r.st
	st.mu.RLock()
	f := st.fams[name]
	st.mu.RUnlock()
	if f == nil {
		st.mu.Lock()
		if f = st.fams[name]; f == nil {
			f = &family{name: name, kind: kind, buckets: buckets,
				children: make(map[string]any), labels: make(map[string][]string)}
			st.fams[name] = f
		}
		st.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// labelSig renders "k,v" pairs into a canonical sorted signature and the
// sorted pair list. Labels are passed as alternating key, value strings.
// Instrument resolution runs this once per (name, labels) pair on the hot
// path's setup, so it avoids fmt and sort.Slice: an in-place insertion sort
// over the pair slots plus strconv-appended quoting.
func labelSig(pairs []string) (string, []string) {
	if len(pairs) == 0 {
		return "", nil
	}
	if len(pairs)%2 != 0 {
		panic("telemetry: odd label list; pass alternating key, value")
	}
	flat := make([]string, len(pairs))
	copy(flat, pairs)
	for i := 2; i < len(flat); i += 2 {
		for j := i; j > 0 && flat[j] < flat[j-2]; j -= 2 {
			flat[j], flat[j-2] = flat[j-2], flat[j]
			flat[j+1], flat[j-1] = flat[j-1], flat[j+1]
		}
	}
	buf := make([]byte, 0, 64)
	for i := 0; i < len(flat); i += 2 {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, flat[i]...)
		buf = append(buf, '=')
		buf = strconv.AppendQuote(buf, flat[i+1])
	}
	return string(buf), flat
}

func (f *family) child(pairs []string, make func() any) any {
	sig, flat := labelSig(pairs)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[sig]
	if !ok {
		c = make()
		f.children[sig] = c
		f.labels[sig] = flat
	}
	return c
}

// Counter returns the counter for name with the given label pairs.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, kindCounter, nil)
	return f.child(r.withBase(labelPairs), func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for name with the given label pairs.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, kindGauge, nil)
	return f.child(r.withBase(labelPairs), func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram for name with the given label pairs. The
// bucket layout is fixed by the first registration of the family; pass nil to
// reuse it (DefBuckets when the family is new).
func (r *Registry) Histogram(name string, buckets []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.family(name, kindHistogram, buckets)
	return f.child(r.withBase(labelPairs), func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets spans microseconds to ~100 s of wall time — wide enough for both
// per-event execution latencies and whole-stage runtimes.
var DefBuckets = ExpBuckets(1e-6, 10, 9)

// ExpBuckets returns count exponential bucket bounds starting at start,
// multiplying by factor.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("telemetry: ExpBuckets requires start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram counts observations into cumulative-style fixed buckets and keeps
// the running sum, Prometheus classic histogram semantics.
type Histogram struct {
	upper   []float64 // sorted upper bounds, +Inf implicit
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]atomic.Int64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the owning bucket, the same estimate PromQL's histogram_quantile
// gives. Observations beyond the last finite bound clamp to that bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(h.upper) { // +Inf bucket: clamp to last finite bound
				if len(h.upper) == 0 {
					return math.NaN()
				}
				return h.upper[len(h.upper)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.upper[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + (h.upper[i]-lo)*frac
		}
		cum += n
	}
	return h.upper[len(h.upper)-1]
}

// Point is one exported series in a snapshot.
type Point struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counter and gauge readings.
	Value float64 `json:"value"`
	// Histogram-only fields.
	Count   int64            `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets map[string]int64 `json:"buckets,omitempty"` // upper bound -> cumulative count
}

// Snapshot returns every series, sorted by name then label signature.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.st.mu.RLock()
	fams := make([]*family, 0, len(r.st.fams))
	for _, f := range r.st.fams {
		fams = append(fams, f)
	}
	r.st.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var out []Point
	for _, f := range fams {
		f.mu.Lock()
		sigs := make([]string, 0, len(f.children))
		for sig := range f.children {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			p := Point{Name: f.name, Type: f.kind.String(), Labels: pairsToMap(f.labels[sig])}
			switch m := f.children[sig].(type) {
			case *Counter:
				p.Value = float64(m.Value())
			case *Gauge:
				p.Value = m.Value()
			case *Histogram:
				p.Count = m.Count()
				p.Sum = m.Sum()
				p.Buckets = make(map[string]int64, len(m.upper)+1)
				var cum int64
				for i, ub := range m.upper {
					cum += m.counts[i].Load()
					p.Buckets[formatBound(ub)] = cum
				}
				cum += m.counts[len(m.upper)].Load()
				p.Buckets["+Inf"] = cum
			}
			out = append(out, p)
		}
		f.mu.Unlock()
	}
	return out
}

func pairsToMap(flat []string) map[string]string {
	if len(flat) == 0 {
		return nil
	}
	m := make(map[string]string, len(flat)/2)
	for i := 0; i < len(flat); i += 2 {
		m[flat[i]] = flat[i+1]
	}
	return m
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON exports the snapshot as a JSON array of Points.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("telemetry: writing JSON snapshot: %w", err)
	}
	return nil
}
