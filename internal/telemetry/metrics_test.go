package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines, both
// resolving instruments and updating them; run under -race this is the
// subsystem's thread-safety proof.
func TestRegistryConcurrency(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	const goroutines, iters = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("conc_total", "worker", strconv.Itoa(g%4)).Inc()
				r.Counter("conc_total", "worker", strconv.Itoa((g+1)%4)).Add(2)
				r.Gauge("conc_gauge").Add(1)
				r.Histogram("conc_hist", nil, "worker", strconv.Itoa(g%2)).Observe(float64(i) / iters)
				if i%50 == 0 {
					r.Snapshot()
					r.WritePrometheus(&bytes.Buffer{})
				}
			}
		}(g)
	}
	wg.Wait()

	var total int64
	for g := 0; g < 4; g++ {
		total += r.Counter("conc_total", "worker", strconv.Itoa(g)).Value()
	}
	if want := int64(goroutines * iters * 3); total != want {
		t.Fatalf("counter total = %d, want %d", total, want)
	}
	if got := r.Gauge("conc_gauge").Value(); got != goroutines*iters {
		t.Fatalf("gauge = %v, want %d", got, goroutines*iters)
	}
	var observations int64
	for g := 0; g < 2; g++ {
		observations += r.Histogram("conc_hist", nil, "worker", strconv.Itoa(g)).Count()
	}
	if want := int64(goroutines * iters); observations != want {
		t.Fatalf("histogram count = %d, want %d", observations, want)
	}
}

func TestCounterAndGaugeSemantics(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters never go down
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c_total") != c {
		t.Fatal("same name+labels must resolve to the same counter")
	}
	if r.Counter("c_total", "k", "v") == c {
		t.Fatal("different labels must resolve to a different child")
	}
	// Label order must not matter.
	if r.Counter("lbl_total", "a", "1", "b", "2") != r.Counter("lbl_total", "b", "2", "a", "1") {
		t.Fatal("label order changed instrument identity")
	}

	g := r.Gauge("g")
	g.Set(10)
	g.Add(-2.5)
	if g.Value() != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	h := r.Histogram("lat_seconds", ExpBuckets(0.001, 10, 5)) // 1ms..10s bounds
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram median should be NaN")
	}
	// 100 observations uniformly placed inside the 0.01..0.1 bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.05)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 5.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// All mass in the (0.01, 0.1] bucket: the median interpolates to its
	// midpoint-ish; assert the PromQL-style bound behaviour instead of the
	// exact point.
	med := h.Quantile(0.5)
	if med <= 0.01 || med > 0.1 {
		t.Fatalf("median %v outside owning bucket (0.01, 0.1]", med)
	}
	if q := h.Quantile(1); q != 0.1 {
		t.Fatalf("q1 = %v, want upper bound 0.1", q)
	}

	// Spread across buckets: quantiles must be monotone.
	h2 := r.Histogram("spread_seconds", ExpBuckets(0.001, 10, 5))
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5, 5} {
		for i := 0; i < 20; i++ {
			h2.Observe(v)
		}
	}
	last := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := h2.Quantile(q)
		if got < last {
			t.Fatalf("quantiles not monotone: q%v = %v < %v", q, got, last)
		}
		last = got
	}
	// Observations beyond the last finite bound clamp to it.
	h3 := r.Histogram("over_seconds", []float64{1, 2})
	h3.Observe(100)
	if got := h3.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %v, want clamp to 2", got)
	}
}

// promLine matches one valid exposition-format line.
var promLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [-+0-9.eEIinfNa]+)$`)

func TestPrometheusTextValidity(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Describe("phish_demo_total", "A demo counter.")
	r.Counter("phish_demo_total", "engine", "gsb").Add(3)
	r.Counter("phish_demo_total", "engine", `we"ird\label`).Inc()
	r.Gauge("phish_depth").Set(17)
	h := r.Histogram("phish_wall_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	types := map[string]string{}
	for _, line := range lines {
		if !promLine.MatchString(line) {
			t.Fatalf("invalid exposition line %q", line)
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.Fields(rest)
			types[parts[0]] = parts[1]
		}
	}
	if types["phish_demo_total"] != "counter" || types["phish_depth"] != "gauge" || types["phish_wall_seconds"] != "histogram" {
		t.Fatalf("TYPE lines = %v", types)
	}
	for _, want := range []string{
		"# HELP phish_demo_total A demo counter.",
		`phish_demo_total{engine="gsb"} 3`,
		"phish_depth 17",
		`phish_wall_seconds_bucket{le="0.01"} 1`,
		`phish_wall_seconds_bucket{le="0.1"} 2`,
		`phish_wall_seconds_bucket{le="1"} 3`,
		`phish_wall_seconds_bucket{le="+Inf"} 4`,
		"phish_wall_seconds_sum 5.555",
		"phish_wall_seconds_count 4",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// A TYPE header must precede the family's first sample.
	if strings.Index(out, "# TYPE phish_wall_seconds histogram") > strings.Index(out, "phish_wall_seconds_bucket") {
		t.Fatal("TYPE line must precede samples")
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("a_total", "k", "v").Add(2)
	r.Gauge("b").Set(1.5)
	r.Histogram("c_seconds", []float64{1}).Observe(0.5)

	points := r.Snapshot()
	if len(points) != 3 {
		t.Fatalf("snapshot = %d points, want 3", len(points))
	}
	// Sorted by name.
	if points[0].Name != "a_total" || points[1].Name != "b" || points[2].Name != "c_seconds" {
		t.Fatalf("order = %v %v %v", points[0].Name, points[1].Name, points[2].Name)
	}
	if points[0].Labels["k"] != "v" || points[0].Value != 2 || points[0].Type != "counter" {
		t.Fatalf("counter point = %+v", points[0])
	}
	if points[2].Buckets["1"] != 1 || points[2].Buckets["+Inf"] != 1 || points[2].Count != 1 {
		t.Fatalf("histogram point = %+v", points[2])
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []Point
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON snapshot does not parse: %v", err)
	}
	if len(decoded) != 3 {
		t.Fatalf("decoded %d points", len(decoded))
	}
}

func TestKindMismatchPanics(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as gauge after counter should panic")
		}
	}()
	r.Gauge("x")
}

func TestExpBuckets(t *testing.T) {
	t.Parallel()
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestWithLabelsShardsOneRegistry(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r0 := r.WithLabels("replica", "0")
	r1 := r.WithLabels("replica", "1")

	r0.Counter("phish_worlds_total").Add(2)
	r1.Counter("phish_worlds_total").Inc()
	r.Counter("phish_worlds_total").Inc() // unlabelled base view

	points := r.Snapshot()
	byReplica := map[string]float64{}
	for _, p := range points {
		if p.Name == "phish_worlds_total" {
			byReplica[p.Labels["replica"]] = p.Value
		}
	}
	if byReplica["0"] != 2 || byReplica["1"] != 1 || byReplica[""] != 1 {
		t.Fatalf("sharded counters = %v, want replica 0=2, 1=1, base=1", byReplica)
	}

	// Same view + same labels resolves the same instrument.
	if r0.Counter("phish_worlds_total") != r0.Counter("phish_worlds_total") {
		t.Fatal("repeated resolution through one view returned distinct instruments")
	}
	// Views compose: base labels merge with per-instrument labels.
	r1.Counter("phish_engine_reports_total", "engine", "gsb").Inc()
	found := false
	for _, p := range r.Snapshot() {
		if p.Name == "phish_engine_reports_total" &&
			p.Labels["replica"] == "1" && p.Labels["engine"] == "gsb" {
			found = true
		}
	}
	if !found {
		t.Fatal("composed labels (replica + engine) missing from snapshot")
	}

	// Nil and empty-label views are identity/no-op.
	if (*Registry)(nil).WithLabels("a", "b") != nil {
		t.Fatal("nil registry should stay nil")
	}
	if r.WithLabels() != r {
		t.Fatal("WithLabels() without pairs should return the same view")
	}
}

func TestSetForReplica(t *testing.T) {
	t.Parallel()
	var nilSet *Set
	if nilSet.ForReplica(3) != nil {
		t.Fatal("nil set should stay nil")
	}
	s := &Set{Metrics: NewRegistry()}
	s3 := s.ForReplica(3)
	s3.M().Counter("phish_sched_events_total").Inc()
	pts := s.M().Snapshot()
	if len(pts) != 1 || pts[0].Labels["replica"] != "3" {
		t.Fatalf("snapshot = %+v, want one series labelled replica=3", pts)
	}
}
