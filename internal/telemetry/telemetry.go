// Package telemetry is the simulation's measurement layer: a zero-dependency
// tracing and metrics subsystem shared by the scheduler, the engines, the
// monitoring pipeline, and the evasion wrappers.
//
// The paper's methodology is observational — web-server logs, 30-minute feed
// diffs, poll timestamps *are* the data — yet a simulated two-week campaign
// compresses into milliseconds of wall time, so every record carries two
// timestamps: the virtual time on the experiment's SimClock (when it happened
// in the study) and the wall time (when the simulator computed it). Traces
// explain detection timelines; wall-time histograms explain where the
// simulator itself spends its budget.
//
// Everything is nil-safe: a nil *Set, *Tracer, *Registry, *Counter, *Gauge,
// *Span, or *Histogram accepts every call as a no-op, so instrumented code
// never branches on "is telemetry on" — uninstrumented runs pay only a nil
// check (proved by BenchmarkTelemetryOverhead).
package telemetry

import (
	"strconv"
	"time"
)

// Clock yields the current virtual time. Both *simclock.SimClock and
// simclock.Real satisfy it; telemetry deliberately depends only on this
// one-method surface so it sits below every other package.
type Clock interface {
	Now() time.Time
}

// Set bundles the two halves of the subsystem. Components accept a *Set and
// read whichever half they need; either field (or the whole Set) may be nil.
type Set struct {
	Tracer  *Tracer
	Metrics *Registry
}

// T returns the tracer, nil when the set (or its tracer) is absent.
func (s *Set) T() *Tracer {
	if s == nil {
		return nil
	}
	return s.Tracer
}

// M returns the metrics registry, nil when the set (or registry) is absent.
func (s *Set) M() *Registry {
	if s == nil {
		return nil
	}
	return s.Metrics
}

// Enabled reports whether any telemetry is wired at all.
func (s *Set) Enabled() bool {
	return s != nil && (s.Tracer != nil || s.Metrics != nil)
}

// Tracing reports whether a tracer is wired. Hot paths guard their Event
// calls with it so that untraced runs don't even build the variadic
// attribute slice — the nil-safe no-op inside Event is free, but the
// arguments to it are not.
func (s *Set) Tracing() bool {
	return s != nil && s.Tracer != nil
}

// ForReplica derives a per-world telemetry set for replica id: the metrics
// half becomes a view of the same registry whose every series carries a
// "replica" label (see Registry.WithLabels), so N concurrent worlds shard one
// registry into disjoint series and never contend beyond instrument
// resolution. The tracer half is carried over as-is — the replica runner keeps
// it on replica 0 only, because a Tracer has a single virtual clock and
// interleaving N worlds' timelines in one JSONL stream would be unreadable.
// A nil set stays nil.
func (s *Set) ForReplica(id int) *Set {
	if s == nil {
		return nil
	}
	return &Set{
		Tracer:  s.Tracer,
		Metrics: s.Metrics.WithLabels("replica", strconv.Itoa(id)),
	}
}
