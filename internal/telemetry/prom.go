package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus exports the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers per family, one sample per
// series, cumulative _bucket/_sum/_count triplets for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.st.mu.RLock()
	fams := make([]*family, 0, len(r.st.fams))
	for _, f := range r.st.fams {
		fams = append(fams, f)
	}
	help := make(map[string]string, len(r.st.help))
	for k, v := range r.st.help {
		help[k] = v
	}
	r.st.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		if h := help[f.name]; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(h))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.Lock()
		sigs := make([]string, 0, len(f.children))
		for sig := range f.children {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			flat := f.labels[sig]
			switch m := f.children[sig].(type) {
			case *Counter:
				writeSample(&b, f.name, flat, "", "", strconv.FormatInt(m.Value(), 10))
			case *Gauge:
				writeSample(&b, f.name, flat, "", "", formatValue(m.Value()))
			case *Histogram:
				var cum int64
				for i, ub := range m.upper {
					cum += m.counts[i].Load()
					writeSample(&b, f.name+"_bucket", flat, "le", formatBound(ub), strconv.FormatInt(cum, 10))
				}
				cum += m.counts[len(m.upper)].Load()
				writeSample(&b, f.name+"_bucket", flat, "le", "+Inf", strconv.FormatInt(cum, 10))
				writeSample(&b, f.name+"_sum", flat, "", "", formatValue(m.Sum()))
				writeSample(&b, f.name+"_count", flat, "", "", strconv.FormatInt(m.Count(), 10))
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	if err != nil {
		return fmt.Errorf("telemetry: writing Prometheus text: %w", err)
	}
	return nil
}

// writeSample emits one sample line; extraKey/extraVal appends a synthetic
// label (the histogram "le" bound) after the series' own labels.
func writeSample(b *strings.Builder, name string, flat []string, extraKey, extraVal, value string) {
	b.WriteString(name)
	if len(flat) > 0 || extraKey != "" {
		b.WriteByte('{')
		for i := 0; i < len(flat); i += 2 {
			if i > 0 {
				b.WriteByte(',')
			}
			// %q escapes backslash, quote, and newline exactly as the
			// exposition format requires.
			fmt.Fprintf(b, "%s=%q", flat[i], flat[i+1])
		}
		if extraKey != "" {
			if len(flat) > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%q", extraKey, extraVal)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	return strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(s)
}

// Handler serves the registry at an HTTP endpoint in the text exposition
// format — the live /metrics page worldserve mounts.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if r == nil {
			return
		}
		_ = r.WritePrometheus(w)
	})
}
