package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"areyouhuman/internal/simclock"
)

func TestTraceJSONLRoundTrip(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetClock(clock)

	tr.Event("engine.report", String("engine", "gsb"), String("url", "https://x.example/a"))
	clock.Advance(30 * time.Minute)
	sp := tr.Start("stage.main", String("stage", "main"))
	clock.Advance(2 * time.Hour)
	sp.End(Int("events_executed", 42))

	if tr.Records() != 2 {
		t.Fatalf("records = %d, want 2", tr.Records())
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	// Every line must parse as standalone JSON with sim and wall timestamps.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not JSON: %v (%q)", i, err, line)
		}
		for _, field := range []string{"type", "name", "sim", "wall"} {
			if _, ok := m[field]; !ok {
				t.Fatalf("line %d missing %q: %q", i, field, line)
			}
		}
	}

	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("ReadTrace = %d records, want 2", len(recs))
	}
	ev := recs[0]
	if ev.Type != "event" || ev.Name != "engine.report" || !ev.Sim.Equal(simclock.Epoch) {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Attrs["engine"] != "gsb" {
		t.Fatalf("event attrs = %v", ev.Attrs)
	}
	span := recs[1]
	if span.Type != "span" || span.Name != "stage.main" {
		t.Fatalf("span = %+v", span)
	}
	if !span.Sim.Equal(simclock.Epoch.Add(30 * time.Minute)) {
		t.Fatalf("span sim start = %v", span.Sim)
	}
	if span.SimEnd == nil || !span.SimEnd.Equal(simclock.Epoch.Add(2*time.Hour+30*time.Minute)) {
		t.Fatalf("span sim end = %v", span.SimEnd)
	}
	if span.WallNS < 0 {
		t.Fatalf("span wall duration = %d", span.WallNS)
	}
	if span.Attrs["stage"] != "main" || span.Attrs["events_executed"] != float64(42) {
		t.Fatalf("span attrs = %v", span.Attrs)
	}
}

func TestTracerWallFallbackWithoutClock(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	before := time.Now()
	tr.Event("boot")
	recs, err := ReadTrace(&buf)
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
	if recs[0].Sim.Before(before.Add(-time.Second)) {
		t.Fatalf("sim should fall back to wall time, got %v", recs[0].Sim)
	}
}

func TestTracerConcurrent(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetClock(simclock.New(simclock.Epoch))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Event("tick", Int("goroutine", g), Int("i", i))
			}
		}(g)
	}
	wg.Wait()
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("interleaved writes corrupted the stream: %v", err)
	}
	if len(recs) != 400 || tr.Records() != 400 {
		t.Fatalf("records = %d (counter %d), want 400", len(recs), tr.Records())
	}
}

func TestNilTelemetryIsNoOp(t *testing.T) {
	t.Parallel()
	// Every call on nil receivers must be safe: this is the uninstrumented
	// fast path the whole codebase relies on.
	var set *Set
	if set.Enabled() {
		t.Fatal("nil set reports enabled")
	}
	set.T().Event("x", String("k", "v"))
	set.T().SetClock(simclock.Real)
	set.T().Start("y").End()
	if set.T().Records() != 0 || set.T().Err() != nil {
		t.Fatal("nil tracer should report zero records and no error")
	}

	set.M().Describe("m", "help")
	set.M().Counter("c", "k", "v").Inc()
	set.M().Counter("c").Add(5)
	set.M().Gauge("g").Set(1)
	set.M().Gauge("g").Add(-1)
	set.M().Histogram("h", nil).Observe(0.5)
	if set.M().Counter("c").Value() != 0 || set.M().Gauge("g").Value() != 0 {
		t.Fatal("nil instruments should read zero")
	}
	if got := set.M().Histogram("h", nil).Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v", got)
	}
	if set.M().Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	if err := set.M().WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var sp *Span
	sp.End()

	half := &Set{Metrics: NewRegistry()}
	if !half.Enabled() {
		t.Fatal("set with registry only should be enabled")
	}
	half.T().Event("still fine")
}
