package registrar

import (
	"errors"
	"testing"
	"time"

	"areyouhuman/internal/dnssim"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/whois"
)

func newTestRegistrar(clock simclock.Clock) (*Registrar, *whois.DB, *dnssim.Server) {
	db := whois.NewDB()
	dns := dnssim.NewServer()
	return New("OVH", db, dns, clock), db, dns
}

func TestTLD(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"shop.com":        "com",
		"a.b.c.xyz":       "xyz",
		"bare":            "",
		"Trailing.ORG.":   "org",
		" spaced.net ":    "net",
		"garden.example":  "example",
		"new-thing.club ": "club",
	}
	for in, want := range cases {
		if got := TLD(in); got != want {
			t.Errorf("TLD(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGTLDCatalogs(t *testing.T) {
	t.Parallel()
	if !IsLegacyGTLD("a.com") || !IsLegacyGTLD("a.net") || !IsLegacyGTLD("a.org") {
		t.Fatal("legacy gTLDs misclassified")
	}
	if IsLegacyGTLD("a.xyz") {
		t.Fatal(".xyz is not legacy")
	}
	if !IsNewGTLD("a.xyz") || !IsNewGTLD("a.club") {
		t.Fatal("new gTLDs misclassified")
	}
	if IsNewGTLD("a.com") {
		t.Fatal(".com is not a new gTLD")
	}
	if !Supported("unit-test.example") {
		t.Fatal(".example should be supported for tests")
	}
	if Supported("a.museum") {
		t.Fatal("TLD outside catalog should be unsupported")
	}
}

func TestAvailableThenRegister(t *testing.T) {
	t.Parallel()
	r, db, dns := newTestRegistrar(simclock.New(simclock.Epoch))
	if !r.Available("fresh.com") {
		t.Fatal("fresh.com should be available")
	}
	reg, err := r.Register("fresh.com", "Research Lab")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if !reg.At.Equal(simclock.Epoch) {
		t.Fatalf("registration time = %v, want %v", reg.At, simclock.Epoch)
	}
	if r.Available("fresh.com") {
		t.Fatal("fresh.com should no longer be available")
	}
	rec, ok := db.Lookup("fresh.com")
	if !ok || rec.Registrar != "OVH" || rec.Registrant != "Research Lab" {
		t.Fatalf("WHOIS record = %+v, ok=%v", rec, ok)
	}
	if want := simclock.Epoch.AddDate(1, 0, 0); !rec.Expires.Equal(want) {
		t.Fatalf("Expires = %v, want %v", rec.Expires, want)
	}
	if !dns.Exists("fresh.com") {
		t.Fatal("registration should delegate a DNS zone")
	}
}

func TestRegisterTakenFails(t *testing.T) {
	t.Parallel()
	r, _, _ := newTestRegistrar(nil)
	if _, err := r.Register("dup.com", "A"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("dup.com", "B"); !errors.Is(err, ErrTaken) {
		t.Fatalf("err = %v, want ErrTaken", err)
	}
}

func TestRegisterUnsupportedTLD(t *testing.T) {
	t.Parallel()
	r, _, _ := newTestRegistrar(nil)
	if _, err := r.Register("thing.museum", "A"); !errors.Is(err, ErrUnsupportedTLD) {
		t.Fatalf("err = %v, want ErrUnsupportedTLD", err)
	}
	if r.Available("thing.museum") {
		t.Fatal("unsupported TLD should never be available")
	}
}

func TestBulkScoreWindows(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	r, _, _ := newTestRegistrar(clock)
	// Three registrations within one hour, then a gap, then two more.
	domains := []string{"a1.com", "a2.com", "a3.com"}
	for _, d := range domains {
		if _, err := r.Register(d, "Lab"); err != nil {
			t.Fatal(err)
		}
		clock.Advance(20 * time.Minute)
	}
	clock.Advance(48 * time.Hour)
	for _, d := range []string{"b1.com", "b2.com"} {
		if _, err := r.Register(d, "Lab"); err != nil {
			t.Fatal(err)
		}
		clock.Advance(10 * time.Minute)
	}
	if got := r.BulkScore("Lab", time.Hour); got != 3 {
		t.Fatalf("BulkScore(1h) = %d, want 3", got)
	}
	if got := r.BulkScore("Lab", 30*time.Minute); got != 2 {
		t.Fatalf("BulkScore(30m) = %d, want 2", got)
	}
	if got := r.BulkScore("Lab", 100*time.Hour); got != 5 {
		t.Fatalf("BulkScore(100h) = %d, want 5", got)
	}
	if got := r.BulkScore("Nobody", time.Hour); got != 0 {
		t.Fatalf("BulkScore(unknown) = %d, want 0", got)
	}
}

func TestSpreadRegistrationsKeepBulkScoreLow(t *testing.T) {
	t.Parallel()
	// The paper registers 112 domains manually over two weeks. Spread evenly,
	// the 24h bulk score stays in single digits.
	clock := simclock.New(simclock.Epoch)
	r, _, _ := newTestRegistrar(clock)
	interval := 14 * 24 * time.Hour / 112
	for i := 0; i < 112; i++ {
		if _, err := r.Register(synth(i), "Lab"); err != nil {
			t.Fatal(err)
		}
		clock.Advance(interval)
	}
	if got := r.BulkScore("Lab", 24*time.Hour); got > 9 {
		t.Fatalf("24h BulkScore = %d, want single digits for spread registrations", got)
	}
}

func synth(i int) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	return "dom-" + string(letters[i%26]) + string(letters[(i/26)%26]) + string(rune('0'+i%10)) + ".com"
}

func TestAvailabilityChecksCounter(t *testing.T) {
	t.Parallel()
	r, _, _ := newTestRegistrar(nil)
	r.Available("x.com")
	r.Available("y.com")
	if got := r.AvailabilityChecks(); got != 2 {
		t.Fatalf("AvailabilityChecks() = %d, want 2", got)
	}
}

func TestRegistrationsCopy(t *testing.T) {
	t.Parallel()
	r, _, _ := newTestRegistrar(nil)
	r.Register("one.com", "Lab")
	regs := r.Registrations()
	regs[0].Domain = "mutated"
	if r.Registrations()[0].Domain != "one.com" {
		t.Fatal("Registrations must return a copy")
	}
}
