// Package registrar simulates domain registrars and their APIs.
//
// The paper uses GoDaddy and Porkbun APIs to check availability of drop-catch
// candidates (pipeline step 2) and registers the final domains manually at
// OVH over two weeks to avoid bulk-registration patterns. This package
// provides availability checks, registrations that publish WHOIS and DNS
// state, a gTLD catalog, and a bulk-pattern score that anti-phishing engines
// can consult as a maliciousness prior.
package registrar

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"areyouhuman/internal/dnssim"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/whois"
)

// ErrTaken is returned when registering a domain that already has a WHOIS
// record.
var ErrTaken = errors.New("registrar: domain already registered")

// ErrUnsupportedTLD is returned for a TLD outside the catalog.
var ErrUnsupportedTLD = errors.New("registrar: unsupported TLD")

// LegacyGTLDs are the legacy generic TLDs the paper registers under.
var LegacyGTLDs = []string{"com", "net", "org", "info"}

// NewGTLDs is a catalog of new generic TLDs; the paper registers 21 of its
// keyword domains under new gTLDs.
var NewGTLDs = []string{"xyz", "online", "site", "top", "icu", "club", "shop", "live", "fun", "space"}

// TLD returns the final label of domain.
func TLD(domain string) string {
	domain = strings.TrimSuffix(strings.ToLower(strings.TrimSpace(domain)), ".")
	i := strings.LastIndexByte(domain, '.')
	if i < 0 {
		return ""
	}
	return domain[i+1:]
}

// IsNewGTLD reports whether domain's TLD is in the new-gTLD catalog.
func IsNewGTLD(domain string) bool {
	return contains(NewGTLDs, TLD(domain))
}

// IsLegacyGTLD reports whether domain's TLD is a legacy gTLD.
func IsLegacyGTLD(domain string) bool {
	return contains(LegacyGTLDs, TLD(domain))
}

// Supported reports whether domain's TLD can be registered here. The special
// "example" TLD is accepted to keep unit-test domains registrable.
func Supported(domain string) bool {
	return IsNewGTLD(domain) || IsLegacyGTLD(domain) || TLD(domain) == "example"
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// Registration records one completed registration.
type Registration struct {
	Domain     string
	Registrant string
	At         time.Time
}

// Registrar is one registrar (GoDaddy, Porkbun, OVH, ...). Registrations
// publish a WHOIS record and delegate a DNS zone. The zero value is not
// usable; call New.
type Registrar struct {
	name  string
	whois *whois.DB
	dns   *dnssim.Server
	clock simclock.Clock

	mu     sync.Mutex
	regs   []Registration
	checks int64
}

// New returns a registrar publishing into the given WHOIS database and DNS
// server. clock defaults to simclock.Real when nil.
func New(name string, db *whois.DB, dns *dnssim.Server, clock simclock.Clock) *Registrar {
	if clock == nil {
		clock = simclock.Real
	}
	return &Registrar{name: name, whois: db, dns: dns, clock: clock}
}

// Name returns the registrar's name.
func (r *Registrar) Name() string { return r.name }

// Available reports whether domain can be registered: supported TLD and no
// existing WHOIS record. This is the GoDaddy/Porkbun availability API of
// pipeline step 2.
func (r *Registrar) Available(domain string) bool {
	r.mu.Lock()
	r.checks++
	r.mu.Unlock()
	if !Supported(domain) {
		return false
	}
	_, taken := r.whois.Lookup(domain)
	return !taken
}

// Register registers domain to registrant for one year, publishing WHOIS and
// delegating a DNS zone (without an address until hosting attaches one).
func (r *Registrar) Register(domain, registrant string) (Registration, error) {
	domain = strings.ToLower(strings.TrimSpace(domain))
	if !Supported(domain) {
		return Registration{}, fmt.Errorf("%w: %s", ErrUnsupportedTLD, domain)
	}
	if _, taken := r.whois.Lookup(domain); taken {
		return Registration{}, fmt.Errorf("%w: %s", ErrTaken, domain)
	}
	now := r.clock.Now()
	r.whois.Put(whois.Record{
		Domain:     domain,
		Registrar:  r.name,
		Registrant: registrant,
		Created:    now,
		Expires:    now.AddDate(1, 0, 0),
	})
	if r.dns != nil {
		r.dns.AddZone(domain, "")
	}
	reg := Registration{Domain: domain, Registrant: registrant, At: now}
	r.mu.Lock()
	r.regs = append(r.regs, reg)
	r.mu.Unlock()
	return reg, nil
}

// Registrations returns a copy of all completed registrations in order.
func (r *Registrar) Registrations() []Registration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Registration, len(r.regs))
	copy(out, r.regs)
	return out
}

// AvailabilityChecks reports how many availability queries were served.
func (r *Registrar) AvailabilityChecks() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.checks
}

// BulkScore estimates how bulk-like a registrant's registration pattern is:
// the maximum number of that registrant's registrations falling inside any
// sliding window. Engines use a high score as a maliciousness prior; the
// paper spreads its manual registrations over two weeks precisely to keep
// this low.
func (r *Registrar) BulkScore(registrant string, window time.Duration) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var times []time.Time
	for _, reg := range r.regs {
		if reg.Registrant == registrant {
			times = append(times, reg.At)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	best, lo := 0, 0
	for hi := range times {
		for times[hi].Sub(times[lo]) > window {
			lo++
		}
		if n := hi - lo + 1; n > best {
			best = n
		}
	}
	return best
}
