package simnet

import (
	"errors"
	"io"
	"net/http"
	"testing"
	"time"
)

func faultClient(n *Internet, timeout time.Duration) *http.Client {
	return &http.Client{Transport: &Transport{Net: n, SourceIP: "198.51.100.9", Timeout: timeout}}
}

// TestFaultConnReset: a reset fault fails the round trip with an error
// matching ErrInjected (and ErrConnReset), before the handler serves.
func TestFaultConnReset(t *testing.T) {
	t.Parallel()
	n := New(nil)
	n.Register("shop.example", echoHandler())
	n.SetFault(func(host string) Fault { return Fault{Reset: host == "shop.example"} })

	req, _ := http.NewRequest("GET", "http://shop.example/", nil)
	_, err := faultClient(n, 0).Do(req)
	if err == nil {
		t.Fatal("reset fault did not fail the request")
	}
	if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrConnReset) {
		t.Errorf("err = %v, want ErrInjected/ErrConnReset", err)
	}
	if n.Requests() != 0 {
		t.Errorf("reset connection still counted %d served requests", n.Requests())
	}
}

// TestFaultLatencyTimeout: injected latency above the transport timeout turns
// into ErrTimeout; the server still observed the request (log realism), but
// the client never sees the body.
func TestFaultLatencyTimeout(t *testing.T) {
	t.Parallel()
	n := New(nil)
	n.Register("slow.example", echoHandler())
	n.SetFault(func(host string) Fault { return Fault{Latency: time.Minute} })

	req, _ := http.NewRequest("GET", "http://slow.example/", nil)
	_, err := faultClient(n, 30*time.Second).Do(req)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrInjected/ErrTimeout", err)
	}
	if n.Requests() != 1 {
		t.Errorf("server saw %d requests, want 1 (the request reached it before timing out)", n.Requests())
	}

	// Latency below the timeout (or with no timeout at all) is harmless.
	resp, err := faultClient(n, 2*time.Minute).Do(req)
	if err != nil {
		t.Fatalf("sub-timeout latency failed the request: %v", err)
	}
	resp.Body.Close()
	if resp2, err := faultClient(n, 0).Do(req); err != nil {
		t.Fatalf("no-timeout transport failed under latency: %v", err)
	} else {
		resp2.Body.Close()
	}
}

// TestFaultTruncatedBody: the truncate fault halves the delivered body while
// the request still succeeds — the partial-response failure mode crawlers
// actually see.
func TestFaultTruncatedBody(t *testing.T) {
	t.Parallel()
	n := New(nil)
	n.Register("cut.example", echoHandler())

	req, _ := http.NewRequest("GET", "http://cut.example/some/long/path/for/payload", nil)
	resp, err := faultClient(n, 0).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	n.SetFault(func(host string) Fault { return Fault{TruncateBody: true} })
	resp, err = faultClient(n, 0).Do(req)
	if err != nil {
		t.Fatalf("truncation failed the request: %v", err)
	}
	cut, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(cut) >= len(full) || len(cut) != len(full)/2 {
		t.Errorf("truncated body = %d bytes, want %d (half of %d)", len(cut), len(full)/2, len(full))
	}
}

// TestNoFaultFuncIsFreePath: without SetFault the transport behaves exactly
// as before (the empty-plan identity depends on this).
func TestNoFaultFuncIsFreePath(t *testing.T) {
	t.Parallel()
	n := New(nil)
	n.Register("plain.example", echoHandler())
	req, _ := http.NewRequest("GET", "http://plain.example/", nil)
	resp, err := faultClient(n, 30*time.Second).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}
