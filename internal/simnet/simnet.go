// Package simnet provides an in-memory virtual internet.
//
// Hosts register an http.Handler under a domain name; clients reach them
// through a Transport implementing http.RoundTripper. Only the wire is
// simulated — requests and responses are real net/http values — so every
// component above this layer (phishing sites, anti-phishing crawlers, browser
// emulation, extensions) exercises the same code paths it would against a
// live network.
//
// The paper hosted its 112 websites on infrastructure with 22 distinct IPv4
// addresses; Internet allocates server addresses from a configurable pool to
// mirror that.
package simnet

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ShardKey returns the scheduler affinity key for a hostname: every event
// chain concerning the same registrable domain maps to the same key, so a
// sharded scheduler runs them serially in virtual-time order. Use it with
// simclock.EventScheduler.OnKey when rooting host-directed work — report
// processing, takedowns — so mutations of one host's state never race across
// shards.
//
// The registrable domain is normally the two trailing labels (matching
// dnssim's zone apexes). Free-hosting provider apexes are treated like
// public suffixes: a subdomain URL on a shared apex keys one label deeper,
// so a 100k-URL campaign on one provider spreads across every shard instead
// of serialising on the provider's own key.
func ShardKey(host string) string {
	return "host:" + Registrable(host)
}

// freeHostingApexes are the virtual free-hosting provider apex domains.
// They act as public suffixes for shard-affinity purposes: each customer
// subdomain is its own registrable site. hosting.FreeProvider deploys
// campaign URLs under these apexes; the list is fixed so ShardKey stays a
// pure function (no registry, no lock on the per-request path).
var freeHostingApexes = [...]string{
	"freesites.example",
	"pages.example",
	"sitehub.example",
	"webhost.example",
}

// FreeHostingApexes returns the shared free-hosting apex domains, in a fixed
// deterministic order.
func FreeHostingApexes() []string {
	out := make([]string, len(freeHostingApexes))
	copy(out, freeHostingApexes[:])
	return out
}

// IsFreeHostingApex reports whether domain is one of the shared free-hosting
// provider apexes.
func IsFreeHostingApex(domain string) bool {
	domain = strings.TrimSuffix(strings.ToLower(strings.TrimSpace(domain)), ".")
	for _, apex := range freeHostingApexes {
		if domain == apex {
			return true
		}
	}
	return false
}

// Registrable canonicalizes host to its registrable domain: the two trailing
// labels, or three when the two trailing labels form a free-hosting apex (a
// shared-suffix rule, like the public-suffix list treats co.uk).
func Registrable(host string) string {
	host = strings.TrimSuffix(strings.ToLower(strings.TrimSpace(host)), ".")
	labels := strings.Split(host, ".")
	if len(labels) > 2 {
		apex := strings.Join(labels[len(labels)-2:], ".")
		if IsFreeHostingApex(apex) {
			return strings.Join(labels[len(labels)-3:], ".")
		}
		return apex
	}
	return host
}

// ErrNoSuchHost is returned by Transport when the request's hostname does not
// resolve to a registered host.
var ErrNoSuchHost = errors.New("simnet: no such host")

// ErrTLSNotProvisioned is returned for an https request to a host without a
// certificate.
var ErrTLSNotProvisioned = errors.New("simnet: host has no TLS certificate")

// ErrHostDown is returned for a request to a host that has been taken down.
var ErrHostDown = errors.New("simnet: host is down")

// ErrInjected marks failures manufactured by an installed fault hook (the
// chaos layer) rather than arising from the simulated world's state. Resilient
// clients retry on errors.Is(err, ErrInjected) while leaving organic failures
// (ErrHostDown, a genuinely missing host) on their historical code paths —
// that distinction is what keeps a run without faults byte-identical to one
// with an empty plan installed.
var ErrInjected = errors.New("simnet: injected fault")

// ErrConnReset is an injected connection reset.
var ErrConnReset = fmt.Errorf("%w: connection reset", ErrInjected)

// ErrTimeout is an injected timeout: the fault hook added more latency than
// the transport's Timeout allows. The server still observed and served the
// request — only the response was lost, as with a real client-side timeout.
var ErrTimeout = fmt.Errorf("%w: request timed out", ErrInjected)

// Fault describes what an installed fault hook wants done to one round trip.
// The zero value means "deliver normally".
type Fault struct {
	// Reset aborts the exchange before it reaches the server.
	Reset bool
	// Latency is virtual delay added to the exchange. It cannot advance the
	// discrete-event clock mid-round-trip; its observable effect is tripping
	// the transport's Timeout when it exceeds it.
	Latency time.Duration
	// TruncateBody delivers only the first half of the response body.
	TruncateBody bool
}

// FaultFunc is consulted once per round trip with the destination host.
// Implementations must be safe for concurrent use and deterministic in the
// virtual-time sense (see internal/chaos).
type FaultFunc func(host string) Fault

// Resolver maps a hostname to an IP address. dnssim.Server implements it; the
// Internet's built-in registry is the default.
type Resolver interface {
	ResolveA(host string) (ip string, ok bool)
}

// Host is a virtual web server bound to a domain name.
type Host struct {
	Name    string       // fully qualified domain name
	IP      string       // server address, e.g. "203.0.113.7"
	Handler http.Handler // application serving this host
	TLS     bool         // whether an https certificate is provisioned
	Down    bool         // taken down (e.g. by a hosting provider abuse desk)
}

// Internet is the registry of virtual hosts plus the address allocator.
// The zero value is not usable; call New.
type Internet struct {
	mu       sync.RWMutex
	hosts    map[string]*Host
	ipPool   []string
	nextIP   int
	resolver Resolver
	fault    FaultFunc
	requests atomic.Int64 // hot path: every round trip increments, no lock
}

// New returns an empty virtual internet with the given server address pool.
// If pool is empty, DefaultServerPool is used.
func New(pool []string) *Internet {
	if len(pool) == 0 {
		pool = DefaultServerPool()
	}
	return &Internet{hosts: make(map[string]*Host), ipPool: pool}
}

// DefaultServerPool returns 22 documentation-range server addresses, matching
// the paper's hosting setup of 22 distinct IPs.
func DefaultServerPool() []string {
	pool := make([]string, 22)
	for i := range pool {
		pool[i] = fmt.Sprintf("203.0.113.%d", i+1)
	}
	return pool
}

// SetResolver installs an external resolver (e.g. the simulated DNS server).
// When nil, the built-in host registry resolves names.
func (n *Internet) SetResolver(r Resolver) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.resolver = r
}

// SetFault installs a fault hook consulted on every round trip. Pass nil to
// remove it. Without a hook the wire is perfect, as it always was.
func (n *Internet) SetFault(f FaultFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fault = f
}

func (n *Internet) faultFunc() FaultFunc {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.fault
}

// Register binds name to handler, allocating a server IP from the pool
// round-robin, and returns the created Host.
func (n *Internet) Register(name string, handler http.Handler) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	h := &Host{
		Name:    name,
		IP:      n.ipPool[n.nextIP%len(n.ipPool)],
		Handler: handler,
	}
	n.nextIP++
	n.hosts[name] = h
	return h
}

// RegisterWildcard binds every subdomain of apex to handler through a single
// catch-all host entry ("*." + apex), the way free-hosting providers serve
// millions of customer sites off one front end. Lookup falls back to the
// wildcard when no exact host matches, so a campaign can deploy 100k
// subdomain URLs with O(1) registry cost. The returned Host is the shared
// front end; per-subdomain routing is the handler's business (it reads the
// request's Host header).
func (n *Internet) RegisterWildcard(apex string, handler http.Handler) *Host {
	return n.Register("*."+strings.ToLower(strings.TrimSpace(apex)), handler)
}

// Unregister removes the named host (exact name, including "*." wildcard
// entries), reporting whether it existed. Dedicated-hosting campaigns use it
// to release a URL's registration when its measurement window closes, so the
// registry stays bounded by in-flight URLs rather than total URLs.
func (n *Internet) Unregister(name string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.hosts[name]
	delete(n.hosts, name)
	return ok
}

// EnableTLS marks the named host as having a valid certificate. It reports
// whether the host exists.
func (n *Internet) EnableTLS(name string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[name]
	if ok {
		h.TLS = true
	}
	return ok
}

// TakeDown marks the named host as unreachable, simulating a hosting-provider
// takedown. It reports whether the host exists.
func (n *Internet) TakeDown(name string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[name]
	if ok {
		h.Down = true
	}
	return ok
}

// Lookup returns the registered host for name. An exact entry wins; failing
// that, a wildcard entry for the name's parent domain ("*.parent", see
// RegisterWildcard) answers for any subdomain.
func (n *Internet) Lookup(name string) (*Host, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if h, ok := n.hosts[name]; ok {
		return h, ok
	}
	if i := strings.IndexByte(name, '.'); i >= 0 {
		if h, ok := n.hosts["*"+name[i:]]; ok {
			return h, ok
		}
	}
	return nil, false
}

// ResolveA implements Resolver using the host registry.
func (n *Internet) ResolveA(host string) (string, bool) {
	h, ok := n.Lookup(host)
	if !ok {
		return "", false
	}
	return h.IP, true
}

// Hosts returns the registered hostnames in lexical order.
func (n *Internet) Hosts() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	names := make([]string, 0, len(n.hosts))
	for name := range n.hosts {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Requests reports the total number of round trips served.
func (n *Internet) Requests() int64 {
	return n.requests.Load()
}

func (n *Internet) countRequest() {
	n.requests.Add(1)
}

func (n *Internet) resolveHost(name string) (*Host, error) {
	n.mu.RLock()
	resolver := n.resolver
	n.mu.RUnlock()
	if resolver != nil {
		if _, ok := resolver.ResolveA(name); !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoSuchHost, name)
		}
	}
	h, ok := n.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchHost, name)
	}
	return h, nil
}
