package simnet

import (
	"net/http"
	"testing"
)

func TestRegistrableFreeHostingDepth(t *testing.T) {
	t.Parallel()
	cases := []struct{ host, want string }{
		// Normal hosts: two trailing labels.
		{"shop.example", "shop.example"},
		{"www.shop.example", "shop.example"},
		{"a.b.shop.example", "shop.example"},
		// Free-hosting apexes act like public suffixes: one label deeper, so
		// each customer subdomain is its own registrable site.
		{"victim-login.pages.example", "victim-login.pages.example"},
		{"a.b.pages.example", "b.pages.example"},
		{"pages.example", "pages.example"},
		// Canonicalisation.
		{"WWW.Shop.Example.", "shop.example"},
		{"X.PAGES.example", "x.pages.example"},
	}
	for _, c := range cases {
		if got := Registrable(c.host); got != c.want {
			t.Errorf("Registrable(%q) = %q, want %q", c.host, got, c.want)
		}
	}
	// ShardKey spreads free-hosting subdomains instead of serialising on the
	// shared apex.
	if ShardKey("a.pages.example") == ShardKey("b.pages.example") {
		t.Error("distinct free-hosting subdomains share a shard key")
	}
	if ShardKey("a.shop.example") != ShardKey("b.shop.example") {
		t.Error("subdomains of a normal registrable split shard keys")
	}
}

func TestFreeHostingApexesFixed(t *testing.T) {
	t.Parallel()
	a, b := FreeHostingApexes(), FreeHostingApexes()
	if len(a) == 0 {
		t.Fatal("no free-hosting apexes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("apex order not deterministic")
		}
		if !IsFreeHostingApex(a[i]) {
			t.Errorf("listed apex %q not recognised by IsFreeHostingApex", a[i])
		}
	}
	// The returned slice is a copy: mutating it must not poison the registry.
	a[0] = "hacked.example"
	if IsFreeHostingApex("hacked.example") || FreeHostingApexes()[0] == "hacked.example" {
		t.Error("FreeHostingApexes exposed internal state")
	}
	if IsFreeHostingApex("shop.example") {
		t.Error("ordinary domain classified as free-hosting apex")
	}
}

func TestWildcardRegisterLookupUnregister(t *testing.T) {
	t.Parallel()
	n := New(nil)
	h := n.RegisterWildcard("pages.example", http.NotFoundHandler())
	if h.Name != "*.pages.example" {
		t.Fatalf("wildcard host name = %q", h.Name)
	}

	// Any subdomain resolves through the wildcard entry...
	got, ok := n.Lookup("victim.pages.example")
	if !ok || got != h {
		t.Fatalf("Lookup(subdomain) = %v, %v; want the wildcard host", got, ok)
	}
	if _, ok := n.Lookup("pages.example"); ok {
		t.Error("apex itself resolved; the wildcard covers subdomains only")
	}
	// ...but an exact registration wins over the wildcard.
	exact := n.Register("special.pages.example", http.NotFoundHandler())
	if got, _ := n.Lookup("special.pages.example"); got != exact {
		t.Error("exact host entry did not win over the wildcard")
	}

	// TLS on the wildcard covers every subdomain served through it.
	if !n.EnableTLS("*.pages.example") {
		t.Fatal("EnableTLS on wildcard entry failed")
	}
	if got, _ := n.Lookup("victim.pages.example"); !got.TLS {
		t.Error("wildcard TLS not visible through subdomain lookup")
	}

	if !n.Unregister("*.pages.example") {
		t.Fatal("Unregister(wildcard) reported false")
	}
	if _, ok := n.Lookup("victim.pages.example"); ok {
		t.Error("subdomain still resolves after wildcard unregistered")
	}
	if n.Unregister("*.pages.example") {
		t.Error("double Unregister reported true")
	}
}

func TestUnregisterReleasesDedicatedHost(t *testing.T) {
	t.Parallel()
	n := New(nil)
	n.Register("ephemeral.example", http.NotFoundHandler())
	if !n.Unregister("ephemeral.example") {
		t.Fatal("Unregister reported false for a registered host")
	}
	if _, ok := n.Lookup("ephemeral.example"); ok {
		t.Error("host still resolves after Unregister")
	}
	if got := len(n.Hosts()); got != 0 {
		t.Errorf("registry holds %d hosts after release, want 0", got)
	}
}
